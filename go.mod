module haspmv

go 1.22
