package haspmv

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m := IntelI912900KF()
	a := Representative("rma10", 64)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.Name(), "HASpMV") {
		t.Fatalf("name: %s", h.Name())
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.Rows)
	h.Multiply(y, x)
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	r := h.Simulate(nil)
	if r.Seconds <= 0 || r.GFlops <= 0 {
		t.Fatalf("simulate: %+v", r)
	}
	p := DefaultModelParams()
	if r2 := h.Simulate(&p); r2.Seconds != r.Seconds {
		t.Fatal("explicit default params changed the estimate")
	}
}

func TestBaselineNames(t *testing.T) {
	m := AMDRyzen97950X3D()
	a := Representative("dawson5", 64)
	for _, name := range []string{"csr", "csr-nnz", "mkl", "aocl", "csr5", "merge"} {
		h, err := AnalyzeBaseline(name, PAndE, m, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y := make([]float64, a.Rows)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1
		}
		h.Multiply(y, x)
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: wrong result at %d", name, i)
			}
		}
	}
	if _, err := AnalyzeBaseline("spmv9000", PAndE, m, a); err == nil {
		t.Fatal("unknown baseline accepted")
	} else if !strings.Contains(err.Error(), "spmv9000") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestMultiplyBatchFusedAndFallback(t *testing.T) {
	m := IntelI912900KF()
	a := Representative("cop20k_A", 64)
	X := make([][]float64, 3)
	for v := range X {
		X[v] = make([]float64, a.Cols)
		for i := range X[v] {
			X[v][i] = float64((i+v)%5) - 2
		}
	}
	wants := make([][]float64, len(X))
	for v := range X {
		wants[v] = make([]float64, a.Rows)
		a.MulVec(wants[v], X[v])
	}
	check := func(h *Handle) {
		Y := make([][]float64, len(X))
		for v := range Y {
			Y[v] = make([]float64, a.Rows)
		}
		h.MultiplyBatch(Y, X)
		for v := range X {
			for i := range wants[v] {
				if math.Abs(Y[v][i]-wants[v][i]) > 1e-9*(1+math.Abs(wants[v][i])) {
					t.Fatalf("%s: batch mismatch vector %d row %d", h.Name(), v, i)
				}
			}
		}
	}
	h, err := Analyze(m, a, Options{}) // fused path
	if err != nil {
		t.Fatal(err)
	}
	check(h)
	b, err := AnalyzeBaseline("merge", PAndE, m, a) // fallback path
	if err != nil {
		t.Fatal(err)
	}
	check(b)
	if h.Rows() != a.Rows || h.Cols() != a.Cols || h.Matrix() != a {
		t.Fatal("handle accessors")
	}
}

func TestMachineLookups(t *testing.T) {
	if len(Machines()) != 4 {
		t.Fatal("machines")
	}
	if _, ok := MachineByName("i9-13900KF"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := MachineByName("pentium-2"); ok {
		t.Fatal("lookup invented a machine")
	}
	for _, m := range []*Machine{IntelI912900KF(), IntelI913900KF(), AMDRyzen97950X3D(), AMDRyzen97950X()} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMatrixMarketRoundTripViaFacade(t *testing.T) {
	a := FromDense([][]float64{{1, 0, 2}, {0, 3, 0}}, 0)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("round trip mismatch")
	}
	if _, err := ReadMatrixMarketFile("/nonexistent.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNewCSRFacade(t *testing.T) {
	a, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 2})
	if err != nil || a.NNZ() != 2 {
		t.Fatalf("NewCSR: %v %v", a, err)
	}
	if _, err := NewCSR(2, 2, []int{0, 3, 2}, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("invalid CSR accepted")
	}
}

func TestTripletsFacade(t *testing.T) {
	c := &Triplets{Rows: 2, Cols: 2}
	c.Add(0, 1, 5)
	c.Add(1, 0, 6)
	a := c.ToCSR()
	if a.NNZ() != 2 {
		t.Fatal("triplets conversion")
	}
}

func TestProportions(t *testing.T) {
	m := AMDRyzen97950X3D()
	if p := DefaultProportion(m); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("AMD default proportion %v", p)
	}
	// A ~60MB-footprint matrix leans on the V-Cache CCD.
	big := Representative("shipsec1", 2)
	if p := ProportionFor(m, big); p <= 0.5 {
		t.Fatalf("V-Cache proportion %v, want > 0.5", p)
	}
}

func TestRepresentativeNamesFacade(t *testing.T) {
	names := RepresentativeNames()
	if len(names) != 22 {
		t.Fatal("roster")
	}
	found := false
	for _, n := range names {
		if n == "webbase-1M" {
			found = true
		}
	}
	if !found {
		t.Fatal("webbase-1M missing")
	}
}

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want message containing %q)", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, want message containing %q", r, substr)
		}
	}()
	f()
}

func TestMultiplyValidatesLengths(t *testing.T) {
	m := IntelI912900KF()
	a := Representative("dawson5", 64)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	mustPanicWith(t, "want Rows()", func() { h.Multiply(make([]float64, a.Rows+1), x) })
	mustPanicWith(t, "want Cols()", func() { h.Multiply(y, make([]float64, a.Cols-1)) })
	mustPanicWith(t, "output vectors", func() {
		h.MultiplyBatch([][]float64{y}, [][]float64{x, x})
	})
	mustPanicWith(t, "x[1]", func() {
		h.MultiplyBatch([][]float64{y, make([]float64, a.Rows)}, [][]float64{x, make([]float64, a.Cols+2)})
	})
	mustPanicWith(t, "y[0]", func() {
		h.MultiplyBatch([][]float64{make([]float64, 1)}, [][]float64{x})
	})
}

func TestHandleStatsCountsUsage(t *testing.T) {
	m := IntelI912900KF()
	a := Representative("rma10", 64)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	h.Multiply(y, x)
	h.Multiply(y, x)
	h.MultiplyBatch([][]float64{y, make([]float64, a.Rows), make([]float64, a.Rows)},
		[][]float64{x, x, x})
	s := h.Stats()
	if s.Algorithm != h.Name() || s.Rows != a.Rows || s.Cols != a.Cols || s.NNZ != a.NNZ() {
		t.Fatalf("shape stats: %+v", s)
	}
	if s.Cores <= 0 {
		t.Fatalf("cores: %+v", s)
	}
	if s.Multiplies != 2 || s.BatchMultiplies != 1 || s.BatchVectors != 3 {
		t.Fatalf("usage stats: %+v", s)
	}
}

// TestMultiplyZeroAllocsWhenTelemetryDisabled is the overhead guard behind
// the telemetry design: with collection off (the default), the steady-state
// Multiply hot path must not allocate at all — scratch buffers live on the
// Prepared, Parallel dispatches to a persistent worker pool, and every
// counter gates on one atomic load.
func TestMultiplyZeroAllocsWhenTelemetryDisabled(t *testing.T) {
	if TelemetryEnabled() {
		t.Fatal("telemetry unexpectedly enabled at test start")
	}
	m := IntelI912900KF()
	a := Representative("rma10", 32)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	h.Multiply(y, x) // warm the scratch and the worker pool
	if n := testing.AllocsPerRun(100, func() { h.Multiply(y, x) }); n != 0 {
		t.Fatalf("Multiply allocates %v times per op with telemetry disabled, want 0", n)
	}
}

// TestMultiplyBatchZeroAllocsWhenTelemetryDisabled extends the overhead
// guard to the fused batch path: once the pooled workspace has grown to
// the batch size, steady-state MultiplyBatch must not allocate — for any
// vector count, including ones below the warmed capacity.
func TestMultiplyBatchZeroAllocsWhenTelemetryDisabled(t *testing.T) {
	if TelemetryEnabled() {
		t.Fatal("telemetry unexpectedly enabled at test start")
	}
	m := IntelI912900KF()
	a := Representative("rma10", 32)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const maxNV = 11
	X := make([][]float64, maxNV)
	Y := make([][]float64, maxNV)
	for v := range X {
		X[v] = make([]float64, a.Cols)
		for i := range X[v] {
			X[v][i] = 1 + float64((i+v)%7)/7
		}
		Y[v] = make([]float64, a.Rows)
	}
	h.MultiplyBatch(Y, X) // warm the batch scratch to maxNV capacity
	for _, nv := range []int{maxNV, 8, 3, 1} {
		nv := nv
		if n := testing.AllocsPerRun(100, func() { h.MultiplyBatch(Y[:nv], X[:nv]) }); n != 0 {
			t.Fatalf("MultiplyBatch nv=%d allocates %v times per op with telemetry disabled, want 0", nv, n)
		}
	}
}

// TestMultiplyZeroAllocsWithAdaptation extends the overhead guard to the
// adaptive path: with a feedback loop attached, the between-epoch
// Multiply cost is the always-on span accumulators (atomic adds inside
// Compute) plus one mutex and counter in AfterMultiply — still zero heap
// allocations. Only the epoch-boundary rebalance itself allocates (the
// fresh regions slice), which a huge Every keeps out of the window.
func TestMultiplyZeroAllocsWithAdaptation(t *testing.T) {
	if TelemetryEnabled() {
		t.Fatal("telemetry unexpectedly enabled at test start")
	}
	m := IntelI912900KF()
	a := Representative("rma10", 32)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.EnableAdaptation(AdapterOptions{Every: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	h.Multiply(y, x) // warm the scratch and the worker pool
	if n := testing.AllocsPerRun(100, func() { h.Multiply(y, x) }); n != 0 {
		t.Fatalf("Multiply allocates %v times per op with adaptation enabled, want 0", n)
	}
	st, ok := h.AdaptationStats()
	if !ok {
		t.Fatal("AdaptationStats: adapter missing after EnableAdaptation")
	}
	if st.Multiplies < 100 {
		t.Fatalf("adapter observed %d multiplies, want >= 100", st.Multiplies)
	}
}

// TestAdaptationRequiresHASpMV: baseline algorithms have no two-level
// partition to move, so the adaptive surface must refuse them with
// ErrNotAdaptive, and AdaptationStats must report no adapter.
func TestAdaptationRequiresHASpMV(t *testing.T) {
	m := IntelI912900KF()
	a := Representative("rma10", 32)
	h, err := AnalyzeBaseline("csr", PAndE, m, a)
	if err != nil {
		t.Fatal(err)
	}
	var notAdaptive *ErrNotAdaptive
	if err := h.EnableAdaptation(AdapterOptions{}); !errors.As(err, &notAdaptive) {
		t.Fatalf("EnableAdaptation on csr: got %v, want ErrNotAdaptive", err)
	}
	if err := h.Repartition(RepartitionPlan{PProportion: 0.5}); !errors.As(err, &notAdaptive) {
		t.Fatalf("Repartition on csr: got %v, want ErrNotAdaptive", err)
	}
	if _, ok := h.AdaptationStats(); ok {
		t.Fatal("AdaptationStats reported an adapter on a baseline handle")
	}

	// The HASpMV handle accepts both, and DisableAdaptation detaches.
	ha, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ha.Repartition(RepartitionPlan{PProportion: 0.4}); err != nil {
		t.Fatalf("Repartition on HASpMV: %v", err)
	}
	if err := ha.EnableAdaptation(AdapterOptions{}); err != nil {
		t.Fatalf("EnableAdaptation on HASpMV: %v", err)
	}
	if _, ok := ha.AdaptationStats(); !ok {
		t.Fatal("AdaptationStats missing after EnableAdaptation")
	}
	ha.DisableAdaptation()
	if _, ok := ha.AdaptationStats(); ok {
		t.Fatal("AdaptationStats still reports an adapter after DisableAdaptation")
	}
}

func TestTelemetryFacadeRoundTrip(t *testing.T) {
	EnableTelemetry()
	defer DisableTelemetry()
	if !TelemetryEnabled() {
		t.Fatal("EnableTelemetry did not enable")
	}
	m := IntelI912900KF()
	a := Representative("rma10", 64)
	h, err := Analyze(m, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	h.Multiply(y, x)

	s := TelemetrySnapshot()
	if !s.Enabled || len(s.Cores) == 0 || len(s.Partitions) == 0 {
		t.Fatalf("snapshot after instrumented run: enabled=%v cores=%d partitions=%d",
			s.Enabled, len(s.Cores), len(s.Partitions))
	}

	var trace bytes.Buffer
	if err := WriteTelemetryTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(trace.Bytes()) {
		t.Fatal("trace is not valid JSON")
	}

	var prom bytes.Buffer
	if err := WriteTelemetryMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "haspmv_enabled 1") {
		t.Fatalf("prometheus body missing haspmv_enabled:\n%.400s", prom.String())
	}

	srv, err := ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == "" {
		t.Fatal("server has no address")
	}
	srv.Close()
}

func TestOptionsVariantsThroughFacade(t *testing.T) {
	m := IntelI913900KF()
	a := Representative("cop20k_A", 64)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 0.25 * float64(i%5)
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for _, opts := range []Options{
		{Metric: NNZCost},
		{Metric: RowCost},
		{Config: POnly},
		{Config: EOnly},
		{DisableReorder: true},
		{OneLevel: true},
		{PProportion: 0.66, Base: 40},
	} {
		h, err := Analyze(m, a, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		y := make([]float64, a.Rows)
		h.Multiply(y, x)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: wrong result at %d", opts, i)
			}
		}
	}
}
