// PageRank: the paper's second motivating workload family is graph
// processing (GraphBLAS-style frameworks), whose kernels are SpMV on
// power-law adjacency matrices — the webbase-1M / in-2004 shape where
// HACSR's row reorder sends hub rows to the E-group. This example builds
// a scale-free web graph, runs power iteration with a HASpMV handle on
// the column-stochastic transition matrix, and reports the top pages.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"haspmv"

	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

const (
	pages   = 50000
	damping = 0.85
)

func main() {
	// A webbase-like adjacency matrix: power-law out-degrees with hub
	// columns. adj[i][j] = 1 means page i links to page j.
	adj := gen.Spec{
		Name: "webgraph", Rows: pages, Cols: pages,
		TargetNNZ: pages * 8,
		Dist:      gen.NewPowerLen(1, pages/10, 8),
		Place:     gen.Skewed, Seed: 42, HubRows: 3,
	}.Generate()

	// PageRank iterates r <- d*M*r + (1-d)/n with M = A^T scaled by
	// out-degree: building M is standard pre-processing.
	m := transition(adj)
	machine := haspmv.AMDRyzen97950X3D()
	h, err := haspmv.Analyze(machine, m, haspmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stats := sparse.ComputeRowStats(m)
	fmt.Printf("web graph: %d pages, %d links, in-degree max %d (gini %.2f)\n",
		pages, m.NNZ(), stats.MaxRowLen, stats.Gini)

	rank := make([]float64, pages)
	next := make([]float64, pages)
	for i := range rank {
		rank[i] = 1.0 / pages
	}
	// Dangling pages (no outlinks) redistribute uniformly.
	dangling := danglingPages(adj)

	iters := 0
	for ; iters < 200; iters++ {
		h.Multiply(next, rank) // next = M * rank
		dangleMass := 0.0
		for _, p := range dangling {
			dangleMass += rank[p]
		}
		base := (1-damping)/float64(pages) + damping*dangleMass/float64(pages)
		delta := 0.0
		for i := range next {
			v := damping*next[i] + base
			delta += math.Abs(v - rank[i])
			next[i] = v
		}
		rank, next = next, rank
		if delta < 1e-10 {
			iters++
			break
		}
	}

	sum := 0.0
	for _, v := range rank {
		sum += v
	}
	fmt.Printf("converged in %d iterations, total mass %.6f\n", iters, sum)

	type pr struct {
		page int
		rank float64
	}
	top := make([]pr, pages)
	for i, v := range rank {
		top[i] = pr{i, v}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Println("top pages:")
	for _, t := range top[:5] {
		fmt.Printf("  page %6d  rank %.6f\n", t.page, t.rank)
	}

	r := h.Simulate(nil)
	fmt.Printf("modeled SpMV on %s: %.3f ms/iteration (%.2f GFlops, auto P-share %.2f)\n",
		machine.Name, 1e3*r.Seconds, r.GFlops, haspmv.ProportionFor(machine, m))
}

// transition builds M = A^T with columns scaled by out-degree, so that
// (M r)[i] sums rank/outdeg over pages linking to i.
func transition(adj *haspmv.Matrix) *haspmv.Matrix {
	m := adj.Transpose()
	outdeg := make([]float64, adj.Rows)
	for i := 0; i < adj.Rows; i++ {
		outdeg[i] = float64(adj.RowLen(i))
	}
	for k, src := range m.ColIdx {
		if outdeg[src] > 0 {
			m.Val[k] = 1.0 / outdeg[src]
		}
	}
	return m
}

func danglingPages(adj *haspmv.Matrix) []int {
	var d []int
	for i := 0; i < adj.Rows; i++ {
		if adj.RowLen(i) == 0 {
			d = append(d, i)
		}
	}
	return d
}
