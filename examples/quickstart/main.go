// Quickstart: build a small sparse matrix, analyze it with HASpMV for an
// asymmetric multicore processor, multiply, and compare the modeled AMP
// performance against the heterogeneity-blind baselines.
package main

import (
	"fmt"
	"log"

	"haspmv"
)

func main() {
	// The paper's flagship platform: 8 P-cores + 8 E-cores.
	machine := haspmv.IntelI912900KF()

	// One of the paper's 22 representative matrices (Table II), scaled
	// down 16x so this demo runs instantly: rma10 has rows of widely
	// varying cache cost, which is exactly where HASpMV's cache-line
	// partitioning shines.
	a := haspmv.Representative("rma10", 16)
	fmt.Printf("matrix: %dx%d, %d nonzeros\n", a.Rows, a.Cols, a.NNZ())

	// Analyze once (the inspector step: HACSR reorder + two-level
	// partition), multiply many times (the executor step).
	h, err := haspmv.Analyze(machine, a, haspmv.Options{})
	if err != nil {
		log.Fatal(err)
	}

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1.0 / float64(i+1)
	}
	y := make([]float64, a.Rows)
	h.Multiply(y, x)

	// Verify against the serial reference.
	ref := make([]float64, a.Rows)
	a.MulVec(ref, x)
	maxErr := 0.0
	for i := range y {
		if d := abs(y[i] - ref[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max |y - reference| = %.2e\n", maxErr)

	// Modeled performance on the AMP vs the baselines.
	fmt.Printf("\nmodeled on %s:\n", machine.Name)
	r := h.Simulate(nil)
	fmt.Printf("  %-24s %8.2f GFlops\n", h.Name(), r.GFlops)
	for _, name := range []string{"mkl", "csr5", "merge"} {
		b, err := haspmv.AnalyzeBaseline(name, haspmv.PAndE, machine, a)
		if err != nil {
			log.Fatal(err)
		}
		br := b.Simulate(nil)
		fmt.Printf("  %-24s %8.2f GFlops  (HASpMV speedup %.2fx)\n",
			b.Name(), br.GFlops, br.Seconds/r.Seconds)
	}
	fmt.Printf("\nauto-calibrated P-proportion: %.3f\n", haspmv.ProportionFor(machine, a))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
