// Autotune: Section III derives HASpMV's P_proportion from
// micro-benchmarks of the two core groups. This example reproduces that
// calibration loop programmatically: sweep the proportion on the machine
// model for a workload matrix, find the best split, and compare it with
// the closed-form heuristic Analyze uses by default — then show what the
// tuned value is worth against the heterogeneity-blind even split.
package main

import (
	"fmt"
	"log"

	"haspmv"
)

func main() {
	for _, machineName := range []string{"i9-12900KF", "i9-13900KF", "7950X3D"} {
		machine, _ := haspmv.MachineByName(machineName)
		a := haspmv.Representative("shipsec1", 16)

		best, bestTime := 0.0, 0.0
		fmt.Printf("\n# %s, shipsec1@1/16 (%d nnz): P-proportion sweep\n", machineName, a.NNZ())
		fmt.Println("prop   time(ms)  GFlops")
		for prop := 0.30; prop <= 0.901; prop += 0.05 {
			h, err := haspmv.Analyze(machine, a, haspmv.Options{PProportion: prop})
			if err != nil {
				log.Fatal(err)
			}
			r := h.Simulate(nil)
			marker := ""
			if bestTime == 0 || r.Seconds < bestTime {
				best, bestTime = prop, r.Seconds
				marker = "  <- best so far"
			}
			fmt.Printf("%.2f   %.4f    %.2f%s\n", prop, 1e3*r.Seconds, r.GFlops, marker)
		}

		auto := haspmv.ProportionFor(machine, a)
		hAuto, err := haspmv.Analyze(machine, a, haspmv.Options{})
		if err != nil {
			log.Fatal(err)
		}
		autoTime := hAuto.Simulate(nil).Seconds

		hEven, err := haspmv.Analyze(machine, a, haspmv.Options{OneLevel: true})
		if err != nil {
			log.Fatal(err)
		}
		evenTime := hEven.Simulate(nil).Seconds

		fmt.Printf("swept best: %.2f (%.4f ms)\n", best, 1e3*bestTime)
		fmt.Printf("heuristic:  %.2f (%.4f ms, %.1f%% off the swept best)\n",
			auto, 1e3*autoTime, 100*(autoTime-bestTime)/bestTime)
		fmt.Printf("even split: %.4f ms -> tuned split is %.2fx faster\n",
			1e3*evenTime, evenTime/bestTime)
	}
}
