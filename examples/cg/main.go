// Conjugate gradient: the paper's introduction motivates SpMV as the
// dominant kernel of iterative sparse solvers. This example builds a
// symmetric positive-definite system (a 2D 5-point Poisson stencil), solves
// it with CG, and uses a HASpMV handle for every A*p product — the
// analyze-once / multiply-many pattern CG rewards.
package main

import (
	"fmt"
	"log"
	"math"

	"haspmv"
)

// poisson2D assembles the 5-point Laplacian on an n x n grid: an SPD
// matrix with 4 on the diagonal and -1 to each grid neighbor.
func poisson2D(n int) *haspmv.Matrix {
	size := n * n
	c := &haspmv.Triplets{Rows: size, Cols: size}
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := id(i, j)
			c.Add(r, r, 4)
			if i > 0 {
				c.Add(r, id(i-1, j), -1)
			}
			if i < n-1 {
				c.Add(r, id(i+1, j), -1)
			}
			if j > 0 {
				c.Add(r, id(i, j-1), -1)
			}
			if j < n-1 {
				c.Add(r, id(i, j+1), -1)
			}
		}
	}
	return c.ToCSR()
}

func main() {
	const grid = 200 // 40,000 unknowns, ~200k nonzeros
	a := poisson2D(grid)
	machine := haspmv.IntelI913900KF()

	h, err := haspmv.Analyze(machine, a, haspmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG on %dx%d Poisson system (%d nnz), SpMV by %s\n",
		a.Rows, a.Cols, a.NNZ(), h.Name())

	// Right-hand side: b = A * ones, so the exact solution is ones.
	n := a.Rows
	exact := make([]float64, n)
	for i := range exact {
		exact[i] = 1
	}
	b := make([]float64, n)
	h.Multiply(b, exact)

	x := make([]float64, n) // start from zero
	r := append([]float64(nil), b...)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rs := dot(r, r)
	norm0 := math.Sqrt(rs)

	const maxIter = 2000
	const tol = 1e-10
	iters := 0
	for ; iters < maxIter; iters++ {
		h.Multiply(ap, p) // the HASpMV kernel
		alpha := rs / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) < tol*norm0 {
			iters++
			break
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}

	errNorm := 0.0
	for i := range x {
		d := x[i] - exact[i]
		errNorm += d * d
	}
	errNorm = math.Sqrt(errNorm / float64(n))
	fmt.Printf("converged in %d iterations, relative residual %.2e, RMS error vs exact %.2e\n",
		iters, math.Sqrt(rs)/norm0, errNorm)

	// What the solver's SpMV costs on the AMP, per iteration.
	sim := h.Simulate(nil)
	fmt.Printf("modeled SpMV on %s: %.3f ms/iteration (%.2f GFlops)\n",
		machine.Name, 1e3*sim.Seconds, sim.GFlops)
	fmt.Printf("modeled SpMV share of a %d-iteration solve: %.1f ms\n",
		iters, 1e3*sim.Seconds*float64(iters))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
