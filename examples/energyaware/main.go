// Energy-aware scheduling: single-ISA AMPs exist for energy efficiency
// (Kumar et al., MICRO'03), so this example exercises the reproduction's
// energy extension: it compares the modeled energy per SpMV of HASpMV and
// the baselines, calibrates the P-proportion with the golden-section
// tuner, and shows the fused multi-vector path that block solvers use.
package main

import (
	"fmt"
	"log"

	"haspmv"
)

func main() {
	machine := haspmv.ARMBigLittleLike() // the most power-asymmetric AMP
	a := haspmv.Representative("cant", 16)
	fmt.Printf("matrix cant@1/16 (%d nnz) on %s\n\n", a.NNZ(), machine.Name)

	fmt.Printf("%-24s %10s %10s %12s\n", "method", "time(ms)", "mJ/op", "GFlops/W")
	show := func(h *haspmv.Handle) {
		r, e := h.SimulateEnergy(nil)
		fmt.Printf("%-24s %10.4f %10.4f %12.2f\n",
			h.Name(), 1e3*r.Seconds, 1e3*e.Joules, e.GFlopsPerWatt)
	}
	h, err := haspmv.Analyze(machine, a, haspmv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show(h)
	for _, name := range []string{"csr", "csr5", "merge"} {
		b, err := haspmv.AnalyzeBaseline(name, haspmv.PAndE, machine, a)
		if err != nil {
			log.Fatal(err)
		}
		show(b)
	}
	// Running only the LITTLE cluster trades time for watts.
	little, err := haspmv.Analyze(machine, a, haspmv.Options{Config: haspmv.EOnly})
	if err != nil {
		log.Fatal(err)
	}
	show(little)

	// Calibrate the split the way Section III does, programmatically.
	prop, sec, err := haspmv.TuneProportion(machine, a, haspmv.Options{}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuned big-cluster share: %.2f (%.4f ms; heuristic %.2f)\n",
		prop, 1e3*sec, haspmv.ProportionFor(machine, a))

	// The fused multi-vector path for block methods.
	const nv = 4
	X := make([][]float64, nv)
	Y := make([][]float64, nv)
	for v := range X {
		X[v] = make([]float64, a.Cols)
		Y[v] = make([]float64, a.Rows)
		for i := range X[v] {
			X[v][i] = float64(v + i%3)
		}
	}
	h.MultiplyBatch(Y, X)
	check := make([]float64, a.Rows)
	a.MulVec(check, X[nv-1])
	maxd := 0.0
	for i := range check {
		if d := abs(check[i] - Y[nv-1][i]); d > maxd {
			maxd = d
		}
	}
	fmt.Printf("fused %d-vector multiply verified (max err %.1e)\n", nv, maxd)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
