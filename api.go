// Package haspmv is a Go reproduction of "HASpMV: Heterogeneity-Aware
// Sparse Matrix-Vector Multiplication on Modern Asymmetric Multicore
// Processors" (CLUSTER 2023).
//
// The package exposes a curated facade over the implementation packages:
//
//   - sparse matrices (CSR with COO and Matrix Market interchange),
//   - the four Table I machine models (i9-12900KF, i9-13900KF, Ryzen 9
//     7950X3D and 7950X) driving a deterministic performance simulator
//     that substitutes for the paper's hardware (see DESIGN.md),
//   - HASpMV itself (HACSR reorder, cache-line cost partitioning, the
//     conflict-resolving executor) plus the four baselines the paper
//     compares against (oneMKL-like, AOCL-like, CSR5, Merge-SpMV),
//   - synthetic matrix generators reproducing Table II's 22
//     representative matrices and a SuiteSparse-like corpus.
//
// Quick start:
//
//	m := haspmv.IntelI912900KF()
//	a := haspmv.Representative("rma10", 16)
//	h, err := haspmv.Analyze(m, a, haspmv.Options{})
//	if err != nil { ... }
//	y := make([]float64, a.Rows)
//	h.Multiply(y, x)                 // real goroutine-parallel SpMV
//	r := h.Simulate(nil)             // modeled time on the AMP
//	fmt.Println(r.GFlops)
package haspmv

import (
	"fmt"
	"io"
	"sync/atomic"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/mmio"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"

	"haspmv/internal/baselines/csr5"
	"haspmv/internal/baselines/csrsimple"
	"haspmv/internal/baselines/mergespmv"
	"haspmv/internal/baselines/vendorlike"
	haspmvcore "haspmv/internal/core"
)

// Matrix is a CSR sparse matrix (see the methods on sparse.CSR: NNZ,
// MulVec, Validate, Transpose, ...).
type Matrix = sparse.CSR

// Triplets is a COO matrix under assembly; convert with ToCSR.
type Triplets = sparse.COO

// NewCSR builds a validated CSR matrix from raw arrays.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*Matrix, error) {
	return sparse.NewCSR(rows, cols, rowPtr, colIdx, val)
}

// FromDense converts a dense matrix, keeping entries with |v| > drop.
func FromDense(dense [][]float64, drop float64) *Matrix {
	return sparse.FromDense(dense, drop)
}

// ReadMatrixMarket parses a Matrix Market stream (coordinate or array;
// real, integer or pattern; general, symmetric or skew-symmetric).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mmio.Read(r) }

// ReadMatrixMarketFile reads a .mtx file from disk.
func ReadMatrixMarketFile(path string) (*Matrix, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket writes the matrix in coordinate/real/general form.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return mmio.Write(w, a) }

// Machine describes an asymmetric multicore processor for the simulator.
type Machine = amp.Machine

// CoreConfig selects which cores participate: PAndE (default), POnly
// (P-cores / CCD0) or EOnly (E-cores / CCD1).
type CoreConfig = amp.Config

// Core-composition constants (the three lines of Figures 3 and 4).
const (
	PAndE = amp.PAndE
	POnly = amp.POnly
	EOnly = amp.EOnly
)

// The four Table I machines.
func IntelI912900KF() *Machine   { return amp.IntelI912900KF() }
func IntelI913900KF() *Machine   { return amp.IntelI913900KF() }
func AMDRyzen97950X3D() *Machine { return amp.AMDRyzen97950X3D() }
func AMDRyzen97950X() *Machine   { return amp.AMDRyzen97950X() }

// Machines lists the four Table I presets.
func Machines() []*Machine { return amp.All() }

// Extension presets beyond Table I: the other single-ISA AMP families the
// paper cites. AppleM2Like models an M2-class chip (128-byte cache lines,
// unified memory); ARMBigLittleLike models a big.LITTLE mobile SoC.
func AppleM2Like() *Machine      { return amp.AppleM2Like() }
func ARMBigLittleLike() *Machine { return amp.ARMBigLittleLike() }

// MachineByName resolves a Table I name ("i9-12900KF", "7950X3D", ...).
func MachineByName(name string) (*Machine, bool) { return amp.ByName(name) }

// Options configure HASpMV (see core.Options); the zero value selects the
// paper's defaults.
type Options = haspmvcore.Options

// CostMetric selects the partitioning workload measure.
type CostMetric = haspmvcore.CostMetric

// Partitioning metrics (Figure 9 compares all three).
const (
	CacheLineCost = haspmvcore.CacheLineCost
	NNZCost       = haspmvcore.NNZCost
	RowCost       = haspmvcore.RowCost
)

// ExecMode selects how rows cut across cores are resolved (see
// core.ExecMode).
type ExecMode = haspmvcore.ExecMode

// Execution modes: auto dispatch on row-length skew, the classic serial
// extraY epilogue, or forced speculative segmented-sum execution with
// the parallel cut-row patch.
const (
	ExecAuto   = haspmvcore.ExecAuto
	ExecSerial = haspmvcore.ExecSerial
	ExecSegSum = haspmvcore.ExecSegSum
)

// IndexMode selects the column-index stream policy (see core.IndexMode).
type IndexMode = haspmvcore.IndexMode

// Index-stream policies: auto per-region selection over the compressed
// streams, the []int reference oracle, u32 only, or forced DIA-style
// diagonal execution.
const (
	IndexAuto      = haspmvcore.IndexAuto
	IndexReference = haspmvcore.IndexReference
	IndexU32       = haspmvcore.IndexU32
	IndexForceDia  = haspmvcore.IndexForceDia
)

// ValueMode selects the value stream policy (see core.ValueMode).
type ValueMode = haspmvcore.ValueMode

// Value-stream policies: auto palette compression (bit-exact), the
// []float64 reference, or the lossy f32 stream (which additionally
// requires Options.AllowF32Values).
const (
	ValueAuto      = haspmvcore.ValueAuto
	ValueReference = haspmvcore.ValueReference
	ValueForceF32  = haspmvcore.ValueForceF32
)

// ReorderMode selects the HACSR row-reorder strategy (see
// core.ReorderMode).
type ReorderMode = haspmvcore.ReorderMode

// Row-reorder strategies: the paper's length sort (default), the
// cost-model autotuner picking per matrix, or one of the forced orders
// (natural, bipartite reverse Cuthill-McKee, first-column BFS cluster).
const (
	ReorderLength   = haspmvcore.ReorderLength
	ReorderAuto     = haspmvcore.ReorderAuto
	ReorderIdentity = haspmvcore.ReorderIdentity
	ReorderRCM      = haspmvcore.ReorderRCM
	ReorderCluster  = haspmvcore.ReorderCluster
)

// ModelParams are the performance-model calibration constants.
type ModelParams = costmodel.Params

// DefaultModelParams returns the calibrated model defaults.
func DefaultModelParams() ModelParams { return costmodel.DefaultParams() }

// ModelResult is a simulator estimate (Seconds, GFlops, per-core costs).
type ModelResult = costmodel.Result

// Handle is an analyzed matrix ready for repeated multiplication — the
// inspector-executor pattern shared by HASpMV and all baselines.
type Handle struct {
	machine *Machine
	matrix  *Matrix
	prep    exec.Prepared
	name    string

	multiplies      atomic.Int64
	batchMultiplies atomic.Int64
	batchVectors    atomic.Int64

	// adapter, when set, closes the feedback loop after every multiply
	// (see EnableAdaptation).
	adapter atomic.Pointer[haspmvcore.Adapter]
}

// Analyze prepares HASpMV for the matrix on the machine.
func Analyze(m *Machine, a *Matrix, opts Options) (*Handle, error) {
	return analyzeWith(haspmvcore.New(opts), m, a)
}

// AnalyzeBaseline prepares one of the comparison algorithms; name is one
// of "csr" (Algorithm 1 row split), "csr-nnz", "mkl", "aocl", "csr5",
// "merge".
func AnalyzeBaseline(name string, cfg CoreConfig, m *Machine, a *Matrix) (*Handle, error) {
	alg, err := BaselineByName(name, cfg)
	if err != nil {
		return nil, err
	}
	return analyzeWith(alg, m, a)
}

// BaselineByName resolves a baseline algorithm by its short name.
func BaselineByName(name string, cfg CoreConfig) (exec.Algorithm, error) {
	switch name {
	case "csr":
		return csrsimple.New(cfg, csrsimple.ByRows), nil
	case "csr-nnz":
		return csrsimple.New(cfg, csrsimple.ByNNZ), nil
	case "mkl":
		return vendorlike.New(vendorlike.MKL, cfg), nil
	case "aocl":
		return vendorlike.New(vendorlike.AOCL, cfg), nil
	case "csr5":
		return csr5.New(cfg), nil
	case "merge":
		return mergespmv.New(cfg), nil
	default:
		return nil, &UnknownAlgorithmError{Name: name}
	}
}

// UnknownAlgorithmError is returned for unrecognized baseline names.
type UnknownAlgorithmError struct{ Name string }

func (e *UnknownAlgorithmError) Error() string {
	return "haspmv: unknown algorithm " + e.Name + ` (want "csr", "csr-nnz", "mkl", "aocl", "csr5" or "merge")`
}

func analyzeWith(alg exec.Algorithm, m *Machine, a *Matrix) (*Handle, error) {
	prep, err := alg.Prepare(m, a)
	if err != nil {
		return nil, err
	}
	return &Handle{machine: m, matrix: a, prep: prep, name: alg.Name()}, nil
}

// Name identifies the prepared algorithm.
func (h *Handle) Name() string { return h.name }

// Rows and Cols return the analyzed matrix's dimensions.
func (h *Handle) Rows() int { return h.matrix.Rows }

// Cols returns the analyzed matrix's column count.
func (h *Handle) Cols() int { return h.matrix.Cols }

// Matrix returns the analyzed matrix (callers must not mutate it).
func (h *Handle) Matrix() *Matrix { return h.matrix }

// MultiplyBatch computes Y[v] = A*X[v] for a block of vectors, using the
// fused multi-vector path when the algorithm provides one. HASpMV walks
// each row fragment's value and index streams once per block of up to 8
// vectors through register-blocked kernels (one accumulator per vector),
// and pools its workspace on the handle so the steady-state path is
// allocation-free for any batch size. Every X[v] must have length Cols()
// and every Y[v] length Rows(); mismatches panic with a descriptive
// message rather than corrupting results inside a kernel goroutine.
func (h *Handle) MultiplyBatch(Y, X [][]float64) {
	if len(Y) != len(X) {
		panic(fmt.Sprintf("haspmv: MultiplyBatch got %d output vectors for %d right-hand sides", len(Y), len(X)))
	}
	for v := range X {
		if len(X[v]) != h.matrix.Cols {
			panic(fmt.Sprintf("haspmv: MultiplyBatch x[%d] has length %d, want Cols() = %d", v, len(X[v]), h.matrix.Cols))
		}
		if len(Y[v]) != h.matrix.Rows {
			panic(fmt.Sprintf("haspmv: MultiplyBatch y[%d] has length %d, want Rows() = %d", v, len(Y[v]), h.matrix.Rows))
		}
	}
	h.batchMultiplies.Add(1)
	h.batchVectors.Add(int64(len(X)))
	exec.ComputeBatch(h.prep, Y, X)
	if a := h.adapter.Load(); a != nil {
		a.AfterMultiply()
	}
}

// Multiply computes y = A*x on the simulated cores. x must have length
// Cols() and y length Rows(); mismatches panic with a descriptive message
// (a short y would otherwise corrupt results or crash deep inside a
// kernel goroutine). Note that Go cannot pin goroutines to P/E cores, so
// host wall-clock does not reflect AMP asymmetry; use Simulate for
// modeled AMP timing.
func (h *Handle) Multiply(y, x []float64) {
	if len(y) != h.matrix.Rows {
		panic(fmt.Sprintf("haspmv: Multiply y has length %d, want Rows() = %d", len(y), h.matrix.Rows))
	}
	if len(x) != h.matrix.Cols {
		panic(fmt.Sprintf("haspmv: Multiply x has length %d, want Cols() = %d", len(x), h.matrix.Cols))
	}
	h.multiplies.Add(1)
	h.prep.Compute(y, x)
	if a := h.adapter.Load(); a != nil {
		a.AfterMultiply()
	}
}

// Simulate prices the prepared SpMV on the machine model. Passing nil
// params uses the calibrated defaults.
func (h *Handle) Simulate(p *ModelParams) ModelResult {
	params := costmodel.DefaultParams()
	if p != nil {
		params = *p
	}
	return exec.Simulate(h.machine, params, h.matrix, h.prep)
}

// GenSpec describes a synthetic matrix (see gen.Spec).
type GenSpec = gen.Spec

// Representative generates one of Table II's 22 matrices at the given
// scale divisor (1 = published size; 16 = laptop-fast default).
func Representative(name string, scale int) *Matrix {
	return gen.Representative(name, scale)
}

// RepresentativeNames lists Table II's matrices in paper order.
func RepresentativeNames() []string { return gen.RepresentativeNames() }

// DefaultProportion exposes the machine-derived level-1 split share.
func DefaultProportion(m *Machine) float64 { return haspmvcore.DefaultProportion(m) }

// ProportionFor exposes the matrix-aware level-1 split share used by
// Analyze when Options.PProportion is unset.
func ProportionFor(m *Machine, a *Matrix) float64 { return haspmvcore.ProportionFor(m, a) }

// Energy is the modeled package energy of one SpMV (core + uncore), an
// extension beyond the paper's evaluation.
type Energy = costmodel.Energy

// SimulateEnergy prices the handle's SpMV and derives its energy.
func (h *Handle) SimulateEnergy(p *ModelParams) (ModelResult, Energy) {
	r := h.Simulate(p)
	return r, costmodel.EstimateEnergy(h.machine, r)
}

// ---------------------------------------------------------------- telemetry

// TelemetryStats is a point-in-time snapshot of the telemetry registry
// and (when enabled) the active collector: counters, gauges, phase
// timers, per-core execution totals, span counts and partition records.
type TelemetryStats = telemetry.Stats

// TelemetryServer serves /metrics (Prometheus text format), /debug/vars
// (expvar) and /debug/pprof on its own mux.
type TelemetryServer = telemetry.Server

// EnableTelemetry turns on instrumentation collection across the whole
// pipeline (phase timers, per-core spans, partition records). The hot
// path is designed so that with telemetry disabled — the default —
// Multiply performs zero additional allocations and only nil-check
// overhead.
func EnableTelemetry() { telemetry.Enable() }

// DisableTelemetry turns collection back off. Registry counters keep
// their values.
func DisableTelemetry() { telemetry.Disable() }

// TelemetryEnabled reports whether collection is currently on.
func TelemetryEnabled() bool { return telemetry.Enabled() }

// TelemetrySnapshot returns the global telemetry view (the same object
// expvar publishes under the "haspmv" key once telemetry is enabled).
func TelemetrySnapshot() TelemetryStats { return telemetry.Snapshot() }

// ServeTelemetry starts an HTTP server exposing /metrics, /debug/vars and
// /debug/pprof on addr (":0" picks an ephemeral port; query Addr()).
func ServeTelemetry(addr string) (*TelemetryServer, error) { return telemetry.Serve(addr) }

// WriteTelemetryTrace exports the active collector as Chrome trace_event
// JSON — one span per simulated core per multiply plus the partition
// decisions — openable in chrome://tracing or https://ui.perfetto.dev.
// It errors when telemetry is disabled.
func WriteTelemetryTrace(w io.Writer) error { return telemetry.WriteTrace(w) }

// WriteTelemetryMetrics renders the registry and active collector in the
// Prometheus text exposition format (the body of /metrics).
func WriteTelemetryMetrics(w io.Writer) error { return telemetry.WritePrometheus(w) }

// HandleStats summarize one handle's shape and usage.
type HandleStats struct {
	// Algorithm is the prepared method's report name.
	Algorithm string
	// Rows, Cols and NNZ describe the analyzed matrix.
	Rows, Cols, NNZ int
	// Cores is the number of per-core work assignments the partition
	// produced.
	Cores int
	// Multiplies counts Multiply calls on this handle.
	Multiplies int64
	// BatchMultiplies and BatchVectors count MultiplyBatch calls and the
	// total right-hand sides they carried.
	BatchMultiplies, BatchVectors int64
}

// Stats returns this handle's usage counters and partition summary. For
// the pipeline-wide view (phase timers, per-core spans, traces) see
// TelemetrySnapshot.
func (h *Handle) Stats() HandleStats {
	return HandleStats{
		Algorithm:       h.name,
		Rows:            h.matrix.Rows,
		Cols:            h.matrix.Cols,
		NNZ:             h.matrix.NNZ(),
		Cores:           len(h.prep.Assignments()),
		Multiplies:      h.multiplies.Load(),
		BatchMultiplies: h.batchMultiplies.Load(),
		BatchVectors:    h.batchVectors.Load(),
	}
}

// ------------------------------------------------------------- adaptation

// AdapterOptions tune the online repartitioning feedback loop (see
// core.AdapterOptions; the zero value selects the defaults).
type AdapterOptions = haspmvcore.AdapterOptions

// AdapterStats snapshot the feedback loop's progress.
type AdapterStats = haspmvcore.AdapterStats

// RepartitionPlan is a partition target for Repartition: the level-1
// P-group cost share plus optional per-core level-2 weights.
type RepartitionPlan = haspmvcore.Plan

// ErrNotAdaptive is returned when adaptation or repartitioning is
// requested on a baseline handle (only HASpMV keeps the cost prefix sums
// needed for boundary-only moves).
type ErrNotAdaptive struct{ Algorithm string }

func (e *ErrNotAdaptive) Error() string {
	return "haspmv: " + e.Algorithm + " does not support online repartitioning (HASpMV only)"
}

// Repartition moves the handle's partition boundaries to the plan without
// re-analyzing the matrix — O(cores·log nnz) binary searches against the
// cached cost prefix sums, safe under concurrent Multiply calls.
func (h *Handle) Repartition(plan RepartitionPlan) error {
	hp, ok := h.prep.(*haspmvcore.Prepared)
	if !ok {
		return &ErrNotAdaptive{Algorithm: h.name}
	}
	return hp.Repartition(plan)
}

// EnableAdaptation attaches an online feedback loop to the handle: every
// Multiply/MultiplyBatch feeds the always-on per-core span accumulators,
// and every AdapterOptions.Every calls the loop rebalances the two-level
// partition toward the measured per-core rates (keeping the best-seen
// plan and rolling back regressions, so steady-state throughput never
// ends below the static plan's). Replaces any previous adapter.
func (h *Handle) EnableAdaptation(opts AdapterOptions) error {
	hp, ok := h.prep.(*haspmvcore.Prepared)
	if !ok {
		return &ErrNotAdaptive{Algorithm: h.name}
	}
	h.adapter.Store(haspmvcore.NewAdapter(hp, opts))
	return nil
}

// DisableAdaptation detaches the feedback loop, freezing the partition
// wherever the adapter left it.
func (h *Handle) DisableAdaptation() { h.adapter.Store(nil) }

// AdaptationStats reports the feedback loop's progress; ok is false when
// adaptation was never enabled.
func (h *Handle) AdaptationStats() (stats AdapterStats, ok bool) {
	a := h.adapter.Load()
	if a == nil {
		return AdapterStats{}, false
	}
	return a.Stats(), true
}

// TuneProportion golden-section-searches the level-1 split share that
// minimizes the modeled time for this matrix on this machine, refining
// the ProportionFor heuristic the way Section III's micro-benchmarks
// calibrate the real implementation. tol <= 0 selects 0.01.
func TuneProportion(m *Machine, a *Matrix, opts Options, tol float64) (proportion, seconds float64, err error) {
	return haspmvcore.TuneProportion(m, costmodel.DefaultParams(), a, opts, tol)
}
