package solver

import (
	"math"
	"math/rand"
	"testing"

	"haspmv"
)

// poisson1D builds the SPD tridiagonal [-1, 2, -1] system.
func poisson1D(n int) *haspmv.Matrix {
	c := &haspmv.Triplets{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// nonsymmetric builds a diagonally dominant nonsymmetric matrix.
func nonsymmetric(n int, seed int64) *haspmv.Matrix {
	r := rand.New(rand.NewSource(seed))
	c := &haspmv.Triplets{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for k := 0; k < 4; k++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			v := r.NormFloat64()
			c.Add(i, j, v)
			rowSum += math.Abs(v)
		}
		c.Add(i, i, rowSum+1.5)
	}
	return c.ToCSR()
}

func residual(a *haspmv.Matrix, x, b []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(r, x)
	num, den := 0.0, 0.0
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		den = 1
	}
	return math.Sqrt(num / den)
}

func rhsFor(a *haspmv.Matrix, exact []float64) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, exact)
	return b
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestCGOnPoissonViaHandle(t *testing.T) {
	a := poisson1D(500)
	m := haspmv.IntelI912900KF()
	h, err := haspmv.Analyze(m, a, haspmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	op := FromHandle(h)
	if op.Rows() != 500 || op.Cols() != 500 {
		t.Fatal("operator dims")
	}
	exact := ones(500)
	b := rhsFor(a, exact)
	x := make([]float64, 500)
	st, err := CG(op, b, x, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-10 {
		t.Fatalf("residual %.2e", res)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-7 {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}

func TestCGWithJacobiConvergesFaster(t *testing.T) {
	// A badly scaled SPD system: diag(1..n) + small off-diagonal.
	n := 400
	c := &haspmv.Triplets{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(i+1))
		if i > 0 {
			c.Add(i, i-1, 0.3)
			c.Add(i-1, i, 0.3)
		}
	}
	a := c.ToCSR()
	op := FromMatrix(a)
	b := rhsFor(a, ones(n))

	x1 := make([]float64, n)
	plain, err := CG(op, b, x1, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := DiagonalPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	jacobi, err := CG(op, b, x2, Options{Tol: 1e-10, MaxIter: 5000, Precondition: pre})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !jacobi.Converged {
		t.Fatalf("convergence: plain %+v jacobi %+v", plain, jacobi)
	}
	if jacobi.Iterations >= plain.Iterations {
		t.Fatalf("jacobi %d iters not faster than plain %d", jacobi.Iterations, plain.Iterations)
	}
}

func TestBiCGSTABOnNonsymmetric(t *testing.T) {
	a := nonsymmetric(600, 3)
	op := FromMatrix(a)
	exact := make([]float64, 600)
	for i := range exact {
		exact[i] = math.Sin(float64(i))
	}
	b := rhsFor(a, exact)
	x := make([]float64, 600)
	st, err := BiCGSTAB(op, b, x, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("BiCGSTAB did not converge: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-9 {
		t.Fatalf("residual %.2e", res)
	}
}

func TestBiCGSTABViaHandleMatchesReference(t *testing.T) {
	a := nonsymmetric(300, 9)
	m := haspmv.AMDRyzen97950X3D()
	h, err := haspmv.Analyze(m, a, haspmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := rhsFor(a, ones(300))
	xh := make([]float64, 300)
	xr := make([]float64, 300)
	sth, err := BiCGSTAB(FromHandle(h), b, xh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	str, err := BiCGSTAB(FromMatrix(a), b, xr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sth.Converged || !str.Converged {
		t.Fatal("convergence")
	}
	// Same algorithm, numerically equivalent kernels: solutions agree.
	for i := range xh {
		if math.Abs(xh[i]-xr[i]) > 1e-6 {
			t.Fatalf("handle vs reference solution differ at %d: %v vs %v", i, xh[i], xr[i])
		}
	}
}

func TestPowerIteration(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the largest diagonal.
	n := 50
	c := &haspmv.Triplets{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(i+1))
	}
	a := c.ToCSR()
	x := ones(n)
	lambda, iters, err := PowerIteration(FromMatrix(a), x, 10000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-float64(n)) > 1e-6 {
		t.Fatalf("lambda = %v after %d iters, want %d", lambda, iters, n)
	}
	// Eigenvector concentrates on the last coordinate.
	if math.Abs(math.Abs(x[n-1])-1) > 1e-4 {
		t.Fatalf("eigenvector tail %v", x[n-1])
	}
}

func TestSolverErrors(t *testing.T) {
	rect := haspmv.FromDense([][]float64{{1, 0, 0}, {0, 1, 0}}, 0)
	if _, err := CG(FromMatrix(rect), make([]float64, 2), make([]float64, 2), Options{}); err != ErrNotSquare {
		t.Fatalf("CG non-square: %v", err)
	}
	if _, err := BiCGSTAB(FromMatrix(rect), make([]float64, 2), make([]float64, 2), Options{}); err != ErrNotSquare {
		t.Fatalf("BiCGSTAB non-square: %v", err)
	}
	if _, _, err := PowerIteration(FromMatrix(rect), make([]float64, 2), 10, 0); err != ErrNotSquare {
		t.Fatalf("power non-square: %v", err)
	}
	sq := poisson1D(4)
	if _, err := CG(FromMatrix(sq), make([]float64, 3), make([]float64, 4), Options{}); err == nil {
		t.Fatal("CG accepted short b")
	}
	if _, err := BiCGSTAB(FromMatrix(sq), make([]float64, 4), make([]float64, 3), Options{}); err == nil {
		t.Fatal("BiCGSTAB accepted short x")
	}
	if _, _, err := PowerIteration(FromMatrix(sq), make([]float64, 4), 10, 0); err == nil {
		t.Fatal("power accepted zero start vector")
	}
	if _, err := DiagonalPreconditioner(rect); err != ErrNotSquare {
		t.Fatalf("preconditioner non-square: %v", err)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := poisson1D(10)
	x := ones(10)
	st, err := CG(FromMatrix(a), make([]float64, 10), x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("zero-rhs solve: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want 0", i, x[i])
		}
	}
}

func TestCGMaxIterStops(t *testing.T) {
	a := poisson1D(2000)
	b := rhsFor(a, ones(2000))
	x := make([]float64, 2000)
	st, err := CG(FromMatrix(a), b, x, Options{MaxIter: 3, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged || st.Iterations != 3 {
		t.Fatalf("max-iter stop: %+v", st)
	}
	if st.Residual <= 0 {
		t.Fatal("residual not reported")
	}
}

// TestCGWithAdaptation drives CG through an adaptation-enabled handle:
// every iteration's Multiply feeds the feedback loop, so the partition
// may be rebalanced mid-solve — which must never change the arithmetic.
// Run with -race: solver iterations and adapter epochs interleave on the
// same Prepared instance.
func TestCGWithAdaptation(t *testing.T) {
	n := 800
	a := poisson1D(n)
	m := haspmv.IntelI912900KF()
	h, err := haspmv.Analyze(m, a, haspmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.EnableAdaptation(haspmv.AdapterOptions{Every: 2}); err != nil {
		t.Fatal(err)
	}
	op := FromHandle(h)
	b := rhsFor(a, ones(n))
	x := make([]float64, n)
	st, err := CG(op, b, x, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("CG with adaptation did not converge: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-10 {
		t.Fatalf("residual %.2e", res)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-7 {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
	ast, ok := h.AdaptationStats()
	if !ok {
		t.Fatal("AdaptationStats missing on an adaptation-enabled handle")
	}
	if ast.Multiplies < int64(st.Iterations) {
		t.Fatalf("adapter observed %d multiplies over %d CG iterations", ast.Multiplies, st.Iterations)
	}
}
