package solver

import (
	"math"
	"testing"

	"haspmv"
)

func TestGMRESOnNonsymmetric(t *testing.T) {
	a := nonsymmetric(500, 21)
	op := FromMatrix(a)
	exact := make([]float64, 500)
	for i := range exact {
		exact[i] = math.Cos(float64(i) / 7)
	}
	b := rhsFor(a, exact)
	x := make([]float64, 500)
	st, err := GMRES(op, b, x, GMRESOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("GMRES did not converge: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-9 {
		t.Fatalf("residual %.2e", res)
	}
}

func TestGMRESRestartSmallerThanConvergence(t *testing.T) {
	// A small restart forces several outer cycles; on a diagonally
	// dominant system GMRES(m) still converges quickly.
	a := nonsymmetric(600, 13)
	b := rhsFor(a, ones(600))
	x := make([]float64, 600)
	st, err := GMRES(FromMatrix(a), b, x, GMRESOptions{Restart: 8, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("restarted GMRES did not converge: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-8 {
		t.Fatalf("residual %.2e", res)
	}
	// Full-subspace GMRES on an SPD system is exact within n steps.
	p := poisson1D(80)
	bp := rhsFor(p, ones(80))
	xp := make([]float64, 80)
	st, err = GMRES(FromMatrix(p), bp, xp, GMRESOptions{Restart: 80, Tol: 1e-12})
	if err != nil || !st.Converged || st.Iterations > 80 {
		t.Fatalf("full-subspace GMRES: %+v %v", st, err)
	}
	for i := range xp {
		if math.Abs(xp[i]-1) > 1e-6 {
			t.Fatalf("xp[%d] = %v", i, xp[i])
		}
	}
}

func TestGMRESWithJacobiPreconditioner(t *testing.T) {
	a := nonsymmetric(400, 5)
	b := rhsFor(a, ones(400))
	pre, err := DiagonalPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	xPlain := make([]float64, 400)
	plain, err := GMRES(FromMatrix(a), b, xPlain, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	xPre := make([]float64, 400)
	prec, err := GMRES(FromMatrix(a), b, xPre, GMRESOptions{Tol: 1e-10, Precondition: pre})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !prec.Converged {
		t.Fatalf("convergence: %+v / %+v", plain, prec)
	}
	if prec.Iterations > plain.Iterations {
		t.Fatalf("preconditioned GMRES slower: %d vs %d", prec.Iterations, plain.Iterations)
	}
	if res := residual(a, xPre, b); res > 1e-8 {
		t.Fatalf("preconditioned residual %.2e", res)
	}
}

func TestGMRESViaHandle(t *testing.T) {
	a := nonsymmetric(300, 31)
	m := haspmv.IntelI913900KF()
	h, err := haspmv.Analyze(m, a, haspmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := rhsFor(a, ones(300))
	x := make([]float64, 300)
	st, err := GMRES(FromHandle(h), b, x, GMRESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("GMRES over HASpMV: %+v", st)
	}
	if res := residual(a, x, b); res > 1e-8 {
		t.Fatalf("residual %.2e", res)
	}
}

func TestGMRESErrors(t *testing.T) {
	rect := haspmv.FromDense([][]float64{{1, 0, 0}, {0, 1, 0}}, 0)
	if _, err := GMRES(FromMatrix(rect), make([]float64, 2), make([]float64, 2), GMRESOptions{}); err != ErrNotSquare {
		t.Fatalf("non-square: %v", err)
	}
	sq := poisson1D(4)
	if _, err := GMRES(FromMatrix(sq), make([]float64, 3), make([]float64, 4), GMRESOptions{}); err == nil {
		t.Fatal("short b accepted")
	}
}

func TestGMRESZeroRHSAndMaxIter(t *testing.T) {
	a := poisson1D(50)
	x := ones(50)
	st, err := GMRES(FromMatrix(a), make([]float64, 50), x, GMRESOptions{})
	if err != nil || !st.Converged {
		t.Fatalf("zero-rhs: %+v %v", st, err)
	}
	b := rhsFor(a, ones(50))
	x2 := make([]float64, 50)
	st, err = GMRES(FromMatrix(a), b, x2, GMRESOptions{MaxIter: 2, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged || st.Iterations != 2 {
		t.Fatalf("max-iter stop: %+v", st)
	}
}
