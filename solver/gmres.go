package solver

import (
	"fmt"
	"math"
)

// GMRESOptions tune the restarted GMRES solver. Zero values select
// Restart = 30, MaxIter = 10*rows+50 total inner iterations and
// Tol = 1e-10.
type GMRESOptions struct {
	// Restart is the Krylov subspace dimension m of GMRES(m).
	Restart int
	MaxIter int
	Tol     float64
	// Precondition applies z = M^-1 v (right preconditioning).
	Precondition func(z, v []float64)
}

func (o GMRESOptions) withDefaults(n int) GMRESOptions {
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10*n + 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Precondition == nil {
		o.Precondition = func(z, v []float64) { copy(z, v) }
	}
	return o
}

// GMRES solves A x = b for general A with restarted GMRES(m): Arnoldi
// orthogonalization (modified Gram-Schmidt), Givens-rotation updates of
// the Hessenberg least-squares problem, and right preconditioning. x
// supplies the start vector and receives the solution.
func GMRES(op Operator, b, x []float64, opts GMRESOptions) (Stats, error) {
	n := op.Rows()
	if op.Cols() != n {
		return Stats{}, ErrNotSquare
	}
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: GMRES vector lengths %d/%d, want %d", len(b), len(x), n)
	}
	opts = opts.withDefaults(n)
	m := opts.Restart
	if m > n && n > 0 {
		m = n
	}
	if n == 0 {
		return Stats{Converged: true}, nil
	}

	normB := norm2(b)
	if normB == 0 {
		normB = 1
	}

	// Arnoldi basis, Hessenberg columns, Givens rotations, residual rhs.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1) // h[i][j], i <= j+1
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := make([]float64, n)
	z := make([]float64, n)

	st := Stats{}
	for st.Iterations < opts.MaxIter {
		// Outer (restart) iteration: r0 = b - A x.
		op.Apply(w, x)
		for i := range w {
			v[0][i] = b[i] - w[i]
		}
		beta := norm2(v[0])
		st.Residual = beta / normB
		if st.Residual < opts.Tol {
			st.Converged = true
			return st, nil
		}
		scale(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && st.Iterations < opts.MaxIter; k++ {
			st.Iterations++
			// Arnoldi step with right preconditioning: w = A M^-1 v_k.
			opts.Precondition(z, v[k])
			op.Apply(w, z)
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm2(w)
			subdiag := h[k+1][k] // preserved: the Givens step zeroes it
			if subdiag > 1e-300 {
				for i := range w {
					v[k+1][i] = w[i] / subdiag
				}
			}
			// Apply the accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation annihilating h[k+1][k].
			r := math.Hypot(h[k][k], h[k+1][k])
			if r == 0 {
				return st, ErrBreakdown
			}
			cs[k] = h[k][k] / r
			sn[k] = h[k+1][k] / r
			h[k][k] = r
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			st.Residual = math.Abs(g[k+1]) / normB
			if st.Residual < opts.Tol {
				k++
				break
			}
			if subdiag <= 1e-300 {
				// Lucky breakdown: the Krylov subspace is exhausted and
				// the least-squares solution over it is exact.
				k++
				break
			}
		}

		// Back-substitute y from the k x k triangular system.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * y[j]
			}
			y[i] = sum / h[i][i]
		}
		// x += M^-1 (V y).
		for i := range w {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			axpy(y[j], v[j], w)
		}
		opts.Precondition(z, w)
		for i := range x {
			x[i] += z[i]
		}
		if st.Residual < opts.Tol {
			// Recompute the true residual to guard against drift.
			op.Apply(w, x)
			num := 0.0
			for i := range w {
				d := b[i] - w[i]
				num += d * d
			}
			st.Residual = math.Sqrt(num) / normB
			if st.Residual < opts.Tol*10 {
				st.Converged = true
				return st, nil
			}
		}
	}
	return st, nil
}

func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
