// Package solver provides the iterative methods the paper's introduction
// motivates SpMV with: conjugate gradient (for symmetric positive-definite
// systems), BiCGSTAB (for general systems), and power iteration (the
// graph-processing/PageRank kernel shape). All methods consume an Operator
// — satisfied by a haspmv.Handle — so every A*x inside the solver runs
// through the heterogeneity-aware kernel.
package solver

import (
	"errors"
	"fmt"
	"math"

	"haspmv"
)

// Operator is a linear operator y = A*x.
type Operator interface {
	// Apply computes y = A*x; len(x) = Cols(), len(y) = Rows().
	Apply(y, x []float64)
	Rows() int
	Cols() int
}

// handleOp adapts a haspmv.Handle to Operator.
type handleOp struct{ h *haspmv.Handle }

func (o handleOp) Apply(y, x []float64) { o.h.Multiply(y, x) }
func (o handleOp) Rows() int            { return o.h.Rows() }
func (o handleOp) Cols() int            { return o.h.Cols() }

// FromHandle wraps an analyzed HASpMV (or baseline) handle as an Operator.
func FromHandle(h *haspmv.Handle) Operator { return handleOp{h} }

// matrixOp adapts a raw matrix (serial reference SpMV) as an Operator.
type matrixOp struct{ a *haspmv.Matrix }

func (o matrixOp) Apply(y, x []float64) { o.a.MulVec(y, x) }
func (o matrixOp) Rows() int            { return o.a.Rows }
func (o matrixOp) Cols() int            { return o.a.Cols }

// FromMatrix wraps a matrix with the serial reference kernel.
func FromMatrix(a *haspmv.Matrix) Operator { return matrixOp{a} }

// Stats reports a solve.
type Stats struct {
	Iterations int
	// Residual is the final relative residual ||b-Ax|| / ||b||.
	Residual  float64
	Converged bool
}

// Options tune the Krylov solvers. Zero values select MaxIter =
// 10*rows and Tol = 1e-10.
type Options struct {
	MaxIter int
	Tol     float64
	// Precondition applies z = M^-1 r in place of the identity; it must
	// not alias its arguments. Use DiagonalPreconditioner for Jacobi.
	Precondition func(z, r []float64)
}

func (o Options) withDefaults(n int) Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 10*n + 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Precondition == nil {
		o.Precondition = func(z, r []float64) { copy(z, r) }
	}
	return o
}

// ErrNotSquare is returned when a solver needs a square operator.
var ErrNotSquare = errors.New("solver: operator is not square")

// ErrBreakdown is returned when a Krylov recurrence hits a zero pivot.
var ErrBreakdown = errors.New("solver: numerical breakdown")

// CG solves A x = b for symmetric positive-definite A, starting from the
// contents of x. It performs one operator application per iteration.
func CG(op Operator, b, x []float64, opts Options) (Stats, error) {
	n := op.Rows()
	if op.Cols() != n {
		return Stats{}, ErrNotSquare
	}
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: CG vector lengths %d/%d, want %d", len(b), len(x), n)
	}
	opts = opts.withDefaults(n)

	r := make([]float64, n)
	op.Apply(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	z := make([]float64, n)
	opts.Precondition(z, r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	normB := norm2(b)
	if normB == 0 {
		normB = 1
	}
	rz := dot(r, z)
	st := Stats{}
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		if res := norm2(r) / normB; res < opts.Tol {
			st.Residual = res
			st.Converged = true
			return st, nil
		}
		op.Apply(ap, p)
		pap := dot(p, ap)
		if pap == 0 {
			return st, ErrBreakdown
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		opts.Precondition(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	st.Residual = norm2(r) / normB
	st.Converged = st.Residual < opts.Tol
	return st, nil
}

// BiCGSTAB solves A x = b for general (nonsymmetric) A, starting from the
// contents of x. Two operator applications per iteration.
func BiCGSTAB(op Operator, b, x []float64, opts Options) (Stats, error) {
	n := op.Rows()
	if op.Cols() != n {
		return Stats{}, ErrNotSquare
	}
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("solver: BiCGSTAB vector lengths %d/%d, want %d", len(b), len(x), n)
	}
	opts = opts.withDefaults(n)

	r := make([]float64, n)
	op.Apply(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rHat := append([]float64(nil), r...)
	v := make([]float64, n)
	p := make([]float64, n)
	ph := make([]float64, n)
	sh := make([]float64, n)
	t := make([]float64, n)
	s := make([]float64, n)

	normB := norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	st := Stats{}
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		if res := norm2(r) / normB; res < opts.Tol {
			st.Residual = res
			st.Converged = true
			return st, nil
		}
		rhoNew := dot(rHat, r)
		if rhoNew == 0 || omega == 0 {
			return st, ErrBreakdown
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		opts.Precondition(ph, p)
		op.Apply(v, ph)
		rv := dot(rHat, v)
		if rv == 0 {
			return st, ErrBreakdown
		}
		alpha = rho / rv
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := norm2(s) / normB; res < opts.Tol {
			for i := range x {
				x[i] += alpha * ph[i]
			}
			st.Iterations++
			st.Residual = res
			st.Converged = true
			return st, nil
		}
		opts.Precondition(sh, s)
		op.Apply(t, sh)
		tt := dot(t, t)
		if tt == 0 {
			return st, ErrBreakdown
		}
		omega = dot(t, s) / tt
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
			r[i] = s[i] - omega*t[i]
		}
	}
	st.Residual = norm2(r) / normB
	st.Converged = st.Residual < opts.Tol
	return st, nil
}

// DiagonalPreconditioner builds a Jacobi preconditioner z = r / diag(A).
// Zero diagonal entries pass through unscaled.
func DiagonalPreconditioner(a *haspmv.Matrix) (func(z, r []float64), error) {
	if a.Rows != a.Cols {
		return nil, ErrNotSquare
	}
	diag := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				diag[i] = a.Val[k]
			}
		}
	}
	return func(z, r []float64) {
		for i := range z {
			if diag[i] != 0 {
				z[i] = r[i] / diag[i]
			} else {
				z[i] = r[i]
			}
		}
	}, nil
}

// PowerIteration estimates the dominant eigenvalue (by magnitude) of the
// operator and leaves the corresponding eigenvector estimate in x (which
// supplies the start vector and must be nonzero). Returns the Rayleigh
// quotient estimate.
func PowerIteration(op Operator, x []float64, maxIter int, tol float64) (lambda float64, iters int, err error) {
	n := op.Rows()
	if op.Cols() != n {
		return 0, 0, ErrNotSquare
	}
	if len(x) != n {
		return 0, 0, fmt.Errorf("solver: PowerIteration vector length %d, want %d", len(x), n)
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	nx := norm2(x)
	if nx == 0 {
		return 0, 0, errors.New("solver: zero start vector")
	}
	scale(1/nx, x)
	y := make([]float64, n)
	prev := math.Inf(1)
	for iters = 1; iters <= maxIter; iters++ {
		op.Apply(y, x)
		lambda = dot(x, y)
		ny := norm2(y)
		if ny == 0 {
			return 0, iters, errors.New("solver: operator annihilated the iterate")
		}
		for i := range x {
			x[i] = y[i] / ny
		}
		if math.Abs(lambda-prev) <= tol*math.Abs(lambda) {
			return lambda, iters, nil
		}
		prev = lambda
	}
	return lambda, maxIter, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }

func scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}
