// Repository-level benchmarks: one testing.B target per table and figure
// of the paper (regenerating the experiment under the benchmark timer) and
// one per design-choice ablation called out in DESIGN.md. Run them all
// with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use a reduced corpus so a full sweep finishes in minutes;
// cmd/haspmv-bench runs the same experiments at the full default scale.
package haspmv_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"haspmv"

	"haspmv/internal/amp"
	"haspmv/internal/bench"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
	"haspmv/internal/store"
	"haspmv/internal/stream"
	"haspmv/internal/telemetry/tracing"

	haspmvcore "haspmv/internal/core"
)

// benchConfig is the reduced experiment scale used under testing.B.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.CorpusSize = 40
	cfg.CorpusMaxNNZ = 400_000
	cfg.RepScale = 32
	return cfg
}

func BenchmarkTable1Specs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(cfg)
		if len(rows) != 8 {
			b.Fatal("table1")
		}
	}
}

func BenchmarkTable2Representative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := bench.Table2(cfg)
		if len(rows) != 22 {
			b.Fatal("table2")
		}
	}
}

func BenchmarkFig3StreamTriad(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		series := bench.Fig3(cfg, 16)
		if len(series) != 12 {
			b.Fatal("fig3")
		}
	}
}

func BenchmarkFig4ParallelSpMV(b *testing.B) {
	cfg := benchConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RowLenCorrelation(b *testing.B) {
	cfg := benchConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Comparison(b *testing.B) {
	cfg := benchConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Balance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Preprocessing(b *testing.B) {
	cfg := benchConfig()
	m := amp.IntelI913900KF()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(cfg, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Representative(b *testing.B) {
	cfg := benchConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- kernels

// BenchmarkSpMVCompute measures the real (host wall-clock) multiply of
// each method on a mid-size matrix: algorithmic overheads, not AMP
// behaviour (Go cannot pin cores; see DESIGN.md).
func BenchmarkSpMVCompute(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("shipsec1", 16)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, a.Rows)
	run := func(b *testing.B, h *haspmv.Handle) {
		b.SetBytes(int64(12 * a.NNZ()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Multiply(y, x)
		}
	}
	b.Run("HASpMV", func(b *testing.B) {
		h, err := haspmv.Analyze(m, a, haspmv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, h)
	})
	for _, name := range []string{"csr", "mkl", "csr5", "merge"} {
		b.Run(name, func(b *testing.B) {
			h, err := haspmv.AnalyzeBaseline(name, haspmv.PAndE, m, a)
			if err != nil {
				b.Fatal(err)
			}
			run(b, h)
		})
	}
}

// BenchmarkCompute isolates the compressed-index execution streams on a
// >1.5M-nnz power-law matrix: the same partition (proportion and base
// pinned) multiplied through the []int reference, the u32 absolute
// stream, and the auto u16/u32/dia mix. SpMV is stream bound, so
// narrowing the 8-byte []int indices is the whole effect; the committed
// bench baseline records the u32 win and cmd/benchdiff gates it. The
// stencil-* and graph01-* subtests cover the pluggable per-region
// formats on the matrices where they engage — diagonal run descriptors
// on a 9-point stencil with a trace of defect rows, the one-byte
// palette stream on a 0/1 adjacency matrix — and refuse to run if the
// new hot paths allocate or the format failed to engage.
func BenchmarkCompute(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("webbase-1M", 2)
	prop := haspmvcore.ProportionFor(m, a)
	base := haspmvcore.AutoBase(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	for _, tc := range []struct {
		name string
		mode haspmvcore.IndexMode
	}{
		{"int", haspmvcore.IndexReference},
		{"u32", haspmvcore.IndexU32},
		{"auto", haspmvcore.IndexAuto},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prep, err := haspmvcore.New(haspmvcore.Options{PProportion: prop, Base: base, Index: tc.mode}).Prepare(m, a)
			if err != nil {
				b.Fatal(err)
			}
			prep.Compute(y, x) // warm the scratch and worker pools
			b.SetBytes(int64(12 * a.NNZ()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prep.Compute(y, x)
			}
			b.ReportMetric(2*float64(a.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
	}

	runFormat := func(name string, fa *sparse.CSR, opts haspmvcore.Options, check func(b *testing.B, hp *haspmvcore.Prepared)) {
		b.Run(name, func(b *testing.B) {
			opts.PProportion = haspmvcore.ProportionFor(m, fa)
			opts.Base = haspmvcore.AutoBase(fa)
			prep, err := haspmvcore.New(opts).Prepare(m, fa)
			if err != nil {
				b.Fatal(err)
			}
			xs := make([]float64, fa.Cols)
			for i := range xs {
				xs[i] = 1 + float64(i%7)/7
			}
			ys := make([]float64, fa.Rows)
			prep.Compute(ys, xs) // warm the scratch and worker pools
			if check != nil {
				check(b, prep.(*haspmvcore.Prepared))
				if n := testing.AllocsPerRun(20, func() { prep.Compute(ys, xs) }); n != 0 {
					b.Fatalf("%s Compute allocates %.1f/op, want 0", name, n)
				}
			}
			b.SetBytes(int64(12 * fa.NNZ()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prep.Compute(ys, xs)
			}
			b.ReportMetric(2*float64(fa.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
	}
	sten := gen.StencilSpec{
		Name: "stencil9", Rows: 500_000, Cols: 500_000,
		Diagonals: 9, NoiseFrac: 0.002, Seed: 20260801,
	}.Generate()
	runFormat("stencil-u32", sten, haspmvcore.Options{Index: haspmvcore.IndexU32, Value: haspmvcore.ValueReference}, nil)
	runFormat("stencil-auto", sten, haspmvcore.Options{}, func(b *testing.B, hp *haspmvcore.Prepared) {
		if share := float64(hp.IndexStats().NNZByFormat[haspmvcore.IndexDia]) / float64(sten.NNZ()); share < 0.9 {
			b.Fatalf("stencil auto dia share = %v, want >= 0.9", share)
		}
	})
	graph := gen.Spec{
		Name: "graph01", Rows: 200_000, Cols: 200_000,
		Dist:  gen.NormalLen{Mean: 16, Std: 4, Min: 1, Max: 32},
		Place: gen.Random, Seed: 20260802,
	}.Generate()
	for k := range graph.Val {
		graph.Val[k] = 1 // adjacency: every stored value exactly 1.0
	}
	runFormat("graph01-u32", graph, haspmvcore.Options{Index: haspmvcore.IndexU32, Value: haspmvcore.ValueReference}, nil)
	runFormat("graph01-palette", graph, haspmvcore.Options{Index: haspmvcore.IndexU32}, func(b *testing.B, hp *haspmvcore.Prepared) {
		if f := hp.ValueStats().Format; f != haspmvcore.ValPalette {
			b.Fatalf("graph01 value stream = %s, want palette", f)
		}
	})
}

// BenchmarkComputeSegSum isolates the execution-mode choice on the
// rank-law power-law matrix (hub row ~33% of the nonzeros, mean ~3
// nnz/row): the same partition and index streams (proportion and base
// pinned) executed through the serial extraY epilogue, the speculative
// segmented-sum descriptor walk, and the auto row-skew dispatch. On
// short-row matrices the per-row fragment bookkeeping is the dominant
// cost the segsum mode deletes; the committed baseline records the win
// and cmd/benchdiff gates it. The benchmark refuses to run if the
// forced-segsum hot path allocates.
func BenchmarkComputeSegSum(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := bench.SegSumZipf.Generate()
	prop := haspmvcore.ProportionFor(m, a)
	base := haspmvcore.AutoBase(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	for _, tc := range []struct {
		name string
		mode haspmvcore.ExecMode
	}{
		{"serial", haspmvcore.ExecSerial},
		{"segsum", haspmvcore.ExecSegSum},
		{"auto", haspmvcore.ExecAuto},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prep, err := haspmvcore.New(haspmvcore.Options{PProportion: prop, Base: base, Exec: tc.mode}).Prepare(m, a)
			if err != nil {
				b.Fatal(err)
			}
			prep.Compute(y, x) // warm the scratch and worker pools
			if tc.mode == haspmvcore.ExecSegSum {
				if n := testing.AllocsPerRun(20, func() { prep.Compute(y, x) }); n != 0 {
					b.Fatalf("segsum Compute allocates %.1f/op, want 0", n)
				}
			}
			b.SetBytes(int64(12 * a.NNZ()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prep.Compute(y, x)
			}
			b.ReportMetric(2*float64(a.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
	}
}

// BenchmarkComputeTraced holds the tentpole observability requirement
// inside the bench gate: the traced multiply is gated against the same
// baseline family as Compute (tracing must cost nothing measurable) and
// the benchmark refuses to run at all if the traced hot path allocates.
// The kernel/merge split is emitted as custom "<stage>-ns/op" metrics,
// which cmd/benchdiff snapshots as <name>/stage:<stage> entries and uses
// to attribute a ns/op regression to the stage that moved.
func BenchmarkComputeTraced(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("shipsec1", 16)
	prep, err := haspmvcore.New(haspmvcore.Options{}).Prepare(m, a)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	var bd tracing.ComputeBreakdown
	exec.ComputeTraced(prep, y, x, &bd) // warm the scratch and worker pools
	if n := testing.AllocsPerRun(20, func() {
		bd.Reset()
		exec.ComputeTraced(prep, y, x, &bd)
	}); n != 0 {
		b.Fatalf("traced Compute allocates %.1f/op, want 0", n)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ReportAllocs()
	b.ResetTimer()
	var kernelNs, mergeNs int64
	for i := 0; i < b.N; i++ {
		bd.Reset()
		exec.ComputeTraced(prep, y, x, &bd)
		kernelNs += bd.KernelNs
		mergeNs += bd.MergeNs
	}
	b.ReportMetric(float64(kernelNs)/float64(b.N), "compute-ns/op")
	b.ReportMetric(float64(mergeNs)/float64(b.N), "merge-ns/op")
}

// BenchmarkComputeBatch compares the fused multi-vector multiply
// (register-blocked kernels walking the index stream once per block of
// vectors) against nv independent Multiply calls on a banded matrix,
// where the value/index streams dominate and amortizing them pays most.
func BenchmarkComputeBatch(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("shipsec1", 16)
	h, err := haspmv.Analyze(m, a, haspmv.Options{})
	if err != nil {
		b.Fatal(err)
	}
	flops := func(nv int) float64 { return 2 * float64(a.NNZ()) * float64(nv) }
	for _, nv := range []int{2, 4, 8} {
		X := make([][]float64, nv)
		Y := make([][]float64, nv)
		for v := range X {
			X[v] = make([]float64, a.Cols)
			for i := range X[v] {
				X[v][i] = 1 + float64((i+v)%7)/7
			}
			Y[v] = make([]float64, a.Rows)
		}
		b.Run(fmt.Sprintf("fused-nv%d", nv), func(b *testing.B) {
			h.MultiplyBatch(Y, X) // warm the batch scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.MultiplyBatch(Y, X)
			}
			b.ReportMetric(flops(nv)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
		b.Run(fmt.Sprintf("repeated-nv%d", nv), func(b *testing.B) {
			h.Multiply(Y[0], X[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for v := 0; v < nv; v++ {
					h.Multiply(Y[v], X[v])
				}
			}
			b.ReportMetric(flops(nv)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
	}
}

// BenchmarkPrepare measures the real preprocessing cost (the Figure 10
// quantity) of each method. The 1M sub-benchmark runs HASpMV's parallel
// Prepare pipeline on a >1.5M-nnz matrix, the scale where the chunked
// sweeps engage.
func BenchmarkPrepare(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("webbase-1M", 16)
	b.Run("HASpMV", func(b *testing.B) {
		alg := haspmvcore.New(haspmvcore.Options{})
		for i := 0; i < b.N; i++ {
			if _, err := alg.Prepare(m, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HASpMV-1M", func(b *testing.B) {
		big := haspmv.Representative("webbase-1M", 2)
		alg := haspmvcore.New(haspmvcore.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := alg.Prepare(m, big); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, name := range []string{"mkl", "csr5", "merge"} {
		b.Run(name, func(b *testing.B) {
			alg, err := haspmv.BaselineByName(name, haspmv.PAndE)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := alg.Prepare(m, a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorderAuto compares Compute under the reorder autotuner's
// pick against the length-sort default on the workload the graph
// orders exist for: a row-shuffled strided stencil whose x vector
// (16MB) spills the model machine's LLC budget, charging gather at
// DRAM cost. The benchmark refuses to run if the autotuner does not
// take a graph order (that part is deterministic); the GFlops entries
// are trend-gated by cmd/benchdiff — on cache-rich hosts the two run
// alike, on cache-constrained hosts auto pulls ahead.
func BenchmarkReorderAuto(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := gen.ShuffleRows(gen.StridedStencil(1<<21, 4, 16), 42)
	auto, err := haspmvcore.New(haspmvcore.Options{Reorder: haspmvcore.ReorderAuto}).Prepare(m, a)
	if err != nil {
		b.Fatal(err)
	}
	dec := auto.(*haspmvcore.Prepared).ReorderStats()
	if dec.Strategy != haspmvcore.StrategyRCM && dec.Strategy != haspmvcore.StrategyCluster {
		b.Fatalf("autotuner picked %v, want a graph order", dec.Strategy)
	}
	length, err := haspmvcore.New(haspmvcore.Options{
		Reorder:     haspmvcore.ReorderLength,
		PProportion: auto.(*haspmvcore.Prepared).Plan().PProportion,
	}).Prepare(m, a)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)/4
	}
	y := make([]float64, a.Rows)
	for _, tc := range []struct {
		name string
		prep exec.Prepared
	}{{"length", length}, {"auto-" + dec.Strategy.String(), auto}} {
		b.Run(tc.name, func(b *testing.B) {
			tc.prep.Compute(y, x) // warm the scratch and worker pools
			b.SetBytes(int64(12 * a.NNZ()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.prep.Compute(y, x)
			}
			b.ReportMetric(2*float64(a.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
		})
	}
}

// BenchmarkColdStart measures the prepared-matrix store's reason to
// exist: the full Prepare pipeline on webbase-1M against mmap-loading
// the persisted Prepared state and rebuilding a servable instance from
// the aliased arrays. The store image is written once per process (or
// reused from HASPMV_STORE_CACHE, which CI keys on the format version
// so a cache hit skips the Prepare entirely); the committed baseline
// holds load well over 10x cheaper and cmd/benchdiff gates the ratio.
func BenchmarkColdStart(b *testing.B) {
	m := haspmv.IntelI912900KF()
	a := haspmv.Representative("webbase-1M", 2)
	alg := haspmvcore.New(haspmvcore.Options{})
	dir := os.Getenv("HASPMV_STORE_CACHE")
	if dir == "" {
		dir = b.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("webbase-1M-bench-v%d.hps", store.Version))
	if _, err := os.Stat(path); err != nil {
		prep, err := alg.Prepare(m, a)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Write(path, prep.(*haspmvcore.Prepared).Snapshot(), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alg.Prepare(m, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := store.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := haspmvcore.RestorePrepared(m, f.Snap); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The serving cold start: verify-behind load. The timed region is
	// mmap + structural checks + restore; the payload sweep is drained
	// outside the clock (it gates correctness, not first-response
	// latency).
	b.Run("store-load-async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := store.LoadAsync(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := haspmvcore.RestorePrepared(m, f.Snap); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := f.Verified(); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkRepartition measures the boundary-only partition move that
// online adaptation leans on: against BenchmarkPrepare/HASpMV-1M (the
// full pipeline on the same matrix) it must stay orders of magnitude
// cheaper — the committed bench baseline holds the ratio above 50x, and
// cmd/benchdiff gates regressions on it.
func BenchmarkRepartition(b *testing.B) {
	m := haspmv.IntelI912900KF()
	b.Run("webbase-1M", func(b *testing.B) {
		big := haspmv.Representative("webbase-1M", 2)
		prep, err := haspmvcore.New(haspmvcore.Options{}).Prepare(m, big)
		if err != nil {
			b.Fatal(err)
		}
		hp := prep.(*haspmvcore.Prepared)
		props := [2]float64{0.6, 0.75} // alternate so every call moves boundaries
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := hp.Repartition(haspmvcore.Plan{PProportion: props[i%2]}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdaptSweep runs the full miscalibration-recovery loop (static
// plan from a wrong machine description, adapter fed by the simulator's
// per-core times on the true machine) for benchstat comparisons; the
// recovered fraction of the oracle throughput is reported as a metric.
func BenchmarkAdaptSweep(b *testing.B) {
	cfg := benchConfig()
	m := amp.IntelI912900KF()
	for _, tc := range []struct {
		name    string
		perturb float64
	}{{"p05", 0.5}, {"p2", 2}, {"p4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			var rec float64
			for i := 0; i < b.N; i++ {
				r, err := bench.AdaptSweep(cfg, m, "rma10", tc.perturb, 10)
				if err != nil {
					b.Fatal(err)
				}
				rec = r.Recovered
			}
			b.ReportMetric(100*rec, "%oracle")
		})
	}
}

// BenchmarkFleetServe measures closed-loop serving throughput through
// the in-process shard group at several shard counts. Each shard count
// reports its aggregate request rate as a "shards:<n>-rps" metric, which
// benchdiff gates higher-is-better per shard count (a sharded
// configuration regressing to single-worker speed is a real regression
// even when ns/op noise hides it).
func BenchmarkFleetServe(b *testing.B) {
	cfg := benchConfig()
	m := amp.IntelI912900KF()
	shardCounts := []int{1, 2, 4}
	rps := map[int]float64{}
	for i := 0; i < b.N; i++ {
		rows, err := bench.FleetSweep(cfg, m, "dawson5", shardCounts, 32, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			rps[r.Shards] = r.RPS
		}
	}
	for _, n := range shardCounts {
		b.ReportMetric(rps[n], fmt.Sprintf("shards:%d-rps", n))
	}
}

// BenchmarkHostTriad measures the host's real triad bandwidth (the native
// counterpart of Figure 3's model curves).
func BenchmarkHostTriad(b *testing.B) {
	const elems = 1 << 21 // 48MB triad footprint
	b.SetBytes(24 * elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stream.HostTriad(2, elems, 1) <= 0 {
			b.Fatal("triad failed")
		}
	}
}

// ---------------------------------------------------------------- ablations

// ablationMatrix has diverse row cache costs, the regime where the design
// choices differ most.
func ablationMatrix() *haspmv.Matrix {
	return gen.Representative("rma10", 8)
}

func simulateHA(b *testing.B, m *haspmv.Machine, a *haspmv.Matrix, opts haspmvcore.Options) float64 {
	alg := haspmvcore.New(opts)
	prep, err := alg.Prepare(m, a)
	if err != nil {
		b.Fatal(err)
	}
	return exec.Simulate(m, costmodel.DefaultParams(), a, prep).Seconds
}

// BenchmarkAblationCostMetric compares the three balance units of
// Figure 9 end to end.
func BenchmarkAblationCostMetric(b *testing.B) {
	m := amp.IntelI912900KF()
	a := ablationMatrix()
	for _, metric := range []haspmvcore.CostMetric{haspmvcore.CacheLineCost, haspmvcore.NNZCost, haspmvcore.RowCost} {
		b.Run(metric.String(), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = simulateHA(b, m, a, haspmvcore.Options{Metric: metric})
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

// BenchmarkAblationOneLevel quantifies the two-level split against the
// homogeneous even split.
func BenchmarkAblationOneLevel(b *testing.B) {
	m := amp.IntelI912900KF()
	a := ablationMatrix()
	for _, tc := range []struct {
		name string
		opts haspmvcore.Options
	}{
		{"two-level", haspmvcore.Options{}},
		{"one-level", haspmvcore.Options{OneLevel: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = simulateHA(b, m, a, tc.opts)
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

// BenchmarkAblationReorder quantifies the HACSR reorder on a power-law
// matrix (where hub rows move to the back).
func BenchmarkAblationReorder(b *testing.B) {
	m := amp.IntelI912900KF()
	a := gen.Representative("webbase-1M", 16)
	for _, tc := range []struct {
		name string
		opts haspmvcore.Options
	}{
		{"reorder", haspmvcore.Options{}},
		{"natural-order", haspmvcore.Options{DisableReorder: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = simulateHA(b, m, a, tc.opts)
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

// BenchmarkAblationProportion sweeps the level-1 split share.
func BenchmarkAblationProportion(b *testing.B) {
	m := amp.IntelI912900KF()
	a := ablationMatrix()
	for _, prop := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		b.Run(propName(prop), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = simulateHA(b, m, a, haspmvcore.Options{PProportion: prop})
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

func propName(p float64) string {
	return string([]byte{'p', '0' + byte(p*10)%10, '0'})
}

// BenchmarkAblationBase sweeps the HACSR short/long threshold on a
// power-law matrix.
func BenchmarkAblationBase(b *testing.B) {
	m := amp.IntelI913900KF()
	a := gen.Representative("webbase-1M", 16)
	for _, base := range []int{8, 32, 128, 512, 1 << 20} {
		b.Run(baseName(base), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = simulateHA(b, m, a, haspmvcore.Options{Base: base})
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

func baseName(base int) string {
	switch base {
	case 1 << 20:
		return "base-inf"
	case 8:
		return "base-8"
	case 32:
		return "base-32"
	case 128:
		return "base-128"
	default:
		return "base-512"
	}
}
