package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: haspmv
BenchmarkSpMVCompute/rma10-8         	     100	   1000000 ns/op
BenchmarkSpMVCompute/rma10-8         	     120	    900000 ns/op	 12 B/op	 0 allocs/op
BenchmarkSpMVCompute/rma10-8         	     110	    950000 ns/op
BenchmarkComputeBatch/fused-nv8-16   	      50	   4000000 ns/op
BenchmarkPrepare-8                   	      20	  60000000 ns/op
PASS
ok  	haspmv	12.3s
`

func TestParseBenchTakesMinAndStripsProcs(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSpMVCompute/rma10":      900000, // min of three runs
		"BenchmarkComputeBatch/fused-nv8": 4000000,
		"BenchmarkPrepare":                60000000,
	}
	if len(snap) != len(want) {
		t.Fatalf("parsed %d benchmarks (%v), want %d", len(snap), snap, len(want))
	}
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %v, want %v", name, snap[name], v)
		}
	}
}

func writeSnap(t *testing.T, dir, name string, snap map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsOnSyntheticRegression is the acceptance check for the CI
// gate: a 20% ns/op regression against the baseline must fail with a
// 15% threshold, and pass with a 30% threshold.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]float64{
		"BenchmarkSpMVCompute/rma10": 1000000,
		"BenchmarkComputeBatch/nv8":  4000000,
	})
	newPath := writeSnap(t, dir, "new.json", map[string]float64{
		"BenchmarkSpMVCompute/rma10": 1200000, // +20%
		"BenchmarkComputeBatch/nv8":  3900000, // improved
	})

	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "15"}, &out)
	if err == nil {
		t.Fatalf("20%% regression passed a 15%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSpMVCompute/rma10") || !strings.Contains(err.Error(), "+20.0%") {
		t.Fatalf("gate error does not name the regression: %v", err)
	}

	out.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "30"}, &out); err != nil {
		t.Fatalf("20%% regression failed a 30%% gate: %v", err)
	}
}

// TestGateFilterAndNewBenchmarks: ungated names never fail the gate, and
// benchmarks with no baseline are reported but tolerated.
func TestGateFilterAndNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]float64{
		"BenchmarkHot":  1000,
		"BenchmarkCold": 1000,
	})
	newPath := writeSnap(t, dir, "new.json", map[string]float64{
		"BenchmarkHot":   1010,
		"BenchmarkCold":  9000, // 9x, but filtered out
		"BenchmarkNovel": 5000, // no baseline
	})

	var out bytes.Buffer
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "15", "-filter", "Hot"}, &out); err != nil {
		t.Fatalf("filtered comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ungated") || !strings.Contains(out.String(), "BenchmarkNovel") {
		t.Fatalf("report missing ungated/new annotations:\n%s", out.String())
	}
}

// TestGateWarnsOnMissingBaselineEntries: a baseline entry absent from
// the current run must surface as a WARNING and be counted in the
// summary, but never fail the gate on its own.
func TestGateWarnsOnMissingBaselineEntries(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]float64{
		"BenchmarkKept":    1000,
		"BenchmarkDropped": 2000,
		"BenchmarkRenamed": 3000,
	})
	newPath := writeSnap(t, dir, "new.json", map[string]float64{
		"BenchmarkKept": 1005,
	})

	var out bytes.Buffer
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "15"}, &out); err != nil {
		t.Fatalf("missing baseline entries must warn, not fail: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"WARNING", "BenchmarkDropped", "BenchmarkRenamed",
		"2 baseline entr(ies) missing from current run",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestParseRoundTripThroughCLI: -parse/-out writes a snapshot the
// comparison mode can read back.
func TestParseRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snap.json")
	var out bytes.Buffer
	if err := run([]string{"-parse", benchPath, "-out", snapPath}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-old", snapPath, "-new", snapPath, "-threshold", "15"}, &out); err != nil {
		t.Fatalf("self-comparison must pass: %v", err)
	}
}

// TestParseBenchCapturesStageMetrics: custom "<stage>-ns/op" metrics
// land in the snapshot as "<name>/stage:<stage>" entries (min across
// runs, like ns/op).
func TestParseBenchCapturesStageMetrics(t *testing.T) {
	const withStages = `goos: linux
BenchmarkServeSubmit-8   	     100	    50000 ns/op	    30000 queue-ns/op	    15000 compute-ns/op	     5000 merge-ns/op
BenchmarkServeSubmit-8   	     100	    48000 ns/op	    29000 queue-ns/op	    14000 compute-ns/op	     5000 merge-ns/op
PASS
`
	snap, err := parseBench(strings.NewReader(withStages))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkServeSubmit":               48000,
		"BenchmarkServeSubmit/stage:queue":   29000,
		"BenchmarkServeSubmit/stage:compute": 14000,
		"BenchmarkServeSubmit/stage:merge":   5000,
	}
	if len(snap) != len(want) {
		t.Fatalf("parsed %v, want %v", snap, want)
	}
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %v, want %v", name, snap[name], v)
		}
	}
}

// TestGateAttributesRegressionToStages: when a gated benchmark regresses
// and both snapshots carry its stage metrics, the failure names the
// stage that moved — and the stage entries themselves are never gated
// (a stage may grow while the total holds).
func TestGateAttributesRegressionToStages(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]float64{
		"BenchmarkServeSubmit":               50000,
		"BenchmarkServeSubmit/stage:queue":   30000,
		"BenchmarkServeSubmit/stage:compute": 15000,
		"BenchmarkSteady":                    1000,
		"BenchmarkSteady/stage:queue":        100,
	})
	newPath := writeSnap(t, dir, "new.json", map[string]float64{
		"BenchmarkServeSubmit":               70000, // +40%: fails the gate...
		"BenchmarkServeSubmit/stage:queue":   52000, // ...because queue blew up
		"BenchmarkServeSubmit/stage:compute": 15500,
		"BenchmarkSteady":                    1010, // total fine...
		"BenchmarkSteady/stage:queue":        900,  // ...despite a 9x stage swing
	})

	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "15"}, &out)
	if err == nil {
		t.Fatalf("regression passed the gate:\n%s", out.String())
	}
	msg := err.Error()
	for _, want := range []string{"BenchmarkServeSubmit", "stages:", "queue 30000 -> 52000", "+73.3%", "compute 15000 -> 15500"} {
		if !strings.Contains(msg, want) {
			t.Errorf("gate error missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "BenchmarkSteady") {
		t.Errorf("stage-only swing on a steady benchmark must not fail the gate:\n%s", msg)
	}
	if strings.Contains(out.String(), "stage:queue ") {
		t.Errorf("stage entries must not appear as gated comparison rows:\n%s", out.String())
	}
}

func TestParseBenchCapturesShardMetrics(t *testing.T) {
	const withShards = `goos: linux
BenchmarkFleetServe-8   	       1	  50000000 ns/op	     19210 shards:1-rps	     30744 shards:2-rps
BenchmarkFleetServe-8   	       1	  48000000 ns/op	     19500 shards:1-rps	     29000 shards:2-rps
PASS
`
	snap, err := parseBench(strings.NewReader(withShards))
	if err != nil {
		t.Fatal(err)
	}
	// ns/op keeps the min; rps keeps the max (each the least noisy
	// estimate for its direction).
	want := map[string]float64{
		"BenchmarkFleetServe":          48000000,
		"BenchmarkFleetServe/shards:1": 19500,
		"BenchmarkFleetServe/shards:2": 30744,
	}
	if len(snap) != len(want) {
		t.Fatalf("parsed %v, want %v", snap, want)
	}
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %v, want %v", name, snap[name], v)
		}
	}
}

// TestGateShardThroughputHigherIsBetter: shard-throughput entries fail
// the gate when they DROP beyond the threshold, and a rise — which
// would fail a ns/op gate — passes.
func TestGateShardThroughputHigherIsBetter(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]float64{
		"BenchmarkFleetServe/shards:1": 20000,
		"BenchmarkFleetServe/shards:4": 60000,
	})
	newPath := writeSnap(t, dir, "new.json", map[string]float64{
		"BenchmarkFleetServe/shards:1": 27000, // +35%: faster, must pass
		"BenchmarkFleetServe/shards:4": 30000, // -50%: sharding collapsed
	})
	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "15"}, &out)
	if err == nil {
		t.Fatalf("throughput collapse passed the gate:\n%s", out.String())
	}
	msg := err.Error()
	if !strings.Contains(msg, "shards:4") || !strings.Contains(msg, "rps") {
		t.Errorf("gate error does not name the collapsed shard count in rps:\n%s", msg)
	}
	if strings.Contains(msg, "shards:1") {
		t.Errorf("a throughput improvement failed the gate:\n%s", msg)
	}
}

func TestCLIErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"-parse", "x.txt"},
		{"-old", "only.json"},
		{"-old", "a.json", "-new", "b.json", "-filter", "("},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h: %v", err)
	}
}
