// Command benchdiff is the CI bench-regression gate. It has two modes:
//
//	benchdiff -parse bench.txt -out BENCH_ci.json
//	    Parse `go test -bench` output, keep the minimum ns/op per
//	    benchmark (the min of -count runs is the least noisy point
//	    estimate), and write a flat {"name": ns_per_op} JSON snapshot.
//
//	benchdiff -old baseline.json -new BENCH_ci.json -threshold 15
//	    Compare two snapshots and fail (exit 1) if any benchmark present
//	    in both regressed by more than the threshold percentage. An
//	    optional -filter regexp restricts which benchmarks are gated.
//
// Benchmark names are normalized by stripping the -GOMAXPROCS suffix, so
// snapshots taken on hosts with different core counts stay comparable.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.String("parse", "", "parse `go test -bench` output from this file into a snapshot")
	outPath := fs.String("out", "", "where -parse writes the JSON snapshot")
	oldPath := fs.String("old", "", "baseline snapshot for comparison")
	newPath := fs.String("new", "", "current snapshot for comparison")
	threshold := fs.Float64("threshold", 15, "max tolerated ns/op regression, percent")
	filter := fs.String("filter", "", "regexp restricting which benchmarks are gated")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch {
	case *parse != "":
		if *outPath == "" {
			return errors.New("-parse requires -out")
		}
		f, err := os.Open(*parse)
		if err != nil {
			return err
		}
		defer f.Close()
		snap, err := parseBench(f)
		if err != nil {
			return err
		}
		if len(snap) == 0 {
			return fmt.Errorf("no benchmark results in %s", *parse)
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(snap), *outPath)
		return nil
	case *oldPath != "" || *newPath != "":
		if *oldPath == "" || *newPath == "" {
			return errors.New("comparison needs both -old and -new")
		}
		var re *regexp.Regexp
		if *filter != "" {
			var err error
			if re, err = regexp.Compile(*filter); err != nil {
				return fmt.Errorf("-filter: %w", err)
			}
		}
		oldSnap, err := readSnapshot(*oldPath)
		if err != nil {
			return err
		}
		newSnap, err := readSnapshot(*newPath)
		if err != nil {
			return err
		}
		return compare(out, oldSnap, newSnap, *threshold, re)
	default:
		return errors.New("nothing to do: pass -parse/-out or -old/-new")
	}
}

// benchLine matches one `go test -bench` result line; the -N suffix
// (GOMAXPROCS) is stripped during normalization.
var procSuffix = regexp.MustCompile(`-\d+$`)

// stageSep joins a benchmark name with one of its custom stage metrics
// in a snapshot ("BenchmarkX/stage:queue"). Stage entries are never
// gated themselves; they exist to attribute a gated benchmark's
// regression to the stage that moved (see compare).
const stageSep = "/stage:"

// shardSep joins a benchmark name with one of its per-shard-count
// throughput metrics ("BenchmarkFleetServe/shards:4"). Unlike stage
// entries these ARE gated — higher is better, so a drop beyond the
// threshold fails the gate (a sharded configuration collapsing to
// single-worker speed is a real regression even when the benchmark's
// own ns/op hides it).
const shardSep = "/shards:"

// parseBench extracts min ns/op per normalized benchmark name, plus any
// custom per-stage metrics the benchmark reported (units of the form
// "<stage>-ns/op", e.g. b.ReportMetric(q, "queue-ns/op")), stored as
// "<name>/stage:<stage>" entries, and per-shard-count throughputs
// (units of the form "shards:<n>-rps") stored as "<name>/shards:<n>".
// ns/op keeps the minimum across -count runs, rps the maximum — each is
// the least noisy point estimate for its direction.
func parseBench(r io.Reader) (map[string]float64, error) {
	snap := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i+1 < len(fields); i++ {
			unit := fields[i+1]
			key := ""
			keepMax := false
			switch {
			case unit == "ns/op":
				key = name
			case strings.HasSuffix(unit, "-ns/op"):
				key = name + stageSep + strings.TrimSuffix(unit, "-ns/op")
			case strings.HasPrefix(unit, "shards:") && strings.HasSuffix(unit, "-rps"):
				key = name + shardSep + strings.TrimSuffix(strings.TrimPrefix(unit, "shards:"), "-rps")
				keepMax = true
			default:
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q for %s", unit, fields[i], name)
			}
			if old, ok := snap[key]; !ok || (keepMax && v > old) || (!keepMax && v < old) {
				snap[key] = v
			}
		}
	}
	return snap, sc.Err()
}

// stageAttribution renders how a regressed benchmark's stage metrics
// moved between two snapshots — the "which stage ate the time" answer —
// or "" when neither snapshot carries stages for it.
func stageAttribution(oldSnap, newSnap map[string]float64, name string) string {
	prefix := name + stageSep
	var stages []string
	for key := range newSnap {
		if strings.HasPrefix(key, prefix) {
			stages = append(stages, strings.TrimPrefix(key, prefix))
		}
	}
	sort.Strings(stages)
	var parts []string
	for _, st := range stages {
		oldV, ok := oldSnap[prefix+st]
		if !ok || oldV <= 0 {
			continue
		}
		newV := newSnap[prefix+st]
		parts = append(parts, fmt.Sprintf("%s %.0f -> %.0f ns/op (%+.1f%%)", st, oldV, newV, (newV-oldV)/oldV*100))
	}
	if len(parts) == 0 {
		return ""
	}
	return "stages: " + strings.Join(parts, ", ")
}

func readSnapshot(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := make(map[string]float64)
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// compare reports per-benchmark deltas and returns an error listing
// every gated benchmark whose ns/op grew beyond the threshold.
func compare(out io.Writer, oldSnap, newSnap map[string]float64, threshold float64, filter *regexp.Regexp) error {
	names := make([]string, 0, len(newSnap))
	for name := range newSnap {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	compared := 0
	for _, name := range names {
		// Stage metrics are attribution context, not gates: a stage can
		// legitimately grow while the whole benchmark holds (queue time
		// traded for compute time), so only the total is gated and the
		// stages explain the totals that fail.
		if strings.Contains(name, stageSep) {
			continue
		}
		// Shard-throughput entries are gated in the opposite direction:
		// a drop beyond the threshold is the regression.
		higherBetter := strings.Contains(name, shardSep)
		unit := "ns/op"
		if higherBetter {
			unit = "rps"
		}
		oldV, ok := oldSnap[name]
		if !ok {
			fmt.Fprintf(out, "  new       %-60s %12.0f %s\n", name, newSnap[name], unit)
			continue
		}
		if oldV <= 0 {
			continue
		}
		delta := (newSnap[name] - oldV) / oldV * 100
		gated := filter == nil || filter.MatchString(name)
		mark := "ok"
		if !gated {
			mark = "ungated"
		} else {
			compared++
			regressed := delta > threshold
			if higherBetter {
				regressed = delta < -threshold
			}
			if regressed {
				mark = "REGRESSED"
				reg := fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%, threshold %.0f%%)",
					name, oldV, newSnap[name], unit, delta, threshold)
				if attr := stageAttribution(oldSnap, newSnap, name); attr != "" {
					reg += "\n    " + attr
				}
				regressions = append(regressions, reg)
			}
		}
		fmt.Fprintf(out, "  %-9s %-60s %12.0f -> %12.0f %s  %+.1f%%\n", mark, name, oldV, newSnap[name], unit, delta)
	}
	// A baseline entry absent from the current run means the gate silently
	// stopped covering it (renamed benchmark, dropped sub-benchmark, bench
	// pattern drift). Warn loudly — but don't fail, so intentional renames
	// only need a baseline refresh, not a broken CI run.
	var missing []string
	for name := range oldSnap {
		if strings.Contains(name, stageSep) {
			continue // attribution context, not a gated benchmark
		}
		if _, ok := newSnap[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(out, "  WARNING   %-60s in baseline but not in current run — gate no longer covers it\n", name)
	}
	fmt.Fprintf(out, "compared %d gated benchmarks, %d regression(s), %d baseline entr(ies) missing from current run\n",
		compared, len(regressions), len(missing))
	if len(regressions) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}
