package main

import (
	"os"
	"path/filepath"
	"testing"

	"haspmv/internal/mmio"
)

func TestCorpusGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-n", "3", "-maxnnz", "4000"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files: %d", len(entries))
	}
	a, err := mmio.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepresentativeGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-representative", "-scale", "256"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 22 {
		t.Fatalf("files: %d, want the 22 Table II matrices", len(entries))
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"-dir", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
