package main

import (
	"os"
	"path/filepath"
	"testing"

	"haspmv/internal/mmio"
)

func TestCorpusGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-n", "3", "-maxnnz", "4000"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files: %d", len(entries))
	}
	a, err := mmio.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepresentativeGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-representative", "-scale", "256"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 22 {
		t.Fatalf("files: %d, want the 22 Table II matrices", len(entries))
	}
}

func TestStencilGeneration(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dir", dir, "-stencil", "-rows", "2000", "-cols", "2000",
		"-diags", "9", "-noise", "0.01", "-palette", "4"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(filepath.Join(dir, "stencil-2000x2000-d9.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, v := range a.Val {
		distinct[v] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("palette 4 produced %d distinct values", len(distinct))
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"-dir", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
