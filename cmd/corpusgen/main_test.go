package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"haspmv/internal/mmio"
	"haspmv/internal/sparse"
)

func TestCorpusGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-n", "3", "-maxnnz", "4000"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files: %d", len(entries))
	}
	a, err := mmio.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepresentativeGeneration(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-representative", "-scale", "256"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 22 {
		t.Fatalf("files: %d, want the 22 Table II matrices", len(entries))
	}
}

func TestStencilGeneration(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dir", dir, "-stencil", "-rows", "2000", "-cols", "2000",
		"-diags", "9", "-noise", "0.01", "-palette", "4"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(filepath.Join(dir, "stencil-2000x2000-d9.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, v := range a.Val {
		distinct[v] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("palette 4 produced %d distinct values", len(distinct))
	}
}

func TestShuffledCopies(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dir", dir, "-stencil", "-rows", "1500", "-cols", "1500",
		"-diags", "5", "-shuffle"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(filepath.Join(dir, "stencil-1500x1500-d5.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mmio.ReadFile(filepath.Join(dir, "stencil-1500x1500-d5-shuffled.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shuffled shape %dx%d/%d != original %dx%d/%d",
			b.Rows, b.Cols, b.NNZ(), a.Rows, a.Cols, a.NNZ())
	}
	// Same rows, different order: the multiset of per-row signatures must
	// match, and the orders must actually differ.
	sig := func(a *sparse.CSR) map[string]int {
		m := map[string]int{}
		for i := 0; i < a.Rows; i++ {
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			m[fmt.Sprint(a.ColIdx[lo:hi], a.Val[lo:hi])]++
		}
		return m
	}
	sa, sb := sig(a), sig(b)
	if len(sa) != len(sb) {
		t.Fatalf("row signature sets differ: %d vs %d", len(sa), len(sb))
	}
	for k, n := range sa {
		if sb[k] != n {
			t.Fatalf("row multiset differs at %q: %d vs %d", k, n, sb[k])
		}
	}
	if sparse.Bandwidth(b) <= sparse.Bandwidth(a) {
		t.Fatalf("shuffle did not scatter the band: bandwidth %d -> %d",
			sparse.Bandwidth(a), sparse.Bandwidth(b))
	}
	// Deterministic for a fixed seed.
	dir2 := t.TempDir()
	if err := run(append(args[:1:1], append([]string{dir2}, args[2:]...)...)); err != nil {
		t.Fatal(err)
	}
	b2, err := mmio.ReadFile(filepath.Join(dir2, "stencil-1500x1500-d5-shuffled.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.RowPtr {
		if b.RowPtr[i] != b2.RowPtr[i] {
			t.Fatalf("shuffle not deterministic: rowptr[%d] %d vs %d", i, b.RowPtr[i], b2.RowPtr[i])
		}
	}
	for i := range b.ColIdx {
		if b.ColIdx[i] != b2.ColIdx[i] || b.Val[i] != b2.Val[i] {
			t.Fatalf("shuffle not deterministic at nnz %d", i)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"-dir", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
