// Command corpusgen materializes the synthetic matrix corpus (the
// SuiteSparse stand-in) or the 22 representative Table II matrices as
// Matrix Market files, so they can be inspected, diffed against real
// downloads, or fed to other tools.
//
//	corpusgen -dir /tmp/corpus -n 50 -maxnnz 1000000
//	corpusgen -dir /tmp/rep -representative -scale 16
//	corpusgen -dir /tmp/zipf -zipf -rows 65536 -cols 65536 -nnz 600000
//	corpusgen -dir /tmp/sten -stencil -rows 65536 -cols 65536 -diags 9 -noise 0.01 -palette 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"haspmv/internal/gen"
	"haspmv/internal/mmio"
	"haspmv/internal/sparse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	dir := fs.String("dir", "", "output directory (required)")
	n := fs.Int("n", 30, "corpus size")
	minNNZ := fs.Int("minnnz", 2000, "smallest matrix nnz")
	maxNNZ := fs.Int("maxnnz", 500000, "largest matrix nnz")
	seed := fs.Int64("seed", 20230904, "corpus seed")
	representative := fs.Bool("representative", false, "write the 22 Table II matrices instead of the corpus")
	scale := fs.Int("scale", 16, "representative scale divisor")
	zipf := fs.Bool("zipf", false, "write one rank-law (Zipf) power-law matrix instead of the corpus")
	rows := fs.Int("rows", 65536, "zipf matrix rows")
	cols := fs.Int("cols", 65536, "zipf matrix cols")
	nnz := fs.Int("nnz", 600000, "zipf matrix nonzeros (exact)")
	zipfS := fs.Float64("zipf-s", 0, "zipf rank exponent (0 = default 1.4)")
	stencil := fs.Bool("stencil", false, "write one banded/stencil matrix instead of the corpus")
	diags := fs.Int("diags", 5, "stencil diagonal count (offsets nearest 0)")
	fill := fs.Float64("fill", 1, "stencil band fill probability (0 or 1 = dense bands)")
	noise := fs.Float64("noise", 0, "fraction of rows receiving one off-band defect entry")
	palette := fs.Int("palette", 0, "restrict values to this many distinct floats (0 = continuous)")
	shuffle := fs.Bool("shuffle", false, "also write a row-permuted *-shuffled copy of each matrix (reorder-autotuner adversary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	writeOne := func(name string, a *sparse.CSR) error {
		path := filepath.Join(*dir, name+".mtx")
		if err := mmio.WriteFile(path, a); err != nil {
			return err
		}
		s := sparse.ComputeRowStats(a)
		fmt.Printf("%-40s %s\n", path, s)
		return nil
	}
	write := func(name string, a *sparse.CSR) error {
		if err := writeOne(name, a); err != nil {
			return err
		}
		if *shuffle {
			return writeOne(name+"-shuffled", gen.ShuffleRows(a, *seed))
		}
		return nil
	}

	if *stencil {
		sp := gen.StencilSpec{
			Name: fmt.Sprintf("stencil-%dx%d-d%d", *rows, *cols, *diags),
			Rows: *rows, Cols: *cols, Diagonals: *diags,
			BandFill: *fill, NoiseFrac: *noise, PaletteK: *palette, Seed: *seed,
		}
		return write(sp.Name, sp.Generate())
	}
	if *zipf {
		z := gen.ZipfSpec{
			Name: fmt.Sprintf("zipf-%dx%d-%d", *rows, *cols, *nnz),
			Rows: *rows, Cols: *cols, TargetNNZ: *nnz, S: *zipfS, Seed: *seed,
		}
		return write(z.Name, z.Generate())
	}
	if *representative {
		for _, name := range gen.RepresentativeNames() {
			if err := write(name, gen.Representative(name, *scale)); err != nil {
				return err
			}
		}
		return nil
	}
	specs := gen.Corpus(gen.CorpusOptions{Size: *n, MinNNZ: *minNNZ, MaxNNZ: *maxNNZ, Seed: *seed})
	for _, sp := range specs {
		if err := write(sp.Name, sp.Generate()); err != nil {
			return err
		}
	}
	return nil
}
