package main

import "testing"

func TestModelSweep(t *testing.T) {
	for _, machine := range []string{"i9-12900KF", "7950X3D", "apple-m2-like"} {
		if err := run([]string{"-machine", machine, "-points", "6"}); err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
	}
}

func TestHostMeasurement(t *testing.T) {
	if err := run([]string{"-points", "4", "-host", "-workers", "2", "-mb", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-machine", "cray-1"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
