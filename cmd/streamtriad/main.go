// Command streamtriad runs the Figure 3 micro-benchmark standalone: the
// McCalpin stream triad priced on one AMP model for the three core
// compositions, optionally alongside a real host measurement.
//
//	streamtriad -machine i9-12900KF -points 24
//	streamtriad -host -workers 8 -mb 512
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streamtriad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamtriad", flag.ContinueOnError)
	machine := fs.String("machine", "i9-12900KF", "AMP model to sweep")
	points := fs.Int("points", 24, "sweep points per configuration")
	host := fs.Bool("host", false, "also measure the real triad bandwidth of this host")
	workers := fs.Int("workers", 4, "host triad worker goroutines")
	mb := fs.Int("mb", 256, "host triad per-array megabytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, ok := amp.ByName(*machine)
	if !ok {
		return fmt.Errorf("unknown machine %q", *machine)
	}
	p := costmodel.DefaultParams()

	fmt.Printf("# stream triad on the %s model (GB/s)\n", m.Name)
	configs := []amp.Config{amp.POnly, amp.EOnly, amp.PAndE}
	sweeps := make([][]stream.Point, len(configs))
	for i, cc := range configs {
		sweeps[i] = stream.Sweep(m, p, cc, *points)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bytes\t%v\t%v\t%v\n", configs[0], configs[1], configs[2])
	for k := range sweeps[0] {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\n",
			sweeps[0][k].TotalBytes, sweeps[0][k].GBps, sweeps[1][k].GBps, sweeps[2][k].GBps)
	}
	tw.Flush()
	for _, cc := range configs {
		fmt.Printf("DRAM plateau %v: %.1f GB/s\n", cc, stream.DRAMPlateau(m, p, cc))
	}

	if *host {
		elems := *mb << 20 / 8
		gbps := stream.HostTriad(*workers, elems, 3)
		fmt.Printf("\nhost triad (%d workers, %d MB arrays): %.1f GB/s\n", *workers, *mb, gbps)
	}
	return nil
}
