// Command haspmv-bench regenerates the paper's tables and figures on the
// AMP simulator. Every experiment of the evaluation section has an id:
//
//	haspmv-bench -exp table1          # platform specifications
//	haspmv-bench -exp table2          # the 22 representative matrices
//	haspmv-bench -exp fig3            # stream triad bandwidth sweep
//	haspmv-bench -exp fig4            # parallel SpMV, three core configs
//	haspmv-bench -exp fig5            # single P- vs E-core correlation
//	haspmv-bench -exp fig8            # HASpMV vs oneMKL/AOCL/CSR5/Merge
//	haspmv-bench -exp fig9            # per-core balance on rma10
//	haspmv-bench -exp fig10           # preprocessing cost
//	haspmv-bench -exp fig11           # the 22 matrices, all methods
//	haspmv-bench -exp energy          # extension: modeled energy per SpMV
//	haspmv-bench -exp phases          # telemetry phase timers (Fig. 7 style)
//	haspmv-bench -exp selfcheck       # verify every method on the battery
//	haspmv-bench -exp breakdown       # per-core time/traffic decomposition
//	haspmv-bench -exp host            # real host wall-clock (caveats apply)
//	haspmv-bench -exp batch           # fused multi-vector SpMV vs repeated (host)
//	haspmv-bench -exp index           # compressed index streams vs []int reference (host)
//	haspmv-bench -exp format          # execution formats: int/u32/auto/dia/palette (host)
//	haspmv-bench -exp segsum          # segmented-sum vs serial-epilogue execution (host)
//	haspmv-bench -exp serve           # closed-loop serving: batcher vs solo (host)
//	haspmv-bench -exp fleet           # closed-loop serving across row-shards (host)
//	haspmv-bench -exp adapt           # online repartitioning recovery from miscalibration
//	haspmv-bench -exp all             # everything, in paper order
//
// Scale knobs: -corpus N (matrices standing in for the 2888 SuiteSparse
// sweep), -maxnnz (largest corpus matrix), -scale S (divisor on the
// published sizes of the representative matrices), -machines a,b,...,
// -nvs 1,2,4,8 (batch widths for -exp batch), -clients/-perclient/-lingers
// (load shape and coalescing windows for -exp serve)
//
// Observability knobs: -telemetry enables instrumentation for the run,
// -metrics-addr ADDR serves /metrics (Prometheus text), /debug/vars
// (expvar) and /debug/pprof while the experiments execute, and
// -trace FILE writes a Chrome trace_event JSON (one span per simulated
// core plus partition-decision records) openable in chrome://tracing or
// https://ui.perfetto.dev. Both -metrics-addr and -trace imply
// -telemetry.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/bench"
	"haspmv/internal/gen"
	"haspmv/internal/telemetry"
	"haspmv/internal/verify"
)

// parseDurations parses a comma-separated list of non-negative Go
// durations ("0,50us,200us,1ms").
func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			out = append(out, 0)
			continue
		}
		v, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("window %s must not be negative", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("width %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haspmv-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haspmv-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1, table2, fig3, fig4, fig5, fig8, fig9, fig10, fig11, energy, phases, breakdown, host, batch, index, format, segsum, serve, fleet, adapt, selfcheck, all)")
	corpus := fs.Int("corpus", 0, "corpus size (default from harness)")
	maxNNZ := fs.Int("maxnnz", 0, "largest corpus matrix nnz")
	scale := fs.Int("scale", 0, "representative matrix scale divisor (1 = published size)")
	machines := fs.String("machines", "", "comma-separated machine names (default: all four)")
	points := fs.Int("points", 24, "stream sweep points per curve (fig3)")
	matrix := fs.String("matrix", "rma10", "representative matrix for breakdown/host/batch experiments")
	nvs := fs.String("nvs", "1,2,4,8,16", "comma-separated batch widths for the batch experiment")
	clients := fs.Int("clients", 64, "concurrent closed-loop clients for the serve experiment")
	perClient := fs.Int("perclient", 6, "requests per client for the serve experiment")
	lingers := fs.String("lingers", "0,50us,200us,1ms", "comma-separated coalescing windows for the serve experiment")
	shards := fs.String("shards", "1,2,4", "comma-separated shard counts for the fleet experiment")
	perturbs := fs.String("perturb", "0.5,2,4", "comma-separated P-group miscalibration factors for the adapt experiment")
	adaptSteps := fs.Int("adapt-steps", 10, "multiplies the adapt experiment lets the feedback loop observe")
	seed := fs.Int64("seed", 0, "corpus seed override")
	csvDir := fs.String("csv", "", "also write one CSV per experiment into this directory")
	telemetryOn := fs.Bool("telemetry", false, "collect phase timers, per-core spans and partition records")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (implies -telemetry; \":0\" picks a port)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON here after the run (implies -telemetry)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	cfg := bench.DefaultConfig()
	if *corpus > 0 {
		cfg.CorpusSize = *corpus
	}
	if *maxNNZ > 0 {
		cfg.CorpusMaxNNZ = *maxNNZ
	}
	if *scale > 0 {
		cfg.RepScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *machines != "" {
		cfg.Machines = nil
		for _, name := range strings.Split(*machines, ",") {
			m, ok := amp.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown machine %q (have i9-12900KF, i9-13900KF, 7950X3D, 7950X)", name)
			}
			cfg.Machines = append(cfg.Machines, m)
		}
	}

	out := os.Stdout

	// Observability: -metrics-addr and -trace both need a live collector.
	if *metricsAddr != "" || *tracePath != "" {
		*telemetryOn = true
	}
	if *telemetryOn {
		col := telemetry.NewCollector()
		prev := telemetry.Activate(col)
		defer telemetry.Activate(prev)
		if *metricsAddr != "" {
			srv, err := telemetry.Serve(*metricsAddr)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "haspmv-bench: serving /metrics, /debug/vars and /debug/pprof on http://%s\n", srv.Addr())
		}
		if *tracePath != "" {
			defer func() {
				// One instrumented Prepare+Multiply so the trace carries a
				// span per simulated core even for simulator-only runs.
				if err := bench.TraceRun(cfg, cfg.Machines[0], *matrix); err != nil {
					fmt.Fprintln(os.Stderr, "haspmv-bench: trace:", err)
					return
				}
				f, err := os.Create(*tracePath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "haspmv-bench: trace:", err)
					return
				}
				if err := col.WriteTrace(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "haspmv-bench: trace:", err)
					return
				}
				fmt.Fprintf(os.Stderr, "haspmv-bench: wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
			}()
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "energy", "phases"}
	}
	for _, id := range ids {
		switch id {
		case "table1":
			fmt.Fprintln(out, "\n# Table I — modeled platform specifications")
			bench.PrintTable1(out, bench.Table1(cfg))
		case "table2":
			fmt.Fprintf(out, "\n# Table II — representative matrices at scale 1/%d\n", cfg.RepScale)
			bench.PrintTable2(out, bench.Table2(cfg))
		case "fig3":
			series := bench.Fig3(cfg, *points)
			bench.PrintFig3(out, series)
			if err := writeCSV("fig3", func(w io.Writer) error { return bench.Fig3CSV(w, series) }); err != nil {
				return err
			}
		case "fig4":
			res, err := bench.Fig4(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig4(out, res)
			if err := writeCSV("fig4", func(w io.Writer) error { return bench.Fig4CSV(w, res) }); err != nil {
				return err
			}
		case "fig5":
			res, err := bench.Fig5(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig5(out, res)
			if err := writeCSV("fig5", func(w io.Writer) error { return bench.Fig5CSV(w, res) }); err != nil {
				return err
			}
		case "fig8":
			res, err := bench.Fig8(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig8(out, res)
			if err := writeCSV("fig8", func(w io.Writer) error { return bench.Fig8CSV(w, res) }); err != nil {
				return err
			}
		case "fig9":
			res, err := bench.Fig9(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig9(out, res)
			if err := writeCSV("fig9", func(w io.Writer) error { return bench.Fig9CSV(w, res) }); err != nil {
				return err
			}
		case "fig10":
			for _, m := range cfg.Machines {
				rows, err := bench.Fig10(cfg, m)
				if err != nil {
					return err
				}
				bench.PrintFig10(out, m, rows)
				m := m
				if err := writeCSV("fig10-"+m.Name, func(w io.Writer) error { return bench.Fig10CSV(w, m.Name, rows) }); err != nil {
					return err
				}
			}
		case "fig11":
			res, err := bench.Fig11(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig11(out, res)
			if err := writeCSV("fig11", func(w io.Writer) error { return bench.Fig11CSV(w, res) }); err != nil {
				return err
			}
		case "phases":
			for _, m := range cfg.Machines {
				matrices := []string{"mac_econ_fwd500", "webbase-1M", "rma10", "cant", "Dubcova2"}
				rows, err := bench.PhaseBreakdown(cfg, m, matrices)
				if err != nil {
					return err
				}
				bench.PrintPhases(out, m, rows)
				m := m
				if err := writeCSV("phases-"+m.Name, func(w io.Writer) error { return bench.PhasesCSV(w, m.Name, rows) }); err != nil {
					return err
				}
			}
		case "breakdown":
			for _, m := range cfg.Machines {
				rows, err := bench.Breakdown(cfg, m, *matrix)
				if err != nil {
					return err
				}
				bench.PrintBreakdown(out, m, *matrix, rows)
			}
		case "host":
			m := cfg.Machines[0]
			rows, err := bench.HostCompare(cfg, m, *matrix, 5)
			if err != nil {
				return err
			}
			bench.PrintHostCompare(out, m, *matrix, rows)
		case "batch":
			widths, err := parseInts(*nvs)
			if err != nil {
				return fmt.Errorf("-nvs: %w", err)
			}
			m := cfg.Machines[0]
			rows, err := bench.BatchThroughput(cfg, m, *matrix, widths, 5)
			if err != nil {
				return err
			}
			bench.PrintBatch(out, m, *matrix, rows)
			if err := writeCSV("batch", func(w io.Writer) error { return bench.BatchCSV(w, m.Name, *matrix, rows) }); err != nil {
				return err
			}
		case "index":
			m := cfg.Machines[0]
			rows, err := bench.IndexSweep(cfg, m, *matrix, 5)
			if err != nil {
				return err
			}
			bench.PrintIndex(out, m, *matrix, rows)
			if err := writeCSV("index", func(w io.Writer) error { return bench.IndexCSV(w, m.Name, *matrix, rows) }); err != nil {
				return err
			}
		case "format":
			m := cfg.Machines[0]
			rows, err := bench.FormatSweep(cfg, m, *matrix, 5)
			if err != nil {
				return err
			}
			bench.PrintFormat(out, m, rows)
			if err := writeCSV("format", func(w io.Writer) error { return bench.FormatCSV(w, m.Name, rows) }); err != nil {
				return err
			}
		case "segsum":
			m := cfg.Machines[0]
			rows, err := bench.SegSumSweep(cfg, m, *matrix, 5)
			if err != nil {
				return err
			}
			bench.PrintSegSum(out, m, rows)
			if err := writeCSV("segsum", func(w io.Writer) error { return bench.SegSumCSV(w, m.Name, rows) }); err != nil {
				return err
			}
		case "serve":
			windows, err := parseDurations(*lingers)
			if err != nil {
				return fmt.Errorf("-lingers: %w", err)
			}
			m := cfg.Machines[0]
			rows, err := bench.ServeSweep(cfg, m, *matrix, *clients, *perClient, windows)
			if err != nil {
				return err
			}
			a := gen.Representative(*matrix, cfg.RepScale)
			bench.PrintServe(out, m, *matrix, a.NNZ(), rows)
			if err := writeCSV("serve", func(w io.Writer) error { return bench.ServeCSV(w, m.Name, *matrix, rows) }); err != nil {
				return err
			}
		case "fleet":
			counts, err := parseInts(*shards)
			if err != nil {
				return fmt.Errorf("-shards: %w", err)
			}
			m := cfg.Machines[0]
			rows, err := bench.FleetSweep(cfg, m, *matrix, counts, *clients, *perClient)
			if err != nil {
				return err
			}
			a := gen.Representative(*matrix, cfg.RepScale)
			bench.PrintFleet(out, m, *matrix, a.NNZ(), rows)
			if err := writeCSV("fleet", func(w io.Writer) error { return bench.FleetCSV(w, m.Name, *matrix, rows) }); err != nil {
				return err
			}
		case "adapt":
			var factors []float64
			for _, part := range strings.Split(*perturbs, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					return fmt.Errorf("-perturb: %w", err)
				}
				if v <= 0 {
					return fmt.Errorf("-perturb: factor %v must be positive", v)
				}
				factors = append(factors, v)
			}
			var results []*bench.AdaptResult
			for _, m := range cfg.Machines {
				for _, factor := range factors {
					r, err := bench.AdaptSweep(cfg, m, *matrix, factor, *adaptSteps)
					if err != nil {
						return err
					}
					bench.PrintAdapt(out, r)
					results = append(results, r)
				}
			}
			if err := writeCSV("adapt", func(w io.Writer) error { return bench.AdaptCSV(w, results) }); err != nil {
				return err
			}
		case "selfcheck":
			n := 0
			for _, m := range cfg.Machines {
				for _, alg := range bench.AlgorithmsFor(m) {
					for _, tc := range verify.Battery() {
						if err := verify.OnMatrix(alg, m, tc.A); err != nil {
							return fmt.Errorf("selfcheck %s on %s / %s: %w", alg.Name(), m.Name, tc.Name, err)
						}
						n++
					}
				}
			}
			fmt.Fprintf(out, "selfcheck: %d algorithm x machine x matrix combinations verified\n", n)
		case "energy":
			res, err := bench.ExtEnergy(bench.EnergyMachines(cfg))
			if err != nil {
				return err
			}
			bench.PrintExtEnergy(out, res)
			if err := writeCSV("energy", func(w io.Writer) error { return bench.EnergyCSV(w, res) }); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	return nil
}
