package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haspmv/internal/telemetry"
)

func TestRunDispatch(t *testing.T) {
	// Fast experiments only; the heavy sweeps are covered in
	// internal/bench's tests.
	for _, exp := range []string{"table1", "table2", "fig9"} {
		if err := run([]string{"-exp", exp, "-scale", "64"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunFlagsAndErrors(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown experiment: %v", err)
	}
	if err := run([]string{"-machines", "z80"}); err == nil || !strings.Contains(err.Error(), "z80") {
		t.Fatalf("unknown machine: %v", err)
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	// Machine filtering works with extension presets.
	if err := run([]string{"-exp", "table1", "-machines", "apple-m2-like,7950X"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "batch", "-scale", "64", "-matrix", "dawson5", "-nvs", "1,4", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "batch.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "machine,matrix,nv,") {
		t.Fatalf("csv header: %q", string(data[:40]))
	}
	if err := run([]string{"-exp", "batch", "-nvs", "2,zero"}); err == nil || !strings.Contains(err.Error(), "-nvs") {
		t.Fatalf("bad -nvs accepted: %v", err)
	}
	if err := run([]string{"-exp", "batch", "-nvs", "0"}); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("non-positive -nvs accepted: %v", err)
	}
}

func TestRunFormatExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "format", "-scale", "256", "-matrix", "dawson5", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "format.csv"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "machine,matrix,config,") {
		t.Fatalf("csv header: %q", s[:40])
	}
	for _, want := range []string{"stencil9", "graph01", "dawson5", ",dia,", ",palette,"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format CSV missing %q:\n%s", want, s)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-exp", "fig9", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "metric,core,seconds") {
		t.Fatalf("csv header: %q", string(data[:40]))
	}
}

func TestRunSelfcheckScaledMachines(t *testing.T) {
	if err := run([]string{"-exp", "selfcheck", "-machines", "i9-12900KF"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpExitsClean(t *testing.T) {
	// The CI smoke step runs `haspmv-bench -help`; flag.ErrHelp must not
	// surface as a failure.
	if err := run([]string{"-help"}); err != nil {
		t.Fatalf("-help: %v", err)
	}
}

func TestRunPhasesExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "phases", "-scale", "64", "-machines", "i9-12900KF", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "phases-i9-12900KF.csv"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "machine,matrix,nnz,phase,millis,count") {
		t.Fatalf("csv header: %q", s[:60])
	}
	for _, phase := range []string{"reorder", "cost", "partition_l1", "partition_l2", "prepare", "compute"} {
		if !strings.Contains(s, ","+phase+",") {
			t.Fatalf("phase %q missing from CSV", phase)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-exp", "table1", "-scale", "64", "-machines", "i9-12900KF", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("trace is not valid JSON")
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	cores := map[int]bool{}
	instants := 0
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			cores[e.Tid] = true
		case "i":
			instants++
		}
	}
	// i9-12900KF models 8 P-cores + 8 E-cores: one span per simulated core.
	if len(cores) != 16 {
		t.Fatalf("trace has spans on %d distinct cores, want 16", len(cores))
	}
	if instants == 0 {
		t.Fatal("trace has no partition-decision instant event")
	}
}

func TestRunMetricsAddr(t *testing.T) {
	// The server only lives for the duration of run(), so probe it from a
	// re-implementation of the wiring: enable a collector, serve, and hit
	// /metrics through the public handler the flag uses.
	srv, err := telemetry.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run([]string{"-exp", "table1", "-machines", "i9-12900KF", "-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
}
