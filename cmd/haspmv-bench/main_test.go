package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	// Fast experiments only; the heavy sweeps are covered in
	// internal/bench's tests.
	for _, exp := range []string{"table1", "table2", "fig9"} {
		if err := run([]string{"-exp", exp, "-scale", "64"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunFlagsAndErrors(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown experiment: %v", err)
	}
	if err := run([]string{"-machines", "z80"}); err == nil || !strings.Contains(err.Error(), "z80") {
		t.Fatalf("unknown machine: %v", err)
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	// Machine filtering works with extension presets.
	if err := run([]string{"-exp", "table1", "-machines", "apple-m2-like,7950X"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-exp", "fig9", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "metric,core,seconds") {
		t.Fatalf("csv header: %q", string(data[:40]))
	}
}

func TestRunSelfcheckScaledMachines(t *testing.T) {
	if err := run([]string{"-exp", "selfcheck", "-machines", "i9-12900KF"}); err != nil {
		t.Fatal(err)
	}
}
