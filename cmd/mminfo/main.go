// Command mminfo inspects Matrix Market files and runs quick SpMV
// comparisons on them, so real SuiteSparse downloads can be dropped into
// the reproduction:
//
//	mminfo matrix.mtx                      # structural statistics
//	mminfo -spmv -machine 7950X3D m.mtx    # modeled method comparison
//	mminfo -convert out.mtx in.mtx         # normalize to general/real form
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"haspmv/internal/amp"
	"haspmv/internal/bench"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/mmio"
	"haspmv/internal/sparse"

	haspmvcore "haspmv/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mminfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mminfo", flag.ContinueOnError)
	spmv := fs.Bool("spmv", false, "run the modeled method comparison on the matrix")
	reorder := fs.Bool("reorder", false, "score every row-reorder strategy and report the autotuner's pick")
	machine := fs.String("machine", "i9-12900KF", "AMP model for -spmv")
	convert := fs.String("convert", "", "write the matrix to this path in general/real coordinate form")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mminfo [flags] file.mtx")
	}
	path := fs.Arg(0)
	a, err := mmio.ReadFile(path)
	if err != nil {
		return err
	}

	s := sparse.ComputeRowStats(a)
	fmt.Printf("%s: %s\n", path, s)
	fmt.Printf("bandwidth=%d density=%.3g sorted-rows=%v\n",
		sparse.Bandwidth(a), sparse.Density(a), a.RowsSorted())
	// Which compressed index streams Prepare will build: the required
	// absolute index width, the widest row column-span, and the share of
	// the matrix a u16-delta region can cover.
	sp := sparse.ComputeColSpanStats(a)
	nnz16Pct := 0.0
	if a.NNZ() > 0 {
		nnz16Pct = 100 * float64(sp.NNZ16) / float64(a.NNZ())
	}
	fmt.Printf("index-width=u%d max-row-col-span=%d u16-delta-rows=%d/%d u16-delta-nnz=%.1f%%\n",
		sparse.IndexWidthBits(a.Cols), sp.MaxSpan, sp.Rows16, a.Rows, nnz16Pct)
	// Diagonal structure and value-stream compressibility — what the
	// diagonal run-descriptor format and the palette value stream would
	// get out of this matrix.
	ds := sparse.ComputeDiagStats(a, 8)
	fmt.Printf("diagonals=%d top%d-diag-nnz=%.1f%% runs=%d mean-run-len=%.2f max-run-len=%d run-hist[%s]\n",
		ds.Diagonals, ds.TopD, 100*ds.TopShare, ds.Runs, ds.MeanRunLen, ds.MaxRunLen, ds.HistString())
	vs := sparse.ComputeValueStats(a)
	distinct := fmt.Sprintf("%d", vs.Distinct)
	if vs.Capped {
		distinct = fmt.Sprintf(">%d", vs.Distinct-1)
	}
	fmt.Printf("distinct-values=%s palette-eligible=%v\n", distinct, vs.PaletteEligible())
	// Row-length skew — the same numbers the execution-mode dispatch
	// reads, so segmented-sum eligibility is predictable from this line:
	// hub share (max-row-nnz over nnz), Gini, and how many rows an
	// equal-nnz split across the machine's cores would cut mid-row.
	m, ok := amp.ByName(*machine)
	if !ok {
		return fmt.Errorf("unknown machine %q", *machine)
	}
	cores := len(m.Cores(amp.PAndE))
	skew := costmodel.ComputeRowSkew(a.RowPtr)
	fmt.Printf("max-row-nnz=%d mean-row-nnz=%.2f hub-share=%.1f%% gini=%.3f spanning-rows@%dcores=%d exec=%s\n",
		skew.MaxRowNNZ, skew.MeanRowNNZ, 100*skew.MaxShare, skew.Gini,
		cores, costmodel.RowsSpanningCores(a.RowPtr, cores),
		map[bool]string{true: "segsum", false: "serial"}[skew.PreferSegSum(cores)])

	if *reorder {
		fmt.Printf("\n# reorder strategies (%d cores)\n", cores)
		an := haspmvcore.AnalyzeReorder(a, m)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\tindex-bytes\tgather-bytes\tseek-bytes\ttotal\tvs-length\tbandwidth")
		lenTotal := an.Decision.Scores[haspmvcore.StrategyLength].Total
		for s := haspmvcore.StrategyLength; s <= haspmvcore.StrategyCluster; s++ {
			sc := an.Decision.Scores[s]
			if !sc.Evaluated {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\n", s)
				continue
			}
			rel := "="
			if lenTotal > 0 {
				rel = fmt.Sprintf("%+.1f%%", 100*float64(sc.Total-lenTotal)/float64(lenTotal))
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%d\n",
				s, sc.IndexBytes, sc.GatherBytes, sc.SeekBytes, sc.Total, rel, an.Bandwidth[s])
		}
		tw.Flush()
		// The headline numbers: how far RCM squeezes the bandwidth, how
		// much x-gather traffic the winning order saves, and the pick the
		// Prepare-time autotuner (which respects the time-budget gate)
		// would actually make.
		if rcm := an.Bandwidth[haspmvcore.StrategyRCM]; rcm >= 0 {
			fmt.Printf("rcm-bandwidth: %d -> %d\n", an.BandwidthNatural, rcm)
		}
		pick := an.Decision.Strategy
		if g0 := an.Decision.Scores[haspmvcore.StrategyLength].GatherBytes; g0 > 0 {
			g1 := an.Decision.Scores[pick].GatherBytes
			fmt.Printf("x-gather bytes: %d -> %d (%.1f%% of length-sort)\n", g0, g1, 100*float64(g1)/float64(g0))
		}
		if an.Decision.XResident {
			fmt.Printf("x-vector: resident in %s's last-level cache (gather term discounted to L3-hit cost)\n", m.Name)
		}
		gate := ""
		if an.Decision.Gated {
			gate = " (graph strategies gated at Prepare time: matrix under the analysis budget)"
		}
		fmt.Printf("autotuner pick: %s%s\n", pick, gate)
	}

	if *convert != "" {
		if err := mmio.WriteFile(*convert, a); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *convert)
	}

	if *spmv {
		fmt.Printf("\n# modeled SpMV on %s\n", m.Name)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "method\ttime(ms)\tGFlops\tbound")
		algs := bench.AlgorithmsFor(m)
		base := 0.0
		for i, alg := range algs {
			prep, err := alg.Prepare(m, a)
			if err != nil {
				return err
			}
			r := exec.Simulate(m, costmodel.DefaultParams(), a, prep)
			if i == 0 {
				base = r.Seconds
			}
			fmt.Fprintf(tw, "%s\t%.4f\t%.2f\t%s\n", alg.Name(), 1e3*r.Seconds, r.GFlops, r.BoundBy)
			_ = base
		}
		tw.Flush()
		fmt.Printf("auto P-proportion: %.3f, auto base: %d\n",
			haspmvcore.ProportionFor(m, a), haspmvcore.AutoBase(a))
	}
	return nil
}
