package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haspmv/internal/mmio"
	"haspmv/internal/sparse"
)

func writeTestMatrix(t *testing.T) string {
	t.Helper()
	a := sparse.FromDense([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	}, 0)
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := mmio.WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfoAndConvert(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.mtx")
	if err := run([]string{"-convert", out, path}); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 7 {
		t.Fatalf("converted nnz %d", a.NNZ())
	}
}

func TestDiagAndValueLines(t *testing.T) {
	path := writeTestMatrix(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{path})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The 3x3 tridiagonal test matrix: 3 diagonals carry all nnz, every
	// row is one contiguous run, values {4,-1} are palette eligible.
	for _, want := range []string{
		"diagonals=3", "top8-diag-nnz=100.0%", "runs=3",
		"distinct-values=2", "palette-eligible=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpMVMode(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-spmv", "-machine", "7950X3D", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spmv", "-machine", "vax", path}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"/definitely/missing.mtx"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.mtx")
	if err := os.WriteFile(bad, []byte("not a matrix"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil || !strings.Contains(err.Error(), "Matrix Market") {
		t.Fatalf("malformed file: %v", err)
	}
}

// The -reorder report must print every strategy's score breakdown, the
// RCM bandwidth delta and the autotuner pick.
func TestReorderReport(t *testing.T) {
	// A shuffled band: RCM should recover a much smaller bandwidth than
	// the natural (shuffled) order.
	n := 200
	coo := &sparse.COO{Rows: n, Cols: n}
	shuf := make([]int, n)
	for i := range shuf {
		shuf[i] = (i*137 + 41) % n
	}
	for i := 0; i < n; i++ {
		r := shuf[i]
		for d := -1; d <= 1; d++ {
			if c := i + d; c >= 0 && c < n {
				coo.Add(r, c, 1+float64(d))
			}
		}
	}
	path := filepath.Join(t.TempDir(), "band.mtx")
	if err := mmio.WriteFile(path, coo.ToCSR()); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-reorder", path})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# reorder strategies", "strategy", "index-bytes", "gather-bytes",
		"length", "identity", "rcm", "cluster",
		"rcm-bandwidth:", "x-gather bytes:", "autotuner pick:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reorder report missing %q:\n%s", want, out)
		}
	}
}
