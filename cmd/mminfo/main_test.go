package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haspmv/internal/mmio"
	"haspmv/internal/sparse"
)

func writeTestMatrix(t *testing.T) string {
	t.Helper()
	a := sparse.FromDense([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	}, 0)
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := mmio.WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfoAndConvert(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.mtx")
	if err := run([]string{"-convert", out, path}); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 7 {
		t.Fatalf("converted nnz %d", a.NNZ())
	}
}

func TestSpMVMode(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-spmv", "-machine", "7950X3D", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spmv", "-machine", "vax", path}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"/definitely/missing.mtx"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.mtx")
	if err := os.WriteFile(bad, []byte("not a matrix"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil || !strings.Contains(err.Error(), "Matrix Market") {
		t.Fatalf("malformed file: %v", err)
	}
}
