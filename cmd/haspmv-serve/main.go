// Command haspmv-serve runs the HASpMV serving daemon: an HTTP/JSON
// SpMV service with per-matrix dynamic request coalescing.
//
//	haspmv-serve -addr :8080 -machine i9-12900KF -preload rma10@16
//
// Endpoints:
//
//	POST /v1/multiply             {"matrix":"rma10","scale":16,"x":[...]} -> {"y":[...]}
//	GET  /v1/matrices             known roster + resident prepared matrices
//	GET  /v1/debug/flightrecorder last -recorder traces + adapter events (add ?anomaly=last)
//	GET  /healthz                 200 serving / 503 draining
//	GET  /metrics                 Prometheus text (with -telemetry, default on)
//	GET  /debug/pprof/            Go profiler
//
// Concurrent requests against the same matrix are coalesced into one
// fused ComputeBatch pass over the matrix (flush at -max-batch requests
// or after the -linger window); responses are bit-identical to a solo
// multiply. Overload is shed with 429 + Retry-After, and SIGINT/SIGTERM
// trigger a graceful drain bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/server"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "haspmv-serve:", err)
		os.Exit(1)
	}
}

// run is the whole daemon; tests drive it in-process. ready (optional)
// receives the bound address once the listener is live, and closing
// shutdown (optional) triggers the same graceful drain as SIGTERM.
func run(args []string, ready func(addr string), shutdown <-chan struct{}) error {
	fs := flag.NewFlagSet("haspmv-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (\":0\" picks a port)")
	machineName := fs.String("machine", "i9-12900KF", "AMP model to partition for (i9-12900KF, i9-13900KF, 7950X3D, 7950X)")
	maxBatch := fs.Int("max-batch", 0, "coalescing flush size (default 8, the register-block width)")
	linger := fs.Duration("linger", 200*time.Microsecond, "how long an under-full batch waits for company; 0 disables coalescing")
	queueCap := fs.Int("queue", 256, "per-matrix queue bound; beyond it requests are shed with 429")
	cache := fs.Int("cache", 8, "prepared matrices kept resident (LRU beyond this)")
	defaultScale := fs.Int("scale", 16, "default scale divisor for requests that omit one")
	timeout := fs.Duration("timeout", 2*time.Second, "default per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	preload := fs.String("preload", "", "comma-separated name[@scale] matrices to prepare before listening")
	telemetryOn := fs.Bool("telemetry", true, "collect and serve /metrics alongside the API")
	adapt := fs.Bool("adapt", false, "online adaptive repartitioning: rebalance each matrix's partition from measured per-core spans")
	adaptEvery := fs.Int("adapt-every", 0, "flushed batches between rebalance decisions (default 4)")
	traceRing := fs.Int("recorder", 256, "flight recorder capacity: per-request traces retained for /v1/debug/flightrecorder; 0 disables tracing")
	recorderDir := fs.String("recorder-dir", "", "directory where anomaly snapshots are written as flightrecorder-*.json (empty: in-process only)")
	slo := fs.Duration("slo", 0, "per-request latency objective; >1% of a request window finishing over it snapshots the flight recorder (0 disables)")
	accessLog := fs.Bool("access-log", false, "log one structured line per request (with stage-attributed latency) to stderr")
	storeDir := fs.String("store-dir", "", "prepared-matrix store directory: built matrices spill here (atomic, checksummed) and cold starts mmap them back instead of re-preparing")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	m, ok := amp.ByName(*machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q (have i9-12900KF, i9-13900KF, 7950X3D, 7950X)", *machineName)
	}

	if *telemetryOn {
		prev := telemetry.Activate(telemetry.NewCollector())
		defer telemetry.Activate(prev)
	}

	lingerOpt := *linger
	if lingerOpt == 0 {
		lingerOpt = server.ExplicitZeroLinger
	}
	var adaptOpts *core.AdapterOptions
	if *adapt {
		adaptOpts = &core.AdapterOptions{Every: *adaptEvery}
	}
	var rec *tracing.Recorder
	if *traceRing > 0 {
		rec = tracing.NewRecorder(tracing.RecorderOptions{Traces: *traceRing, Dir: *recorderDir})
	}
	var accessw io.Writer
	if *accessLog {
		accessw = os.Stderr
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			return fmt.Errorf("-store-dir: %w", err)
		}
	}
	srv := server.New(server.Config{
		Machine:        m,
		Algorithm:      core.New(core.Options{}),
		DefaultScale:   *defaultScale,
		DefaultTimeout: *timeout,
		Recorder:       rec,
		SLO:            *slo,
		AccessLog:      accessw,
		Registry: server.RegistryOptions{
			MaxEntries: *cache,
			Batcher: server.BatcherOptions{
				MaxBatch: *maxBatch,
				Linger:   lingerOpt,
				QueueCap: *queueCap,
			},
			Adapt:    adaptOpts,
			StoreDir: *storeDir,
		},
	})

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, scale := spec, *defaultScale
		if at := strings.LastIndex(spec, "@"); at >= 0 {
			name = spec[:at]
			s, err := strconv.Atoi(spec[at+1:])
			if err != nil || s < 1 {
				return fmt.Errorf("-preload %q: scale must be a positive integer", spec)
			}
			scale = s
		}
		t0 := time.Now()
		if err := srv.Preload(context.Background(), name, scale); err != nil {
			return fmt.Errorf("-preload %s@%d: %w", name, scale, err)
		}
		fmt.Fprintf(os.Stderr, "haspmv-serve: preloaded %s@%d in %s\n", name, scale, time.Since(t0).Round(time.Millisecond))
	}

	// The API mux nests inside an outer mux so /metrics and /debug stay
	// reachable during a drain (load balancers watch /healthz, operators
	// watch /metrics).
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *telemetryOn {
		telemetry.RegisterHandlers(mux)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "haspmv-serve: serving on http://%s (machine model %s)\n", ln.Addr(), m.Name)
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	case <-shutdown:
	}
	stop()
	fmt.Fprintln(os.Stderr, "haspmv-serve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "haspmv-serve: drained cleanly")
	return nil
}
