package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/gen"
)

// startServe runs the daemon in-process on an ephemeral port and returns
// its base URL plus a shutdown trigger.
func startServe(t *testing.T, args ...string) (url string, shutdown chan struct{}, done chan error) {
	t.Helper()
	addrCh := make(chan string, 1)
	shutdown = make(chan struct{})
	done = make(chan error, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...),
			func(addr string) { addrCh <- addr }, shutdown)
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, shutdown, done
	case err := <-done:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil, nil
}

func TestServeDaemonEndToEnd(t *testing.T) {
	url, shutdown, done := startServe(t, "-preload", "dawson5@64", "-scale", "64")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	// The preloaded matrix shows up in the listing before any multiply.
	resp, err = http.Get(url + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Resident []struct {
			Key string `json:"key"`
		} `json:"resident"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Resident) != 1 || list.Resident[0].Key != "dawson5@64" {
		t.Fatalf("resident = %+v, want preloaded dawson5@64", list.Resident)
	}

	// A multiply over the wire matches a local serial Multiply bitwise.
	a := gen.Representative("dawson5", 64)
	prep, err := core.New(core.Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%13) / 12
	}
	want := make([]float64, a.Rows)
	prep.Compute(want, x)

	body, _ := json.Marshal(map[string]any{"matrix": "dawson5", "x": x})
	resp, err = http.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		Y       []float64 `json:"y"`
		BatchNV int       `json:"batch_nv"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Y) != a.Rows || mr.BatchNV < 1 {
		t.Fatalf("response: %d values, batch_nv %d", len(mr.Y), mr.BatchNV)
	}
	for i := range mr.Y {
		if mr.Y[i] != want[i] {
			t.Fatalf("y[%d] = %x, serial Multiply gives %x", i, mr.Y[i], want[i])
		}
	}

	// Telemetry rides on the same port.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "haspmv_serve_requests_total") {
		t.Fatalf("/metrics: status %d, body missing serve counters:\n%.400s", resp.StatusCode, buf.String())
	}

	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain on shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after shutdown signal")
	}
}

func TestServeDaemonFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown machine", []string{"-machine", "z80"}, "unknown machine"},
		{"bad preload scale", []string{"-preload", "rma10@zero"}, "scale must be"},
		{"unknown preload matrix", []string{"-preload", "no-such@16"}, "unknown matrix"},
	}
	for _, tc := range cases {
		err := run(append([]string{"-addr", "127.0.0.1:0"}, tc.args...), nil, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := run([]string{"-h"}, nil, nil); err != nil {
		t.Errorf("-h should return nil after printing usage, got %v", err)
	}
}

// A -store-dir daemon restart cold-starts its preload from the store:
// the second boot serves the same bits without re-running Prepare.
func TestServeStoreDirColdStart(t *testing.T) {
	dir := t.TempDir()

	multiply := func(url string, x []float64) []float64 {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"matrix": "dawson5", "x": x})
		resp, err := http.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("multiply: status %d", resp.StatusCode)
		}
		var mr struct {
			Y []float64 `json:"y"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		return mr.Y
	}

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)
	}

	args := []string{"-preload", "dawson5@64", "-scale", "64", "-store-dir", dir, "-telemetry=false"}
	url1, shutdown1, done1 := startServe(t, args...)
	y1 := multiply(url1, x)
	close(shutdown1)
	if err := <-done1; err != nil {
		t.Fatalf("first daemon drain: %v", err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("store dir empty after drain: %v %v", ents, err)
	}

	url2, shutdown2, done2 := startServe(t, args...)
	y2 := multiply(url2, x)
	close(shutdown2)
	if err := <-done2; err != nil {
		t.Fatalf("second daemon drain: %v", err)
	}

	if len(y1) != len(y2) {
		t.Fatalf("response lengths differ: %d vs %d", len(y1), len(y2))
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("y[%d] differs across store cold start: %x vs %x", i, y1[i], y2[i])
		}
	}
}
