package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"haspmv/internal/gen"
)

func TestParseShards(t *testing.T) {
	got, err := parseShards("webbase-1M@16=3, dawson5=2", 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"webbase-1M@16": 3, "dawson5@64": 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for _, bad := range []string{"x", "x=1", "x=zero"} {
		if _, err := parseShards(bad, 16); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	if m, err := parseShards("", 16); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
}

// buildServe compiles the worker binary the fleet will spawn.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "haspmv-serve")
	cmd := exec.Command("go", "build", "-o", bin, "haspmv/cmd/haspmv-serve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building haspmv-serve: %v\n%s", err, out)
	}
	return bin
}

// TestFleetEndToEnd is the in-repo version of the CI fleet-chaos
// harness: boot a 2-worker fleet, drive traffic, SIGKILL one worker
// mid-stream, and require zero failed requests plus a recorded restart,
// then a clean drain.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real worker processes")
	}
	bin := buildServe(t)

	addrCh := make(chan string, 1)
	shutdown := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-worker-bin", bin,
			"-scale", "48",
			"-preload", "dawson5@48",
			"-backoff", "50ms",
			"-health-every", "50ms",
		}, func(addr string) { addrCh <- addr }, shutdown)
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("fleet exited before binding: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("fleet never became ready")
	}

	waitHealthy := func(budget time.Duration) {
		t.Helper()
		deadline := time.Now().Add(budget)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatal("fleet never reported healthy")
	}
	waitHealthy(60 * time.Second)

	fleetStatus := func() (workers []struct {
		Index    int    `json:"index"`
		Pid      int    `json:"pid"`
		State    string `json:"state"`
		Restarts int64  `json:"restarts"`
	}) {
		t.Helper()
		resp, err := http.Get(base + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Workers []struct {
				Index    int    `json:"index"`
				Pid      int    `json:"pid"`
				State    string `json:"state"`
				Restarts int64  `json:"restarts"`
			} `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Workers
	}
	// Wait for both workers before starting the chaos clock.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ws := fleetStatus()
		up := 0
		for _, w := range ws {
			if w.State == "up" {
				up++
			}
		}
		if up == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 2 up workers: %+v", ws)
		}
		time.Sleep(100 * time.Millisecond)
	}

	a := gen.Representative("dawson5", 48)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%9)*0.5
	}
	body, err := json.Marshal(map[string]any{"matrix": "dawson5", "scale": 48, "x": x})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 4, 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	killed := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(base+"/v1/multiply", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("client %d request %d: %v", c, i, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d request %d: status %d", c, i, resp.StatusCode)
					return
				}
				if c == 0 && i == perClient/2 {
					// Mid-traffic chaos: SIGKILL one worker.
					for _, w := range fleetStatus() {
						if w.State == "up" {
							syscall.Kill(w.Pid, syscall.SIGKILL)
							break
						}
					}
					close(killed)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("failed request: %v", err)
	}
	<-killed

	// The supervisor must record the restart and bring the worker back.
	deadline = time.Now().Add(60 * time.Second)
	for {
		ws := fleetStatus()
		restarts, up := int64(0), 0
		for _, w := range ws {
			restarts += w.Restarts
			if w.State == "up" {
				up++
			}
		}
		if restarts >= 1 && up == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed worker never restarted: %+v", ws)
		}
		time.Sleep(100 * time.Millisecond)
	}

	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fleet drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("fleet never drained")
	}
}
