// Command haspmv-fleet runs a sharded multi-matrix serving fleet: a
// supervising parent that spawns N haspmv-serve workers, restarts the
// ones that crash (exponential backoff, reset after sustained health),
// health-checks them, and fronts them with a consistent-hashing router.
//
//	haspmv-fleet -addr :8090 -workers 3 -worker-bin ./haspmv-serve \
//	    -machine i9-12900KF -preload rma10@16 -shard webbase-1M@16=3
//
// Endpoints (served by the router):
//
//	POST /v1/multiply  routed to the matrix's worker; sharded matrices
//	                   are scatter-gathered across the fleet
//	GET  /v1/fleet     worker states, pids, restart counts
//	GET  /healthz      200 while >= 1 worker serves, else 503
//	GET  /metrics      Prometheus text (router + supervisor counters)
//
// SIGINT/SIGTERM drain every worker (each finishes in-flight requests)
// and exit 0 once all have stopped cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"haspmv/internal/fleet"
	"haspmv/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "haspmv-fleet:", err)
		os.Exit(1)
	}
}

// run is the whole daemon; tests drive it in-process. ready (optional)
// receives the router's bound address; closing shutdown (optional)
// triggers the same drain as SIGTERM.
func run(args []string, ready func(addr string), shutdown <-chan struct{}) error {
	fs := flag.NewFlagSet("haspmv-fleet", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "router listen address (\":0\" picks a port)")
	workers := fs.Int("workers", 3, "worker processes to supervise")
	workerBin := fs.String("worker-bin", "haspmv-serve", "haspmv-serve binary to spawn")
	machine := fs.String("machine", "i9-12900KF", "AMP model passed to every worker")
	scale := fs.Int("scale", 16, "default scale passed to every worker")
	preload := fs.String("preload", "", "comma-separated name[@scale] matrices each worker prepares before serving")
	shardSpec := fs.String("shard", "", "comma-separated name@scale=count specs: those matrices are row-sharded across the fleet")
	workerArgs := fs.String("worker-args", "", "extra space-separated flags appended to every worker command line")
	backoffBase := fs.Duration("backoff", 100*time.Millisecond, "first restart delay after a worker crash (doubles per crash)")
	backoffCap := fs.Duration("backoff-cap", 5*time.Second, "restart delay ceiling")
	healthEvery := fs.Duration("health-every", 250*time.Millisecond, "worker /healthz polling period")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget for the whole fleet")
	attempts := fs.Int("attempts", 3, "distinct workers tried per request before failing")
	telemetryOn := fs.Bool("telemetry", true, "collect and serve /metrics alongside the API")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	shards, err := parseShards(*shardSpec, *scale)
	if err != nil {
		return err
	}

	if *telemetryOn {
		prev := telemetry.Activate(telemetry.NewCollector())
		defer telemetry.Activate(prev)
	}

	wargs := []string{"-machine", *machine, "-scale", strconv.Itoa(*scale)}
	if *preload != "" {
		wargs = append(wargs, "-preload", *preload)
	}
	if *workerArgs != "" {
		wargs = append(wargs, strings.Fields(*workerArgs)...)
	}
	sup, err := fleet.NewSupervisor(fleet.SupervisorOptions{
		Workers: *workers,
		Launcher: &fleet.ExecLauncher{
			Bin:  *workerBin,
			Args: wargs,
		},
		BackoffBase: *backoffBase,
		BackoffCap:  *backoffCap,
		HealthEvery: *healthEvery,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	sup.Start()

	router, err := fleet.NewRouter(fleet.RouterOptions{
		Backends:     sup.Endpoints,
		Status:       sup.Snapshot,
		Shards:       shards,
		DefaultScale: *scale,
		Attempts:     *attempts,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/", router)
	if *telemetryOn {
		telemetry.RegisterHandlers(mux)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "haspmv-fleet: routing on http://%s (%d workers, %s)\n", ln.Addr(), *workers, *workerBin)
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		sup.Drain(dctx)
		return err
	case <-ctx.Done():
	case <-shutdown:
	}
	stop()
	fmt.Fprintln(os.Stderr, "haspmv-fleet: draining fleet")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := sup.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "haspmv-fleet: drained cleanly")
	return nil
}

// parseShards turns "name@scale=count,..." into the router's shard map.
// A spec without @scale uses the fleet default.
func parseShards(spec string, defaultScale int) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.LastIndex(part, "=")
		if eq < 0 {
			return nil, fmt.Errorf("-shard %q: want name[@scale]=count", part)
		}
		count, err := strconv.Atoi(part[eq+1:])
		if err != nil || count < 2 {
			return nil, fmt.Errorf("-shard %q: count must be an integer >= 2", part)
		}
		key := part[:eq]
		if !strings.Contains(key, "@") {
			key = fmt.Sprintf("%s@%d", key, defaultScale)
		}
		out[key] = count
	}
	return out, nil
}
