package exec

import (
	"strings"
	"sync/atomic"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/sparse"
)

func TestParallelRunsAll(t *testing.T) {
	var hits [37]int32
	Parallel(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	Parallel(0, func(int) { t.Fatal("zero-width parallel ran") })
	ran := false
	Parallel(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single-width parallel skipped")
	}
}

func testMatrix() *sparse.CSR {
	return sparse.FromDense([][]float64{
		{1, 0, 2},
		{0, 3, 0},
		{4, 5, 6},
	}, 0)
}

func TestCheckAssignments(t *testing.T) {
	a := testMatrix() // nnz = 6
	ok := []costmodel.Assignment{
		{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: 3}}},
		{Core: 1, Spans: []costmodel.Span{{Lo: 3, Hi: 4}, {Lo: 4, Hi: 6}}},
	}
	if err := CheckAssignments(a, ok); err != nil {
		t.Fatalf("valid cover rejected: %v", err)
	}
	gap := []costmodel.Assignment{{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: 3}, {Lo: 4, Hi: 6}}}}
	if err := CheckAssignments(a, gap); err == nil {
		t.Fatal("gap accepted")
	}
	overlap := []costmodel.Assignment{
		{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: 4}}},
		{Core: 1, Spans: []costmodel.Span{{Lo: 3, Hi: 6}}},
	}
	if err := CheckAssignments(a, overlap); err == nil {
		t.Fatal("overlap accepted")
	}
	oob := []costmodel.Assignment{{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: 7}}}}
	if err := CheckAssignments(a, oob); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
	inverted := []costmodel.Assignment{{Core: 0, Spans: []costmodel.Span{{Lo: 4, Hi: 2}}}}
	if err := CheckAssignments(a, inverted); err == nil {
		t.Fatal("inverted span accepted")
	}
}

func TestCoverageErrorMessages(t *testing.T) {
	e := &CoverageError{Index: 5, Count: 2}
	if e.Error() == "" {
		t.Fatal("empty message")
	}
	e = &CoverageError{Span: costmodel.Span{Lo: 1, Hi: 99}, NNZ: 6}
	if e.Error() == "" {
		t.Fatal("empty span message")
	}
}

type fakePrep struct{ asgs []costmodel.Assignment }

func (f *fakePrep) Compute(y, x []float64)              {}
func (f *fakePrep) Assignments() []costmodel.Assignment { return f.asgs }

type fakeAlg struct{ prep Prepared }

func (f *fakeAlg) Name() string { return "fake" }
func (f *fakeAlg) Prepare(m *amp.Machine, a *sparse.CSR) (Prepared, error) {
	return f.prep, nil
}

func TestSimulateAndTimePrepare(t *testing.T) {
	a := testMatrix()
	m := amp.IntelI912900KF()
	prep := &fakePrep{asgs: []costmodel.Assignment{{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: a.NNZ()}}}}}
	res := Simulate(m, costmodel.DefaultParams(), a, prep)
	if res.Seconds <= 0 {
		t.Fatal("simulate returned nothing")
	}
	got, d, err := TimePrepare(&fakeAlg{prep: prep}, m, a)
	if err != nil || got != Prepared(prep) {
		t.Fatalf("TimePrepare: %v %v", got, err)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
}

func TestParallelLargeFanoutAndNesting(t *testing.T) {
	// Fan out far beyond the worker count: the queue-full inline fallback
	// must keep every index running exactly once.
	var hits [4096]int32
	Parallel(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	// Nested Parallel must not deadlock (sends never block; full queues
	// degrade to inline execution).
	var inner [8][8]int32
	Parallel(8, func(i int) {
		Parallel(8, func(j int) { atomic.AddInt32(&inner[i][j], 1) })
	})
	for i := range inner {
		for j := range inner[i] {
			if inner[i][j] != 1 {
				t.Fatalf("nested (%d,%d) ran %d times", i, j, inner[i][j])
			}
		}
	}
}

func TestRangeChunks(t *testing.T) {
	cases := []struct{ n, parts, grain, want int }{
		{0, 8, 1, 0},
		{-3, 8, 1, 0},
		{1, 8, 1, 1},
		{100, 8, 1, 8},
		{100, 8, 50, 2},
		{100, 8, 100, 1},
		{100, 8, 1000, 1},
		{100, 0, 1, 1}, // parts floored at 1
		{100, 8, 0, 8}, // grain floored at 1
		{7, 16, 1, 7},  // never more chunks than elements
	}
	for _, c := range cases {
		if got := RangeChunks(c.n, c.parts, c.grain); got != c.want {
			t.Fatalf("RangeChunks(%d,%d,%d) = %d, want %d", c.n, c.parts, c.grain, got, c.want)
		}
	}
}

func TestParallelRangesTilesAndRepeats(t *testing.T) {
	const n = 1000
	hits := make([]int32, n)
	var bounds [][2]int
	boundsCh := make(chan [2]int, 64)
	c := ParallelRanges(n, 7, 10, func(ch, lo, hi int) {
		boundsCh <- [2]int{lo, hi}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if c != 7 {
		t.Fatalf("chunk count %d, want 7", c)
	}
	for len(boundsCh) > 0 {
		bounds = append(bounds, <-boundsCh)
	}
	if len(bounds) != c {
		t.Fatalf("f ran %d times, want %d", len(bounds), c)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("element %d covered %d times", i, h)
		}
	}
	// Chunk boundaries are a pure function of the arguments: a second call
	// must see the identical tiling (multi-pass algorithms rely on this).
	again := make(chan [2]int, 64)
	ParallelRanges(n, 7, 10, func(ch, lo, hi int) { again <- [2]int{lo, hi} })
	seen := map[[2]int]bool{}
	for _, b := range bounds {
		seen[b] = true
	}
	for len(again) > 0 {
		if b := <-again; !seen[b] {
			t.Fatalf("second pass produced chunk %v absent from the first", b)
		}
	}
	// Empty range: f never runs.
	if c := ParallelRanges(0, 7, 10, func(ch, lo, hi int) { t.Fatal("ran on empty range") }); c != 0 {
		t.Fatalf("empty range returned %d chunks", c)
	}
}

// recordPrep counts Compute calls so the fallback path is observable.
type recordPrep struct {
	fakePrep
	computes int32
}

func (r *recordPrep) Compute(y, x []float64) { atomic.AddInt32(&r.computes, 1) }

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want message containing %q)", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, want message containing %q", r, substr)
		}
	}()
	f()
}

func TestComputeBatchFallbackValidation(t *testing.T) {
	p := &recordPrep{}

	// Outer mismatch.
	mustPanic(t, "batch size mismatch", func() {
		ComputeBatch(p, make([][]float64, 2), make([][]float64, 3))
	})

	// Inner right-hand-side mismatch on the non-BatchPrepared fallback.
	X := [][]float64{make([]float64, 3), make([]float64, 2)}
	Y := [][]float64{make([]float64, 3), make([]float64, 3)}
	mustPanic(t, "x[1]", func() { ComputeBatch(p, Y, X) })

	// Inner output mismatch.
	X[1] = make([]float64, 3)
	Y[1] = make([]float64, 4)
	mustPanic(t, "y[1]", func() { ComputeBatch(p, Y, X) })

	// Well-formed batch runs one Compute per vector.
	Y[1] = make([]float64, 3)
	ComputeBatch(p, Y, X)
	if got := atomic.LoadInt32(&p.computes); got != 2 {
		t.Fatalf("fallback ran %d Computes, want 2", got)
	}
}
