package exec

import (
	"time"

	"haspmv/internal/telemetry/tracing"
)

// TracedPrepared is the optional per-request observability interface:
// algorithms that can split a multiply into its kernel and merge phases
// (and link the per-core spans and format picks) implement it in
// addition to Prepared. The breakdown is caller-owned and reused, so a
// traced multiply must not allocate beyond its untraced twin.
type TracedPrepared interface {
	Prepared
	// ComputeTraced performs y = A*x and fills bd. bd must be non-nil.
	ComputeTraced(y, x []float64, bd *tracing.ComputeBreakdown)
}

// TracedBatchPrepared is TracedPrepared's fused multi-vector analogue.
type TracedBatchPrepared interface {
	BatchPrepared
	// ComputeBatchTraced performs Y[v] = A * X[v] and fills bd.
	ComputeBatchTraced(Y, X [][]float64, bd *tracing.ComputeBreakdown)
}

// ComputeTraced multiplies with a stage breakdown, degrading gracefully:
// algorithms without a traced path are timed whole, with the entire call
// attributed to the kernel phase (merge attribution needs the
// algorithm's cooperation). A nil bd falls back to plain Compute.
func ComputeTraced(p Prepared, y, x []float64, bd *tracing.ComputeBreakdown) {
	if bd == nil {
		p.Compute(y, x)
		return
	}
	if tp, ok := p.(TracedPrepared); ok {
		tp.ComputeTraced(y, x, bd)
		return
	}
	t0 := time.Now()
	p.Compute(y, x)
	bd.KernelNs = int64(time.Since(t0))
}

// ComputeBatchTraced is ComputeBatch with a stage breakdown, with the
// same validation and fused-path/fallback selection. A nil bd falls back
// to plain ComputeBatch; an untraced algorithm is timed whole.
func ComputeBatchTraced(p Prepared, Y, X [][]float64, bd *tracing.ComputeBreakdown) {
	if bd == nil {
		ComputeBatch(p, Y, X)
		return
	}
	validateBatch(Y, X)
	cBatchCalls.Add(1)
	if tp, ok := p.(TracedBatchPrepared); ok {
		tp.ComputeBatchTraced(Y, X, bd)
		return
	}
	t0 := time.Now()
	if bp, ok := p.(BatchPrepared); ok {
		bp.ComputeBatch(Y, X)
	} else {
		cBatchFallback.Add(1)
		for v := range X {
			p.Compute(Y[v], X[v])
		}
	}
	bd.KernelNs = int64(time.Since(t0))
}
