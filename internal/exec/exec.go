// Package exec defines the common contract of every SpMV implementation in
// the repository (HASpMV and the four baselines) and provides the two ways
// to run one:
//
//   - Compute: real data-parallel execution with one goroutine per
//     simulated core. Go cannot pin goroutines to specific P- or E-cores
//     (the paper pins with GOMP_CPU_AFFINITY), so wall-clock numbers do
//     not reflect AMP asymmetry; correctness and algorithmic overheads do.
//   - Simulate: deterministic timing of the same per-core work assignment
//     on an amp.Machine through the costmodel. This is what reproduces the
//     paper's figures.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
)

// Executor-level telemetry. Counter updates self-gate on the telemetry
// enabled flag, so the disabled cost is one atomic load per counter.
var (
	cParallelCalls  = telemetry.NewCounter("exec_parallel_calls")
	cParallelTasks  = telemetry.NewCounter("exec_parallel_tasks")
	cParallelInline = telemetry.NewCounter("exec_parallel_inline")
	cBatchCalls     = telemetry.NewCounter("exec_batch_calls")
	cBatchFallback  = telemetry.NewCounter("exec_batch_fallback")
	gParallelWidth  = telemetry.NewGauge("exec_parallel_width")
)

// Algorithm is an SpMV method that analyzes a matrix once and then
// multiplies repeatedly (the inspector-executor pattern all five methods
// share).
type Algorithm interface {
	// Name identifies the method in reports ("HASpMV", "CSR5", ...).
	Name() string
	// Prepare analyzes the matrix for the machine and core selection.
	// The returned Prepared may alias the matrix; callers must not mutate
	// it afterwards.
	Prepare(m *amp.Machine, a *sparse.CSR) (Prepared, error)
}

// Prepared is an analyzed matrix ready for multiplication.
type Prepared interface {
	// Compute performs y = A*x. len(x) = Cols, len(y) = Rows.
	Compute(y, x []float64)
	// Assignments exposes the per-core work mapping (nnz spans in the
	// original matrix's coordinate space) for the performance model.
	Assignments() []costmodel.Assignment
}

// BatchPrepared is the optional fused multi-vector interface: algorithms
// that can amortize their index traffic across several right-hand sides
// (block Krylov methods, multi-source PageRank) implement it in addition
// to Prepared.
type BatchPrepared interface {
	Prepared
	// ComputeBatch performs Y[v] = A * X[v] for every vector v.
	ComputeBatch(Y, X [][]float64)
}

// ComputeBatch multiplies a batch of vectors, using the fused path when
// the algorithm provides one and falling back to repeated Compute
// otherwise. Y and X must have equal outer lengths, and every inner
// vector must match the shape of the first (algorithms additionally
// validate inner lengths against the matrix dimensions).
func ComputeBatch(p Prepared, Y, X [][]float64) {
	validateBatch(Y, X)
	cBatchCalls.Add(1)
	if bp, ok := p.(BatchPrepared); ok {
		bp.ComputeBatch(Y, X)
		return
	}
	cBatchFallback.Add(1)
	for v := range X {
		p.Compute(Y[v], X[v])
	}
}

// validateBatch checks the outer shape of a batch call: equal vector
// counts and rectangular X and Y (algorithms additionally validate inner
// lengths against the matrix dimensions).
func validateBatch(Y, X [][]float64) {
	if len(Y) != len(X) {
		panic(fmt.Sprintf("exec: batch size mismatch: %d output vectors for %d right-hand sides", len(Y), len(X)))
	}
	for v := 1; v < len(X); v++ {
		if len(X[v]) != len(X[0]) {
			panic(fmt.Sprintf("exec: batch x[%d] has length %d, want %d (all right-hand sides must have equal length)", v, len(X[v]), len(X[0])))
		}
		if len(Y[v]) != len(Y[0]) {
			panic(fmt.Sprintf("exec: batch y[%d] has length %d, want %d (all output vectors must have equal length)", v, len(Y[v]), len(Y[0])))
		}
	}
}

// group is one Parallel invocation's completion state. It is pooled and
// reused so the steady-state hot path allocates nothing.
type group struct {
	f       func(int)
	pending atomic.Int64
	// done receives exactly one token when pending reaches zero; buffered
	// so the finishing goroutine never blocks.
	done chan struct{}
}

// run executes one index and signals the barrier when it was the last.
func (g *group) run(i int) {
	g.f(i)
	if g.pending.Add(-1) == 0 {
		g.done <- struct{}{}
	}
}

// task is one unit of a Parallel fan-out, handed to a pool worker.
type task struct {
	g *group
	i int
}

var (
	workersOnce sync.Once
	workq       chan task
	groupPool   = sync.Pool{New: func() any {
		return &group{done: make(chan struct{}, 1)}
	}}
)

// startWorkers spins up the persistent worker pool on first use. Workers
// live for the life of the process; pooling (rather than a goroutine per
// core per call) keeps the steady-state Compute path allocation-free,
// which the repository-root telemetry overhead guard asserts.
func startWorkers() {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	workq = make(chan task, 1024)
	for k := 0; k < w; k++ {
		go func() {
			for t := range workq {
				t.g.run(t.i)
			}
		}()
	}
}

// Workers returns the useful data-parallel width for preprocessing
// sweeps: the number of OS threads Go will actually run concurrently.
// Unlike the pool size (which is floored at 2 for deadlock-freedom), this
// is 1 on a single-CPU host, letting chunked sweeps collapse to their
// serial fast path instead of paying handoff costs for no parallelism.
func Workers() int { return runtime.GOMAXPROCS(0) }

// RangeChunks returns how many contiguous chunks ParallelRanges splits n
// elements into: at most parts, at least one, and never so many that a
// chunk holds fewer than minPerChunk elements (the grain below which
// goroutine handoff costs more than the sweep itself).
func RangeChunks(n, parts, minPerChunk int) int {
	if n <= 0 {
		return 0
	}
	if parts < 1 {
		parts = 1
	}
	if minPerChunk < 1 {
		minPerChunk = 1
	}
	c := parts
	if max := n / minPerChunk; c > max {
		c = max
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ParallelRanges splits [0, n) into RangeChunks(n, parts, minPerChunk)
// near-equal contiguous chunks and runs f(chunk, lo, hi) for each through
// Parallel. The chunk boundaries are a pure function of (n, parts,
// minPerChunk), so multi-pass algorithms (counting sorts, prefix sums)
// that call it twice with the same arguments see identical chunking. It
// returns the chunk count; a single chunk runs inline on the caller.
func ParallelRanges(n, parts, minPerChunk int, f func(chunk, lo, hi int)) int {
	c := RangeChunks(n, parts, minPerChunk)
	if c == 0 {
		return 0
	}
	Parallel(c, func(i int) {
		f(i, i*n/c, (i+1)*n/c)
	})
	return c
}

// Parallel runs f(0..n-1) concurrently and waits for all. It stands in for
// the paper's pinned OpenMP parallel-for: each index is one simulated
// core. Work is dispatched to a persistent worker pool; the caller runs
// index 0 itself and then *helps* — while its own barrier is open it
// drains the shared queue rather than blocking, so nested Parallel calls
// (or more groups than workers) make progress instead of deadlocking.
func Parallel(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	cParallelCalls.Add(1)
	cParallelTasks.Add(int64(n))
	gParallelWidth.Set(int64(n))
	if n == 1 {
		f(0)
		return
	}
	workersOnce.Do(startWorkers)
	g := groupPool.Get().(*group)
	g.f = f
	g.pending.Store(int64(n))
	for i := 1; i < n; i++ {
		select {
		case workq <- task{g: g, i: i}:
		default:
			// Queue full: run inline rather than block the dispatch.
			cParallelInline.Add(1)
			g.run(i)
		}
	}
	g.run(0)
	// Help-first barrier: steal queued work (ours or other groups') until
	// our last index signals done. Some runnable goroutine can always
	// receive from workq, so the scheme is deadlock-free by construction.
	for {
		select {
		case <-g.done:
			g.f = nil
			groupPool.Put(g)
			return
		case t := <-workq:
			t.g.run(t.i)
		}
	}
}

// Simulate prices the prepared SpMV on the machine model.
func Simulate(m *amp.Machine, p costmodel.Params, a *sparse.CSR, prep Prepared) costmodel.Result {
	return costmodel.EstimateSpMV(m, p, a, prep.Assignments())
}

// SimulateSpans prices the prepared SpMV and returns each core slot's
// modeled busy time in nanoseconds, in assignment (region) order — the
// shape an online adapter ingests. It is the deterministic substitute
// for measured per-core spans: the simulator plays the role of the
// asymmetric hardware, so feedback loops can be tested and benchmarked
// reproducibly. ns is reused when it has the right length.
func SimulateSpans(m *amp.Machine, p costmodel.Params, a *sparse.CSR, prep Prepared, ns []int64) []int64 {
	r := costmodel.EstimateSpMV(m, p, a, prep.Assignments())
	if len(ns) != len(r.PerCore) {
		ns = make([]int64, len(r.PerCore))
	}
	for i, c := range r.PerCore {
		ns[i] = int64(c.Seconds * 1e9)
	}
	return ns
}

// TimePrepare measures the wall-clock preprocessing cost of an algorithm
// (Figure 10). It returns the prepared handle so the measurement includes
// exactly one analysis.
func TimePrepare(alg Algorithm, m *amp.Machine, a *sparse.CSR) (Prepared, time.Duration, error) {
	start := time.Now()
	prep, err := alg.Prepare(m, a)
	return prep, time.Since(start), err
}

// CheckAssignments validates that an assignment list covers every nonzero
// of the matrix exactly once — the fundamental partitioning invariant all
// five methods must satisfy. It is used by tests and by the harness's
// self-check mode.
func CheckAssignments(a *sparse.CSR, asgs []costmodel.Assignment) error {
	return checkCover(a.NNZ(), asgs)
}

func checkCover(nnz int, asgs []costmodel.Assignment) error {
	covered := make([]int32, nnz)
	for _, asg := range asgs {
		for _, sp := range asg.Spans {
			if sp.Lo < 0 || sp.Hi > nnz || sp.Lo > sp.Hi {
				return &CoverageError{Span: sp, NNZ: nnz}
			}
			for k := sp.Lo; k < sp.Hi; k++ {
				covered[k]++
			}
		}
	}
	for k, c := range covered {
		if c != 1 {
			return &CoverageError{Index: k, Count: int(c), NNZ: nnz}
		}
	}
	return nil
}

// CoverageError reports a partitioning defect.
type CoverageError struct {
	Span  costmodel.Span
	Index int
	Count int
	NNZ   int
}

func (e *CoverageError) Error() string {
	if e.Span != (costmodel.Span{}) {
		return fmt.Sprintf("exec: span [%d,%d) outside nnz %d", e.Span.Lo, e.Span.Hi, e.NNZ)
	}
	return fmt.Sprintf("exec: nonzero %d covered %d times", e.Index, e.Count)
}
