// Package exec defines the common contract of every SpMV implementation in
// the repository (HASpMV and the four baselines) and provides the two ways
// to run one:
//
//   - Compute: real data-parallel execution with one goroutine per
//     simulated core. Go cannot pin goroutines to specific P- or E-cores
//     (the paper pins with GOMP_CPU_AFFINITY), so wall-clock numbers do
//     not reflect AMP asymmetry; correctness and algorithmic overheads do.
//   - Simulate: deterministic timing of the same per-core work assignment
//     on an amp.Machine through the costmodel. This is what reproduces the
//     paper's figures.
package exec

import (
	"fmt"
	"sync"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/sparse"
)

// Algorithm is an SpMV method that analyzes a matrix once and then
// multiplies repeatedly (the inspector-executor pattern all five methods
// share).
type Algorithm interface {
	// Name identifies the method in reports ("HASpMV", "CSR5", ...).
	Name() string
	// Prepare analyzes the matrix for the machine and core selection.
	// The returned Prepared may alias the matrix; callers must not mutate
	// it afterwards.
	Prepare(m *amp.Machine, a *sparse.CSR) (Prepared, error)
}

// Prepared is an analyzed matrix ready for multiplication.
type Prepared interface {
	// Compute performs y = A*x. len(x) = Cols, len(y) = Rows.
	Compute(y, x []float64)
	// Assignments exposes the per-core work mapping (nnz spans in the
	// original matrix's coordinate space) for the performance model.
	Assignments() []costmodel.Assignment
}

// BatchPrepared is the optional fused multi-vector interface: algorithms
// that can amortize their index traffic across several right-hand sides
// (block Krylov methods, multi-source PageRank) implement it in addition
// to Prepared.
type BatchPrepared interface {
	Prepared
	// ComputeBatch performs Y[v] = A * X[v] for every vector v.
	ComputeBatch(Y, X [][]float64)
}

// ComputeBatch multiplies a batch of vectors, using the fused path when
// the algorithm provides one and falling back to repeated Compute
// otherwise. Y and X must have equal lengths.
func ComputeBatch(p Prepared, Y, X [][]float64) {
	if len(Y) != len(X) {
		panic(fmt.Sprintf("exec: batch size mismatch %d vs %d", len(Y), len(X)))
	}
	if bp, ok := p.(BatchPrepared); ok {
		bp.ComputeBatch(Y, X)
		return
	}
	for v := range X {
		p.Compute(Y[v], X[v])
	}
}

// Parallel runs f(0..n-1) concurrently and waits for all. It stands in for
// the paper's pinned OpenMP parallel-for: each index is one simulated core.
func Parallel(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// Simulate prices the prepared SpMV on the machine model.
func Simulate(m *amp.Machine, p costmodel.Params, a *sparse.CSR, prep Prepared) costmodel.Result {
	return costmodel.EstimateSpMV(m, p, a, prep.Assignments())
}

// TimePrepare measures the wall-clock preprocessing cost of an algorithm
// (Figure 10). It returns the prepared handle so the measurement includes
// exactly one analysis.
func TimePrepare(alg Algorithm, m *amp.Machine, a *sparse.CSR) (Prepared, time.Duration, error) {
	start := time.Now()
	prep, err := alg.Prepare(m, a)
	return prep, time.Since(start), err
}

// CheckAssignments validates that an assignment list covers every nonzero
// of the matrix exactly once — the fundamental partitioning invariant all
// five methods must satisfy. It is used by tests and by the harness's
// self-check mode.
func CheckAssignments(a *sparse.CSR, asgs []costmodel.Assignment) error {
	return checkCover(a.NNZ(), asgs)
}

func checkCover(nnz int, asgs []costmodel.Assignment) error {
	covered := make([]int32, nnz)
	for _, asg := range asgs {
		for _, sp := range asg.Spans {
			if sp.Lo < 0 || sp.Hi > nnz || sp.Lo > sp.Hi {
				return &CoverageError{Span: sp, NNZ: nnz}
			}
			for k := sp.Lo; k < sp.Hi; k++ {
				covered[k]++
			}
		}
	}
	for k, c := range covered {
		if c != 1 {
			return &CoverageError{Index: k, Count: int(c), NNZ: nnz}
		}
	}
	return nil
}

// CoverageError reports a partitioning defect.
type CoverageError struct {
	Span  costmodel.Span
	Index int
	Count int
	NNZ   int
}

func (e *CoverageError) Error() string {
	if e.Span != (costmodel.Span{}) {
		return fmt.Sprintf("exec: span [%d,%d) outside nnz %d", e.Span.Lo, e.Span.Hi, e.NNZ)
	}
	return fmt.Sprintf("exec: nonzero %d covered %d times", e.Index, e.Count)
}
