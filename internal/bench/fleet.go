package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/fleet"
	"haspmv/internal/gen"
	"haspmv/internal/server"
)

// FleetRow is one closed-loop fleet measurement: the same client
// population as the serving sweep, but requests go through an
// in-process shard group — K independent batcher pipelines over K row
// slices — instead of one matrix-wide batcher. Shards = 1 is the
// single-worker baseline.
type FleetRow struct {
	Shards   int
	Clients  int
	Requests int
	WallMs   float64
	// RPS is completed requests per second of wall time, aggregated
	// across shards (each request touches every shard).
	RPS float64
	// P50Us/P99Us are client-observed end-to-end latencies (scatter,
	// per-shard batching, gather).
	P50Us float64
	P99Us float64
	// MeanBatch is the average flush width across the shard batchers.
	MeanBatch float64
	// Imbalance is max/mean of the shards' measured per-request compute
	// times at the end of the run (1.0 = perfectly balanced).
	Imbalance float64
}

// FleetSweep prepares one representative matrix and measures the
// closed-loop serving throughput of an in-process shard group at each
// shard count. Every response is checked against the group's own
// unloaded answer bit-for-bit (scatter-gather over a fixed plan is
// deterministic) and against the serial reference within tolerance
// (cut rows re-associate).
func FleetSweep(cfg Config, m *amp.Machine, matrix string, shardCounts []int, clients, perClient int) ([]FleetRow, error) {
	if clients < 1 {
		clients = 64
	}
	if perClient < 1 {
		perClient = 6
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	a := gen.Representative(matrix, cfg.RepScale)

	const patterns = 8
	X := make([][]float64, patterns)
	for p := 0; p < patterns; p++ {
		X[p] = make([]float64, a.Cols)
		for i := range X[p] {
			X[p][i] = 1 + float64((i+3*p)%11)/11
		}
	}

	var rows []FleetRow
	for _, count := range shardCounts {
		g, err := fleet.NewGroup(m, a, count, fleet.GroupOptions{
			Batcher: server.BatcherOptions{Linger: 200 * time.Microsecond},
		})
		if err != nil {
			return nil, err
		}
		// Unloaded references through the same group: the loaded run must
		// reproduce them bit-for-bit.
		refs := make([][]float64, patterns)
		for p := 0; p < patterns; p++ {
			refs[p] = make([]float64, a.Rows)
			if err := g.Multiply(context.Background(), refs[p], X[p]); err != nil {
				g.Close()
				return nil, err
			}
		}

		lat := make([]time.Duration, clients*perClient)
		errCh := make(chan error, clients)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				y := make([]float64, a.Rows)
				<-start
				for j := 0; j < perClient; j++ {
					p := (c + j) % patterns
					t0 := time.Now()
					if err := g.Multiply(context.Background(), y, X[p]); err != nil {
						errCh <- err
						return
					}
					lat[c*perClient+j] = time.Since(t0)
					for i := range y {
						if y[i] != refs[p][i] {
							errCh <- fmt.Errorf("client %d request %d: y[%d] = %x, unloaded group gives %x",
								c, j, i, y[i], refs[p][i])
							return
						}
					}
				}
			}(c)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		wall := time.Since(t0)
		select {
		case err = <-errCh:
		default:
		}
		imb := g.Imbalance()
		flushes, served := int64(0), int64(0)
		for _, s := range g.Stats() {
			flushes += s.Stats.Flushes
			served += s.Stats.Coalesced + s.Stats.Solo
		}
		g.Close()
		if err != nil {
			return nil, err
		}

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		n := len(lat)
		r := FleetRow{
			Shards: count, Clients: clients, Requests: n,
			WallMs:    float64(wall.Nanoseconds()) / 1e6,
			P50Us:     float64(lat[n/2].Nanoseconds()) / 1e3,
			P99Us:     float64(lat[n*99/100].Nanoseconds()) / 1e3,
			Imbalance: imb,
		}
		if s := wall.Seconds(); s > 0 {
			r.RPS = float64(n) / s
		}
		if flushes > 0 {
			r.MeanBatch = float64(served) / float64(flushes)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// FleetSpeedup returns best-sharded-over-single throughput (0 when the
// sweep lacks a 1-shard baseline).
func FleetSpeedup(rows []FleetRow) float64 {
	base, best := 0.0, 0.0
	for _, r := range rows {
		if r.Shards == 1 {
			base = r.RPS
		} else if r.RPS > best {
			best = r.RPS
		}
	}
	if base == 0 {
		return 0
	}
	return best / base
}

// PrintFleet renders a fleet sweep.
func PrintFleet(w io.Writer, m *amp.Machine, matrix string, nnz int, rows []FleetRow) {
	fmt.Fprintf(w, "\n# Closed-loop fleet serving on %s (%d nnz, machine model %s split across shards)\n", matrix, nnz, m.Name)
	fmt.Fprintln(w, "note: each shard is an independent batcher over a row slice; 1 shard = single-worker baseline")
	tw := newTable(w)
	fmt.Fprintln(tw, "shards\tclients\treq/s\tp50(us)\tp99(us)\tmean batch\timbalance")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%.2f\n",
			r.Shards, r.Clients, r.RPS, r.P50Us, r.P99Us, r.MeanBatch, r.Imbalance)
	}
	tw.Flush()
	fmt.Fprintf(w, "sharded/single throughput: %.2fx\n", FleetSpeedup(rows))
}

// FleetCSV emits machine,matrix,shards,clients,requests,wall_ms,rps,
// p50_us,p99_us,mean_batch,imbalance per row.
func FleetCSV(w io.Writer, machine, matrix string, rowsIn []FleetRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "shards", "clients", "requests", "wall_ms", "rps", "p50_us", "p99_us", "mean_batch", "imbalance"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, matrix, d(r.Shards), d(r.Clients), d(r.Requests),
			f(r.WallMs), f(r.RPS), f(r.P50Us), f(r.P99Us), f(r.MeanBatch), f(r.Imbalance),
		})
	}
	return writeAll(cw, rows)
}
