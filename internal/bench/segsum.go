package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"

	haspmvcore "haspmv/internal/core"
)

// SegSumZipf is the power-law matrix the segsum experiment measures: a
// rank-law profile whose hub row holds ~33% of the nonzeros (so the
// equal-nnz cut splits it across most of the machine's cores) over a
// short-row tail (mean ~3 nnz/row, like web crawl graphs), where
// per-row dispatch overhead dominates the serial fragment walk.
var SegSumZipf = gen.ZipfSpec{
	Name: "zipf-64k", Rows: 1 << 16, Cols: 1 << 16, TargetNNZ: 200_000, Seed: 3,
}

// SegSumRow is the host wall-clock of one execution mode multiplying
// the identical partition: the serial extraY epilogue, forced
// segmented-sum, and the auto dispatch (segsum where the row-skew gate
// fires, serial elsewhere).
type SegSumRow struct {
	Matrix string
	Mode   string
	TimeUs float64
	GFlops float64
	// Speedup is the serial-epilogue time over this mode's time.
	Speedup float64
	// SegNNZShare is the fraction of assigned nonzeros executed through
	// the segmented-sum kernels under this mode.
	SegNNZShare float64
	// HubShare is the matrix's max-row nnz share — the knob that decides
	// whether the auto gate fires (constant across modes of a matrix).
	HubShare float64
}

// SegSumSweep measures real host wall-clock of the execution modes on
// the Zipf power-law matrix and a representative web graph. The
// P-proportion, base and index mode are pinned so every mode executes
// the exact same partition and streams — the sweep isolates the
// epilogue strategy and the per-row bookkeeping of the region walk. The
// same host caveat as HostCompare applies: symmetric host cores show
// the kernel-overhead effect, not AMP behaviour.
func SegSumSweep(cfg Config, m *amp.Machine, matrix string, reps int) ([]SegSumRow, error) {
	if reps < 1 {
		reps = 5
	}
	mats := []struct {
		name string
		a    *sparse.CSR
	}{
		{SegSumZipf.Name, SegSumZipf.Generate()},
		{matrix, gen.Representative(matrix, cfg.RepScale)},
	}
	modes := []struct {
		name string
		mode haspmvcore.ExecMode
	}{
		{"serial", haspmvcore.ExecSerial},
		{"segsum", haspmvcore.ExecSegSum},
		{"auto", haspmvcore.ExecAuto},
	}
	var rows []SegSumRow
	for _, mt := range mats {
		a := mt.a
		prop := haspmvcore.ProportionFor(m, a)
		base := haspmvcore.AutoBase(a)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 + float64(i%7)/7
		}
		y := make([]float64, a.Rows)
		flops := 2 * float64(a.NNZ())
		serialSec := 0.0
		for _, md := range modes {
			alg := haspmvcore.New(haspmvcore.Options{PProportion: prop, Base: base, Exec: md.mode})
			prep, err := alg.Prepare(m, a)
			if err != nil {
				return nil, fmt.Errorf("%s mode %s: %w", mt.name, md.name, err)
			}
			prep.Compute(y, x) // warm up (scratch pools, worker pool)
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				start := time.Now()
				prep.Compute(y, x)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			hp := prep.(*haspmvcore.Prepared)
			row := SegSumRow{
				Matrix:   mt.name,
				Mode:     md.name,
				TimeUs:   float64(best.Nanoseconds()) / 1e3,
				HubShare: hp.RowSkew().MaxShare,
			}
			if nnz := a.NNZ(); nnz > 0 {
				row.SegNNZShare = float64(hp.SegSumNNZ()) / float64(nnz)
			}
			if s := best.Seconds(); s > 0 {
				row.GFlops = flops / s / 1e9
				if md.name == "serial" {
					serialSec = s
				}
				row.Speedup = serialSec / s
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintSegSum renders the execution-mode sweep.
func PrintSegSum(w io.Writer, m *amp.Machine, rows []SegSumRow) {
	fmt.Fprintf(w, "\n# Segmented-sum execution modes (machine model %s used for partitioning only)\n", m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show per-row overhead and epilogue effects, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "matrix\tmode\ttime(us)\tGFlops\tspeedup vs serial\tsegsum nnz share\thub share")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.2f\t%.2fx\t%.1f%%\t%.1f%%\n",
			r.Matrix, r.Mode, r.TimeUs, r.GFlops, r.Speedup, 100*r.SegNNZShare, 100*r.HubShare)
	}
	tw.Flush()
}

// SegSumCSV emits machine,matrix,mode,time_us,gflops,speedup,
// segsum_nnz_share,hub_share rows.
func SegSumCSV(w io.Writer, machine string, rowsIn []SegSumRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "mode", "time_us", "gflops", "speedup", "segsum_nnz_share", "hub_share"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, r.Matrix, r.Mode, f(r.TimeUs), f(r.GFlops),
			f(r.Speedup), f(r.SegNNZShare), f(r.HubShare),
		})
	}
	return writeAll(cw, rows)
}
