package bench

import (
	"bytes"
	"strings"
	"testing"

	"haspmv/internal/amp"
)

// TestAdaptSweepRecovers enforces the ISSUE's acceptance bound through
// the benchmark harness itself: with the P-group calibration off by 2x
// and 4x, the closed loop must recover at least 90% of the oracle
// throughput within 10 simulated multiplies and never end below the
// static plan it started from.
func TestAdaptSweepRecovers(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	for _, perturb := range []float64{2, 4} {
		r, err := AdaptSweep(cfg, m, "rma10", perturb, 10)
		if err != nil {
			t.Fatalf("perturb %g: %v", perturb, err)
		}
		if len(r.Rows) != 11 {
			t.Fatalf("perturb %g: %d trajectory rows, want 11 (step 0 + 10 multiplies)", perturb, len(r.Rows))
		}
		if r.Recovered < 0.9 {
			t.Errorf("perturb %g: recovered %.1f%% of oracle, want >= 90%%", perturb, 100*r.Recovered)
		}
		if r.FinalGFlops < r.StaticGFlops {
			t.Errorf("perturb %g: final %.2f GFlops below static %.2f", perturb, r.FinalGFlops, r.StaticGFlops)
		}
		if last := r.Rows[len(r.Rows)-1]; last.Rebalances == 0 {
			t.Errorf("perturb %g: no rebalances recorded in the trajectory", perturb)
		}
	}
}

// TestMiscalibrateOnlyPerturbsPGroup: the copy is independent of the
// original and only the Performance group moves.
func TestMiscalibrateOnlyPerturbsPGroup(t *testing.T) {
	m := amp.IntelI912900KF()
	origFreq := m.Groups[0].FreqGHz
	mis := Miscalibrate(m, 2)
	if m.Groups[0].FreqGHz != origFreq {
		t.Fatal("Miscalibrate mutated the original machine")
	}
	if mis.Groups[0].FreqGHz != origFreq/2 {
		t.Fatalf("P-group FreqGHz = %v, want %v", mis.Groups[0].FreqGHz, origFreq/2)
	}
	if mis.Groups[1] != m.Groups[1] {
		t.Fatal("Miscalibrate touched the E group")
	}
}

// TestAdaptCSV: one header plus one row per trajectory step.
func TestAdaptCSV(t *testing.T) {
	cfg := TestConfig()
	r, err := AdaptSweep(cfg, amp.IntelI912900KF(), "rma10", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := AdaptCSV(&buf, []*AdaptResult{r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(r.Rows) {
		t.Fatalf("%d CSV lines, want %d", len(lines), 1+len(r.Rows))
	}
	if !strings.HasPrefix(lines[0], "machine,matrix,perturb,step,") {
		t.Fatalf("header: %q", lines[0])
	}

	var print bytes.Buffer
	PrintAdapt(&print, r)
	if !strings.Contains(print.String(), "recovered") {
		t.Fatalf("PrintAdapt output missing summary: %q", print.String())
	}
}
