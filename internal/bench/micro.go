package bench

import (
	"fmt"
	"io"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
	"haspmv/internal/stats"
	"haspmv/internal/stream"
)

// ---------------------------------------------------------------- Table I

// Table1Row is one machine's specification line.
type Table1Row struct {
	Machine  string
	Group    string
	Cores    int
	L1DKB    int
	L2MB     float64
	L3MB     float64
	FreqGHz  float64
	DRAMGBps float64
}

// Table1 reports the modeled platform specifications (the reproduction of
// the paper's Table I; the paper reports datasheet numbers, we report the
// machine-model numbers the experiments actually use).
func Table1(cfg Config) []Table1Row {
	var rows []Table1Row
	for _, m := range cfg.Machines {
		for gi := range m.Groups {
			g := &m.Groups[gi]
			rows = append(rows, Table1Row{
				Machine:  m.Name,
				Group:    g.Name,
				Cores:    g.Cores,
				L1DKB:    g.L1DBytes / 1024,
				L2MB:     float64(g.L2Bytes) / (1 << 20),
				L3MB:     float64(g.L3Bytes) / (1 << 20),
				FreqGHz:  g.FreqGHz,
				DRAMGBps: m.DRAMBWGBps,
			})
		}
	}
	return rows
}

// PrintTable1 renders Table1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "machine\tgroup\tcores\tL1d(KB)\tL2(MB)\tL3(MB)\tfreq(GHz)\tDRAM(GB/s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%.0f\t%.1f\t%.1f\n",
			r.Machine, r.Group, r.Cores, r.L1DKB, r.L2MB, r.L3MB, r.FreqGHz, r.DRAMGBps)
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Table II

// Table2Row compares one representative matrix's generated statistics with
// the published ones.
type Table2Row struct {
	Name                string
	PaperRows, PaperNNZ int
	PaperAvg            float64
	Rows, NNZ           int
	MinLen, MaxLen      int
	AvgLen              float64
	Scale               int
}

// Table2 generates the 22 representative matrices at cfg.RepScale and
// reports their statistics next to Table II's published values.
func Table2(cfg Config) []Table2Row {
	var rows []Table2Row
	for _, ri := range gen.SortedRepresentativeByNNZ() {
		a := gen.Representative(ri.Name, cfg.RepScale)
		s := sparse.ComputeRowStats(a)
		rows = append(rows, Table2Row{
			Name:      ri.Name,
			PaperRows: ri.PaperRows, PaperNNZ: ri.PaperNNZ, PaperAvg: ri.PaperAvg,
			Rows: s.Rows, NNZ: s.NNZ,
			MinLen: s.MinRowLen, MaxLen: s.MaxRowLen, AvgLen: s.AvgRowLen,
			Scale: cfg.RepScale,
		})
	}
	return rows
}

// PrintTable2 renders Table2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "matrix\tpaper rows\tpaper nnz\tpaper avg\tscale\tgen rows\tgen nnz\tgen min/avg/max")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t1/%d\t%d\t%d\t%d/%.1f/%d\n",
			r.Name, r.PaperRows, r.PaperNNZ, r.PaperAvg, r.Scale, r.Rows, r.NNZ,
			r.MinLen, r.AvgLen, r.MaxLen)
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Figure 3

// Fig3Series is one (machine, core-config) bandwidth curve.
type Fig3Series struct {
	Machine string
	Config  amp.Config
	Points  []stream.Point
}

// Fig3 sweeps the modeled stream triad for every machine and core
// composition (the paper's Figure 3).
func Fig3(cfg Config, points int) []Fig3Series {
	var out []Fig3Series
	for _, m := range cfg.Machines {
		for _, cc := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
			out = append(out, Fig3Series{
				Machine: m.Name,
				Config:  cc,
				Points:  stream.Sweep(m, cfg.Params, cc, points),
			})
		}
	}
	return out
}

// PrintFig3 renders the sweep as one row per size with a column per
// config, grouped by machine.
func PrintFig3(w io.Writer, series []Fig3Series) {
	byMachine := map[string][]Fig3Series{}
	var order []string
	for _, s := range series {
		if _, ok := byMachine[s.Machine]; !ok {
			order = append(order, s.Machine)
		}
		byMachine[s.Machine] = append(byMachine[s.Machine], s)
	}
	for _, name := range order {
		group := byMachine[name]
		fmt.Fprintf(w, "\n# Figure 3 — stream triad, %s (GB/s)\n", name)
		tw := newTable(w)
		fmt.Fprint(tw, "bytes")
		for _, s := range group {
			fmt.Fprintf(tw, "\t%v", s.Config)
		}
		fmt.Fprintln(tw)
		for i := range group[0].Points {
			fmt.Fprintf(tw, "%d", group[0].Points[i].TotalBytes)
			for _, s := range group {
				fmt.Fprintf(tw, "\t%.1f", s.Points[i].GBps)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

// ---------------------------------------------------------------- Figure 4

// Fig4Point is one matrix under one core configuration.
type Fig4Point struct {
	NNZ    int
	GFlops float64
}

// Fig4Result is the parallel-SpMV sweep for one machine.
type Fig4Result struct {
	Machine string
	// Series maps each core config to its scatter.
	Series map[amp.Config][]Fig4Point
	// EBeatsP / PEBeatsP count the corpus cases where pure E-cores or
	// P+E beat pure P-cores (the paper reports 278 and 739 of 2888 on
	// the 13900KF).
	EBeatsP  int
	PEBeatsP int
	Total    int
}

// Fig4 runs Algorithm 1 (simple parallel CSR SpMV) over the corpus for the
// three core compositions on every machine.
func Fig4(cfg Config) ([]Fig4Result, error) {
	specs := cfg.corpus()
	out := make([]Fig4Result, len(cfg.Machines))
	for mi, m := range cfg.Machines {
		out[mi] = Fig4Result{
			Machine: m.Name,
			Series:  map[amp.Config][]Fig4Point{},
			Total:   len(specs),
		}
	}
	// Generate each matrix once and price it on every machine.
	for _, sp := range specs {
		a := sp.Generate()
		for mi, m := range cfg.Machines {
			res := &out[mi]
			var gf [3]float64
			for ci, cc := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
				r, err := simulate(m, cfg.Params, simpleSpMV(cc), a)
				if err != nil {
					return nil, err
				}
				gf[ci] = r.GFlops
				res.Series[cc] = append(res.Series[cc], Fig4Point{NNZ: a.NNZ(), GFlops: r.GFlops})
			}
			if gf[1] > gf[0] {
				res.EBeatsP++
			}
			if gf[2] > gf[0] {
				res.PEBeatsP++
			}
		}
	}
	return out, nil
}

// PrintFig4 renders the scatter plus the win counts.
func PrintFig4(w io.Writer, results []Fig4Result) {
	for _, r := range results {
		fmt.Fprintf(w, "\n# Figure 4 — parallel SpMV, %s (GFlops)\n", r.Machine)
		tw := newTable(w)
		fmt.Fprintln(tw, "nnz\tP-only\tE-only\tP+E")
		p := r.Series[amp.POnly]
		e := r.Series[amp.EOnly]
		pe := r.Series[amp.PAndE]
		for i := range p {
			fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\n", p[i].NNZ, p[i].GFlops, e[i].GFlops, pe[i].GFlops)
		}
		tw.Flush()
		fmt.Fprintf(w, "cases where E-only beats P-only: %d/%d; P+E beats P-only: %d/%d\n",
			r.EBeatsP, r.Total, r.PEBeatsP, r.Total)
	}
}

// ---------------------------------------------------------------- Figure 5

// Fig5Result is the single-core P/E speedup correlation for one machine.
type Fig5Result struct {
	Machine string
	// AvgRowLen / Speedup are the raw scatter (one point per matrix).
	AvgRowLen []float64
	Speedup   []float64
	// BinX / BinY is the per-row-length averaged scatter the figure
	// plots, and Fit the regression line over log10(row length).
	BinX, BinY []float64
	Fit        stats.LinReg
}

// Fig5 measures single-core SpMV on one P-class and one E-class core over
// the corpus and correlates the speedup with average row length.
func Fig5(cfg Config) ([]Fig5Result, error) {
	specs := cfg.corpus()
	out := make([]Fig5Result, len(cfg.Machines))
	for mi, m := range cfg.Machines {
		out[mi] = Fig5Result{Machine: m.Name}
	}
	for _, sp := range specs {
		a := sp.Generate()
		if a.Rows == 0 || a.NNZ() == 0 {
			continue
		}
		for mi, m := range cfg.Machines {
			res := &out[mi]
			single := func(core int) (float64, error) {
				r, err := simulate(m, cfg.Params, singleCoreAlg{core: core}, a)
				return r.Seconds, err
			}
			tp, err := single(0)
			if err != nil {
				return nil, err
			}
			te, err := single(m.PGroup().Cores) // first E-class core
			if err != nil {
				return nil, err
			}
			if tp <= 0 {
				continue
			}
			res.AvgRowLen = append(res.AvgRowLen, float64(a.NNZ())/float64(a.Rows))
			res.Speedup = append(res.Speedup, te/tp)
		}
	}
	for mi := range out {
		res := &out[mi]
		logX := make([]float64, len(res.AvgRowLen))
		for i, v := range res.AvgRowLen {
			logX[i] = stats.Log10(v)
		}
		res.BinX, res.BinY = stats.BinByX(logX, res.Speedup, 16)
		res.Fit = stats.LinearRegression(logX, res.Speedup)
	}
	return out, nil
}

// PrintFig5 renders the binned scatter and the regression.
func PrintFig5(w io.Writer, results []Fig5Result) {
	for _, r := range results {
		fmt.Fprintf(w, "\n# Figure 5 — single P-core over E-core speedup vs avg row length, %s\n", r.Machine)
		tw := newTable(w)
		fmt.Fprintln(tw, "log10(avg row len)\tspeedup")
		for i := range r.BinX {
			fmt.Fprintf(tw, "%.2f\t%.2f\n", r.BinX[i], r.BinY[i])
		}
		tw.Flush()
		fmt.Fprintf(w, "regression: speedup = %.3f*log10(len) + %.3f (R2 %.2f, n %d)\n",
			r.Fit.Slope, r.Fit.Intercept, r.Fit.R2, r.Fit.N)
	}
}
