package bench

import (
	"bytes"
	"strings"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/telemetry"
)

func TestTable1CoversAllMachines(t *testing.T) {
	cfg := TestConfig()
	rows := Table1(cfg)
	if len(rows) != 8 { // 4 machines x 2 groups
		t.Fatalf("rows: %d", len(rows))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	for _, name := range []string{"i9-12900KF", "i9-13900KF", "7950X3D", "7950X"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("table 1 missing %s", name)
		}
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	cfg := TestConfig()
	rows := Table2(cfg)
	if len(rows) != 22 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.NNZ <= 0 || r.Rows <= 0 {
			t.Fatalf("%s: degenerate generation %+v", r.Name, r)
		}
		// At heavy downscale the avg row length is still preserved
		// within a factor of ~1.5 for the non-extreme matrices.
		if r.PaperAvg >= 8 {
			ratio := r.AvgLen / r.PaperAvg
			if ratio < 0.5 || ratio > 1.6 {
				t.Errorf("%s: avg %.1f vs paper %.1f", r.Name, r.AvgLen, r.PaperAvg)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "webbase-1M") {
		t.Fatal("table 2 print missing matrices")
	}
}

func TestFig3SeriesCount(t *testing.T) {
	cfg := TestConfig()
	series := Fig3(cfg, 8)
	if len(series) != 12 { // 4 machines x 3 configs
		t.Fatalf("series: %d", len(series))
	}
	var buf bytes.Buffer
	PrintFig3(&buf, series)
	if !strings.Contains(buf.String(), "P-only") {
		t.Fatal("fig3 print malformed")
	}
}

func TestFig4Shapes(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF(), amp.IntelI913900KF()}
	results, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	for _, r := range results {
		if len(r.Series[amp.POnly]) != cfg.CorpusSize {
			t.Fatalf("%s: series length %d", r.Machine, len(r.Series[amp.POnly]))
		}
		// P-only wins the majority of corpus cases on Intel (Fig 4).
		if r.EBeatsP*2 >= r.Total {
			t.Errorf("%s: E-only wins %d/%d, want minority", r.Machine, r.EBeatsP, r.Total)
		}
	}
	// 13900KF's doubled E-cores must close the gap: more P+E wins than
	// on the 12900KF (278/739-style asymmetry).
	if results[1].PEBeatsP < results[0].PEBeatsP {
		t.Errorf("13900KF P+E wins %d < 12900KF %d", results[1].PEBeatsP, results[0].PEBeatsP)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, results)
	if !strings.Contains(buf.String(), "cases where E-only beats P-only") {
		t.Fatal("fig4 print malformed")
	}
}

func TestFig5RegressionShapes(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF(), amp.AMDRyzen97950X3D()}
	results, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intel, amd := results[0], results[1]
	// Intel: P-core clearly ahead on average.
	if m := mean(intel.Speedup); m < 1.3 {
		t.Errorf("Intel mean single-core speedup %.2f, want > 1.3", m)
	}
	// 12900KF: the gap narrows with row length -> negative slope.
	if intel.Fit.Slope >= 0 {
		t.Errorf("Intel regression slope %.3f, want negative", intel.Fit.Slope)
	}
	// AMD: identical cores -> speedup ~1 everywhere.
	for i, s := range amd.Speedup {
		if s < 0.9 || s > 1.6 {
			t.Errorf("AMD speedup[%d] = %.2f, want ~1", i, s)
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, results)
	if !strings.Contains(buf.String(), "regression") {
		t.Fatal("fig5 print malformed")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestFig8HASpMVWinsIntel(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	results, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Baselines) != 3 {
			t.Fatalf("%s: baselines %d", r.Machine, len(r.Baselines))
		}
		for name, s := range r.Baselines {
			// The headline claim: HASpMV faster on average than every
			// baseline on the Intel AMPs, where the P/E asymmetry makes
			// heterogeneity-blind splits pay.
			if s.GeoMean <= 1.0 {
				t.Errorf("%s vs %s: geomean speedup %.2f, want > 1", r.Machine, name, s.GeoMean)
			}
			if s.Max < s.GeoMean || s.Min > s.GeoMean {
				t.Errorf("%s vs %s: inconsistent summary %+v", r.Machine, name, s)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, results)
	if !strings.Contains(buf.String(), "baseline") {
		t.Fatal("fig8 print malformed")
	}
}

// On the 7950X3D the two CCDs compute identically; HASpMV's edge comes
// from the V-Cache: matrices whose working set fits 96MB but not 32MB
// should lean on CCD0. The paper's AMD speedups (1.29-1.43x average) come
// from exactly this population, so the AMD check uses a V-Cache-range
// corpus; on cache-small matrices HASpMV merely ties the baselines.
func TestFig8HASpMVWinsAMDVCacheRange(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.AMDRyzen97950X3D()}
	cfg.CorpusSize = 5
	cfg.CorpusMinNNZ = 2_500_000 // ~30MB footprint
	cfg.CorpusMaxNNZ = 6_000_000 // ~72MB footprint
	results, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range results[0].Baselines {
		if s.GeoMean <= 1.0 {
			t.Errorf("7950X3D vs %s: geomean speedup %.2f, want > 1", name, s.GeoMean)
		}
	}
	// Control: the homogeneous 7950X gives HASpMV no V-Cache to exploit,
	// so its advantage there must be smaller than on the X3D.
	cfg.Machines = []*amp.Machine{amp.AMDRyzen97950X()}
	plain, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range results[0].Baselines {
		if ps, ok := plain[0].Baselines[name]; ok && ps.GeoMean > s.GeoMean+0.02 {
			t.Errorf("7950X advantage %.2f exceeds X3D %.2f vs %s", ps.GeoMean, s.GeoMean, name)
		}
	}
}

func TestFig9CacheLineFlattest(t *testing.T) {
	cfg := TestConfig()
	r, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Machine != "i9-12900KF" {
		t.Fatalf("machine: %s", r.Machine)
	}
	if len(r.PerCore["cacheline"]) != 16 {
		t.Fatalf("per-core entries: %d", len(r.PerCore["cacheline"]))
	}
	// The paper's finding: cache-line partitioning is the most balanced,
	// row partitioning the least.
	if !(r.Spread["cacheline"] <= r.Spread["nnz"]+0.05) {
		t.Errorf("cacheline spread %.2f not <= nnz spread %.2f", r.Spread["cacheline"], r.Spread["nnz"])
	}
	if !(r.Spread["cacheline"] < r.Spread["row"]) {
		t.Errorf("cacheline spread %.2f not < row spread %.2f", r.Spread["cacheline"], r.Spread["row"])
	}
	var buf bytes.Buffer
	PrintFig9(&buf, r)
	if !strings.Contains(buf.String(), "spread") {
		t.Fatal("fig9 print malformed")
	}
}

func TestFig10HASpMVCheapest(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI913900KF()
	rows, err := Fig10(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows: %d", len(rows))
	}
	haWins := 0
	for _, r := range rows {
		var haName string
		for name := range r.Millis {
			if strings.HasPrefix(name, "HASpMV") {
				haName = name
			}
		}
		ha := r.Millis[haName]
		cheapest := true
		for name, ms := range r.Millis {
			if name != haName && strings.HasPrefix(name, "Merge") {
				continue // merge's prep is a handful of binary searches
			}
			if name != haName && ms < ha {
				cheapest = false
			}
		}
		if cheapest {
			haWins++
		}
	}
	// HASpMV's prep must be at or near the bottom for most matrices
	// (Figure 10: "almost always the lowest", merge excepted here since
	// our merge implementation defers all work to execution).
	if haWins < len(rows)*2/3 {
		t.Errorf("HASpMV cheapest (excl merge) on only %d/%d matrices", haWins, len(rows))
	}
	var buf bytes.Buffer
	PrintFig10(&buf, m, rows)
	if !strings.Contains(buf.String(), "preprocessing") {
		t.Fatal("fig10 print malformed")
	}
}

func TestFig11Coverage(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	rows, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows: %d", len(rows))
	}
	haWins := 0
	for _, r := range rows {
		if len(r.GFlops) != 4 {
			t.Fatalf("%s: methods %d", r.Matrix, len(r.GFlops))
		}
		if strings.HasPrefix(r.Winner, "HASpMV") {
			haWins++
		}
	}
	if haWins < 11 {
		t.Errorf("HASpMV wins only %d/22 representative matrices", haWins)
	}
	var buf bytes.Buffer
	PrintFig11(&buf, rows)
	if !strings.Contains(buf.String(), "winner") {
		t.Fatal("fig11 print malformed")
	}
}

func TestExtEnergyShapes(t *testing.T) {
	cfg := TestConfig()
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}
	rows, err := ExtEnergy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	haMoreEfficient := 0
	for _, r := range rows {
		var ha, bestOther float64
		for name, v := range r.GFlopsPerWatt {
			if v <= 0 {
				t.Fatalf("%s/%s: non-positive efficiency", r.Matrix, name)
			}
			if strings.HasPrefix(name, "HASpMV") {
				ha = v
			} else if v > bestOther {
				bestOther = v
			}
		}
		if ha > bestOther {
			haMoreEfficient++
		}
	}
	// Finishing faster on the same cores costs less uncore energy, so
	// HASpMV should also lead the efficiency metric on most matrices.
	if haMoreEfficient < 4 {
		t.Errorf("HASpMV most efficient on only %d/6 matrices", haMoreEfficient)
	}
	var buf bytes.Buffer
	PrintExtEnergy(&buf, rows)
	if !strings.Contains(buf.String(), "GFlops/W") {
		t.Fatal("energy print malformed")
	}
}

func TestEnergyMachinesFiltersAMD(t *testing.T) {
	cfg := TestConfig()
	got := EnergyMachines(cfg)
	for _, m := range got.Machines {
		if isAMD(m) {
			t.Fatalf("AMD machine %s kept", m.Name)
		}
	}
	if len(got.Machines) != 2 {
		t.Fatalf("machines: %d", len(got.Machines))
	}
}

func TestRepMatrixHelper(t *testing.T) {
	cfg := TestConfig()
	a := cfg.RepMatrix("rma10")
	if a.NNZ() == 0 {
		t.Fatal("rep matrix empty")
	}
}

func TestBreakdownShapes(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	rows, err := Breakdown(cfg, m, "rma10")
	if err != nil {
		t.Fatal(err)
	}
	// 4 methods x 16 cores.
	if len(rows) != 4*16 {
		t.Fatalf("rows: %d", len(rows))
	}
	nnzByAlg := map[string]int{}
	for _, r := range rows {
		if r.Seconds < 0 || r.ComputeMs < 0 || r.MemMs < 0 {
			t.Fatalf("negative components: %+v", r)
		}
		nnzByAlg[r.Algorithm] += r.NNZ
	}
	want := cfg.RepMatrix("rma10").NNZ()
	for alg, n := range nnzByAlg {
		if n != want {
			t.Errorf("%s: covers %d nnz, want %d", alg, n, want)
		}
	}
	var buf bytes.Buffer
	PrintBreakdown(&buf, m, "rma10", rows)
	if !strings.Contains(buf.String(), "DRAM(KB)") {
		t.Fatal("breakdown print malformed")
	}
}

func TestPhaseBreakdownRecordsPipeline(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	rows, err := PhaseBreakdown(cfg, m, []string{"rma10", "dawson5"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]map[string]bool{}
	for _, r := range rows {
		if r.Millis < 0 || r.Count < 1 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if got[r.Matrix] == nil {
			got[r.Matrix] = map[string]bool{}
		}
		got[r.Matrix][r.Phase] = true
	}
	for _, matrix := range []string{"rma10", "dawson5"} {
		for _, phase := range []string{"reorder", "cost", "partition_l1", "partition_l2", "prepare", "compute"} {
			if !got[matrix][phase] {
				t.Errorf("%s: phase %q missing", matrix, phase)
			}
		}
	}
	// The scoped collector must not leave telemetry enabled behind.
	if telemetry.Enabled() {
		t.Fatal("PhaseBreakdown left telemetry enabled")
	}
	var buf bytes.Buffer
	PrintPhases(&buf, m, rows)
	if !strings.Contains(buf.String(), "partition_l2") {
		t.Fatal("phases print malformed")
	}
}

func TestPhasesCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	rows := []PhaseRow{{Matrix: "rma10", NNZ: 7, Phase: "reorder", Millis: 1.5, Count: 2}}
	if err := PhasesCSV(&buf, "i9-12900KF", rows); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "machine,matrix,nnz,phase,millis,count\n") {
		t.Fatalf("header: %q", s)
	}
	if !strings.Contains(s, "i9-12900KF,rma10,7,reorder,1.5,2") {
		t.Fatalf("row: %q", s)
	}
}

func TestTraceRunNeedsTelemetry(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	if err := TraceRun(cfg, m, "rma10"); err == nil {
		t.Fatal("TraceRun succeeded without telemetry")
	}
	c := telemetry.NewCollector()
	prev := telemetry.Activate(c)
	defer telemetry.Activate(prev)
	if err := TraceRun(cfg, m, "rma10"); err != nil {
		t.Fatal(err)
	}
	if len(c.Spans()) != m.TotalCores() {
		t.Fatalf("trace run recorded %d spans, want one per core (%d)", len(c.Spans()), m.TotalCores())
	}
}

func TestBatchThroughputMeasures(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	rows, err := BatchThroughput(cfg, m, "dawson5", []int{1, 3, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.FusedUs <= 0 || r.RepeatedUs <= 0 || r.FusedGFlops <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintBatch(&buf, m, "dawson5", rows)
	if !strings.Contains(buf.String(), "index-stream amortization") {
		t.Fatal("batch print missing caveat")
	}
	buf.Reset()
	if err := BatchCSV(&buf, m.Name, "dawson5", rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("batch csv has %d lines, want header + 3 rows", lines)
	}
}

func TestHostCompareMeasures(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	rows, err := HostCompare(cfg, m, "dawson5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.MultiplyUs <= 0 || r.GFlops <= 0 || r.PrepMs < 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintHostCompare(&buf, m, "dawson5", rows)
	if !strings.Contains(buf.String(), "algorithmic overheads") {
		t.Fatal("host print missing caveat")
	}
}
