package bench

import (
	"bytes"
	"strings"
	"testing"

	"haspmv/internal/amp"
)

func TestIndexSweepModesAndBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepScale = 64
	m := amp.IntelI912900KF()
	rows, err := IndexSweep(cfg, m, "rma10", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (int, u32, auto)", len(rows))
	}
	byMode := map[string]IndexRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.TimeUs <= 0 || r.GFlops <= 0 || r.Speedup <= 0 {
			t.Errorf("mode %s: non-positive measurement %+v", r.Mode, r)
		}
		if r.U16NNZShare < 0 || r.U16NNZShare > 1 {
			t.Errorf("mode %s: u16 share %v outside [0,1]", r.Mode, r.U16NNZShare)
		}
	}
	// The reference walks the matrix's own 8-byte []int indices, u32
	// streams exactly 4 bytes per index, and auto can only narrow further
	// — past the 2-byte delta floor once diagonal run descriptors replace
	// per-nonzero indices on contiguous stretches.
	if got := byMode["int"].IdxBytesPerNNZ; got != 8 {
		t.Errorf("int idx bytes/nnz = %v, want 8", got)
	}
	if got := byMode["u32"].IdxBytesPerNNZ; got != 4 {
		t.Errorf("u32 idx bytes/nnz = %v, want 4", got)
	}
	if got := byMode["auto"].IdxBytesPerNNZ; got <= 0 || got > 4 {
		t.Errorf("auto idx bytes/nnz = %v, want within (0,4]", got)
	}
	if byMode["int"].Speedup != 1 {
		t.Errorf("reference speedup = %v, want exactly 1", byMode["int"].Speedup)
	}

	var out bytes.Buffer
	PrintIndex(&out, m, "rma10", rows)
	if !strings.Contains(out.String(), "u16 nnz share") {
		t.Fatalf("report missing header:\n%s", out.String())
	}
	out.Reset()
	if err := IndexCSV(&out, m.Name, "rma10", rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", lines, out.String())
	}
}
