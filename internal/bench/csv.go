package bench

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"

	"haspmv/internal/amp"
)

// CSV emitters: every experiment result renders as one flat table with a
// header row, suitable for any plotting tool. cmd/haspmv-bench writes them
// next to the text reports when -csv is given.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// Fig3CSV emits machine,config,bytes,gbps rows.
func Fig3CSV(w io.Writer, series []Fig3Series) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "config", "bytes", "gbps", "bound"}}
	for _, s := range series {
		for _, p := range s.Points {
			rows = append(rows, []string{s.Machine, s.Config.String(), d(p.TotalBytes), f(p.GBps), p.BoundBy})
		}
	}
	return writeAll(cw, rows)
}

// Fig4CSV emits machine,config,nnz,gflops rows.
func Fig4CSV(w io.Writer, results []Fig4Result) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "config", "nnz", "gflops"}}
	for _, r := range results {
		for _, cc := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
			for _, p := range r.Series[cc] {
				rows = append(rows, []string{r.Machine, cc.String(), d(p.NNZ), f(p.GFlops)})
			}
		}
	}
	return writeAll(cw, rows)
}

// Fig5CSV emits machine,avg_row_len,speedup scatter rows.
func Fig5CSV(w io.Writer, results []Fig5Result) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "avg_row_len", "speedup"}}
	for _, r := range results {
		for i := range r.AvgRowLen {
			rows = append(rows, []string{r.Machine, f(r.AvgRowLen[i]), f(r.Speedup[i])})
		}
	}
	return writeAll(cw, rows)
}

// Fig8CSV emits machine,algorithm,nnz,gflops scatter rows.
func Fig8CSV(w io.Writer, results []Fig8Result) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "algorithm", "nnz", "gflops"}}
	for _, r := range results {
		names := sortedKeys(r.Scatter)
		for _, name := range names {
			for _, p := range r.Scatter[name] {
				rows = append(rows, []string{r.Machine, name, d(p.NNZ), f(p.GFlops)})
			}
		}
	}
	return writeAll(cw, rows)
}

// Fig9CSV emits metric,core,seconds rows.
func Fig9CSV(w io.Writer, r Fig9Result) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"metric", "core", "seconds"}}
	for _, metric := range []string{"row", "nnz", "cacheline"} {
		for core, sec := range r.PerCore[metric] {
			rows = append(rows, []string{metric, d(core), f(sec)})
		}
	}
	return writeAll(cw, rows)
}

// Fig10CSV emits matrix,nnz,algorithm,millis rows.
func Fig10CSV(w io.Writer, machine string, rowsIn []Fig10Row) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "nnz", "algorithm", "millis"}}
	for _, r := range rowsIn {
		for _, name := range sortedKeys(r.Millis) {
			rows = append(rows, []string{machine, r.Matrix, d(r.NNZ), name, f(r.Millis[name])})
		}
	}
	return writeAll(cw, rows)
}

// Fig11CSV emits machine,matrix,algorithm,gflops rows.
func Fig11CSV(w io.Writer, rowsIn []Fig11Row) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "algorithm", "gflops", "winner"}}
	for _, r := range rowsIn {
		for _, name := range sortedKeys(r.GFlops) {
			rows = append(rows, []string{r.Machine, r.Matrix, name, f(r.GFlops[name]), r.Winner})
		}
	}
	return writeAll(cw, rows)
}

// EnergyCSV emits machine,matrix,algorithm,millijoules,gflops_per_watt.
func EnergyCSV(w io.Writer, rowsIn []EnergyRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "algorithm", "millijoules", "gflops_per_watt"}}
	for _, r := range rowsIn {
		for _, name := range sortedKeys(r.GFlopsPerWatt) {
			rows = append(rows, []string{
				r.Machine, r.Matrix, name, f(r.MillijoulesPerOp[name]), f(r.GFlopsPerWatt[name]),
			})
		}
	}
	return writeAll(cw, rows)
}

// PhasesCSV emits machine,matrix,nnz,phase,millis,count rows (the
// telemetry-sourced Fig. 7-style preprocessing breakdown).
func PhasesCSV(w io.Writer, machine string, rowsIn []PhaseRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "nnz", "phase", "millis", "count"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{machine, r.Matrix, d(r.NNZ), r.Phase, f(r.Millis), strconv.FormatInt(r.Count, 10)})
	}
	return writeAll(cw, rows)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
