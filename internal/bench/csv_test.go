package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/stream"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has no data rows")
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			t.Fatalf("row %d width %d, want %d", i, len(r), width)
		}
	}
	return rows
}

func TestFig3CSV(t *testing.T) {
	series := []Fig3Series{{
		Machine: "m", Config: amp.POnly,
		Points: []stream.Point{{Elems: 10, TotalBytes: 240, GBps: 50.5, BoundBy: "core"}},
	}}
	var buf bytes.Buffer
	if err := Fig3CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][0] != "m" || rows[1][2] != "240" || rows[1][3] != "50.5" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestAllCSVEmittersEndToEnd(t *testing.T) {
	cfg := TestConfig()
	cfg.CorpusSize = 6
	cfg.Machines = []*amp.Machine{amp.IntelI912900KF()}

	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f10, err := Fig10(cfg, cfg.Machines[0])
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	en, err := ExtEnergy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	emitters := map[string]func(*bytes.Buffer) error{
		"fig4":   func(b *bytes.Buffer) error { return Fig4CSV(b, f4) },
		"fig5":   func(b *bytes.Buffer) error { return Fig5CSV(b, f5) },
		"fig8":   func(b *bytes.Buffer) error { return Fig8CSV(b, f8) },
		"fig9":   func(b *bytes.Buffer) error { return Fig9CSV(b, f9) },
		"fig10":  func(b *bytes.Buffer) error { return Fig10CSV(b, "i9-12900KF", f10) },
		"fig11":  func(b *bytes.Buffer) error { return Fig11CSV(b, f11) },
		"energy": func(b *bytes.Buffer) error { return EnergyCSV(b, en) },
	}
	for name, emit := range emitters {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows := parseCSV(t, &buf)
		if len(rows[0]) < 3 {
			t.Fatalf("%s: header too narrow: %v", name, rows[0])
		}
		// Header must be lowercase identifiers.
		for _, h := range rows[0] {
			if h != strings.ToLower(h) || strings.Contains(h, " ") {
				t.Fatalf("%s: bad header %q", name, h)
			}
		}
	}
}
