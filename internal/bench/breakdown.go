package bench

import (
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

// BreakdownRow decomposes one core's modeled time for one method.
type BreakdownRow struct {
	Algorithm string
	Core      int
	Group     string
	Seconds   float64
	ComputeMs float64
	MemMs     float64
	// LevelBytes are the bytes served per level [L1, L2, L3, DRAM].
	LevelBytes [4]float64
	NNZ        int
	Rows       int
}

// Breakdown prices every method on one representative matrix and returns
// the per-core decomposition — the analysis view behind Figure 9,
// generalized to all methods and cost components.
func Breakdown(cfg Config, m *amp.Machine, matrix string) ([]BreakdownRow, error) {
	a := gen.Representative(matrix, cfg.RepScale)
	var rows []BreakdownRow
	for _, alg := range AlgorithmsFor(m) {
		r, err := simulate(m, cfg.Params, alg, a)
		if err != nil {
			return nil, err
		}
		for _, cc := range r.PerCore {
			g, _ := m.GroupOf(cc.Core)
			rows = append(rows, BreakdownRow{
				Algorithm:  alg.Name(),
				Core:       cc.Core,
				Group:      g.Name,
				Seconds:    cc.Seconds,
				ComputeMs:  1e3 * cc.ComputeSeconds,
				MemMs:      1e3 * cc.MemSeconds,
				LevelBytes: cc.LevelBytes,
				NNZ:        cc.NNZ,
				Rows:       cc.Rows,
			})
		}
	}
	return rows, nil
}

// PrintBreakdown renders the decomposition grouped by method.
func PrintBreakdown(w io.Writer, m *amp.Machine, matrix string, rows []BreakdownRow) {
	fmt.Fprintf(w, "\n# Per-core breakdown on %s, %s\n", matrix, m.Name)
	cur := ""
	tw := newTable(w)
	for _, r := range rows {
		if r.Algorithm != cur {
			if cur != "" {
				tw.Flush()
			}
			cur = r.Algorithm
			fmt.Fprintf(w, "\n## %s\n", cur)
			tw = newTable(w)
			fmt.Fprintln(tw, "core\tgroup\tnnz\trows\ttotal(ms)\tcompute(ms)\tmem(ms)\tL1(KB)\tL2(KB)\tL3(KB)\tDRAM(KB)")
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Core, r.Group, r.NNZ, r.Rows, 1e3*r.Seconds, r.ComputeMs, r.MemMs,
			r.LevelBytes[0]/1024, r.LevelBytes[1]/1024, r.LevelBytes[2]/1024, r.LevelBytes[3]/1024)
	}
	tw.Flush()
}

// HostRow is one method's real wall-clock measurement on this host.
type HostRow struct {
	Algorithm string
	PrepMs    float64
	// MultiplyUs is the best-of-k time of one y = A*x.
	MultiplyUs float64
	GFlops     float64
}

// HostCompare measures real host wall-clock for every method on one
// matrix: Prepare once, then best-of-reps Multiply. Host numbers reflect
// algorithmic overheads only — Go cannot pin goroutines to P/E cores, so
// AMP asymmetry is invisible here (the honest caveat of DESIGN.md §2);
// the modeled numbers are the reproduction's performance results.
func HostCompare(cfg Config, m *amp.Machine, matrix string, reps int) ([]HostRow, error) {
	if reps < 1 {
		reps = 5
	}
	a := gen.Representative(matrix, cfg.RepScale)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	var rows []HostRow
	for _, alg := range AlgorithmsFor(m) {
		prep, prepTime, err := exec.TimePrepare(alg, m, a)
		if err != nil {
			return nil, err
		}
		prep.Compute(y, x) // warm up
		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			prep.Compute(y, x)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		sec := best.Seconds()
		gf := 0.0
		if sec > 0 {
			gf = 2 * float64(a.NNZ()) / sec / 1e9
		}
		rows = append(rows, HostRow{
			Algorithm:  alg.Name(),
			PrepMs:     float64(prepTime.Microseconds()) / 1e3,
			MultiplyUs: float64(best.Nanoseconds()) / 1e3,
			GFlops:     gf,
		})
	}
	return rows, nil
}

// PrintHostCompare renders the host measurements.
func PrintHostCompare(w io.Writer, m *amp.Machine, matrix string, rows []HostRow) {
	fmt.Fprintf(w, "\n# Host wall-clock on %s (machine model %s used for partitioning only)\n", matrix, m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show algorithmic overheads, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "method\tprep(ms)\tmultiply(us)\thost GFlops")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.2f\n", r.Algorithm, r.PrepMs, r.MultiplyUs, r.GFlops)
	}
	tw.Flush()
}
