package bench

import (
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/telemetry"

	haspmvcore "haspmv/internal/core"
)

// BreakdownRow decomposes one core's modeled time for one method.
type BreakdownRow struct {
	Algorithm string
	Core      int
	Group     string
	Seconds   float64
	ComputeMs float64
	MemMs     float64
	// LevelBytes are the bytes served per level [L1, L2, L3, DRAM].
	LevelBytes [4]float64
	NNZ        int
	Rows       int
}

// Breakdown prices every method on one representative matrix and returns
// the per-core decomposition — the analysis view behind Figure 9,
// generalized to all methods and cost components.
func Breakdown(cfg Config, m *amp.Machine, matrix string) ([]BreakdownRow, error) {
	a := gen.Representative(matrix, cfg.RepScale)
	var rows []BreakdownRow
	for _, alg := range AlgorithmsFor(m) {
		r, err := simulate(m, cfg.Params, alg, a)
		if err != nil {
			return nil, err
		}
		for _, cc := range r.PerCore {
			g, _ := m.GroupOf(cc.Core)
			rows = append(rows, BreakdownRow{
				Algorithm:  alg.Name(),
				Core:       cc.Core,
				Group:      g.Name,
				Seconds:    cc.Seconds,
				ComputeMs:  1e3 * cc.ComputeSeconds,
				MemMs:      1e3 * cc.MemSeconds,
				LevelBytes: cc.LevelBytes,
				NNZ:        cc.NNZ,
				Rows:       cc.Rows,
			})
		}
	}
	return rows, nil
}

// PrintBreakdown renders the decomposition grouped by method.
func PrintBreakdown(w io.Writer, m *amp.Machine, matrix string, rows []BreakdownRow) {
	fmt.Fprintf(w, "\n# Per-core breakdown on %s, %s\n", matrix, m.Name)
	cur := ""
	tw := newTable(w)
	for _, r := range rows {
		if r.Algorithm != cur {
			if cur != "" {
				tw.Flush()
			}
			cur = r.Algorithm
			fmt.Fprintf(w, "\n## %s\n", cur)
			tw = newTable(w)
			fmt.Fprintln(tw, "core\tgroup\tnnz\trows\ttotal(ms)\tcompute(ms)\tmem(ms)\tL1(KB)\tL2(KB)\tL3(KB)\tDRAM(KB)")
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Core, r.Group, r.NNZ, r.Rows, 1e3*r.Seconds, r.ComputeMs, r.MemMs,
			r.LevelBytes[0]/1024, r.LevelBytes[1]/1024, r.LevelBytes[2]/1024, r.LevelBytes[3]/1024)
	}
	tw.Flush()
}

// PhaseRow is one telemetry-sourced phase measurement for one matrix:
// where HASpMV's preprocessing and execution time actually went, from the
// instrumentation inside Prepare/Compute rather than ad-hoc time.Since
// wrappers (the Fig. 7-style preprocessing-overhead decomposition).
type PhaseRow struct {
	Matrix string
	NNZ    int
	Phase  string
	Millis float64
	Count  int64
}

// PhaseBreakdown prepares HASpMV for each named matrix under a scoped
// telemetry collector, runs one multiply, and returns the recorded phase
// timers in pipeline order (reorder → cost → partition L1/L2 → prepare →
// compute).
func PhaseBreakdown(cfg Config, m *amp.Machine, matrices []string) ([]PhaseRow, error) {
	var rows []PhaseRow
	for _, name := range matrices {
		a := gen.Representative(name, cfg.RepScale)
		c := telemetry.NewCollector()
		prev := telemetry.Activate(c)
		prep, err := haspmvcore.New(haspmvcore.Options{}).Prepare(m, a)
		if err == nil {
			x := make([]float64, a.Cols)
			for i := range x {
				x[i] = 1 + float64(i%7)/7
			}
			prep.Compute(make([]float64, a.Rows), x)
		}
		telemetry.Activate(prev)
		if err != nil {
			return nil, fmt.Errorf("phases on %s / %s: %w", m.Name, name, err)
		}
		for _, p := range telemetry.Phases() {
			sec, n := c.PhaseSeconds(p)
			if n == 0 {
				continue
			}
			rows = append(rows, PhaseRow{
				Matrix: name, NNZ: a.NNZ(),
				Phase: p.String(), Millis: 1e3 * sec, Count: n,
			})
		}
	}
	return rows, nil
}

// PrintPhases renders the phase-timer breakdown.
func PrintPhases(w io.Writer, m *amp.Machine, rows []PhaseRow) {
	fmt.Fprintf(w, "\n# HASpMV phase timers on %s (telemetry-sourced; prepare = reorder+cost+partition+bookkeeping)\n", m.Name)
	tw := newTable(w)
	fmt.Fprintln(tw, "matrix\tnnz\tphase\ttime(ms)\tcalls")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.4f\t%d\n", r.Matrix, r.NNZ, r.Phase, r.Millis, r.Count)
	}
	tw.Flush()
}

// TraceRun performs one fully instrumented HASpMV Prepare+Multiply on the
// active telemetry collector, guaranteeing the exported trace carries one
// span per simulated core and a partition record even when only simulator
// experiments ran. It errors when telemetry is disabled.
func TraceRun(cfg Config, m *amp.Machine, matrix string) error {
	if telemetry.Active() == nil {
		return fmt.Errorf("bench: TraceRun needs telemetry enabled")
	}
	a := gen.Representative(matrix, cfg.RepScale)
	prep, err := haspmvcore.New(haspmvcore.Options{}).Prepare(m, a)
	if err != nil {
		return fmt.Errorf("trace run on %s / %s: %w", m.Name, matrix, err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	prep.Compute(make([]float64, a.Rows), x)
	return nil
}

// HostRow is one method's real wall-clock measurement on this host.
type HostRow struct {
	Algorithm string
	PrepMs    float64
	// MultiplyUs is the best-of-k time of one y = A*x.
	MultiplyUs float64
	GFlops     float64
}

// HostCompare measures real host wall-clock for every method on one
// matrix: Prepare once, then best-of-reps Multiply. Host numbers reflect
// algorithmic overheads only — Go cannot pin goroutines to P/E cores, so
// AMP asymmetry is invisible here (the honest caveat of DESIGN.md §2);
// the modeled numbers are the reproduction's performance results.
func HostCompare(cfg Config, m *amp.Machine, matrix string, reps int) ([]HostRow, error) {
	if reps < 1 {
		reps = 5
	}
	a := gen.Representative(matrix, cfg.RepScale)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	var rows []HostRow
	for _, alg := range AlgorithmsFor(m) {
		prep, prepTime, err := exec.TimePrepare(alg, m, a)
		if err != nil {
			return nil, err
		}
		prep.Compute(y, x) // warm up
		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			prep.Compute(y, x)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		sec := best.Seconds()
		gf := 0.0
		if sec > 0 {
			gf = 2 * float64(a.NNZ()) / sec / 1e9
		}
		rows = append(rows, HostRow{
			Algorithm:  alg.Name(),
			PrepMs:     float64(prepTime.Microseconds()) / 1e3,
			MultiplyUs: float64(best.Nanoseconds()) / 1e3,
			GFlops:     gf,
		})
	}
	return rows, nil
}

// PrintHostCompare renders the host measurements.
func PrintHostCompare(w io.Writer, m *amp.Machine, matrix string, rows []HostRow) {
	fmt.Fprintf(w, "\n# Host wall-clock on %s (machine model %s used for partitioning only)\n", matrix, m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show algorithmic overheads, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "method\tprep(ms)\tmultiply(us)\thost GFlops")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.2f\n", r.Algorithm, r.PrepMs, r.MultiplyUs, r.GFlops)
	}
	tw.Flush()
}
