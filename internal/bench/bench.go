// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each runner returns a typed result (so tests can assert shapes) and can
// render itself as a text report. cmd/haspmv-bench wires the runners to a
// CLI; the repository-root benchmarks call them under testing.B.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"

	"haspmv/internal/baselines/csr5"
	"haspmv/internal/baselines/csrsimple"
	"haspmv/internal/baselines/mergespmv"
	"haspmv/internal/baselines/vendorlike"
	haspmvcore "haspmv/internal/core"
)

// Config scales the experiments. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Machines to evaluate (defaults to the four Table I parts).
	Machines []*amp.Machine
	// Params are the performance-model constants.
	Params costmodel.Params
	// CorpusSize is the number of synthetic matrices standing in for the
	// 2888-matrix SuiteSparse sweep.
	CorpusSize int
	// CorpusMaxNNZ bounds the corpus scale.
	CorpusMinNNZ, CorpusMaxNNZ int
	// RepScale divides the published sizes of the 22 representative
	// matrices (16 keeps every experiment laptop-fast while preserving
	// per-row cache behaviour).
	RepScale int
	Seed     int64
}

// DefaultConfig returns the harness defaults used by cmd/haspmv-bench.
func DefaultConfig() Config {
	c := gen.DefaultCorpus()
	return Config{
		Machines:     amp.All(),
		Params:       costmodel.DefaultParams(),
		CorpusSize:   c.Size,
		CorpusMinNNZ: c.MinNNZ,
		CorpusMaxNNZ: c.MaxNNZ,
		RepScale:     16,
		Seed:         c.Seed,
	}
}

// TestConfig returns a shrunken configuration for unit tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.CorpusSize = 24
	cfg.CorpusMaxNNZ = 200_000
	cfg.RepScale = 64
	return cfg
}

func (c Config) corpus() []gen.Spec {
	return gen.Corpus(gen.CorpusOptions{
		Size: c.CorpusSize, MinNNZ: c.CorpusMinNNZ, MaxNNZ: c.CorpusMaxNNZ, Seed: c.Seed,
	})
}

// intelAMD splits the configured machines by vendor flavour: the Intel
// parts compare against oneMKL, the AMD parts against AOCL.
func isAMD(m *amp.Machine) bool {
	return !m.PGroup().L3SharedWithOtherGroup
}

// AlgorithmsFor returns the paper's Figure 8 competitor set for a machine:
// HASpMV, the vendor library (oneMKL-like on Intel, AOCL-like on AMD),
// CSR5 and Merge-SpMV, all using every core. HASpMV runs in reference
// index mode: the paper's algorithm has no compressed execution streams,
// and the baselines are all priced at the paper's 4-byte CSR indices, so
// the figure reproductions compare like with like (the compressed-stream
// win is measured separately by IndexSweep / -exp index).
func AlgorithmsFor(m *amp.Machine) []exec.Algorithm {
	vendor := vendorlike.New(vendorlike.MKL, amp.PAndE)
	if isAMD(m) {
		vendor = vendorlike.New(vendorlike.AOCL, amp.PAndE)
	}
	return []exec.Algorithm{
		haspmvcore.New(haspmvcore.Options{Index: haspmvcore.IndexReference}),
		vendor,
		csr5.New(amp.PAndE),
		mergespmv.New(amp.PAndE),
	}
}

// simpleSpMV is the Section III micro-benchmark algorithm (Algorithm 1).
func simpleSpMV(cfg amp.Config) exec.Algorithm {
	return csrsimple.New(cfg, csrsimple.ByRows)
}

// simulate runs one algorithm on one matrix and returns the modeled
// result, or an error if preparation failed.
func simulate(m *amp.Machine, p costmodel.Params, alg exec.Algorithm, a *sparse.CSR) (costmodel.Result, error) {
	prep, err := alg.Prepare(m, a)
	if err != nil {
		return costmodel.Result{}, fmt.Errorf("%s on %s: %w", alg.Name(), m.Name, err)
	}
	return exec.Simulate(m, p, a, prep), nil
}

// singleCoreAlg runs the whole matrix serially on one chosen core — the
// Section III-C micro-benchmark ("a simple serial SpMV test").
type singleCoreAlg struct{ core int }

func (s singleCoreAlg) Name() string { return fmt.Sprintf("serial(core%d)", s.core) }

func (s singleCoreAlg) Prepare(m *amp.Machine, a *sparse.CSR) (exec.Prepared, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &singleCorePrep{mat: a, core: s.core}, nil
}

type singleCorePrep struct {
	mat  *sparse.CSR
	core int
}

func (p *singleCorePrep) Compute(y, x []float64) { p.mat.MulVec(y, x) }

func (p *singleCorePrep) Assignments() []costmodel.Assignment {
	return []costmodel.Assignment{{
		Core:  p.core,
		Spans: []costmodel.Span{{Lo: 0, Hi: p.mat.NNZ()}},
	}}
}

// newTable starts an aligned text table.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
