package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"

	haspmvcore "haspmv/internal/core"
)

// FormatRow is the host wall-clock of one execution-format configuration
// on one matrix, all configurations executing the identical partition.
type FormatRow struct {
	Matrix string
	Config string
	TimeUs float64
	GFlops float64
	// Speedup is the []int/f64 reference time over this config's time,
	// per matrix.
	Speedup float64
	// IdxBytesPerNNZ / ValBytesPerNNZ are the average index and value
	// bytes one multiply streams per nonzero under this configuration.
	IdxBytesPerNNZ float64
	ValBytesPerNNZ float64
	// DiaNNZShare is the fraction of nonzeros executed from diagonal run
	// descriptors, and ValueFormat the value stream the instance chose
	// ("f64", "palette", "f32") — reported because "palette" only names
	// the *request*; whether compression engaged depends on the matrix.
	DiaNNZShare float64
	ValueFormat string
}

// formatConfigs is the int/u32/auto/dia/palette ablation: the []int+f64
// reference, absolute u32 indices, full auto (per-region index format
// plus automatic palette), forced diagonal descriptors, and u32 indices
// with the value stream left on auto so palette eligibility is isolated
// from index-format effects.
func formatConfigs() []struct {
	Name string
	Opts haspmvcore.Options
} {
	return []struct {
		Name string
		Opts haspmvcore.Options
	}{
		{"int", haspmvcore.Options{Index: haspmvcore.IndexReference, Value: haspmvcore.ValueReference}},
		{"u32", haspmvcore.Options{Index: haspmvcore.IndexU32, Value: haspmvcore.ValueReference}},
		{"auto", haspmvcore.Options{}},
		{"dia", haspmvcore.Options{Index: haspmvcore.IndexForceDia, Value: haspmvcore.ValueReference}},
		{"palette", haspmvcore.Options{Index: haspmvcore.IndexU32, Value: haspmvcore.ValueAuto}},
	}
}

// FormatMatrices builds the three-matrix battery the format sweep runs
// on: a 9-point stencil with a trace of off-band defects (diagonal
// descriptors apply, continuous values keep the palette out), a 0/1
// random graph (single-entry palette applies, scattered columns keep
// the diagonal format out), and the named representative matrix
// (whatever auto picks there). Sizes follow cfg.RepScale like the
// representative battery.
func FormatMatrices(cfg Config, matrix string) (names []string, mats []*sparse.CSR) {
	scale := cfg.RepScale
	if scale < 1 {
		scale = 1
	}
	dim := func(base int) int {
		n := base / scale
		if n < 2048 {
			n = 2048
		}
		return n
	}
	n := dim(1_500_000)
	sten := gen.StencilSpec{
		Name: "stencil9", Rows: n, Cols: n,
		Diagonals: 9, NoiseFrac: 0.002, Seed: 20260801,
	}.Generate()
	g := dim(400_000)
	graph := gen.Spec{
		Name: "graph01", Rows: g, Cols: g,
		Dist:  gen.NormalLen{Mean: 16, Std: 4, Min: 1, Max: 32},
		Place: gen.Random, Seed: 20260802,
	}.Generate()
	for k := range graph.Val {
		graph.Val[k] = 1 // adjacency: every stored value exactly 1.0
	}
	return []string{"stencil9", "graph01", matrix},
		[]*sparse.CSR{sten, graph, gen.Representative(matrix, cfg.RepScale)}
}

// FormatSweep measures real host wall-clock of the pluggable per-region
// execution formats across the FormatMatrices battery. The P-proportion
// and row-length base are pinned per matrix so every configuration
// executes the exact same partition — the sweep isolates stream bytes
// per nonzero, which is the point: SpMV is stream bound, and the
// diagonal descriptors and palette values shrink the two dominant
// traffic terms. The same host caveat as HostCompare applies: symmetric
// host cores show the traffic effect, not AMP behaviour.
func FormatSweep(cfg Config, m *amp.Machine, matrix string, reps int) ([]FormatRow, error) {
	if reps < 1 {
		reps = 5
	}
	names, mats := FormatMatrices(cfg, matrix)
	var rows []FormatRow
	for mi, a := range mats {
		prop := haspmvcore.ProportionFor(m, a)
		base := haspmvcore.AutoBase(a)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 + float64(i%7)/7
		}
		y := make([]float64, a.Rows)
		flops := 2 * float64(a.NNZ())
		refSec := 0.0
		for _, cf := range formatConfigs() {
			opts := cf.Opts
			opts.PProportion = prop
			opts.Base = base
			prep, err := haspmvcore.New(opts).Prepare(m, a)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", names[mi], cf.Name, err)
			}
			prep.Compute(y, x) // warm up (scratch pools, worker pool)
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				start := time.Now()
				prep.Compute(y, x)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			hp := prep.(*haspmvcore.Prepared)
			ist := hp.IndexStats()
			vst := hp.ValueStats()
			row := FormatRow{
				Matrix: names[mi], Config: cf.Name,
				TimeUs:      float64(best.Nanoseconds()) / 1e3,
				ValueFormat: vst.Format.String(),
			}
			if nnz := a.NNZ(); nnz > 0 {
				row.IdxBytesPerNNZ = float64(ist.StreamIndexBytes) / float64(nnz)
				row.ValBytesPerNNZ = float64(vst.StreamValueBytes) / float64(nnz)
				row.DiaNNZShare = float64(ist.NNZByFormat[haspmvcore.IndexDia]) / float64(nnz)
			}
			if s := best.Seconds(); s > 0 {
				row.GFlops = flops / s / 1e9
				if cf.Name == "int" {
					refSec = s
				}
				row.Speedup = refSec / s
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFormat renders the execution-format sweep.
func PrintFormat(w io.Writer, m *amp.Machine, rows []FormatRow) {
	fmt.Fprintf(w, "\n# Execution-format SpMV sweep (machine model %s used for partitioning only)\n", m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show stream-traffic reduction, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "matrix\tconfig\ttime(us)\tGFlops\tspeedup vs int\tidx B/nnz\tval B/nnz\tdia nnz share\tvalue stream")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.2f\t%.2fx\t%.2f\t%.2f\t%.1f%%\t%s\n",
			r.Matrix, r.Config, r.TimeUs, r.GFlops, r.Speedup,
			r.IdxBytesPerNNZ, r.ValBytesPerNNZ, 100*r.DiaNNZShare, r.ValueFormat)
	}
	tw.Flush()
}

// FormatCSV emits machine,matrix,config,time_us,gflops,speedup,
// idx_bytes_per_nnz,val_bytes_per_nnz,dia_nnz_share,value_format rows.
func FormatCSV(w io.Writer, machine string, rowsIn []FormatRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "config", "time_us", "gflops", "speedup",
		"idx_bytes_per_nnz", "val_bytes_per_nnz", "dia_nnz_share", "value_format"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, r.Matrix, r.Config, f(r.TimeUs), f(r.GFlops), f(r.Speedup),
			f(r.IdxBytesPerNNZ), f(r.ValBytesPerNNZ), f(r.DiaNNZShare), r.ValueFormat,
		})
	}
	return writeAll(cw, rows)
}
