package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/server"

	haspmvcore "haspmv/internal/core"
)

// ServeRow is one closed-loop serving measurement: a fixed population of
// clients, each issuing its next request as soon as the previous answer
// arrives, against either uncoordinated per-request Computes ("solo") or
// the dynamic batcher ("coalesced", one row per linger setting).
type ServeRow struct {
	Mode     string // "solo" or "coalesced"
	LingerUs float64
	Clients  int
	Requests int
	WallMs   float64
	// RPS is completed requests per second of wall time.
	RPS float64
	// P50Us/P99Us are client-observed request latencies.
	P50Us float64
	P99Us float64
	// MeanBatch is the average flush width (1 for solo serving).
	MeanBatch float64
	// QueueUs/LingerStageUs/ComputeUs/MergeUs are the batcher's mean
	// per-request stage attribution (zero for solo serving, which has no
	// batcher): the four stages partition each served request's
	// queue-to-release lifetime exactly.
	QueueUs, LingerStageUs, ComputeUs, MergeUs float64
}

// StageSumUs is the mean stage-attributed request lifetime; for
// coalesced rows it reconstructs the batcher-observed latency (client
// observations add only submit/wakeup overhead on top).
func (r ServeRow) StageSumUs() float64 {
	return r.QueueUs + r.LingerStageUs + r.ComputeUs + r.MergeUs
}

// ServeSweep prepares one representative matrix, precomputes serial
// Multiply references, and measures solo serving plus coalesced serving
// at each linger. Every response is compared bit-for-bit against the
// serial reference — a mismatch is an error, since the serving layer
// promises coalescing never changes a result.
func ServeSweep(cfg Config, m *amp.Machine, matrix string, clients, perClient int, lingers []time.Duration) ([]ServeRow, error) {
	if clients < 1 {
		clients = 64
	}
	if perClient < 1 {
		perClient = 6
	}
	if len(lingers) == 0 {
		lingers = []time.Duration{200 * time.Microsecond}
	}
	a := gen.Representative(matrix, cfg.RepScale)
	prep, err := haspmvcore.New(haspmvcore.Options{}).Prepare(m, a)
	if err != nil {
		return nil, err
	}

	const patterns = 8
	X := make([][]float64, patterns)
	refs := make([][]float64, patterns)
	for p := 0; p < patterns; p++ {
		X[p] = make([]float64, a.Cols)
		for i := range X[p] {
			X[p][i] = 1 + float64((i+3*p)%11)/11
		}
		refs[p] = make([]float64, a.Rows)
		prep.Compute(refs[p], X[p])
	}

	// run drives the closed loop: clients goroutines, each submitting
	// perClient requests back to back through submit and checking every
	// answer against the serial reference.
	run := func(submit func(y, x []float64) error) (wall time.Duration, lat []time.Duration, err error) {
		lat = make([]time.Duration, clients*perClient)
		errCh := make(chan error, clients)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				y := make([]float64, a.Rows)
				<-start
				for j := 0; j < perClient; j++ {
					p := (g + j) % patterns
					t0 := time.Now()
					if err := submit(y, X[p]); err != nil {
						errCh <- err
						return
					}
					lat[g*perClient+j] = time.Since(t0)
					for i := range y {
						if y[i] != refs[p][i] {
							errCh <- fmt.Errorf("client %d request %d: y[%d] = %x, serial Multiply gives %x",
								g, j, i, y[i], refs[p][i])
							return
						}
					}
				}
			}(g)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		wall = time.Since(t0)
		select {
		case err = <-errCh:
		default:
		}
		return wall, lat, err
	}

	row := func(mode string, lingerUs float64, wall time.Duration, lat []time.Duration, meanBatch float64) ServeRow {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		n := len(lat)
		r := ServeRow{
			Mode: mode, LingerUs: lingerUs, Clients: clients, Requests: n,
			WallMs:    float64(wall.Nanoseconds()) / 1e6,
			P50Us:     float64(lat[n/2].Nanoseconds()) / 1e3,
			P99Us:     float64(lat[n*99/100].Nanoseconds()) / 1e3,
			MeanBatch: meanBatch,
		}
		if s := wall.Seconds(); s > 0 {
			r.RPS = float64(n) / s
		}
		return r
	}

	// Solo baseline: each client calls Compute directly, no coordination
	// — what serving looks like without the batcher.
	wall, lat, err := run(func(y, x []float64) error {
		prep.Compute(y, x)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []ServeRow{row("solo", 0, wall, lat, 1)}

	for _, linger := range lingers {
		l := linger
		if l <= 0 {
			l = server.ExplicitZeroLinger
		}
		b := server.NewBatcher(prep, server.BatcherOptions{Linger: l})
		wall, lat, err := run(func(y, x []float64) error {
			_, err := b.Submit(context.Background(), y, x)
			return err
		})
		st := b.Stats()
		b.Close()
		if err != nil {
			return nil, err
		}
		r := row("coalesced", float64(linger.Nanoseconds())/1e3, wall, lat, st.MeanOccupancy())
		means := st.StageMeans()
		r.QueueUs, r.LingerStageUs, r.ComputeUs, r.MergeUs =
			means[0]/1e3, means[1]/1e3, means[2]/1e3, means[3]/1e3
		rows = append(rows, r)
	}
	return rows, nil
}

// ServeSpeedup returns coalesced-over-solo throughput for the best
// coalesced row of a sweep (0 if the sweep lacks either mode).
func ServeSpeedup(rows []ServeRow) float64 {
	solo, best := 0.0, 0.0
	for _, r := range rows {
		switch r.Mode {
		case "solo":
			solo = r.RPS
		case "coalesced":
			if r.RPS > best {
				best = r.RPS
			}
		}
	}
	if solo == 0 {
		return 0
	}
	return best / solo
}

// PrintServe renders a serving sweep.
func PrintServe(w io.Writer, m *amp.Machine, matrix string, nnz int, rows []ServeRow) {
	fmt.Fprintf(w, "\n# Closed-loop serving on %s (%d nnz, machine model %s used for partitioning only)\n", matrix, nnz, m.Name)
	fmt.Fprintln(w, "note: solo = concurrent uncoordinated Computes; coalesced = dynamic batcher (bit-identical responses)")
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\tlinger(us)\tclients\treq/s\tp50(us)\tp99(us)\tmean batch\tqueue(us)\tlingered(us)\tcompute(us)\tmerge(us)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Mode, r.LingerUs, r.Clients, r.RPS, r.P50Us, r.P99Us, r.MeanBatch,
			r.QueueUs, r.LingerStageUs, r.ComputeUs, r.MergeUs)
	}
	tw.Flush()
	fmt.Fprintf(w, "coalesced/solo throughput: %.2fx\n", ServeSpeedup(rows))
}

// ServeCSV emits machine,matrix,mode,linger_us,clients,requests,wall_ms,
// rps,p50_us,p99_us,mean_batch plus the mean per-request stage
// attribution (queue_us,lingered_us,compute_us,merge_us) per row.
func ServeCSV(w io.Writer, machine, matrix string, rowsIn []ServeRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "mode", "linger_us", "clients", "requests", "wall_ms", "rps", "p50_us", "p99_us", "mean_batch", "queue_us", "lingered_us", "compute_us", "merge_us"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, matrix, r.Mode, f(r.LingerUs), d(r.Clients), d(r.Requests),
			f(r.WallMs), f(r.RPS), f(r.P50Us), f(r.P99Us), f(r.MeanBatch),
			f(r.QueueUs), f(r.LingerStageUs), f(r.ComputeUs), f(r.MergeUs),
		})
	}
	return writeAll(cw, rows)
}
