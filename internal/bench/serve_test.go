package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
)

// TestServeSweepSmall exercises the sweep end to end on a small matrix:
// both modes run, responses are verified bit-identical inside the sweep,
// and the rows render to text and CSV.
func TestServeSweepSmall(t *testing.T) {
	cfg := TestConfig()
	m := amp.IntelI912900KF()
	rows, err := ServeSweep(cfg, m, "dawson5", 8, 3, []time.Duration{0, 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("ServeSweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want solo + 2 coalesced", len(rows))
	}
	if rows[0].Mode != "solo" || rows[1].Mode != "coalesced" || rows[2].Mode != "coalesced" {
		t.Fatalf("row modes %q %q %q", rows[0].Mode, rows[1].Mode, rows[2].Mode)
	}
	for _, r := range rows {
		if r.Requests != 8*3 {
			t.Fatalf("%s: %d requests, want 24", r.Mode, r.Requests)
		}
		if r.RPS <= 0 || r.P50Us <= 0 || r.P99Us < r.P50Us {
			t.Fatalf("%s: implausible row %+v", r.Mode, r)
		}
		// Stage attribution: solo has no batcher so no stages; coalesced
		// rows must attribute each request's lifetime to the four stages,
		// with a nonzero compute share and a sum that stays within the
		// client-observed latency envelope (client observations add only
		// submit/wakeup overhead on top of the batcher's accounting).
		if r.Mode == "solo" {
			if r.StageSumUs() != 0 {
				t.Fatalf("solo row has stage attribution %+v", r)
			}
			continue
		}
		if r.ComputeUs <= 0 {
			t.Fatalf("coalesced row attributes no compute time: %+v", r)
		}
		if sum := r.StageSumUs(); sum <= 0 || sum > r.P99Us*1.10 {
			t.Fatalf("coalesced stage sum %.0fus outside (0, p99 %.0fus + 10%%]: %+v", sum, r.P99Us, r)
		}
	}

	var buf bytes.Buffer
	a := gen.Representative("dawson5", cfg.RepScale)
	PrintServe(&buf, m, "dawson5", a.NNZ(), rows)
	if !strings.Contains(buf.String(), "coalesced/solo throughput") {
		t.Fatalf("PrintServe output missing summary:\n%s", buf.String())
	}
	buf.Reset()
	if err := ServeCSV(&buf, m.Name, "dawson5", rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(rows)+1)
	}
}

// TestServeCoalescingThroughputTarget is the acceptance load test: 64
// concurrent clients on a >=1M-nnz matrix, coalesced serving must reach
// at least 1.15x the throughput of uncoordinated solo Computes, with
// every response bit-identical to serial Multiply (ServeSweep fails on
// any mismatch). shipsec1 at scale 2 keeps ~3.9M of the published 7.8M
// nonzeros; its banded structure is stream-dominated, so coalescing
// amortizes the structure stream across up to 8 requests. The generated
// matrix's bands are perfectly contiguous, so auto format selection now
// runs it on diagonal run descriptors through the contiguous single-run
// kernels — that shrank the shareable index stream from 4 to ~0.9 bytes
// per nonzero and sped solo compute up, so the coalescing headroom that
// once measured well past 2x is down to ~1.3x standalone and close to
// the gate when the whole suite loads the host, hence best-of-3 at
// 1.15x (webbase-1M's gather-heavy profile is similarly close, too
// noisy to gate higher on).
func TestServeCoalescingThroughputTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in -short mode")
	}
	cfg := DefaultConfig()
	cfg.RepScale = 2
	a := gen.Representative("shipsec1", cfg.RepScale)
	if nnz := a.NNZ(); nnz < 1_000_000 {
		t.Fatalf("load-test matrix has %d nnz, need >= 1M", nnz)
	}
	m := amp.IntelI912900KF()

	// Best of three attempts to damp scheduler noise on loaded hosts;
	// the margin over the gate is real but not far larger than
	// run-to-run variance now that descriptors thinned the shareable
	// stream.
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := ServeSweep(cfg, m, "shipsec1", 64, 4, []time.Duration{200 * time.Microsecond})
		if err != nil {
			t.Fatalf("ServeSweep attempt %d: %v", attempt, err)
		}
		s := ServeSpeedup(rows)
		t.Logf("attempt %d: %+v speedup %.2fx", attempt, rows, s)
		if s > best {
			best = s
		}
		if best >= 1.15 {
			break
		}
	}
	if best < 1.15 {
		t.Fatalf("coalesced serving reached only %.2fx of solo throughput, want >= 1.15x", best)
	}
}
