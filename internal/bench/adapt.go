package bench

import (
	"encoding/csv"
	"fmt"
	"io"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"

	haspmvcore "haspmv/internal/core"
)

// Miscalibrate returns a copy of m whose Performance group the planner
// believes is slower (factor > 1) or faster (factor < 1) than it really
// is: frequency and every bandwidth figure are divided by factor. The
// true machine stays untouched — the copy stands in for a stale or wrong
// calibration driving the static partition, the scenario the online
// adapter exists to recover from.
func Miscalibrate(m *amp.Machine, factor float64) *amp.Machine {
	mis := *m
	g := &mis.Groups[0]
	g.FreqGHz /= factor
	g.MemBWGBps /= factor
	g.GroupMemBWGBps /= factor
	g.L1BPC /= factor
	g.L2BPC /= factor
	g.L3BPC /= factor
	return &mis
}

// AdaptRow is one multiply of an adaptation trajectory, priced on the
// true machine model.
type AdaptRow struct {
	Step       int
	Proportion float64
	GFlops     float64
	Imbalance  float64
	Rebalances int64
	Rollbacks  int64
}

// AdaptResult is one matrix's recovery story: the static plan built from
// a miscalibrated machine description, the oracle (exhaustively tuned
// proportion on the true machine), and the adapter's trajectory between
// them.
type AdaptResult struct {
	Machine string
	Matrix  string
	Perturb float64
	// StaticGFlops prices the miscalibrated static plan, OracleGFlops the
	// tuned proportion, FinalGFlops the plan the adapter settled on.
	StaticGFlops float64
	OracleGFlops float64
	FinalGFlops  float64
	// Recovered is FinalGFlops / OracleGFlops.
	Recovered float64
	Rows      []AdaptRow
}

// AdaptSweep runs the closed loop for one matrix: partition with a
// proportion derived from a machine description whose P-group speed is
// wrong by perturb, then let an Adapter observe the simulator's per-core
// times on the TRUE machine for steps multiplies, repartitioning as it
// goes. Deterministic end to end — the cost model plays the asymmetric
// hardware — so trajectories are reproducible and benchstat-able.
func AdaptSweep(cfg Config, m *amp.Machine, matrix string, perturb float64, steps int) (*AdaptResult, error) {
	if steps <= 0 {
		steps = 10
	}
	a := gen.Representative(matrix, cfg.RepScale)
	misProp := haspmvcore.ProportionFor(Miscalibrate(m, perturb), a)
	prep, err := haspmvcore.New(haspmvcore.Options{PProportion: misProp}).Prepare(m, a)
	if err != nil {
		return nil, err
	}
	hp := prep.(*haspmvcore.Prepared)

	flops := 2 * float64(a.NNZ())
	res := &AdaptResult{
		Machine: m.Name, Matrix: matrix, Perturb: perturb,
		StaticGFlops: exec.Simulate(m, cfg.Params, a, hp).GFlops,
	}
	_, oracleSec, err := haspmvcore.TuneProportion(m, cfg.Params, a, haspmvcore.Options{}, 0.005)
	if err != nil {
		return nil, err
	}
	res.OracleGFlops = flops / oracleSec / 1e9

	ad := haspmvcore.NewAdapter(hp, haspmvcore.AdapterOptions{Every: 1})
	res.Rows = append(res.Rows, AdaptRow{Step: 0, Proportion: misProp, GFlops: res.StaticGFlops})
	var ns []int64
	for step := 1; step <= steps; step++ {
		ns = exec.SimulateSpans(m, cfg.Params, a, hp, ns)
		ad.ObserveSpans(ns)
		st := ad.Stats()
		res.Rows = append(res.Rows, AdaptRow{
			Step:       step,
			Proportion: st.Proportion,
			GFlops:     exec.Simulate(m, cfg.Params, a, hp).GFlops,
			Imbalance:  st.Imbalance,
			Rebalances: st.Rebalances,
			Rollbacks:  st.Rollbacks,
		})
	}
	res.FinalGFlops = res.Rows[len(res.Rows)-1].GFlops
	if res.OracleGFlops > 0 {
		res.Recovered = res.FinalGFlops / res.OracleGFlops
	}
	return res, nil
}

// PrintAdapt renders one recovery trajectory.
func PrintAdapt(w io.Writer, r *AdaptResult) {
	fmt.Fprintf(w, "\n# Adaptive repartitioning on %s / %s (P-group calibration off by %.2gx)\n",
		r.Machine, r.Matrix, r.Perturb)
	fmt.Fprintf(w, "static %.2f GFlops -> adapted %.2f GFlops (oracle %.2f, %.1f%% recovered)\n",
		r.StaticGFlops, r.FinalGFlops, r.OracleGFlops, 100*r.Recovered)
	tw := newTable(w)
	fmt.Fprintln(tw, "step\tproportion\tGFlops\timbalance\trebalances\trollbacks")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.2f\t%.3f\t%d\t%d\n",
			row.Step, row.Proportion, row.GFlops, row.Imbalance, row.Rebalances, row.Rollbacks)
	}
	tw.Flush()
}

// AdaptCSV emits machine,matrix,perturb,step,proportion,gflops,imbalance,
// rebalances,rollbacks rows plus a summary row per sweep.
func AdaptCSV(w io.Writer, results []*AdaptResult) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "perturb", "step", "proportion", "gflops", "imbalance", "rebalances", "rollbacks"}}
	for _, r := range results {
		for _, row := range r.Rows {
			rows = append(rows, []string{
				r.Machine, r.Matrix, f(r.Perturb), d(row.Step), f(row.Proportion),
				f(row.GFlops), f(row.Imbalance), d(int(row.Rebalances)), d(int(row.Rollbacks)),
			})
		}
	}
	return writeAll(cw, rows)
}
