package bench

import (
	"fmt"
	"io"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/gen"
)

// EnergyRow compares the modeled energy of every method on one matrix —
// an extension experiment beyond the paper's evaluation (energy
// efficiency motivates AMPs; the paper optimizes time only).
type EnergyRow struct {
	Machine string
	Matrix  string
	// MillijoulesPerOp and GFlopsPerWatt map method name -> figures.
	MillijoulesPerOp map[string]float64
	GFlopsPerWatt    map[string]float64
}

// ExtEnergy runs the method set over a subset of the representative
// matrices and reports energy per SpMV and efficiency.
func ExtEnergy(cfg Config) ([]EnergyRow, error) {
	matrices := []string{"webbase-1M", "shipsec1", "rma10", "cant", "mip1", "cop20k_A"}
	var rows []EnergyRow
	for _, m := range cfg.Machines {
		algs := AlgorithmsFor(m)
		for _, name := range matrices {
			a := gen.Representative(name, cfg.RepScale)
			row := EnergyRow{
				Machine:          m.Name,
				Matrix:           name,
				MillijoulesPerOp: map[string]float64{},
				GFlopsPerWatt:    map[string]float64{},
			}
			for _, alg := range algs {
				r, err := simulate(m, cfg.Params, alg, a)
				if err != nil {
					return nil, err
				}
				e := costmodel.EstimateEnergy(m, r)
				row.MillijoulesPerOp[alg.Name()] = 1e3 * e.Joules
				row.GFlopsPerWatt[alg.Name()] = e.GFlopsPerWatt
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintExtEnergy renders the energy comparison grouped by machine.
func PrintExtEnergy(w io.Writer, rows []EnergyRow) {
	cur := ""
	tw := newTable(w)
	var names []string
	for _, r := range rows {
		if r.Machine != cur {
			if cur != "" {
				tw.Flush()
			}
			cur = r.Machine
			fmt.Fprintf(w, "\n# Extension — modeled energy per SpMV on %s (GFlops/W)\n", cur)
			tw = newTable(w)
			names = names[:0]
			for name := range r.GFlopsPerWatt {
				names = append(names, name)
			}
			fmt.Fprint(tw, "matrix")
			for _, n := range names {
				fmt.Fprintf(tw, "\t%s", n)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprintf(tw, "%s", r.Matrix)
		for _, n := range names {
			fmt.Fprintf(tw, "\t%.2f", r.GFlopsPerWatt[n])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// EnergyMachines trims the config to the Intel machines where the P/E
// power asymmetry makes the experiment interesting; exported for the CLI.
func EnergyMachines(cfg Config) Config {
	var ms []*amp.Machine
	for _, m := range cfg.Machines {
		if !isAMD(m) {
			ms = append(ms, m)
		}
	}
	if len(ms) > 0 {
		cfg.Machines = ms
	}
	return cfg
}
