package bench

import (
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
	"haspmv/internal/stats"

	"haspmv/internal/baselines/csr5"
	"haspmv/internal/baselines/mergespmv"
	"haspmv/internal/baselines/vendorlike"
	haspmvcore "haspmv/internal/core"
)

// ---------------------------------------------------------------- Figure 8

// Fig8Result is the corpus-wide comparison on one machine.
type Fig8Result struct {
	Machine string
	// Baselines holds one summary per competitor: the distribution of
	// t_baseline / t_HASpMV over the corpus (the paper's "average
	// speedup of 2.61x, up to 5.23x" numbers).
	Baselines map[string]stats.SpeedupSummary
	// Scatter records (nnz, GFlops) per algorithm for plotting.
	Scatter map[string][]Fig4Point
}

// Fig8 compares HASpMV against the vendor library, CSR5 and Merge-SpMV
// over the corpus on every machine.
func Fig8(cfg Config) ([]Fig8Result, error) {
	specs := cfg.corpus()
	out := make([]Fig8Result, len(cfg.Machines))
	speedups := make([]map[string][]float64, len(cfg.Machines))
	for mi, m := range cfg.Machines {
		out[mi] = Fig8Result{
			Machine:   m.Name,
			Baselines: map[string]stats.SpeedupSummary{},
			Scatter:   map[string][]Fig4Point{},
		}
		speedups[mi] = map[string][]float64{}
	}
	// Generate each matrix once; price it with every method on every
	// machine.
	for _, sp := range specs {
		a := sp.Generate()
		for mi, m := range cfg.Machines {
			algs := AlgorithmsFor(m)
			res := &out[mi]
			times := make([]float64, len(algs))
			for i, alg := range algs {
				r, err := simulate(m, cfg.Params, alg, a)
				if err != nil {
					return nil, err
				}
				times[i] = r.Seconds
				res.Scatter[alg.Name()] = append(res.Scatter[alg.Name()], Fig4Point{NNZ: a.NNZ(), GFlops: r.GFlops})
			}
			ha := times[0]
			if ha <= 0 {
				continue
			}
			for i := 1; i < len(algs); i++ {
				speedups[mi][algs[i].Name()] = append(speedups[mi][algs[i].Name()], times[i]/ha)
			}
		}
	}
	for mi := range out {
		for name, sp := range speedups[mi] {
			out[mi].Baselines[name] = stats.Summarize(sp)
		}
	}
	return out, nil
}

// PrintFig8 renders the speedup summaries.
func PrintFig8(w io.Writer, results []Fig8Result) {
	for _, r := range results {
		fmt.Fprintf(w, "\n# Figure 8 — HASpMV speedup over baselines, %s\n", r.Machine)
		tw := newTable(w)
		fmt.Fprintln(tw, "baseline\tavg\tgeomean\tmedian\tmax\tmin\twin-rate\tn")
		for name, s := range r.Baselines {
			fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t%.2fx\t%.0f%%\t%d\n",
				name, s.Mean, s.GeoMean, s.Median, s.Max, s.Min, 100*s.WinRate, s.N)
		}
		tw.Flush()
	}
}

// ---------------------------------------------------------------- Figure 9

// Fig9Result holds per-core execution times of HASpMV under the three
// partitioning metrics on the rma10 matrix (i9-12900KF in the paper).
type Fig9Result struct {
	Machine string
	Matrix  string
	// PerCore maps metric name -> per-core seconds.
	PerCore map[string][]float64
	// Spread maps metric name -> (max-min)/max across cores.
	Spread map[string]float64
}

// Fig9 partitions rma10 by row, by nnz and by cache-line cost and reports
// the per-core times (the flat-bars experiment).
func Fig9(cfg Config) (Fig9Result, error) {
	m := cfg.Machines[0]
	for _, cand := range cfg.Machines {
		if cand.Name == "i9-12900KF" {
			m = cand
		}
	}
	// Figure 9 needs the x vector to outgrow L1 so that per-row cache
	// behaviour differentiates the metrics; scale 1/4 keeps rma10's x at
	// ~94KB while staying fast to simulate.
	const fig9Scale = 4
	a := gen.Representative("rma10", fig9Scale)
	res := Fig9Result{
		Machine: m.Name,
		Matrix:  fmt.Sprintf("rma10@1/%d", fig9Scale),
		PerCore: map[string][]float64{},
		Spread:  map[string]float64{},
	}
	for _, metric := range []haspmvcore.CostMetric{haspmvcore.RowCost, haspmvcore.NNZCost, haspmvcore.CacheLineCost} {
		alg := haspmvcore.New(haspmvcore.Options{Metric: metric})
		r, err := simulate(m, cfg.Params, alg, a)
		if err != nil {
			return res, err
		}
		times := make([]float64, len(r.PerCore))
		for i, cc := range r.PerCore {
			times[i] = cc.Seconds
		}
		res.PerCore[metric.String()] = times
		if mx := stats.Max(times); mx > 0 {
			res.Spread[metric.String()] = (mx - stats.Min(times)) / mx
		}
	}
	return res, nil
}

// PrintFig9 renders per-core times per metric.
func PrintFig9(w io.Writer, r Fig9Result) {
	fmt.Fprintf(w, "\n# Figure 9 — per-core time on %s, %s (ms)\n", r.Matrix, r.Machine)
	tw := newTable(w)
	fmt.Fprintln(tw, "core\tby-row\tby-nnz\tby-cacheline")
	row := r.PerCore["row"]
	nnz := r.PerCore["nnz"]
	cl := r.PerCore["cacheline"]
	for i := range cl {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", i, 1e3*row[i], 1e3*nnz[i], 1e3*cl[i])
	}
	tw.Flush()
	fmt.Fprintf(w, "spread (max-min)/max: row %.2f, nnz %.2f, cacheline %.2f\n",
		r.Spread["row"], r.Spread["nnz"], r.Spread["cacheline"])
}

// ---------------------------------------------------------------- Figure 10

// Fig10Row is the preprocessing cost of every method on one matrix.
type Fig10Row struct {
	Matrix string
	NNZ    int
	// Millis maps method name -> wall-clock preprocessing milliseconds
	// (real host time of our implementations, as in the paper).
	Millis map[string]float64
}

// Fig10 measures Prepare() wall time of all five methods over the 22
// representative matrices.
func Fig10(cfg Config, m *amp.Machine) ([]Fig10Row, error) {
	vendor := vendorlike.New(vendorlike.MKL, amp.PAndE)
	if isAMD(m) {
		vendor = vendorlike.New(vendorlike.AOCL, amp.PAndE)
	}
	// Reference index mode: Figure 10 reproduces the paper's
	// preprocessing cost, and the paper's pipeline has no stream build
	// (the compressed-stream build cost shows up in -exp phases instead).
	algs := []exec.Algorithm{
		haspmvcore.New(haspmvcore.Options{Index: haspmvcore.IndexReference}),
		vendor,
		csr5.New(amp.PAndE),
		mergespmv.New(amp.PAndE),
	}
	var rows []Fig10Row
	for _, ri := range gen.SortedRepresentativeByNNZ() {
		a := gen.Representative(ri.Name, cfg.RepScale)
		row := Fig10Row{Matrix: ri.Name, NNZ: a.NNZ(), Millis: map[string]float64{}}
		for _, alg := range algs {
			best := time.Duration(1 << 62)
			for trial := 0; trial < 3; trial++ {
				_, d, err := exec.TimePrepare(alg, m, a)
				if err != nil {
					return nil, err
				}
				if d < best {
					best = d
				}
			}
			row.Millis[alg.Name()] = float64(best.Microseconds()) / 1e3
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig10 renders the preprocessing table.
func PrintFig10(w io.Writer, m *amp.Machine, rows []Fig10Row) {
	fmt.Fprintf(w, "\n# Figure 10 — preprocessing time on %s (ms, best of 3)\n", m.Name)
	if len(rows) == 0 {
		return
	}
	var names []string
	for name := range rows[0].Millis {
		names = append(names, name)
	}
	tw := newTable(w)
	fmt.Fprint(tw, "matrix\tnnz")
	for _, n := range names {
		fmt.Fprintf(tw, "\t%s", n)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d", r.Matrix, r.NNZ)
		for _, n := range names {
			fmt.Fprintf(tw, "\t%.3f", r.Millis[n])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Figure 11

// Fig11Row is the modeled GFlops of each method on one representative
// matrix and machine.
type Fig11Row struct {
	Machine string
	Matrix  string
	GFlops  map[string]float64
	// Winner is the fastest method's name.
	Winner string
}

// Fig11 runs the full method set over the 22 representative matrices on
// the Intel and the X3D machines (the three subplots of the figure).
func Fig11(cfg Config) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, m := range cfg.Machines {
		if m.Name == "7950X" {
			continue // the figure shows 12900KF, 13900KF and the X3D
		}
		algs := AlgorithmsFor(m)
		for _, ri := range gen.SortedRepresentativeByNNZ() {
			a := gen.Representative(ri.Name, cfg.RepScale)
			row := Fig11Row{Machine: m.Name, Matrix: ri.Name, GFlops: map[string]float64{}}
			best := 0.0
			for _, alg := range algs {
				r, err := simulate(m, cfg.Params, alg, a)
				if err != nil {
					return nil, err
				}
				row.GFlops[alg.Name()] = r.GFlops
				if r.GFlops > best {
					best = r.GFlops
					row.Winner = alg.Name()
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFig11 renders the per-matrix comparison grouped by machine.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	cur := ""
	var tw = newTable(w)
	var names []string
	for _, r := range rows {
		if r.Machine != cur {
			if cur != "" {
				tw.Flush()
			}
			cur = r.Machine
			fmt.Fprintf(w, "\n# Figure 11 — representative matrices on %s (GFlops)\n", cur)
			tw = newTable(w)
			names = names[:0]
			for name := range r.GFlops {
				names = append(names, name)
			}
			fmt.Fprint(tw, "matrix")
			for _, n := range names {
				fmt.Fprintf(tw, "\t%s", n)
			}
			fmt.Fprintln(tw, "\twinner")
		}
		fmt.Fprintf(tw, "%s", r.Matrix)
		for _, n := range names {
			fmt.Fprintf(tw, "\t%.2f", r.GFlops[n])
		}
		fmt.Fprintf(tw, "\t%s\n", r.Winner)
	}
	tw.Flush()
}

// repMatrix generates one representative matrix honoring the configured
// scale; exposed for the root-level benchmarks.
func (c Config) RepMatrix(name string) *sparse.CSR {
	return gen.Representative(name, c.RepScale)
}
