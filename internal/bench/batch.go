package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"

	haspmvcore "haspmv/internal/core"
)

// BatchRow is the host wall-clock of one batch width: the fused
// multi-vector path (register-blocked kernels, one index-stream pass per
// block of vectors) against nv repeated single-vector multiplies.
type BatchRow struct {
	NV         int
	FusedUs    float64
	RepeatedUs float64
	// GFlops counts 2*nnz*nv flops over the fused time.
	FusedGFlops    float64
	RepeatedGFlops float64
	// Speedup is RepeatedUs / FusedUs.
	Speedup float64
}

// BatchThroughput measures real host wall-clock of HASpMV's fused batch
// path on one representative matrix across batch widths. The same host
// caveat as HostCompare applies: symmetric host cores show algorithmic
// gains (here, index-stream amortization), not AMP behaviour.
func BatchThroughput(cfg Config, m *amp.Machine, matrix string, nvs []int, reps int) ([]BatchRow, error) {
	if reps < 1 {
		reps = 5
	}
	if len(nvs) == 0 {
		nvs = []int{1, 2, 4, 8, 16}
	}
	a := gen.Representative(matrix, cfg.RepScale)
	alg := haspmvcore.New(haspmvcore.Options{})
	prep, err := alg.Prepare(m, a)
	if err != nil {
		return nil, err
	}
	maxNV := 0
	for _, nv := range nvs {
		if nv > maxNV {
			maxNV = nv
		}
	}
	X := make([][]float64, maxNV)
	Y := make([][]float64, maxNV)
	for v := range X {
		X[v] = make([]float64, a.Cols)
		for i := range X[v] {
			X[v][i] = 1 + float64((i+v)%7)/7
		}
		Y[v] = make([]float64, a.Rows)
	}
	bestOf := func(f func()) time.Duration {
		f() // warm up (scratch pools, worker pool)
		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var rows []BatchRow
	for _, nv := range nvs {
		nv := nv
		fused := bestOf(func() { exec.ComputeBatch(prep, Y[:nv], X[:nv]) })
		repeated := bestOf(func() {
			for v := 0; v < nv; v++ {
				prep.Compute(Y[v], X[v])
			}
		})
		flops := 2 * float64(a.NNZ()) * float64(nv)
		row := BatchRow{
			NV:         nv,
			FusedUs:    float64(fused.Nanoseconds()) / 1e3,
			RepeatedUs: float64(repeated.Nanoseconds()) / 1e3,
		}
		if s := fused.Seconds(); s > 0 {
			row.FusedGFlops = flops / s / 1e9
			row.Speedup = repeated.Seconds() / s
		}
		if s := repeated.Seconds(); s > 0 {
			row.RepeatedGFlops = flops / s / 1e9
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintBatch renders the batch-width sweep.
func PrintBatch(w io.Writer, m *amp.Machine, matrix string, rows []BatchRow) {
	fmt.Fprintf(w, "\n# Batch SpMV on %s (machine model %s used for partitioning only)\n", matrix, m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show index-stream amortization, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "nv\tfused(us)\trepeated(us)\tfused GFlops\trepeated GFlops\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.2fx\n",
			r.NV, r.FusedUs, r.RepeatedUs, r.FusedGFlops, r.RepeatedGFlops, r.Speedup)
	}
	tw.Flush()
}

// BatchCSV emits machine,matrix,nv,fused_us,repeated_us,fused_gflops,
// repeated_gflops,speedup rows.
func BatchCSV(w io.Writer, machine, matrix string, rowsIn []BatchRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "nv", "fused_us", "repeated_us", "fused_gflops", "repeated_gflops", "speedup"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, matrix, d(r.NV), f(r.FusedUs), f(r.RepeatedUs),
			f(r.FusedGFlops), f(r.RepeatedGFlops), f(r.Speedup),
		})
	}
	return writeAll(cw, rows)
}
