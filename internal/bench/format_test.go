package bench

import (
	"bytes"
	"strings"
	"testing"

	"haspmv/internal/amp"
)

func TestFormatSweepBattery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepScale = 256
	m := amp.IntelI912900KF()
	rows, err := FormatSweep(cfg, m, "rma10", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d rows, want 3 matrices x 5 configs", len(rows))
	}
	byKey := map[string]FormatRow{}
	for _, r := range rows {
		byKey[r.Matrix+"/"+r.Config] = r
		if r.TimeUs <= 0 || r.GFlops <= 0 || r.Speedup <= 0 {
			t.Errorf("%s/%s: non-positive measurement %+v", r.Matrix, r.Config, r)
		}
	}

	// The stencil is near-perfectly diagonal: auto and forced-dia must
	// execute (almost) everything from run descriptors and stream far
	// fewer index bytes than u32's flat 4/nnz; the defect rows ride the
	// u32 fallback. Continuous values keep the palette out.
	sten := byKey["stencil9/auto"]
	if sten.DiaNNZShare < 0.9 {
		t.Errorf("stencil auto dia share = %v, want >= 0.9", sten.DiaNNZShare)
	}
	if sten.IdxBytesPerNNZ >= 2 {
		t.Errorf("stencil auto idx bytes/nnz = %v, want < 2 (descriptors beat u16)", sten.IdxBytesPerNNZ)
	}
	if sten.ValueFormat != "f64" {
		t.Errorf("stencil auto value stream = %s, want f64 (continuous values)", sten.ValueFormat)
	}
	if dia := byKey["stencil9/dia"]; dia.DiaNNZShare < 0.9 {
		t.Errorf("stencil forced-dia share = %v, want >= 0.9", dia.DiaNNZShare)
	}

	// The 0/1 graph has exactly one distinct value: the palette engages
	// under both auto and the palette config (1 byte/nnz + the 8-byte
	// table), while its scattered columns keep the diagonal format out.
	g := byKey["graph01/palette"]
	if g.ValueFormat != "palette" {
		t.Errorf("graph01 palette value stream = %s, want palette", g.ValueFormat)
	}
	if g.ValBytesPerNNZ >= 1.5 {
		t.Errorf("graph01 palette val bytes/nnz = %v, want ~1", g.ValBytesPerNNZ)
	}
	if ga := byKey["graph01/auto"]; ga.ValueFormat != "palette" || ga.DiaNNZShare > 0.05 {
		t.Errorf("graph01 auto: value %s dia share %v, want palette with ~no dia", ga.ValueFormat, ga.DiaNNZShare)
	}
	if gi := byKey["graph01/int"]; gi.ValueFormat != "f64" || gi.IdxBytesPerNNZ != 8 {
		t.Errorf("graph01 int reference: %+v, want f64 at 8 idx bytes", gi)
	}

	// Reference speedups are exactly 1 by construction.
	for _, mx := range []string{"stencil9", "graph01", "rma10"} {
		if s := byKey[mx+"/int"].Speedup; s != 1 {
			t.Errorf("%s int speedup = %v, want exactly 1", mx, s)
		}
	}

	var out bytes.Buffer
	PrintFormat(&out, m, rows)
	if !strings.Contains(out.String(), "dia nnz share") {
		t.Fatalf("report missing header:\n%s", out.String())
	}
	out.Reset()
	if err := FormatCSV(&out, m.Name, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 16 {
		t.Fatalf("CSV has %d lines, want header + 15 rows:\n%s", lines, out.String())
	}
}
