package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/gen"

	haspmvcore "haspmv/internal/core"
)

// IndexRow is the host wall-clock of one index-stream mode executing the
// identical partition: []int reference, u32 absolute, and auto (u16
// deltas where the rows permit, u32 elsewhere).
type IndexRow struct {
	Mode   string
	TimeUs float64
	GFlops float64
	// Speedup is the []int reference time over this mode's time.
	Speedup float64
	// IdxBytesPerNNZ is the average index bytes one multiply streams per
	// nonzero under this mode's region formats.
	IdxBytesPerNNZ float64
	// U16NNZShare is the fraction of assigned nonzeros executed from the
	// u16-delta stream.
	U16NNZShare float64
}

// IndexSweep measures real host wall-clock of the compressed-index
// execution streams on one representative matrix. The P-proportion and
// row-length base are pinned across modes so every mode executes the
// exact same partition — the sweep isolates index-stream width, which is
// the point: SpMV is stream bound, and narrowing the 8-byte []int
// indices to 4 or 2 bytes cuts the dominant traffic term. The same host
// caveat as HostCompare applies: symmetric host cores show the traffic
// effect, not AMP behaviour.
func IndexSweep(cfg Config, m *amp.Machine, matrix string, reps int) ([]IndexRow, error) {
	if reps < 1 {
		reps = 5
	}
	a := gen.Representative(matrix, cfg.RepScale)
	prop := haspmvcore.ProportionFor(m, a)
	base := haspmvcore.AutoBase(a)
	modes := []struct {
		name string
		mode haspmvcore.IndexMode
	}{
		{"int", haspmvcore.IndexReference},
		{"u32", haspmvcore.IndexU32},
		{"auto", haspmvcore.IndexAuto},
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, a.Rows)
	flops := 2 * float64(a.NNZ())
	var rows []IndexRow
	refSec := 0.0
	for _, md := range modes {
		alg := haspmvcore.New(haspmvcore.Options{PProportion: prop, Base: base, Index: md.mode})
		prep, err := alg.Prepare(m, a)
		if err != nil {
			return nil, fmt.Errorf("mode %s: %w", md.name, err)
		}
		prep.Compute(y, x) // warm up (scratch pools, worker pool)
		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			prep.Compute(y, x)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		st := prep.(*haspmvcore.Prepared).IndexStats()
		row := IndexRow{Mode: md.name, TimeUs: float64(best.Nanoseconds()) / 1e3}
		if nnz := a.NNZ(); nnz > 0 {
			row.IdxBytesPerNNZ = float64(st.StreamIndexBytes) / float64(nnz)
			row.U16NNZShare = float64(st.NNZByFormat[haspmvcore.Index16]) / float64(nnz)
		}
		if s := best.Seconds(); s > 0 {
			row.GFlops = flops / s / 1e9
			if md.name == "int" {
				refSec = s
			}
			row.Speedup = refSec / s
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintIndex renders the index-stream mode sweep.
func PrintIndex(w io.Writer, m *amp.Machine, matrix string, rows []IndexRow) {
	fmt.Fprintf(w, "\n# Index-stream SpMV on %s (machine model %s used for partitioning only)\n", matrix, m.Name)
	fmt.Fprintln(w, "note: host cores are symmetric; these numbers show index-traffic reduction, not AMP behaviour")
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\ttime(us)\tGFlops\tspeedup vs int\tidx B/nnz\tu16 nnz share")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2fx\t%.2f\t%.1f%%\n",
			r.Mode, r.TimeUs, r.GFlops, r.Speedup, r.IdxBytesPerNNZ, 100*r.U16NNZShare)
	}
	tw.Flush()
}

// IndexCSV emits machine,matrix,mode,time_us,gflops,speedup,
// idx_bytes_per_nnz,u16_nnz_share rows.
func IndexCSV(w io.Writer, machine, matrix string, rowsIn []IndexRow) error {
	cw := csv.NewWriter(w)
	rows := [][]string{{"machine", "matrix", "mode", "time_us", "gflops", "speedup", "idx_bytes_per_nnz", "u16_nnz_share"}}
	for _, r := range rowsIn {
		rows = append(rows, []string{
			machine, matrix, r.Mode, f(r.TimeUs), f(r.GFlops),
			f(r.Speedup), f(r.IdxBytesPerNNZ), f(r.U16NNZShare),
		})
	}
	return writeAll(cw, rows)
}
