// Package gen synthesizes sparse matrices with controlled row-length
// distributions and column-placement patterns. It stands in for the
// SuiteSparse Matrix Collection used by the paper: the experiments in
// Figures 4, 5, 8, 10 and 11 depend on matrix scale (rows, nnz) and on the
// row-length distribution (min/avg/max, skew), which the generators control
// directly. Table II's 22 representative matrices are reproduced by name
// with matched statistics (see representative.go).
//
// All generators are deterministic for a given Spec (including its Seed),
// so experiments are repeatable across runs and machines.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"haspmv/internal/sparse"
)

// LenDist draws per-row nonzero counts.
type LenDist interface {
	// Sample returns one row length in [Min(), Max()].
	Sample(r *rand.Rand) int
	// Bounds returns the inclusive support of the distribution.
	Bounds() (min, max int)
}

// ConstLen is a degenerate distribution: every row has exactly L entries
// (e.g. conf5_4-8x8-10 with 39/row, n4c6-b7 with 8/row).
type ConstLen struct{ L int }

func (d ConstLen) Sample(*rand.Rand) int { return d.L }
func (d ConstLen) Bounds() (int, int)    { return d.L, d.L }

// UniformLen draws uniformly from [Min, Max].
type UniformLen struct{ Min, Max int }

func (d UniformLen) Sample(r *rand.Rand) int {
	return d.Min + r.Intn(d.Max-d.Min+1)
}
func (d UniformLen) Bounds() (int, int) { return d.Min, d.Max }

// NormalLen draws from a normal distribution clipped to [Min, Max];
// it models FEM matrices whose row lengths cluster around the element
// connectivity (consph, cant, shipsec1...).
type NormalLen struct {
	Mean, Std float64
	Min, Max  int
}

func (d NormalLen) Sample(r *rand.Rand) int {
	v := int(math.Round(r.NormFloat64()*d.Std + d.Mean))
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}
func (d NormalLen) Bounds() (int, int) { return d.Min, d.Max }

// PowerLen draws lengths from a truncated Pareto (power-law) distribution
// shifted so its support is [Min, Max]: most rows have close to Min
// entries, with a heavy tail of rare long rows. It models web/circuit
// matrices (webbase-1M, FullChip, circuit5M, ASIC_680k). Use NewPowerLen
// to derive the tail exponent from a target mean.
type PowerLen struct {
	Min, Max int
	// Gamma is the power-law density exponent (pdf ~ x^-Gamma on the
	// truncated support). Smaller Gamma = heavier tail / larger mean.
	Gamma float64
}

// NewPowerLen builds a PowerLen whose truncated mean equals mean, solving
// for the exponent by bisection. The paper's Table II publishes exactly
// (min, avg, max) per matrix, so this constructor maps those statistics
// straight onto a distribution.
func NewPowerLen(min, max int, mean float64) PowerLen {
	T := float64(max-min) + 1
	if T <= 1 {
		return PowerLen{Min: min, Max: max, Gamma: 3}
	}
	mhat := mean - float64(min) + 1
	// Achievable truncated means run from ~1 (gamma large) up to
	// ~(T-1)/ln T (gamma -> 1). Clamp inside that range.
	if hiMean := (T - 1) / math.Log(T); mhat > 0.99*hiMean {
		mhat = 0.99 * hiMean
	}
	if mhat < 1.01 {
		mhat = 1.01
	}
	lo, hi := 1.000001, 64.0 // mean is decreasing in gamma on this range
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if truncParetoMean(mid, T) > mhat {
			lo = mid
		} else {
			hi = mid
		}
	}
	return PowerLen{Min: min, Max: max, Gamma: (lo + hi) / 2}
}

// truncParetoMean is the mean of the pdf proportional to x^-g on [1, T].
func truncParetoMean(g, T float64) float64 {
	if math.Abs(g-2) < 1e-9 {
		g = 2 + 1e-9
	}
	if math.Abs(g-1) < 1e-9 {
		g = 1 + 1e-9
	}
	return (g - 1) / (1 - math.Pow(T, 1-g)) * (math.Pow(T, 2-g) - 1) / (2 - g)
}

func (d PowerLen) Sample(r *rand.Rand) int {
	T := float64(d.Max-d.Min) + 1
	if T <= 1 {
		return d.Min
	}
	// Exact inverse CDF of the truncated Pareto on [1, T].
	u := r.Float64()
	x := math.Pow(1-u*(1-math.Pow(T, 1-d.Gamma)), 1/(1-d.Gamma))
	l := d.Min - 1 + int(x)
	if l < d.Min {
		l = d.Min
	}
	if l > d.Max {
		l = d.Max
	}
	return l
}
func (d PowerLen) Bounds() (int, int) { return d.Min, d.Max }

// Placement selects which columns a row's nonzeros occupy.
type Placement int

const (
	// Banded places entries contiguously around the diagonal — FEM
	// discretizations (cant, consph, Dubcova2...). Excellent x locality.
	Banded Placement = iota
	// Clustered places entries in a few contiguous runs at random
	// offsets — mixed-structure matrices (rma10, mip1).
	Clustered
	// Random scatters entries uniformly over all columns — worst-case x
	// locality (G_n_pin_pout-style random graphs).
	Random
	// Skewed scatters entries with a bias toward low-numbered "hub"
	// columns, as in power-law web/circuit graphs.
	Skewed
	// Mixed picks a different pattern per row (banded, clustered or
	// scattered), producing rows with widely diverse x-cache-line costs
	// — the paper's characterization of rma10, the Figure 9 matrix.
	Mixed
)

func (p Placement) String() string {
	switch p {
	case Banded:
		return "banded"
	case Clustered:
		return "clustered"
	case Random:
		return "random"
	case Skewed:
		return "skewed"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Spec fully describes a synthetic matrix. Generating the same Spec twice
// yields identical matrices.
type Spec struct {
	Name      string
	Rows      int
	Cols      int
	TargetNNZ int // exact total nonzeros to produce (0 = whatever the dist yields)
	Dist      LenDist
	Place     Placement
	Seed      int64
	// HubRows forces this many rows (spread over the matrix) to have
	// lengths near the distribution maximum, reproducing the extreme rows
	// of matrices like ASIC_680k (max row 395K) without waiting for the
	// tail of the distribution to be hit by chance.
	HubRows int
}

// Generate materializes the matrix described by the Spec.
func (s Spec) Generate() *sparse.CSR {
	if s.Rows < 0 || s.Cols <= 0 {
		panic(fmt.Sprintf("gen: invalid spec dims %dx%d", s.Rows, s.Cols))
	}
	r := rand.New(rand.NewSource(s.Seed))
	return s.materialize(r, s.rowLengths(r))
}

// materialize builds the CSR for the given per-row lengths using the
// Spec's placement and column count (shared with the Zipf generator).
func (s Spec) materialize(r *rand.Rand, lens []int) *sparse.CSR {
	a := &sparse.CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	total := 0
	for i, l := range lens {
		total += l
		a.RowPtr[i+1] = total
	}
	a.ColIdx = make([]int, total)
	a.Val = make([]float64, total)
	scratch := make(map[int]struct{}, 256)
	for i := 0; i < s.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		s.fillRow(r, i, a.ColIdx[lo:hi], scratch)
		for k := lo; k < hi; k++ {
			// Values in (0.1, 1.1): nonzero, well-conditioned sums.
			a.Val[k] = 0.1 + r.Float64()
		}
	}
	return a
}

// rowLengths draws all row lengths, applies hub rows, and repairs the total
// to exactly TargetNNZ (when set) while respecting the distribution bounds.
func (s Spec) rowLengths(r *rand.Rand) []int {
	min, max := s.Dist.Bounds()
	if max > s.Cols {
		max = s.Cols
	}
	lens := make([]int, s.Rows)
	for i := range lens {
		l := s.Dist.Sample(r)
		if l > max {
			l = max
		}
		if l < 0 {
			l = 0
		}
		lens[i] = l
	}
	var hubs map[int]bool
	if s.HubRows > 0 && s.Rows > 0 {
		hubs = make(map[int]bool, s.HubRows)
		stride := s.Rows / s.HubRows
		if stride == 0 {
			stride = 1
		}
		for h := 0; h < s.HubRows; h++ {
			i := (h*stride + stride/2) % s.Rows
			// Hubs sit at 60–100% of the distribution max.
			lens[i] = max - r.Intn(max*2/5+1)
			hubs[i] = true
		}
	}
	if s.TargetNNZ > 0 {
		repairTotal(r, lens, s.TargetNNZ, min, max, hubs)
	}
	return lens
}

// repairTotal nudges random non-hub rows up or down within [min,max] until
// the sum of lens equals target. Steps are capped so the repair cannot
// fabricate (or destroy) outlier rows; hub rows are left untouched so the
// published maxima survive.
func repairTotal(r *rand.Rand, lens []int, target, min, max int, protected map[int]bool) {
	sum := 0
	for _, l := range lens {
		sum += l
	}
	n := len(lens)
	if n == 0 {
		return
	}
	// Feasible range given the protected rows stay fixed.
	lo, hi := 0, 0
	for i, l := range lens {
		if protected[i] {
			lo += l
			hi += l
		} else {
			lo += min
			hi += max
		}
	}
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}
	// Cap each adjustment so the repair redistributes mass without
	// inventing outliers; 1/8 of the range still converges fast.
	cap := (max - min) / 8
	if cap < 8 {
		cap = 8
	}
	for guard := 0; sum != target && guard < 200*n+1000; guard++ {
		i := r.Intn(n)
		if protected[i] {
			continue
		}
		if sum < target && lens[i] < max {
			step := target - sum
			if room := max - lens[i]; step > room {
				step = room
			}
			if step > cap {
				step = cap
			}
			if step > 4 {
				step = 1 + r.Intn(step)
			}
			lens[i] += step
			sum += step
		} else if sum > target && lens[i] > min {
			step := sum - target
			if room := lens[i] - min; step > room {
				step = room
			}
			if step > cap {
				step = cap
			}
			if step > 4 {
				step = 1 + r.Intn(step)
			}
			lens[i] -= step
			sum -= step
		}
	}
}

// fillRow writes sorted, distinct column indices for row i into dst.
func (s Spec) fillRow(r *rand.Rand, i int, dst []int, scratch map[int]struct{}) {
	l := len(dst)
	if l == 0 {
		return
	}
	switch s.Place {
	case Banded:
		start := i - l/2
		if start < 0 {
			start = 0
		}
		if start+l > s.Cols {
			start = s.Cols - l
		}
		for k := range dst {
			dst[k] = start + k
		}
	case Clustered:
		fillClustered(r, i, dst, s.Cols)
	case Random:
		sampleDistinct(r, dst, s.Cols, scratch, nil)
	case Skewed:
		sampleDistinct(r, dst, s.Cols, scratch, func(rr *rand.Rand) int {
			// Quadratic bias toward column 0: hubs receive most edges.
			u := rr.Float64()
			return int(u * u * float64(s.Cols))
		})
	case Mixed:
		switch r.Intn(3) {
		case 0:
			start := i - l/2
			if start < 0 {
				start = 0
			}
			if start+l > s.Cols {
				start = s.Cols - l
			}
			for k := range dst {
				dst[k] = start + k
			}
		case 1:
			fillClustered(r, i, dst, s.Cols)
		default:
			sampleDistinct(r, dst, s.Cols, scratch, nil)
		}
	default:
		panic("gen: unknown placement")
	}
}

// fillClustered emits the row as up to 4 contiguous runs near the diagonal,
// mimicking multi-block FEM/coupled-physics rows (rma10).
func fillClustered(r *rand.Rand, i int, dst []int, cols int) {
	l := len(dst)
	runs := 1 + r.Intn(4)
	if runs > l {
		runs = l
	}
	per := l / runs
	idx := 0
	used := make([]int, 0, runs) // run start positions, kept non-overlapping
	for run := 0; run < runs; run++ {
		n := per
		if run == runs-1 {
			n = l - idx
		}
		if n == 0 {
			continue
		}
		var start int
		for attempt := 0; ; attempt++ {
			center := i + (r.Intn(2*cols/8+1) - cols/8)
			start = center - n/2
			if start < 0 {
				start = 0
			}
			if start+n > cols {
				start = cols - n
			}
			if !overlaps(used, start, n, per) || attempt > 8 {
				break
			}
		}
		used = append(used, start)
		for k := 0; k < n; k++ {
			dst[idx] = start + k
			idx++
		}
	}
	sort.Ints(dst)
	dedupInPlaceFill(r, dst, cols)
}

func overlaps(starts []int, start, n, per int) bool {
	for _, s := range starts {
		if start < s+per+n && s < start+n+per {
			return true
		}
	}
	return false
}

// dedupInPlaceFill repairs any duplicate columns introduced by overlapping
// runs, replacing them with fresh distinct columns and re-sorting.
func dedupInPlaceFill(r *rand.Rand, dst []int, cols int) {
	seen := make(map[int]struct{}, len(dst))
	dups := 0
	for k, c := range dst {
		if _, ok := seen[c]; ok {
			dst[k] = -1
			dups++
		} else {
			seen[c] = struct{}{}
		}
	}
	if dups == 0 {
		return
	}
	for k, c := range dst {
		if c != -1 {
			continue
		}
		for {
			cand := r.Intn(cols)
			if _, ok := seen[cand]; !ok {
				seen[cand] = struct{}{}
				dst[k] = cand
				break
			}
		}
	}
	sort.Ints(dst)
}

// sampleDistinct fills dst with sorted distinct columns in [0, cols),
// drawn either uniformly (draw == nil) or by the provided biased sampler.
func sampleDistinct(r *rand.Rand, dst []int, cols int, scratch map[int]struct{}, draw func(*rand.Rand) int) {
	l := len(dst)
	if l > cols {
		panic("gen: row longer than column count")
	}
	if l*3 >= cols {
		// Dense row (hub rows of power-law graphs touch most columns):
		// partial Fisher-Yates over all columns; the bias is immaterial
		// once a row covers a third of the matrix.
		perm := r.Perm(cols)[:l]
		copy(dst, perm)
		sort.Ints(dst)
		return
	}
	if cap := len(scratch); cap > 4096 || cap < l {
		// A fresh map: clear() on a map whose capacity once grew large is
		// O(capacity), which turns per-row reuse into quadratic cost on
		// matrices with occasional huge rows (circuit5M, FullChip).
		scratch = make(map[int]struct{}, l)
	} else {
		clear(scratch)
	}
	for len(scratch) < l {
		var c int
		if draw != nil {
			c = draw(r)
			if c >= cols {
				c = cols - 1
			}
		} else {
			c = r.Intn(cols)
		}
		if _, ok := scratch[c]; !ok {
			scratch[c] = struct{}{}
		} else if draw != nil && len(scratch) >= cols*3/4 {
			// Heavily biased draws can stall near saturation; fall back
			// to uniform for the remainder.
			draw = nil
		}
	}
	k := 0
	for c := range scratch {
		dst[k] = c
		k++
	}
	sort.Ints(dst)
}
