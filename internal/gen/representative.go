package gen

import (
	"fmt"
	"sort"

	"haspmv/internal/sparse"
)

// RepInfo records the published Table II statistics for one of the 22
// representative matrices, together with the Spec that reproduces them
// synthetically.
type RepInfo struct {
	Name string
	// Published statistics from the paper's Table II.
	PaperRows, PaperNNZ int
	PaperMin, PaperMax  int
	PaperAvg            float64
	// Spec generates a matrix matching those statistics at scale 1.
	Spec Spec
}

// kilo/mega helpers keep the table legible.
func k(x float64) int { return int(x * 1e3) }
func m(x float64) int { return int(x * 1e6) }

// representative returns the full Table II roster. Each entry's Spec is
// constructed so that rows, nnz and the min/avg/max row lengths match the
// published values; the placement reflects the matrix's provenance (FEM
// matrices are banded, web/circuit graphs are skewed with hub rows, etc.).
func representative() []RepInfo {
	mk := func(name string, rows, nnz, min, max int, avg float64, dist LenDist, place Placement, hubs int) RepInfo {
		return RepInfo{
			Name:      name,
			PaperRows: rows, PaperNNZ: nnz,
			PaperMin: min, PaperMax: max, PaperAvg: avg,
			Spec: Spec{
				Name: name, Rows: rows, Cols: rows, TargetNNZ: nnz,
				Dist: dist, Place: place, Seed: seedFor(name), HubRows: hubs,
			},
		}
	}
	return []RepInfo{
		mk("consph", k(83), m(6.0), 1, 81, 72, NormalLen{Mean: 72, Std: 6, Min: 1, Max: 81}, Banded, 0),
		mk("Ga41As41H72", k(268), m(18.5), 18, 702, 68, NewPowerLen(18, 702, 68), Clustered, 40),
		mk("conf5_4-8x8-10", k(49), m(1.9), 39, 39, 39, ConstLen{L: 39}, Banded, 0),
		mk("webbase-1M", m(1.0), m(3.1), 1, k(4.7), 3, NewPowerLen(1, k(4.7), 3), Skewed, 12),
		mk("cop20k_A", k(121), m(2.6), 0, 81, 21, NormalLen{Mean: 21, Std: 12, Min: 0, Max: 81}, Banded, 0),
		mk("in-2004", m(1.4), m(16.9), 0, k(7.8), 12, NewPowerLen(0, k(7.8), 12), Skewed, 20),
		mk("pdb1HYS", k(36), m(4.3), 18, 204, 119, NormalLen{Mean: 119, Std: 25, Min: 18, Max: 204}, Clustered, 0),
		mk("ASIC_680k", k(683), m(3.9), 1, k(395), 6, NewPowerLen(1, k(395), 6), Skewed, 2),
		mk("Si41Ge41H72", k(186), m(15.0), 13, 662, 80, NewPowerLen(13, 662, 80), Clustered, 30),
		mk("circuit5M", m(5.6), m(59.5), 1, m(1.29), 10, NewPowerLen(1, m(1.29), 10), Skewed, 2),
		mk("rma10", k(47), m(2.4), 4, 145, 50, NormalLen{Mean: 50, Std: 22, Min: 4, Max: 145}, Mixed, 0),
		mk("FullChip", m(2.9), m(26.6), 1, m(2.3), 9, NewPowerLen(1, m(2.3), 9), Skewed, 2),
		mk("mip1", k(66), m(10.4), 4, k(66.4), 155, NewPowerLen(4, k(66.4), 155), Clustered, 3),
		mk("mac_econ_fwd500", k(207), m(1.3), 1, 44, 6, NormalLen{Mean: 6, Std: 4, Min: 1, Max: 44}, Random, 0),
		mk("cant", k(62), m(4.0), 1, 78, 64, NormalLen{Mean: 64, Std: 7, Min: 1, Max: 78}, Banded, 0),
		mk("dc2", k(117), k(766), 1, k(114), 7, NewPowerLen(1, k(114), 7), Skewed, 2),
		mk("shipsec1", k(141), m(7.8), 24, 102, 55, NormalLen{Mean: 55, Std: 12, Min: 24, Max: 102}, Banded, 0),
		mk("n4c6-b7", k(163), m(1.3), 8, 8, 8, ConstLen{L: 8}, Random, 0),
		mk("Dubcova2", k(65), m(1.0), 4, 25, 15, NormalLen{Mean: 15, Std: 4, Min: 4, Max: 25}, Banded, 0),
		mk("viscorocks", k(37.8), m(1.1), 16, 42, 30, NormalLen{Mean: 30, Std: 5, Min: 16, Max: 42}, Banded, 0),
		mk("dawson5", k(51), m(1.0), 1, 33, 19, NormalLen{Mean: 19, Std: 6, Min: 1, Max: 33}, Banded, 0),
		mk("G_n_pin_pout", k(100), m(1.0), 0, 25, 10, NormalLen{Mean: 10, Std: 3.2, Min: 0, Max: 25}, Random, 0),
	}
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// RepresentativeNames lists Table II's matrices in paper order.
func RepresentativeNames() []string {
	infos := representative()
	names := make([]string, len(infos))
	for i, ri := range infos {
		names[i] = ri.Name
	}
	return names
}

// RepresentativeInfo returns the published statistics and Spec for one of
// the 22 matrices. The bool result is false for unknown names.
func RepresentativeInfo(name string) (RepInfo, bool) {
	for _, ri := range representative() {
		if ri.Name == name {
			return ri, true
		}
	}
	return RepInfo{}, false
}

// Representative generates one of the 22 Table II matrices at the given
// scale divisor: rows and nnz shrink by the factor while the average row
// length (and therefore the cache behaviour per row) is preserved. Scale 1
// reproduces the published size; scale 16 is the test-friendly default in
// the harness. Panics on unknown names (the roster is a fixed published
// table, so a typo is a programming error).
func Representative(name string, scale int) *sparse.CSR {
	ri, ok := RepresentativeInfo(name)
	if !ok {
		panic(fmt.Sprintf("gen: unknown representative matrix %q", name))
	}
	if scale < 1 {
		scale = 1
	}
	sp := ri.Spec
	if scale > 1 {
		sp = scaleSpec(sp, scale)
	}
	return sp.Generate()
}

// scaleSpec shrinks a Spec by the divisor, clamping distribution maxima to
// the reduced column count so hub rows stay representable.
func scaleSpec(sp Spec, scale int) Spec {
	sp.Rows = maxInt(sp.Rows/scale, 64)
	sp.Cols = maxInt(sp.Cols/scale, 64)
	sp.TargetNNZ = maxInt(sp.TargetNNZ/scale, sp.Rows)
	sp.Dist = clampDist(sp.Dist, sp.Cols)
	sp.Name = fmt.Sprintf("%s@1/%d", sp.Name, scale)
	return sp
}

func clampDist(d LenDist, cols int) LenDist {
	switch t := d.(type) {
	case ConstLen:
		if t.L > cols {
			t.L = cols
		}
		return t
	case UniformLen:
		if t.Max > cols {
			t.Max = cols
		}
		if t.Min > t.Max {
			t.Min = t.Max
		}
		return t
	case NormalLen:
		if t.Max > cols {
			t.Max = cols
		}
		if t.Min > t.Max {
			t.Min = t.Max
		}
		return t
	case PowerLen:
		if t.Max > cols {
			t.Max = cols
		}
		if t.Min > t.Max {
			t.Min = t.Max
		}
		return t
	default:
		return d
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SortedRepresentativeByNNZ returns the roster ordered by published nnz,
// the ordering used on the x-axes of Figures 10 and 11.
func SortedRepresentativeByNNZ() []RepInfo {
	infos := representative()
	sort.Slice(infos, func(i, j int) bool { return infos[i].PaperNNZ < infos[j].PaperNNZ })
	return infos
}
