package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"haspmv/internal/sparse"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	for _, place := range []Placement{Banded, Clustered, Random, Skewed} {
		sp := Spec{
			Name: "t", Rows: 500, Cols: 500, TargetNNZ: 6000,
			Dist:  NormalLen{Mean: 12, Std: 4, Min: 0, Max: 60},
			Place: place, Seed: 11,
		}
		a := sp.Generate()
		if err := a.Validate(); err != nil {
			t.Fatalf("%v: %v", place, err)
		}
		if a.NNZ() != 6000 {
			t.Fatalf("%v: nnz = %d, want 6000", place, a.NNZ())
		}
		if !a.RowsSorted() {
			t.Fatalf("%v: rows not sorted", place)
		}
		b := sp.Generate()
		if !a.Equal(b) {
			t.Fatalf("%v: generation not deterministic", place)
		}
	}
}

func TestGenerateDistinctColumnsProperty(t *testing.T) {
	f := func(seed int64, placeRaw uint8) bool {
		place := Placement(int(placeRaw) % 4)
		r := rand.New(rand.NewSource(seed))
		rows := 64 + r.Intn(400)
		sp := Spec{
			Rows: rows, Cols: rows,
			TargetNNZ: rows * (2 + r.Intn(8)),
			Dist:      UniformLen{Min: 0, Max: 20},
			Place:     place, Seed: seed,
		}
		a := sp.Generate()
		if a.Validate() != nil || !a.RowsSorted() {
			return false
		}
		for i := 0; i < a.Rows; i++ {
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			for k := lo + 1; k < hi; k++ {
				if a.ColIdx[k] == a.ColIdx[k-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedLocality(t *testing.T) {
	sp := Spec{Rows: 2000, Cols: 2000, TargetNNZ: 40000,
		Dist: NormalLen{Mean: 20, Std: 2, Min: 10, Max: 30}, Place: Banded, Seed: 3}
	a := sp.Generate()
	if bw := sparse.Bandwidth(a); bw > 64 {
		t.Fatalf("banded matrix bandwidth = %d, want narrow", bw)
	}
}

func TestSkewedHasHubs(t *testing.T) {
	sp := Spec{Rows: 4000, Cols: 4000, TargetNNZ: 20000,
		Dist: NewPowerLen(1, 2000, 4), Place: Skewed, Seed: 5, HubRows: 2}
	a := sp.Generate()
	s := sparse.ComputeRowStats(a)
	if s.MaxRowLen < 1000 {
		t.Fatalf("hub rows missing: max row len %d", s.MaxRowLen)
	}
	if s.Gini < 0.4 {
		t.Fatalf("skewed matrix not irregular enough: gini %.3f", s.Gini)
	}
}

func TestConstLenExact(t *testing.T) {
	sp := Spec{Rows: 300, Cols: 300, Dist: ConstLen{L: 7}, Place: Random, Seed: 1}
	a := sp.Generate()
	for i := 0; i < a.Rows; i++ {
		if a.RowLen(i) != 7 {
			t.Fatalf("row %d has %d entries, want 7", i, a.RowLen(i))
		}
	}
}

func TestRepairTotalRespectsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	lens := make([]int, 100)
	for i := range lens {
		lens[i] = 5 + r.Intn(10)
	}
	repairTotal(r, lens, 1200, 3, 20, nil)
	sum := 0
	for _, l := range lens {
		if l < 3 || l > 20 {
			t.Fatalf("repair violated bounds: %d", l)
		}
		sum += l
	}
	if sum != 1200 {
		t.Fatalf("repair sum = %d, want 1200", sum)
	}
	// Unreachable targets clamp to the feasible extreme.
	lens2 := []int{5, 5}
	repairTotal(r, lens2, 1000, 0, 8, nil)
	if lens2[0]+lens2[1] != 16 {
		t.Fatalf("clamp to max failed: %v", lens2)
	}
	repairTotal(r, lens2, 0, 2, 8, nil)
	if lens2[0]+lens2[1] != 4 {
		t.Fatalf("clamp to min failed: %v", lens2)
	}
}

func TestRepresentativeRosterComplete(t *testing.T) {
	names := RepresentativeNames()
	if len(names) != 22 {
		t.Fatalf("roster has %d entries, want 22", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate matrix %q", n)
		}
		seen[n] = true
		if _, ok := RepresentativeInfo(n); !ok {
			t.Fatalf("info missing for %q", n)
		}
	}
	if _, ok := RepresentativeInfo("nope"); ok {
		t.Fatal("info returned for unknown name")
	}
}

// TestRepresentativeStats verifies the Table II reproduction: at scale 1/16
// each generated matrix must match the published shape — the average row
// length within 25% and min row length category (zero vs nonzero) exact.
func TestRepresentativeStats(t *testing.T) {
	const scale = 16
	for _, ri := range representative() {
		ri := ri
		t.Run(ri.Name, func(t *testing.T) {
			a := Representative(ri.Name, scale)
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			s := sparse.ComputeRowStats(a)
			wantRows := ri.PaperRows / scale
			if math.Abs(float64(s.Rows-wantRows)) > float64(wantRows)/10+64 {
				t.Errorf("rows = %d, want ~%d", s.Rows, wantRows)
			}
			wantNNZ := ri.PaperNNZ / scale
			if math.Abs(float64(s.NNZ-wantNNZ)) > float64(wantNNZ)/10+float64(s.Rows) {
				t.Errorf("nnz = %d, want ~%d", s.NNZ, wantNNZ)
			}
			if ri.PaperAvg > 0 {
				ratio := s.AvgRowLen / ri.PaperAvg
				if ratio < 0.75 || ratio > 1.35 {
					t.Errorf("avg row len = %.2f, paper %.2f", s.AvgRowLen, ri.PaperAvg)
				}
			}
			if (ri.PaperMin == 0) != (s.MinRowLen == 0) {
				// Zero-min matrices must keep their empty rows; they are
				// an edge case every SpMV implementation must handle.
				t.Errorf("min row len = %d, paper %d", s.MinRowLen, ri.PaperMin)
			}
		})
	}
}

func TestRepresentativeScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	// Only the smallest full-size matrix: dc2 at scale 1 (766K nnz).
	a := Representative("dc2", 1)
	s := sparse.ComputeRowStats(a)
	if s.NNZ != 766000 {
		t.Fatalf("dc2 nnz = %d, want 766000", s.NNZ)
	}
	if s.MaxRowLen < 50000 {
		t.Fatalf("dc2 hub row missing: max %d", s.MaxRowLen)
	}
}

func TestRepresentativeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown matrix")
		}
	}()
	Representative("not-a-matrix", 1)
}

func TestCorpusSpansRange(t *testing.T) {
	opt := CorpusOptions{Size: 50, MinNNZ: 1000, MaxNNZ: 100000, Seed: 1}
	specs := Corpus(opt)
	if len(specs) != 50 {
		t.Fatalf("corpus size = %d", len(specs))
	}
	families := map[Placement]int{}
	for i, sp := range specs {
		a := sp.Generate()
		if err := a.Validate(); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		nnz := a.NNZ()
		if nnz < 500 || nnz > 150000 {
			t.Fatalf("spec %d nnz %d outside range", i, nnz)
		}
		families[sp.Place]++
	}
	if len(families) < 3 {
		t.Fatalf("corpus uses only %d placement families", len(families))
	}
	// First and last specs must span the log range.
	if specs[0].TargetNNZ > 2*opt.MinNNZ {
		t.Fatalf("first spec nnz %d too large", specs[0].TargetNNZ)
	}
	if specs[len(specs)-1].TargetNNZ < opt.MaxNNZ/2 {
		t.Fatalf("last spec nnz %d too small", specs[len(specs)-1].TargetNNZ)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(CorpusOptions{Size: 10, MinNNZ: 1000, MaxNNZ: 5000, Seed: 9})
	b := Corpus(CorpusOptions{Size: 10, MinNNZ: 1000, MaxNNZ: 5000, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus spec %d differs between calls", i)
		}
		if !a[i].Generate().Equal(b[i].Generate()) {
			t.Fatalf("corpus matrix %d differs between calls", i)
		}
	}
}

func TestCorpusEdgeOptions(t *testing.T) {
	if Corpus(CorpusOptions{Size: 0}) != nil {
		t.Fatal("empty corpus should be nil")
	}
	specs := Corpus(CorpusOptions{Size: 1, MinNNZ: 10, MaxNNZ: 5, Seed: 1})
	if len(specs) != 1 {
		t.Fatal("single-spec corpus")
	}
	if specs[0].Generate().Validate() != nil {
		t.Fatal("degenerate corpus spec invalid")
	}
}

func TestSortedRepresentativeByNNZ(t *testing.T) {
	infos := SortedRepresentativeByNNZ()
	for i := 1; i < len(infos); i++ {
		if infos[i].PaperNNZ < infos[i-1].PaperNNZ {
			t.Fatal("not sorted by nnz")
		}
	}
}

func TestScaleSpecClamps(t *testing.T) {
	sp := Spec{Rows: 1000, Cols: 1000, TargetNNZ: 10000,
		Dist: NewPowerLen(1, 900, 8), Place: Skewed, Seed: 1}
	s2 := scaleSpec(sp, 10)
	if s2.Rows != 100 || s2.Cols != 100 {
		t.Fatalf("scaled dims %dx%d", s2.Rows, s2.Cols)
	}
	_, max := s2.Dist.Bounds()
	if max > s2.Cols {
		t.Fatalf("dist max %d exceeds cols %d", max, s2.Cols)
	}
	a := s2.Generate()
	if a.Validate() != nil {
		t.Fatal("scaled spec generates invalid matrix")
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero cols")
		}
	}()
	Spec{Rows: 10, Cols: 0, Dist: ConstLen{L: 1}}.Generate()
}

// Mixed placement must produce rows with widely diverse cache-line
// density (the rma10 trait Figure 9 depends on): some rows near 1 nnz per
// x line (scattered), some near 8 (banded).
func TestMixedPlacementDiversity(t *testing.T) {
	sp := Spec{Rows: 3000, Cols: 3000, Dist: ConstLen{L: 48}, Place: Mixed, Seed: 12}
	a := sp.Generate()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.RowsSorted() {
		t.Fatal("unsorted rows")
	}
	dense, sparse := 0, 0
	for i := 0; i < a.Rows; i++ {
		lines := 0
		ben := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if l := a.ColIdx[k] / 8; l > ben {
				lines++
				ben = l
			}
		}
		perLine := float64(a.RowLen(i)) / float64(lines)
		if perLine > 4 {
			dense++
		}
		if perLine < 1.5 {
			sparse++
		}
	}
	if dense < a.Rows/10 || sparse < a.Rows/10 {
		t.Fatalf("mixed rows not diverse: %d dense, %d scattered of %d", dense, sparse, a.Rows)
	}
	if Mixed.String() != "mixed" {
		t.Fatal("placement string")
	}
}
