package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"haspmv/internal/sparse"
)

// StencilSpec describes a banded/stencil matrix: entries live on a fixed
// set of diagonals (col = row + offset), the structure of regular-grid
// finite-difference and finite-element discretizations. Where the
// Placement-based generators only produce bands *statistically*, the
// stencil generator pins the diagonal set exactly, so tests and benches
// can rely on every row decomposing into at most len(Offsets) constant-
// offset runs — the shape the diagonal index format exists for — and can
// dirty that structure in controlled doses (BandFill holes, NoiseFrac
// off-band defects).
//
// The value stream is independently controllable: PaletteK restricts
// values to K distinct floats, producing matrices eligible (K <= 256)
// or just-ineligible (K = 257) for palette value compression.
//
// Generation is deterministic for a given spec.
type StencilSpec struct {
	Name string
	Rows int
	Cols int
	// Offsets lists the diagonals carrying entries (col = row + offset),
	// in any order; duplicates are ignored. Empty selects a symmetric
	// Diagonals-point stencil instead.
	Offsets []int
	// Diagonals is the stencil width when Offsets is empty: the
	// Diagonals offsets nearest 0, center-out (0, 1, -1, 2, -2, ...).
	// A 5-point 1-D Laplacian row is Diagonals: 5.
	Diagonals int
	// BandFill is the probability each (row, diagonal) position is
	// occupied. Values <= 0 or >= 1 mean fully dense bands. Partial fill
	// breaks long runs into shorter ones without leaving the band.
	BandFill float64
	// NoiseFrac is the expected fraction of rows that receive one
	// off-band defect entry at a uniformly random column — the
	// constraint rows and boundary conditions that keep real FEM
	// matrices from being perfectly banded.
	NoiseFrac float64
	// PaletteK restricts values to K distinct floats (drawn uniformly
	// from a fixed K-value palette); 0 draws continuous values in
	// (0.1, 1.1) like the other generators.
	PaletteK int
	Seed     int64
}

// offsets returns the sorted, deduplicated diagonal set.
func (s StencilSpec) offsets() []int {
	offs := s.Offsets
	if len(offs) == 0 {
		d := s.Diagonals
		if d <= 0 {
			d = 5
		}
		offs = make([]int, 0, d)
		for o := 0; len(offs) < d; o++ {
			offs = append(offs, o)
			if o > 0 && len(offs) < d {
				offs = append(offs, -o)
			}
		}
	}
	out := append([]int(nil), offs...)
	sort.Ints(out)
	k := 0
	for i, o := range out {
		if i == 0 || o != out[k-1] {
			out[k] = o
			k++
		}
	}
	return out[:k]
}

// Palette returns the K-value palette the spec draws from (nil when
// PaletteK is 0). Exposed so tests can assert the generated value set.
func (s StencilSpec) Palette() []float64 {
	if s.PaletteK <= 0 {
		return nil
	}
	pal := make([]float64, s.PaletteK)
	for j := range pal {
		// Distinct, nonzero, well-conditioned — same range as the
		// continuous generators.
		pal[j] = 0.1 + float64(j+1)/float64(s.PaletteK+1)
	}
	return pal
}

// Generate materializes the stencil matrix.
func (s StencilSpec) Generate() *sparse.CSR {
	if s.Rows < 0 || s.Cols <= 0 {
		panic(fmt.Sprintf("gen: invalid stencil dims %dx%d", s.Rows, s.Cols))
	}
	offs := s.offsets()
	fill := s.BandFill
	if fill <= 0 || fill >= 1 {
		fill = 1
	}
	pal := s.Palette()
	r := rand.New(rand.NewSource(s.Seed))

	value := func() float64 {
		if pal != nil {
			return pal[r.Intn(len(pal))]
		}
		return 0.1 + r.Float64()
	}

	a := &sparse.CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	cols := make([]int, 0, len(offs)+1)
	for i := 0; i < s.Rows; i++ {
		cols = cols[:0]
		for _, o := range offs {
			c := i + o
			if c < 0 || c >= s.Cols {
				continue
			}
			if fill < 1 && r.Float64() >= fill {
				continue
			}
			cols = append(cols, c)
		}
		if s.NoiseFrac > 0 && r.Float64() < s.NoiseFrac {
			// One off-band defect; re-draw on (rare) collisions with a
			// band column so row totals stay exact.
			for {
				c := r.Intn(s.Cols)
				if !containsInt(cols, c) {
					cols = append(cols, c)
					sort.Ints(cols)
					break
				}
			}
		}
		for _, c := range cols {
			a.ColIdx = append(a.ColIdx, c)
			a.Val = append(a.Val, value())
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
