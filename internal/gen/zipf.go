package gen

import (
	"math"
	"math/rand"

	"haspmv/internal/sparse"
)

// ZipfSpec describes a rank-law (Zipf) power-law matrix: the r-th
// longest row holds a share of the nonzeros proportional to 1/r^S, the
// degree law of web and social graphs. Unlike PowerLen — which draws
// row lengths i.i.d. from a truncated Pareto and only *probably*
// produces extreme rows — the rank law pins the whole length profile,
// so the hub row's nnz share is a deterministic function of (Rows,
// Cols, TargetNNZ, S). At the default S, ~1/3 of the nonzeros land on
// rank 1 before the column clamp, which is exactly the
// one-mega-row-cut-across-many-cores shape the segmented-sum execution
// mode targets; tests and benches can rely on that share being there.
//
// Column placement is Skewed (hub columns at low indices, as in link
// graphs) and generation is deterministic for a given spec.
type ZipfSpec struct {
	Name string
	Rows int
	Cols int
	// TargetNNZ is the exact total nonzero count to produce (after
	// clamping each row to Cols; the clamp's overflow is pushed down the
	// rank tail).
	TargetNNZ int
	// S is the Zipf exponent; 0 selects the default 1.4 (between the
	// ~1.2 of web host graphs and the ~1.6 of word frequencies).
	S    float64
	Seed int64
}

// defaultZipfS is the rank-law exponent used when ZipfSpec.S is unset.
const defaultZipfS = 1.4

// Generate materializes the Zipf matrix. Row ranks are shuffled over
// row indices (seeded), so the hub rows sit at arbitrary positions the
// way crawl ordering leaves them — the HACSR reorder, not the
// generator, is what groups them.
func (z ZipfSpec) Generate() *sparse.CSR {
	sp := Spec{Name: z.Name, Rows: z.Rows, Cols: z.Cols, Place: Skewed}
	if z.Rows < 0 || z.Cols <= 0 {
		// Delegate the panic path so the error message is uniform.
		return sp.Generate()
	}
	r := rand.New(rand.NewSource(z.Seed))
	return sp.materialize(r, z.rowLengths(r))
}

// rowLengths pins the rank-law profile: scale 1/r^S shares to
// TargetNNZ, clamp to Cols, repair rounding and clamp losses down the
// tail so the total is exact, then shuffle ranks over row indices.
func (z ZipfSpec) rowLengths(r *rand.Rand) []int {
	n := z.Rows
	lens := make([]int, n)
	if n == 0 || z.TargetNNZ <= 0 {
		return lens
	}
	s := z.S
	if s <= 0 {
		s = defaultZipfS
	}
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		total += w[i]
	}
	sum := 0
	for i := range lens {
		l := int(math.Round(float64(z.TargetNNZ) * w[i] / total))
		if l > z.Cols {
			l = z.Cols
		}
		lens[i] = l
		sum += l
	}
	// Exact repair: sweep the rank tail upward (or downward) one entry
	// per row per pass until the total matches. The hub ranks are
	// touched last, so the head of the profile survives intact.
	for sum != z.TargetNNZ {
		moved := false
		for i := n - 1; i >= 0 && sum != z.TargetNNZ; i-- {
			if sum < z.TargetNNZ && lens[i] < z.Cols {
				lens[i]++
				sum++
				moved = true
			} else if sum > z.TargetNNZ && lens[i] > 0 {
				lens[i]--
				sum--
				moved = true
			}
		}
		if !moved {
			break // target infeasible (> Rows*Cols or < 0); best effort
		}
	}
	r.Shuffle(n, func(i, j int) { lens[i], lens[j] = lens[j], lens[i] })
	return lens
}
