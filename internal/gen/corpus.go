package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// CorpusOptions controls the synthetic stand-in for the full SuiteSparse
// sweep (2888 matrices in the paper). Size is the number of matrices;
// MinNNZ/MaxNNZ bound the log-uniform nonzero scale. The default harness
// uses a few hundred matrices so the sweep finishes in seconds while still
// spanning four orders of magnitude in nnz and all four structure families.
type CorpusOptions struct {
	Size   int
	MinNNZ int
	MaxNNZ int
	Seed   int64
}

// DefaultCorpus mirrors the harness defaults: 300 matrices, nnz from 2e3
// to 6e6. The upper end matters: matrices between ~32MB and ~96MB of
// working set are where the 7950X3D's V-Cache asymmetry pays, and the
// published collection is full of them.
func DefaultCorpus() CorpusOptions {
	return CorpusOptions{Size: 300, MinNNZ: 2_000, MaxNNZ: 6_000_000, Seed: 20230904}
}

// Corpus builds the list of Specs for the sweep. Matrices are not
// materialized here; callers generate them one at a time to bound memory.
func Corpus(opt CorpusOptions) []Spec {
	if opt.Size <= 0 {
		return nil
	}
	if opt.MinNNZ < 64 {
		opt.MinNNZ = 64
	}
	if opt.MaxNNZ < opt.MinNNZ {
		opt.MaxNNZ = opt.MinNNZ
	}
	r := rand.New(rand.NewSource(opt.Seed))
	specs := make([]Spec, 0, opt.Size)
	logMin := math.Log(float64(opt.MinNNZ))
	logMax := math.Log(float64(opt.MaxNNZ))
	for i := 0; i < opt.Size; i++ {
		nnz := int(math.Exp(logMin + (logMax-logMin)*float64(i)/float64(maxInt(opt.Size-1, 1))))
		specs = append(specs, corpusSpec(r, i, nnz))
	}
	return specs
}

// corpusSpec draws one matrix family and shapes it around the target nnz.
// The family mix approximates the collection: about half FEM-like banded or
// clustered matrices with medium rows, a quarter short-row random graphs,
// and a quarter heavy-tailed web/circuit style matrices.
func corpusSpec(r *rand.Rand, idx, nnz int) Spec {
	family := r.Intn(8)
	var (
		avg   int
		dist  LenDist
		place Placement
		hubs  int
		kind  string
	)
	switch {
	case family < 2: // FEM banded, medium rows
		avg = 20 + r.Intn(120)
		spread := 1 + avg/8
		dist = NormalLen{Mean: float64(avg), Std: float64(spread), Min: maxInt(1, avg-4*spread), Max: avg + 4*spread}
		place = Banded
		kind = "fem"
	case family < 4: // clustered multi-physics
		avg = 15 + r.Intn(140)
		dist = NormalLen{Mean: float64(avg), Std: float64(avg) / 3, Min: 1, Max: avg * 3}
		place = Clustered
		kind = "clustered"
	case family < 5: // constant-row (structured grids, combinatorial)
		avg = 4 + r.Intn(60)
		dist = ConstLen{L: avg}
		place = Banded
		kind = "const"
	case family < 6: // random graph, short rows
		avg = 3 + r.Intn(24)
		dist = UniformLen{Min: maxInt(0, avg/2), Max: avg * 2}
		place = Random
		kind = "random"
	default: // power-law web/circuit
		avg = 3 + r.Intn(12)
		rows := maxInt(nnz/maxInt(avg, 1), 64)
		maxLen := maxInt(avg*8, rows/(4+r.Intn(12)))
		dist = NewPowerLen(1, maxLen, float64(avg))
		place = Skewed
		hubs = 1 + r.Intn(3)
		kind = "powerlaw"
	}
	rows := maxInt(nnz/maxInt(avg, 1), 64)
	return Spec{
		Name:      fmt.Sprintf("corpus-%04d-%s", idx, kind),
		Rows:      rows,
		Cols:      rows,
		TargetNNZ: nnz,
		Dist:      clampDist(dist, rows),
		Place:     place,
		Seed:      int64(idx)*2654435761 + 97,
		HubRows:   hubs,
	}
}
