package gen

import (
	"testing"

	"haspmv/internal/sparse"
)

func TestZipfDeterministicAndExact(t *testing.T) {
	z := ZipfSpec{Name: "z", Rows: 2000, Cols: 3000, TargetNNZ: 30000, Seed: 9}
	a := z.Generate()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != z.TargetNNZ {
		t.Fatalf("nnz %d, want %d", a.NNZ(), z.TargetNNZ)
	}
	b := z.Generate()
	if b.NNZ() != a.NNZ() {
		t.Fatalf("re-generation nnz %d vs %d", b.NNZ(), a.NNZ())
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			t.Fatalf("entry %d differs between generations", k)
		}
	}
	z2 := z
	z2.Seed = 10
	c := z2.Generate()
	same := true
	for k := range a.ColIdx {
		if a.ColIdx[k] != c.ColIdx[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placement")
	}
}

// The rank law must deliver its defining property: a dominant hub row
// with a deterministic nnz share, and heavy inequality overall.
func TestZipfHubShare(t *testing.T) {
	z := ZipfSpec{Name: "z", Rows: 1 << 14, Cols: 1 << 14, TargetNNZ: 150_000, Seed: 3}
	a := z.Generate()
	st := sparse.ComputeRowStats(a)
	share := float64(st.MaxRowLen) / float64(a.NNZ())
	// Raw rank-1 share at S=1.4 is ~32%; the Cols clamp caps the hub at
	// 16384 of 150000 ≈ 10.9%.
	if share < 0.10 {
		t.Fatalf("hub share %.3f, want >= 0.10 (max row %d of %d)", share, st.MaxRowLen, a.NNZ())
	}
	if st.Gini < 0.5 {
		t.Fatalf("gini %.3f, want >= 0.5 for a Zipf profile", st.Gini)
	}
	if st.MedianRowLen > 20 {
		t.Fatalf("median row length %d, want short-dominated profile", st.MedianRowLen)
	}
}

func TestZipfClampInfeasibleTarget(t *testing.T) {
	// Target above Rows*Cols: best effort at the dense matrix.
	a := ZipfSpec{Name: "z", Rows: 4, Cols: 4, TargetNNZ: 100, Seed: 1}.Generate()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 16 {
		t.Fatalf("nnz %d, want the dense 16", a.NNZ())
	}
	empty := ZipfSpec{Name: "z", Rows: 0, Cols: 1, TargetNNZ: 5}
	if empty.Generate().NNZ() != 0 {
		t.Fatal("zero-row matrix should be empty")
	}
}
