package gen

import (
	"math"
	"testing"
)

func TestStencilDeterministicAndOnDiagonals(t *testing.T) {
	sp := StencilSpec{Name: "lap5", Rows: 500, Cols: 500, Diagonals: 5, Seed: 7}
	a := sp.Generate()
	b := sp.Generate()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("non-deterministic nnz: %d vs %d", a.NNZ(), b.NNZ())
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			t.Fatalf("entry %d differs between runs", k)
		}
	}
	// Diagonals: 5 selects offsets {-2,-1,0,1,2}; every entry must sit
	// on one of them, and interior rows carry all five.
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if o := a.ColIdx[k] - i; o < -2 || o > 2 {
				t.Fatalf("row %d entry at offset %d, want within [-2,2]", i, o)
			}
		}
		if i >= 2 && i < a.Rows-2 {
			if l := a.RowPtr[i+1] - a.RowPtr[i]; l != 5 {
				t.Fatalf("interior row %d has %d entries, want 5", i, l)
			}
		}
	}
	// Full bands: each row is one contiguous run.
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] != a.ColIdx[k-1]+1 {
				t.Fatalf("row %d not contiguous at entry %d", i, k)
			}
		}
	}
}

func TestStencilExplicitOffsetsAndFill(t *testing.T) {
	sp := StencilSpec{Rows: 2000, Cols: 2000, Offsets: []int{-64, 0, 64, 64}, BandFill: 0.5, Seed: 3}
	a := sp.Generate()
	allowed := map[int]bool{-64: true, 0: true, 64: true}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if !allowed[a.ColIdx[k]-i] {
				t.Fatalf("row %d entry at offset %d, want one of -64/0/64", i, a.ColIdx[k]-i)
			}
		}
	}
	// With fill 0.5 over ~3 slots/row the density must land well inside
	// (0.3, 0.7) of the dense-band count.
	dense := StencilSpec{Rows: 2000, Cols: 2000, Offsets: []int{-64, 0, 64}, Seed: 3}.Generate()
	ratio := float64(a.NNZ()) / float64(dense.NNZ())
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("band fill 0.5 produced density ratio %.3f", ratio)
	}
}

func TestStencilNoiseDefects(t *testing.T) {
	sp := StencilSpec{Rows: 4000, Cols: 4000, Diagonals: 3, NoiseFrac: 0.25, Seed: 11}
	a := sp.Generate()
	defects := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if o := a.ColIdx[k] - i; o < -1 || o > 1 {
				defects++
			}
		}
		// Columns must stay sorted and distinct after defect insertion.
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= a.ColIdx[k-1] {
				t.Fatalf("row %d columns not sorted-distinct at %d", i, k)
			}
		}
	}
	if lo, hi := a.Rows/8, a.Rows/2; defects < lo || defects > hi {
		t.Fatalf("NoiseFrac 0.25 produced %d defects over %d rows, want within [%d,%d]",
			defects, a.Rows, lo, hi)
	}
}

func TestStencilPaletteValues(t *testing.T) {
	sp := StencilSpec{Rows: 3000, Cols: 3000, Diagonals: 5, PaletteK: 7, Seed: 5}
	a := sp.Generate()
	pal := map[uint64]bool{}
	for _, v := range sp.Palette() {
		pal[math.Float64bits(v)] = true
	}
	if len(pal) != 7 {
		t.Fatalf("palette has %d distinct values, want 7", len(pal))
	}
	seen := map[uint64]bool{}
	for _, v := range a.Val {
		b := math.Float64bits(v)
		if !pal[b] {
			t.Fatalf("value %v not in the declared palette", v)
		}
		seen[b] = true
	}
	if len(seen) != 7 {
		t.Fatalf("generated values used %d of 7 palette entries", len(seen))
	}
}
