package gen

import "haspmv/internal/sparse"

// splitmix64 is the seed scrambler behind ShuffleRows: deterministic,
// state-free, and uncorrelated with the generators' own LCG streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShuffleRows returns a copy of a with its rows permuted by a
// deterministic Fisher-Yates shuffle of the given seed. Columns (and
// therefore x-vector order) are untouched, so the shuffled copy has
// identical per-row structure but destroyed inter-row locality — the
// adversarial input for the reorder autotuner, whose graph strategies
// should recover most of what the shuffle broke.
func ShuffleRows(a *sparse.CSR, seed int64) *sparse.CSR {
	m := a.Rows
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	s := uint64(seed)
	for i := m - 1; i > 0; i-- {
		s = splitmix64(s)
		j := int(s % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	rowPtr := make([]int, m+1)
	for i, src := range perm {
		rowPtr[i+1] = rowPtr[i] + (a.RowPtr[src+1] - a.RowPtr[src])
	}
	colIdx := make([]int, a.NNZ())
	val := make([]float64, a.NNZ())
	for i, src := range perm {
		lo, hi := a.RowPtr[src], a.RowPtr[src+1]
		copy(colIdx[rowPtr[i]:rowPtr[i+1]], a.ColIdx[lo:hi])
		copy(val[rowPtr[i]:rowPtr[i+1]], a.Val[lo:hi])
	}
	return &sparse.CSR{Rows: m, Cols: a.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// StridedStencil builds a square matrix with k entries per row, stride
// columns apart, anchored at the row index (clamped near the bottom so
// every column stays in range). With stride past a cache line of
// float64s, every nonzero touches its own x line while neighbouring
// rows share almost their whole line span — the workload where a
// shuffled row order costs the most x-gather traffic and a graph
// reorder wins it back. Pair with ShuffleRows for the autotuner's
// positive acceptance case.
func StridedStencil(rows, k, stride int) *sparse.CSR {
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, rows*k)
	val := make([]float64, 0, rows*k)
	span := stride * (k - 1)
	for i := 0; i < rows; i++ {
		base := i
		if base > rows-1-span {
			base = rows - 1 - span
		}
		for j := 0; j < k; j++ {
			colIdx = append(colIdx, base+stride*j)
			val = append(val, 1+float64((i+j)%7)/8)
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &sparse.CSR{Rows: rows, Cols: rows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
