// Package cachesim implements a deterministic set-associative LRU cache
// simulator. It substitutes for the hardware caches of the paper's AMPs
// (see DESIGN.md): SpMV's irregular accesses to the x vector are the
// central cache effect in HASpMV, and replaying them through an LRU model
// reproduces the hit/miss structure, the capacity cliffs of Figure 3, and
// the V-Cache advantage of the 7950X3D.
package cachesim

import "fmt"

// Cache is one set-associative LRU cache level.
type Cache struct {
	lineBytes int
	sets      int
	ways      int

	// tags[set*ways+way] holds the line tag; stamp is the LRU clock value
	// of the entry's last use. valid tracks occupancy.
	tags  []uint64
	stamp []uint64
	valid []bool
	clock uint64

	hits   uint64
	misses uint64
}

// New builds a cache of the given capacity. ways is clamped to the number
// of lines when the capacity is tiny. Panics on non-positive sizes — cache
// geometry comes from the amp presets, so a bad value is a programming
// error, not an input error.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry size=%d line=%d ways=%d", sizeBytes, lineBytes, ways))
	}
	lines := sizeBytes / lineBytes
	if lines == 0 {
		lines = 1
	}
	if ways > lines {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	n := sets * ways
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, n),
		stamp:     make([]uint64, n),
		valid:     make([]bool, n),
	}
}

// SizeBytes returns the effective capacity after geometry rounding.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineBytes }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Access touches the byte address, returning true on hit. On miss the line
// is installed, evicting the LRU way of its set.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	c.clock++
	victim := base
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		e := base + w
		if c.valid[e] && c.tags[e] == line {
			c.stamp[e] = c.clock
			c.hits++
			return true
		}
		if !c.valid[e] {
			// Prefer an empty way; stamp 0 loses to any valid entry.
			if victimStamp != 0 {
				victim, victimStamp = e, 0
			}
		} else if c.stamp[e] < victimStamp {
			victim, victimStamp = e, c.stamp[e]
		}
	}
	c.misses++
	c.tags[victim] = line
	c.stamp[victim] = c.clock
	c.valid[victim] = true
	return false
}

// Contains reports whether the address's line is resident, without
// updating LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		e := base + w
		if c.valid[e] && c.tags[e] == line {
			return true
		}
	}
	return false
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset invalidates all lines and clears the counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// Hierarchy chains cache levels (L1 first). An access probes levels in
// order and, on a miss at every level, reports MemoryLevel; lines are
// installed inclusively in all levels on the way back.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level capacities (L1 first), all
// with the same line size. Zero-sized levels are skipped, which is how a
// two-level hierarchy (AMD per-CCD L1+L2+L3 with no L4) or a hypothetical
// cacheless core is expressed.
func NewHierarchy(lineBytes int, ways []int, sizes []int) *Hierarchy {
	if len(ways) != len(sizes) {
		panic("cachesim: ways/sizes length mismatch")
	}
	h := &Hierarchy{}
	for i, s := range sizes {
		if s <= 0 {
			continue
		}
		h.Levels = append(h.Levels, New(s, lineBytes, ways[i]))
	}
	return h
}

// MemoryLevel is the value returned by Access when no level holds the line.
func (h *Hierarchy) MemoryLevel() int { return len(h.Levels) }

// Access probes the hierarchy and returns the level index that served the
// access: 0 for L1, 1 for L2, ..., MemoryLevel() for DRAM. The line is
// installed in every level above the serving one (inclusive fill).
func (h *Hierarchy) Access(addr uint64) int {
	served := len(h.Levels)
	for li, c := range h.Levels {
		if c.Access(addr) {
			served = li
			break
		}
	}
	// Access already installed the line in every missed level.
	return served
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}
