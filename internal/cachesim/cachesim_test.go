package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryRounding(t *testing.T) {
	c := New(1024, 64, 4) // 16 lines, 4 ways -> 4 sets
	if c.SizeBytes() != 1024 {
		t.Fatalf("size = %d", c.SizeBytes())
	}
	if c.LineBytes() != 64 {
		t.Fatalf("line = %d", c.LineBytes())
	}
	// Tiny cache: ways clamp to line count.
	c = New(64, 64, 8)
	if c.SizeBytes() != 64 {
		t.Fatalf("tiny cache size = %d", c.SizeBytes())
	}
	// Non-power-of-two capacity (30MB L3 of the 12900KF).
	c = New(30<<20, 64, 12)
	if c.SizeBytes() > 30<<20 || c.SizeBytes() < 29<<20 {
		t.Fatalf("30MB geometry = %d", c.SizeBytes())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, geo := range [][3]int{{0, 64, 8}, {1024, 0, 8}, {1024, 64, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", geo)
				}
			}()
			New(geo[0], geo[1], geo[2])
		}()
	}
}

func TestHitMissBasics(t *testing.T) {
	c := New(4096, 64, 4)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(63) {
		t.Fatal("same line, different byte missed")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways, 64B lines. Lines 0,2,4,... map to set 0.
	c := New(256, 64, 2)
	c.Access(0 * 64) // set0 way A
	c.Access(2 * 64) // set0 way B
	c.Access(0 * 64) // refresh line 0 -> line 2 is LRU
	c.Access(4 * 64) // evicts line 2
	if !c.Contains(0 * 64) {
		t.Fatal("line 0 should survive (recently used)")
	}
	if c.Contains(2 * 64) {
		t.Fatal("line 2 should have been evicted (LRU)")
	}
	if !c.Contains(4 * 64) {
		t.Fatal("line 4 should be resident")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	h0, m0 := c.Stats()
	c.Contains(0)
	c.Contains(128)
	h1, m1 := c.Stats()
	if h0 != h1 || m0 != m1 {
		t.Fatal("Contains changed counters")
	}
	// And it must not refresh LRU: line 0 older than line 2 despite Contains.
	c.Access(2 * 64)
	c.Contains(0)    // must NOT refresh
	c.Access(4 * 64) // evicts LRU = line 0
	if c.Contains(0) {
		t.Fatal("Contains refreshed LRU order")
	}
}

func TestReset(t *testing.T) {
	c := New(256, 64, 2)
	c.Access(0)
	c.Reset()
	if c.Contains(0) {
		t.Fatal("line survived reset")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("stats survived reset")
	}
}

// Property: a sequence restricted to W distinct lines within one set never
// misses after the first touch when W <= ways (LRU never evicts a line of
// the working set).
func TestNoCapacityMissWithinWays(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ways := 2 + r.Intn(7)
		sets := 1 + r.Intn(16)
		c := New(sets*ways*64, 64, ways)
		// Pick `ways` lines that all map to set 0.
		lines := make([]uint64, ways)
		for i := range lines {
			lines[i] = uint64(i*sets) * 64 * uint64(c.sets) / uint64(c.sets) // i*sets lines
		}
		for i := range lines {
			lines[i] = uint64(i*c.sets) * 64
		}
		for _, l := range lines {
			c.Access(l)
		}
		h0, m0 := c.Stats()
		if m0 != uint64(ways) || h0 != 0 {
			return false
		}
		for k := 0; k < 200; k++ {
			if !c.Access(lines[r.Intn(ways)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals the number of Access calls.
func TestCounterConservation(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(2048, 64, 4)
		calls := int(n%500) + 1
		for i := 0; i < calls; i++ {
			c.Access(uint64(r.Intn(1 << 14)))
		}
		h, m := c.Stats()
		return int(h+m) == calls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStreamMissRate(t *testing.T) {
	// A sequential byte stream misses exactly once per line.
	c := New(32*1024, 64, 8)
	total := 64 * 1024
	for a := 0; a < total; a++ {
		c.Access(uint64(a))
	}
	_, misses := c.Stats()
	if int(misses) != total/64 {
		t.Fatalf("sequential misses = %d, want %d", misses, total/64)
	}
}

func TestWorkingSetCliff(t *testing.T) {
	// Repeatedly sweeping a working set larger than the cache under pure
	// LRU yields ~0% hits (the classic LRU worst case); a set that fits
	// yields ~100% after warmup. This is the capacity-cliff mechanism
	// behind Figure 3.
	c := New(4096, 64, 4)
	small := 2048  // fits
	large := 16384 // 4x capacity
	for rep := 0; rep < 4; rep++ {
		for a := 0; a < small; a += 64 {
			c.Access(uint64(a))
		}
	}
	h, m := c.Stats()
	smallRate := float64(h) / float64(h+m)
	c.Reset()
	for rep := 0; rep < 4; rep++ {
		for a := 0; a < large; a += 64 {
			c.Access(uint64(a))
		}
	}
	h, m = c.Stats()
	largeRate := float64(h) / float64(h+m)
	if smallRate < 0.7 {
		t.Fatalf("resident sweep hit rate %.2f, want high", smallRate)
	}
	if largeRate > 0.1 {
		t.Fatalf("thrashing sweep hit rate %.2f, want ~0", largeRate)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(64, []int{2, 4, 8}, []int{256, 1024, 8192})
	if len(h.Levels) != 3 || h.MemoryLevel() != 3 {
		t.Fatalf("levels = %d", len(h.Levels))
	}
	if lvl := h.Access(0); lvl != 3 {
		t.Fatalf("cold access served by %d, want memory(3)", lvl)
	}
	if lvl := h.Access(0); lvl != 0 {
		t.Fatalf("hot access served by %d, want L1(0)", lvl)
	}
	// Push line 0 out of the small L1 but keep it in L2.
	for a := uint64(64); a < 64+256; a += 64 {
		h.Access(a)
	}
	lvl := h.Access(0)
	if lvl != 1 && lvl != 2 {
		t.Fatalf("L1-evicted line served by %d, want L2/L3", lvl)
	}
	h.Reset()
	if lvl := h.Access(0); lvl != 3 {
		t.Fatal("reset did not clear hierarchy")
	}
}

func TestHierarchySkipsZeroLevels(t *testing.T) {
	h := NewHierarchy(64, []int{2, 4, 8}, []int{256, 0, 8192})
	if len(h.Levels) != 2 {
		t.Fatalf("levels = %d, want 2 (L2 skipped)", len(h.Levels))
	}
}

func TestHierarchyMismatchedArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHierarchy(64, []int{1}, []int{1, 2})
}

func TestInclusiveFill(t *testing.T) {
	h := NewHierarchy(64, []int{2, 4}, []int{256, 4096})
	h.Access(0) // miss everywhere, installed in both levels
	if !h.Levels[0].Contains(0) || !h.Levels[1].Contains(0) {
		t.Fatal("line not installed inclusively")
	}
}

// Apple-class parts use 128-byte lines: two adjacent 64-byte-line-sized
// blocks must hit in the same line, and capacity in lines halves.
func TestWideCacheLines(t *testing.T) {
	c := New(4096, 128, 4)
	if c.Access(0) {
		t.Fatal("cold hit")
	}
	if !c.Access(127) {
		t.Fatal("same 128B line missed")
	}
	if c.Access(128) {
		t.Fatal("next line hit")
	}
	if got := c.SizeBytes(); got != 4096 {
		t.Fatalf("size %d", got)
	}
}
