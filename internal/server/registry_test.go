package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/baselines/csrsimple"
	"haspmv/internal/core"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// diagCSR builds an n-by-n diagonal matrix, the cheapest possible
// registry payload.
func diagCSR(t testing.TB, n int) *sparse.CSR {
	t.Helper()
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		val[i] = float64(i + 1)
	}
	a, err := sparse.NewCSR(n, n, rowPtr, colIdx, val)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return a
}

// countingSource counts how many times each key is materialized and can
// fail the first N builds of a key.
type countingSource struct {
	mu       sync.Mutex
	builds   map[string]int
	failures map[string]int
	size     int
}

func (s *countingSource) source(t testing.TB) MatrixSource {
	return func(name string, scale int) (*sparse.CSR, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.builds == nil {
			s.builds = make(map[string]int)
		}
		key := Key(name, scale)
		s.builds[key]++
		if s.failures[key] > 0 {
			s.failures[key]--
			return nil, errors.New("injected build failure")
		}
		return diagCSR(t, s.size), nil
	}
}

func (s *countingSource) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds[key]
}

func newTestRegistry(t testing.TB, src MatrixSource, maxEntries int) *Registry {
	t.Helper()
	r := NewRegistry(amp.IntelI912900KF(), core.New(core.Options{}), RegistryOptions{
		MaxEntries: maxEntries,
		Source:     src,
		Batcher:    BatcherOptions{Linger: ExplicitZeroLinger},
	})
	t.Cleanup(r.Close)
	return r
}

// TestRegistrySingleFlight: concurrent Gets for one key share a single
// generate+Prepare.
func TestRegistrySingleFlight(t *testing.T) {
	src := &countingSource{size: 64}
	r := newTestRegistry(t, src.source(t), 8)

	const callers = 16
	var wg sync.WaitGroup
	var failed atomic.Int32
	entries := make([]*Entry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := r.Get(context.Background(), "consph", 16)
			if err != nil {
				failed.Add(1)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d concurrent Gets failed", failed.Load())
	}
	if n := src.count(Key("consph", 16)); n != 1 {
		t.Fatalf("matrix built %d times under concurrent Get, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
}

// TestRegistryErrorNotCached: a failed build is forgotten, so the next
// Get retries and can succeed.
func TestRegistryErrorNotCached(t *testing.T) {
	src := &countingSource{size: 64, failures: map[string]int{Key("cant", 16): 1}}
	r := newTestRegistry(t, src.source(t), 8)

	if _, err := r.Get(context.Background(), "cant", 16); err == nil {
		t.Fatal("first Get: expected injected failure")
	}
	e, err := r.Get(context.Background(), "cant", 16)
	if err != nil {
		t.Fatalf("second Get should retry and succeed: %v", err)
	}
	if e.Rows != 64 {
		t.Fatalf("entry rows = %d, want 64", e.Rows)
	}
	if n := src.count(Key("cant", 16)); n != 2 {
		t.Fatalf("build count = %d, want 2 (one failure, one retry)", n)
	}
}

// TestRegistryLRUEviction: beyond MaxEntries the least recently used
// entry is evicted and its batcher drained; re-requesting it rebuilds.
func TestRegistryLRUEviction(t *testing.T) {
	src := &countingSource{size: 64}
	r := newTestRegistry(t, src.source(t), 2)
	ctx := context.Background()

	a, err := r.Get(ctx, "consph", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, "cant", 16); err != nil {
		t.Fatal(err)
	}
	// Touch "consph" so "cant" is the LRU victim when a third key
	// arrives, and check the cache hit returns the same entry.
	a2, err := r.Get(ctx, "consph", 16)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("cache hit rebuilt the entry")
	}
	if _, err := r.Get(ctx, "rma10", 16); err != nil {
		t.Fatal(err)
	}

	keys := map[string]bool{}
	for _, e := range r.Entries() {
		keys[e.Key] = true
	}
	if len(keys) != 2 || !keys[Key("consph", 16)] || !keys[Key("rma10", 16)] {
		t.Fatalf("resident after eviction: %v, want {consph@16, rma10@16}", keys)
	}

	// The evicted key rebuilds on demand (evicting the now-LRU consph).
	if _, err := r.Get(ctx, "cant", 16); err != nil {
		t.Fatalf("re-Get of evicted key: %v", err)
	}
	if n := src.count(Key("cant", 16)); n != 2 {
		t.Fatalf("evicted key built %d times, want 2", n)
	}
	keys = map[string]bool{}
	for _, e := range r.Entries() {
		keys[e.Key] = true
	}
	if len(keys) != 2 || !keys[Key("cant", 16)] || !keys[Key("rma10", 16)] {
		t.Fatalf("resident after re-Get: %v, want {cant@16, rma10@16}", keys)
	}
}

// TestRegistryUnknownAndTooLarge covers the default source's rejection
// paths.
func TestRegistryUnknownAndTooLarge(t *testing.T) {
	r := NewRegistry(amp.IntelI912900KF(), core.New(core.Options{}), RegistryOptions{
		Source: DefaultSource(1000),
	})
	t.Cleanup(r.Close)

	if _, err := r.Get(context.Background(), "no-such-matrix", 16); !errors.Is(err, ErrUnknownMatrix) {
		t.Fatalf("unknown name: err = %v, want ErrUnknownMatrix", err)
	}
	if _, err := r.Get(context.Background(), "circuit5M", 1); !errors.Is(err, ErrMatrixTooLarge) {
		t.Fatalf("oversized matrix: err = %v, want ErrMatrixTooLarge", err)
	}
}

// TestRegistryAdaptationWiring: with RegistryOptions.Adapt set, every
// HASpMV entry carries an online repartitioning adapter fed by its
// batcher — one flushed batch counts as one observed multiply — while
// baseline algorithms are served unchanged (no adapter).
func TestRegistryAdaptationWiring(t *testing.T) {
	src := func(name string, scale int) (*sparse.CSR, error) {
		return gen.Representative("rma10", 64), nil
	}
	r := NewRegistry(amp.IntelI912900KF(), core.New(core.Options{}), RegistryOptions{
		MaxEntries: 4,
		Source:     src,
		Batcher:    BatcherOptions{Linger: ExplicitZeroLinger},
		Adapt:      &core.AdapterOptions{Every: 1},
	})
	defer r.Close()

	e, err := r.Get(context.Background(), "rma10", 64)
	if err != nil {
		t.Fatal(err)
	}
	if e.Adapter == nil {
		t.Fatal("HASpMV entry has no adapter despite RegistryOptions.Adapt")
	}
	x := make([]float64, e.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, e.Rows)
	const submits = 5
	for i := 0; i < submits; i++ {
		if _, err := e.Batcher.Submit(context.Background(), y, x); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st := e.Adapter.Stats()
	if st.Multiplies == 0 || st.Multiplies > submits {
		t.Fatalf("adapter observed %d multiplies after %d serial submits, want 1..%d",
			st.Multiplies, submits, submits)
	}
	if st.Epochs == 0 {
		t.Fatalf("adapter completed no epochs with Every=1: %+v", st)
	}

	// A baseline algorithm through the same options gets no adapter.
	rb := NewRegistry(amp.IntelI912900KF(), csrsimple.New(amp.PAndE, csrsimple.ByRows), RegistryOptions{
		MaxEntries: 4,
		Source:     src,
		Batcher:    BatcherOptions{Linger: ExplicitZeroLinger},
		Adapt:      &core.AdapterOptions{Every: 1},
	})
	defer rb.Close()
	eb, err := rb.Get(context.Background(), "rma10", 64)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Adapter != nil {
		t.Fatal("baseline entry unexpectedly carries an adapter")
	}
}

// TestRegistryShardKeysAndGetShard: shard entries cache under distinct
// keys, carry their Desc, and the sliced dimensions match the plan.
func TestRegistryShardKeysAndGetShard(t *testing.T) {
	if ShardKey("a", 16, 0, 1) != Key("a", 16) {
		t.Fatal("single-shard key must collapse to the plain key")
	}
	if ShardKey("a", 16, 1, 3) == ShardKey("a", 16, 2, 3) {
		t.Fatal("distinct shards share a key")
	}

	r := NewRegistry(amp.IntelI912900KF(), core.New(core.Options{}), RegistryOptions{
		MaxEntries: 8,
		Batcher:    BatcherOptions{Linger: ExplicitZeroLinger},
	})
	t.Cleanup(r.Close)
	plan, err := r.ShardPlan("dawson5", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("%d shards, want 3", len(plan))
	}
	for i, d := range plan {
		e, err := r.GetShard(context.Background(), "dawson5", 64, i, 3)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if e.Shard != d {
			t.Fatalf("shard %d entry desc %+v != plan %+v", i, e.Shard, d)
		}
		if e.Rows != d.Rows() || e.Cols != d.Cols() || e.NNZ != d.NNZ() {
			t.Fatalf("shard %d dims %d x %d (%d nnz) disagree with desc", i, e.Rows, e.Cols, e.NNZ)
		}
	}
	if _, err := r.GetShard(context.Background(), "dawson5", 64, 3, 3); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := r.GetShard(context.Background(), "dawson5", 64, -1, 3); err == nil {
		t.Fatal("negative shard index accepted")
	}
}

// TestRegistryEvictionRacesSingleFlight is the supervisor-restart
// scenario: a worker re-warming its cache races the LRU evicting the
// same keys (capacity 1 forces an eviction on every other build). Every
// Get must return a usable entry whose batcher still answers, no matter
// how build, eviction, and concurrent single-flight joins interleave.
func TestRegistryEvictionRacesSingleFlight(t *testing.T) {
	src := &countingSource{size: 8}
	r := newTestRegistry(t, src.source(t), 1)

	names := []string{"a", "b", "c"}
	const workers, iters = 8, 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := make([]float64, 8)
			y := make([]float64, 8)
			for i := range x {
				x[i] = float64(i + 1)
			}
			for i := 0; i < iters; i++ {
				name := names[(w+i)%len(names)]
				e, err := r.Get(context.Background(), name, 16)
				if err != nil {
					errCh <- err
					return
				}
				// The entry may be evicted from the map at any moment, but a
				// handed-out batcher must finish work already submitted.
				if _, err := e.Batcher.Submit(context.Background(), y, x); err != nil && !errors.Is(err, ErrDraining) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
