package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"haspmv/internal/gen"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

// isRequestID reports whether s looks like a tracing request id: exactly
// 16 lowercase hex digits.
func isRequestID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// syncWriter is a mutex-guarded buffer for the access log: the server
// writes log lines after the response is already on the wire, so the
// test must synchronize (and poll) rather than read a bare buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The tentpole's serving-side hard requirement: attaching a trace to a
// Submit adds zero allocations over the untraced path — the flush
// pipeline only fills preallocated fields.
func TestBatcherTracingAddsNoAllocations(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	a, prep := prepareRepresentative(t, "dawson5", 64)
	b := NewBatcher(prep, BatcherOptions{Linger: ExplicitZeroLinger})
	defer b.Close()

	ctx := context.Background()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) / 8
	}
	y := make([]float64, a.Rows)
	if _, err := b.Submit(ctx, y, x); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(200, func() { b.Submit(ctx, y, x) })

	tr := &tracing.Trace{ID: "warm"}
	if _, err := b.SubmitTraced(ctx, y, x, tr); err != nil {
		t.Fatal(err)
	}
	traced := testing.AllocsPerRun(200, func() {
		*tr = tracing.Trace{ID: "run"}
		b.SubmitTraced(ctx, y, x, tr)
	})
	if traced > base+0.1 {
		t.Fatalf("traced Submit allocates %.1f/op vs %.1f/op untraced — tracing must add nothing", traced, base)
	}
	if tr.TotalNs <= 0 || tr.StageSumNs() != tr.TotalNs {
		t.Fatalf("trace stages %d != total %d after traced Submit", tr.StageSumNs(), tr.TotalNs)
	}
}

// Every response echoes X-Request-ID: propagated when the client sent
// one, generated otherwise — on success and on every error path.
func TestServeRequestIDEcho(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderOptions{})
	_, ts := newTestServer(t, Config{DefaultScale: 64, Recorder: rec})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	body, _ := json.Marshal(multiplyRequest{Matrix: "dawson5", X: x})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/multiply", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-chose-this-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this-id" {
		t.Fatalf("X-Request-ID = %q, want the propagated client id", got)
	}

	resp, _ = postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if id := resp.Header.Get("X-Request-ID"); !isRequestID(id) {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex digits", id)
	}

	// Error paths echo too: 404 (unknown matrix), 400 (bad x length),
	// 405 (wrong method).
	resp, _ = postMultiply(t, ts.URL, multiplyRequest{Matrix: "no-such", X: x})
	if resp.StatusCode != http.StatusNotFound || !isRequestID(resp.Header.Get("X-Request-ID")) {
		t.Fatalf("404 response: status %d, X-Request-ID %q", resp.StatusCode, resp.Header.Get("X-Request-ID"))
	}
	resp, _ = postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: []float64{1}})
	if resp.StatusCode != http.StatusBadRequest || !isRequestID(resp.Header.Get("X-Request-ID")) {
		t.Fatalf("400 response: status %d, X-Request-ID %q", resp.StatusCode, resp.Header.Get("X-Request-ID"))
	}
	getResp, err := http.Get(ts.URL + "/v1/multiply")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed || !isRequestID(getResp.Header.Get("X-Request-ID")) {
		t.Fatalf("405 response: status %d, X-Request-ID %q", getResp.StatusCode, getResp.Header.Get("X-Request-ID"))
	}

	// The recorder saw the error traces with their status and error.
	snap := rec.Snapshot("")
	var saw404 bool
	for _, tr := range snap.Traces {
		if tr.Status == http.StatusNotFound && tr.Err != "" {
			saw404 = true
		}
	}
	if !saw404 {
		t.Fatalf("no 404 trace with error in recorder: %d traces", len(snap.Traces))
	}
}

// The access log emits one structured line per request, with
// stage-attributed latency for traced multiplies.
func TestServeAccessLog(t *testing.T) {
	logw := &syncWriter{}
	rec := tracing.NewRecorder(tracing.RecorderOptions{})
	_, ts := newTestServer(t, Config{DefaultScale: 64, Recorder: rec, AccessLog: logw})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()

	// The log line lands after the response is written; poll for it.
	waitFor(t, 2*time.Second, func() bool {
		s := logw.String()
		return strings.Contains(s, "path=/v1/multiply") && strings.Contains(s, "path=/healthz")
	}, "access log lines")

	var multiplyLine, healthLine string
	for _, line := range strings.Split(strings.TrimSpace(logw.String()), "\n") {
		switch {
		case strings.Contains(line, "path=/v1/multiply"):
			multiplyLine = line
		case strings.Contains(line, "path=/healthz"):
			healthLine = line
		}
	}
	for _, want := range []string{
		"method=POST", "status=200", "matrix=dawson5@64",
		"queue_us=", "linger_us=", "compute_us=", "merge_us=", "batch_nv=1",
		"id=" + resp.Header.Get("X-Request-ID"),
	} {
		if !strings.Contains(multiplyLine, want) {
			t.Fatalf("multiply access line %q missing %q", multiplyLine, want)
		}
	}
	if !strings.Contains(healthLine, "method=GET") || strings.Contains(healthLine, "matrix=") {
		t.Fatalf("healthz access line %q: want method=GET and no stage fields", healthLine)
	}
}

// /v1/debug/flightrecorder serves the ring on demand, 404s when tracing
// is off, and serves the last anomaly snapshot with ?anomaly=last.
func TestFlightRecorderEndpoint(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderOptions{})
	_, ts := newTestServer(t, Config{DefaultScale: 64, Recorder: rec})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	const reqs = 3
	for i := 0; i < reqs; i++ {
		resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder status %d", resp.StatusCode)
	}
	var snap tracing.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("bad snapshot body: %v", err)
	}
	if snap.Reason != "on-demand" || snap.TotalTraces < reqs || len(snap.Traces) < reqs {
		t.Fatalf("snapshot reason=%q total=%d retained=%d, want on-demand with >= %d traces",
			snap.Reason, snap.TotalTraces, len(snap.Traces), reqs)
	}
	for _, tr := range snap.Traces {
		if !isRequestID(tr.ID) {
			t.Fatalf("trace id %q not a request id", tr.ID)
		}
		if tr.Matrix != "dawson5@64" || tr.Status != http.StatusOK {
			t.Fatalf("trace %+v: want matrix dawson5@64, status 200", tr)
		}
	}

	// No anomaly yet.
	resp2, err := http.Get(ts.URL + "/v1/debug/flightrecorder?anomaly=last")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("?anomaly=last before any anomaly: status %d, want 404", resp2.StatusCode)
	}

	// Tracing disabled: the endpoint 404s.
	_, tsOff := newTestServer(t, Config{DefaultScale: 64})
	resp3, err := http.Get(tsOff.URL + "/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("flight recorder with tracing off: status %d, want 404", resp3.StatusCode)
	}
}

// The integration contract under concurrent load: every served trace's
// four stages sum exactly to its end-to-end latency, and the flush
// linkage (width, cause, core fan-out, format split) is populated.
func TestServeTracedStagesSumUnderLoad(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderOptions{Traces: 1024})
	_, ts := newTestServer(t, Config{DefaultScale: 16, Recorder: rec})

	a := gen.Representative("rma10", 16)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%13) / 4
	}
	body, _ := json.Marshal(multiplyRequest{Matrix: "rma10", Scale: 16, X: x})

	const clients = 64
	const perClient = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	snap := rec.Snapshot("")
	if int(snap.TotalTraces) != clients*perClient {
		t.Fatalf("recorded %d traces, want %d", snap.TotalTraces, clients*perClient)
	}
	var coalesced int
	for _, tr := range snap.Traces {
		if tr.Status != http.StatusOK {
			t.Fatalf("trace %s status %d: %s", tr.ID, tr.Status, tr.Err)
		}
		if tr.TotalNs <= 0 || tr.StageSumNs() != tr.TotalNs {
			t.Fatalf("trace %s: stages %d+%d+%d+%d != total %d",
				tr.ID, tr.QueueNs, tr.LingerNs, tr.ComputeNs, tr.MergeNs, tr.TotalNs)
		}
		if tr.ComputeNs <= 0 {
			t.Fatalf("trace %s: ComputeNs = %d, served requests must attribute kernel time", tr.ID, tr.ComputeNs)
		}
		if tr.BatchNV < 1 {
			t.Fatalf("trace %s: BatchNV = %d", tr.ID, tr.BatchNV)
		}
		if tr.BatchNV > 1 {
			coalesced++
		}
		switch tr.FlushCause {
		case "full", "linger", "drain":
		default:
			t.Fatalf("trace %s: FlushCause %q", tr.ID, tr.FlushCause)
		}
		if tr.Cores < 1 || tr.MaxCoreNs < 1 {
			t.Fatalf("trace %s: Cores=%d MaxCoreNs=%d, want per-core linkage", tr.ID, tr.Cores, tr.MaxCoreNs)
		}
		var nnz int64
		for _, n := range tr.NNZByFormat {
			nnz += n
		}
		if nnz != int64(a.NNZ()) {
			t.Fatalf("trace %s: NNZByFormat sums to %d, want %d", tr.ID, nnz, a.NNZ())
		}
		if !isRequestID(tr.ID) {
			t.Fatalf("trace id %q not a request id", tr.ID)
		}
	}
	if coalesced == 0 {
		t.Fatalf("64 concurrent clients never coalesced — traces: %d", len(snap.Traces))
	}
}

// A shed spike (>= 8 queue-full rejections inside a second) snapshots
// the flight recorder, retrievable at ?anomaly=last with the pre-spike
// traces intact.
func TestShedSpikeAnomalySnapshot(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderOptions{})
	srv, ts := newTestServer(t, Config{
		DefaultScale: 64,
		Recorder:     rec,
		Registry: RegistryOptions{
			Batcher: BatcherOptions{QueueCap: 1, Linger: 40 * time.Millisecond},
		},
	})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	// Seed the ring with a healthy trace so the anomaly snapshot carries
	// stage-attributed context, not just the rejections.
	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, body)
	}

	// Overrun the 1-deep queue until the spike trips. The long linger
	// keeps the dispatcher holding its window open so concurrent submits
	// pile onto the queue cap.
	reqBody, _ := json.Marshal(multiplyRequest{Matrix: "dawson5", X: x})
	deadline := time.Now().Add(10 * time.Second)
	for rec.LastAnomaly() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("no anomaly after sustained overload (anomalies=%d)", rec.Anomalies())
		}
		var wg sync.WaitGroup
		for g := 0; g < 32; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(reqBody))
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
	}

	hresp, err := http.Get(ts.URL + "/v1/debug/flightrecorder?anomaly=last")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("?anomaly=last status %d", hresp.StatusCode)
	}
	var snap tracing.Snapshot
	if err := json.NewDecoder(hresp.Body).Decode(&snap); err != nil {
		t.Fatalf("bad anomaly snapshot: %v", err)
	}
	if snap.Reason != "shed-spike" {
		t.Fatalf("anomaly reason %q, want shed-spike", snap.Reason)
	}
	var healthy *tracing.Trace
	for i := range snap.Traces {
		if snap.Traces[i].Status == http.StatusOK {
			healthy = &snap.Traces[i]
			break
		}
	}
	if healthy == nil {
		t.Fatalf("anomaly snapshot holds no healthy trace among %d", len(snap.Traces))
	}
	if !isRequestID(healthy.ID) || healthy.StageSumNs() != healthy.TotalNs || healthy.ComputeNs <= 0 {
		t.Fatalf("healthy trace in snapshot inconsistent: %+v", healthy)
	}
	_ = srv
}
