package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// prepareRepresentative prepares one Table II matrix with the real
// HASpMV algorithm for the batcher tests.
func prepareRepresentative(t *testing.T, name string, scale int) (*sparse.CSR, exec.Prepared) {
	t.Helper()
	a := gen.Representative(name, scale)
	prep, err := core.New(core.Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatalf("Prepare(%s@%d): %v", name, scale, err)
	}
	return a, prep
}

// TestBatcherBitIdenticalUnderLoad is the serving-layer contract test:
// 64 goroutines hammer one matrix through the batcher and every response
// must be bit-identical to the serial Multiply of the same right-hand
// side, no matter which batch width served it. Run with -race.
func TestBatcherBitIdenticalUnderLoad(t *testing.T) {
	a, prep := prepareRepresentative(t, "rma10", 16)

	const patterns = 8
	X := make([][]float64, patterns)
	refs := make([][]float64, patterns)
	rng := rand.New(rand.NewSource(7))
	for p := 0; p < patterns; p++ {
		X[p] = make([]float64, a.Cols)
		for i := range X[p] {
			X[p][i] = rng.NormFloat64()
		}
		refs[p] = make([]float64, a.Rows)
		prep.Compute(refs[p], X[p])
	}

	b := NewBatcher(prep, BatcherOptions{Linger: 200 * time.Microsecond})
	defer b.Close()

	const clients = 64
	const perClient = 12
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := make([]float64, a.Rows)
			for j := 0; j < perClient; j++ {
				p := (g + j) % patterns
				nv, err := b.Submit(context.Background(), y, X[p])
				if err != nil {
					errCh <- err
					return
				}
				if nv < 1 || nv > b.opts.MaxBatch {
					t.Errorf("batch width %d outside [1,%d]", nv, b.opts.MaxBatch)
					return
				}
				for i := range y {
					if y[i] != refs[p][i] {
						t.Errorf("client %d req %d: y[%d] = %x, serial Multiply gives %x (batch width %d)",
							g, j, i, y[i], refs[p][i], nv)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("Submit: %v", err)
	}

	st := b.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("Requests = %d, want %d", st.Requests, clients*perClient)
	}
	if st.Coalesced+st.Solo != st.Requests {
		t.Fatalf("Coalesced %d + Solo %d != Requests %d", st.Coalesced, st.Solo, st.Requests)
	}
	if st.Coalesced == 0 {
		t.Fatalf("64 concurrent clients never coalesced a batch: %+v", st)
	}
	t.Logf("stats: %+v mean occupancy %.2f", st, st.MeanOccupancy())
}

// TestBatcherDeadlineExpiry: a request whose context is already dead
// when its batch flushes is dropped with the context's error and never
// computed.
func TestBatcherDeadlineExpiry(t *testing.T) {
	_, prep := prepareRepresentative(t, "dawson5", 64)
	b := NewBatcher(prep, BatcherOptions{Linger: 30 * time.Millisecond})
	defer b.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	y := make([]float64, 123) // wrong length on purpose: must never reach Compute
	if _, err := b.Submit(ctx, y, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit with expired deadline: err = %v, want DeadlineExceeded", err)
	}
	if st := b.Stats(); st.Expired != 1 || st.Flushes != 0 {
		t.Fatalf("stats after expired call: %+v, want Expired=1 Flushes=0", st)
	}
}

// blockingPrep is a fake Prepared whose Compute blocks until released,
// letting tests hold the dispatcher busy deterministically.
type blockingPrep struct {
	entered chan struct{} // receives one token per Compute entry
	release chan struct{} // Compute returns when it can receive
}

func newBlockingPrep() *blockingPrep {
	return &blockingPrep{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (p *blockingPrep) Compute(y, x []float64) {
	p.entered <- struct{}{}
	<-p.release
	for i := range y {
		y[i] = x[i] * 2
	}
}

func (p *blockingPrep) Assignments() []costmodel.Assignment { return nil }

// TestBatcherQueueFullSheds: with the dispatcher stuck in a compute and
// the queue at capacity, Submit sheds immediately with ErrQueueFull.
func TestBatcherQueueFullSheds(t *testing.T) {
	prep := newBlockingPrep()
	b := NewBatcher(prep, BatcherOptions{MaxBatch: 1, Linger: ExplicitZeroLinger, QueueCap: 2})
	defer b.Close()

	x := []float64{1, 2}
	results := make(chan error, 3)
	submit := func() {
		y := make([]float64, 2)
		_, err := b.Submit(context.Background(), y, x)
		results <- err
	}
	go submit()
	<-prep.entered // dispatcher is now stuck computing request 1, queue empty
	go submit()
	go submit()
	// Wait for both to be queued (they block in Submit, not in Compute).
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		n := len(b.queue)
		b.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached capacity (depth %d)", n)
		}
		time.Sleep(time.Millisecond)
	}

	y := make([]float64, 2)
	if _, err := b.Submit(context.Background(), y, x); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if st := b.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}

	close(prep.release) // let everything finish
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request %d failed: %v", i, err)
		}
	}
}

// TestBatcherGracefulDrain: Close lets queued requests finish and
// rejects new ones with ErrDraining.
func TestBatcherGracefulDrain(t *testing.T) {
	prep := newBlockingPrep()
	b := NewBatcher(prep, BatcherOptions{MaxBatch: 1, Linger: ExplicitZeroLinger, QueueCap: 16})

	x := []float64{3, 4}
	const queued = 5
	results := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			y := make([]float64, 2)
			_, err := b.Submit(context.Background(), y, x)
			if err == nil && (y[0] != 6 || y[1] != 8) {
				err = errors.New("wrong result after drain")
			}
			results <- err
		}()
	}
	<-prep.entered // dispatcher busy; the rest are queued or arriving

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	close(prep.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after release")
	}
	// Every request submitted before Close must have completed successfully.
	got := 0
	for {
		select {
		case err := <-results:
			if err != nil && !errors.Is(err, ErrDraining) {
				t.Fatalf("drained request failed: %v", err)
			}
			got++
			if got == queued {
				goto drained
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d requests completed after drain", got, queued)
		}
	}
drained:
	if _, err := b.Submit(context.Background(), make([]float64, 2), x); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Close: err = %v, want ErrDraining", err)
	}
}
