package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"haspmv/internal/amp"
	haspmvcore "haspmv/internal/core"
	"haspmv/internal/exec"
	"haspmv/internal/fleet/shard"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
	"haspmv/internal/store"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

var (
	cServePrepares  = telemetry.NewCounter("serve_prepares")
	cServeEvictions = telemetry.NewCounter("serve_cache_evictions")
	gServeCached    = telemetry.NewGauge("serve_cached_matrices")
	cStoreRestores  = telemetry.NewCounter("serve_store_restores")
	cStoreSpills    = telemetry.NewCounter("serve_store_spills")
	cStoreMisses    = telemetry.NewCounter("serve_store_misses")
	cStoreVerifyErr = telemetry.NewCounter("serve_store_verify_fails")
)

// Registry errors. The HTTP layer maps ErrUnknownMatrix to 404 and
// ErrMatrixTooLarge to 413.
var (
	ErrUnknownMatrix  = errors.New("server: unknown matrix")
	ErrMatrixTooLarge = errors.New("server: matrix too large")
)

// MatrixSource materializes a matrix for a registry key. The default
// source generates one of the Table II representative matrices at the
// requested scale divisor.
type MatrixSource func(name string, scale int) (*sparse.CSR, error)

// DefaultSource builds the representative-matrix source with an nnz
// budget: requests whose published size divided by scale exceeds maxNNZ
// are rejected with ErrMatrixTooLarge before any generation work.
func DefaultSource(maxNNZ int) MatrixSource {
	return func(name string, scale int) (*sparse.CSR, error) {
		ri, ok := gen.RepresentativeInfo(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownMatrix, name)
		}
		if maxNNZ > 0 && ri.PaperNNZ/scale > maxNNZ {
			return nil, fmt.Errorf("%w: %s@%d has ~%d nonzeros, limit %d",
				ErrMatrixTooLarge, name, scale, ri.PaperNNZ/scale, maxNNZ)
		}
		return gen.Representative(name, scale), nil
	}
}

// RegistryOptions configures the prepared-matrix cache.
type RegistryOptions struct {
	// MaxEntries bounds how many prepared matrices stay resident; the
	// least recently used entry is evicted beyond it. Default 8.
	MaxEntries int
	// Batcher is applied to every entry's dynamic batcher.
	Batcher BatcherOptions
	// Source materializes matrices; defaults to DefaultSource(64M nnz).
	Source MatrixSource
	// Adapt, when non-nil, attaches an online repartitioning adapter to
	// every HASpMV entry: each flushed batch feeds the entry's adapter,
	// which rebalances the matrix's partition from measured per-core
	// spans. Baseline algorithms are served unchanged.
	Adapt *haspmvcore.AdapterOptions
	// Recorder, when non-nil, receives the adapter's epoch events
	// (rebalance, rollback) and an anomaly snapshot on every rollback,
	// and adapter epochs are stamped into the in-flight request traces
	// before their waiters release.
	Recorder *tracing.Recorder
	// StoreDir, when set, backs the LRU with the prepared-matrix store:
	// every successful HASpMV build is written through to
	// StoreDir/<key>.hps (async, atomic rename), and a cold Get loads
	// the file by mmap and restores in milliseconds instead of
	// re-running generate+Prepare — eviction effectively spills to disk.
	// The payload checksum sweep runs behind the restore (see
	// restoreFromStore); structural corruption still misses eagerly.
	// Files from another algorithm, machine or format version are
	// ignored (and overwritten by the next write-through).
	StoreDir string
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 8
	}
	if o.Source == nil {
		o.Source = DefaultSource(64 << 20)
	}
	return o
}

// Entry is one resident matrix: the prepared handle, its dynamic
// batcher, and enough shape information for the HTTP layer.
type Entry struct {
	Key        string
	Name       string
	Scale      int
	Rows, Cols int
	NNZ        int
	PrepareMs  float64
	Batcher    *Batcher
	Prep       exec.Prepared
	// Shard describes which row-shard of the matrix this entry serves
	// (Shard.Count <= 1 means the whole matrix). For a shard entry,
	// Rows/Cols/NNZ describe the sliced submatrix: Rows covers the
	// shard's owned row range and Cols its column window, so the HTTP
	// layer validates the router's sliced x against Cols as usual.
	Shard shard.Desc
	// Adapter is the entry's online repartitioning loop (nil unless
	// RegistryOptions.Adapt is set and the algorithm is HASpMV).
	Adapter *haspmvcore.Adapter
	// FromStore reports whether this entry was restored from the
	// prepared-matrix store rather than built by generate+Prepare (in
	// which case PrepareMs is the restore time).
	FromStore bool

	ready    chan struct{}
	err      error
	lastUsed int64
	// file pins the mmap window a restored entry's kernels read from;
	// closed after the batcher drains on evict or registry close.
	file *store.File
}

// Registry caches prepared matrices behind an LRU with single-flight
// deduplication: concurrent requests for the same key share one
// generate+Prepare, and a failed build is forgotten so the next request
// retries instead of serving a cached error.
type Registry struct {
	machine *amp.Machine
	alg     exec.Algorithm
	opts    RegistryOptions

	mu      sync.Mutex
	seq     int64
	closed  bool
	entries map[string]*Entry

	// spilling tracks in-flight store writes by key: a cold Get for a
	// key whose write-through is still running waits for the file
	// instead of re-preparing — the no-double-Prepare guarantee under
	// capacity thrash. spills lets Close drain all writers.
	spillMu  sync.Mutex
	spilling map[string]chan struct{}
	spills   sync.WaitGroup
}

// NewRegistry builds an empty registry serving matrices prepared by alg
// for the given machine model.
func NewRegistry(m *amp.Machine, alg exec.Algorithm, opts RegistryOptions) *Registry {
	return &Registry{
		machine:  m,
		alg:      alg,
		opts:     opts.withDefaults(),
		entries:  make(map[string]*Entry),
		spilling: make(map[string]chan struct{}),
	}
}

// storePath maps a cache key to its store file. Keys contain '@', '#'
// and '/' (shard keys); anything a filesystem might object to becomes
// '_' — a collision just means the key check at load misses and the
// entry rebuilds.
func (r *Registry) storePath(key string) string {
	name := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_', c == '@', c == '#':
			name = append(name, c)
		default:
			name = append(name, '_')
		}
	}
	return filepath.Join(r.opts.StoreDir, string(name)+".hps")
}

// Key is the registry's cache key format.
func Key(name string, scale int) string { return fmt.Sprintf("%s@%d", name, scale) }

// ShardKey is the cache key of one row-shard of a matrix. count <= 1
// collapses to the whole-matrix Key.
func ShardKey(name string, scale, index, count int) string {
	if count <= 1 {
		return Key(name, scale)
	}
	return fmt.Sprintf("%s@%d#%d/%d", name, scale, index, count)
}

// Get returns the resident entry for (name, scale), building it if
// necessary. Exactly one caller runs the build; the rest wait on it (or
// give up when ctx ends — the build itself continues and is cached).
func (r *Registry) Get(ctx context.Context, name string, scale int) (*Entry, error) {
	return r.GetShard(ctx, name, scale, 0, 1)
}

// ShardPlan regenerates the matrix and returns the deterministic
// count-way shard plan the fleet router scatters against. Any worker
// (and the router itself) computes the identical plan from the same
// arguments, so the plan never needs to be distributed.
func (r *Registry) ShardPlan(name string, scale, count int) ([]shard.Desc, error) {
	if count < 1 {
		return nil, fmt.Errorf("server: shard count %d, want >= 1", count)
	}
	mat, err := r.opts.Source(name, scale)
	if err != nil {
		return nil, err
	}
	return shard.Plan(mat, count, nil)
}

// GetShard returns the resident entry serving shard index of a
// count-way split of (name, scale); the whole matrix when count <= 1.
// The shard's submatrix is sliced from the deterministic plan shared
// with ShardPlan, then prepared like any other matrix.
func (r *Registry) GetShard(ctx context.Context, name string, scale, index, count int) (*Entry, error) {
	if count < 1 {
		count = 1
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("server: shard index %d outside 0..%d", index, count-1)
	}
	key := ShardKey(name, scale, index, count)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	if e, ok := r.entries[key]; ok {
		r.seq++
		e.lastUsed = r.seq
		r.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		return e, nil
	}
	e := &Entry{Key: key, Name: name, Scale: scale, ready: make(chan struct{})}
	r.seq++
	e.lastUsed = r.seq
	r.entries[key] = e
	evict := r.evictLockedOver(r.opts.MaxEntries)
	gServeCached.Set(int64(len(r.entries)))
	r.mu.Unlock()
	for _, old := range evict {
		// Drain evicted batchers off the request path; in-flight Submits
		// finish, later ones see ErrDraining and retry via a fresh Get.
		// The mmap window (restored entries) unmaps only after the drain,
		// when no kernel can still read it.
		go func(old *Entry) {
			old.Batcher.Close()
			old.closeFile()
		}(old)
		cServeEvictions.Add(1)
	}

	var prep exec.Prepared
	var prepMs float64
	var err error
	if r.opts.StoreDir != "" {
		// A spill for this key may still be in flight (the entry was just
		// evicted); wait for the file rather than re-preparing.
		r.awaitSpill(key)
		prep = r.restoreFromStore(e, key)
	}
	if prep == nil {
		var mat *sparse.CSR
		mat, err = r.opts.Source(name, scale)
		if err == nil && count > 1 {
			// Slice this worker's shard from the deterministic plan. The full
			// matrix is released right after; only the submatrix stays
			// resident.
			var plan []shard.Desc
			if plan, err = shard.Plan(mat, count, nil); err == nil {
				e.Shard = plan[index]
				mat = shard.Slice(mat, e.Shard)
			}
		}
		if err == nil {
			t0 := time.Now()
			prep, err = r.alg.Prepare(r.machine, mat)
			prepMs = float64(time.Since(t0).Nanoseconds()) / 1e6
		}
		if err == nil {
			e.Rows, e.Cols, e.NNZ = mat.Rows, mat.Cols, mat.NNZ()
			e.PrepareMs = prepMs
		}
	}
	if err != nil {
		e.err = err
		r.mu.Lock()
		delete(r.entries, key)
		gServeCached.Set(int64(len(r.entries)))
		r.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	e.Prep = prep
	r.mu.Lock()
	if r.closed {
		// The registry shut down while we were building: don't start a
		// batcher nobody will drain.
		delete(r.entries, key)
		r.mu.Unlock()
		e.err = ErrDraining
		e.closeFile()
		close(e.ready)
		return nil, ErrDraining
	}
	bopts := r.opts.Batcher
	if r.opts.Adapt != nil {
		if hp, ok := prep.(*haspmvcore.Prepared); ok {
			ad := haspmvcore.NewAdapter(hp, *r.opts.Adapt)
			e.Adapter = ad
			// The adapter observes each flush pre-release (so its epoch
			// decision lands in the flush's traces); any pre-existing
			// observer still runs after the stamp.
			bopts.Observer = &adapterObserver{
				ad: ad, rec: r.opts.Recorder, matrix: key, next: bopts.Observer,
			}
		}
	}
	e.Batcher = NewBatcher(prep, bopts)
	r.mu.Unlock()
	cServePrepares.Add(1)
	if r.opts.StoreDir != "" && !e.FromStore {
		r.startSpill(e)
	}
	close(e.ready)
	return e, nil
}

// storeExtra is the annotation block a spilled entry carries so a
// restore can rebuild the Entry fields and refuse files written for a
// different key or algorithm.
type storeExtra struct {
	Key   string
	Alg   string
	Name  string
	Scale int
	Shard *shard.Desc `json:",omitempty"`
}

// restoreFromStore tries to serve key from the prepared-matrix store,
// filling e and returning the restored prep on success. Any failure —
// no file, corrupt structure, wrong version, wrong algorithm or machine
// — is a miss: the caller falls back to generate+Prepare (whose
// write-through then replaces the unusable file).
//
// The load is verify-behind (store.LoadAsync): the file's structure —
// header, meta and chunk-table checksums, section bounds — is proven
// before the entry serves, but the payload checksum sweep (the only
// full-file pass, and the bulk of a synchronous Load) runs on a
// background goroutine. If that sweep fails, watchVerify drops the
// entry so the next Get rebuilds from scratch; responses served in the
// window between restore and the failure may have read corrupt array
// values. That window is the price of the cold-start target — a
// torn-payload file on a healthy disk requires external interference,
// and the sweep closes it within milliseconds.
func (r *Registry) restoreFromStore(e *Entry, key string) exec.Prepared {
	t0 := time.Now()
	f, err := store.LoadAsync(r.storePath(key))
	if err != nil {
		cStoreMisses.Add(1)
		return nil
	}
	var ex storeExtra
	if raw, ok := f.Extra["entry"]; ok {
		_ = json.Unmarshal([]byte(raw), &ex)
	}
	if ex.Key != key || ex.Alg != r.alg.Name() {
		f.Close()
		cStoreMisses.Add(1)
		return nil
	}
	prep, err := haspmvcore.RestorePrepared(r.machine, f.Snap)
	if err != nil {
		f.Close()
		cStoreMisses.Add(1)
		return nil
	}
	e.Rows, e.Cols = f.Snap.Meta.Rows, f.Snap.Meta.Cols
	e.NNZ = f.Snap.RowPtr[f.Snap.Meta.Rows]
	if ex.Shard != nil {
		e.Shard = *ex.Shard
	}
	e.PrepareMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	e.FromStore = true
	e.file = f
	cStoreRestores.Add(1)
	go r.watchVerify(e, f)
	return prep
}

// watchVerify waits out a restored entry's background payload-checksum
// sweep. On failure it removes the provably-corrupt file (so the next
// Get misses instead of re-restoring the same bad payload), drops the
// entry from the cache and drains its batcher; the rebuild's
// write-through then lays down a fresh file. Exactly one of watchVerify
// and eviction drains the entry: whichever removes it from the map
// under r.mu.
func (r *Registry) watchVerify(e *Entry, f *store.File) {
	if f.Verified() == nil {
		return
	}
	// The entry may still be mid-build in GetShard; its batcher exists
	// only once ready closes (and err covers the registry-closed path).
	<-e.ready
	if e.err != nil {
		return
	}
	cStoreVerifyErr.Add(1)
	// File first, then map: a racing Get either finds this entry (and
	// retries after the drain) or misses the store — never the corrupt
	// file again.
	os.Remove(r.storePath(e.Key))
	r.mu.Lock()
	owned := r.entries[e.Key] == e
	if owned {
		delete(r.entries, e.Key)
		gServeCached.Set(int64(len(r.entries)))
	}
	r.mu.Unlock()
	if owned {
		e.Batcher.Close()
		e.closeFile()
	}
}

// startSpill writes the entry through to the store on a tracked
// goroutine. The snapshot aliases the instance's immutable streams
// (Repartition only moves boundaries), so the write races nothing.
func (r *Registry) startSpill(e *Entry) {
	hp, ok := e.Prep.(*haspmvcore.Prepared)
	if !ok {
		return // baseline algorithms have no snapshot to persist
	}
	done := make(chan struct{})
	r.spillMu.Lock()
	if _, inFlight := r.spilling[e.Key]; inFlight {
		r.spillMu.Unlock()
		return
	}
	r.spilling[e.Key] = done
	r.spillMu.Unlock()
	r.spills.Add(1)
	go func() {
		defer func() {
			r.spillMu.Lock()
			delete(r.spilling, e.Key)
			r.spillMu.Unlock()
			close(done)
			r.spills.Done()
		}()
		ex := storeExtra{Key: e.Key, Alg: r.alg.Name(), Name: e.Name, Scale: e.Scale}
		if e.Shard.Count > 1 {
			sh := e.Shard
			ex.Shard = &sh
		}
		raw, err := json.Marshal(ex)
		if err != nil {
			return
		}
		extra := map[string]string{
			"entry":      string(raw),
			"prepare_ms": strconv.FormatFloat(e.PrepareMs, 'g', -1, 64),
		}
		if store.Write(r.storePath(e.Key), hp.Snapshot(), extra) == nil {
			cStoreSpills.Add(1)
		}
	}()
}

// awaitSpill blocks until no store write for key is in flight.
func (r *Registry) awaitSpill(key string) {
	r.spillMu.Lock()
	done, ok := r.spilling[key]
	r.spillMu.Unlock()
	if ok {
		<-done
	}
}

// closeFile releases the entry's mmap window, if any. Only safe after
// the entry's batcher has drained (no kernel reads the window anymore).
func (e *Entry) closeFile() {
	if e.file != nil {
		e.file.Close()
		e.file = nil
	}
}

// adapterObserver feeds each flush to the entry's adapter and stamps
// the resulting epoch decision into the flush's traces before their
// waiters release. Epoch *moves* (rebalance, rollback) additionally land
// in the flight recorder's event ring; a rollback — the adapter
// admitting it made things worse — is an anomaly, so it snapshots the
// recorder. It runs on the dispatcher goroutine, so the field diffs need
// no synchronization.
type adapterObserver struct {
	ad     *haspmvcore.Adapter
	rec    *tracing.Recorder
	matrix string
	next   FlushObserver

	lastRebalances, lastRollbacks int64
}

func (o *adapterObserver) ObserveFlush(traces []*tracing.Trace) {
	o.ad.AfterMultiply()
	st := o.ad.Stats()
	event := ""
	switch {
	case st.Rollbacks > o.lastRollbacks:
		event = "rollback"
	case st.Rebalances > o.lastRebalances:
		event = "rebalance"
	}
	o.lastRollbacks, o.lastRebalances = st.Rollbacks, st.Rebalances
	for _, tr := range traces {
		tr.AdapterEpoch = st.Epochs
		tr.AdapterEvent = event
	}
	if event != "" && o.rec != nil {
		// Epoch moves are rare (at most one per adapter epoch), so the
		// event allocation stays off the steady-state flush path.
		o.rec.RecordEvent(&tracing.Event{Time: time.Now(), Kind: event, Matrix: o.matrix})
		if event == "rollback" {
			o.rec.Anomaly("adapter-rollback")
		}
	}
	if o.next != nil {
		o.next.ObserveFlush(traces)
	}
}

// evictLockedOver removes least-recently-used *ready* entries until at
// most limit remain, returning the removed entries for the caller to
// drain outside the lock. Entries still being built are never evicted.
func (r *Registry) evictLockedOver(limit int) []*Entry {
	var out []*Entry
	for len(r.entries) > limit {
		var victim *Entry
		for _, e := range r.entries {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if e.err != nil || e.Batcher == nil {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return out
		}
		delete(r.entries, victim.Key)
		out = append(out, victim)
	}
	return out
}

// Entries snapshots the resident entries (ready ones only), sorted by
// key for deterministic listings.
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	var out []*Entry
	for _, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, e)
			}
		default:
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Close drains every resident batcher, blocking until all dispatchers
// have exited. The registry must not be used afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	var all []*Entry
	for _, e := range r.entries {
		all = append(all, e)
	}
	r.entries = make(map[string]*Entry)
	gServeCached.Set(0)
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, e := range all {
		select {
		case <-e.ready:
		default:
			continue // build in flight; its Get sees closed and never starts a batcher
		}
		if e.Batcher == nil {
			continue
		}
		wg.Add(1)
		go func(e *Entry) {
			defer wg.Done()
			e.Batcher.Close()
			e.closeFile()
		}(e)
	}
	wg.Wait()
	// Drain in-flight store writes so a restart finds complete files.
	r.spills.Wait()
}
