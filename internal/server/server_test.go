package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/exec"
	"haspmv/internal/fleet/shard"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Machine == nil {
		cfg.Machine = amp.IntelI912900KF()
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = core.New(core.Options{})
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postMultiply(t *testing.T, url string, req multiplyRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/multiply: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestServeMultiplyEndToEnd: a multiply over HTTP returns exactly the
// bits a local serial Multiply produces (JSON float64 encoding is
// shortest-round-trip, so bit equality survives the wire).
func TestServeMultiplyEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 64})

	const name = "dawson5"
	a := gen.Representative(name, 64)
	prep, err := core.New(core.Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%17) / 16
	}
	want := make([]float64, a.Rows)
	prep.Compute(want, x)

	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: name, X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr multiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	if mr.Rows != a.Rows || mr.Cols != a.Cols || mr.Scale != 64 {
		t.Fatalf("response shape %d x %d @%d, want %d x %d @64", mr.Rows, mr.Cols, mr.Scale, a.Rows, a.Cols)
	}
	if mr.BatchNV < 1 {
		t.Fatalf("batch_nv = %d", mr.BatchNV)
	}
	if len(mr.Y) != a.Rows {
		t.Fatalf("len(y) = %d, want %d", len(mr.Y), a.Rows)
	}
	for i := range mr.Y {
		if mr.Y[i] != want[i] {
			t.Fatalf("y[%d] = %x, serial Multiply gives %x", i, mr.Y[i], want[i])
		}
	}
}

// TestServeValidation covers the 4xx mappings.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 64})

	cases := []struct {
		name   string
		req    multiplyRequest
		status int
	}{
		{"unknown matrix", multiplyRequest{Matrix: "no-such", X: []float64{1}}, http.StatusNotFound},
		{"missing matrix", multiplyRequest{X: []float64{1}}, http.StatusBadRequest},
		{"negative scale", multiplyRequest{Matrix: "dawson5", Scale: -1, X: []float64{1}}, http.StatusBadRequest},
		{"wrong x length", multiplyRequest{Matrix: "dawson5", X: []float64{1, 2, 3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postMultiply(t, ts.URL, tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/multiply")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/multiply: status %d, want 405", resp.StatusCode)
	}

	resp, body := postMultiplyRaw(t, ts.URL, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d (%s), want 400", resp.StatusCode, body)
	}
}

func postMultiplyRaw(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestServeMatricesAndHealthz: the listing shows resident matrices with
// batcher stats, and healthz reports serving.
func TestServeMatricesAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 64})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	var list matricesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Known) != 22 {
		t.Fatalf("known roster has %d names, want 22", len(list.Known))
	}
	if len(list.Resident) != 1 || list.Resident[0].Key != Key("dawson5", 64) {
		t.Fatalf("resident = %+v, want one dawson5@64 entry", list.Resident)
	}
	ri := list.Resident[0]
	if ri.Requests != 1 || ri.NNZ == 0 || ri.Rows != a.Rows {
		t.Fatalf("resident info %+v inconsistent with one served request", ri)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}
}

// slowAlg wraps the blocking fake Prepared in an exec.Algorithm so HTTP
// tests can hold computations open.
type slowAlg struct{ prep *blockingPrep }

func (a *slowAlg) Name() string { return "slow" }
func (a *slowAlg) Prepare(_ *amp.Machine, _ *sparse.CSR) (exec.Prepared, error) {
	return a.prep, nil
}

// TestServeShedsWhenQueueFull: with the dispatcher held busy and the
// queue full, the server answers 429 with a Retry-After hint.
func TestServeShedsWhenQueueFull(t *testing.T) {
	prep := newBlockingPrep()
	srv, ts := newTestServer(t, Config{
		Algorithm: &slowAlg{prep: prep},
		Registry: RegistryOptions{
			Source:  func(string, int) (*sparse.CSR, error) { return diagCSR(t, 4), nil },
			Batcher: BatcherOptions{MaxBatch: 1, Linger: ExplicitZeroLinger, QueueCap: 1},
		},
	})

	x := []float64{1, 2, 3, 4}
	status := make(chan int, 2)
	fire := func() {
		resp, _ := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
		status <- resp.StatusCode
	}
	go fire()
	<-prep.entered // request 1 is computing
	go fire()
	// Wait until request 2 occupies the queue slot.
	e, err := srv.reg.Get(context.Background(), "dawson5", 16)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		e.Batcher.mu.Lock()
		n := len(e.Batcher.queue)
		e.Batcher.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(prep.release)
	for i := 0; i < 2; i++ {
		if got := <-status; got != http.StatusOK {
			t.Fatalf("held request finished with %d, want 200", got)
		}
	}
}

// TestServeDeadlineExpiresInQueue: a queued request whose timeout_ms
// elapses before its flush gets 504.
func TestServeDeadlineExpiresInQueue(t *testing.T) {
	prep := newBlockingPrep()
	srv, ts := newTestServer(t, Config{
		Algorithm: &slowAlg{prep: prep},
		Registry: RegistryOptions{
			Source:  func(string, int) (*sparse.CSR, error) { return diagCSR(t, 4), nil },
			Batcher: BatcherOptions{MaxBatch: 1, Linger: ExplicitZeroLinger, QueueCap: 8},
		},
	})

	x := []float64{1, 2, 3, 4}
	first := make(chan int, 1)
	go func() {
		resp, _ := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
		first <- resp.StatusCode
	}()
	<-prep.entered // request 1 is computing and holds the dispatcher

	second := make(chan int, 1)
	go func() {
		resp, _ := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x, TimeoutMs: 30})
		second <- resp.StatusCode
	}()
	// Wait for request 2 to be queued, then let its 30ms deadline lapse
	// while the dispatcher is still stuck on request 1.
	e, err := srv.reg.Get(context.Background(), "dawson5", 16)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		e.Batcher.mu.Lock()
		n := len(e.Batcher.queue)
		e.Batcher.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(60 * time.Millisecond)

	close(prep.release)
	if got := <-second; got != http.StatusGatewayTimeout {
		t.Fatalf("queued request past deadline: status %d, want 504", got)
	}
	if got := <-first; got != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", got)
	}
}

// TestServeGracefulDrain: Drain finishes in-flight work, then the server
// answers 503 everywhere and healthz reports draining.
func TestServeGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{DefaultScale: 64})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	if resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup multiply: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second Drain should be a no-op: %v", err)
	}

	resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: "dawson5", X: x})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("multiply after drain: %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", hr.StatusCode)
	}
	// The fleet supervisor (and any load balancer) needs the draining
	// healthz to say when to look again.
	if hr.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz 503 missing Retry-After")
	}
}

// TestServeConcurrentClientsBitIdentical is the HTTP-level version of
// the batcher hammer: concurrent clients over the wire, every response
// bit-identical to serial Multiply.
func TestServeConcurrentClientsBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 16})

	const name = "dawson5"
	a := gen.Representative(name, 16)
	prep, err := core.New(core.Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	const patterns = 4
	X := make([][]float64, patterns)
	refs := make([][]float64, patterns)
	for p := 0; p < patterns; p++ {
		X[p] = make([]float64, a.Cols)
		for i := range X[p] {
			X[p][i] = float64((i+p)%31) / 30
		}
		refs[p] = make([]float64, a.Rows)
		prep.Compute(refs[p], X[p])
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				p := (g + j) % patterns
				resp, body := postMultiply(t, ts.URL, multiplyRequest{Matrix: name, Scale: 16, X: X[p]})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d (%s)", g, resp.StatusCode, body)
					return
				}
				var mr multiplyResponse
				if err := json.Unmarshal(body, &mr); err != nil {
					errs <- err
					return
				}
				for i := range mr.Y {
					if mr.Y[i] != refs[p][i] {
						errs <- fmt.Errorf("client %d: y[%d] = %x, want %x (batch_nv %d)", g, i, mr.Y[i], refs[p][i], mr.BatchNV)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServeShardMultiply: shard requests return the fragment for the
// shard's row range, and gathering all fragments reproduces the serial
// result — the worker half of the fleet's scatter-gather path.
func TestServeShardMultiply(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 64})

	a := gen.Representative("dawson5", 64)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%9)*0.5
	}
	want := make([]float64, a.Rows)
	prep, err := core.New(core.Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	prep.Compute(want, x)

	// Fetch the plan the worker derived for a 3-way split.
	resp, err := http.Get(ts.URL + "/v1/shardplan?matrix=dawson5&scale=64&count=3")
	if err != nil {
		t.Fatal(err)
	}
	var planResp shardPlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&planResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(planResp.Shards) != 3 {
		t.Fatalf("shardplan: status %d, %d shards", resp.StatusCode, len(planResp.Shards))
	}

	frags := make([][]float64, 3)
	for i, d := range planResp.Shards {
		r, body := postMultiply(t, ts.URL, multiplyRequest{
			Matrix: "dawson5", Scale: 64,
			ShardIndex: i, ShardCount: 3,
			X: x[d.ColLo:d.ColHi],
		})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("shard %d multiply: %d %s", i, r.StatusCode, body)
		}
		var mr multiplyResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.ShardIndex != i || mr.ShardCount != 3 || mr.Row0 != d.Row0 {
			t.Fatalf("shard %d echo: index %d count %d row0 %d, want %d/3/%d",
				i, mr.ShardIndex, mr.ShardCount, mr.Row0, i, d.Row0)
		}
		if len(mr.Y) != d.Row1-d.Row0+1 {
			t.Fatalf("shard %d fragment has %d rows, want %d", i, len(mr.Y), d.Row1-d.Row0+1)
		}
		frags[i] = mr.Y
	}
	y := make([]float64, a.Rows)
	if err := shard.Gather(y, planResp.Shards, frags); err != nil {
		t.Fatal(err)
	}
	// Tolerance, not bit-equality: the full-matrix reference and the
	// shard slices are different prepared partitions, and HASpMV may cut
	// any row across cores with its own fragment association. (Bit
	// determinism holds within one prepared shard — the fleet router's
	// guarantee — and is asserted by the fleet package's group tests.)
	for i := range want {
		diff := y[i] - want[i]
		if diff < 0 {
			diff = -diff
		}
		mag := want[i]
		if mag < 0 {
			mag = -mag
		}
		if diff > 1e-9*(1+mag) {
			t.Fatalf("row %d: got %v want %v", i, y[i], want[i])
		}
	}
}

func TestServeShardValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 64})
	// Out-of-range shard index.
	resp, body := postMultiply(t, ts.URL, multiplyRequest{
		Matrix: "dawson5", ShardIndex: 5, ShardCount: 3, X: []float64{1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: %d %s, want 400", resp.StatusCode, body)
	}
	// shardplan parameter errors.
	for _, q := range []string{
		"matrix=dawson5&scale=64&count=0",
		"matrix=dawson5&scale=0&count=2",
		"matrix=no-such&scale=64&count=2",
	} {
		r, err := http.Get(ts.URL + "/v1/shardplan?" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Fatalf("shardplan?%s accepted", q)
		}
	}
}
