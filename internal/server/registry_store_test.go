package server

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/store"
)

func newStoreRegistry(t testing.TB, src MatrixSource, maxEntries int, dir string, opts core.Options) *Registry {
	t.Helper()
	r := NewRegistry(amp.IntelI912900KF(), core.New(opts), RegistryOptions{
		MaxEntries: maxEntries,
		Source:     src,
		Batcher:    BatcherOptions{Linger: ExplicitZeroLinger},
		StoreDir:   dir,
	})
	t.Cleanup(r.Close)
	return r
}

// submitRetry multiplies through the entry's batcher, re-Getting when
// the entry was evicted mid-flight (the documented ErrDraining
// protocol).
func submitRetry(t testing.TB, r *Registry, name string, scale, n int) []float64 {
	t.Helper()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%7)
	}
	y := make([]float64, n)
	for attempt := 0; attempt < 50; attempt++ {
		e, err := r.Get(context.Background(), name, scale)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if _, err := e.Batcher.Submit(context.Background(), y, x); err == nil {
			return y
		} else if !errors.Is(err, ErrDraining) {
			t.Fatalf("Submit(%s): %v", name, err)
		}
	}
	t.Fatalf("Submit(%s): still draining after 50 retries", name)
	return nil
}

// A capacity-1 registry with a store dir must serve an evicted matrix
// from disk — bit-identical responses, no second generate+Prepare.
func TestRegistryStoreSpillRestore(t *testing.T) {
	src := &countingSource{size: 96}
	dir := t.TempDir()
	r := newStoreRegistry(t, src.source(t), 1, dir, core.Options{})

	y1 := submitRetry(t, r, "a", 16, 96)
	r.spills.Wait() // write-through lands before we thrash the cache
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 1 {
		t.Fatalf("store dir after first build: %v entries, err %v", len(ents), err)
	}

	submitRetry(t, r, "b", 16, 96) // evicts "a"
	y2 := submitRetry(t, r, "a", 16, 96)

	for i := range y1 {
		if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
			t.Fatalf("row %d differs after spill→restore", i)
		}
	}
	if n := src.count(Key("a", 16)); n != 1 {
		t.Fatalf("matrix a generated %d times, want 1 (restore must skip Prepare)", n)
	}
	e, err := r.Get(context.Background(), "a", 16)
	if err != nil {
		t.Fatal(err)
	}
	if !e.FromStore {
		t.Fatal("entry for re-fetched matrix not marked FromStore")
	}
}

// Thrashing a capacity-1 registry across two keys from many goroutines
// must never double-Prepare a key (the spill/evict race): a cold Get
// waits for the key's in-flight write-through and restores from it.
func TestRegistryStoreThrashNoDoublePrepare(t *testing.T) {
	src := &countingSource{size: 96}
	r := newStoreRegistry(t, src.source(t), 1, t.TempDir(), core.Options{})

	ref := submitRetry(t, r, "a", 16, 96)
	r.spills.Wait()

	const workers, iters = 8, 6
	var wg sync.WaitGroup
	results := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "a"
			if w%2 == 1 {
				name = "b"
			}
			for it := 0; it < iters; it++ {
				y := submitRetry(t, r, name, 16, 96)
				if name == "a" {
					results[w] = y
				}
			}
		}(w)
	}
	wg.Wait()

	for _, key := range []string{Key("a", 16), Key("b", 16)} {
		if n := src.count(key); n != 1 {
			t.Fatalf("%s generated %d times under thrash, want 1", key, n)
		}
	}
	for w, y := range results {
		if y == nil {
			continue
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("worker %d row %d differs from pre-spill response", w, i)
			}
		}
	}
}

// A corrupt, truncated or foreign store file must never be served: the
// registry falls back to generate+Prepare and overwrites it.
func TestRegistryStoreBadFileFallsBack(t *testing.T) {
	cases := []struct {
		name string
		file func(t *testing.T, path string)
	}{
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a store file at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			src := &countingSource{size: 96}
			d2 := t.TempDir()
			r2 := newStoreRegistry(t, src.source(t), 1, d2, core.Options{})
			submitRetry(t, r2, "seed", 16, 96)
			r2.spills.Wait()
			ents, err := os.ReadDir(d2)
			if err != nil || len(ents) != 1 {
				t.Fatalf("seed store: %d entries, %v", len(ents), err)
			}
			buf, err := os.ReadFile(filepath.Join(d2, ents[0].Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &countingSource{size: 96}
			dir := t.TempDir()
			r := newStoreRegistry(t, src.source(t), 1, dir, core.Options{})
			tc.file(t, r.storePath(Key("a", 16)))
			submitRetry(t, r, "a", 16, 96)
			if n := src.count(Key("a", 16)); n != 1 {
				t.Fatalf("bad file: matrix generated %d times, want 1 fallback build", n)
			}
			e, err := r.Get(context.Background(), "a", 16)
			if err != nil {
				t.Fatal(err)
			}
			if e.FromStore {
				t.Fatal("bad store file was served")
			}
		})
	}
}

// A file spilled by a differently-configured algorithm must miss: its
// partition and streams answer a different Options set.
func TestRegistryStoreAlgMismatch(t *testing.T) {
	dir := t.TempDir()
	src1 := &countingSource{size: 96}
	r1 := newStoreRegistry(t, src1.source(t), 1, dir, core.Options{})
	submitRetry(t, r1, "a", 16, 96)
	r1.spills.Wait()
	r1.Close()

	src2 := &countingSource{size: 96}
	r2 := newStoreRegistry(t, src2.source(t), 1, dir, core.Options{Metric: core.NNZCost})
	submitRetry(t, r2, "a", 16, 96)
	if n := src2.count(Key("a", 16)); n != 1 {
		t.Fatalf("foreign-alg file: generated %d times, want a fresh build", n)
	}
	e, err := r2.Get(context.Background(), "a", 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.FromStore {
		t.Fatal("store file from a different algorithm was served")
	}
}

// A restart (new registry over the same dir) cold-starts every matrix
// from the store with zero generate+Prepare calls.
func TestRegistryStoreColdStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	src1 := &countingSource{size: 96}
	r1 := newStoreRegistry(t, src1.source(t), 4, dir, core.Options{})
	y1 := submitRetry(t, r1, "a", 16, 96)
	r1.Close() // drains spills

	src2 := &countingSource{size: 96}
	r2 := newStoreRegistry(t, src2.source(t), 4, dir, core.Options{})
	y2 := submitRetry(t, r2, "a", 16, 96)
	if n := src2.count(Key("a", 16)); n != 0 {
		t.Fatalf("restart generated the matrix %d times, want 0 (pure cold start)", n)
	}
	for i := range y1 {
		if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
			t.Fatalf("row %d differs across restart", i)
		}
	}
	// The restored snapshot still matches the store's own reading.
	e, _ := r2.Get(context.Background(), "a", 16)
	if !e.FromStore || e.NNZ == 0 {
		t.Fatalf("restart entry: FromStore=%v NNZ=%d", e.FromStore, e.NNZ)
	}
	f, err := store.Load(r2.storePath(Key("a", 16)))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// A store file whose structure is intact but whose payload fails the
// verify-behind checksum sweep must be retired: watchVerify removes
// the file, drops the restored entry, and the next Get rebuilds from
// scratch (its write-through lays down a fresh file).
func TestRegistryStoreVerifyFailureRetiresEntry(t *testing.T) {
	dir := t.TempDir()
	src1 := &countingSource{size: 96}
	r1 := newStoreRegistry(t, src1.source(t), 1, dir, core.Options{})
	want := submitRetry(t, r1, "a", 16, 96)
	r1.Close() // drains the write-through

	// Flip one payload byte: every structural checksum still matches,
	// only the chunk sweep can see the damage.
	path := r1.storePath(Key("a", 16))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x80
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	src2 := &countingSource{size: 96}
	r2 := newStoreRegistry(t, src2.source(t), 1, dir, core.Options{})
	e, err := r2.Get(context.Background(), "a", 16)
	if err != nil {
		t.Fatal(err)
	}
	if !e.FromStore {
		t.Fatal("corrupt-payload file should restore eagerly (structure is intact)")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		e, err := r2.Get(context.Background(), "a", 16)
		if err != nil {
			t.Fatal(err)
		}
		if !e.FromStore {
			break // retired and rebuilt
		}
		if time.Now().After(deadline) {
			t.Fatal("corrupt entry never retired by the verify sweep")
		}
		time.Sleep(time.Millisecond)
	}
	if n := src2.count(Key("a", 16)); n != 1 {
		t.Fatalf("rebuild generated the matrix %d times, want 1", n)
	}
	got := submitRetry(t, r2, "a", 16, 96)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d differs after verify-failure rebuild", i)
		}
	}
}
