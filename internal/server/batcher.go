// Package server is the HASpMV serving subsystem: an HTTP/JSON SpMV
// service whose core is a per-matrix dynamic batcher. Concurrent
// Multiply requests against the same prepared matrix are coalesced into
// one fused ComputeBatch call using a size/time window — flush as soon
// as kernel.MaxBlock requests are waiting, or after a short configurable
// linger otherwise — so the matrix's value and column streams are walked
// once for the whole batch instead of once per request.
//
// Coalescing is transparent: ComputeBatch is bit-exact with respect to
// Compute (see internal/core/batch.go), so a response carries exactly
// the float64 bits a solo Multiply would have produced regardless of how
// many neighbours it shared a batch with.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

// Serving telemetry. All metrics self-gate on the telemetry enabled
// flag, so the disabled cost is one atomic load per event.
var (
	cServeRequests  = telemetry.NewCounter("serve_requests")
	cServeCoalesced = telemetry.NewCounter("serve_coalesced_requests")
	cServeSolo      = telemetry.NewCounter("serve_solo_requests")
	cServeFlushes   = telemetry.NewCounter("serve_flushes")
	cServeShed      = telemetry.NewCounter("serve_shed")
	cServeExpired   = telemetry.NewCounter("serve_expired")
	gServeQueue     = telemetry.NewGauge("serve_queue_depth")
	hServeOccupancy = telemetry.NewValueHistogram("serve_batch_occupancy")
	hServeLatency   = telemetry.NewHistogram("serve_request")
	// Stage-attributed latency histograms: the four stages partition each
	// served request's queue-to-release lifetime exactly (see execute).
	hStageQueue   = telemetry.NewHistogram("serve_stage_queue")
	hStageLinger  = telemetry.NewHistogram("serve_stage_linger")
	hStageCompute = telemetry.NewHistogram("serve_stage_compute")
	hStageMerge   = telemetry.NewHistogram("serve_stage_merge")
)

// Batcher errors surfaced to callers of Submit. The HTTP layer maps
// ErrQueueFull to 429 (with Retry-After) and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("server: request queue full")
	ErrDraining  = errors.New("server: batcher draining")
)

// BatcherOptions tunes one matrix's coalescing window.
type BatcherOptions struct {
	// MaxBatch is the flush size: a batch is dispatched as soon as this
	// many requests are waiting. Defaults to kernel.MaxBlock, the widest
	// block the fused kernel serves in one pass over the index stream.
	MaxBatch int
	// Linger is how long the dispatcher holds an under-full batch open
	// for more arrivals before flushing what it has. Zero flushes
	// immediately (no coalescing window). Default 200µs.
	Linger time.Duration
	// QueueCap bounds the number of queued requests; Submit sheds with
	// ErrQueueFull beyond it. Default 256.
	QueueCap int
	// AfterFlush, when set, runs on the dispatcher goroutine after every
	// dispatched batch has been computed and its waiters released — the
	// serving hook for the online repartitioning adapter (one fused batch
	// counts as one observed multiply).
	AfterFlush func()
	// Observer, when set, runs on the dispatcher goroutine after every
	// dispatched batch has been computed and *before* its waiters are
	// released, receiving the flush's traced requests — so anything it
	// stamps into the traces (the adapter epoch that observed the flush)
	// is visible to the handlers that will record them.
	Observer FlushObserver
}

// FlushObserver observes dispatched flushes (see BatcherOptions.Observer).
// The traces slice is dispatcher-owned and reused; implementations must
// not retain it past the call (retaining the *Trace pointers themselves
// is also wrong — they are released to their waiters right after).
type FlushObserver interface {
	ObserveFlush(traces []*tracing.Trace)
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = kernel.MaxBlock
	}
	if o.Linger < 0 {
		o.Linger = 0
	} else if o.Linger == 0 {
		o.Linger = 200 * time.Microsecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	return o
}

// ExplicitZeroLinger is the sentinel for "no coalescing window at all":
// BatcherOptions.Linger values below one nanosecond are impossible to
// request through withDefaults (0 means "default"), so callers that want
// a pure size-window batcher pass this.
const ExplicitZeroLinger = -1 * time.Nanosecond

// call is one queued Multiply request.
type call struct {
	ctx  context.Context
	x, y []float64
	enq  time.Time
	nv   int   // batch width the call was served in, set before done closes
	err  error // terminal error (context error), set before done closes
	done chan struct{}
	// tr is the request's span record (nil when untraced). The dispatcher
	// fills the stage and flush fields before done closes; afterwards the
	// submitter owns the trace again.
	tr *tracing.Trace
}

// BatcherStats is a snapshot of one batcher's lifetime counters, used by
// the /v1/matrices endpoint and the closed-loop load generator.
type BatcherStats struct {
	Requests  int64 // calls accepted into the queue
	Flushes   int64 // batches dispatched (including width-1)
	Coalesced int64 // requests served in a batch of width >= 2
	Solo      int64 // requests served alone
	Shed      int64 // calls rejected with ErrQueueFull
	Expired   int64 // calls dropped because their context ended in queue
	// Cumulative stage-attributed time across all served requests. For
	// each request the four stages partition its queue-to-release
	// lifetime exactly, so their sum equals the sum of served latencies.
	QueueNs, LingerNs, ComputeNs, MergeNs int64
}

// StageMeans returns the average per-request time in each stage (queue,
// linger, compute, merge), in nanoseconds, over all served requests.
func (s BatcherStats) StageMeans() [4]float64 {
	served := s.Coalesced + s.Solo
	if served == 0 {
		return [4]float64{}
	}
	d := float64(served)
	return [4]float64{
		float64(s.QueueNs) / d, float64(s.LingerNs) / d,
		float64(s.ComputeNs) / d, float64(s.MergeNs) / d,
	}
}

// MeanOccupancy is the average batch width over all flushes.
func (s BatcherStats) MeanOccupancy() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Coalesced+s.Solo) / float64(s.Flushes)
}

// Batcher coalesces concurrent requests against one prepared matrix.
// Submit blocks until the request's batch has been computed; a single
// dispatcher goroutine owns the flush loop, so the executor only ever
// sees one Compute/ComputeBatch call per matrix at a time.
type Batcher struct {
	prep exec.Prepared
	opts BatcherOptions

	mu       sync.Mutex
	queue    []*call
	draining bool

	// wake carries at most one pending token; Submit and Close send
	// without blocking, the dispatcher drains it when idle.
	wake chan struct{}
	done chan struct{}

	// Lifetime counters, independent of the gated telemetry registry so
	// the load generator can read occupancy with telemetry disabled.
	requests, flushes, coalesced, solo, shed, expired         atomic.Int64
	stageQueueNs, stageLingerNs, stageComputeNs, stageMergeNs atomic.Int64

	// Dispatcher-owned scratch for gathering batch views, the flush's
	// traced requests, and the reusable compute breakdown — all reused
	// across flushes so the steady-state flush allocates nothing.
	xs, ys [][]float64
	trs    []*tracing.Trace
	bd     tracing.ComputeBreakdown
}

// NewBatcher starts the dispatcher goroutine for one prepared matrix.
// Callers must Close the batcher to stop it.
func NewBatcher(prep exec.Prepared, opts BatcherOptions) *Batcher {
	b := &Batcher{
		prep: prep,
		opts: opts.withDefaults(),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

// Stats snapshots the lifetime counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Requests:  b.requests.Load(),
		Flushes:   b.flushes.Load(),
		Coalesced: b.coalesced.Load(),
		Solo:      b.solo.Load(),
		Shed:      b.shed.Load(),
		Expired:   b.expired.Load(),
		QueueNs:   b.stageQueueNs.Load(),
		LingerNs:  b.stageLingerNs.Load(),
		ComputeNs: b.stageComputeNs.Load(),
		MergeNs:   b.stageMergeNs.Load(),
	}
}

// Submit enqueues y = A*x and blocks until the dispatcher has served the
// request (or dropped it because ctx ended while it was still queued).
// On success it returns the width of the batch the request was computed
// in; y then holds exactly the bits a solo Compute would have produced.
// Submit never returns while the dispatcher might still write to y, so
// callers may reuse their buffers immediately.
func (b *Batcher) Submit(ctx context.Context, y, x []float64) (nv int, err error) {
	return b.SubmitTraced(ctx, y, x, nil)
}

// SubmitTraced is Submit with a per-request span record: the dispatcher
// fills tr's stage durations (queue, linger, compute, merge — summing
// exactly to TotalNs), flush linkage (width, cause, per-core critical
// path, format split) before SubmitTraced returns. tr is caller-owned;
// the batcher never retains it past the return. A nil tr is plain
// Submit.
func (b *Batcher) SubmitTraced(ctx context.Context, y, x []float64, tr *tracing.Trace) (nv int, err error) {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return 0, ErrDraining
	}
	if len(b.queue) >= b.opts.QueueCap {
		b.mu.Unlock()
		b.shed.Add(1)
		cServeShed.Add(1)
		return 0, ErrQueueFull
	}
	c := &call{ctx: ctx, x: x, y: y, enq: time.Now(), done: make(chan struct{}), tr: tr}
	if tr != nil {
		tr.Start = c.enq
	}
	b.queue = append(b.queue, c)
	depth := len(b.queue)
	b.mu.Unlock()

	b.requests.Add(1)
	cServeRequests.Add(1)
	gServeQueue.Set(int64(depth))
	select {
	case b.wake <- struct{}{}:
	default:
	}

	// The dispatcher closes done for every call it dequeues, including
	// expired ones, and Close drains the queue before the dispatcher
	// exits — so this wait always terminates, bounded by the time to
	// flush everything ahead of the call.
	<-c.done
	return c.nv, c.err
}

// Close stops accepting new requests, lets the dispatcher flush
// everything already queued, and blocks until it has exited. Safe to
// call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	<-b.done
}

// loop is the dispatcher: wait for work, hold the linger window open
// while the batch is under-full, then flush up to MaxBatch requests in
// one fused call.
func (b *Batcher) loop() {
	defer close(b.done)
	var batch []*call
	for {
		b.mu.Lock()
		for len(b.queue) == 0 {
			if b.draining {
				b.mu.Unlock()
				return
			}
			b.mu.Unlock()
			<-b.wake
			b.mu.Lock()
		}
		var lingerNs int64
		lingered := false
		if len(b.queue) < b.opts.MaxBatch && !b.draining && b.opts.Linger > 0 {
			b.mu.Unlock()
			t0 := time.Now()
			b.linger()
			lingerNs = int64(time.Since(t0))
			lingered = true
			b.mu.Lock()
		}
		n := len(b.queue)
		// The flush trigger: "full" when the size window tripped, "drain"
		// when Close is flushing the tail, "linger" when the time window
		// expired with the batch under-full.
		cause := flushFull
		switch {
		case b.draining:
			cause = flushDrain
		case lingered && n < b.opts.MaxBatch:
			cause = flushLinger
		}
		if n > b.opts.MaxBatch {
			n = b.opts.MaxBatch
		}
		batch = append(batch[:0], b.queue[:n]...)
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:rest]
		gServeQueue.Set(int64(rest))
		b.mu.Unlock()
		b.execute(batch, lingerNs, cause)
	}
}

// Flush causes, as reported in Trace.FlushCause.
const (
	flushFull   = "full"
	flushLinger = "linger"
	flushDrain  = "drain"
)

// linger holds the coalescing window open: it returns when the window
// expires, the batch fills, or the batcher starts draining.
func (b *Batcher) linger() {
	t := time.NewTimer(b.opts.Linger)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			return
		case <-b.wake:
			b.mu.Lock()
			full := len(b.queue) >= b.opts.MaxBatch || b.draining
			b.mu.Unlock()
			if full {
				return
			}
		}
	}
}

// execute drops expired calls, serves the survivors with one fused call
// (or a plain Compute for a lone request), attributes each request's
// latency to its four stages, and releases every waiter.
//
// Stage attribution partitions the queue-to-release lifetime exactly:
// of the wait until the flush dispatched, up to lingerNs (the time this
// flush held its window open) is "linger" and the rest is "queue"; the
// fused kernel's parallel phase is "compute"; and everything after it —
// extraY merge, flush observer, waiter release — is "merge". So
// TotalNs == QueueNs + LingerNs + ComputeNs + MergeNs by construction.
func (b *Batcher) execute(batch []*call, lingerNs int64, cause string) {
	live := batch[:0]
	var tDrop time.Time
	for _, c := range batch {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			b.expired.Add(1)
			cServeExpired.Add(1)
			if c.tr != nil {
				if tDrop.IsZero() {
					tDrop = time.Now()
				}
				wait := int64(tDrop.Sub(c.enq))
				ls := min64(lingerNs, wait)
				c.tr.QueueNs = wait - ls
				c.tr.LingerNs = ls
				c.tr.TotalNs = wait
			}
			close(c.done)
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	nv := len(live)
	b.flushes.Add(1)
	cServeFlushes.Add(1)
	hServeOccupancy.Observe(int64(nv))
	// The breakdown is reused across flushes; filling it is always on (a
	// handful of time.Now calls per flush) so the stage accounting works
	// with telemetry gated off, like the adapter's span accumulators.
	bd := &b.bd
	bd.Reset()
	tFlush := time.Now()
	if nv == 1 {
		b.solo.Add(1)
		cServeSolo.Add(1)
		exec.ComputeTraced(b.prep, live[0].y, live[0].x, bd)
	} else {
		b.coalesced.Add(int64(nv))
		cServeCoalesced.Add(int64(nv))
		X := b.xs[:0]
		Y := b.ys[:0]
		for _, c := range live {
			X = append(X, c.x)
			Y = append(Y, c.y)
		}
		b.xs, b.ys = X[:0], Y[:0]
		exec.ComputeBatchTraced(b.prep, Y, X, bd)
	}
	// Link the flush into every traced request before the observer runs,
	// so the adapter's epoch stamp completes the trace pre-release.
	trs := b.trs[:0]
	for _, c := range live {
		if tr := c.tr; tr != nil {
			tr.BatchNV = nv
			tr.FlushCause = cause
			tr.Cores = bd.Cores
			tr.MaxCoreNs = bd.MaxCoreNs
			tr.NNZByFormat = bd.NNZByFormat
			trs = append(trs, tr)
		}
	}
	b.trs = trs[:0]
	if b.opts.Observer != nil {
		b.opts.Observer.ObserveFlush(trs)
	}
	now := time.Now()
	for _, c := range live {
		c.nv = nv
		wait := int64(tFlush.Sub(c.enq))
		ls := min64(lingerNs, wait)
		queue := wait - ls
		compute := min64(bd.KernelNs, int64(now.Sub(c.enq))-wait)
		merge := int64(now.Sub(c.enq)) - wait - compute
		b.stageQueueNs.Add(queue)
		b.stageLingerNs.Add(ls)
		b.stageComputeNs.Add(compute)
		b.stageMergeNs.Add(merge)
		hStageQueue.Observe(time.Duration(queue))
		hStageLinger.Observe(time.Duration(ls))
		hStageCompute.Observe(time.Duration(compute))
		hStageMerge.Observe(time.Duration(merge))
		if tr := c.tr; tr != nil {
			tr.QueueNs = queue
			tr.LingerNs = ls
			tr.ComputeNs = compute
			tr.MergeNs = merge
			tr.TotalNs = queue + ls + compute + merge
		}
		hServeLatency.Observe(now.Sub(c.enq))
		close(c.done)
	}
	if b.opts.AfterFlush != nil {
		b.opts.AfterFlush()
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
