package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/fleet/shard"
	"haspmv/internal/gen"
	"haspmv/internal/telemetry/tracing"
)

// Config assembles a serving stack.
type Config struct {
	// Machine is the AMP model matrices are prepared for. Required.
	Machine *amp.Machine
	// Algorithm prepares matrices; required (cmd/haspmv-serve passes
	// core.New, the HASpMV algorithm).
	Algorithm exec.Algorithm
	// Registry tunes the prepared-matrix cache and per-matrix batchers.
	Registry RegistryOptions
	// DefaultScale is used when a request omits "scale". Default 16, the
	// test-friendly divisor used across the harness.
	DefaultScale int
	// DefaultTimeout bounds requests that carry no timeout_ms. Default 2s.
	DefaultTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 responses, in seconds.
	// Default 1.
	RetryAfter int
	// Recorder enables per-request tracing: every multiply's span record
	// (queue/linger/compute/merge stages, flush linkage, adapter epoch)
	// lands here on completion, retrievable at /v1/debug/flightrecorder
	// and snapshotted automatically on anomaly. nil disables tracing;
	// request IDs are still generated and echoed.
	Recorder *tracing.Recorder
	// SLO is the per-request latency objective backing the p99-over-SLO
	// anomaly trigger: more than 1% of a sliding request window finishing
	// over SLO snapshots the flight recorder. Zero disables the trigger.
	SLO time.Duration
	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, request id, duration, and for multiplies the
	// matrix and stage-attributed latency). Wired to -access-log on
	// haspmv-serve.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.DefaultScale <= 0 {
		c.DefaultScale = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	return c
}

// Server is the HTTP/JSON SpMV service:
//
//	POST /v1/multiply   {"matrix","scale","x","timeout_ms"} -> {"y",...}
//	GET  /v1/matrices   resident prepared matrices and batcher stats
//	GET  /healthz       200 serving / 503 draining
//
// Requests for the same matrix are coalesced by the per-matrix Batcher;
// overload is shed with 429 + Retry-After, and Drain stops intake before
// flushing in-flight work for a graceful shutdown.
type Server struct {
	cfg     Config
	reg     *Registry
	mux     *http.ServeMux
	anomaly *anomalyPolicy

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// New builds a Server. It panics if Machine or Algorithm is missing
// (wiring bug, not a runtime condition).
func New(cfg Config) *Server {
	if cfg.Machine == nil || cfg.Algorithm == nil {
		panic("server: Config.Machine and Config.Algorithm are required")
	}
	cfg = cfg.withDefaults()
	if cfg.Registry.Recorder == nil {
		// The registry stamps adapter epochs into the same recorder.
		cfg.Registry.Recorder = cfg.Recorder
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.Machine, cfg.Algorithm, cfg.Registry),
		mux:     http.NewServeMux(),
		anomaly: &anomalyPolicy{rec: cfg.Recorder, sloNs: int64(cfg.SLO)},
	}
	s.mux.HandleFunc("/v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("/v1/shardplan", s.handleShardPlan)
	s.mux.HandleFunc("/v1/matrices", s.handleMatrices)
	s.mux.HandleFunc("/v1/debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Mux returns the server's mux so callers can mount extra handlers
// (cmd/haspmv-serve adds telemetry.RegisterHandlers) before listening.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// ServeHTTP implements http.Handler: it assigns or propagates the
// request id (echoed as X-Request-ID on every response, error paths
// included), tracks in-flight requests so Drain can wait for them, and
// emits the access log line after the handler finishes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = tracing.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	if s.cfg.AccessLog != nil {
		defer func() { s.writeAccessLog(sw, r, reqID, time.Since(start)) }()
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// /healthz stays reachable so load balancers see the drain.
		if r.URL.Path == "/healthz" {
			s.handleHealthz(sw, r)
			return
		}
		s.reject(sw, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	s.mux.ServeHTTP(sw, r)
}

// statusWriter remembers the response status for the access log and the
// trace record, and carries the multiply handler's trace out to the
// logger so the access line can attribute latency to stages.
type statusWriter struct {
	http.ResponseWriter
	code int
	tr   *tracing.Trace
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// writeAccessLog emits one logfmt line per request. Stage fields appear
// when the request was a traced multiply.
func (s *Server) writeAccessLog(sw *statusWriter, r *http.Request, reqID string, dur time.Duration) {
	if tr := sw.tr; tr != nil {
		fmt.Fprintf(s.cfg.AccessLog,
			"method=%s path=%s status=%d id=%s dur_us=%d matrix=%s queue_us=%d linger_us=%d compute_us=%d merge_us=%d batch_nv=%d\n",
			r.Method, r.URL.Path, sw.status(), reqID, dur.Microseconds(),
			tr.Matrix, tr.QueueNs/1e3, tr.LingerNs/1e3, tr.ComputeNs/1e3, tr.MergeNs/1e3, tr.BatchNV)
		return
	}
	fmt.Fprintf(s.cfg.AccessLog, "method=%s path=%s status=%d id=%s dur_us=%d\n",
		r.Method, r.URL.Path, sw.status(), reqID, dur.Microseconds())
}

// Preload builds registry entries ahead of traffic (the -preload flag).
func (s *Server) Preload(ctx context.Context, name string, scale int) error {
	if scale <= 0 {
		scale = s.cfg.DefaultScale
	}
	_, err := s.reg.Get(ctx, name, scale)
	return err
}

// Drain performs a graceful shutdown: stop accepting requests, wait for
// in-flight handlers, then flush and stop every batcher. It returns
// ctx's error if the deadline expires first (batcher queues are bounded,
// so the flush itself terminates).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.reg.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

type multiplyRequest struct {
	Matrix    string    `json:"matrix"`
	Scale     int       `json:"scale"`
	X         []float64 `json:"x"`
	TimeoutMs int       `json:"timeout_ms"`
	// ShardIndex/ShardCount select one row-shard of a ShardCount-way
	// split (the fleet router's scatter path). Zero count (or 1) is a
	// whole-matrix request; x must then have the shard's column-window
	// width instead of the full column count.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
}

type multiplyResponse struct {
	Matrix  string    `json:"matrix"`
	Scale   int       `json:"scale"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	BatchNV int       `json:"batch_nv"`
	Y       []float64 `json:"y"`
	// Shard echo: which row range the fragment in Y covers (the gather
	// epilogue's sanity check). Present only on shard requests.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	Row0       int `json:"row0,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type matrixInfo struct {
	Key       string  `json:"key"`
	Matrix    string  `json:"matrix"`
	Scale     int     `json:"scale"`
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	NNZ       int     `json:"nnz"`
	Shard     string  `json:"shard,omitempty"`
	PrepareMs float64 `json:"prepare_ms"`
	// FromStore marks an entry cold-started from the prepared-matrix
	// store (PrepareMs is then the mmap+restore time, not a Prepare).
	FromStore bool  `json:"from_store,omitempty"`
	Requests  int64 `json:"requests"`
	Flushes   int64 `json:"flushes"`
	Coalesced int64 `json:"coalesced"`
	Solo      int64 `json:"solo"`
	Shed      int64 `json:"shed"`
	Expired   int64 `json:"expired"`
	// Adaptive-execution progress, present when the registry runs with
	// online repartitioning enabled.
	Rebalances int64   `json:"rebalances,omitempty"`
	Imbalance  float64 `json:"imbalance,omitempty"`
	Proportion float64 `json:"proportion,omitempty"`
}

// shardLabel renders a shard desc as "i/n" for listings ("" for a
// whole-matrix entry).
func shardLabel(d shard.Desc) string {
	if d.Count <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", d.Index, d.Count)
}

type matricesResponse struct {
	Known    []string     `json:"known"`
	Resident []matrixInfo `json:"resident"`
}

func (s *Server) reject(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.cfg.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var tr *tracing.Trace
	if s.cfg.Recorder != nil {
		// One span record per request, allocated at admission on the
		// handler path (which already allocates the decode and response
		// buffers); the flush path only fills preallocated fields. It is
		// handed to the recorder exactly once, after the status is known —
		// never mutated afterwards, as the lock-free snapshot reader
		// requires.
		tr = &tracing.Trace{ID: w.Header().Get("X-Request-ID"), Start: time.Now()}
		if tr.ID == "" {
			// Mounted without the ServeHTTP wrapper (direct mux use).
			tr.ID = tracing.NewRequestID()
			w.Header().Set("X-Request-ID", tr.ID)
		}
		if sw, ok := w.(*statusWriter); ok {
			sw.tr = tr
		}
		defer s.finishTrace(w, tr)
	}
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// A scale-1 circuit5M x vector is ~45MB of JSON floats; 256MB leaves
	// headroom while still bounding a hostile body.
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	var req multiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.reject(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Matrix == "" {
		s.reject(w, http.StatusBadRequest, `missing "matrix"`)
		return
	}
	if req.Scale < 0 {
		s.reject(w, http.StatusBadRequest, `"scale" must be >= 1`)
		return
	}
	if req.Scale == 0 {
		req.Scale = s.cfg.DefaultScale
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if req.ShardCount < 0 || (req.ShardCount > 0 && (req.ShardIndex < 0 || req.ShardIndex >= req.ShardCount)) {
		s.reject(w, http.StatusBadRequest,
			fmt.Sprintf("shard %d/%d out of range", req.ShardIndex, req.ShardCount))
		return
	}
	if tr != nil {
		tr.Matrix = ShardKey(req.Matrix, req.Scale, req.ShardIndex, req.ShardCount)
	}
	e, err := s.reg.GetShard(ctx, req.Matrix, req.Scale, req.ShardIndex, req.ShardCount)
	if err != nil {
		if tr != nil {
			tr.Err = err.Error()
		}
		switch {
		case errors.Is(err, ErrUnknownMatrix):
			s.reject(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrMatrixTooLarge):
			s.reject(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.Is(err, ErrDraining):
			s.reject(w, http.StatusServiceUnavailable, "draining")
		case errors.Is(err, context.DeadlineExceeded):
			s.reject(w, http.StatusGatewayTimeout, "deadline expired while preparing matrix")
		case errors.Is(err, context.Canceled):
			// Client went away; nothing useful to write.
		default:
			s.reject(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	if len(req.X) != e.Cols {
		s.reject(w, http.StatusBadRequest,
			fmt.Sprintf("x has length %d, %s needs %d", len(req.X), e.Key, e.Cols))
		return
	}

	y := make([]float64, e.Rows)
	nv, err := e.Batcher.SubmitTraced(ctx, y, req.X, tr)
	if err != nil {
		if tr != nil {
			tr.Err = err.Error()
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			s.anomaly.onShed()
			s.reject(w, http.StatusTooManyRequests, "queue full, retry later")
		case errors.Is(err, ErrDraining):
			s.reject(w, http.StatusServiceUnavailable, "draining")
		case errors.Is(err, context.DeadlineExceeded):
			s.reject(w, http.StatusGatewayTimeout, "deadline expired in queue")
		case errors.Is(err, context.Canceled):
			// Client went away.
		default:
			s.reject(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	resp := multiplyResponse{
		Matrix: req.Matrix, Scale: req.Scale,
		Rows: e.Rows, Cols: e.Cols, BatchNV: nv, Y: y,
	}
	if e.Shard.Count > 1 {
		resp.ShardIndex = e.Shard.Index
		resp.ShardCount = e.Shard.Count
		resp.Row0 = e.Shard.Row0
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleShardPlan serves the deterministic shard plan of a matrix:
//
//	GET /v1/shardplan?matrix=NAME&scale=S&count=N
//
// The router fetches this once per sharded matrix to learn each shard's
// row range and column window (the x slice to scatter); any worker
// returns the identical plan, so the endpoint is freely load-balanced.
func (s *Server) handleShardPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	name := q.Get("matrix")
	if name == "" {
		s.reject(w, http.StatusBadRequest, `missing "matrix"`)
		return
	}
	scale := s.cfg.DefaultScale
	if v := q.Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.reject(w, http.StatusBadRequest, "scale must be a positive integer")
			return
		}
		scale = n
	}
	count := 1
	if v := q.Get("count"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.reject(w, http.StatusBadRequest, "count must be a positive integer")
			return
		}
		count = n
	}
	plan, err := s.reg.ShardPlan(name, scale, count)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownMatrix):
			s.reject(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrMatrixTooLarge):
			s.reject(w, http.StatusRequestEntityTooLarge, err.Error())
		default:
			s.reject(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(shardPlanResponse{
		Matrix: name, Scale: scale, Count: count, Shards: plan,
	})
}

type shardPlanResponse struct {
	Matrix string       `json:"matrix"`
	Scale  int          `json:"scale"`
	Count  int          `json:"count"`
	Shards []shard.Desc `json:"shards"`
}

func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := matricesResponse{Known: gen.RepresentativeNames(), Resident: []matrixInfo{}}
	for _, e := range s.reg.Entries() {
		st := e.Batcher.Stats()
		mi := matrixInfo{
			Key: e.Key, Matrix: e.Name, Scale: e.Scale,
			Rows: e.Rows, Cols: e.Cols, NNZ: e.NNZ, PrepareMs: e.PrepareMs,
			FromStore: e.FromStore,
			Shard:     shardLabel(e.Shard),
			Requests:  st.Requests, Flushes: st.Flushes,
			Coalesced: st.Coalesced, Solo: st.Solo,
			Shed: st.Shed, Expired: st.Expired,
		}
		if e.Adapter != nil {
			as := e.Adapter.Stats()
			mi.Rebalances = as.Rebalances
			mi.Imbalance = as.Imbalance
			mi.Proportion = as.Proportion
		}
		resp.Resident = append(resp.Resident, mi)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// finishTrace completes and records a multiply's span after the response
// is written: the HTTP status, a total for requests that never reached a
// flush (attributed to queue — they died waiting), and the anomaly
// bookkeeping. Runs once per traced request; the trace must not be
// touched afterwards.
func (s *Server) finishTrace(w http.ResponseWriter, tr *tracing.Trace) {
	if sw, ok := w.(*statusWriter); ok {
		tr.Status = sw.status()
	}
	if tr.TotalNs == 0 {
		tr.TotalNs = int64(time.Since(tr.Start))
		if tr.StageSumNs() == 0 {
			tr.QueueNs = tr.TotalNs
		}
	}
	s.cfg.Recorder.Record(tr)
	if tr.Status == http.StatusOK {
		s.anomaly.onServed(tr.TotalNs)
	}
}

// handleFlightRecorder serves the on-demand snapshot of the flight
// recorder (GET), or the last anomaly snapshot with ?anomaly=last.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.cfg.Recorder == nil {
		s.reject(w, http.StatusNotFound, "flight recorder disabled (start with tracing enabled)")
		return
	}
	if r.URL.Query().Get("anomaly") == "last" {
		last := s.cfg.Recorder.LastAnomaly()
		if last == nil {
			s.reject(w, http.StatusNotFound, "no anomaly snapshot yet")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(last)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.cfg.Recorder.WriteJSON(w)
}

// Anomaly thresholds: a shed spike is shedSpikeCount rejections inside
// shedSpikeWindow; the SLO trigger fires when more than 1% of a
// sloWindowSize-request window finishes over Config.SLO (the "p99 over
// SLO" condition, evaluated without retaining per-request latencies).
const (
	shedSpikeCount  = 8
	shedSpikeWindow = time.Second
	sloWindowSize   = 128
)

// anomalyPolicy converts request-stream signals into flight-recorder
// snapshots. It sits on the handler path (never the flush path), so a
// mutex is fine.
type anomalyPolicy struct {
	rec   *tracing.Recorder
	sloNs int64

	mu          sync.Mutex
	shedStart   time.Time
	shedCount   int
	reqCount    int
	breachCount int
}

func (a *anomalyPolicy) onShed() {
	if a.rec == nil {
		return
	}
	a.mu.Lock()
	now := time.Now()
	if a.shedStart.IsZero() || now.Sub(a.shedStart) > shedSpikeWindow {
		a.shedStart, a.shedCount = now, 0
	}
	a.shedCount++
	spike := a.shedCount == shedSpikeCount
	a.mu.Unlock()
	if spike {
		a.rec.Anomaly("shed-spike")
	}
}

func (a *anomalyPolicy) onServed(totalNs int64) {
	if a.rec == nil || a.sloNs <= 0 {
		return
	}
	a.mu.Lock()
	a.reqCount++
	if totalNs > a.sloNs {
		a.breachCount++
	}
	trigger := false
	if a.reqCount >= sloWindowSize {
		trigger = a.breachCount > a.reqCount/100
		a.reqCount, a.breachCount = 0, 0
	}
	a.mu.Unlock()
	if trigger {
		a.rec.Anomaly("p99-over-slo")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		// 503 with Retry-After tells the fleet router (and any load
		// balancer) to stop routing here and when to probe again — a
		// draining worker must not look healthy.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.cfg.RetryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}
