// Package csr5 implements the CSR5 storage format and its SpMV (Liu &
// Vinter, ICS'15), the paper's strongest open-source baseline. The nonzero
// stream is partitioned into fixed-size tiles of omega x sigma entries;
// each tile carries a bit flag marking where rows begin, and SpMV runs a
// bit-flag-driven segmented sum over each tile with carry resolution
// between tiles and threads. Tiles are distributed evenly over cores, so
// the nnz balance is perfect — but, like Merge-SpMV, the split is
// heterogeneity-blind.
//
// As in the original, each tile stores its values and column indices
// transposed (column-major: lane l holds entries l*sigma..l*sigma+sigma-1
// of the tile, interleaved), which is what lets AVX2 lanes advance in
// lock-step; building that layout is the dominant conversion cost the
// paper's Figure 10 charges CSR5 for. The y_offset/seg_offset companion
// arrays of the original exist to parallelize the prefix sums across
// lanes; the scalar executor resolves segments directly from the bit
// flags, which computes the same sums in the same tile order.
package csr5

import (
	"fmt"
	"math/bits"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// Omega is the SIMD lane count (4 doubles in AVX2).
const Omega = 4

// New builds the algorithm for the given core composition with the sigma
// heuristic of the original (sigma grows with the average row length,
// clamped to [4, 32]). sigmaOverride > 0 fixes sigma for tests/ablations.
func New(cfg amp.Config) exec.Algorithm { return &alg{cfg: cfg} }

// NewWithSigma fixes the tile height, for tests and ablation benches.
func NewWithSigma(cfg amp.Config, sigma int) exec.Algorithm {
	return &alg{cfg: cfg, sigma: sigma}
}

type alg struct {
	cfg   amp.Config
	sigma int
}

func (a *alg) Name() string { return fmt.Sprintf("CSR5(%v)", a.cfg) }

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	sigma := a.sigma
	if sigma <= 0 {
		sigma = sigmaHeuristic(mat)
	}
	tileNNZ := Omega * sigma
	nnz := mat.NNZ()
	ntiles := nnz / tileNNZ

	p := &prepared{
		mat:     mat,
		cores:   m.Cores(a.cfg),
		sigma:   sigma,
		tileNNZ: tileNNZ,
		ntiles:  ntiles,
	}

	// Transposed tile storage: original tile position p = lane*sigma+off
	// lands at off*Omega+lane, so the four lanes' entries interleave.
	p.tileVal = make([]float64, ntiles*tileNNZ)
	p.tileCol = make([]int, ntiles*tileNNZ)
	for t := 0; t < ntiles; t++ {
		base := t * tileNNZ
		for pp := 0; pp < tileNNZ; pp++ {
			idx := base + (pp%sigma)*Omega + pp/sigma
			p.tileVal[idx] = mat.Val[base+pp]
			p.tileCol[idx] = mat.ColIdx[base+pp]
		}
	}

	// tileStartRow[i]: the row containing the tile's first nonzero. The
	// extra entry covers the scalar tail.
	p.tileStartRow = make([]int, ntiles+1)
	words := (tileNNZ + 63) / 64
	p.bitFlag = make([]uint64, ntiles*words)
	p.flagWords = words

	row := 0
	for tile := 0; tile < ntiles; tile++ {
		base := tile * tileNNZ
		for mat.RowPtr[row+1] <= base {
			row++
		}
		p.tileStartRow[tile] = row
		// Mark row starts within the tile (including one at the tile base).
		r := sort.SearchInts(mat.RowPtr, base) // first row starting at or after base
		for ; r <= mat.Rows; r++ {
			start := mat.RowPtr[r]
			if start >= base+tileNNZ {
				break
			}
			// Only rows that actually own nonzeros produce a flag (empty
			// rows share their RowPtr with the next row).
			if r < mat.Rows && mat.RowPtr[r+1] > start {
				w := (start - base) / 64
				b := (start - base) % 64
				p.bitFlag[tile*words+w] |= 1 << b
			}
		}
	}
	if ntiles > 0 {
		base := ntiles * tileNNZ
		for row < mat.Rows && mat.RowPtr[row+1] <= base {
			row++
		}
	}
	p.tileStartRow[ntiles] = row // first row of the scalar tail

	// Even tile split across cores; the last core also takes the tail.
	n := len(p.cores)
	p.tileBounds = make([]int, n+1)
	for i := 0; i <= n; i++ {
		p.tileBounds[i] = ntiles * i / n
	}
	return p, nil
}

// sigmaHeuristic follows the original's rule of thumb: taller tiles for
// matrices with longer rows.
func sigmaHeuristic(mat *sparse.CSR) int {
	if mat.Rows == 0 {
		return 4
	}
	avg := mat.NNZ() / mat.Rows
	switch {
	case avg <= 4:
		return 4
	case avg <= 16:
		return 8
	case avg <= 64:
		return 16
	default:
		return 32
	}
}

type prepared struct {
	mat          *sparse.CSR
	cores        []int
	sigma        int
	tileNNZ      int
	ntiles       int
	flagWords    int
	bitFlag      []uint64
	tileStartRow []int
	tileBounds   []int
	// tileVal/tileCol hold the transposed (column-major) tile entries;
	// the scalar tail past ntiles*tileNNZ stays in the CSR arrays.
	tileVal []float64
	tileCol []int
}

// dotRange sums val*x over logical positions [k0, k1), reading the
// transposed tile storage for the tiled region and the CSR arrays for the
// tail.
func (p *prepared) dotRange(x []float64, k0, k1 int) float64 {
	sum := 0.0
	tiled := p.ntiles * p.tileNNZ
	k := k0
	for k < k1 && k < tiled {
		t := k / p.tileNNZ
		pp := k - t*p.tileNNZ
		end := k1
		if tileEnd := (t + 1) * p.tileNNZ; end > tileEnd {
			end = tileEnd
		}
		base := t * p.tileNNZ
		// Walk the transposed layout incrementally: position pp =
		// lane*sigma + off lives at off*Omega + lane, so advancing pp
		// steps the index by Omega until off wraps.
		off := pp % p.sigma
		lane := pp / p.sigma
		idx := base + off*Omega + lane
		for ; k < end; k++ {
			sum += p.tileVal[idx] * x[p.tileCol[idx]]
			off++
			if off == p.sigma {
				off = 0
				lane++
				idx = base + lane
			} else {
				idx += Omega
			}
		}
	}
	if k < k0 {
		k = k0
	}
	for ; k < k1; k++ {
		sum += p.mat.Val[k] * x[p.mat.ColIdx[k]]
	}
	return sum
}

func (p *prepared) Compute(y, x []float64) {
	mat := p.mat
	for i := range y {
		y[i] = 0
	}
	n := len(p.cores)
	carryRow := make([]int, n)
	carryVal := make([]float64, n)
	exec.Parallel(n, func(t int) {
		tLo, tHi := p.tileBounds[t], p.tileBounds[t+1]
		isLast := t == n-1
		if tLo == tHi && !isLast {
			carryRow[t] = -1
			return
		}
		var lo, hi int
		var curRow int
		if tLo < tHi {
			lo = tLo * p.tileNNZ
			hi = tHi * p.tileNNZ
			curRow = p.tileStartRow[tLo]
		} else {
			// Last thread with no tiles: only the tail.
			lo = p.ntiles * p.tileNNZ
			hi = lo
			curRow = p.tileStartRow[p.ntiles]
		}
		if isLast {
			hi = mat.NNZ()
		}

		// Segmented sum over [lo, hi): the first segment (before any bit
		// flag) is this thread's carry; later segments add directly.
		carrySum := 0.0
		inCarry := true
		segStart := lo
		flush := func(end int) {
			if end <= segStart {
				return
			}
			s := p.dotRange(x, segStart, end)
			if inCarry {
				carrySum += s
			} else {
				y[curRow] += s
			}
			segStart = end
		}
		startRow := func(k int) {
			flush(k)
			// Advance to the row whose nonzeros start at k.
			for mat.RowPtr[curRow+1] <= k {
				curRow++
			}
			inCarry = false
		}
		// Tiled region: scan the bit-flag words, visiting set bits only.
		for t := tLo; t < tHi; t++ {
			base := t * p.tileNNZ
			for w := 0; w < p.flagWords; w++ {
				word := p.bitFlag[t*p.flagWords+w]
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << b
					startRow(base + w*64 + b)
				}
			}
		}
		// Scalar tail (last thread only): row starts come from RowPtr.
		if tail := p.ntiles * p.tileNNZ; hi > tail {
			from := tail
			if lo > from {
				from = lo
			}
			r := sort.SearchInts(mat.RowPtr, from)
			for ; r < mat.Rows; r++ {
				start := mat.RowPtr[r]
				if start >= hi {
					break
				}
				if mat.RowPtr[r+1] > start {
					startRow(start)
				}
			}
		}
		flush(hi)
		if lo < hi {
			carryRow[t] = rowOfNNZ(mat, lo)
		} else {
			carryRow[t] = -1
		}
		carryVal[t] = carrySum
	})
	for t := 0; t < n; t++ {
		if carryRow[t] >= 0 {
			y[carryRow[t]] += carryVal[t]
		}
	}
}

// flagAt reports whether nonzero k begins a row, reading the tile bit
// flags for the tiled region and the row pointers for the scalar tail.
func (p *prepared) flagAt(k int) bool {
	tile := k / p.tileNNZ
	if tile < p.ntiles {
		off := k - tile*p.tileNNZ
		return p.bitFlag[tile*p.flagWords+off/64]&(1<<(off%64)) != 0
	}
	// Tail: consult RowPtr directly.
	r := rowOfNNZ(p.mat, k)
	return p.mat.RowPtr[r] == k
}

// rowOfNNZ returns the row containing nonzero k.
func rowOfNNZ(mat *sparse.CSR, k int) int {
	return sort.Search(mat.Rows, func(i int) bool { return mat.RowPtr[i+1] > k })
}

func (p *prepared) Assignments() []costmodel.Assignment {
	n := len(p.cores)
	asgs := make([]costmodel.Assignment, n)
	for i, c := range p.cores {
		lo := p.tileBounds[i] * p.tileNNZ
		hi := p.tileBounds[i+1] * p.tileNNZ
		if i == n-1 {
			hi = p.mat.NNZ()
		}
		asgs[i] = costmodel.Assignment{Core: c, Spans: []costmodel.Span{{Lo: lo, Hi: hi}}}
	}
	return asgs
}

// FlagPopcount returns the total number of row-start flags across tiles;
// exported for tests (it must equal the number of non-empty rows whose
// first nonzero falls in the tiled region).
func (p *prepared) FlagPopcount() int {
	total := 0
	for _, w := range p.bitFlag {
		total += bits.OnesCount64(w)
	}
	return total
}
