package csr5

import (
	"math"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

func TestCorrectnessAllMachines(t *testing.T) {
	for _, m := range amp.All() {
		for _, cfg := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
			alg := New(cfg)
			t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
				algtest.CheckAlgorithm(t, alg, m)
			})
		}
	}
}

func TestPropertyRandomMatrices(t *testing.T) {
	algtest.CheckProperty(t, New(amp.PAndE), amp.IntelI913900KF(), 15)
}

func TestAllSigmas(t *testing.T) {
	m := amp.IntelI912900KF()
	for _, sigma := range []int{1, 2, 4, 8, 16, 32} {
		alg := NewWithSigma(amp.PAndE, sigma)
		t.Run(alg.Name(), func(t *testing.T) {
			algtest.CheckOnMatrix(t, alg, m, algtest.Matrix("powerlaw"))
			algtest.CheckOnMatrix(t, alg, m, algtest.Matrix("alternating-empty"))
			algtest.CheckOnMatrix(t, alg, m, algtest.Matrix("hub-row"))
		})
	}
}

func TestSigmaHeuristic(t *testing.T) {
	cases := []struct {
		avg, want int
	}{{2, 4}, {8, 8}, {40, 16}, {200, 32}}
	for _, tc := range cases {
		a := gen.Spec{Name: "s", Rows: 100, Cols: 10000, TargetNNZ: 100 * tc.avg,
			Dist: gen.ConstLen{L: tc.avg}, Place: gen.Random, Seed: 1}.Generate()
		if got := sigmaHeuristic(a); got != tc.want {
			t.Errorf("avg %d: sigma %d, want %d", tc.avg, got, tc.want)
		}
	}
	if sigmaHeuristic(&sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}) != 4 {
		t.Error("empty matrix sigma")
	}
}

// Every non-empty row whose first nonzero lies in the tiled region must
// contribute exactly one bit flag.
func TestBitFlagPopulation(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("alternating-empty")
	prep, err := NewWithSigma(amp.PAndE, 4).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*prepared)
	tiledNNZ := p.ntiles * p.tileNNZ
	want := 0
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r+1] > a.RowPtr[r] && a.RowPtr[r] < tiledNNZ {
			want++
		}
	}
	if got := p.FlagPopcount(); got != want {
		t.Fatalf("flag popcount %d, want %d", got, want)
	}
}

// Tile distribution balances nnz within one tile of slack.
func TestTileBalance(t *testing.T) {
	m := amp.IntelI913900KF() // 24 cores
	a := algtest.Matrix("powerlaw")
	prep, err := New(amp.PAndE).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*prepared)
	asgs := prep.Assignments()
	min, max := math.MaxInt, 0
	for i, asg := range asgs {
		n := asg.NNZ()
		if i == len(asgs)-1 {
			n -= a.NNZ() - p.ntiles*p.tileNNZ // discount the tail
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > p.tileNNZ {
		t.Fatalf("tile balance: min %d max %d (tile %d)", min, max, p.tileNNZ)
	}
}

func TestMatrixSmallerThanOneTile(t *testing.T) {
	m := amp.IntelI912900KF()
	a := sparse.FromDense([][]float64{{1, 2}, {3, 0}}, 0)
	algtest.CheckOnMatrix(t, NewWithSigma(amp.PAndE, 32), m, a)
}

func TestRowSpanningManyTiles(t *testing.T) {
	// One row of 1000 nnz with sigma 2 (tile = 8 nnz) spans 125 tiles.
	m := amp.IntelI912900KF()
	a := gen.Spec{Name: "span", Rows: 3, Cols: 2000, TargetNNZ: 3000,
		Dist: gen.ConstLen{L: 1000}, Place: gen.Random, Seed: 9}.Generate()
	algtest.CheckOnMatrix(t, NewWithSigma(amp.PAndE, 2), m, a)
}

func TestRejectsInvalidMatrix(t *testing.T) {
	bad := algtest.Matrix("fig1-8x8").Clone()
	bad.Val = bad.Val[:3]
	if _, err := New(amp.PAndE).Prepare(amp.IntelI912900KF(), bad); err == nil {
		t.Fatal("accepted invalid matrix")
	}
}

// flagAt (the positional view of the bit flags) must agree with RowPtr in
// both the tiled region and the scalar tail.
func TestFlagAtAgreesWithRowPtr(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("alternating-empty")
	prep, err := NewWithSigma(amp.PAndE, 4).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*prepared)
	starts := map[int]bool{}
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r+1] > a.RowPtr[r] {
			starts[a.RowPtr[r]] = true
		}
	}
	for k := 0; k < a.NNZ(); k++ {
		if got, want := p.flagAt(k), starts[k]; got != want {
			t.Fatalf("flagAt(%d) = %v, want %v", k, got, want)
		}
	}
}
