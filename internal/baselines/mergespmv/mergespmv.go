// Package mergespmv implements Merge-based Parallel SpMV (Merrill &
// Garland, SC'16), one of the paper's two open-source baselines. The
// merge-path formulation treats SpMV as merging the row-end-offset list
// with the nonzero index list: splitting that merge path into equal
// diagonals gives every core exactly the same rows+nnz workload, with rows
// cut mid-way when necessary and repaired by a carry-out fixup pass. The
// partition is perfectly balanced in (rows + nnz) — but heterogeneity
// blind, which is why HASpMV outpaces it on AMPs.
package mergespmv

import (
	"fmt"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
)

// New builds the algorithm for the given core composition.
func New(cfg amp.Config) exec.Algorithm { return &alg{cfg: cfg} }

type alg struct{ cfg amp.Config }

func (a *alg) Name() string { return fmt.Sprintf("Merge-SpMV(%v)", a.cfg) }

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	cores := m.Cores(a.cfg)
	n := len(cores)
	p := &prepared{
		mat:      mat,
		cores:    cores,
		rowStart: make([]int, n+1),
		nnzStart: make([]int, n+1),
	}
	total := mat.Rows + mat.NNZ()
	for t := 0; t <= n; t++ {
		d := total * t / n
		r, k := mergePathSearch(mat.RowPtr, mat.Rows, mat.NNZ(), d)
		p.rowStart[t] = r
		p.nnzStart[t] = k
	}
	return p, nil
}

// mergePathSearch finds the (row, nnz) split of diagonal d: the largest
// row count r such that the first r row-end offsets all precede the
// remaining nonzero indices, with r + k = d.
func mergePathSearch(rowPtr []int, rows, nnz, d int) (r, k int) {
	lo := d - nnz
	if lo < 0 {
		lo = 0
	}
	hi := d
	if hi > rows {
		hi = rows
	}
	// Find the largest r in [lo, hi] with rowPtr[r] <= d - r.
	// sort.Search finds the smallest r violating it.
	r = lo + sort.Search(hi-lo, func(off int) bool {
		rr := lo + off + 1
		return rowPtr[rr] > d-rr
	})
	return r, d - r
}

type prepared struct {
	mat      *sparse.CSR
	cores    []int
	rowStart []int
	nnzStart []int
}

func (p *prepared) Compute(y, x []float64) {
	mat := p.mat
	n := len(p.cores)
	carryRow := make([]int, n)
	carryVal := make([]float64, n)
	exec.Parallel(n, func(t int) {
		r, k := p.rowStart[t], p.nnzStart[t]
		rEnd, kEnd := p.rowStart[t+1], p.nnzStart[t+1]
		// Consume complete rows: everything up to each row-end offset.
		for ; r < rEnd; r++ {
			end := mat.RowPtr[r+1]
			y[r] = kernel.DotRange(mat.Val, mat.ColIdx, x, k, end, kernel.DefaultUnrollThreshold)
			k = end
		}
		// Partial last row (no row-end inside this thread's diagonal).
		if k < kEnd {
			carryRow[t] = r
			carryVal[t] = kernel.DotRange(mat.Val, mat.ColIdx, x, k, kEnd, kernel.DefaultUnrollThreshold)
		} else {
			carryRow[t] = -1
		}
	})
	// Serial carry fixup, in thread order.
	for t := 0; t < n; t++ {
		if carryRow[t] >= 0 {
			y[carryRow[t]] += carryVal[t]
		}
	}
}

func (p *prepared) Assignments() []costmodel.Assignment {
	asgs := make([]costmodel.Assignment, len(p.cores))
	for i, c := range p.cores {
		asgs[i] = costmodel.Assignment{
			Core:  c,
			Spans: []costmodel.Span{{Lo: p.nnzStart[i], Hi: p.nnzStart[i+1]}},
		}
	}
	return asgs
}
