package mergespmv

import (
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
)

func TestCorrectnessAllMachines(t *testing.T) {
	for _, m := range amp.All() {
		for _, cfg := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
			alg := New(cfg)
			t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
				algtest.CheckAlgorithm(t, alg, m)
			})
		}
	}
}

func TestPropertyRandomMatrices(t *testing.T) {
	algtest.CheckProperty(t, New(amp.PAndE), amp.IntelI913900KF(), 15)
}

func TestMergePathSearchInvariants(t *testing.T) {
	// rowPtr for rows of lengths 3, 0, 2, 5.
	rowPtr := []int{0, 3, 3, 5, 10}
	rows, nnz := 4, 10
	total := rows + nnz
	prevR, prevK := 0, 0
	for d := 0; d <= total; d++ {
		r, k := mergePathSearch(rowPtr, rows, nnz, d)
		if r+k != d {
			t.Fatalf("d=%d: r+k = %d", d, r+k)
		}
		if r < prevR || k < prevK {
			t.Fatalf("d=%d: split (%d,%d) went backwards from (%d,%d)", d, r, k, prevR, prevK)
		}
		if r < 0 || r > rows || k < 0 || k > nnz {
			t.Fatalf("d=%d: split (%d,%d) out of range", d, r, k)
		}
		// Merge-path feasibility: everything merged so far from the row
		// list precedes everything not yet merged from the nnz list.
		if r > 0 && k < nnz && rowPtr[r] > k {
			t.Fatalf("d=%d: rowPtr[%d]=%d > k=%d", d, r, rowPtr[r], k)
		}
		if k > 0 && r < rows && k-1 >= rowPtr[r+1] {
			t.Fatalf("d=%d: consumed nnz %d beyond row end %d", d, k-1, rowPtr[r+1])
		}
		prevR, prevK = r, k
	}
	if r, k := mergePathSearch(rowPtr, rows, nnz, total); r != rows || k != nnz {
		t.Fatalf("final split (%d,%d)", r, k)
	}
}

// The merge-path split must balance rows+nnz perfectly even on a hub
// matrix where nnz-per-row is wildly skewed.
func TestDiagonalBalance(t *testing.T) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("hub-row")
	prep, err := New(amp.PAndE).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*prepared)
	n := len(p.cores)
	total := a.Rows + a.NNZ()
	for tIdx := 0; tIdx < n; tIdx++ {
		items := (p.rowStart[tIdx+1] - p.rowStart[tIdx]) + (p.nnzStart[tIdx+1] - p.nnzStart[tIdx])
		want := total / n
		if items < want-1 || items > want+2 {
			t.Fatalf("thread %d merge items %d, want ~%d", tIdx, items, want)
		}
	}
}

func TestSingleCore(t *testing.T) {
	// Degenerate machine use: POnly on a machine still has 8 cores, so
	// exercise the n=1 path via a one-core custom machine.
	m := amp.IntelI912900KF()
	m.Groups[0].Cores = 1
	m.Groups[1].Cores = 1
	algtest.CheckAlgorithm(t, New(amp.PAndE), m)
}

func TestRejectsInvalidMatrix(t *testing.T) {
	bad := algtest.Matrix("fig1-8x8").Clone()
	bad.RowPtr[3] = bad.RowPtr[4] + 1
	if _, err := New(amp.PAndE).Prepare(amp.IntelI912900KF(), bad); err == nil {
		t.Fatal("accepted invalid matrix")
	}
}
