package csrsimple

import (
	"math"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
)

func TestCorrectnessAllConfigs(t *testing.T) {
	for _, m := range amp.All() {
		for _, cfg := range []amp.Config{amp.POnly, amp.EOnly, amp.PAndE} {
			for _, sched := range []Schedule{ByRows, ByNNZ} {
				alg := New(cfg, sched)
				t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
					algtest.CheckAlgorithm(t, alg, m)
				})
			}
		}
	}
}

func TestPropertyRandomMatrices(t *testing.T) {
	m := amp.IntelI913900KF()
	algtest.CheckProperty(t, New(amp.PAndE, ByRows), m, 12)
	algtest.CheckProperty(t, New(amp.PAndE, ByNNZ), m, 12)
}

func TestByRowsBoundaries(t *testing.T) {
	m := amp.IntelI912900KF() // 16 cores
	a := algtest.Matrix("fig1-8x8")
	prep, err := New(amp.PAndE, ByRows).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	// 8 rows over 16 cores: every assignment row-aligned, half empty.
	asgs := prep.Assignments()
	if len(asgs) != 16 {
		t.Fatalf("assignments: %d", len(asgs))
	}
	nonEmpty := 0
	for _, asg := range asgs {
		if asg.NNZ() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 || nonEmpty > 8 {
		t.Fatalf("non-empty assignments: %d", nonEmpty)
	}
}

func TestByNNZBalance(t *testing.T) {
	m := amp.IntelI912900KF()
	// Constant rows: nnz split should be near-perfect at row granularity.
	a := algtest.Matrix("const-rows")
	prep, err := New(amp.PAndE, ByNNZ).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	asgs := prep.Assignments()
	min, max := math.MaxInt, 0
	for _, asg := range asgs {
		n := asg.NNZ()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	avg := a.NNZ() / len(asgs)
	if max-min > 2*9+1 { // at most about two rows of slack
		t.Fatalf("nnz balance: min %d max %d (avg %d)", min, max, avg)
	}
}

func TestScheduleString(t *testing.T) {
	if ByRows.String() != "rows" || ByNNZ.String() != "nnz" {
		t.Fatal("schedule strings")
	}
}

func TestAssignmentsMatchConfig(t *testing.T) {
	m := amp.IntelI913900KF()
	a := algtest.Matrix("banded-fem")
	prep, _ := New(amp.EOnly, ByNNZ).Prepare(m, a)
	for _, asg := range prep.Assignments() {
		g, _ := m.GroupOf(asg.Core)
		if g.Kind != amp.Efficiency {
			t.Fatalf("EOnly assignment on core %d (%v)", asg.Core, g.Kind)
		}
	}
}

func TestRejectsInvalidMatrix(t *testing.T) {
	m := amp.IntelI912900KF()
	bad := algtest.Matrix("fig1-8x8").Clone()
	bad.ColIdx[0] = -5
	if _, err := New(amp.PAndE, ByRows).Prepare(m, bad); err == nil {
		t.Fatal("accepted invalid matrix")
	}
}

func BenchmarkComputeMedium(b *testing.B) {
	m := amp.IntelI912900KF()
	a := algtest.Matrix("medium-random")
	prep, _ := New(amp.PAndE, ByNNZ).Prepare(m, a)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep.Compute(y, x)
	}
	_ = costmodel.Assignment{}
}
