// Package csrsimple implements the paper's Algorithm 1: the plain parallel
// CSR SpMV used by the Section III micro-benchmarks ("simply adding OpenMP
// pragmas to the for loops"). Two static scheduling policies are provided:
// splitting rows evenly by count (OpenMP's default static schedule) and
// splitting at row boundaries balanced by nonzeros. Both are
// heterogeneity-blind: every selected core receives the same share
// regardless of whether it is a P- or E-core, which is exactly the load
// imbalance HASpMV is designed to remove.
package csrsimple

import (
	"fmt"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
)

// Schedule selects the static work division.
type Schedule int

const (
	// ByRows gives each core an equal count of consecutive rows.
	ByRows Schedule = iota
	// ByNNZ cuts at row boundaries so each core gets roughly equal
	// nonzeros.
	ByNNZ
)

func (s Schedule) String() string {
	if s == ByRows {
		return "rows"
	}
	return "nnz"
}

// New builds the algorithm for the given core composition.
func New(cfg amp.Config, sched Schedule) exec.Algorithm {
	return &alg{cfg: cfg, sched: sched}
}

type alg struct {
	cfg   amp.Config
	sched Schedule
}

func (a *alg) Name() string {
	return fmt.Sprintf("CSR-simple(%v,%v)", a.cfg, a.sched)
}

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	cores := m.Cores(a.cfg)
	n := len(cores)
	bounds := make([]int, n+1) // row boundaries per core
	switch a.sched {
	case ByRows:
		for i := 0; i <= n; i++ {
			bounds[i] = mat.Rows * i / n
		}
	case ByNNZ:
		nnz := mat.NNZ()
		bounds[n] = mat.Rows
		for i := 1; i < n; i++ {
			target := nnz * i / n
			// First row whose cumulative nnz reaches the target.
			bounds[i] = sort.SearchInts(mat.RowPtr, target)
			if bounds[i] > mat.Rows {
				bounds[i] = mat.Rows
			}
		}
		// Row boundaries must be monotone even when huge rows make some
		// targets fall inside the same row.
		for i := 1; i <= n; i++ {
			if bounds[i] < bounds[i-1] {
				bounds[i] = bounds[i-1]
			}
		}
	default:
		return nil, fmt.Errorf("csrsimple: unknown schedule %d", a.sched)
	}
	return &prepared{mat: mat, cores: cores, bounds: bounds}, nil
}

type prepared struct {
	mat    *sparse.CSR
	cores  []int
	bounds []int
}

func (p *prepared) Compute(y, x []float64) {
	mat := p.mat
	exec.Parallel(len(p.cores), func(i int) {
		for r := p.bounds[i]; r < p.bounds[i+1]; r++ {
			y[r] = kernel.DotRange(mat.Val, mat.ColIdx, x, mat.RowPtr[r], mat.RowPtr[r+1], kernel.DefaultUnrollThreshold)
		}
	})
}

func (p *prepared) Assignments() []costmodel.Assignment {
	asgs := make([]costmodel.Assignment, len(p.cores))
	for i, c := range p.cores {
		lo := p.mat.RowPtr[p.bounds[i]]
		hi := p.mat.RowPtr[p.bounds[i+1]]
		asgs[i] = costmodel.Assignment{Core: c, Spans: []costmodel.Span{{Lo: lo, Hi: hi}}}
	}
	return asgs
}
