package vendorlike

import (
	"testing"
	"time"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

func TestCorrectnessBothFlavors(t *testing.T) {
	for _, m := range []*amp.Machine{amp.IntelI912900KF(), amp.AMDRyzen97950X3D()} {
		for _, f := range []Flavor{MKL, AOCL} {
			alg := New(f, amp.PAndE)
			t.Run(m.Name+"/"+alg.Name(), func(t *testing.T) {
				algtest.CheckAlgorithm(t, alg, m)
			})
		}
	}
}

func TestPropertyRandomMatrices(t *testing.T) {
	algtest.CheckProperty(t, New(MKL, amp.PAndE), amp.IntelI913900KF(), 10)
	algtest.CheckProperty(t, New(AOCL, amp.PAndE), amp.AMDRyzen97950X3D(), 10)
}

func TestFlavorNames(t *testing.T) {
	if MKL.String() != "oneMKL-like" || AOCL.String() != "AOCL-like" {
		t.Fatal("flavor strings")
	}
	if New(MKL, amp.POnly).Name() == New(AOCL, amp.POnly).Name() {
		t.Fatal("names collide")
	}
}

// The AOCL optimize stage must be measurably more expensive than the MKL
// inspector (Figure 10's ranking mechanism).
func TestAOCLPreprocessingHeavier(t *testing.T) {
	m := amp.AMDRyzen97950X3D()
	a := gen.Spec{Name: "prep", Rows: 60000, Cols: 60000, TargetNNZ: 1200000,
		Dist: gen.NormalLen{Mean: 20, Std: 5, Min: 1, Max: 60}, Place: gen.Random, Seed: 3}.Generate()
	best := func(f Flavor) time.Duration {
		b := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ {
			_, d, err := exec.TimePrepare(New(f, amp.PAndE), m, a)
			if err != nil {
				t.Fatal(err)
			}
			if d < b {
				b = d
			}
		}
		return b
	}
	mklTime := best(MKL)
	aoclTime := best(AOCL)
	if aoclTime < 2*mklTime {
		t.Fatalf("AOCL prep %v not clearly heavier than MKL %v", aoclTime, mklTime)
	}
}

func TestLongRowHintLowersUnroll(t *testing.T) {
	m := amp.IntelI912900KF()
	long := gen.Spec{Name: "lr", Rows: 100, Cols: 20000, TargetNNZ: 100 * 200,
		Dist: gen.ConstLen{L: 200}, Place: gen.Random, Seed: 4}.Generate()
	prep, err := New(MKL, amp.PAndE).Prepare(m, long)
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.(*prepared).unroll; got != 32 {
		t.Fatalf("long-row unroll hint = %d, want 32", got)
	}
	short := algtest.Matrix("banded-fem")
	prep, err = New(MKL, amp.PAndE).Prepare(m, short)
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.(*prepared).unroll; got == 32 {
		t.Fatal("short-row matrix took long-row hint")
	}
}

func TestRejectsInvalidMatrix(t *testing.T) {
	bad := algtest.Matrix("fig1-8x8").Clone()
	bad.RowPtr[0] = 2
	if _, err := New(MKL, amp.PAndE).Prepare(amp.IntelI912900KF(), bad); err == nil {
		t.Fatal("accepted invalid matrix")
	}
}
