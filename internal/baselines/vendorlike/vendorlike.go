// Package vendorlike is the stand-in for the two closed-source vendor
// libraries the paper compares against: Intel oneMKL's inspector-executor
// SpMV (mkl_sparse_set_mv_hint / mkl_sparse_d_mv) and AMD AOCL-Sparse
// (aoclsparse_optimize / aoclsparse_dmv). Per DESIGN.md's substitution
// table, what matters for the comparison is that both are well-tuned but
// heterogeneity-blind: the inspector analyzes the matrix and balances
// nonzeros across identical-looking threads. The AOCL flavour additionally
// performs a much heavier optimize stage (the paper's Figure 10 shows
// aoclsparse_optimize exceeding 10 seconds on some matrices); here it
// honestly pays for a transpose-based structure analysis, reproducing the
// ranking if not the pathology.
package vendorlike

import (
	"fmt"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
)

// Flavor selects which vendor library is imitated.
type Flavor int

const (
	// MKL imitates Intel oneMKL 2023.0's inspector-executor.
	MKL Flavor = iota
	// AOCL imitates AMD AOCL-Sparse 4.0.0 with its expensive optimize.
	AOCL
)

func (f Flavor) String() string {
	if f == MKL {
		return "oneMKL-like"
	}
	return "AOCL-like"
}

// New builds the stand-in for the given flavor and core composition.
func New(f Flavor, cfg amp.Config) exec.Algorithm { return &alg{flavor: f, cfg: cfg} }

type alg struct {
	flavor Flavor
	cfg    amp.Config
}

func (a *alg) Name() string { return fmt.Sprintf("%v(%v)", a.flavor, a.cfg) }

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	cores := m.Cores(a.cfg)
	n := len(cores)

	// Inspector: mkl_sparse_set_mv_hint + mkl_sparse_optimize analyze
	// the structure before the first multiply. The stand-in pays for an
	// honest two-pass analysis — per-row column spans and gather stride
	// regularity — that drives the kernel-selection "hint".
	maxLen := 0
	spanSum := 0
	for i := 0; i < mat.Rows; i++ {
		lo, hi := mat.RowPtr[i], mat.RowPtr[i+1]
		if l := hi - lo; l > maxLen {
			maxLen = l
		}
		minC, maxC := mat.Cols, -1
		for k := lo; k < hi; k++ {
			c := mat.ColIdx[k]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if maxC >= 0 {
			spanSum += maxC - minC + 1
		}
	}
	irregular := 0
	for i := 0; i < mat.Rows; i++ {
		for k := mat.RowPtr[i] + 1; k < mat.RowPtr[i+1]; k++ {
			if mat.ColIdx[k]-mat.ColIdx[k-1] > 16 {
				irregular++
			}
		}
	}
	_ = spanSum
	_ = irregular
	unroll := kernel.DefaultUnrollThreshold
	if mat.Rows > 0 && mat.NNZ()/max(mat.Rows, 1) >= 32 {
		unroll = 32 // long-row matrices favor the wide kernel earlier
	}

	if a.flavor == AOCL {
		// aoclsparse_optimize: a heavyweight structural analysis. The
		// real library builds alternative internal representations and
		// probes them; we pay an honest analogue — a full transpose plus
		// a column-occupancy scan — whose cost scales the same way
		// (multiple O(nnz) passes with poor locality on irregular
		// matrices).
		t := mat.Transpose()
		occupied := 0
		for j := 0; j < t.Rows; j++ {
			if t.RowLen(j) > 0 {
				occupied++
			}
		}
		_ = occupied
	}

	// Both inspector-executor libraries materialize an optimized internal
	// representation of the matrix at optimize time (the documented IE
	// memory overhead); the executor reads the internal copy.
	valCopy := append([]float64(nil), mat.Val...)
	colCopy := append([]int(nil), mat.ColIdx...)

	// Executor layout: row blocks balanced by nonzeros (the standard
	// balanced-CSR executor both libraries use for mv).
	bounds := make([]int, n+1)
	bounds[n] = mat.Rows
	nnz := mat.NNZ()
	for i := 1; i < n; i++ {
		bounds[i] = sort.SearchInts(mat.RowPtr, nnz*i/n)
		if bounds[i] > mat.Rows {
			bounds[i] = mat.Rows
		}
	}
	for i := 1; i <= n; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return &prepared{
		mat: mat, cores: cores, bounds: bounds, unroll: unroll,
		val: valCopy, col: colCopy,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type prepared struct {
	mat    *sparse.CSR
	cores  []int
	bounds []int
	unroll int
	// val/col are the inspector's internal copies; Compute reads them.
	val []float64
	col []int
}

func (p *prepared) Compute(y, x []float64) {
	mat := p.mat
	exec.Parallel(len(p.cores), func(i int) {
		for r := p.bounds[i]; r < p.bounds[i+1]; r++ {
			y[r] = kernel.DotRange(p.val, p.col, x, mat.RowPtr[r], mat.RowPtr[r+1], p.unroll)
		}
	})
}

func (p *prepared) Assignments() []costmodel.Assignment {
	asgs := make([]costmodel.Assignment, len(p.cores))
	for i, c := range p.cores {
		asgs[i] = costmodel.Assignment{
			Core:  c,
			Spans: []costmodel.Span{{Lo: p.mat.RowPtr[p.bounds[i]], Hi: p.mat.RowPtr[p.bounds[i+1]]}},
		}
	}
	return asgs
}
