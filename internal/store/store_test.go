package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// snapCases spans the format matrix: every index stream (reference,
// u32, u16+dia mix, forced dia) crossed with every value stream
// (reference f64, palette, f32), plus the degenerate shapes.
func snapCases() []struct {
	name string
	a    *sparse.CSR
	opts core.Options
} {
	palette := gen.Spec{Name: "pal", Rows: 400, Cols: 400, Dist: gen.ConstLen{L: 7},
		Place: gen.Banded, Seed: 11}.Generate()
	for k := range palette.Val {
		palette.Val[k] = float64(k % 5) // 5 distinct values: palette engages
	}
	return []struct {
		name string
		a    *sparse.CSR
		opts core.Options
	}{
		{"banded-auto", algtest.Matrix("banded-fem"), core.Options{}},
		{"powerlaw-auto", algtest.Matrix("powerlaw"), core.Options{}},
		{"reference", algtest.Matrix("hub-row"), core.Options{Index: core.IndexReference, Value: core.ValueReference}},
		{"u32-only", algtest.Matrix("medium-random"), core.Options{Index: core.IndexU32}},
		{"force-dia", algtest.Matrix("banded-fem"), core.Options{Index: core.IndexForceDia}},
		{"palette", palette, core.Options{}},
		{"f32", algtest.Matrix("medium-random"), core.Options{Value: core.ValueForceF32, AllowF32Values: true}},
		{"segsum", algtest.Matrix("powerlaw"), core.Options{Exec: core.ExecSegSum}},
		{"empty-rows", algtest.Matrix("alternating-empty"), core.Options{}},
		{"tiny", algtest.Matrix("tiny-3x3"), core.Options{}},
		{"reorder-auto", algtest.Matrix("powerlaw"), core.Options{Reorder: core.ReorderAuto}},
	}
}

func prepare(t testing.TB, m *amp.Machine, a *sparse.CSR, opts core.Options) *core.Prepared {
	t.Helper()
	prep, err := core.New(opts).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	return prep.(*core.Prepared)
}

func computeVec(p *core.Prepared, rows, cols int) []float64 {
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1 + float64(i%17)/3
	}
	y := make([]float64, rows)
	p.Compute(y, x)
	return y
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Write → Load → Restore must serve bit-identical multiplies, and the
// loaded snapshot must re-encode to the exact file bytes.
func TestRoundTripBitIdentical(t *testing.T) {
	m := amp.IntelI913900KF()
	dir := t.TempDir()
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			p := prepare(t, m, tc.a, tc.opts)
			want := computeVec(p, tc.a.Rows, tc.a.Cols)

			path := filepath.Join(dir, tc.name+".hps")
			extra := map[string]string{"case": tc.name}
			if err := Write(path, p.Snapshot(), extra); err != nil {
				t.Fatal(err)
			}
			f, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if f.Extra["case"] != tc.name {
				t.Fatalf("extra %v did not round-trip", f.Extra)
			}

			onDisk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			re, err := Encode(f.Snap, f.Extra)
			if err != nil {
				t.Fatal(err)
			}
			if string(re) != string(onDisk) {
				t.Fatalf("re-encode of loaded snapshot differs from file bytes (%d vs %d bytes)", len(re), len(onDisk))
			}

			r, err := core.RestorePrepared(m, f.Snap)
			if err != nil {
				t.Fatal(err)
			}
			got := computeVec(r, tc.a.Rows, tc.a.Cols)
			if !bitsEqual(got, want) {
				t.Fatal("restored multiply not bit-identical to original")
			}
			// The restore must survive a boundary move too.
			if err := r.Repartition(core.Plan{PProportion: 0.5}); err != nil {
				t.Fatal(err)
			}
			p.Repartition(core.Plan{PProportion: 0.5})
			if !bitsEqual(computeVec(r, tc.a.Rows, tc.a.Cols), computeVec(p, tc.a.Rows, tc.a.Cols)) {
				t.Fatal("restored multiply diverges after repartition")
			}
		})
	}
}

// writeSample writes one small store file and returns its bytes.
func writeSample(t *testing.T) (string, []byte) {
	t.Helper()
	m := amp.IntelI913900KF()
	p := prepare(t, m, algtest.Matrix("banded-fem"), core.Options{})
	path := filepath.Join(t.TempDir(), "sample.hps")
	if err := Write(path, p.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, buf
}

func reloadBytes(t *testing.T, path string, buf []byte) error {
	t.Helper()
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Decode(buf)
	if err != nil {
		// The file path must agree so -store-dir surfaces the same error.
		if _, lerr := Load(path); lerr == nil {
			t.Fatal("Decode rejected bytes Load accepted")
		}
	}
	return err
}

// A future format version must be rejected with ErrVersion and a
// message that tells the operator what to do, not a checksum error or
// a panic — the store-version-bump contract CI relies on.
func TestVersionBumpRejected(t *testing.T) {
	path, buf := writeSample(t)
	binary.LittleEndian.PutUint32(buf[8:12], Version+1)
	// Re-seal the header so the version field, not its checksum, is
	// what the loader trips on.
	binary.LittleEndian.PutUint32(buf[60:64], crc32.Checksum(buf[0:60], castagnoli))
	err := reloadBytes(t, path, buf)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	if !strings.Contains(err.Error(), "re-run Prepare") {
		t.Fatalf("version error %q does not tell the operator how to recover", err)
	}
}

func TestCorruptionRejected(t *testing.T) {
	_, buf := writeSample(t)
	metaLen := int64(binary.LittleEndian.Uint32(buf[16:20]))
	chunkCount := int64(binary.LittleEndian.Uint32(buf[20:24]))
	tableOff := align8(headerSize + metaLen)
	payloadOff := align8(tableOff + 4*chunkCount)

	cases := []struct {
		name string
		mut  func(b []byte) []byte
		want error
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrFormat},
		{"header-field", func(b []byte) []byte { b[24] ^= 0x01; return b }, ErrChecksum},
		{"meta-json", func(b []byte) []byte { b[headerSize+2] ^= 0x40; return b }, ErrChecksum},
		{"chunk-table", func(b []byte) []byte { b[tableOff] ^= 0x01; return b }, ErrChecksum},
		{"payload-first", func(b []byte) []byte { b[payloadOff] ^= 0x80; return b }, ErrChecksum},
		{"payload-last", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, ErrChecksum},
		{"truncated", func(b []byte) []byte { return b[:len(b)-100] }, ErrFormat},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAB) }, ErrFormat},
		{"short", func(b []byte) []byte { return b[:headerSize-1] }, ErrFormat},
		{"empty", func(b []byte) []byte { return nil }, ErrFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), buf...))
			_, _, err := Decode(mut)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// Write must be atomic: the destination either keeps the old complete
// file or gets the new one, and no temp litter survives a completed
// write.
func TestWriteAtomicRename(t *testing.T) {
	m := amp.IntelI913900KF()
	p := prepare(t, m, algtest.Matrix("tiny-3x3"), core.Options{})
	dir := t.TempDir()
	path := filepath.Join(dir, "a.hps")
	if err := Write(path, p.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, p.Snapshot(), map[string]string{"gen": "2"}); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Extra["gen"] != "2" {
		t.Fatal("second write did not replace the file")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(ents))
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.hps")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// The restored instance must reject the wrong machine (its partition
// was cut for another core set).
func TestRestoreWrongMachine(t *testing.T) {
	p := prepare(t, amp.IntelI913900KF(), algtest.Matrix("banded-fem"), core.Options{})
	path := filepath.Join(t.TempDir(), "m.hps")
	if err := Write(path, p.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.RestorePrepared(amp.AMDRyzen97950X(), f.Snap); err == nil {
		t.Fatal("restore on the wrong machine must fail")
	}
}

// LoadAsync defers only the payload checksum sweep: structural
// corruption still fails the call itself, while payload corruption
// loads eagerly and surfaces through Verified.
func TestLoadAsyncVerifyBehind(t *testing.T) {
	path, buf := writeSample(t)

	f, err := LoadAsync(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verified(); err != nil {
		t.Fatalf("clean file: Verified = %v", err)
	}
	if err := f.Verified(); err != nil {
		t.Fatalf("Verified must stay callable after completion: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Payload corruption: structure is intact, so the async load
	// succeeds and only the background sweep reports it; the
	// synchronous Load rejects the same bytes eagerly.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x80
	badPath := filepath.Join(t.TempDir(), "bad.hps")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = LoadAsync(badPath)
	if err != nil {
		t.Fatalf("async load of payload-corrupt file: %v", err)
	}
	if err := f.Verified(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Verified: got %v, want ErrChecksum", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); !errors.Is(err, ErrChecksum) {
		t.Fatalf("sync Load: got %v, want ErrChecksum", err)
	}

	// Structural corruption (header checksum) fails LoadAsync itself —
	// the window never escapes to a caller.
	hdr := append([]byte(nil), buf...)
	hdr[24] ^= 0x01
	hdrPath := filepath.Join(t.TempDir(), "hdr.hps")
	if err := os.WriteFile(hdrPath, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAsync(hdrPath); !errors.Is(err, ErrChecksum) {
		t.Fatalf("structural corruption: got %v, want ErrChecksum", err)
	}
}

// Close before Verified must wait the sweep out rather than unmap the
// window under it (run with -race to make the ordering observable).
func TestLoadAsyncCloseBeforeVerified(t *testing.T) {
	path, _ := writeSample(t)
	for i := 0; i < 8; i++ {
		f, err := LoadAsync(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
