//go:build !unix

package store

import "os"

// mmapFile on platforms without a usable mmap shim: read the whole
// file into memory. Correct, just without the lazy-fault cold start.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
