//go:build !((amd64 || arm64) && !purego)

package store

import (
	"encoding/binary"
	"math"

	"haspmv/internal/kernel"
)

// Copying codec for platforms where the on-disk little-endian 64-bit
// layout does not match memory (big-endian, 32-bit int, or the purego
// tag). Sections are decoded element by element; the mmap window is
// only a read source, never aliased.

const zeroCopy = false

func bytesOfInts(s []int) []byte {
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(v)))
	}
	return b
}

func intsOfBytes(b []byte, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return s
}

func bytesOfU32(s []uint32) []byte {
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

func u32OfBytes(b []byte, n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return s
}

func bytesOfU16(s []uint16) []byte {
	b := make([]byte, 2*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint16(b[2*i:], v)
	}
	return b
}

func u16OfBytes(b []byte, n int) []uint16 {
	s := make([]uint16, n)
	for i := range s {
		s[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return s
}

func bytesOfI32(s []int32) []byte {
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func i32OfBytes(b []byte, n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return s
}

func bytesOfF64(s []float64) []byte {
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func f64OfBytes(b []byte, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return s
}

func bytesOfF32(s []float32) []byte {
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32OfBytes(b []byte, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return s
}

func bytesOfRuns(s []kernel.DiaRun) []byte {
	b := make([]byte, diaRunBytes*len(s))
	for i, r := range s {
		binary.LittleEndian.PutUint32(b[8*i:], uint32(r.EndK))
		binary.LittleEndian.PutUint32(b[8*i+4:], uint32(r.ColMinusK))
	}
	return b
}

func runsOfBytes(b []byte, n int) []kernel.DiaRun {
	s := make([]kernel.DiaRun, n)
	for i := range s {
		s[i].EndK = int32(binary.LittleEndian.Uint32(b[8*i:]))
		s[i].ColMinusK = int32(binary.LittleEndian.Uint32(b[8*i+4:]))
	}
	return s
}

func bytesOfSegs(s []kernel.Segment) []byte {
	b := make([]byte, segBytes*len(s))
	for i, g := range s {
		binary.LittleEndian.PutUint32(b[12*i:], uint32(g.K0))
		binary.LittleEndian.PutUint32(b[12*i+4:], uint32(g.K1))
		binary.LittleEndian.PutUint32(b[12*i+8:], uint32(g.Dst))
	}
	return b
}

func segsOfBytes(b []byte, n int) []kernel.Segment {
	s := make([]kernel.Segment, n)
	for i := range s {
		s[i].K0 = int32(binary.LittleEndian.Uint32(b[12*i:]))
		s[i].K1 = int32(binary.LittleEndian.Uint32(b[12*i+4:]))
		s[i].Dst = int32(binary.LittleEndian.Uint32(b[12*i+8:]))
	}
	return s
}
