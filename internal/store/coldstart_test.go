package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/gen"
)

// TestColdStartAcceptance is the measured store acceptance gate: on
// webbase-1M, mmap-loading the persisted Prepared state and rebuilding
// a servable instance must be at least 10x faster than re-running the
// full Prepare pipeline. Wall-clock, so opt-in: CI sets
// HASPMV_COLDSTART_GATE=1 (the BenchmarkColdStart entries track the
// same pair for benchdiff); everywhere else the functional round-trip
// tests carry the correctness half and this test skips.
func TestColdStartAcceptance(t *testing.T) {
	if os.Getenv("HASPMV_COLDSTART_GATE") == "" {
		t.Skip("wall-clock 10x gate; set HASPMV_COLDSTART_GATE=1 to enforce (CI does)")
	}
	m := amp.IntelI912900KF()
	a := gen.Representative("webbase-1M", 2)
	alg := core.New(core.Options{})
	prep, err := alg.Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "webbase-1M.hps")
	if err := Write(path, prep.(*core.Prepared).Snapshot(), nil); err != nil {
		t.Fatal(err)
	}

	best := func(n int, f func()) time.Duration {
		b := time.Duration(math.MaxInt64)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	// The serving cold start is LoadAsync + RestorePrepared: structure
	// is proven inside the timed region, the payload checksum sweep runs
	// behind it (asserted clean outside the clock — it gates correctness,
	// not latency). Close waits out the sweep, so it stays outside too.
	load := time.Duration(math.MaxInt64)
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		f, err := LoadAsync(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RestorePrepared(m, f.Snap); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < load {
			load = d
		}
		// Drain this iteration's sweep before the next one's clock starts,
		// and assert it clean — it gates correctness, not latency.
		if err := f.Verified(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	syncLoad := best(5, func() {
		f, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RestorePrepared(m, f.Snap); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
	prepare := best(3, func() {
		if _, err := alg.Prepare(m, a); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(prepare) / float64(load)
	t.Logf("webbase-1M cold start: Prepare %v, async load %v (%.1fx), sync load %v (%.1fx)",
		prepare, load, ratio, syncLoad, float64(prepare)/float64(syncLoad))
	if ratio < 10 {
		t.Fatalf("store cold start only %.1fx faster than Prepare, want >= 10x", ratio)
	}
}
