// Package store persists fully Prepared matrices to disk and loads
// them back by mmap, so a serving process cold-starts from the file in
// page-fault time instead of re-running Prepare's O(nnz) analysis
// sweeps.
//
// File layout (all integers little-endian):
//
//	[ 0:64]   header — magic "HASPMVPS", version, endian marker,
//	          meta length, chunk count, payload length, meta CRC,
//	          chunk-table CRC, reserved zeros, header CRC
//	[64:..]   meta — JSON fileMeta (scalars + section directory),
//	          zero-padded to 8 bytes
//	[..:..]   chunk table — one CRC32-C per 1MB payload chunk,
//	          zero-padded to 8 bytes
//	[..:..]   payload — the flat arrays, each section 8-aligned
//
// Every byte of the file is covered by some checksum or by an explicit
// must-be-zero padding rule, so a file Load accepts re-serializes to
// the identical bytes — the round-trip invariant the fuzz target
// leans on. Payload chunks verify in parallel at load; on 64-bit
// little-endian hosts the verified window is then aliased in place
// (see alias.go) and the kernels fault pages in on first touch.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"unsafe"

	"haspmv/internal/core"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
)

// Version is the on-disk format version. Bump it on any layout or
// semantic change; Load rejects every other version with ErrVersion,
// and the CI store cache keys on it so stale caches die with the bump.
const Version = 1

const (
	headerSize  = 64
	chunkSize   = 1 << 20
	diaRunBytes = 8  // kernel.DiaRun: 2×int32
	segBytes    = 12 // kernel.Segment: 3×int32

	endianMark = 0x01020304
)

var magic = [8]byte{'H', 'A', 'S', 'P', 'M', 'V', 'P', 'S'}

// Sentinel errors, matchable with errors.Is through the wrapped
// detail Load returns.
var (
	// ErrFormat: the file is not a prepared-matrix store file, or its
	// structure (sizes, padding, section directory) is inconsistent.
	ErrFormat = errors.New("store: not a valid prepared-matrix file")
	// ErrVersion: the file is a store file but written by a different
	// format version.
	ErrVersion = errors.New("store: unsupported format version")
	// ErrChecksum: a CRC over the header, meta, chunk table or a
	// payload chunk does not match.
	ErrChecksum = errors.New("store: checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one flat array's entry in the meta directory. Off is the
// byte offset from the start of the payload (8-aligned), Len the
// element count.
type section struct {
	Name string
	Elem string
	Off  int64
	Len  int64
}

// fileMeta is the JSON block after the header: the snapshot scalars,
// the section directory, and the caller's opaque annotations.
type fileMeta struct {
	FormatVersion int
	Meta          core.SnapshotMeta
	Sections      []section
	Extra         map[string]string `json:",omitempty"`
}

// elemWidth maps a section element tag to its byte width.
var elemWidth = map[string]int64{
	"i64":   8,
	"u32":   4,
	"u16":   2,
	"i32":   4,
	"f64":   8,
	"f32":   4,
	"u8":    1,
	"dia8":  diaRunBytes,
	"seg12": segBytes,
}

// rawSection pairs a directory entry with its encoded bytes during
// writing.
type rawSection struct {
	section
	bytes []byte
}

// sectionsOf lists the snapshot's non-nil arrays in fixed order with
// their encoded bytes and 8-aligned payload offsets. Nil slices get no
// section (presence round-trips: absent section loads as nil, a
// present empty one as a non-nil empty slice).
func sectionsOf(s *core.PreparedSnapshot) ([]rawSection, int64) {
	var secs []rawSection
	off := int64(0)
	add := func(name, elem string, b []byte, n int, present bool) {
		if !present {
			return
		}
		off = align8(off)
		secs = append(secs, rawSection{section{name, elem, off, int64(n)}, b})
		off += int64(len(b))
	}
	add("rowptr", "i64", bytesOfInts(s.RowPtr), len(s.RowPtr), s.RowPtr != nil)
	add("colidx", "i64", bytesOfInts(s.ColIdx), len(s.ColIdx), s.ColIdx != nil)
	add("val", "f64", bytesOfF64(s.Val), len(s.Val), s.Val != nil)
	add("hperm", "i64", bytesOfInts(s.HPerm), len(s.HPerm), s.HPerm != nil)
	add("hrowptr", "i64", bytesOfInts(s.HRowPtr), len(s.HRowPtr), s.HRowPtr != nil)
	add("hrowbeginnnz", "i64", bytesOfInts(s.HRowBeginNNZ), len(s.HRowBeginNNZ), s.HRowBeginNNZ != nil)
	add("emptyrows", "i64", bytesOfInts(s.EmptyRows), len(s.EmptyRows), s.EmptyRows != nil)
	add("cs", "i64", bytesOfInts(s.CS), len(s.CS), s.CS != nil)
	add("col32", "u32", bytesOfU32(s.Col32), len(s.Col32), s.Col32 != nil)
	add("col16", "u16", bytesOfU16(s.Col16), len(s.Col16), s.Col16 != nil)
	add("rowbase", "i64", bytesOfInts(s.RowBase), len(s.RowBase), s.RowBase != nil)
	add("elig", "i64", bytesOfInts(s.Elig), len(s.Elig), s.Elig != nil)
	add("runs", "dia8", bytesOfRuns(s.Runs), len(s.Runs), s.Runs != nil)
	add("rowrun", "i32", bytesOfI32(s.RowRun), len(s.RowRun), s.RowRun != nil)
	add("diainel", "i64", bytesOfInts(s.DiaInel), len(s.DiaInel), s.DiaInel != nil)
	add("palidx", "u8", s.PalIdx, len(s.PalIdx), s.PalIdx != nil)
	add("pal", "f64", bytesOfF64(s.Pal), len(s.Pal), s.Pal != nil)
	add("val32", "f32", bytesOfF32(s.Val32), len(s.Val32), s.Val32 != nil)
	add("segs", "seg12", bytesOfSegs(s.Segs), len(s.Segs), s.Segs != nil)
	return secs, off
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// chunkSummer accumulates one CRC32-C per chunkSize window of the
// bytes streamed through it.
type chunkSummer struct {
	sums []uint32
	cur  uint32
	fill int
}

func (c *chunkSummer) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		take := chunkSize - c.fill
		if take > len(p) {
			take = len(p)
		}
		c.cur = crc32.Update(c.cur, castagnoli, p[:take])
		c.fill += take
		p = p[take:]
		if c.fill == chunkSize {
			c.sums = append(c.sums, c.cur)
			c.cur, c.fill = 0, 0
		}
	}
	return n, nil
}

func (c *chunkSummer) finish() []uint32 {
	if c.fill > 0 {
		c.sums = append(c.sums, c.cur)
		c.cur, c.fill = 0, 0
	}
	return c.sums
}

// buildHeader assembles the 64-byte header for the given component
// digests and lengths.
func buildHeader(metaLen, chunkCount int, payloadLen int64, metaCRC, tableCRC uint32) [headerSize]byte {
	var h [headerSize]byte
	copy(h[0:8], magic[:])
	binary.LittleEndian.PutUint32(h[8:12], Version)
	binary.LittleEndian.PutUint32(h[12:16], endianMark)
	binary.LittleEndian.PutUint32(h[16:20], uint32(metaLen))
	binary.LittleEndian.PutUint32(h[20:24], uint32(chunkCount))
	binary.LittleEndian.PutUint64(h[24:32], uint64(payloadLen))
	binary.LittleEndian.PutUint32(h[32:36], metaCRC)
	binary.LittleEndian.PutUint32(h[36:40], tableCRC)
	binary.LittleEndian.PutUint32(h[60:64], crc32.Checksum(h[0:60], castagnoli))
	return h
}

// Encode serializes a snapshot to the full file image in memory. Write
// streams the same bytes to disk; tests and the fuzz target use Encode
// to compare images without touching the filesystem.
func Encode(snap *core.PreparedSnapshot, extra map[string]string) ([]byte, error) {
	secs, payloadLen := sectionsOf(snap)
	dir := make([]section, len(secs))
	for i, s := range secs {
		dir[i] = s.section
	}
	metaJS, err := json.Marshal(fileMeta{
		FormatVersion: Version,
		Meta:          snap.Meta,
		Sections:      dir,
		Extra:         extra,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding meta: %w", err)
	}
	metaLen := len(metaJS)
	chunkCount := int((payloadLen + chunkSize - 1) / chunkSize)

	metaEnd := align8(headerSize + int64(metaLen))
	tableOff := metaEnd
	tableEnd := align8(tableOff + 4*int64(chunkCount))
	payloadOff := tableEnd
	total := payloadOff + payloadLen

	buf := make([]byte, total)
	copy(buf[headerSize:], metaJS)

	// Payload: sections at their 8-aligned offsets; the gaps stay zero
	// and are covered by the chunk CRCs like every other payload byte.
	for _, s := range secs {
		copy(buf[payloadOff+s.Off:], s.bytes)
	}
	var summer chunkSummer
	summer.Write(buf[payloadOff:total])
	sums := summer.finish()
	table := buf[tableOff : tableOff+4*int64(chunkCount)]
	for i, c := range sums {
		binary.LittleEndian.PutUint32(table[4*i:], c)
	}
	hdr := buildHeader(metaLen, chunkCount, payloadLen,
		crc32.Checksum(metaJS, castagnoli),
		crc32.Checksum(table, castagnoli))
	copy(buf[:headerSize], hdr[:])
	return buf, nil
}

// Write serializes the snapshot to path atomically: the image is
// written to a temp file in the same directory, synced, then renamed
// over path — a concurrent Load sees either the old complete file or
// the new one, never a torn write. extra is an opaque annotation map
// round-tripped through the meta block (the server registry stores its
// cache key and algorithm name there).
func Write(path string, snap *core.PreparedSnapshot, extra map[string]string) error {
	buf, err := Encode(snap, extra)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".haspmv-store-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if _, err := f.Write(buf); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// File is a loaded store file. Snap's slices alias the mmap window on
// zero-copy platforms — the File must stay open for as long as any
// Prepared restored from Snap is in use.
type File struct {
	Snap  *core.PreparedSnapshot
	Extra map[string]string
	Path  string

	data    []byte
	closeFn func() error

	// verifyDone is non-nil for LoadAsync files: closed when the
	// background payload sweep finishes, with its result in verifyErr.
	verifyDone chan struct{}
	verifyErr  error
}

// Verified blocks until the payload checksum sweep has finished and
// returns its result. For Load files the sweep already ran
// synchronously and Verified returns nil immediately; for LoadAsync
// files it is the barrier between "serving from unverified bytes" and
// "the whole image is known intact".
func (f *File) Verified() error {
	if f.verifyDone != nil {
		<-f.verifyDone
		return f.verifyErr
	}
	return nil
}

// Close unmaps the file window. On zero-copy platforms every slice
// reachable from Snap (and from any Prepared restored from it) becomes
// invalid. A pending background verification is waited out first — the
// sweep must not read an unmapped window.
func (f *File) Close() error {
	// verifyDone is set once before the File escapes LoadAsync and never
	// mutated, so waiting here races nothing (Verified may run
	// concurrently from a watcher goroutine).
	if f.verifyDone != nil {
		<-f.verifyDone
	}
	f.Snap = nil
	f.data = nil
	if f.closeFn == nil {
		return nil
	}
	fn := f.closeFn
	f.closeFn = nil
	return fn()
}

// Load maps the file at path, verifies every checksum (payload chunks
// in parallel), and reconstructs the snapshot with the arrays aliasing
// the verified window. It returns ErrFormat, ErrVersion or ErrChecksum
// (wrapped with detail) on any malformed input; it never panics on
// arbitrary bytes.
func Load(path string) (*File, error) {
	data, closeFn, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snap, extra, derr := Decode(data)
	if derr != nil {
		closeFn()
		return nil, fmt.Errorf("store: loading %s: %w", path, derr)
	}
	return &File{Snap: snap, Extra: extra, Path: path, data: data, closeFn: closeFn}, nil
}

// LoadAsync maps the file and runs every structural check eagerly —
// header, meta and chunk-table CRCs, canonical meta encoding, section
// bounds — but defers the payload chunk-CRC sweep (the only full-file
// pass) to a background goroutine. The caller may restore and serve
// immediately; Verified blocks on the sweep's result, and Close waits
// it out. The integrity window is narrow and explicit: until Verified
// returns, array *contents* (never structure) could be corrupt, so a
// serving cold start should check Verified once the first responses
// are in flight and drop the instance on error.
func LoadAsync(path string) (*File, error) {
	data, closeFn, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snap, extra, pv, derr := decodeEager(data)
	if derr != nil {
		closeFn()
		return nil, fmt.Errorf("store: loading %s: %w", path, derr)
	}
	f := &File{Snap: snap, Extra: extra, Path: path, data: data, closeFn: closeFn,
		verifyDone: make(chan struct{})}
	go func() {
		defer close(f.verifyDone)
		if err := pv.verify(); err != nil {
			f.verifyErr = fmt.Errorf("store: loading %s: %w", path, err)
		}
	}()
	return f, nil
}

// Decode verifies and decodes a full file image. The returned
// snapshot's slices alias data on zero-copy platforms.
func Decode(data []byte) (*core.PreparedSnapshot, map[string]string, error) {
	snap, extra, pv, err := decodeEager(data)
	if err != nil {
		return nil, nil, err
	}
	if err := pv.verify(); err != nil {
		return nil, nil, err
	}
	return snap, extra, nil
}

// payloadVerifier is the deferred half of Decode: the payload
// chunk-CRC sweep, the only full-file pass of a load. Everything the
// section directory derives from (header, meta block, chunk table) is
// checksummed eagerly by decodeEager; this sweep only decides whether
// the payload bytes themselves are intact, so LoadAsync can run it
// behind the cold start.
type payloadVerifier struct {
	payload []byte
	table   []byte
	count   int64
}

func (pv payloadVerifier) verify() error {
	var badChunk atomic.Int64
	badChunk.Store(-1)
	exec.ParallelRanges(int(pv.count), int(pv.count), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			end := int64(i+1) * chunkSize
			if end > int64(len(pv.payload)) {
				end = int64(len(pv.payload))
			}
			sum := crc32.Checksum(pv.payload[int64(i)*chunkSize:end], castagnoli)
			if sum != binary.LittleEndian.Uint32(pv.table[4*i:]) {
				badChunk.CompareAndSwap(-1, int64(i))
				return
			}
		}
	})
	if c := badChunk.Load(); c >= 0 {
		return fmt.Errorf("%w: payload chunk %d (bytes %d..%d)", ErrChecksum, c, c*chunkSize, (c+1)*chunkSize)
	}
	return nil
}

// decodeEager runs every structural and metadata check of Decode —
// header, meta and chunk-table CRCs, canonical meta encoding, section
// directory bounds — and returns the snapshot plus the pending payload
// verifier. Nothing the returned snapshot's *shape* depends on is left
// unverified; only the payload array contents await pv.verify().
func decodeEager(data []byte) (*core.PreparedSnapshot, map[string]string, payloadVerifier, error) {
	var pv payloadVerifier
	if len(data) < headerSize {
		return nil, nil, pv, fmt.Errorf("%w: %d bytes, need at least a %d-byte header", ErrFormat, len(data), headerSize)
	}
	hdr := data[:headerSize]
	if [8]byte(hdr[0:8]) != magic {
		return nil, nil, pv, fmt.Errorf("%w: bad magic %q", ErrFormat, hdr[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[60:64]), crc32.Checksum(hdr[0:60], castagnoli); got != want {
		return nil, nil, pv, fmt.Errorf("%w: header crc %08x, want %08x", ErrChecksum, got, want)
	}
	if em := binary.LittleEndian.Uint32(hdr[12:16]); em != endianMark {
		return nil, nil, pv, fmt.Errorf("%w: endian marker %08x (big-endian writer?)", ErrFormat, em)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, nil, pv, fmt.Errorf("%w: file is format version %d, this build reads version %d — re-run Prepare to regenerate the store", ErrVersion, v, Version)
	}
	for _, b := range hdr[40:60] {
		if b != 0 {
			return nil, nil, pv, fmt.Errorf("%w: reserved header bytes not zero", ErrFormat)
		}
	}
	metaLen := int64(binary.LittleEndian.Uint32(hdr[16:20]))
	chunkCount := int64(binary.LittleEndian.Uint32(hdr[20:24]))
	payloadLen := int64(binary.LittleEndian.Uint64(hdr[24:32]))
	if payloadLen < 0 || payloadLen > int64(len(data)) {
		return nil, nil, pv, fmt.Errorf("%w: payload length %d in a %d-byte file", ErrFormat, payloadLen, len(data))
	}
	metaEnd := align8(headerSize + metaLen)
	tableOff := metaEnd
	tableEnd := align8(tableOff + 4*chunkCount)
	payloadOff := tableEnd
	if total := payloadOff + payloadLen; int64(len(data)) != total {
		return nil, nil, pv, fmt.Errorf("%w: file is %d bytes, layout needs %d (truncated or trailing garbage)", ErrFormat, len(data), total)
	}
	if want := (payloadLen + chunkSize - 1) / chunkSize; chunkCount != want {
		return nil, nil, pv, fmt.Errorf("%w: %d chunk checksums for a %d-byte payload, want %d", ErrFormat, chunkCount, payloadLen, want)
	}

	metaJS := data[headerSize : headerSize+metaLen]
	if got, want := binary.LittleEndian.Uint32(hdr[32:36]), crc32.Checksum(metaJS, castagnoli); got != want {
		return nil, nil, pv, fmt.Errorf("%w: meta crc %08x, want %08x", ErrChecksum, got, want)
	}
	table := data[tableOff : tableOff+4*chunkCount]
	if got, want := binary.LittleEndian.Uint32(hdr[36:40]), crc32.Checksum(table, castagnoli); got != want {
		return nil, nil, pv, fmt.Errorf("%w: chunk table crc %08x, want %08x", ErrChecksum, got, want)
	}
	// Alignment padding after the meta and table blocks is the only
	// region no CRC covers; requiring it zero keeps "accepted file"
	// equivalent to "byte-identical re-serialization".
	for _, b := range data[headerSize+metaLen : metaEnd] {
		if b != 0 {
			return nil, nil, pv, fmt.Errorf("%w: meta padding not zero", ErrFormat)
		}
	}
	for _, b := range data[tableOff+4*chunkCount : tableEnd] {
		if b != 0 {
			return nil, nil, pv, fmt.Errorf("%w: chunk table padding not zero", ErrFormat)
		}
	}

	payload := data[payloadOff:]
	pv = payloadVerifier{payload: payload, table: table, count: chunkCount}

	var fm fileMeta
	if err := json.Unmarshal(metaJS, &fm); err != nil {
		return nil, nil, pv, fmt.Errorf("%w: meta block: %v", ErrFormat, err)
	}
	if fm.FormatVersion != Version {
		return nil, nil, pv, fmt.Errorf("%w: meta declares format version %d, this build reads version %d", ErrVersion, fm.FormatVersion, Version)
	}
	// The format contract is "accepted file ⇔ byte-identical
	// re-serialization". json.Unmarshal is lenient (reordered keys,
	// unknown fields, whitespace), so require the meta block to be the
	// canonical encoding of what it decoded to.
	if canon, err := json.Marshal(fm); err != nil || !bytes.Equal(canon, metaJS) {
		return nil, nil, pv, fmt.Errorf("%w: meta block is not the canonical encoding", ErrFormat)
	}
	snap, err := decodeSections(fm, payload)
	if err != nil {
		return nil, nil, pv, err
	}
	return snap, fm.Extra, pv, nil
}

// decodeSections validates the section directory against the payload
// bounds and aliases (or copies, on non-zero-copy platforms) each
// array into a snapshot.
func decodeSections(fm fileMeta, payload []byte) (*core.PreparedSnapshot, error) {
	byName := make(map[string]section, len(fm.Sections))
	for _, s := range fm.Sections {
		w, ok := elemWidth[s.Elem]
		if !ok {
			return nil, fmt.Errorf("%w: section %q has unknown element type %q", ErrFormat, s.Name, s.Elem)
		}
		if s.Off < 0 || s.Off%8 != 0 || s.Len < 0 || s.Len > (int64(len(payload))-s.Off)/max64(w, 1) {
			return nil, fmt.Errorf("%w: section %q [%d:+%d×%d] outside %d-byte payload", ErrFormat, s.Name, s.Off, s.Len, w, len(payload))
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrFormat, s.Name)
		}
		byName[s.Name] = s
	}
	sec := func(name, elem string) (b []byte, n int, present bool, err error) {
		s, ok := byName[name]
		if !ok {
			return nil, 0, false, nil
		}
		delete(byName, name)
		if s.Elem != elem {
			return nil, 0, false, fmt.Errorf("%w: section %q is %q, want %q", ErrFormat, name, s.Elem, elem)
		}
		return payload[s.Off : s.Off+s.Len*elemWidth[elem]], int(s.Len), true, nil
	}
	snap := &core.PreparedSnapshot{Meta: fm.Meta}
	var err error
	ints := func(dst *[]int, name string) {
		if err != nil {
			return
		}
		var b []byte
		var n int
		var ok bool
		if b, n, ok, err = sec(name, "i64"); ok && err == nil {
			*dst = nonNil(intsOfBytes(b, n), n)
		}
	}
	ints(&snap.RowPtr, "rowptr")
	ints(&snap.ColIdx, "colidx")
	ints(&snap.HPerm, "hperm")
	ints(&snap.HRowPtr, "hrowptr")
	ints(&snap.HRowBeginNNZ, "hrowbeginnnz")
	ints(&snap.EmptyRows, "emptyrows")
	ints(&snap.CS, "cs")
	ints(&snap.RowBase, "rowbase")
	ints(&snap.Elig, "elig")
	ints(&snap.DiaInel, "diainel")
	if err != nil {
		return nil, err
	}
	if b, n, ok, e := sec("val", "f64"); e != nil {
		return nil, e
	} else if ok {
		snap.Val = nonNil(f64OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("pal", "f64"); e != nil {
		return nil, e
	} else if ok {
		snap.Pal = nonNil(f64OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("col32", "u32"); e != nil {
		return nil, e
	} else if ok {
		snap.Col32 = nonNil(u32OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("col16", "u16"); e != nil {
		return nil, e
	} else if ok {
		snap.Col16 = nonNil(u16OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("runs", "dia8"); e != nil {
		return nil, e
	} else if ok {
		snap.Runs = nonNil(runsOfBytes(b, n), n)
	}
	if b, n, ok, e := sec("rowrun", "i32"); e != nil {
		return nil, e
	} else if ok {
		snap.RowRun = nonNil(i32OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("palidx", "u8"); e != nil {
		return nil, e
	} else if ok {
		snap.PalIdx = nonNil(u8OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("val32", "f32"); e != nil {
		return nil, e
	} else if ok {
		snap.Val32 = nonNil(f32OfBytes(b, n), n)
	}
	if b, n, ok, e := sec("segs", "seg12"); e != nil {
		return nil, e
	} else if ok {
		snap.Segs = nonNil(segsOfBytes(b, n), n)
	}
	for name := range byName {
		return nil, fmt.Errorf("%w: unknown section %q", ErrFormat, name)
	}
	return snap, nil
}

// u8OfBytes mirrors the other decoders for the palette index stream:
// alias in place on zero-copy platforms, copy elsewhere (the mmap
// window must not outlive the File there).
func u8OfBytes(b []byte, n int) []uint8 {
	if n == 0 {
		return nil
	}
	if zeroCopy {
		return b[:n:n]
	}
	c := make([]uint8, n)
	copy(c, b[:n])
	return c
}

// nonNil keeps presence: a section that exists with zero elements
// restores as a non-nil empty slice (the decoders return nil for
// n == 0), so nil-vs-empty distinctions in the snapshot survive the
// round trip.
func nonNil[T any](s []T, n int) []T {
	if s == nil && n == 0 {
		return []T{}
	}
	return s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Compile-time guards: the on-disk element widths assume these struct
// sizes (the zero-copy aliasing in alias.go reslices them in place).
var (
	_ = [1]struct{}{}[diaRunBytes-unsafe.Sizeof(kernel.DiaRun{})]
	_ = [1]struct{}{}[segBytes-unsafe.Sizeof(kernel.Segment{})]
)
