//go:build unix && !linux

package store

// mapPopulate: no MAP_POPULATE outside Linux; the mapping faults
// lazily during the checksum sweep instead.
const mapPopulate = 0
