package store

import (
	"errors"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/core"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// fuzzSeedCases mirrors snapCases' index/value-format coverage on
// miniature matrices, so every section layout the writer can produce
// is in the corpus without multi-megabyte seed files.
func fuzzSeedCases() []struct {
	name string
	a    *sparse.CSR
	opts core.Options
} {
	banded := gen.Spec{Name: "b", Rows: 96, Cols: 96, Dist: gen.ConstLen{L: 5},
		Place: gen.Banded, Seed: 3}.Generate()
	scattered := gen.Spec{Name: "s", Rows: 80, Cols: 80, TargetNNZ: 400,
		Dist: gen.UniformLen{Min: 0, Max: 12}, Place: gen.Random, Seed: 4}.Generate()
	skewed := gen.Spec{Name: "k", Rows: 90, Cols: 90, TargetNNZ: 500,
		Dist: gen.NewPowerLen(1, 40, 4), Place: gen.Skewed, Seed: 5, HubRows: 1}.Generate()
	palette := gen.Spec{Name: "p", Rows: 64, Cols: 64, Dist: gen.ConstLen{L: 4},
		Place: gen.Banded, Seed: 6}.Generate()
	for k := range palette.Val {
		palette.Val[k] = float64(k % 3)
	}
	return []struct {
		name string
		a    *sparse.CSR
		opts core.Options
	}{
		{"banded-auto", banded, core.Options{}},
		{"reference", skewed, core.Options{Index: core.IndexReference, Value: core.ValueReference}},
		{"u32-only", scattered, core.Options{Index: core.IndexU32}},
		{"force-dia", banded, core.Options{Index: core.IndexForceDia}},
		{"palette", palette, core.Options{}},
		{"f32", scattered, core.Options{Value: core.ValueForceF32, AllowF32Values: true}},
		{"segsum", skewed, core.Options{Exec: core.ExecSegSum}},
		{"tiny", algtest.Matrix("tiny-3x3"), core.Options{}},
		{"reorder-auto", skewed, core.Options{Reorder: core.ReorderAuto}},
	}
}

// fuzzSeeds encodes one store file per index/value-stream combination,
// so the fuzzer starts from every section layout the writer can
// produce.
func fuzzSeeds(t testing.TB) []struct {
	name string
	data []byte
} {
	t.Helper()
	m := amp.IntelI913900KF()
	var seeds []struct {
		name string
		data []byte
	}
	for _, tc := range fuzzSeedCases() {
		p := prepare(t, m, tc.a, tc.opts)
		buf, err := Encode(p.Snapshot(), map[string]string{"seed": tc.name})
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, struct {
			name string
			data []byte
		}{tc.name, buf})
	}
	return seeds
}

// FuzzStoreRoundTrip is the store's safety contract on arbitrary
// bytes: Decode either fails cleanly with one of the sentinel errors,
// or accepts — and an accepted image must re-encode to the identical
// bytes and restore into a servable instance without panicking. The
// checked-in corpus under testdata/fuzz holds one writer-produced file
// per index/value-format combination; the fuzzer mutates from there.
func FuzzStoreRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, extra, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("rejection is not a sentinel error: %v", err)
			}
			return
		}
		re, err := Encode(snap, extra)
		if err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("accepted image re-encodes to %d bytes, input was %d — round trip not bit-identical", len(re), len(data))
		}
		// An accepted image is structurally sound bytes-wise; restore
		// must still never panic on it (shape mismatches the CRCs can't
		// see fail through checkSnapshot). Cap the work for the fuzzer.
		if snap.Meta.Rows > 1<<16 || len(snap.Val) > 1<<20 {
			return
		}
		if m, ok := amp.ByName(snap.Meta.MachineName); ok {
			if p, rerr := core.RestorePrepared(m, snap); rerr == nil {
				y := make([]float64, snap.Meta.Rows)
				x := make([]float64, snap.Meta.Cols)
				for i := range x {
					x[i] = 1
				}
				p.Compute(y, x)
			}
		}
	})
}
