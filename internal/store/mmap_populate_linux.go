package store

import "syscall"

// mapPopulate asks Linux to prefault the mapping's page tables at mmap
// time; see mmapFile.
const mapPopulate = syscall.MAP_POPULATE
