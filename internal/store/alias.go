//go:build (amd64 || arm64) && !purego

package store

import (
	"unsafe"

	"haspmv/internal/kernel"
)

// Zero-copy aliasing between the on-disk little-endian section bytes
// and the typed slices a Prepared instance streams. On amd64/arm64 Go
// is little-endian with 64-bit int, so the disk layout *is* the memory
// layout and a section of the mmap window can be resliced in place —
// the whole point of the store's cold-start path: no O(nnz) copy, the
// kernels fault pages in on first touch. The copying fallback in
// alias_fallback.go serves every other platform.

const zeroCopy = true

func bytesOfInts(s []int) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func intsOfBytes(b []byte, n int) []int {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
}

func bytesOfU32(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func u32OfBytes(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

func bytesOfU16(s []uint16) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 2*len(s))
}

func u16OfBytes(b []byte, n int) []uint16 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
}

func bytesOfI32(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func i32OfBytes(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

func bytesOfF64(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func f64OfBytes(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

func bytesOfF32(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func f32OfBytes(b []byte, n int) []float32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

func bytesOfRuns(s []kernel.DiaRun) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), diaRunBytes*len(s))
}

func runsOfBytes(b []byte, n int) []kernel.DiaRun {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*kernel.DiaRun)(unsafe.Pointer(&b[0])), n)
}

func bytesOfSegs(s []kernel.Segment) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), segBytes*len(s))
}

func segsOfBytes(b []byte, n int) []kernel.Segment {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*kernel.Segment)(unsafe.Pointer(&b[0])), n)
}
