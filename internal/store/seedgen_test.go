package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestFuzzSeedCorpus regenerates the checked-in fuzz corpus when
// HASPMV_WRITE_FUZZ_SEEDS is set (run it after a format-version bump),
// and otherwise verifies that every checked-in seed still decodes —
// the guard that keeps testdata in sync with the writer.
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreRoundTrip")
	if os.Getenv("HASPMV_WRITE_FUZZ_SEEDS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range fuzzSeeds(t) {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s.data)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d-%s", i, s.name))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no checked-in fuzz seeds in %s (regenerate with HASPMV_WRITE_FUZZ_SEEDS=1): %v", dir, err)
	}
	for _, e := range ents {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus format: header line, then []byte("...").
		const pre = "go test fuzz v1\n[]byte("
		body := string(raw)
		if len(body) < len(pre) || body[:len(pre)] != pre {
			t.Fatalf("%s: not a go fuzz corpus file", e.Name())
		}
		quoted := body[len(pre) : len(body)-2]
		data, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if _, _, err := Decode([]byte(data)); err != nil {
			t.Fatalf("checked-in seed %s no longer decodes: %v (format change without a seed regen?)", e.Name(), err)
		}
	}
}
