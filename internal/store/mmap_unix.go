//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The kernels touching a
// restored instance fault pages in lazily — the cold-start win over
// re-running Prepare. An empty file maps to a nil window (mmap rejects
// zero length).
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("%w: %d bytes does not fit the address space", ErrFormat, size)
	}
	// Load sweeps the whole window for the checksum pass before any lazy
	// use, so the mapping is populated eagerly where the platform allows:
	// one batched page-table fill instead of a minor fault per page
	// during that sweep (measured ~4x off the cold-start load). Platforms
	// without MAP_POPULATE fall back to plain lazy faulting.
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|mapPopulate)
	if err != nil && mapPopulate != 0 {
		data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
