package sparse

import (
	"fmt"
	"math"
	"sort"
)

// RowStats summarizes the row-length distribution of a matrix. The paper's
// Table II reports exactly (#rows, nnz, min/avg/max nnz per row); the
// extra moments feed the partitioning heuristics and corpus reports.
type RowStats struct {
	Rows      int
	Cols      int
	NNZ       int
	MinRowLen int
	MaxRowLen int
	AvgRowLen float64
	StdRowLen float64
	// MedianRowLen is the 50th percentile of row lengths.
	MedianRowLen int
	// EmptyRows counts rows with no stored entries.
	EmptyRows int
	// Gini is the Gini coefficient of the row-length distribution,
	// a scale-free irregularity measure: 0 for perfectly even rows,
	// approaching 1 for power-law matrices such as webbase-1M.
	Gini float64
}

// ComputeRowStats scans the matrix once and returns its row statistics.
func ComputeRowStats(a *CSR) RowStats {
	s := RowStats{Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()}
	if a.Rows == 0 {
		return s
	}
	lens := make([]int, a.Rows)
	s.MinRowLen = math.MaxInt
	sum := 0
	for i := 0; i < a.Rows; i++ {
		l := a.RowLen(i)
		lens[i] = l
		sum += l
		if l < s.MinRowLen {
			s.MinRowLen = l
		}
		if l > s.MaxRowLen {
			s.MaxRowLen = l
		}
		if l == 0 {
			s.EmptyRows++
		}
	}
	s.AvgRowLen = float64(sum) / float64(a.Rows)
	varSum := 0.0
	for _, l := range lens {
		d := float64(l) - s.AvgRowLen
		varSum += d * d
	}
	s.StdRowLen = math.Sqrt(varSum / float64(a.Rows))
	sort.Ints(lens)
	s.MedianRowLen = lens[a.Rows/2]
	// Gini over the sorted lengths: G = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n.
	if sum > 0 {
		weighted := 0.0
		for i, l := range lens {
			weighted += float64(i+1) * float64(l)
		}
		n := float64(a.Rows)
		s.Gini = 2*weighted/(n*float64(sum)) - (n+1)/n
	}
	return s
}

// String renders the stats in the style of the paper's Table II rows.
func (s RowStats) String() string {
	return fmt.Sprintf("%dx%d nnz=%d rowlen(min=%d avg=%.1f max=%d) empty=%d gini=%.3f",
		s.Rows, s.Cols, s.NNZ, s.MinRowLen, s.AvgRowLen, s.MaxRowLen, s.EmptyRows, s.Gini)
}

// RowLengths returns the per-row nonzero counts.
func RowLengths(a *CSR) []int {
	lens := make([]int, a.Rows)
	for i := range lens {
		lens[i] = a.RowLen(i)
	}
	return lens
}

// Bandwidth returns the matrix bandwidth: max over nonzeros of |i - j|.
// Banded FEM matrices have small bandwidth; power-law matrices do not.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := a.ColIdx[k] - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func Density(a *CSR) float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.Rows) * float64(a.Cols))
}

// PermutedBandwidth returns the bandwidth of the row-permuted matrix
// PA (perm maps permuted position -> original row; nil means natural
// order): max over nonzeros of |permuted row - column|. Row-reordering
// strategies report it to show how much band structure an order
// recovers; columns do not move, so this is the bandwidth the x-gather
// actually sees.
func PermutedBandwidth(a *CSR, perm []int) int {
	if perm == nil {
		return Bandwidth(a)
	}
	bw := 0
	for i := 0; i < a.Rows; i++ {
		o := perm[i]
		for k := a.RowPtr[o]; k < a.RowPtr[o+1]; k++ {
			d := a.ColIdx[k] - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
