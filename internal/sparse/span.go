package sparse

import "math"

// Column-span statistics feeding the compressed-index execution streams:
// the core Prepare pipeline stores column indices as u32 whenever they
// fit 32 bits and as u16 deltas from a per-row base column for rows whose
// column span (maxCol-minCol) fits 16 bits. These helpers let tools
// report which formats a matrix will get before any Prepare runs.

// IndexWidthBits returns the narrowest conventional unsigned width (8,
// 16, 32 or 64 bits) that can hold every column index of a matrix with
// the given column count.
func IndexWidthBits(cols int) int {
	switch {
	case cols <= 1<<8:
		return 8
	case cols <= 1<<16:
		return 16
	case uint64(cols) <= 1<<32:
		return 32
	default:
		return 64
	}
}

// ColSpanStats summarizes the per-row column spans of a matrix.
type ColSpanStats struct {
	// MaxSpan is the largest row column-span (maxCol-minCol; 0 for empty
	// and single-entry rows).
	MaxSpan int
	// Rows16 counts rows whose span fits a 16-bit delta encoding
	// (span <= 65535; empty rows count as trivially encodable).
	Rows16 int
	// NNZ16 counts the nonzeros inside those rows — the share of the
	// matrix a u16-delta execution stream can cover.
	NNZ16 int
}

// ComputeColSpanStats scans the matrix once and returns its column-span
// profile.
func ComputeColSpanStats(a *CSR) ColSpanStats {
	var s ColSpanStats
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo == hi {
			s.Rows16++
			continue
		}
		mn, mx := a.ColIdx[lo], a.ColIdx[lo]
		for k := lo + 1; k < hi; k++ {
			if c := a.ColIdx[k]; c < mn {
				mn = c
			} else if c > mx {
				mx = c
			}
		}
		if span := mx - mn; span > s.MaxSpan {
			s.MaxSpan = span
		}
		if mx-mn <= math.MaxUint16 {
			s.Rows16++
			s.NNZ16 += hi - lo
		}
	}
	return s
}
