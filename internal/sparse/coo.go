package sparse

import (
	"fmt"
	"sort"
)

// COO is a sparse matrix in coordinate (triplet) format. It is the natural
// assembly and file-exchange format (Matrix Market coordinate files map to
// it directly) and converts to CSR in O(nnz).
type COO struct {
	Rows int
	Cols int
	I    []int
	J    []int
	V    []float64
}

// NNZ returns the number of stored triplets (duplicates counted separately).
func (c *COO) NNZ() int { return len(c.I) }

// Add appends a triplet. Out-of-range indices panic; accumulation of
// duplicates is deferred to ToCSR.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) out of range %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// Validate checks index ranges and array-length consistency.
func (c *COO) Validate() error {
	if len(c.I) != len(c.J) || len(c.I) != len(c.V) {
		return fmt.Errorf("sparse: COO array lengths differ (%d,%d,%d)", len(c.I), len(c.J), len(c.V))
	}
	for k := range c.I {
		if c.I[k] < 0 || c.I[k] >= c.Rows {
			return fmt.Errorf("sparse: COO row index %d out of range at %d", c.I[k], k)
		}
		if c.J[k] < 0 || c.J[k] >= c.Cols {
			return fmt.Errorf("sparse: COO col index %d out of range at %d", c.J[k], k)
		}
	}
	return nil
}

// ToCSR converts to CSR via counting sort on rows. Within each row, entries
// are sorted by column and duplicate coordinates are summed, matching the
// conventional Matrix Market semantics for assembled matrices.
func (c *COO) ToCSR() *CSR {
	a := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	for _, i := range c.I {
		a.RowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	nnz := len(c.I)
	a.ColIdx = make([]int, nnz)
	a.Val = make([]float64, nnz)
	next := append([]int(nil), a.RowPtr[:c.Rows]...)
	for k := 0; k < nnz; k++ {
		i := c.I[k]
		p := next[i]
		next[i]++
		a.ColIdx[p] = c.J[k]
		a.Val[p] = c.V[k]
	}
	a.SortRows()
	a.dedupSortedRows()
	return a
}

// dedupSortedRows merges duplicate column entries within rows that are
// already sorted, compacting the arrays in place.
func (a *CSR) dedupSortedRows() {
	w := 0
	newPtr := make([]int, a.Rows+1)
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		k := lo
		for k < hi {
			col := a.ColIdx[k]
			sum := a.Val[k]
			k++
			for k < hi && a.ColIdx[k] == col {
				sum += a.Val[k]
				k++
			}
			a.ColIdx[w] = col
			a.Val[w] = sum
			w++
		}
		newPtr[i+1] = w
	}
	a.RowPtr = newPtr
	a.ColIdx = a.ColIdx[:w]
	a.Val = a.Val[:w]
}

// FromCSR converts a CSR matrix to COO triplets in row-major order.
func FromCSR(a *CSR) *COO {
	c := &COO{Rows: a.Rows, Cols: a.Cols}
	nnz := a.NNZ()
	c.I = make([]int, 0, nnz)
	c.J = make([]int, 0, nnz)
	c.V = make([]float64, 0, nnz)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.I = append(c.I, i)
			c.J = append(c.J, a.ColIdx[k])
			c.V = append(c.V, a.Val[k])
		}
	}
	return c
}

// SortRowMajor sorts the triplets by (row, column).
func (c *COO) SortRowMajor() {
	sort.Sort(&cooSorter{c})
}

type cooSorter struct{ c *COO }

func (s *cooSorter) Len() int { return len(s.c.I) }
func (s *cooSorter) Less(a, b int) bool {
	if s.c.I[a] != s.c.I[b] {
		return s.c.I[a] < s.c.I[b]
	}
	return s.c.J[a] < s.c.J[b]
}
func (s *cooSorter) Swap(a, b int) {
	s.c.I[a], s.c.I[b] = s.c.I[b], s.c.I[a]
	s.c.J[a], s.c.J[b] = s.c.J[b], s.c.J[a]
	s.c.V[a], s.c.V[b] = s.c.V[b], s.c.V[a]
}
