// Package sparse provides the sparse-matrix data structures that underpin
// the HASpMV reproduction: CSR (compressed sparse row) and COO (coordinate)
// storage, conversion between them, structural validation, and row-level
// statistics used by the partitioning heuristics.
//
// All matrices store float64 values and use int row/column indices so the
// same code paths serve matrices from a few rows up to the multi-million-row
// instances in the paper's Table II.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format, the baseline
// representation of the paper (Algorithm 1). RowPtr has length Rows+1;
// the column indices and values of row i occupy ColIdx[RowPtr[i]:RowPtr[i+1]]
// and Val[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int {
	if len(a.RowPtr) == 0 {
		return 0
	}
	return a.RowPtr[len(a.RowPtr)-1]
}

// RowLen returns the number of stored entries in row i.
func (a *CSR) RowLen(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices that
// alias the matrix storage.
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// Validate checks the structural invariants of the CSR matrix: monotone
// row pointers, in-range column indices, and consistent array lengths.
// Column indices within a row are not required to be sorted (SuiteSparse
// files often are, but the algorithms must not rely on it).
func (a *CSR) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i+1] < a.RowPtr[i] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d (%d > %d)", i, a.RowPtr[i], a.RowPtr[i+1])
		}
		// A monotone prefix can still point past the storage when a later
		// entry decreases again; checking every entry against the array
		// length names the first offending row instead of failing on the
		// aggregate nnz count (or not at all, when the final entry happens
		// to match len(ColIdx)).
		if a.RowPtr[i+1] > len(a.ColIdx) {
			return fmt.Errorf("sparse: RowPtr[%d] = %d exceeds ColIdx length %d", i+1, a.RowPtr[i+1], len(a.ColIdx))
		}
	}
	nnz := a.RowPtr[a.Rows]
	if len(a.ColIdx) != nnz {
		return fmt.Errorf("sparse: ColIdx length %d, want %d", len(a.ColIdx), nnz)
	}
	if len(a.Val) != nnz {
		return fmt.Errorf("sparse: Val length %d, want %d", len(a.Val), nnz)
	}
	for k, c := range a.ColIdx {
		if c < 0 || c >= a.Cols {
			return fmt.Errorf("sparse: ColIdx[%d] = %d out of range [0,%d)", k, c, a.Cols)
		}
	}
	return nil
}

// SortRows sorts the column indices (and matching values) within each row
// in ascending order. Sorted rows improve cache-line cost estimation
// (Algorithm 3 assumes a forward sweep over columns).
func (a *CSR) SortRows() {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi]
		sort.Sort(&rowSorter{cols: cols, vals: vals})
	}
}

// RowsSorted reports whether every row's column indices are in strictly
// ascending order.
func (a *CSR) RowsSorted() bool {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo + 1; k < hi; k++ {
			if a.ColIdx[k] <= a.ColIdx[k-1] {
				return false
			}
		}
	}
	return true
}

type rowSorter struct {
	cols []int
	vals []float64
}

func (s *rowSorter) Len() int           { return len(s.cols) }
func (s *rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// MulVec computes y = A*x serially. It is the reference implementation all
// parallel algorithms are tested against. len(x) must be Cols and len(y)
// must be Rows.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVec x length %d, want %d", len(x), a.Cols))
	}
	if len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec y length %d, want %d", len(y), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// Transpose returns A^T in CSR form (equivalently, A in CSC form read as CSR).
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:a.Cols]...)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			next[c]++
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// Equal reports whether two matrices have identical structure and values.
func (a *CSR) Equal(b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// EqualValues reports whether two matrices represent the same mathematical
// matrix (same dense expansion) within tolerance tol, regardless of storage
// order within rows.
func (a *CSR) EqualValues(b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	row := make(map[int]float64)
	for i := 0; i < a.Rows; i++ {
		clear(row)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			row[a.ColIdx[k]] += a.Val[k]
		}
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			row[b.ColIdx[k]] -= b.Val[k]
		}
		for _, v := range row {
			if math.Abs(v) > tol {
				return false
			}
		}
	}
	return true
}

// ErrDimension is returned by constructors given inconsistent inputs.
var ErrDimension = errors.New("sparse: inconsistent dimensions")

// NewCSR builds a validated CSR matrix from its raw arrays.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	a := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// FromDense builds a CSR matrix from a dense row-major matrix, storing
// every entry whose absolute value exceeds drop.
func FromDense(dense [][]float64, drop float64) *CSR {
	rows := len(dense)
	cols := 0
	if rows > 0 {
		cols = len(dense[0])
	}
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i, r := range dense {
		if len(r) != cols {
			panic("sparse: ragged dense matrix")
		}
		for j, v := range r {
			if math.Abs(v) > drop {
				a.ColIdx = append(a.ColIdx, j)
				a.Val = append(a.Val, v)
			}
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

// ToDense expands the matrix to a dense row-major representation.
// Intended for tests on small matrices.
func (a *CSR) ToDense() [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.ColIdx[k]] += a.Val[k]
		}
	}
	return d
}
