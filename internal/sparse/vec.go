package sparse

import "math"

// Vector helpers shared by the examples (conjugate gradient, PageRank) and
// the test suite. They operate on plain []float64 so they compose with the
// SpMV kernels without wrapper types.

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: AXPY length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between
// a and b; it is the comparison metric in the correctness tests.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: MaxAbsDiff length mismatch")
	}
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	Fill(v, 1)
	return v
}

// Iota returns the vector [0, 1, ..., n-1]; handy for deterministic tests.
func Iota(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}
