package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSRSortsAndDedups(t *testing.T) {
	c := &COO{Rows: 3, Cols: 3}
	c.Add(2, 1, 1)
	c.Add(0, 2, 2)
	c.Add(0, 0, 3)
	c.Add(0, 2, 4) // duplicate of (0,2): must sum to 6
	c.Add(1, 1, 5)
	a := c.ToCSR()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.RowsSorted() {
		t.Fatal("ToCSR produced unsorted rows")
	}
	want := FromDense([][]float64{
		{3, 0, 6},
		{0, 5, 0},
		{0, 1, 0},
	}, 0)
	if !a.Equal(want) {
		t.Fatalf("ToCSR = %v / %v / %v", a.RowPtr, a.ColIdx, a.Val)
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	c := &COO{Rows: 2, Cols: 2}
	for _, p := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%d,%d) did not panic", p[0], p[1])
				}
			}()
			c.Add(p[0], p[1], 1)
		}()
	}
}

func TestCOOValidate(t *testing.T) {
	c := &COO{Rows: 2, Cols: 2, I: []int{0}, J: []int{0, 1}, V: []float64{1}}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted ragged COO")
	}
	c = &COO{Rows: 2, Cols: 2, I: []int{5}, J: []int{0}, V: []float64{1}}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range row")
	}
	c = &COO{Rows: 2, Cols: 2, I: []int{0}, J: []int{9}, V: []float64{1}}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range col")
	}
}

// Property: CSR -> COO -> CSR is the identity for matrices with sorted,
// duplicate-free rows (which ToCSR guarantees).
func TestCSRCOORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 3+r.Intn(25), 3+r.Intn(25), 0.25)
		b := FromCSR(a).ToCSR()
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffling triplet order never changes the resulting CSR.
func TestCOOOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 4+r.Intn(20), 4+r.Intn(20), 0.3)
		c := FromCSR(a)
		perm := r.Perm(c.NNZ())
		sh := &COO{Rows: c.Rows, Cols: c.Cols}
		for _, p := range perm {
			sh.Add(c.I[p], c.J[p], c.V[p])
		}
		return sh.ToCSR().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCOOSortRowMajor(t *testing.T) {
	c := &COO{Rows: 3, Cols: 3}
	c.Add(2, 2, 1)
	c.Add(0, 1, 2)
	c.Add(2, 0, 3)
	c.Add(0, 0, 4)
	c.SortRowMajor()
	wantI := []int{0, 0, 2, 2}
	wantJ := []int{0, 1, 0, 2}
	for k := range wantI {
		if c.I[k] != wantI[k] || c.J[k] != wantJ[k] {
			t.Fatalf("sorted order = %v/%v, want %v/%v", c.I, c.J, wantI, wantJ)
		}
	}
}

func TestStatsFigures(t *testing.T) {
	a := fig1Matrix()
	s := ComputeRowStats(a)
	if s.MinRowLen != 1 || s.MaxRowLen != 8 {
		t.Fatalf("min/max = %d/%d, want 1/8", s.MinRowLen, s.MaxRowLen)
	}
	if s.NNZ != 24 {
		t.Fatalf("nnz = %d", s.NNZ)
	}
	if s.AvgRowLen != 24.0/8.0 {
		t.Fatalf("avg = %v", s.AvgRowLen)
	}
	if s.EmptyRows != 0 {
		t.Fatalf("empty = %d", s.EmptyRows)
	}
	if s.Gini <= 0 || s.Gini >= 1 {
		t.Fatalf("gini = %v out of (0,1)", s.Gini)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestGiniExtremes(t *testing.T) {
	// Perfectly even rows: Gini == 0.
	even := FromDense([][]float64{{1, 1}, {1, 1}}, 0)
	if g := ComputeRowStats(even).Gini; g != 0 {
		t.Fatalf("even Gini = %v, want 0", g)
	}
	// All mass in one row out of many: Gini -> (n-1)/n.
	c := &COO{Rows: 10, Cols: 10}
	for j := 0; j < 10; j++ {
		c.Add(0, j, 1)
	}
	g := ComputeRowStats(c.ToCSR()).Gini
	if g < 0.85 || g > 0.95 {
		t.Fatalf("concentrated Gini = %v, want ~0.9", g)
	}
}

func TestBandwidthAndDensity(t *testing.T) {
	a := FromDense([][]float64{
		{1, 1, 0, 0},
		{1, 1, 1, 0},
		{0, 1, 1, 1},
		{0, 0, 1, 1},
	}, 0)
	if bw := Bandwidth(a); bw != 1 {
		t.Fatalf("bandwidth = %d, want 1", bw)
	}
	if d := Density(a); d != 10.0/16.0 {
		t.Fatalf("density = %v", d)
	}
	if Density(&CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}) != 0 {
		t.Fatal("empty density != 0")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2")
	}
	z := append([]float64(nil), y...)
	AXPY(2, x, z)
	if z[0] != 6 || z[2] != 12 {
		t.Fatalf("AXPY = %v", z)
	}
	Scale(0.5, z)
	if z[0] != 3 {
		t.Fatalf("Scale = %v", z)
	}
	v := Ones(3)
	if v[2] != 1 {
		t.Fatal("Ones")
	}
	if MaxAbsDiff(x, y) != 3 {
		t.Fatal("MaxAbsDiff")
	}
	if Iota(3)[2] != 2 {
		t.Fatal("Iota")
	}
	Fill(v, 7)
	if v[0] != 7 {
		t.Fatal("Fill")
	}
	for _, fn := range []func(){
		func() { Dot(x, v[:2]) },
		func() { AXPY(1, x, v[:2]) },
		func() { MaxAbsDiff(x, v[:2]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}
