package sparse

import (
	"math"
	"testing"
)

func TestIndexWidthBits(t *testing.T) {
	cases := []struct{ cols, want int }{
		{0, 8}, {1, 8}, {256, 8}, {257, 16},
		{1 << 16, 16}, {1<<16 + 1, 32}, {1 << 30, 32},
	}
	// The 64-bit cases only exist where int can hold them (not GOARCH=386);
	// the shift is kept non-constant so this file still compiles there.
	if math.MaxInt > math.MaxUint32 {
		one := 1
		cases = append(cases,
			struct{ cols, want int }{one << 31, 32},
			struct{ cols, want int }{math.MaxInt, 64})
	}
	for _, tc := range cases {
		if got := IndexWidthBits(tc.cols); got != tc.want {
			t.Errorf("IndexWidthBits(%d) = %d, want %d", tc.cols, got, tc.want)
		}
	}
}

func TestComputeColSpanStats(t *testing.T) {
	// Rows: span 3 (eligible), empty (trivially eligible), span 65535
	// (the u16 boundary, eligible), span 65536 (ineligible).
	wide := math.MaxUint16 + 1
	a := &CSR{
		Rows:   4,
		Cols:   wide + 10,
		RowPtr: []int{0, 2, 2, 4, 6},
		ColIdx: []int{5, 8, 3, 3 + math.MaxUint16, 0, wide},
		Val:    []float64{1, 1, 1, 1, 1, 1},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeColSpanStats(a)
	if s.MaxSpan != wide {
		t.Errorf("MaxSpan = %d, want %d", s.MaxSpan, wide)
	}
	if s.Rows16 != 3 {
		t.Errorf("Rows16 = %d, want 3", s.Rows16)
	}
	if s.NNZ16 != 4 {
		t.Errorf("NNZ16 = %d, want 4", s.NNZ16)
	}
}
