package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fig1Matrix is the 8x8 example style matrix used throughout the paper's
// figures (an arbitrary small sparse matrix with mixed row lengths).
func fig1Matrix() *CSR {
	return FromDense([][]float64{
		{1, 0, 0, 2, 0, 0, 0, 0},
		{0, 3, 4, 0, 0, 5, 0, 0},
		{0, 0, 6, 0, 0, 0, 0, 0},
		{7, 0, 0, 8, 9, 0, 1, 2},
		{0, 0, 0, 0, 3, 0, 0, 0},
		{4, 5, 6, 7, 8, 9, 1, 2},
		{0, 0, 0, 0, 0, 0, 3, 0},
		{0, 4, 0, 0, 0, 5, 0, 6},
	}, 0)
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	coo := &COO{Rows: rows, Cols: cols}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestFromDenseRoundTrip(t *testing.T) {
	a := fig1Matrix()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d := a.ToDense()
	b := FromDense(d, 0)
	if !a.Equal(b) {
		t.Fatalf("dense round trip changed matrix")
	}
}

func TestCSRBasics(t *testing.T) {
	a := fig1Matrix()
	if a.Rows != 8 || a.Cols != 8 {
		t.Fatalf("dims = %dx%d, want 8x8", a.Rows, a.Cols)
	}
	if got, want := a.NNZ(), 24; got != want {
		t.Fatalf("NNZ = %d, want %d", got, want)
	}
	if got := a.RowLen(5); got != 8 {
		t.Fatalf("RowLen(5) = %d, want 8", got)
	}
	cols, vals := a.Row(2)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 6 {
		t.Fatalf("Row(2) = %v %v, want [2] [6]", cols, vals)
	}
}

func TestValidateRejectsBadMatrices(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CSR)
	}{
		{"rowptr length", func(a *CSR) { a.RowPtr = a.RowPtr[:len(a.RowPtr)-1] }},
		{"rowptr nonzero start", func(a *CSR) { a.RowPtr[0] = 1 }},
		{"rowptr decreasing", func(a *CSR) { a.RowPtr[3] = a.RowPtr[4] + 1 }},
		{"colidx range high", func(a *CSR) { a.ColIdx[0] = a.Cols }},
		{"colidx range low", func(a *CSR) { a.ColIdx[0] = -1 }},
		{"val length", func(a *CSR) { a.Val = a.Val[:len(a.Val)-1] }},
		{"negative rows", func(a *CSR) { a.Rows = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := fig1Matrix()
			tc.mut(a)
			if err := a.Validate(); err == nil {
				t.Fatalf("Validate accepted corrupted matrix (%s)", tc.name)
			}
		})
	}
}

// A RowPtr entry can exceed len(ColIdx) mid-array while the final entry
// still matches; Validate must reject it naming the offending row rather
// than the aggregate length.
func TestValidateRejectsMidArrayRowPtrOverrun(t *testing.T) {
	a := fig1Matrix()
	over := len(a.ColIdx) + 3
	bad := &CSR{
		Rows:   3,
		Cols:   a.Cols,
		RowPtr: []int{0, over, over, len(a.ColIdx)},
		ColIdx: a.ColIdx,
		Val:    a.Val,
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted RowPtr overrunning ColIdx mid-array")
	}
	if !strings.Contains(err.Error(), "RowPtr[1]") {
		t.Fatalf("error does not name the offending entry: %v", err)
	}
}

func TestNewCSRValidates(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0, 1}, []int{0}, []float64{1}); err == nil {
		t.Fatal("NewCSR accepted short RowPtr")
	}
	a, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 2})
	if err != nil {
		t.Fatalf("NewCSR rejected valid input: %v", err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
}

func TestMulVecReference(t *testing.T) {
	a := fig1Matrix()
	x := Iota(8)
	y := make([]float64, 8)
	a.MulVec(y, x)
	d := a.ToDense()
	for i := 0; i < 8; i++ {
		want := 0.0
		for j := 0; j < 8; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestMulVecPanicsOnBadLengths(t *testing.T) {
	a := fig1Matrix()
	for _, tc := range []struct{ ny, nx int }{{8, 7}, {7, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MulVec(%d,%d) did not panic", tc.ny, tc.nx)
				}
			}()
			a.MulVec(make([]float64, tc.ny), make([]float64, tc.nx))
		}()
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 1+rng.Intn(40), 1+rng.Intn(40), 0.15)
		tt := a.Transpose().Transpose()
		if !a.EqualValues(tt, 0) {
			t.Fatalf("transpose twice changed matrix (trial %d)", trial)
		}
	}
}

func TestTransposeMulVecAgrees(t *testing.T) {
	// (A^T x)_j == sum_i A_ij x_i, checked against dense arithmetic.
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 30, 20, 0.2)
	at := a.Transpose()
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 20)
	at.MulVec(y, x)
	d := a.ToDense()
	for j := 0; j < 20; j++ {
		want := 0.0
		for i := 0; i < 30; i++ {
			want += d[i][j] * x[i]
		}
		if math.Abs(y[j]-want) > 1e-9 {
			t.Fatalf("A^T x mismatch at %d: got %v want %v", j, y[j], want)
		}
	}
}

func TestSortRows(t *testing.T) {
	a := fig1Matrix()
	// Scramble row 5 manually.
	lo, hi := a.RowPtr[5], a.RowPtr[5+1]
	for k := lo; k < (lo+hi)/2; k++ {
		o := hi - 1 - (k - lo)
		a.ColIdx[k], a.ColIdx[o] = a.ColIdx[o], a.ColIdx[k]
		a.Val[k], a.Val[o] = a.Val[o], a.Val[k]
	}
	if a.RowsSorted() {
		t.Fatal("scramble failed")
	}
	ref := fig1Matrix()
	a.SortRows()
	if !a.RowsSorted() {
		t.Fatal("SortRows left unsorted rows")
	}
	if !a.Equal(ref) {
		t.Fatal("SortRows changed matrix content")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := fig1Matrix()
	b := a.Clone()
	b.Val[0] = 99
	b.ColIdx[0] = 5
	b.RowPtr[1] = 0
	if a.Val[0] == 99 || a.ColIdx[0] == 5 || a.RowPtr[1] == 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqualValuesToleratesRowOrder(t *testing.T) {
	a := fig1Matrix()
	b := a.Clone()
	// Reverse entries in each row of b: same values, different order.
	for i := 0; i < b.Rows; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		for l, r := lo, hi-1; l < r; l, r = l+1, r-1 {
			b.ColIdx[l], b.ColIdx[r] = b.ColIdx[r], b.ColIdx[l]
			b.Val[l], b.Val[r] = b.Val[r], b.Val[l]
		}
	}
	if !a.EqualValues(b, 1e-15) {
		t.Fatal("EqualValues should ignore within-row order")
	}
	b.Val[0] += 1
	if a.EqualValues(b, 1e-15) {
		t.Fatal("EqualValues missed a changed value")
	}
}

// Property: for random matrices, MulVec is linear: A(ax+by) = aAx + bAy.
func TestMulVecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 5+r.Intn(30), 5+r.Intn(30), 0.2)
		x1 := make([]float64, a.Cols)
		x2 := make([]float64, a.Cols)
		for i := range x1 {
			x1[i], x2[i] = r.NormFloat64(), r.NormFloat64()
		}
		alpha, beta := r.NormFloat64(), r.NormFloat64()
		comb := make([]float64, a.Cols)
		for i := range comb {
			comb[i] = alpha*x1[i] + beta*x2[i]
		}
		y1 := make([]float64, a.Rows)
		y2 := make([]float64, a.Rows)
		yc := make([]float64, a.Rows)
		a.MulVec(y1, x1)
		a.MulVec(y2, x2)
		a.MulVec(yc, comb)
		for i := range yc {
			if math.Abs(yc[i]-(alpha*y1[i]+beta*y2[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	a := &CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	if err := a.Validate(); err != nil {
		t.Fatalf("empty matrix invalid: %v", err)
	}
	if a.NNZ() != 0 {
		t.Fatal("empty matrix has nonzeros")
	}
	a.MulVec(nil, nil) // must not panic
	s := ComputeRowStats(a)
	if s.NNZ != 0 || s.Rows != 0 {
		t.Fatalf("stats of empty matrix: %+v", s)
	}
}

func TestMatrixWithEmptyRows(t *testing.T) {
	// cop20k_A-style matrices have min row length 0; every algorithm must
	// survive them, starting with the base type.
	a, err := NewCSR(4, 4, []int{0, 0, 2, 2, 3}, []int{1, 3, 0}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 4)
	a.MulVec(y, Ones(4))
	want := []float64{0, 3, 0, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	if s := ComputeRowStats(a); s.EmptyRows != 2 || s.MinRowLen != 0 {
		t.Fatalf("stats = %+v, want 2 empty rows", s)
	}
}
