package sparse

import (
	"strings"
	"testing"
)

// tridiag builds an n x n tridiagonal matrix with a two-value palette.
func tridiag(n int) *CSR {
	c := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		c.Add(i, i, 2)
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func TestDiagStatsTridiagonal(t *testing.T) {
	a := tridiag(100)
	s := ComputeDiagStats(a, 3)
	if s.Diagonals != 3 {
		t.Fatalf("Diagonals = %d, want 3", s.Diagonals)
	}
	if s.TopShare != 1 {
		t.Fatalf("top-3 share = %v, want 1 (all nnz on 3 diagonals)", s.TopShare)
	}
	// Interior rows are one contiguous 3-run; the two boundary rows are
	// one 2-run each. 100 rows -> 100 runs.
	if s.Runs != 100 {
		t.Fatalf("Runs = %d, want 100", s.Runs)
	}
	if s.MaxRunLen != 3 {
		t.Fatalf("MaxRunLen = %d, want 3", s.MaxRunLen)
	}
	if s.RunLenHist[1] != 100 || s.RunLenHist[0] != 0 {
		t.Fatalf("run hist = %v, want all 100 runs in the 2-3 bucket", s.RunLenHist)
	}
	if !strings.Contains(s.HistString(), "2-3:100") {
		t.Fatalf("HistString = %q", s.HistString())
	}
}

func TestDiagStatsScattered(t *testing.T) {
	// Stride-2 columns: no consecutive pairs, every entry its own run.
	c := &COO{Rows: 50, Cols: 200}
	for i := 0; i < 50; i++ {
		for j := 0; j < 5; j++ {
			c.Add(i, (i+2*j*7)%200, 1)
		}
	}
	a := c.ToCSR()
	s := ComputeDiagStats(a, 2)
	if s.Runs != a.NNZ() {
		t.Fatalf("Runs = %d, want one per nonzero %d", s.Runs, a.NNZ())
	}
	if s.MaxRunLen != 1 || s.RunLenHist[0] != a.NNZ() {
		t.Fatalf("scattered matrix has runs longer than 1: max %d hist %v", s.MaxRunLen, s.RunLenHist)
	}
	if s.Diagonals <= 2 {
		t.Fatalf("Diagonals = %d, want more than the top-2 window", s.Diagonals)
	}
	if s.TopShare >= 1 {
		t.Fatalf("top-2 share = %v, want < 1 on a %d-diagonal matrix", s.TopShare, s.Diagonals)
	}
}

func TestDiagStatsEmpty(t *testing.T) {
	a := &CSR{Rows: 3, Cols: 3, RowPtr: []int{0, 0, 0, 0}}
	s := ComputeDiagStats(a, 8)
	if s.Runs != 0 || s.Diagonals != 0 || s.TopShare != 1 {
		t.Fatalf("empty matrix stats = %+v", s)
	}
}

func TestValueStats(t *testing.T) {
	a := tridiag(64)
	vs := ComputeValueStats(a)
	if vs.Distinct != 2 || vs.Capped || !vs.PaletteEligible() {
		t.Fatalf("tridiag value stats = %+v, want 2 distinct, eligible", vs)
	}

	// 300 distinct values must cap at ValueStatsCap and lose eligibility.
	c := &COO{Rows: 300, Cols: 300}
	for i := 0; i < 300; i++ {
		c.Add(i, i, 1+float64(i)/7)
	}
	vs = ComputeValueStats(c.ToCSR())
	if vs.Distinct != ValueStatsCap || !vs.Capped || vs.PaletteEligible() {
		t.Fatalf("300-value stats = %+v, want capped and ineligible", vs)
	}
}
