package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Diagonal-structure and value-stream statistics feeding the pluggable
// per-region execution formats: the core Prepare pipeline replaces
// per-nonzero column indices with constant-offset run descriptors on rows
// that decompose into few contiguous runs, and dedups the value stream
// into a byte-indexed palette when the matrix holds at most 256 distinct
// values. These helpers let tools report what a matrix will get before
// any Prepare runs, mirroring ComputeColSpanStats for the u16 stream.

// DiagStats summarizes how diagonal a matrix's structure is.
type DiagStats struct {
	// Diagonals counts distinct occupied diagonals (col-row offsets).
	Diagonals int
	// TopD is the d the TopShare was computed for.
	TopD int
	// TopShare is the fraction of nonzeros on the TopD densest diagonals
	// (1.0 for an empty matrix's vacuous cover).
	TopShare float64
	// Runs counts maximal constant-offset runs (stretches of consecutive
	// columns within one row) — the descriptors a diagonal execution
	// stream would store instead of per-nonzero indices.
	Runs int
	// MaxRunLen is the longest run; MeanRunLen is nnz/Runs.
	MaxRunLen  int
	MeanRunLen float64
	// RunLenHist buckets run lengths as 1, 2-3, 4-7, 8-15, and >=16.
	RunLenHist [5]int
}

// HistString renders the run-length histogram compactly.
func (s DiagStats) HistString() string {
	return fmt.Sprintf("1:%d 2-3:%d 4-7:%d 8-15:%d 16+:%d",
		s.RunLenHist[0], s.RunLenHist[1], s.RunLenHist[2], s.RunLenHist[3], s.RunLenHist[4])
}

// ComputeDiagStats scans the matrix once and returns its diagonal
// profile; topD selects how many of the densest diagonals the coverage
// share is computed over (<=0 selects 8).
func ComputeDiagStats(a *CSR, topD int) DiagStats {
	if topD <= 0 {
		topD = 8
	}
	s := DiagStats{TopD: topD, TopShare: 1}
	byOffset := make(map[int]int)
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		runLen := 0
		for k := lo; k < hi; k++ {
			byOffset[a.ColIdx[k]-i]++
			if k > lo && a.ColIdx[k] == a.ColIdx[k-1]+1 {
				runLen++
				continue
			}
			if runLen > 0 {
				s.addRun(runLen)
			}
			runLen = 1
		}
		if runLen > 0 {
			s.addRun(runLen)
		}
	}
	s.Diagonals = len(byOffset)
	if nnz := a.NNZ(); nnz > 0 {
		counts := make([]int, 0, len(byOffset))
		for _, c := range byOffset {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		covered := 0
		for i := 0; i < topD && i < len(counts); i++ {
			covered += counts[i]
		}
		s.TopShare = float64(covered) / float64(nnz)
		s.MeanRunLen = float64(nnz) / float64(s.Runs)
	}
	return s
}

func (s *DiagStats) addRun(l int) {
	s.Runs++
	if l > s.MaxRunLen {
		s.MaxRunLen = l
	}
	switch {
	case l == 1:
		s.RunLenHist[0]++
	case l <= 3:
		s.RunLenHist[1]++
	case l <= 7:
		s.RunLenHist[2]++
	case l <= 15:
		s.RunLenHist[3]++
	default:
		s.RunLenHist[4]++
	}
}

// ValueStatsCap is where distinct-value counting stops: one past the
// 256-entry palette limit, so Distinct == ValueStatsCap means "more than
// a palette can hold" rather than an exact count.
const ValueStatsCap = 257

// ValueStats summarizes the value stream's compressibility.
type ValueStats struct {
	// Distinct is the number of distinct values (by exact bit pattern,
	// so 0.0/-0.0 and NaN payloads count separately), counted up to
	// ValueStatsCap; Capped reports whether counting stopped there.
	Distinct int
	Capped   bool
}

// PaletteEligible reports whether a byte-indexed 256-entry palette can
// represent the value stream exactly.
func (s ValueStats) PaletteEligible() bool { return !s.Capped && s.Distinct <= 256 }

// ComputeValueStats counts distinct values up to ValueStatsCap.
func ComputeValueStats(a *CSR) ValueStats {
	seen := make(map[uint64]struct{}, 64)
	for _, v := range a.Val {
		seen[math.Float64bits(v)] = struct{}{}
		if len(seen) >= ValueStatsCap {
			return ValueStats{Distinct: ValueStatsCap, Capped: true}
		}
	}
	return ValueStats{Distinct: len(seen)}
}
