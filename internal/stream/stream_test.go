package stream

import (
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
)

func TestSweepShape(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	pts := Sweep(m, p, amp.POnly, 20)
	if len(pts) != 20 {
		t.Fatalf("points: %d", len(pts))
	}
	// Sizes strictly increasing, bandwidth positive, and the left edge
	// (cache resident) well above the right edge (DRAM plateau).
	for i, pt := range pts {
		if pt.GBps <= 0 || pt.TotalBytes != pt.Elems*24 {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
		if i > 0 && pt.Elems <= pts[i-1].Elems {
			t.Fatalf("sizes not increasing at %d", i)
		}
	}
	if pts[0].GBps < 2*pts[len(pts)-1].GBps {
		t.Fatalf("no cache cliff: %.1f -> %.1f", pts[0].GBps, pts[len(pts)-1].GBps)
	}
	if pts[len(pts)-1].BoundBy == "core" {
		t.Fatalf("right edge bound by %q", pts[len(pts)-1].BoundBy)
	}
}

func TestSweepMinimumPoints(t *testing.T) {
	m := amp.AMDRyzen97950X()
	pts := Sweep(m, costmodel.DefaultParams(), amp.PAndE, 1)
	if len(pts) != 2 {
		t.Fatalf("clamped points: %d", len(pts))
	}
}

func TestDRAMPlateauOrdering(t *testing.T) {
	p := costmodel.DefaultParams()
	for _, m := range []*amp.Machine{amp.IntelI912900KF(), amp.IntelI913900KF()} {
		pOnly := DRAMPlateau(m, p, amp.POnly)
		eOnly := DRAMPlateau(m, p, amp.EOnly)
		both := DRAMPlateau(m, p, amp.PAndE)
		if !(pOnly > eOnly) {
			t.Errorf("%s: plateau P %.1f <= E %.1f", m.Name, pOnly, eOnly)
		}
		if !(pOnly > both) {
			t.Errorf("%s: plateau P %.1f <= P+E %.1f (Fig 3 enlarged area)", m.Name, pOnly, both)
		}
	}
}

func TestHostTriadSanity(t *testing.T) {
	gbps := HostTriad(2, 1<<18, 3)
	if gbps <= 0 {
		t.Fatal("host triad returned nothing")
	}
	if HostTriad(0, 100, 1) != 0 || HostTriad(4, 2, 1) != 0 || HostTriad(1, 100, 0) != 0 {
		t.Fatal("degenerate host triad should return 0")
	}
}

func TestHostTriadCorrectness(t *testing.T) {
	// The kernel must actually compute a = b + 3c; spot-check via a tiny
	// run through the same code path.
	elems := 1024
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	for i := range a {
		a[i] = b[i] + 3*c[i]
	}
	for i := range a {
		if a[i] != float64(i)+6 {
			t.Fatalf("triad math wrong at %d", i)
		}
	}
}
