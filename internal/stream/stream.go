// Package stream reproduces the paper's stream-triad micro-benchmark
// (Section III-A, Figure 3): McCalpin's a[i] = b[i] + s*c[i] kernel swept
// over vector sizes from cache-resident to DRAM-bound, for the three core
// compositions of each AMP. The sweep is priced on the machine model
// (internal/costmodel); a real in-process triad kernel is also provided so
// the harness can report host wall-clock numbers alongside.
package stream

import (
	"math"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
)

// Point is one measurement of the sweep.
type Point struct {
	// Elems is the per-array element count; TotalBytes = 24*Elems covers
	// the two loads and one store of the triad.
	Elems      int
	TotalBytes int
	GBps       float64
	BoundBy    string
}

// Sweep runs the modeled triad over a log-spaced size range for one core
// composition. Sizes follow the figure's x-axis: total vector footprint
// from ~256KB to ~1.5GB.
func Sweep(m *amp.Machine, p costmodel.Params, cfg amp.Config, points int) []Point {
	if points < 2 {
		points = 2
	}
	cores := m.Cores(cfg)
	out := make([]Point, 0, points)
	minBytes := 256.0 * 1024
	maxBytes := 1.5 * 1024 * 1024 * 1024
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		bytes := minBytes * math.Pow(maxBytes/minBytes, f)
		elems := int(bytes / 24)
		r := costmodel.EstimateTriad(m, p, cores, elems)
		out = append(out, Point{
			Elems:      elems,
			TotalBytes: elems * 24,
			GBps:       r.GBps,
			BoundBy:    r.BoundBy,
		})
	}
	return out
}

// HostTriad measures the real triad bandwidth of the host for one worker
// count, giving the harness an honest native number to print next to the
// modeled curves. reps must be >= 1.
func HostTriad(workers, elems, reps int) float64 {
	if workers < 1 || elems < workers || reps < 1 {
		return 0
	}
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	const scalar = 3.0
	start := time.Now()
	for r := 0; r < reps; r++ {
		exec.Parallel(workers, func(w int) {
			lo := elems * w / workers
			hi := elems * (w + 1) / workers
			av, bv, cv := a[lo:hi], b[lo:hi], c[lo:hi]
			for i := range av {
				av[i] = bv[i] + scalar*cv[i]
			}
		})
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(24*elems*reps) / sec / 1e9
}

// DRAMPlateau returns the modeled deep-plateau bandwidth for a config — a
// single number summarizing the right edge of Figure 3.
func DRAMPlateau(m *amp.Machine, p costmodel.Params, cfg amp.Config) float64 {
	r := costmodel.EstimateTriad(m, p, m.Cores(cfg), 64_000_000)
	return r.GBps
}
