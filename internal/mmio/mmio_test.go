package mmio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"haspmv/internal/sparse"
)

func TestReadCoordinateGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 5
1 1 1.5
1 4 -2
2 2 3
3 1 4
3 3 0.5
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{
		{1.5, 0, 0, -2},
		{0, 3, 0, 0},
		{4, 0, 0.5, 0},
	}, 0)
	if !a.Equal(want) {
		t.Fatalf("got %v %v %v", a.RowPtr, a.ColIdx, a.Val)
	}
}

func TestReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2
2 1 5
3 3 7
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{
		{2, 5, 0},
		{5, 0, 0},
		{0, 0, 7},
	}, 0)
	if !a.EqualValues(want, 0) {
		t.Fatalf("symmetric expansion wrong: %v", a.ToDense())
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
3 3 2
2 1 5
3 2 -1
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{
		{0, -5, 0},
		{5, 0, 1},
		{0, -1, 0},
	}, 0)
	if !a.EqualValues(want, 0) {
		t.Fatalf("skew expansion wrong: %v", a.ToDense())
	}
}

func TestSkewDiagonalRejected(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
1 1 5
`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("accepted skew-symmetric diagonal")
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{{0, 1}, {1, 0}}, 0)
	if !a.Equal(want) {
		t.Fatal("pattern values should default to 1")
	}
}

func TestReadInteger(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
2 2 7
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.Val[0] != 7 {
		t.Fatalf("integer value = %v", a.Val[0])
	}
}

func TestReadArrayGeneral(t *testing.T) {
	// Column-major 2x2 dense: [[1,3],[2,0]].
	src := `%%MatrixMarket matrix array real general
2 2
1
2
3
0
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{{1, 3}, {2, 0}}, 0)
	if !a.Equal(want) {
		t.Fatalf("array parse: %v", a.ToDense())
	}
}

func TestReadArraySymmetric(t *testing.T) {
	// Lower triangle of a 2x2 symmetric: entries (1,1),(2,1),(2,2).
	src := `%%MatrixMarket matrix array real symmetric
2 2
1
4
9
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{{1, 4}, {4, 9}}, 0)
	if !a.EqualValues(want, 0) {
		t.Fatalf("array symmetric parse: %v", a.ToDense())
	}
}

func TestRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no banner":       "3 3 1\n1 1 1\n",
		"bad banner":      "%%MatrixMarket tensor coordinate real general\n1 1 1\n1 1 1\n",
		"complex":         "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"hermitian":       "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real diagonal\n1 1 1\n1 1 1\n",
		"bad field":       "%%MatrixMarket matrix coordinate decimal general\n1 1 1\n1 1 1\n",
		"bad format":      "%%MatrixMarket matrix list real general\n1 1 1\n1 1 1\n",
		"pattern array":   "%%MatrixMarket matrix array pattern general\n1 1\n1\n",
		"short size":      "%%MatrixMarket matrix coordinate real general\n3 3\n",
		"size not int":    "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"negative size":   "%%MatrixMarket matrix coordinate real general\n-1 3 0\n",
		"missing entries": "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1\n",
		"oob index":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
		"short entry":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"empty file":      "",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		coo := &sparse.COO{Rows: 1 + r.Intn(20), Cols: 1 + r.Intn(20)}
		n := r.Intn(60)
		for k := 0; k < n; k++ {
			coo.Add(r.Intn(coo.Rows), r.Intn(coo.Cols), r.NormFloat64())
		}
		a := coo.ToCSR()
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		b, err := Read(&buf)
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	a := sparse.FromDense([][]float64{{1, 0}, {0, 2}}, 0)
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("ReadFile on missing path succeeded")
	}
}

func TestHeaderReturned(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real symmetric\n1 1 1\n1 1 3\n"
	_, hdr, err := ReadCOO(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Symmetry != "symmetric" || hdr.Field != "real" || hdr.Format != "coordinate" {
		t.Fatalf("header = %+v", hdr)
	}
}

func TestDuplicateEntriesSummed(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1
1 1 2
2 2 5
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromDense([][]float64{{3, 0}, {0, 5}}, 0)
	if !a.Equal(want) {
		t.Fatalf("duplicates not summed: %v", a.ToDense())
	}
}
