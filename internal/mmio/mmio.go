// Package mmio reads and writes Matrix Market (.mtx) files, the exchange
// format of the SuiteSparse Matrix Collection that the paper benchmarks
// against. The coordinate and array formats are supported with the
// real/integer/pattern fields and general/symmetric/skew-symmetric
// symmetries (complex matrices are rejected, matching the paper's
// double-precision evaluation).
package mmio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"haspmv/internal/sparse"
)

// Header describes the banner line of a Matrix Market file.
type Header struct {
	Object   string // "matrix"
	Format   string // "coordinate" | "array"
	Field    string // "real" | "integer" | "pattern"
	Symmetry string // "general" | "symmetric" | "skew-symmetric"
}

// ErrNotMatrixMarket is returned when the banner line is missing or malformed.
var ErrNotMatrixMarket = errors.New("mmio: not a Matrix Market file")

// Limits bounds the sizes a file may declare before Read allocates for
// them, protecting callers from out-of-memory on adversarial headers
// ("1000000000000 2 1"). The defaults comfortably cover the largest
// SuiteSparse matrices; override for genuinely bigger data.
var Limits = struct {
	MaxRows, MaxCols, MaxNNZ int
}{1 << 28, 1 << 28, 1 << 30}

func checkSize(rows, cols, nnz int) error {
	if rows > Limits.MaxRows || cols > Limits.MaxCols || nnz > Limits.MaxNNZ {
		return fmt.Errorf("mmio: declared size %dx%d nnz %d exceeds limits (%d, %d, %d)",
			rows, cols, nnz, Limits.MaxRows, Limits.MaxCols, Limits.MaxNNZ)
	}
	return nil
}

func parseValue(field string) (float64, error) {
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("mmio: non-finite value %q", field)
	}
	return v, nil
}

// Read parses a Matrix Market stream into a CSR matrix. Symmetric and
// skew-symmetric storage is expanded to general storage, mirroring how
// SpMV benchmarks consume SuiteSparse matrices.
func Read(r io.Reader) (*sparse.CSR, error) {
	coo, _, err := ReadCOO(r)
	if err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadCOO parses a Matrix Market stream into COO triplets, returning the
// parsed header alongside. Symmetry expansion happens here: off-diagonal
// entries of symmetric matrices are mirrored; skew-symmetric mirrors are
// negated and diagonals must be absent per the specification.
func ReadCOO(r io.Reader) (*sparse.COO, Header, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	hdr, err := readBanner(sc)
	if err != nil {
		return nil, hdr, err
	}

	line, err := nextDataLine(sc)
	if err != nil {
		return nil, hdr, fmt.Errorf("mmio: missing size line: %w", err)
	}

	switch hdr.Format {
	case "coordinate":
		coo, err := readCoordinate(sc, hdr, line)
		return coo, hdr, err
	case "array":
		coo, err := readArray(sc, hdr, line)
		return coo, hdr, err
	default:
		return nil, hdr, fmt.Errorf("mmio: unsupported format %q", hdr.Format)
	}
}

func readBanner(sc *bufio.Scanner) (Header, error) {
	var hdr Header
	if !sc.Scan() {
		return hdr, ErrNotMatrixMarket
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) != 5 || banner[0] != "%%matrixmarket" {
		return hdr, ErrNotMatrixMarket
	}
	hdr = Header{Object: banner[1], Format: banner[2], Field: banner[3], Symmetry: banner[4]}
	if hdr.Object != "matrix" {
		return hdr, fmt.Errorf("mmio: unsupported object %q", hdr.Object)
	}
	switch hdr.Field {
	case "real", "integer", "pattern":
	case "complex":
		return hdr, errors.New("mmio: complex matrices are not supported")
	default:
		return hdr, fmt.Errorf("mmio: unsupported field %q", hdr.Field)
	}
	switch hdr.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	case "hermitian":
		return hdr, errors.New("mmio: hermitian matrices are not supported")
	default:
		return hdr, fmt.Errorf("mmio: unsupported symmetry %q", hdr.Symmetry)
	}
	return hdr, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

func readCoordinate(sc *bufio.Scanner, hdr Header, sizeLine string) (*sparse.COO, error) {
	f := strings.Fields(sizeLine)
	if len(f) != 3 {
		return nil, fmt.Errorf("mmio: bad coordinate size line %q", sizeLine)
	}
	rows, err1 := strconv.Atoi(f[0])
	cols, err2 := strconv.Atoi(f[1])
	nnz, err3 := strconv.Atoi(f[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: bad coordinate size line %q", sizeLine)
	}
	if err := checkSize(rows, cols, nnz); err != nil {
		return nil, err
	}
	coo := &sparse.COO{Rows: rows, Cols: cols}
	pattern := hdr.Field == "pattern"
	for k := 0; k < nnz; k++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d/%d: %w", k+1, nnz, err)
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mmio: entry %d has %d fields, want %d", k+1, len(fields), want)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d row: %w", k+1, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d col: %w", k+1, err)
		}
		v := 1.0
		if !pattern {
			v, err = parseValue(fields[2])
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d value: %w", k+1, err)
			}
		}
		i-- // Matrix Market is 1-based.
		j--
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("mmio: entry %d index (%d,%d) out of %dx%d", k+1, i+1, j+1, rows, cols)
		}
		if err := addWithSymmetry(coo, hdr.Symmetry, i, j, v); err != nil {
			return nil, fmt.Errorf("mmio: entry %d: %w", k+1, err)
		}
	}
	return coo, nil
}

func readArray(sc *bufio.Scanner, hdr Header, sizeLine string) (*sparse.COO, error) {
	if hdr.Field == "pattern" {
		return nil, errors.New("mmio: pattern field is invalid for array format")
	}
	f := strings.Fields(sizeLine)
	if len(f) != 2 {
		return nil, fmt.Errorf("mmio: bad array size line %q", sizeLine)
	}
	rows, err1 := strconv.Atoi(f[0])
	cols, err2 := strconv.Atoi(f[1])
	if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
		return nil, fmt.Errorf("mmio: bad array size line %q", sizeLine)
	}
	if err := checkSize(rows, cols, 0); err != nil {
		return nil, err
	}
	if rows > 0 && cols > Limits.MaxNNZ/rows {
		return nil, fmt.Errorf("mmio: dense array %dx%d exceeds entry limit", rows, cols)
	}
	coo := &sparse.COO{Rows: rows, Cols: cols}
	// Array format is column-major dense; symmetric variants store the
	// lower triangle only.
	for j := 0; j < cols; j++ {
		iStart := 0
		if hdr.Symmetry != "general" {
			iStart = j
			if hdr.Symmetry == "skew-symmetric" {
				iStart = j + 1
			}
		}
		for i := iStart; i < rows; i++ {
			line, err := nextDataLine(sc)
			if err != nil {
				return nil, fmt.Errorf("mmio: array entry (%d,%d): %w", i+1, j+1, err)
			}
			v, err := parseValue(strings.Fields(line)[0])
			if err != nil {
				return nil, fmt.Errorf("mmio: array entry (%d,%d): %w", i+1, j+1, err)
			}
			if v == 0 {
				continue
			}
			if err := addWithSymmetry(coo, hdr.Symmetry, i, j, v); err != nil {
				return nil, err
			}
		}
	}
	return coo, nil
}

func addWithSymmetry(coo *sparse.COO, symmetry string, i, j int, v float64) error {
	coo.Add(i, j, v)
	switch symmetry {
	case "symmetric":
		if i != j {
			coo.Add(j, i, v)
		}
	case "skew-symmetric":
		if i == j {
			return errors.New("skew-symmetric matrix has a diagonal entry")
		}
		coo.Add(j, i, -v)
	}
	return nil
}

// Write emits the matrix in coordinate/real/general form with 1-based
// indices, which every Matrix Market consumer accepts.
func Write(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%%Written by the haspmv reproduction toolkit\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the matrix to path in Matrix Market form.
func WriteFile(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
