package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the Matrix Market parser with hostile inputs: it must
// never panic, and whatever it accepts must be a valid matrix that
// round-trips through Write.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2\n3 1 -1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n",
		"%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n",
		"%%MatrixMarket matrix array real general\n2 1\n1\n2\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 5\n",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"% comment only",
		"%%MatrixMarket matrix coordinate real general\n2 2 9999999\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n",
		"%%MatrixMarket matrix coordinate real general\n1000000000000 2 1\n1 1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Shrink the allocation limits so even "valid" huge headers stay
	// cheap under the fuzzer.
	saved := Limits
	Limits.MaxRows, Limits.MaxCols, Limits.MaxNNZ = 1<<16, 1<<16, 1<<20
	f.Cleanup(func() { Limits = saved })
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		a, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v\ninput: %q", verr, src)
		}
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		b, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !a.Equal(b) {
			t.Fatalf("round trip changed matrix\ninput: %q", src)
		}
	})
}
