// Package algtest adapts the testing-free correctness protocol of
// internal/verify to the test suite: battery sweeps, single-matrix checks
// and randomized property checks that fail the running test.
package algtest

import (
	"math/rand"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
	"haspmv/internal/verify"
)

// Tolerance mirrors verify.Tolerance for existing callers.
const Tolerance = verify.Tolerance

// Battery returns the standard adversarial matrix set.
func Battery() []verify.Case { return verify.Battery() }

// Matrix returns the battery matrix with the given name.
func Matrix(name string) *sparse.CSR { return verify.Matrix(name) }

// CheckAlgorithm runs the full battery against alg on machine m: results
// must match the serial reference and assignments must cover each nonzero
// exactly once.
func CheckAlgorithm(t *testing.T, alg exec.Algorithm, m *amp.Machine) {
	t.Helper()
	for _, tc := range verify.Battery() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			CheckOnMatrix(t, alg, m, tc.A)
		})
	}
}

// CheckOnMatrix verifies alg on a single matrix, failing the test on any
// protocol violation.
func CheckOnMatrix(t *testing.T, alg exec.Algorithm, m *amp.Machine, a *sparse.CSR) {
	t.Helper()
	if err := verify.OnMatrix(alg, m, a); err != nil {
		t.Fatal(err)
	}
}

// CheckProperty runs randomized matrices through alg (a property test to
// call from testing/quick or a loop).
func CheckProperty(t *testing.T, alg exec.Algorithm, m *amp.Machine, trials int) {
	t.Helper()
	for trial := 0; trial < trials; trial++ {
		seed := int64(trial)*7919 + 11
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(800)
		sp := gen.Spec{
			Name: "prop", Rows: rows, Cols: 1 + r.Intn(800),
			TargetNNZ: 1 + r.Intn(rows*8),
			Dist:      gen.UniformLen{Min: 0, Max: 16},
			Place:     gen.Placement(r.Intn(4)),
			Seed:      seed,
		}
		a := sp.Generate()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("%s: panic on seed %d (%dx%d nnz %d): %v",
						alg.Name(), seed, a.Rows, a.Cols, a.NNZ(), p)
				}
			}()
			CheckOnMatrix(t, alg, m, a)
		}()
		if t.Failed() {
			t.Fatalf("seed %d (%dx%d nnz %d)", seed, a.Rows, a.Cols, a.NNZ())
		}
	}
}
