package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes telemetry over HTTP:
//
//	/metrics       Prometheus text format (WritePrometheus)
//	/debug/vars    expvar JSON (includes the "haspmv" snapshot)
//	/debug/pprof/  the standard Go profiler endpoints
//
// It binds its own mux so enabling telemetry never registers handlers on
// http.DefaultServeMux behind the caller's back.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// RegisterHandlers mounts the telemetry endpoints (/metrics, /debug/vars
// and /debug/pprof) on an existing mux, so servers that already own an
// HTTP listener — cmd/haspmv-serve — expose observability next to their
// API without a second port.
func RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts a telemetry server on addr (":0" picks an ephemeral port).
// The listener is bound synchronously — a non-nil return means /metrics
// is live — and requests are served on a background goroutine until
// Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	RegisterHandlers(mux)
	s := &Server{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
