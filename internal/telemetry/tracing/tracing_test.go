package tracing

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestIDUniqueAndWellFormed(t *testing.T) {
	const n = 4096
	seen := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex digits", id)
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("id %q: not lowercase hex", id)
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = struct{}{}
	}
}

func TestStageSumNs(t *testing.T) {
	tr := Trace{QueueNs: 5, LingerNs: 7, ComputeNs: 11, MergeNs: 13}
	if got := tr.StageSumNs(); got != 36 {
		t.Fatalf("StageSumNs = %d, want 36", got)
	}
}

func TestComputeBreakdownReset(t *testing.T) {
	b := ComputeBreakdown{KernelNs: 1, MergeNs: 2, Cores: 3, MaxCoreNs: 4, Bytes: 5}
	b.NNZByFormat = [4]int64{1, 2, 3, 4}
	b.Reset()
	if b != (ComputeBreakdown{}) {
		t.Fatalf("Reset left non-zero breakdown: %+v", b)
	}
}

func TestRecorderWrapAround(t *testing.T) {
	const capacity = 8
	r := NewRecorder(RecorderOptions{Traces: capacity, Events: 4})
	const total = 2*capacity + 3
	for i := 1; i <= total; i++ {
		r.Record(&Trace{ID: NewRequestID(), TotalNs: int64(i)})
	}
	if got := r.TraceCount(); got != total {
		t.Fatalf("TraceCount = %d, want %d", got, total)
	}
	s := r.Snapshot("")
	if s.TotalTraces != total {
		t.Fatalf("snapshot TotalTraces = %d, want %d", s.TotalTraces, total)
	}
	if len(s.Traces) != capacity {
		t.Fatalf("snapshot retained %d traces, want %d", len(s.Traces), capacity)
	}
	// The ring must hold exactly the newest `capacity` records, in order.
	for i, tr := range s.Traces {
		wantSeq := uint64(total - capacity + 1 + i)
		if tr.Seq != wantSeq {
			t.Fatalf("trace %d has seq %d, want %d", i, tr.Seq, wantSeq)
		}
		if tr.TotalNs != int64(wantSeq) {
			t.Fatalf("trace seq %d has TotalNs %d, want %d", tr.Seq, tr.TotalNs, wantSeq)
		}
	}
}

func TestRecorderEventWrapAround(t *testing.T) {
	r := NewRecorder(RecorderOptions{Traces: 2, Events: 3})
	for i := 0; i < 7; i++ {
		r.RecordEvent(&Event{Kind: "rebalance"})
	}
	s := r.Snapshot("")
	if s.TotalEvents != 7 || len(s.Events) != 3 {
		t.Fatalf("events: total %d retained %d, want 7 and 3", s.TotalEvents, len(s.Events))
	}
	for i, e := range s.Events {
		if want := uint64(5 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

// TestRecorderConcurrentWritersAndReaders is the race test the recorder's
// lock-free design exists for: writers recording traces and events while
// readers snapshot and serialize, under `go test -race`.
func TestRecorderConcurrentWritersAndReaders(t *testing.T) {
	r := NewRecorder(RecorderOptions{Traces: 16, Events: 8, MinSnapshotGap: -1})
	const writers, perWriter, readers = 4, 500, 3
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(&Trace{ID: NewRequestID(), QueueNs: int64(i), TotalNs: int64(i)})
				if i%50 == 0 {
					r.RecordEvent(&Event{Kind: "rebalance"})
				}
				if i%200 == 0 {
					r.Anomaly("p99-over-slo")
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot("")
				for i := 1; i < len(s.Traces); i++ {
					if s.Traces[i].Seq <= s.Traces[i-1].Seq {
						t.Errorf("snapshot traces out of order: %d then %d", s.Traces[i-1].Seq, s.Traces[i].Seq)
						return
					}
				}
				var buf bytes.Buffer
				if err := r.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := r.TraceCount(); got != writers*perWriter {
		t.Fatalf("TraceCount = %d, want %d", got, writers*perWriter)
	}
	if r.Anomalies() == 0 {
		t.Fatal("expected anomalies to have been counted")
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(RecorderOptions{Traces: 4})
	tr := &Trace{ID: "fixed"}
	allocs := testing.AllocsPerRun(100, func() { r.Record(tr) })
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f times per op, want 0", allocs)
	}
	ev := &Event{Kind: "rebalance"}
	allocs = testing.AllocsPerRun(100, func() { r.RecordEvent(ev) })
	if allocs != 0 {
		t.Fatalf("RecordEvent allocated %.1f times per op, want 0", allocs)
	}
}

func TestAnomalySnapshotAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(RecorderOptions{Traces: 4, Dir: dir, MinSnapshotGap: time.Hour})
	r.Record(&Trace{ID: "abc", Status: 200, QueueNs: 1, LingerNs: 2, ComputeNs: 3, MergeNs: 4, TotalNs: 10})
	r.RecordEvent(&Event{Kind: "rollback", Time: time.Now()})

	if !r.Anomaly("adapter rollback") {
		t.Fatal("first anomaly should snapshot")
	}
	if r.Anomaly("adapter rollback") {
		t.Fatal("second anomaly inside MinSnapshotGap should be rate-limited")
	}
	if got := r.Anomalies(); got != 2 {
		t.Fatalf("Anomalies = %d, want 2", got)
	}

	last := r.LastAnomaly()
	if last == nil {
		t.Fatal("LastAnomaly returned nil after snapshot")
	}
	if last.Reason != "adapter rollback" {
		t.Fatalf("snapshot reason %q", last.Reason)
	}
	if len(last.Traces) != 1 || last.Traces[0].ID != "abc" {
		t.Fatalf("snapshot traces %+v", last.Traces)
	}
	if len(last.Events) != 1 || last.Events[0].Kind != "rollback" {
		t.Fatalf("snapshot events %+v", last.Events)
	}

	files, err := filepath.Glob(filepath.Join(dir, "flightrecorder-*-adapter-rollback.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot files %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	if s.TotalTraces != 1 || s.Traces[0].StageSumNs() != 10 {
		t.Fatalf("decoded snapshot %+v", s)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRecorder(RecorderOptions{Traces: 4})
	r.Record(&Trace{ID: NewRequestID(), Matrix: "rma10@16", Status: 200})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if s.Reason != "on-demand" || len(s.Traces) != 1 || s.Traces[0].Matrix != "rma10@16" {
		t.Fatalf("round-tripped snapshot %+v", s)
	}
}

func TestSanitizeReason(t *testing.T) {
	if got := sanitizeReason("p99 over SLO!"); got != "p99-over-SLO-" {
		t.Fatalf("sanitizeReason = %q", got)
	}
	if got := sanitizeReason(""); got != "anomaly" {
		t.Fatalf("sanitizeReason empty = %q", got)
	}
}
