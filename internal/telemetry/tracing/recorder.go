package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one non-request occurrence worth keeping next to the traces:
// an adapter epoch decision (rebalance, rollback), a shed spike, an SLO
// breach. Like Trace, an Event must not be mutated after RecordEvent.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Matrix string    `json:"matrix,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// RecorderOptions size the flight recorder. The zero value selects the
// defaults noted on each field.
type RecorderOptions struct {
	// Traces is the request-trace ring capacity. Default 256.
	Traces int
	// Events is the event ring capacity. Default 64.
	Events int
	// Dir, when non-empty, is where anomaly snapshots are additionally
	// written as flightrecorder-<unixnano>-<reason>.json files; the last
	// anomaly snapshot is always retrievable in-process via LastAnomaly.
	Dir string
	// MinSnapshotGap rate-limits automatic anomaly snapshots so a
	// sustained anomaly cannot flood the disk; anomalies inside the gap
	// are counted but not re-snapshotted. Default 10s; negative disables
	// the limit (used by tests).
	MinSnapshotGap time.Duration
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.Traces <= 0 {
		o.Traces = 256
	}
	if o.Events <= 0 {
		o.Events = 64
	}
	if o.MinSnapshotGap == 0 {
		o.MinSnapshotGap = 10 * time.Second
	}
	return o
}

// Recorder is a fixed-size lock-free flight recorder: two rings of
// atomic pointers (completed request traces, adapter/anomaly events)
// that writers overwrite in admission order. Record and RecordEvent are
// one atomic add plus one atomic store — no locks, no allocation — so
// they are safe on the batcher's flush path; Snapshot assembles a
// consistent point-in-time copy by loading the pointers, which is safe
// against concurrent writers because records are immutable once
// recorded (the slot swap drops the old pointer, it never mutates the
// record behind a reader).
type Recorder struct {
	opts   RecorderOptions
	traces []atomic.Pointer[Trace]
	seq    atomic.Uint64
	events []atomic.Pointer[Event]
	eseq   atomic.Uint64

	anomalies   atomic.Int64
	lastAnomaly atomic.Pointer[Snapshot]
	snapMu      sync.Mutex
	lastSnapAt  time.Time
}

// NewRecorder builds a flight recorder. A configured Dir is created
// eagerly so anomaly snapshots never fail just because nobody ran
// mkdir; if creation fails the recorder still works in-process.
func NewRecorder(opts RecorderOptions) *Recorder {
	opts = opts.withDefaults()
	if opts.Dir != "" {
		_ = os.MkdirAll(opts.Dir, 0o755)
	}
	return &Recorder{
		opts:   opts,
		traces: make([]atomic.Pointer[Trace], opts.Traces),
		events: make([]atomic.Pointer[Event], opts.Events),
	}
}

// Record retains a completed trace, overwriting the oldest once the ring
// is full. It assigns t.Seq; the trace must not be mutated afterwards.
func (r *Recorder) Record(t *Trace) {
	seq := r.seq.Add(1)
	t.Seq = seq
	r.traces[(seq-1)%uint64(len(r.traces))].Store(t)
}

// RecordEvent retains an adapter or anomaly event, overwriting the
// oldest once the ring is full. It assigns e.Seq.
func (r *Recorder) RecordEvent(e *Event) {
	seq := r.eseq.Add(1)
	e.Seq = seq
	r.events[(seq-1)%uint64(len(r.events))].Store(e)
}

// TraceCount returns how many traces have ever been recorded (the ring
// retains the last min(TraceCount, capacity) of them).
func (r *Recorder) TraceCount() uint64 { return r.seq.Load() }

// Anomalies counts Anomaly calls (snapshotted or rate-limited).
func (r *Recorder) Anomalies() int64 { return r.anomalies.Load() }

// Snapshot is one consistent copy of the recorder's state.
type Snapshot struct {
	TakenAt time.Time `json:"taken_at"`
	// Reason is why the snapshot was taken: "on-demand" for explicit
	// Snapshot calls, the anomaly kind otherwise.
	Reason string `json:"reason"`
	// TotalTraces and TotalEvents count everything ever recorded;
	// len(Traces)/len(Events) is what the rings still retained.
	TotalTraces uint64  `json:"total_traces"`
	TotalEvents uint64  `json:"total_events"`
	Traces      []Trace `json:"traces"`
	Events      []Event `json:"events,omitempty"`
}

// Snapshot copies the retained traces and events, oldest first.
func (r *Recorder) Snapshot(reason string) Snapshot {
	if reason == "" {
		reason = "on-demand"
	}
	s := Snapshot{
		TakenAt:     time.Now(),
		Reason:      reason,
		TotalTraces: r.seq.Load(),
		TotalEvents: r.eseq.Load(),
	}
	s.Traces = make([]Trace, 0, len(r.traces))
	for i := range r.traces {
		if t := r.traces[i].Load(); t != nil {
			s.Traces = append(s.Traces, *t)
		}
	}
	sort.Slice(s.Traces, func(i, j int) bool { return s.Traces[i].Seq < s.Traces[j].Seq })
	s.Events = make([]Event, 0, len(r.events))
	for i := range r.events {
		if e := r.events[i].Load(); e != nil {
			s.Events = append(s.Events, *e)
		}
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].Seq < s.Events[j].Seq })
	return s
}

// WriteJSON renders an on-demand snapshot (the /v1/debug/flightrecorder
// body).
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(""))
}

// Anomaly reacts to a detected anomaly (shed spike, adapter rollback,
// p99-over-SLO window): it snapshots the recorder, keeps the snapshot
// retrievable via LastAnomaly, and — when a Dir is configured — writes
// it to a JSON file. Snapshots are rate-limited by MinSnapshotGap;
// within the gap the anomaly is counted but not re-snapshotted. Returns
// whether a snapshot was taken. Anomalies are rare by construction, so
// the marshal/write cost off the hot path is acceptable inline.
func (r *Recorder) Anomaly(reason string) bool {
	r.anomalies.Add(1)
	r.snapMu.Lock()
	now := time.Now()
	if r.opts.MinSnapshotGap > 0 && !r.lastSnapAt.IsZero() && now.Sub(r.lastSnapAt) < r.opts.MinSnapshotGap {
		r.snapMu.Unlock()
		return false
	}
	r.lastSnapAt = now
	r.snapMu.Unlock()

	s := r.Snapshot(reason)
	r.lastAnomaly.Store(&s)
	if r.opts.Dir != "" {
		name := fmt.Sprintf("flightrecorder-%d-%s.json", now.UnixNano(), sanitizeReason(reason))
		if data, err := json.MarshalIndent(s, "", "  "); err == nil {
			// Best effort: a full disk must not take down serving.
			_ = os.WriteFile(filepath.Join(r.opts.Dir, name), append(data, '\n'), 0o644)
		}
	}
	return true
}

// LastAnomaly returns the most recent anomaly snapshot, or nil if no
// anomaly has been snapshotted yet.
func (r *Recorder) LastAnomaly() *Snapshot { return r.lastAnomaly.Load() }

// sanitizeReason keeps anomaly reasons filename-safe.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "anomaly"
	}
	return string(out)
}
