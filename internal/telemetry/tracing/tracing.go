// Package tracing is the per-request observability layer of the serving
// stack: where the sibling telemetry package aggregates (counters, phase
// timers, per-core spans), tracing attributes — every request carries one
// Trace record from HTTP accept through the batcher's queue and linger
// window, the fused compute, and the extraY merge epilogue, so a slow
// response can be decomposed after the fact into exactly the stage that
// ate the time.
//
// The hot-path contract mirrors the telemetry package's: the serving
// layers consult one nil-checked pointer per request, and with tracing
// unused the compute and flush paths stay allocation-free (guarded by
// tests in internal/core and internal/server). Trace records are
// allocated once per request at admission — on the handler path, which
// already allocates the response buffers — and every flush-path write
// lands in preallocated fields. The flight recorder (recorder.go) retains
// the last N completed traces in a lock-free ring.
package tracing

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Trace is one request's span record. The four stage durations decompose
// the queue-to-release lifetime exactly:
//
//	TotalNs = QueueNs + LingerNs + ComputeNs + MergeNs
//
// QueueNs is time spent waiting for the dispatcher with no coalescing
// window open; LingerNs is time attributed to the batcher deliberately
// holding the batch open for company; ComputeNs is the parallel kernel
// phase of the fused multiply; MergeNs covers the serial extraY epilogue
// plus response fan-out. A Trace is written by at most one goroutine at a
// time (handler → dispatcher → handler) and must not be mutated after it
// is handed to a Recorder.
type Trace struct {
	// ID is the request id: propagated from X-Request-ID or generated.
	ID string `json:"id"`
	// Matrix is the registry key ("rma10@16") the request multiplied.
	Matrix string `json:"matrix,omitempty"`
	// Seq is the recorder-assigned admission order (set by Record).
	Seq uint64 `json:"seq"`
	// Start is the wall-clock admission time.
	Start time.Time `json:"start"`

	QueueNs   int64 `json:"queue_ns"`
	LingerNs  int64 `json:"linger_ns"`
	ComputeNs int64 `json:"compute_ns"`
	MergeNs   int64 `json:"merge_ns"`
	// TotalNs is the end-to-end time from enqueue to waiter release (or
	// to rejection, for requests that never reached a flush).
	TotalNs int64 `json:"total_ns"`

	// BatchNV is the width of the flush that served the request, and
	// FlushCause why the batch was dispatched ("full", "linger", "drain").
	BatchNV    int    `json:"batch_nv,omitempty"`
	FlushCause string `json:"flush_cause,omitempty"`

	// Cores and MaxCoreNs link the flush to the executor's per-core
	// spans: the fan-out width and the critical-path core's kernel time.
	Cores     int   `json:"cores,omitempty"`
	MaxCoreNs int64 `json:"max_core_ns,omitempty"`
	// NNZByFormat records the per-region IndexFormat picks the multiply
	// executed with (nonzeros through the []int, u32, u16-delta and
	// diagonal kernels, in that order).
	NNZByFormat [4]int64 `json:"nnz_by_format,omitempty"`

	// AdapterEpoch is the online adapter's epoch count after the epoch
	// decision that observed this request's flush; AdapterEvent is
	// "rebalance" or "rollback" when that decision moved the partition.
	AdapterEpoch int64  `json:"adapter_epoch,omitempty"`
	AdapterEvent string `json:"adapter_event,omitempty"`

	// Status is the HTTP status the request was answered with, and Err
	// the terminal error for requests that never produced a result.
	Status int    `json:"status,omitempty"`
	Err    string `json:"error,omitempty"`
}

// StageSumNs returns QueueNs+LingerNs+ComputeNs+MergeNs, the
// stage-attributed reconstruction of TotalNs.
func (t *Trace) StageSumNs() int64 {
	return t.QueueNs + t.LingerNs + t.ComputeNs + t.MergeNs
}

// ComputeBreakdown receives the executor-side split of one traced
// multiply. Callers reuse one instance per dispatcher (Reset between
// flushes), so filling it never allocates.
type ComputeBreakdown struct {
	// KernelNs is the parallel per-core kernel phase (empty-row zeroing
	// and workspace checkout included; both are nanoseconds-scale).
	KernelNs int64
	// MergeNs is the serial extraY conflict epilogue.
	MergeNs int64
	// Cores is the fan-out width (region count), MaxCoreNs the longest
	// single core's kernel time — the critical path of the multiply.
	Cores     int
	MaxCoreNs int64
	// NNZByFormat counts nonzeros executed per column-index format
	// ([]int, u32, u16-delta, diagonal).
	NNZByFormat [4]int64
	// Bytes is the modeled memory traffic of the multiply (value, index,
	// pointer and vector streams at the cost model's widths).
	Bytes int64
}

// Reset zeroes the breakdown for reuse.
func (b *ComputeBreakdown) Reset() { *b = ComputeBreakdown{} }

// requestIDBase randomizes the id space per process so ids from restarts
// do not collide; requestIDSeq makes each id unique within the process.
var (
	requestIDBase uint64
	requestIDSeq  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		requestIDBase = binary.LittleEndian.Uint64(b[:])
	} else {
		requestIDBase = uint64(time.Now().UnixNano())
	}
}

// NewRequestID returns a fresh 16-hex-digit request id (process-random
// base XOR a process-unique counter), cheap enough to mint per request.
func NewRequestID() string {
	return fmt.Sprintf("%016x", requestIDBase^requestIDSeq.Add(1))
}
