package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"strconv"
)

// RegionRecord is one core's share in a partition decision: a half-open
// range in reordered-nnz space plus its modeled cost share.
type RegionRecord struct {
	Core int `json:"core"`
	Lo   int `json:"lo"`
	Hi   int `json:"hi"`
	Cost int `json:"cost"`
}

// PartitionRecord captures one partition decision — the inputs and the
// resulting per-core regions — so a trace documents *why* work landed
// where it did, not only when it ran.
type PartitionRecord struct {
	Algorithm  string         `json:"algorithm"`
	Machine    string         `json:"machine,omitempty"`
	Rows       int            `json:"rows"`
	Cols       int            `json:"cols"`
	NNZ        int            `json:"nnz"`
	Base       int            `json:"base"`
	Metric     string         `json:"metric"`
	Proportion float64        `json:"proportion"`
	TotalCost  int            `json:"total_cost"`
	Regions    []RegionRecord `json:"regions"`
}

// traceEvent is one Chrome trace_event entry; see the Trace Event Format
// spec (the subset chrome://tracing and Perfetto both accept).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// pipeline-level spans (Core < 0) share one synthetic trace thread.
const pipelineTid = 1000

// WriteTrace renders the collector's spans and partition records as
// Chrome trace_event JSON: one "X" (complete) event per span, with the
// simulated core id as the thread id, plus an instant event per partition
// decision and thread-name metadata. Open the file in chrome://tracing or
// https://ui.perfetto.dev.
func (c *Collector) WriteTrace(w io.Writer) error {
	spans := c.Spans()
	parts := c.Partitions()

	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(spans)+len(parts)+MaxCores/4)}
	usedCores := map[int]bool{}
	for _, s := range spans {
		tid := s.Core
		if tid < 0 {
			tid = pipelineTid
		}
		usedCores[tid] = true
		ev := traceEvent{
			Name: s.Name,
			Cat:  "spmv",
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
		}
		if s.NNZ > 0 || s.Fragments > 0 || s.ExtraY > 0 {
			ev.Args = map[string]any{"nnz": s.NNZ, "fragments": s.Fragments, "extra_y": s.ExtraY}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	for i, p := range parts {
		args := map[string]any{"partition": p}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "partition " + p.Algorithm,
			Cat:  "prepare",
			Ph:   "i",
			Ts:   float64(i), // decisions are unordered in time; spread for visibility
			Pid:  1,
			Tid:  pipelineTid,
			S:    "g",
			Args: args,
		})
		usedCores[pipelineTid] = true
	}
	for tid := range usedCores {
		name := "pipeline"
		if tid != pipelineTid {
			name = "core " + strconv.Itoa(tid)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteTrace renders the active collector's trace; it errors when
// telemetry is disabled (there is nothing to export).
func WriteTrace(w io.Writer) error {
	c := Active()
	if c == nil {
		return errors.New("telemetry: disabled, no trace to export (call Enable first)")
	}
	return c.WriteTrace(w)
}
