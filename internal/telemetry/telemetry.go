// Package telemetry is the repository's observability layer: a
// low-overhead instrumentation substrate threaded through the
// analyze→partition→execute pipeline (DESIGN.md "Instrumentation").
//
// It provides four things:
//
//  1. a registry of atomic counters, gauges and histograms with an
//     enabled/disabled fast path — when telemetry is off every update is
//     one atomic load and a predicted branch, no locks, no allocation;
//  2. phase timers capturing where Prepare time goes (HACSR reorder,
//     cache-line cost, level-1/level-2 partition) and per-Compute spans
//     with per-core nnz, row fragments and extraY conflict sizes;
//  3. structured trace export: Chrome trace_event JSON of the per-core
//     spans plus the partition-decision records, openable in
//     chrome://tracing or Perfetto (see trace.go);
//  4. exposition: an expvar-backed snapshot (Snapshot), Prometheus
//     text-format rendering (WritePrometheus) and an HTTP server bundling
//     /metrics, /debug/vars and net/http/pprof (Serve).
//
// The hot-path contract is strict: instrumented code obtains the active
// *Collector once per operation via Active() and skips all recording when
// it is nil. Counters/gauges/histograms self-gate on the package enabled
// flag so call sites stay one-liners. With telemetry disabled the SpMV
// compute path performs zero allocations (guarded by a test at the
// repository root).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------- state

var (
	active  atomic.Pointer[Collector]
	enabled atomic.Bool
)

// Active returns the collector currently receiving spans, phases and
// partition records, or nil when telemetry is disabled. Hot paths load it
// once per operation and nil-check.
func Active() *Collector { return active.Load() }

// Enabled reports whether telemetry collection is on. Counters, gauges
// and histograms consult it internally; most callers never need it.
func Enabled() bool { return enabled.Load() }

// Enable installs a fresh collector and returns it. Registry counters
// start (resp. resume) accumulating; spans and phases record into the new
// collector.
func Enable() *Collector {
	c := NewCollector()
	Activate(c)
	return c
}

// Disable stops all collection. Registry counters keep their values (they
// are monotonic, Prometheus-style); the previous collector remains
// readable by whoever holds it.
func Disable() { Activate(nil) }

// Activate swaps the active collector (nil disables collection) and
// returns the previous one, allowing scoped collection:
//
//	c := telemetry.NewCollector()
//	prev := telemetry.Activate(c)
//	defer telemetry.Activate(prev)
func Activate(c *Collector) (prev *Collector) {
	prev = active.Swap(c)
	enabled.Store(c != nil)
	if c != nil {
		publishExpvarOnce()
	}
	return prev
}

// ---------------------------------------------------------------- registry

// Counter is a monotonically increasing atomic counter. Add is a no-op
// while telemetry is disabled.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous atomic value (last fan-out width, region
// count, ...). Set is a no-op while telemetry is disabled.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge value when telemetry is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the number of power-of-two duration buckets; bucket k
// holds observations with bit-length k nanoseconds (≈ [2^(k-1), 2^k) ns),
// covering sub-nanosecond to ~9 seconds and a +Inf tail.
const histBuckets = 34

// Histogram accumulates duration observations into power-of-two buckets.
// Observe is lock-free and a no-op while telemetry is disabled.
type Histogram struct {
	name    string
	buckets [histBuckets + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration when telemetry is enabled.
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := 0
	for v := ns; v > 0; v >>= 1 {
		b++
	}
	if b > histBuckets {
		b = histBuckets
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumSeconds returns the total observed time in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// valueHistBuckets is the number of power-of-two value buckets; bucket k
// holds observations with bit-length k (≈ [2^(k-1), 2^k)), covering 0 to
// ~4 billion and a +Inf tail — plenty for batch occupancies, queue depths
// and byte sizes.
const valueHistBuckets = 32

// ValueHistogram accumulates unitless integer observations (batch
// occupancy, queue depth at enqueue, payload sizes) into power-of-two
// buckets. Observe is lock-free and a no-op while telemetry is disabled.
type ValueHistogram struct {
	name    string
	buckets [valueHistBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value when telemetry is enabled.
func (h *ValueHistogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	b := 0
	for w := v; w > 0; w >>= 1 {
		b++
	}
	if b > valueHistBuckets {
		b = valueHistBuckets
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *ValueHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *ValueHistogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observed value (0 before any observation).
func (h *ValueHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Name returns the registered name.
func (h *ValueHistogram) Name() string { return h.name }

var registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	valueHists map[string]*ValueHistogram
}

// NewCounter registers (or returns the existing) counter with the given
// name. Call it at package init and keep the pointer; Add on the pointer
// is the lock-free hot path.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewGauge registers (or returns the existing) gauge with the given name.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*Gauge)
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// NewHistogram registers (or returns the existing) histogram with the
// given name. Values are durations.
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.histograms == nil {
		registry.histograms = make(map[string]*Histogram)
	}
	if h, ok := registry.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	registry.histograms[name] = h
	return h
}

// NewValueHistogram registers (or returns the existing) unitless integer
// histogram with the given name.
func NewValueHistogram(name string) *ValueHistogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.valueHists == nil {
		registry.valueHists = make(map[string]*ValueHistogram)
	}
	if h, ok := registry.valueHists[name]; ok {
		return h
	}
	h := &ValueHistogram{name: name}
	registry.valueHists[name] = h
	return h
}

func counterSnapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters))
	for name, c := range registry.counters {
		out[name] = c.Value()
	}
	return out
}

func gaugeSnapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.gauges))
	for name, g := range registry.gauges {
		out[name] = g.Value()
	}
	return out
}

func registryLists() (cs []*Counter, gs []*Gauge, hs []*Histogram, vs []*ValueHistogram) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		cs = append(cs, c)
	}
	for _, g := range registry.gauges {
		gs = append(gs, g)
	}
	for _, h := range registry.histograms {
		hs = append(hs, h)
	}
	for _, v := range registry.valueHists {
		vs = append(vs, v)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	sort.Slice(vs, func(i, j int) bool { return vs[i].name < vs[j].name })
	return cs, gs, hs, vs
}

// ---------------------------------------------------------------- collector

// MaxCores bounds the per-core counter table (the largest Table I machine
// has 24 simulated cores; 256 leaves headroom for extension presets).
const MaxCores = 256

// MaxSpans caps the span buffer so an unbounded run cannot grow memory
// without limit; overflowing spans are counted in SpansDropped.
const MaxSpans = 1 << 16

// CoreCounters accumulate per-simulated-core execution totals.
type CoreCounters struct {
	Spans     atomic.Int64
	NNZ       atomic.Int64
	Fragments atomic.Int64
	ExtraY    atomic.Int64
	BusyNs    atomic.Int64
}

// Collector receives spans, phase timings and partition records while
// active. All methods are safe for concurrent use; the per-core counters
// are pure atomics, span append takes a short mutex.
type Collector struct {
	start  time.Time
	phases [numPhases]phaseAccum
	cores  [MaxCores]CoreCounters

	mu         sync.Mutex
	spans      []Span
	partitions []PartitionRecord
	dropped    atomic.Int64
}

type phaseAccum struct {
	count atomic.Int64
	ns    atomic.Int64
}

// NewCollector returns an empty collector; timestamps in its trace are
// relative to this call.
func NewCollector() *Collector {
	return &Collector{start: time.Now(), spans: make([]Span, 0, 1024)}
}

// Start is the collector's epoch; span timestamps are relative to it.
func (c *Collector) Start() time.Time { return c.start }

// RecordPhase accumulates one timed occurrence of a pipeline phase.
func (c *Collector) RecordPhase(p Phase, d time.Duration) {
	if p < 0 || p >= numPhases {
		return
	}
	c.phases[p].count.Add(1)
	c.phases[p].ns.Add(int64(d))
}

// PhaseSeconds returns the accumulated time and count for one phase.
func (c *Collector) PhaseSeconds(p Phase) (seconds float64, count int64) {
	if p < 0 || p >= numPhases {
		return 0, 0
	}
	return float64(c.phases[p].ns.Load()) / 1e9, c.phases[p].count.Load()
}

// Span is one timed unit of work: a per-core share of a Compute call, a
// whole pipeline stage, or any custom region an instrumentation site
// chooses to record.
type Span struct {
	// Name labels the span in the trace ("core", "compute", ...).
	Name string
	// Core is the simulated core id, or -1 for pipeline-level spans.
	Core int
	// Start is the offset from the collector epoch.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
	// NNZ, Fragments and ExtraY describe the work done: nonzeros
	// processed, row fragments walked, and conflict-epilogue entries
	// produced (Algorithm 5's extraY slots).
	NNZ, Fragments, ExtraY int
}

// RecordSpan appends a span (dropping it once MaxSpans is reached) and
// folds its work totals into the per-core counters.
func (c *Collector) RecordSpan(s Span) {
	if s.Core >= 0 && s.Core < MaxCores {
		cc := &c.cores[s.Core]
		cc.Spans.Add(1)
		cc.NNZ.Add(int64(s.NNZ))
		cc.Fragments.Add(int64(s.Fragments))
		cc.ExtraY.Add(int64(s.ExtraY))
		cc.BusyNs.Add(int64(s.Dur))
	}
	c.mu.Lock()
	if len(c.spans) < MaxSpans {
		c.spans = append(c.spans, s)
	} else {
		c.dropped.Add(1)
	}
	c.mu.Unlock()
}

// RecordCoreSpan is the executor's entry point: one core's share of one
// Compute call, timed from t0 to now.
func (c *Collector) RecordCoreSpan(core int, t0 time.Time, nnz, fragments, extraY int) {
	c.RecordSpan(Span{
		Name:      "core",
		Core:      core,
		Start:     t0.Sub(c.start),
		Dur:       time.Since(t0),
		NNZ:       nnz,
		Fragments: fragments,
		ExtraY:    extraY,
	})
}

// Spans returns a copy of the recorded spans.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// RecordPartition stores one partition-decision record.
func (c *Collector) RecordPartition(r PartitionRecord) {
	c.mu.Lock()
	c.partitions = append(c.partitions, r)
	c.mu.Unlock()
}

// Partitions returns a copy of the recorded partition decisions.
func (c *Collector) Partitions() []PartitionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PartitionRecord(nil), c.partitions...)
}

// ---------------------------------------------------------------- snapshot

// PhaseStats summarize one pipeline phase.
type PhaseStats struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// CoreStats summarize one simulated core's execution totals.
type CoreStats struct {
	Core        int     `json:"core"`
	Spans       int64   `json:"spans"`
	NNZ         int64   `json:"nnz"`
	Fragments   int64   `json:"fragments"`
	ExtraY      int64   `json:"extra_y"`
	BusySeconds float64 `json:"busy_seconds"`
}

// Stats is a point-in-time snapshot of the registry and the active
// collector; it marshals to JSON and backs the expvar export.
type Stats struct {
	Enabled       bool                  `json:"enabled"`
	UptimeSeconds float64               `json:"uptime_seconds"`
	Counters      map[string]int64      `json:"counters"`
	Gauges        map[string]int64      `json:"gauges,omitempty"`
	Phases        map[string]PhaseStats `json:"phases,omitempty"`
	Cores         []CoreStats           `json:"cores,omitempty"`
	Spans         int                   `json:"spans"`
	SpansDropped  int64                 `json:"spans_dropped,omitempty"`
	Partitions    []PartitionRecord     `json:"partitions,omitempty"`
}

// Stats snapshots this collector together with the global registry.
func (c *Collector) Stats() Stats {
	st := Stats{
		Enabled:  Active() == c && c != nil,
		Counters: counterSnapshot(),
		Gauges:   gaugeSnapshot(),
	}
	if c == nil {
		return st
	}
	st.UptimeSeconds = time.Since(c.start).Seconds()
	st.Phases = make(map[string]PhaseStats)
	for p := Phase(0); p < numPhases; p++ {
		sec, n := c.PhaseSeconds(p)
		if n > 0 {
			st.Phases[p.String()] = PhaseStats{Count: n, Seconds: sec}
		}
	}
	for core := range c.cores {
		cc := &c.cores[core]
		if n := cc.Spans.Load(); n > 0 {
			st.Cores = append(st.Cores, CoreStats{
				Core:        core,
				Spans:       n,
				NNZ:         cc.NNZ.Load(),
				Fragments:   cc.Fragments.Load(),
				ExtraY:      cc.ExtraY.Load(),
				BusySeconds: float64(cc.BusyNs.Load()) / 1e9,
			})
		}
	}
	c.mu.Lock()
	st.Spans = len(c.spans)
	st.Partitions = append([]PartitionRecord(nil), c.partitions...)
	c.mu.Unlock()
	st.SpansDropped = c.dropped.Load()
	return st
}

// Snapshot returns the global view: registry counters plus, when
// telemetry is enabled, the active collector's phases, cores, spans and
// partition records.
func Snapshot() Stats { return Active().Stats() }
