package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"haspmv/internal/exec"
	"haspmv/internal/telemetry"
)

// withCollector runs f with a fresh active collector and restores the
// previous telemetry state afterwards, keeping tests independent.
func withCollector(t *testing.T, f func(c *telemetry.Collector)) {
	t.Helper()
	c := telemetry.NewCollector()
	prev := telemetry.Activate(c)
	defer telemetry.Activate(prev)
	f(c)
}

func TestRegistryIdempotentAndGated(t *testing.T) {
	c1 := telemetry.NewCounter("test_gated_counter")
	c2 := telemetry.NewCounter("test_gated_counter")
	if c1 != c2 {
		t.Fatal("NewCounter returned distinct counters for one name")
	}
	prev := telemetry.Activate(nil)
	defer telemetry.Activate(prev)

	base := c1.Value()
	c1.Add(5)
	if c1.Value() != base {
		t.Fatal("disabled counter accumulated")
	}
	g := telemetry.NewGauge("test_gated_gauge")
	g.Set(42)
	if g.Value() != 0 {
		t.Fatal("disabled gauge stored")
	}
	h := telemetry.NewHistogram("test_gated_hist")
	h.Observe(time.Millisecond)
	if h.Count() != 0 {
		t.Fatal("disabled histogram observed")
	}

	withCollector(t, func(*telemetry.Collector) {
		c1.Add(5)
		g.Set(42)
		h.Observe(time.Millisecond)
	})
	if c1.Value() != base+5 || g.Value() != 42 || h.Count() != 1 {
		t.Fatalf("enabled updates lost: counter %d (base %d), gauge %d, hist %d",
			c1.Value(), base, g.Value(), h.Count())
	}
	if s := h.SumSeconds(); s < 0.0009 || s > 0.0011 {
		t.Fatalf("histogram sum %v, want ~1ms", s)
	}
}

func TestPhasesAndSpansSnapshot(t *testing.T) {
	withCollector(t, func(c *telemetry.Collector) {
		c.RecordPhase(telemetry.PhaseReorder, 2*time.Millisecond)
		c.RecordPhase(telemetry.PhaseReorder, 3*time.Millisecond)
		c.RecordCoreSpan(3, time.Now().Add(-time.Millisecond), 100, 7, 1)
		c.RecordPartition(telemetry.PartitionRecord{
			Algorithm: "HASpMV", Rows: 10, Cols: 10, NNZ: 40,
			Proportion: 0.7,
			Regions:    []telemetry.RegionRecord{{Core: 0, Lo: 0, Hi: 40, Cost: 12}},
		})

		st := telemetry.Snapshot()
		if !st.Enabled {
			t.Fatal("snapshot should report enabled")
		}
		ph, ok := st.Phases["reorder"]
		if !ok || ph.Count != 2 || ph.Seconds < 0.004 {
			t.Fatalf("reorder phase: %+v (ok=%v)", ph, ok)
		}
		if len(st.Cores) != 1 || st.Cores[0].Core != 3 || st.Cores[0].NNZ != 100 ||
			st.Cores[0].Fragments != 7 || st.Cores[0].ExtraY != 1 {
			t.Fatalf("core stats: %+v", st.Cores)
		}
		if st.Spans != 1 || len(st.Partitions) != 1 {
			t.Fatalf("spans %d partitions %d", st.Spans, len(st.Partitions))
		}
		if _, err := json.Marshal(st); err != nil {
			t.Fatalf("snapshot not JSON-marshalable: %v", err)
		}
	})
	// After restore (disabled here), Snapshot still works and says so.
	if st := telemetry.Snapshot(); st.Enabled && telemetry.Active() == nil {
		t.Fatal("disabled snapshot claims enabled")
	}
}

func TestSpanCapDropsNotGrows(t *testing.T) {
	c := telemetry.NewCollector()
	for i := 0; i < telemetry.MaxSpans+10; i++ {
		c.RecordSpan(telemetry.Span{Name: "s", Core: 1})
	}
	st := c.Stats()
	if st.Spans != telemetry.MaxSpans {
		t.Fatalf("spans %d, want cap %d", st.Spans, telemetry.MaxSpans)
	}
	if st.SpansDropped != 10 {
		t.Fatalf("dropped %d, want 10", st.SpansDropped)
	}
}

func TestWriteTraceChromeFormat(t *testing.T) {
	withCollector(t, func(c *telemetry.Collector) {
		for core := 0; core < 4; core++ {
			c.RecordCoreSpan(core, time.Now().Add(-time.Millisecond), 10*core, core, 0)
		}
		c.RecordPartition(telemetry.PartitionRecord{Algorithm: "HASpMV", Metric: "cacheline"})

		var buf bytes.Buffer
		if err := telemetry.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("trace is not valid JSON: %.200s", buf.String())
		}
		var tf struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				Tid  int     `json:"tid"`
				Dur  float64 `json:"dur"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
			t.Fatal(err)
		}
		tids := map[int]bool{}
		instants := 0
		for _, ev := range tf.TraceEvents {
			switch ev.Ph {
			case "X":
				tids[ev.Tid] = true
			case "i":
				instants++
			}
		}
		if len(tids) != 4 {
			t.Fatalf("complete-span thread ids: %v, want one per core (4)", tids)
		}
		if instants != 1 {
			t.Fatalf("instant events %d, want 1 partition record", instants)
		}
	})
}

func TestWriteTraceDisabledErrors(t *testing.T) {
	prev := telemetry.Activate(nil)
	defer telemetry.Activate(prev)
	if err := telemetry.WriteTrace(io.Discard); err == nil {
		t.Fatal("trace export with telemetry disabled should error")
	}
}

func TestPrometheusRendering(t *testing.T) {
	cnt := telemetry.NewCounter("test_prom_counter")
	withCollector(t, func(c *telemetry.Collector) {
		cnt.Add(3)
		c.RecordPhase(telemetry.PhaseCompute, time.Millisecond)
		c.RecordCoreSpan(2, time.Now().Add(-time.Millisecond), 50, 5, 0)
		telemetry.NewHistogram("test_prom_hist").Observe(time.Microsecond)

		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"haspmv_test_prom_counter_total",
			"# TYPE haspmv_test_prom_counter_total counter",
			`haspmv_phase_seconds_total{phase="compute"}`,
			`haspmv_core_nnz_total{core="2"} 50`,
			"haspmv_test_prom_hist_seconds_bucket",
			"haspmv_test_prom_hist_seconds_count 1",
			"haspmv_enabled 1",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in:\n%s", want, out)
			}
		}
		// Text-format sanity: every non-comment line is "name[{labels}] value".
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if fields := strings.Fields(line); len(fields) != 2 {
				t.Fatalf("unparseable exposition line %q", line)
			}
		}
	})
}

func TestServeMetricsVarsAndPprof(t *testing.T) {
	withCollector(t, func(c *telemetry.Collector) {
		c.RecordPhase(telemetry.PhasePrepare, time.Millisecond)
		srv, err := telemetry.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		get := func(path string) (int, string) {
			resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(body)
		}

		if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "haspmv_enabled 1") {
			t.Fatalf("/metrics: %d %.120s", code, body)
		}
		if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"haspmv"`) {
			t.Fatalf("/debug/vars: %d %.120s", code, body)
		}
		if code, _ := get("/debug/pprof/cmdline"); code != 200 {
			t.Fatalf("/debug/pprof/cmdline: %d", code)
		}
	})
}

// TestConcurrentUpdatesRace exercises the whole collection surface from
// exec.Parallel workers; run with -race (CI does) to verify the lock-free
// counter paths and the span/partition mutexes.
func TestConcurrentUpdatesRace(t *testing.T) {
	cnt := telemetry.NewCounter("test_race_counter")
	hist := telemetry.NewHistogram("test_race_hist")
	withCollector(t, func(c *telemetry.Collector) {
		const fanout, rounds = 16, 20
		var snapshots sync.WaitGroup
		snapshots.Add(1)
		go func() {
			defer snapshots.Done()
			for i := 0; i < rounds; i++ {
				_ = telemetry.Snapshot()
				var buf bytes.Buffer
				_ = telemetry.WritePrometheus(&buf)
			}
		}()
		for round := 0; round < rounds; round++ {
			exec.Parallel(fanout, func(i int) {
				cnt.Add(1)
				hist.Observe(time.Duration(i) * time.Microsecond)
				c.RecordPhase(telemetry.PhaseCompute, time.Microsecond)
				c.RecordCoreSpan(i, time.Now(), i, 1, 0)
			})
		}
		snapshots.Wait()
		st := c.Stats()
		if got := st.Phases["compute"].Count; got != fanout*rounds {
			t.Fatalf("phase count %d, want %d", got, fanout*rounds)
		}
		var spans int64
		for _, cs := range st.Cores {
			spans += cs.Spans
		}
		if spans != fanout*rounds {
			t.Fatalf("core spans %d, want %d", spans, fanout*rounds)
		}
	})
}

// ValueHistogram gates on the enabled flag like every other registry
// metric, buckets by bit-length, and renders as a Prometheus histogram
// with integer le bounds.
func TestValueHistogram(t *testing.T) {
	h1 := telemetry.NewValueHistogram("test_value_hist")
	if h1 != telemetry.NewValueHistogram("test_value_hist") {
		t.Fatal("NewValueHistogram returned distinct histograms for one name")
	}
	prev := telemetry.Activate(nil)
	defer telemetry.Activate(prev)
	h1.Observe(8)
	if h1.Count() != 0 {
		t.Fatal("disabled value histogram observed")
	}
	withCollector(t, func(*telemetry.Collector) {
		for _, v := range []int64{0, 1, 2, 8, 8, 8, -3} {
			h1.Observe(v)
		}
		if h1.Count() != 7 {
			t.Fatalf("count %d, want 7", h1.Count())
		}
		if h1.Sum() != 27 { // -3 clamps to 0
			t.Fatalf("sum %d, want 27", h1.Sum())
		}
		if m := h1.Mean(); m < 3.85 || m > 3.86 {
			t.Fatalf("mean %v, want 27/7", m)
		}
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"# TYPE haspmv_test_value_hist histogram",
			`haspmv_test_value_hist_bucket{le="+Inf"} 7`,
			"haspmv_test_value_hist_sum 27",
			"haspmv_test_value_hist_count 7",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("prometheus output missing %q:\n%s", want, out)
			}
		}
	})
}

// RegisterHandlers mounts the same endpoints Serve binds, on a caller mux.
func TestRegisterHandlersOnCallerMux(t *testing.T) {
	withCollector(t, func(*telemetry.Collector) {
		mux := http.NewServeMux()
		telemetry.RegisterHandlers(mux)
		for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/cmdline"} {
			req, err := http.NewRequest("GET", "http://host"+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			rw := &recordingWriter{header: make(http.Header)}
			mux.ServeHTTP(rw, req)
			if rw.status != 0 && rw.status != http.StatusOK {
				t.Fatalf("%s: status %d", path, rw.status)
			}
			if rw.body.Len() == 0 {
				t.Fatalf("%s: empty body", path)
			}
		}
	})
}

type recordingWriter struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (w *recordingWriter) Header() http.Header         { return w.header }
func (w *recordingWriter) Write(p []byte) (int, error) { return w.body.Write(p) }
func (w *recordingWriter) WriteHeader(code int)        { w.status = code }

// TestHistogramExpositionSpecCompliance pins the Prometheus text-format
// contract that histogram_quantile depends on: every bucket bound is
// emitted (even at zero count), the series is cumulative and monotone,
// le bounds strictly increase, and the ladder terminates with a le="+Inf"
// bucket equal to _count.
func TestHistogramExpositionSpecCompliance(t *testing.T) {
	dur := telemetry.NewHistogram("test_spec_hist")
	val := telemetry.NewValueHistogram("test_spec_value_hist")
	withCollector(t, func(*telemetry.Collector) {
		for _, d := range []time.Duration{0, time.Nanosecond, time.Microsecond, time.Millisecond, 3 * time.Second, time.Hour} {
			dur.Observe(d)
		}
		for _, v := range []int64{0, 1, 7, 4096} {
			val.Observe(v)
		}
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()

		checkLadder := func(name string, wantBuckets int, wantCount int64) {
			t.Helper()
			if !strings.Contains(out, "# HELP "+name+" ") {
				t.Fatalf("%s: missing HELP line", name)
			}
			if !strings.Contains(out, "# TYPE "+name+" histogram") {
				t.Fatalf("%s: missing TYPE histogram line", name)
			}
			var les []float64
			var cums []int64
			for _, line := range strings.Split(out, "\n") {
				if !strings.HasPrefix(line, name+"_bucket{le=\"") {
					continue
				}
				rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
				end := strings.Index(rest, "\"}")
				if end < 0 {
					t.Fatalf("%s: malformed bucket line %q", name, line)
				}
				leStr, cntStr := rest[:end], strings.TrimSpace(rest[end+2:])
				cnt, err := strconv.ParseInt(cntStr, 10, 64)
				if err != nil {
					t.Fatalf("%s: bucket count %q: %v", name, cntStr, err)
				}
				le := math.Inf(1)
				if leStr != "+Inf" {
					if le, err = strconv.ParseFloat(leStr, 64); err != nil {
						t.Fatalf("%s: le %q: %v", name, leStr, err)
					}
				}
				les = append(les, le)
				cums = append(cums, cnt)
			}
			if len(les) != wantBuckets {
				t.Fatalf("%s: %d bucket lines, want %d (all bounds emitted)", name, len(les), wantBuckets)
			}
			for i := 1; i < len(les); i++ {
				if les[i] <= les[i-1] {
					t.Fatalf("%s: le bounds not strictly increasing at %d: %v <= %v", name, i, les[i], les[i-1])
				}
				if cums[i] < cums[i-1] {
					t.Fatalf("%s: cumulative counts decreased at %d: %d < %d", name, i, cums[i], cums[i-1])
				}
			}
			if !math.IsInf(les[len(les)-1], 1) {
				t.Fatalf("%s: last bucket le is %v, want +Inf", name, les[len(les)-1])
			}
			if cums[len(cums)-1] != wantCount {
				t.Fatalf("%s: +Inf bucket %d, want _count %d", name, cums[len(cums)-1], wantCount)
			}
			if !strings.Contains(out, fmt.Sprintf("%s_count %d", name, wantCount)) {
				t.Fatalf("%s: missing _count %d", name, wantCount)
			}
		}
		// 34 power-of-two duration bounds plus +Inf; 32 value bounds plus +Inf.
		checkLadder("haspmv_test_spec_hist_seconds", 35, 6)
		checkLadder("haspmv_test_spec_value_hist", 33, 4)

		// The zero-duration bucket must carry the le="0" bound so a zero
		// observation lands in a finite bucket.
		if !strings.Contains(out, `haspmv_test_spec_hist_seconds_bucket{le="0"} 1`) {
			t.Fatalf("zero-duration observation not in le=\"0\" bucket:\n%s", out)
		}
	})
}
