package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// publishExpvarOnce exposes the global snapshot under the "haspmv" expvar
// key the first time telemetry is enabled, so /debug/vars carries the
// same view as /metrics without polluting expvar for users who never
// enable telemetry.
var expvarOnce sync.Once

func publishExpvarOnce() {
	expvarOnce.Do(func() {
		expvar.Publish("haspmv", expvar.Func(func() any { return Snapshot() }))
	})
}

// namespace prefixes every exposed metric name.
const namespace = "haspmv_"

// WritePrometheus renders the registry and the active collector in the
// Prometheus text exposition format (version 0.0.4). It is the body of
// the /metrics endpoint and is deterministic: metrics appear in sorted
// name order.
func WritePrometheus(w io.Writer) error {
	counters, gauges, hists, valueHists := registryLists()

	for _, c := range counters {
		name := namespace + c.Name() + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		name := namespace + g.Name()
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if err := writeHistogram(w, h); err != nil {
			return err
		}
	}
	for _, h := range valueHists {
		if err := writeValueHistogram(w, h); err != nil {
			return err
		}
	}

	c := Active()
	enabledVal := 0
	if c != nil {
		enabledVal = 1
	}
	if _, err := fmt.Fprintf(w, "# TYPE %senabled gauge\n%senabled %d\n", namespace, namespace, enabledVal); err != nil {
		return err
	}
	if c == nil {
		return nil
	}

	phaseSec := namespace + "phase_seconds_total"
	phaseCnt := namespace + "phase_count_total"
	fmt.Fprintf(w, "# TYPE %s counter\n", phaseSec)
	fmt.Fprintf(w, "# TYPE %s counter\n", phaseCnt)
	for _, p := range Phases() {
		sec, n := c.PhaseSeconds(p)
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s{phase=%q} %s\n", phaseSec, p.String(), formatFloat(sec))
		fmt.Fprintf(w, "%s{phase=%q} %d\n", phaseCnt, p.String(), n)
	}

	type coreMetric struct {
		name string
		get  func(*CoreCounters) float64
	}
	coreMetrics := []coreMetric{
		{"core_spans_total", func(cc *CoreCounters) float64 { return float64(cc.Spans.Load()) }},
		{"core_nnz_total", func(cc *CoreCounters) float64 { return float64(cc.NNZ.Load()) }},
		{"core_fragments_total", func(cc *CoreCounters) float64 { return float64(cc.Fragments.Load()) }},
		{"core_extra_y_total", func(cc *CoreCounters) float64 { return float64(cc.ExtraY.Load()) }},
		{"core_busy_seconds_total", func(cc *CoreCounters) float64 { return float64(cc.BusyNs.Load()) / 1e9 }},
	}
	for _, m := range coreMetrics {
		fmt.Fprintf(w, "# TYPE %s%s counter\n", namespace, m.name)
		for core := range c.cores {
			cc := &c.cores[core]
			if cc.Spans.Load() == 0 {
				continue
			}
			fmt.Fprintf(w, "%s%s{core=\"%d\"} %s\n", namespace, m.name, core, formatFloat(m.get(cc)))
		}
	}

	c.mu.Lock()
	spanCount := len(c.spans)
	c.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %sspans gauge\n%sspans %d\n", namespace, namespace, spanCount)
	if d := c.dropped.Load(); d > 0 {
		fmt.Fprintf(w, "# TYPE %sspans_dropped_total counter\n%sspans_dropped_total %d\n", namespace, namespace, d)
	}
	return nil
}

// writeHistogram renders a duration histogram as a spec-compliant
// Prometheus histogram: one cumulative _bucket series per upper bound —
// every bound emitted even at zero count, so histogram_quantile always
// sees the full, monotone bucket ladder — terminated by le="+Inf" whose
// value equals _count.
func writeHistogram(w io.Writer, h *Histogram) error {
	name := namespace + h.Name() + "_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Power-of-two latency buckets for %s.\n# TYPE %s histogram\n", name, h.Name(), name); err != nil {
		return err
	}
	cum := int64(0)
	for b := 0; b <= histBuckets; b++ {
		cum += h.buckets[b].Load()
		le := "+Inf"
		if b < histBuckets {
			// Bucket b holds durations with bit-length b ns; its inclusive
			// upper bound is 2^b - 1 ns (b=0 is the zero-duration bucket).
			le = formatFloat(float64(int64(1)<<uint(b)-1) / 1e9)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.SumSeconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return nil
}

// writeValueHistogram renders a unitless integer histogram with the same
// full cumulative bucket ladder as writeHistogram.
func writeValueHistogram(w io.Writer, h *ValueHistogram) error {
	name := namespace + h.Name()
	if _, err := fmt.Fprintf(w, "# HELP %s Power-of-two value buckets for %s.\n# TYPE %s histogram\n", name, h.Name(), name); err != nil {
		return err
	}
	cum := int64(0)
	for b := 0; b <= valueHistBuckets; b++ {
		cum += h.buckets[b].Load()
		le := "+Inf"
		if b < valueHistBuckets {
			// Bucket b holds values with bit-length b: upper bound 2^b - 1.
			le = strconv.FormatInt(int64(1)<<uint(b)-1, 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
