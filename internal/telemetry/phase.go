package telemetry

import "fmt"

// Phase identifies one stage of the analyze→partition→execute pipeline.
// The Prepare phases decompose the paper's preprocessing overhead
// (Figure 10 / the Fig. 7-style breakdown served by haspmv-bench -exp
// phases); the execute phases time the repeated multiplications.
type Phase int

const (
	// PhaseReorder is the HACSR conversion (Algorithm 2).
	PhaseReorder Phase = iota
	// PhaseStreams is the compressed column-index stream build (u32 and
	// u16-delta execution streams derived from the reordered matrix).
	PhaseStreams
	// PhaseCacheLineCost is the per-row cost computation and prefix sum
	// (Algorithm 3), for whichever CostMetric is selected.
	PhaseCacheLineCost
	// PhasePartitionL1 is the level-1 split: deriving the cost-space
	// boundaries between the P- and E-groups (Algorithm 4, lines 1-6).
	PhasePartitionL1
	// PhasePartitionL2 is the level-2 split: locating each core's exact
	// nonzero cut, including in-row walks (Algorithm 4, lines 7-13).
	PhasePartitionL2
	// PhasePrepare is the whole Prepare call (covers the phases above
	// plus validation and bookkeeping).
	PhasePrepare
	// PhaseCompute is one whole Compute call (parallel kernels plus the
	// serial extraY epilogue).
	PhaseCompute
	// PhaseBatch is one whole ComputeBatch call.
	PhaseBatch
	// PhaseRepartition is one boundary-only Repartition call (the
	// adaptive-execution rebalance; reuses the HACSR and cost prefix
	// sums, so it is orders of magnitude cheaper than PhasePrepare).
	PhaseRepartition

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseReorder:       "reorder",
	PhaseStreams:       "streams",
	PhaseCacheLineCost: "cost",
	PhasePartitionL1:   "partition_l1",
	PhasePartitionL2:   "partition_l2",
	PhasePrepare:       "prepare",
	PhaseCompute:       "compute",
	PhaseBatch:         "batch",
	PhaseRepartition:   "repartition",
}

func (p Phase) String() string {
	if p >= 0 && p < numPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases lists every phase in pipeline order (reports iterate it so rows
// come out reorder → cost → partition → execute rather than map-ordered).
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PrepareBreakdown returns the preprocessing phases only — the components
// of PhasePrepare that the Fig. 7-style overhead reports decompose.
func PrepareBreakdown() []Phase {
	return []Phase{PhaseReorder, PhaseStreams, PhaseCacheLineCost, PhasePartitionL1, PhasePartitionL2}
}
