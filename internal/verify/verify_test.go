package verify

import (
	"strings"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// brokenAlg wraps a correct serial SpMV and then injects one specific
// defect, to prove the protocol catches each class of bug.
type brokenAlg struct {
	defect string
}

func (b brokenAlg) Name() string { return "broken(" + b.defect + ")" }

func (b brokenAlg) Prepare(m *amp.Machine, a *sparse.CSR) (exec.Prepared, error) {
	return &brokenPrep{defect: b.defect, mat: a}, nil
}

type brokenPrep struct {
	defect string
	mat    *sparse.CSR
	calls  int
}

func (p *brokenPrep) Compute(y, x []float64) {
	p.mat.MulVec(y, x)
	p.calls++
	switch p.defect {
	case "wrong-value":
		if len(y) > 0 {
			y[len(y)/2] += 1
		}
	case "skipped-row":
		if len(y) > 0 {
			y[0] = 1e300 // leaves the poison in place
		}
	case "not-reusable":
		if p.calls == 2 && len(y) > 0 {
			y[0] += 0.5
		}
	}
}

func (p *brokenPrep) Assignments() []costmodel.Assignment {
	full := []costmodel.Assignment{{Core: 0, Spans: []costmodel.Span{{Lo: 0, Hi: p.mat.NNZ()}}}}
	switch p.defect {
	case "gap":
		if p.mat.NNZ() > 1 {
			full[0].Spans[0].Hi--
		}
	case "overlap":
		if p.mat.NNZ() > 1 {
			full = append(full, costmodel.Assignment{Core: 1, Spans: []costmodel.Span{{Lo: 0, Hi: 1}}})
		}
	}
	return full
}

func TestProtocolCatchesInjectedDefects(t *testing.T) {
	m := amp.IntelI912900KF()
	a := Matrix("banded-fem")
	for _, defect := range []string{"wrong-value", "skipped-row", "not-reusable", "gap", "overlap"} {
		err := OnMatrix(brokenAlg{defect: defect}, m, a)
		if err == nil {
			t.Errorf("defect %q not caught", defect)
		} else if !strings.Contains(err.Error(), "broken") && !strings.Contains(err.Error(), "exec:") {
			t.Errorf("defect %q: unattributed error %v", defect, err)
		}
	}
	// And the clean algorithm passes.
	if err := OnMatrix(brokenAlg{defect: "none"}, m, a); err != nil {
		t.Errorf("clean algorithm rejected: %v", err)
	}
}

func TestBatteryIsStable(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Battery() {
		if names[c.Name] {
			t.Fatalf("duplicate battery case %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, required := range []string{"fig1-8x8", "empty-0x0", "hub-row", "powerlaw", "tall-rect"} {
		if !names[required] {
			t.Fatalf("battery lost case %q", required)
		}
	}
	// Matrix lookup round-trips and panics on unknowns.
	if Matrix("hub-row").NNZ() == 0 {
		t.Fatal("hub-row empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	Matrix("never-heard-of-it")
}
