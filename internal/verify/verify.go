// Package verify provides the correctness protocol every SpMV
// implementation in this repository must pass, in a testing-free form so
// both the test suite (via internal/algtest) and cmd/haspmv-bench's
// selfcheck mode can run it: an adversarial matrix battery (empty rows,
// hub rows holding half the matrix, more cores than rows, non-square
// shapes), verification against the serial reference with poisoned
// outputs, and the cover-every-nonzero-exactly-once invariant.
package verify

import (
	"fmt"
	"math/rand"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// Case is one matrix of the battery.
type Case struct {
	Name string
	A    *sparse.CSR
}

// Battery returns the standard adversarial matrix set.
func Battery() []Case {
	rng := rand.New(rand.NewSource(99))
	var cases []Case
	add := func(name string, a *sparse.CSR) {
		if err := a.Validate(); err != nil {
			panic(fmt.Sprintf("algtest: battery matrix %s invalid: %v", name, err))
		}
		cases = append(cases, Case{Name: name, A: a})
	}

	add("fig1-8x8", sparse.FromDense([][]float64{
		{1, 0, 0, 2, 0, 0, 0, 0},
		{0, 3, 4, 0, 0, 5, 0, 0},
		{0, 0, 6, 0, 0, 0, 0, 0},
		{7, 0, 0, 8, 9, 0, 1, 2},
		{0, 0, 0, 0, 3, 0, 0, 0},
		{4, 5, 6, 7, 8, 9, 1, 2},
		{0, 0, 0, 0, 0, 0, 3, 0},
		{0, 4, 0, 0, 0, 5, 0, 6},
	}, 0))

	add("empty-0x0", &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}})
	add("all-zero-4x4", &sparse.CSR{Rows: 4, Cols: 4, RowPtr: []int{0, 0, 0, 0, 0}})
	add("single-entry", sparse.FromDense([][]float64{{0, 0}, {0, 5}}, 0))
	add("single-row-1xN", gen.Spec{Name: "r", Rows: 1, Cols: 500, TargetNNZ: 300,
		Dist: gen.ConstLen{L: 300}, Place: gen.Random, Seed: 1}.Generate())

	// Nx1 column matrix.
	col := &sparse.COO{Rows: 400, Cols: 1}
	for i := 0; i < 400; i += 3 {
		col.Add(i, 0, float64(i)+0.5)
	}
	add("column-Nx1", col.ToCSR())

	// Fewer rows than cores: partitions must degrade gracefully.
	add("tiny-3x3", sparse.FromDense([][]float64{
		{1, 2, 0}, {0, 0, 3}, {4, 0, 5},
	}, 0))

	// Alternating empty rows (cop20k_A-style min=0).
	alt := &sparse.COO{Rows: 64, Cols: 64}
	for i := 0; i < 64; i += 2 {
		for j := 0; j < 5; j++ {
			alt.Add(i, (i*7+j*13)%64, 1+float64(j))
		}
	}
	add("alternating-empty", alt.ToCSR())

	// One hub row holding half the nonzeros (webbase/FullChip pattern).
	hub := &sparse.COO{Rows: 200, Cols: 200}
	for j := 0; j < 200; j++ {
		hub.Add(100, j, 0.5)
	}
	for i := 0; i < 200; i++ {
		hub.Add(i, (i*31)%200, 1)
	}
	add("hub-row", hub.ToCSR())

	add("banded-fem", gen.Spec{Name: "b", Rows: 700, Cols: 700, TargetNNZ: 700 * 12,
		Dist: gen.NormalLen{Mean: 12, Std: 2, Min: 4, Max: 24}, Place: gen.Banded, Seed: 2}.Generate())
	add("const-rows", gen.Spec{Name: "c", Rows: 513, Cols: 513, // odd size: uneven splits
		Dist: gen.ConstLen{L: 9}, Place: gen.Random, Seed: 3}.Generate())
	add("powerlaw", gen.Spec{Name: "p", Rows: 1000, Cols: 1000, TargetNNZ: 6000,
		Dist: gen.NewPowerLen(1, 400, 6), Place: gen.Skewed, Seed: 4, HubRows: 2}.Generate())
	add("wide-rect", gen.Spec{Name: "w", Rows: 60, Cols: 3000, TargetNNZ: 60 * 40,
		Dist: gen.ConstLen{L: 40}, Place: gen.Random, Seed: 5}.Generate())
	add("tall-rect", gen.Spec{Name: "t", Rows: 3000, Cols: 60, TargetNNZ: 3000 * 4,
		Dist: gen.UniformLen{Min: 0, Max: 8}, Place: gen.Random, Seed: 6}.Generate())

	// A medium random matrix for good measure.
	_ = rng
	add("medium-random", gen.Spec{Name: "m", Rows: 2500, Cols: 2500, TargetNNZ: 30000,
		Dist: gen.UniformLen{Min: 0, Max: 30}, Place: gen.Random, Seed: 7}.Generate())

	return cases
}

// Matrix returns the battery matrix with the given name, panicking on
// unknown names (tests reference fixed battery members).
func Matrix(name string) *sparse.CSR {
	for _, c := range Battery() {
		if c.Name == name {
			return c.A
		}
	}
	panic(fmt.Sprintf("algtest: no battery matrix %q", name))
}

// Tolerance for comparing against the serial reference; the unrolled
// kernels and fragment sums reassociate floating point.
const Tolerance = 1e-9

// OnMatrix runs the full correctness protocol for one algorithm on
// one matrix, returning an error instead of failing a test: prepare,
// check the cover-exactly-once invariant, compare against the serial
// reference with poisoned outputs, and repeat the multiply (the
// inspector-executor contract).
func OnMatrix(alg exec.Algorithm, m *amp.Machine, a *sparse.CSR) error {
	prep, err := alg.Prepare(m, a)
	if err != nil {
		return fmt.Errorf("%s: Prepare: %w", alg.Name(), err)
	}
	if err := exec.CheckAssignments(a, prep.Assignments()); err != nil {
		return fmt.Errorf("%s: %w", alg.Name(), err)
	}
	x := make([]float64, a.Cols)
	r := rand.New(rand.NewSource(123))
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	got := make([]float64, a.Rows)
	// Poison the output to catch rows no one writes.
	for i := range got {
		got[i] = 1e300
	}
	prep.Compute(got, x)
	scale := 1.0
	for _, w := range want {
		if aw := abs(w); aw > scale {
			scale = aw
		}
	}
	for i := range want {
		if abs(got[i]-want[i]) > Tolerance*scale {
			return fmt.Errorf("%s: y[%d] = %v, want %v (scale %v)", alg.Name(), i, got[i], want[i], scale)
		}
	}
	// Repeat: Compute must be reusable (inspector-executor contract).
	prep.Compute(got, x)
	for i := range want {
		if abs(got[i]-want[i]) > Tolerance*scale {
			return fmt.Errorf("%s: second Compute diverged at %d", alg.Name(), i)
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
