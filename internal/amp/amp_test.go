package amp

import "testing"

// TestTableIPresets pins the published Table I specifications: core counts,
// cache capacities and memory generation for all four machines.
func TestTableIPresets(t *testing.T) {
	cases := []struct {
		name           string
		pCores, eCores int
		pL1, eL1       int
		pL2, eL2       int
		pL3, eL3       int
		l3Shared       bool
	}{
		{"i9-12900KF", 8, 8, 48 * kb, 32 * kb, 1280 * kb, 2 * mb, 30 * mb, 30 * mb, true},
		{"i9-13900KF", 8, 16, 48 * kb, 32 * kb, 2 * mb, 4 * mb, 36 * mb, 36 * mb, true},
		{"7950X3D", 8, 8, 32 * kb, 32 * kb, 1 * mb, 1 * mb, 96 * mb, 32 * mb, false},
		{"7950X", 8, 8, 32 * kb, 32 * kb, 1 * mb, 1 * mb, 32 * mb, 32 * mb, false},
	}
	for _, tc := range cases {
		m, ok := ByName(tc.name)
		if !ok {
			t.Fatalf("%s: preset missing", tc.name)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		p, e := m.PGroup(), m.EGroup()
		if p.Cores != tc.pCores || e.Cores != tc.eCores {
			t.Errorf("%s: cores %d+%d, want %d+%d", tc.name, p.Cores, e.Cores, tc.pCores, tc.eCores)
		}
		if p.L1DBytes != tc.pL1 || e.L1DBytes != tc.eL1 {
			t.Errorf("%s: L1 %d/%d, want %d/%d", tc.name, p.L1DBytes, e.L1DBytes, tc.pL1, tc.eL1)
		}
		if p.L2Bytes != tc.pL2 || e.L2Bytes != tc.eL2 {
			t.Errorf("%s: L2 %d/%d, want %d/%d", tc.name, p.L2Bytes, e.L2Bytes, tc.pL2, tc.eL2)
		}
		if p.L3Bytes != tc.pL3 || e.L3Bytes != tc.eL3 {
			t.Errorf("%s: L3 %d/%d, want %d/%d", tc.name, p.L3Bytes, e.L3Bytes, tc.pL3, tc.eL3)
		}
		if p.L3SharedWithOtherGroup != tc.l3Shared {
			t.Errorf("%s: L3 sharing = %v", tc.name, p.L3SharedWithOtherGroup)
		}
		if m.CacheLineBytes != 64 {
			t.Errorf("%s: cache line %d", tc.name, m.CacheLineBytes)
		}
	}
}

func TestX3DDiffersOnlyInL3(t *testing.T) {
	x3d := AMDRyzen97950X3D()
	x := AMDRyzen97950X()
	if x3d.PGroup().L3Bytes != 96*mb || x.PGroup().L3Bytes != 32*mb {
		t.Fatal("V-Cache sizes wrong")
	}
	// Everything else must be identical (the paper equalizes frequencies).
	a, b := *x3d.PGroup(), *x.PGroup()
	a.L3Bytes, b.L3Bytes = 0, 0
	if a != b {
		t.Fatalf("CCD0 differs beyond L3: %+v vs %+v", a, b)
	}
	if *x3d.EGroup() != *x.EGroup() {
		t.Fatal("CCD1 should be identical")
	}
}

func TestGroupOf(t *testing.T) {
	m := IntelI913900KF()
	g, idx := m.GroupOf(0)
	if g.Kind != Performance || idx != 0 {
		t.Fatalf("core 0 -> %v/%d", g.Kind, idx)
	}
	g, idx = m.GroupOf(7)
	if g.Kind != Performance || idx != 7 {
		t.Fatalf("core 7 -> %v/%d", g.Kind, idx)
	}
	g, idx = m.GroupOf(8)
	if g.Kind != Efficiency || idx != 0 {
		t.Fatalf("core 8 -> %v/%d", g.Kind, idx)
	}
	g, idx = m.GroupOf(23)
	if g.Kind != Efficiency || idx != 15 {
		t.Fatalf("core 23 -> %v/%d", g.Kind, idx)
	}
	for _, bad := range []int{-1, 24} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("GroupOf(%d) did not panic", bad)
				}
			}()
			m.GroupOf(bad)
		}()
	}
}

func TestConfigCores(t *testing.T) {
	m := IntelI912900KF()
	if got := m.Cores(POnly); len(got) != 8 || got[0] != 0 || got[7] != 7 {
		t.Fatalf("POnly = %v", got)
	}
	if got := m.Cores(EOnly); len(got) != 8 || got[0] != 8 || got[7] != 15 {
		t.Fatalf("EOnly = %v", got)
	}
	if got := m.Cores(PAndE); len(got) != 16 {
		t.Fatalf("PAndE = %v", got)
	}
	if m.TotalCores() != 16 {
		t.Fatalf("TotalCores = %d", m.TotalCores())
	}
}

func TestConfigAndKindStrings(t *testing.T) {
	if POnly.String() != "P-only" || EOnly.String() != "E-only" || PAndE.String() != "P+E" {
		t.Fatal("config strings")
	}
	if Config(9).String() == "" {
		t.Fatal("unknown config string empty")
	}
	if Performance.String() != "P" || Efficiency.String() != "E" {
		t.Fatal("kind strings")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mods := []func(*Machine){
		func(m *Machine) { m.Name = "" },
		func(m *Machine) { m.CacheLineBytes = 0 },
		func(m *Machine) { m.DRAMBWGBps = 0 },
		func(m *Machine) { m.Groups[0].Kind = Efficiency },
		func(m *Machine) { m.Groups[1].Cores = 0 },
		func(m *Machine) { m.Groups[0].FreqGHz = -1 },
		func(m *Machine) { m.Groups[0].SIMDLanes = 0 },
		func(m *Machine) { m.Groups[1].L1DBytes = 0 },
		func(m *Machine) { m.Groups[1].L2SharedBy = 0 },
		func(m *Machine) { m.Groups[0].MemBWGBps = 0 },
		func(m *Machine) { m.Groups[0].IPCScalar = 0 },
		func(m *Machine) { m.Groups[0].L3Bytes = -1 },
	}
	for i, mod := range mods {
		m := IntelI912900KF()
		mod(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("486DX"); ok {
		t.Fatal("found unknown machine")
	}
	if len(All()) != 4 {
		t.Fatal("All() must list the four Table I machines")
	}
}

// The 13900KF must narrow the E-group gap relative to the 12900KF: the
// paper attributes the P+E wins on 13th gen to the doubled E-core count.
func TestEGroupScalingAcrossGenerations(t *testing.T) {
	g12 := IntelI912900KF()
	g13 := IntelI913900KF()
	ratio12 := float64(g12.EGroup().Cores) / float64(g12.PGroup().Cores)
	ratio13 := float64(g13.EGroup().Cores) / float64(g13.PGroup().Cores)
	if ratio13 <= ratio12 {
		t.Fatalf("13900KF E/P core ratio %v not above 12900KF %v", ratio13, ratio12)
	}
}

func TestExtensionPresetsValid(t *testing.T) {
	for _, m := range []*Machine{AppleM2Like(), ARMBigLittleLike()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if AppleM2Like().CacheLineBytes != 128 {
		t.Error("Apple parts use 128B cache lines")
	}
	if len(AllWithExtensions()) != 6 {
		t.Error("extension roster")
	}
	if _, ok := ByName("apple-m2-like"); !ok {
		t.Error("extension preset not resolvable by name")
	}
	// The power asymmetry must be extreme on mobile: LITTLE cores under
	// a fifth of a big core's power.
	bl := ARMBigLittleLike()
	if bl.EGroup().ActiveWatts*5 > bl.PGroup().ActiveWatts {
		t.Error("big.LITTLE power asymmetry too small")
	}
}
