// Package amp describes asymmetric multicore processors (AMPs) — the
// machines of the paper's Table I. A Machine is a set of CoreGroups; each
// group has homogeneous cores (frequency, SIMD width, private caches) and
// the groups share a last-level cache and DRAM. The descriptions drive the
// deterministic performance model in internal/costmodel and internal/exec,
// which substitutes for the physical i9-12900KF, i9-13900KF, Ryzen 9
// 7950X3D and 7950X used by the paper (see DESIGN.md, substitution table).
package amp

import "fmt"

// CoreKind distinguishes the two classes of cores in an AMP.
type CoreKind int

const (
	// Performance marks the fast group: Intel P-cores, AMD CCD0.
	Performance CoreKind = iota
	// Efficiency marks the slow/dense group: Intel E-cores, AMD CCD1.
	Efficiency
)

func (k CoreKind) String() string {
	if k == Performance {
		return "P"
	}
	return "E"
}

// CoreGroup describes one homogeneous cluster of cores.
type CoreGroup struct {
	Kind  CoreKind
	Name  string // "P-core", "E-core", "CCD0", "CCD1"
	Cores int

	// FreqGHz is the sustained all-core frequency in GHz. The model uses
	// the sustained clock, not the single-core boost, because SpMV runs
	// all cores of the group.
	FreqGHz float64
	// SIMDLanes is the number of float64 FMA lanes per cycle (4 for
	// AVX2-class P-cores, fewer for E-cores with a narrower backend).
	SIMDLanes int
	// IPCScalar approximates non-SIMD instructions retired per cycle,
	// used for the scalar bookkeeping portion of the kernels.
	IPCScalar float64

	// L1DBytes and L2Bytes are per-core private cache capacities.
	// L2SharedBy > 1 means L2 is shared by clusters of that many cores
	// (Intel E-cores share one L2 per 4-core cluster).
	L1DBytes   int
	L2Bytes    int
	L2SharedBy int

	// L3Bytes is this group's slice of last-level cache. On Intel the LLC
	// is one shared pool (both groups carry the full size and the model
	// treats it as shared); on AMD each CCD has its own L3, and CCD0 of
	// the 7950X3D adds the 64MB 3D V-Cache.
	L3Bytes int
	// L3SharedWithOtherGroup is true when the LLC is one chip-wide pool
	// (Intel) rather than per-group (AMD CCDs).
	L3SharedWithOtherGroup bool

	// MemBWGBps is the peak DRAM bandwidth one core of this group can
	// draw, and GroupMemBWGBps the ceiling for the whole group (per-CCD
	// fabric limits on AMD; ring-stop limits on Intel E-core clusters).
	MemBWGBps      float64
	GroupMemBWGBps float64

	// L1BPC/L2BPC/L3BPC are per-core cache bandwidths in bytes per cycle
	// (multiplied by FreqGHz to get GB/s). They are properties of the
	// core microarchitecture, not of the P/E role: AMD's CCD1 is the
	// "efficiency" group only by cache capacity, and keeps Zen 4
	// bandwidth.
	L1BPC, L2BPC, L3BPC float64

	// ActiveWatts is one core's package power at full SpMV load. The
	// energy extension (EstimateSpMV's Joules output) uses it; the
	// asymmetry between P- and E-core power is the reason AMPs exist
	// (Kumar et al., MICRO'03).
	ActiveWatts float64
}

// Machine is a complete AMP description.
type Machine struct {
	Name string
	// Groups[0] must be the Performance group, Groups[1] the Efficiency
	// group, matching the paper's P/E and CCD0/CCD1 naming.
	Groups [2]CoreGroup
	// DRAMBWGBps is the chip-wide DRAM bandwidth ceiling (all cores
	// combined can never exceed it).
	DRAMBWGBps float64
	// DRAMLatencyNs is the idle DRAM access latency.
	DRAMLatencyNs float64
	// CacheLineBytes is 64 on every modern x86 part.
	CacheLineBytes int
	// UncoreWatts is the package power of the shared fabric (ring/IOD,
	// memory controller, L3) drawn for the duration of a kernel
	// regardless of which cores run it.
	UncoreWatts float64
}

// TotalCores returns the number of cores across both groups.
func (m *Machine) TotalCores() int { return m.Groups[0].Cores + m.Groups[1].Cores }

// PGroup returns the performance group (P-cores / CCD0).
func (m *Machine) PGroup() *CoreGroup { return &m.Groups[0] }

// EGroup returns the efficiency group (E-cores / CCD1).
func (m *Machine) EGroup() *CoreGroup { return &m.Groups[1] }

// GroupOf maps a flat core id (0..TotalCores-1, P-group first) to its group
// and the index within the group.
func (m *Machine) GroupOf(core int) (g *CoreGroup, idx int) {
	if core < 0 || core >= m.TotalCores() {
		panic(fmt.Sprintf("amp: core %d out of range on %s", core, m.Name))
	}
	if core < m.Groups[0].Cores {
		return &m.Groups[0], core
	}
	return &m.Groups[1], core - m.Groups[0].Cores
}

// Validate checks internal consistency of the description.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("amp: machine has no name")
	}
	if m.CacheLineBytes <= 0 {
		return fmt.Errorf("amp: %s: cache line %d", m.Name, m.CacheLineBytes)
	}
	if m.DRAMBWGBps <= 0 {
		return fmt.Errorf("amp: %s: DRAM bandwidth %v", m.Name, m.DRAMBWGBps)
	}
	if m.UncoreWatts <= 0 {
		return fmt.Errorf("amp: %s: bad uncore power", m.Name)
	}
	if m.Groups[0].Kind != Performance || m.Groups[1].Kind != Efficiency {
		return fmt.Errorf("amp: %s: group order must be [Performance, Efficiency]", m.Name)
	}
	for gi := range m.Groups {
		g := &m.Groups[gi]
		if g.Cores <= 0 {
			return fmt.Errorf("amp: %s/%s: %d cores", m.Name, g.Name, g.Cores)
		}
		if g.FreqGHz <= 0 || g.SIMDLanes <= 0 || g.IPCScalar <= 0 {
			return fmt.Errorf("amp: %s/%s: non-positive compute rates", m.Name, g.Name)
		}
		if g.L1DBytes <= 0 || g.L2Bytes <= 0 || g.L3Bytes < 0 {
			return fmt.Errorf("amp: %s/%s: bad cache sizes", m.Name, g.Name)
		}
		if g.L2SharedBy < 1 {
			return fmt.Errorf("amp: %s/%s: L2SharedBy %d", m.Name, g.Name, g.L2SharedBy)
		}
		if g.MemBWGBps <= 0 || g.GroupMemBWGBps <= 0 {
			return fmt.Errorf("amp: %s/%s: bad bandwidth", m.Name, g.Name)
		}
		if g.L1BPC <= 0 || g.L2BPC <= 0 || g.L3BPC <= 0 {
			return fmt.Errorf("amp: %s/%s: bad cache bandwidth", m.Name, g.Name)
		}
		if g.ActiveWatts <= 0 {
			return fmt.Errorf("amp: %s/%s: bad core power", m.Name, g.Name)
		}
	}
	return nil
}

// Config names a core-composition used by the micro-benchmarks: only the
// fast group, only the slow group, or both (the three lines of Figures 3
// and 4).
type Config int

const (
	// PAndE is the zero value: by default both groups participate.
	PAndE Config = iota
	POnly
	EOnly
)

func (c Config) String() string {
	switch c {
	case POnly:
		return "P-only"
	case EOnly:
		return "E-only"
	case PAndE:
		return "P+E"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}

// Cores returns the flat core ids selected by the config.
func (m *Machine) Cores(c Config) []int {
	p := m.Groups[0].Cores
	e := m.Groups[1].Cores
	switch c {
	case POnly:
		ids := make([]int, p)
		for i := range ids {
			ids[i] = i
		}
		return ids
	case EOnly:
		ids := make([]int, e)
		for i := range ids {
			ids[i] = p + i
		}
		return ids
	case PAndE:
		ids := make([]int, p+e)
		for i := range ids {
			ids[i] = i
		}
		return ids
	default:
		panic("amp: unknown config")
	}
}
