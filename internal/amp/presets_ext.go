package amp

// Extension presets beyond the paper's Table I: the other two single-ISA
// AMP families the introduction cites — Apple's P/E designs and ARM
// big.LITTLE — expressed in the same machine model. They are not part of
// the reproduction experiments (the paper evaluates only the four x86
// parts) but demonstrate that the algorithm and simulator generalize;
// cmd/haspmv-bench accepts them through -machines.

// AppleM2Like models an M2-class part: 4 avalanche-style P-cores sharing
// a 16MB L2 (no per-core private L2; the model folds the shared L2 into
// L3 and gives each core a generous L1), 4 blizzard-style E-cores with a
// 4MB shared L2, and a very wide unified-memory interface — the trait
// that makes Apple AMPs forgiving of heterogeneity-blind splits.
func AppleM2Like() *Machine {
	return &Machine{
		Name: "apple-m2-like",
		Groups: [2]CoreGroup{
			{
				Kind: Performance, Name: "P-cluster", Cores: 4,
				FreqGHz: 3.5, SIMDLanes: 8, IPCScalar: 5,
				L1DBytes: 128 * kb, L2Bytes: 4 * mb, L2SharedBy: 1,
				L3Bytes: 16 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 60, GroupMemBWGBps: 90,
				L1BPC: 96, L2BPC: 32, L3BPC: 20,
				ActiveWatts: 6,
			},
			{
				Kind: Efficiency, Name: "E-cluster", Cores: 4,
				FreqGHz: 2.4, SIMDLanes: 4, IPCScalar: 3,
				L1DBytes: 64 * kb, L2Bytes: 4 * mb, L2SharedBy: 4,
				L3Bytes: 16 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 30, GroupMemBWGBps: 50,
				L1BPC: 48, L2BPC: 16, L3BPC: 12,
				ActiveWatts: 1.5,
			},
		},
		DRAMBWGBps:     100, // unified memory
		DRAMLatencyNs:  95,
		CacheLineBytes: 128, // Apple uses 128B lines
		UncoreWatts:    8,
	}
}

// ARMBigLittleLike models a contemporary big.LITTLE mobile SoC: four
// Cortex-X/A7x-class big cores and four in-order A5x-class LITTLE cores
// on a narrow LPDDR interface. The LITTLE cores are far weaker than
// Intel's E-cores, making the heterogeneity-aware split even more
// valuable — and the energy asymmetry extreme.
func ARMBigLittleLike() *Machine {
	return &Machine{
		Name: "arm-biglittle-like",
		Groups: [2]CoreGroup{
			{
				Kind: Performance, Name: "big", Cores: 4,
				FreqGHz: 3.0, SIMDLanes: 4, IPCScalar: 4,
				L1DBytes: 64 * kb, L2Bytes: 1 * mb, L2SharedBy: 1,
				L3Bytes: 8 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 18, GroupMemBWGBps: 40,
				L1BPC: 48, L2BPC: 20, L3BPC: 10,
				ActiveWatts: 3.5,
			},
			{
				Kind: Efficiency, Name: "LITTLE", Cores: 4,
				FreqGHz: 1.8, SIMDLanes: 2, IPCScalar: 1.2,
				L1DBytes: 32 * kb, L2Bytes: 512 * kb, L2SharedBy: 4,
				L3Bytes: 8 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 8, GroupMemBWGBps: 20,
				L1BPC: 16, L2BPC: 8, L3BPC: 6,
				ActiveWatts: 0.6,
			},
		},
		DRAMBWGBps:     48, // LPDDR5
		DRAMLatencyNs:  110,
		CacheLineBytes: 64,
		UncoreWatts:    3,
	}
}

// AllWithExtensions returns Table I's machines plus the extension presets.
func AllWithExtensions() []*Machine {
	return append(All(), AppleM2Like(), ARMBigLittleLike())
}
