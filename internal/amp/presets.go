package amp

const (
	kb = 1 << 10
	mb = 1 << 20
)

// The four Table I machines. Frequencies are sustained all-core clocks
// (SpMV loads every core of a group); SIMDLanes counts double-precision
// FMA results per cycle (Golden Cove and Raptor Cove retire 2x256-bit FMA
// = 8, Gracemont 1x128-bit-pair = 2, Zen 4 2x256-bit = 8). Bandwidth
// ceilings reflect the DDR5 configuration in Table I and the fabric limits
// that make a single group unable to saturate the chip (the effect behind
// Figure 3's P-only vs P+E curves).

// IntelI912900KF models the 12th-Gen Intel Core i9-12900KF:
// 8 P-cores + 8 E-cores, 30MB shared L3, DDR5-4800.
func IntelI912900KF() *Machine {
	return &Machine{
		Name: "i9-12900KF",
		Groups: [2]CoreGroup{
			{
				Kind: Performance, Name: "P-core", Cores: 8,
				FreqGHz: 4.9, SIMDLanes: 8, IPCScalar: 4,
				L1DBytes: 48 * kb, L2Bytes: 1280 * kb, L2SharedBy: 1,
				L3Bytes: 30 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 26, GroupMemBWGBps: 72,
				L1BPC: 64, L2BPC: 24, L3BPC: 12,
				ActiveWatts: 13,
			},
			{
				Kind: Efficiency, Name: "E-core", Cores: 8,
				FreqGHz: 3.7, SIMDLanes: 2, IPCScalar: 2,
				L1DBytes: 32 * kb, L2Bytes: 2 * mb, L2SharedBy: 4,
				L3Bytes: 30 * mb, L3SharedWithOtherGroup: true,
				// A lone Gracemont core draws competitive DRAM bandwidth
				// (Fig. 5: P/E converge on very long rows on this part);
				// the cluster fabric caps the group well below 8x that.
				MemBWGBps: 20, GroupMemBWGBps: 52,
				L1BPC: 32, L2BPC: 12, L3BPC: 8,
				ActiveWatts: 4,
			},
		},
		DRAMBWGBps:     76.8 * 0.88, // DDR5-4800 dual channel, ~88% achievable
		DRAMLatencyNs:  80,
		UncoreWatts:    18,
		CacheLineBytes: 64,
	}
}

// IntelI913900KF models the 13th-Gen Intel Core i9-13900KF:
// 8 P-cores + 16 E-cores, 36MB shared L3, DDR5-5600. The doubled E-core
// count narrows the P/E group gap (the paper's Fig. 4 observation that 739
// of 2888 matrices run faster on P+E than pure P on this part).
func IntelI913900KF() *Machine {
	return &Machine{
		Name: "i9-13900KF",
		Groups: [2]CoreGroup{
			{
				Kind: Performance, Name: "P-core", Cores: 8,
				FreqGHz: 5.2, SIMDLanes: 8, IPCScalar: 4,
				L1DBytes: 48 * kb, L2Bytes: 2 * mb, L2SharedBy: 1,
				L3Bytes: 36 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 28, GroupMemBWGBps: 82,
				L1BPC: 64, L2BPC: 24, L3BPC: 12,
				ActiveWatts: 14,
			},
			{
				Kind: Efficiency, Name: "E-core", Cores: 16,
				FreqGHz: 3.9, SIMDLanes: 2, IPCScalar: 2,
				L1DBytes: 32 * kb, L2Bytes: 4 * mb, L2SharedBy: 4,
				L3Bytes: 36 * mb, L3SharedWithOtherGroup: true,
				MemBWGBps: 12, GroupMemBWGBps: 68,
				L1BPC: 32, L2BPC: 12, L3BPC: 8,
				ActiveWatts: 4.5,
			},
		},
		DRAMBWGBps:     89.6 * 0.88, // DDR5-5600 dual channel
		DRAMLatencyNs:  78,
		UncoreWatts:    20,
		CacheLineBytes: 64,
	}
}

// AMDRyzen97950X3D models the Ryzen 9 7950X3D: two 8-core Zen 4 CCDs with
// identical compute, but CCD0 stacks 64MB of 3D V-Cache on its 32MB L3
// (96MB total) while CCD1 keeps 32MB. Frequencies are equalized as in the
// paper's experimental setup.
func AMDRyzen97950X3D() *Machine {
	return &Machine{
		Name: "7950X3D",
		Groups: [2]CoreGroup{
			{
				Kind: Performance, Name: "CCD0", Cores: 8,
				FreqGHz: 4.6, SIMDLanes: 8, IPCScalar: 4,
				L1DBytes: 32 * kb, L2Bytes: 1 * mb, L2SharedBy: 1,
				L3Bytes: 96 * mb, L3SharedWithOtherGroup: false,
				MemBWGBps: 26, GroupMemBWGBps: 62,
				L1BPC: 64, L2BPC: 24, L3BPC: 14,
				ActiveWatts: 9,
			},
			{
				Kind: Efficiency, Name: "CCD1", Cores: 8,
				FreqGHz: 4.6, SIMDLanes: 8, IPCScalar: 4,
				L1DBytes: 32 * kb, L2Bytes: 1 * mb, L2SharedBy: 1,
				L3Bytes: 32 * mb, L3SharedWithOtherGroup: false,
				MemBWGBps: 26, GroupMemBWGBps: 62,
				L1BPC: 64, L2BPC: 24, L3BPC: 14,
				ActiveWatts: 9,
			},
		},
		DRAMBWGBps:     76.8 * 0.88,
		DRAMLatencyNs:  85,
		UncoreWatts:    22, // dual-CCD IOD
		CacheLineBytes: 64,
	}
}

// AMDRyzen97950X is the homogeneous sibling of the 7950X3D: both CCDs
// carry the plain 32MB L3. The paper uses it as the control to isolate the
// V-Cache effect.
func AMDRyzen97950X() *Machine {
	m := AMDRyzen97950X3D()
	m.Name = "7950X"
	m.Groups[0].L3Bytes = 32 * mb
	return m
}

// All returns the four Table I machines in paper order.
func All() []*Machine {
	return []*Machine{
		IntelI912900KF(),
		IntelI913900KF(),
		AMDRyzen97950X3D(),
		AMDRyzen97950X(),
	}
}

// ByName looks up a preset by name — the four Table I parts plus the
// extension presets; ok is false for unknown names.
func ByName(name string) (*Machine, bool) {
	for _, m := range AllWithExtensions() {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}
