package kernel

// DIA-style diagonal-run kernels: fragments of rows whose nonzeros form
// few runs of consecutive columns execute from a compact run-descriptor
// stream with no column indices at all. A run is a maximal range of
// nonzero positions k whose columns are consecutive, so inside a run
// col(k) = ColMinusK + k with ColMinusK constant; the descriptor stores
// only that constant and where the run ends (8 bytes per run versus 4
// bytes per nonzero for the u32 stream). The x accesses inside a run
// are unit stride, which is the other half of the win on banded and
// stencil matrices.
//
// Every variant is *bit-exact* with DotRange on the decoded columns:
// the bodies below reproduce the dispatch thresholds, accumulator-chain
// assignment, reduction trees, and sequential remainders of kernel.go
// statement for statement. The run decoder only changes where the x
// operand is loaded from, never the order values are accumulated in.

// DiaRun describes one run of consecutive columns: nonzero positions
// [previous EndK, EndK) — positions are original-nnz offsets, the same
// space the value stream is indexed in — read x at column ColMinusK+k.
// Runs of one row are contiguous in k; the int32 fields gate the format
// to matrices under 2^31 nonzeros and columns.
type DiaRun struct {
	EndK      int32
	ColMinusK int32
}

// DotRangeDiag computes sum(val[k]*x[cmk+k]) for k in [lo, hi) where
// cmk is the ColMinusK of the run containing k. runs[ri:] must cover
// [lo, hi) contiguously (ri may point at an earlier run of the same
// row; the kernel skips runs ending at or before lo). Bit-identical to
// DotRange on the decoded column indices. A fragment inside a single
// run — the common case on banded and stencil rows — takes the
// non-generic contiguous path of diag_contig.go.
func DotRangeDiag(val []float64, runs []DiaRun, ri int, x []float64, lo, hi, unrollLen int) float64 {
	if hi > lo {
		for int(runs[ri].EndK) <= lo {
			ri++
		}
		if hi <= int(runs[ri].EndK) {
			return dotContigF64(val, x, lo, hi, int(runs[ri].ColMinusK), unrollLen)
		}
	}
	return dotRangeDiaG(val, nil, runs, ri, x, lo, hi, unrollLen)
}

// DotRangeDiagPalette is DotRangeDiag over a palette value stream:
// the operand is pal[idx[k]], the exact float64 the matrix stores.
func DotRangeDiagPalette(idx []uint8, pal []float64, runs []DiaRun, ri int, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeDiaG(idx, pal, runs, ri, x, lo, hi, unrollLen)
}

// DotRangeDiagF32 is DotRangeDiag over a float32 value stream (lossy;
// only built when the caller opted into reduced precision).
func DotRangeDiagF32(val []float32, runs []DiaRun, ri int, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeDiaG(val, nil, runs, ri, x, lo, hi, unrollLen)
}

// dotRangeDiaG is dotRangeC with the column decoded from the run
// stream; same dispatch as DotRange.
func dotRangeDiaG[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, x []float64, lo, hi, unrollLen int) float64 {
	length := hi - lo
	if length <= 0 {
		return 0
	}
	for int(runs[ri].EndK) <= lo {
		ri++
	}
	if hi <= int(runs[ri].EndK) {
		return dotDiaContigG(vals, pal, x, lo, hi, int(runs[ri].ColMinusK), unrollLen)
	}
	if length < ScalarThreshold {
		runEnd, cmk := int(runs[ri].EndK), int(runs[ri].ColMinusK)
		sum := 0.0
		for k := lo; k < hi; k++ {
			for k >= runEnd {
				ri++
				runEnd, cmk = int(runs[ri].EndK), int(runs[ri].ColMinusK)
			}
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		return sum
	}
	if length < unrollLen {
		return dotDia4(vals, pal, runs, ri, x, lo, hi)
	}
	return dotDia8(vals, pal, runs, ri, x, lo, hi)
}

// dotDia4 mirrors dot4: four accumulators, (a0+a2)+(a1+a3) reduction,
// sequential remainder. Groups of four that sit inside one run take the
// branch-free unit-stride path; a group straddling a run boundary
// decodes its columns one by one into the same lanes.
func dotDia4[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, x []float64, lo, hi int) float64 {
	runEnd, cmk := int(runs[ri].EndK), int(runs[ri].ColMinusK)
	var a0, a1, a2, a3 float64
	k := lo
	for ; k+4 <= hi; k += 4 {
		if k+4 <= runEnd {
			c := cmk + k
			a0 += valLoad(vals, pal, k) * x[c]
			a1 += valLoad(vals, pal, k+1) * x[c+1]
			a2 += valLoad(vals, pal, k+2) * x[c+2]
			a3 += valLoad(vals, pal, k+3) * x[c+3]
		} else {
			var xs [4]float64
			for j := 0; j < 4; j++ {
				for k+j >= runEnd {
					ri++
					runEnd, cmk = int(runs[ri].EndK), int(runs[ri].ColMinusK)
				}
				xs[j] = x[cmk+k+j]
			}
			a0 += valLoad(vals, pal, k) * xs[0]
			a1 += valLoad(vals, pal, k+1) * xs[1]
			a2 += valLoad(vals, pal, k+2) * xs[2]
			a3 += valLoad(vals, pal, k+3) * xs[3]
		}
	}
	sum := (a0 + a2) + (a1 + a3)
	for ; k < hi; k++ {
		for k >= runEnd {
			ri++
			runEnd, cmk = int(runs[ri].EndK), int(runs[ri].ColMinusK)
		}
		sum += valLoad(vals, pal, k) * x[cmk+k]
	}
	return sum
}

// dotDia8 mirrors dot8: eight accumulators, the
// ((a0+a2)+(a1+a3))+((b0+b2)+(b1+b3)) reduction, sequential remainder.
func dotDia8[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, x []float64, lo, hi int) float64 {
	runEnd, cmk := int(runs[ri].EndK), int(runs[ri].ColMinusK)
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := lo
	for ; k+8 <= hi; k += 8 {
		if k+8 <= runEnd {
			c := cmk + k
			a0 += valLoad(vals, pal, k) * x[c]
			a1 += valLoad(vals, pal, k+1) * x[c+1]
			a2 += valLoad(vals, pal, k+2) * x[c+2]
			a3 += valLoad(vals, pal, k+3) * x[c+3]
			b0 += valLoad(vals, pal, k+4) * x[c+4]
			b1 += valLoad(vals, pal, k+5) * x[c+5]
			b2 += valLoad(vals, pal, k+6) * x[c+6]
			b3 += valLoad(vals, pal, k+7) * x[c+7]
		} else {
			var xs [8]float64
			for j := 0; j < 8; j++ {
				for k+j >= runEnd {
					ri++
					runEnd, cmk = int(runs[ri].EndK), int(runs[ri].ColMinusK)
				}
				xs[j] = x[cmk+k+j]
			}
			a0 += valLoad(vals, pal, k) * xs[0]
			a1 += valLoad(vals, pal, k+1) * xs[1]
			a2 += valLoad(vals, pal, k+2) * xs[2]
			a3 += valLoad(vals, pal, k+3) * xs[3]
			b0 += valLoad(vals, pal, k+4) * xs[4]
			b1 += valLoad(vals, pal, k+5) * xs[5]
			b2 += valLoad(vals, pal, k+6) * xs[6]
			b3 += valLoad(vals, pal, k+7) * xs[7]
		}
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < hi; k++ {
		for k >= runEnd {
			ri++
			runEnd, cmk = int(runs[ri].EndK), int(runs[ri].ColMinusK)
		}
		sum += valLoad(vals, pal, k) * x[cmk+k]
	}
	return sum
}

// DotRangeBlockDiag is DotRangeBlock with columns decoded from the run
// stream: sums[j] = DotRangeDiag(val, runs, ri, X[j], lo, hi,
// unrollLen), bit-identical per vector. Single-run fragments take the
// non-generic contiguous path of diag_contig.go.
func DotRangeBlockDiag(val []float64, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	if hi > lo {
		for int(runs[ri].EndK) <= lo {
			ri++
		}
		if hi <= int(runs[ri].EndK) {
			dotBlockContigF64(val, X, sums, lo, hi, int(runs[ri].ColMinusK), unrollLen)
			return
		}
	}
	dotRangeBlockDiaG(val, nil, runs, ri, X, sums, lo, hi, unrollLen)
}

// DotRangeBlockDiagPalette is the palette-value block variant.
func DotRangeBlockDiagPalette(idx []uint8, pal []float64, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockDiaG(idx, pal, runs, ri, X, sums, lo, hi, unrollLen)
}

// DotRangeBlockDiagF32 is the float32-value block variant (lossy).
func DotRangeBlockDiagF32(val []float32, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockDiaG(val, nil, runs, ri, X, sums, lo, hi, unrollLen)
}

// dotRangeBlockDiaG is dotRangeBlockC with decoded columns; same tile
// structure, chain carry, and remainders as block.go. Each vector
// replays the same k range, so the decoder state at the start of a tile
// is saved once and restored per vector.
func dotRangeBlockDiaG[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length <= 0 {
		for j := 0; j < w; j++ {
			sums[j] = 0
		}
		return
	}
	for int(runs[ri].EndK) <= lo {
		ri++
	}
	if hi <= int(runs[ri].EndK) {
		dotBlockDiaContigG(vals, pal, X, sums, lo, hi, int(runs[ri].ColMinusK), unrollLen)
		return
	}
	if length < ScalarThreshold {
		for j := 0; j < w; j++ {
			x := X[j]
			rj, runEnd, cmk := ri, int(runs[ri].EndK), int(runs[ri].ColMinusK)
			sum := 0.0
			for k := lo; k < hi; k++ {
				for k >= runEnd {
					rj++
					runEnd, cmk = int(runs[rj].EndK), int(runs[rj].ColMinusK)
				}
				sum += valLoad(vals, pal, k) * x[cmk+k]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlockDia4(vals, pal, runs, ri, X, sums, lo, hi, w)
		return
	}
	dotBlockDia8(vals, pal, runs, ri, X, sums, lo, hi, w)
}

// diaAdvance moves the decoder past runs ending at or before k and
// returns the updated state.
func diaAdvance(runs []DiaRun, ri, k int) (int, int, int) {
	for int(runs[ri].EndK) <= k {
		ri++
	}
	return ri, int(runs[ri].EndK), int(runs[ri].ColMinusK)
}

// dotBlockDia4 mirrors dotBlock4 with decoded columns.
func dotBlockDia4[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	riT := ri // decoder state at the current tile start (same for every vector)
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		riNext := riT
		for j := 0; j < w; j++ {
			x := X[j]
			rj, runEnd, cmk := riT, int(runs[riT].EndK), int(runs[riT].ColMinusK)
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				if k+4 <= runEnd {
					c := cmk + k
					a0 += valLoad(vals, pal, k) * x[c]
					a1 += valLoad(vals, pal, k+1) * x[c+1]
					a2 += valLoad(vals, pal, k+2) * x[c+2]
					a3 += valLoad(vals, pal, k+3) * x[c+3]
				} else {
					var xs [4]float64
					for jj := 0; jj < 4; jj++ {
						for k+jj >= runEnd {
							rj++
							runEnd, cmk = int(runs[rj].EndK), int(runs[rj].ColMinusK)
						}
						xs[jj] = x[cmk+k+jj]
					}
					a0 += valLoad(vals, pal, k) * xs[0]
					a1 += valLoad(vals, pal, k+1) * xs[1]
					a2 += valLoad(vals, pal, k+2) * xs[2]
					a3 += valLoad(vals, pal, k+3) * xs[3]
				}
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
			riNext = rj
		}
		riT = riNext
	}
	var riR, runEndR, cmkR int
	if k4 < hi {
		riR, runEndR, cmkR = diaAdvance(runs, riT, k4)
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		rj, runEnd, cmk := riR, runEndR, cmkR
		for k := k4; k < hi; k++ {
			for k >= runEnd {
				rj++
				runEnd, cmk = int(runs[rj].EndK), int(runs[rj].ColMinusK)
			}
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		sums[j] = sum
	}
}

// dotBlockDia8 mirrors dotBlock8 with decoded columns.
func dotBlockDia8[V ValSource](vals []V, pal []float64, runs []DiaRun, ri int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	riT := ri
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		riNext := riT
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			rj, runEnd, cmk := riT, int(runs[riT].EndK), int(runs[riT].ColMinusK)
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				if k+8 <= runEnd {
					c := cmk + k
					a0 += valLoad(vals, pal, k) * x[c]
					a1 += valLoad(vals, pal, k+1) * x[c+1]
					a2 += valLoad(vals, pal, k+2) * x[c+2]
					a3 += valLoad(vals, pal, k+3) * x[c+3]
					b0 += valLoad(vals, pal, k+4) * x[c+4]
					b1 += valLoad(vals, pal, k+5) * x[c+5]
					b2 += valLoad(vals, pal, k+6) * x[c+6]
					b3 += valLoad(vals, pal, k+7) * x[c+7]
				} else {
					var xs [8]float64
					for jj := 0; jj < 8; jj++ {
						for k+jj >= runEnd {
							rj++
							runEnd, cmk = int(runs[rj].EndK), int(runs[rj].ColMinusK)
						}
						xs[jj] = x[cmk+k+jj]
					}
					a0 += valLoad(vals, pal, k) * xs[0]
					a1 += valLoad(vals, pal, k+1) * xs[1]
					a2 += valLoad(vals, pal, k+2) * xs[2]
					a3 += valLoad(vals, pal, k+3) * xs[3]
					b0 += valLoad(vals, pal, k+4) * xs[4]
					b1 += valLoad(vals, pal, k+5) * xs[5]
					b2 += valLoad(vals, pal, k+6) * xs[6]
					b3 += valLoad(vals, pal, k+7) * xs[7]
				}
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
			riNext = rj
		}
		riT = riNext
	}
	var riR, runEndR, cmkR int
	if k8 < hi {
		riR, runEndR, cmkR = diaAdvance(runs, riT, k8)
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		rj, runEnd, cmk := riR, runEndR, cmkR
		for k := k8; k < hi; k++ {
			for k >= runEnd {
				rj++
				runEnd, cmk = int(runs[rj].EndK), int(runs[rj].ColMinusK)
			}
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		sums[j] = sum
	}
}
