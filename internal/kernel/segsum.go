package kernel

// Speculative segmented-sum kernels (Liu & Vinter, arXiv:1504.06474,
// adapted to HACSR): instead of the per-fragment walk — one DotRange
// call per row, with the caller loading RowPtr/RowBeginNNZ/Perm and
// clamping against the region end for every row — a core executes a run
// of *whole* rows from a flat []Segment descriptor stream. The row loop
// lives inside the kernel, the short-row path is inlined, and each sum
// scatter-stores straight to its destination row. On power-law matrices
// whose typical row holds only a few nonzeros this removes the dominant
// per-row overhead; rows cut across cores are handled by the caller
// (head/continuation fragments plus a parallel patch, see
// internal/core).
//
// Every segmented kernel is *bit-exact* with the per-row walk it
// replaces: the dispatch thresholds and accumulator chains are exactly
// DotRange's (the straight-line short-row cases below replay DotRange's
// scalar loop add by add, and dot4C/dot8C are the shared unrolled
// bodies), so a whole row produces the same float64 bits either way.

// Segment describes one whole reordered row: its value range in
// original-nnz space (HACSR never physically permutes the value array,
// so consecutive reordered rows are not contiguous and both bounds are
// stored) and the original (destination) row its sum stores to. The
// fields are int32 so a descriptor is 12 bytes — small enough that the
// descriptor stream stays a minor traffic term next to the values —
// which gates segmented execution to matrices with fewer than 2^31
// nonzeros and rows (internal/core checks before building).
type Segment struct {
	K0, K1 int32
	Dst    int32
}

// SegSum executes segs over the []int reference column stream:
// y[s.Dst] = dot(val[s.K0:s.K1], x) per segment, skipping empty
// segments (empty rows are pre-zeroed by the caller). Returns the
// number of non-empty segments processed.
func SegSum(val []float64, col []int, x, y []float64, segs []Segment, unrollLen int) int {
	return segSumC(val, col, nil, x, y, segs, unrollLen)
}

// SegSum32 is SegSum over the u32 absolute column stream.
func SegSum32(val []float64, col []uint32, x, y []float64, segs []Segment, unrollLen int) int {
	return segSumC(val, col, nil, x, y, segs, unrollLen)
}

// SegSum16Delta is SegSum over the u16 delta column stream; bases[i] is
// the delta base column of segs[i]'s row (bases is parallel to segs).
func SegSum16Delta(val []float64, col []uint16, bases []int, x, y []float64, segs []Segment, unrollLen int) int {
	return segSumC(val, col, bases, x, y, segs, unrollLen)
}

// segSumC is the generic segmented body. The per-segment dispatch is
// DotRange's — straight-line scalar under ScalarThreshold, dot4C under
// unrollLen, dot8C above — so each row's chain is bit-identical to the
// fragment walk's.
func segSumC[C ColIndex](val []float64, col []C, bases []int, x, y []float64, segs []Segment, unrollLen int) int {
	done := 0
	for i := range segs {
		s := segs[i]
		lo, hi := int(s.K0), int(s.K1)
		length := hi - lo
		if length <= 0 {
			continue
		}
		base := 0
		if bases != nil {
			base = bases[i]
		}
		var sum float64
		if length < ScalarThreshold {
			// Straight-line short-row cases: the same multiply-accumulate
			// chain as DotRange's scalar loop (each `sum +=` in sequence,
			// so the float64 bits match), without per-element loop
			// bookkeeping — on power-law matrices almost every row lands
			// here, so the row loop overhead is the dominant cost.
			switch length {
			case 1:
				sum += val[lo] * x[base+int(col[lo])]
			case 2:
				sum += val[lo] * x[base+int(col[lo])]
				sum += val[lo+1] * x[base+int(col[lo+1])]
			case 3:
				sum += val[lo] * x[base+int(col[lo])]
				sum += val[lo+1] * x[base+int(col[lo+1])]
				sum += val[lo+2] * x[base+int(col[lo+2])]
			default: // only reached if ScalarThreshold grows past 4
				for k := lo; k < hi; k++ {
					sum += val[k] * x[base+int(col[k])]
				}
			}
		} else if length < unrollLen {
			sum = dot4C(val, col, base, x, lo, hi)
		} else {
			sum = dot8C(val, col, base, x, lo, hi)
		}
		y[s.Dst] = sum
		done++
	}
	return done
}

// SegSumBlock is the register-blocked segmented kernel over the []int
// reference stream: Y[j][s.Dst] = dot(val[s.K0:s.K1], X[j]) for j in
// [0, len(sums)), bit-identical per vector to SegSum. sums is the
// caller's pooled per-core block buffer (its length selects the block
// width). Returns the number of non-empty segments processed.
func SegSumBlock(val []float64, col []int, X, Y [][]float64, sums []float64, segs []Segment, unrollLen int) int {
	return segSumBlockC(val, col, nil, X, Y, sums, segs, unrollLen)
}

// SegSumBlock32 is SegSumBlock over the u32 absolute column stream.
func SegSumBlock32(val []float64, col []uint32, X, Y [][]float64, sums []float64, segs []Segment, unrollLen int) int {
	return segSumBlockC(val, col, nil, X, Y, sums, segs, unrollLen)
}

// SegSumBlock16Delta is SegSumBlock over the u16 delta column stream
// with per-segment bases (parallel to segs).
func SegSumBlock16Delta(val []float64, col []uint16, bases []int, X, Y [][]float64, sums []float64, segs []Segment, unrollLen int) int {
	return segSumBlockC(val, col, bases, X, Y, sums, segs, unrollLen)
}

// segSumBlockC mirrors the batch fragment walk's block dispatch: a
// width-1 block takes the single-vector path (as ComputeBatch does for
// its last odd vector), wider blocks take dotRangeBlockC — both
// bit-identical per vector to the single-vector kernels.
func segSumBlockC[C ColIndex](val []float64, col []C, bases []int, X, Y [][]float64, sums []float64, segs []Segment, unrollLen int) int {
	w := len(sums)
	done := 0
	for i := range segs {
		s := segs[i]
		lo, hi := int(s.K0), int(s.K1)
		if hi <= lo {
			continue
		}
		base := 0
		if bases != nil {
			base = bases[i]
		}
		if w == 1 {
			Y[0][s.Dst] = dotRangeC(val, col, base, X[0], lo, hi, unrollLen)
		} else {
			dotRangeBlockC(val, col, base, X, sums, lo, hi, unrollLen)
			for j := 0; j < w; j++ {
				Y[j][s.Dst] = sums[j]
			}
		}
		done++
	}
	return done
}
