package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blockKernels maps each batch kernel to its block width.
var blockKernels = []struct {
	name string
	nv   int
	f    func(val []float64, col []int, X [][]float64, sums []float64, lo, hi, unrollLen int)
}{
	{"DotRangeBlock2", 2, DotRangeBlock2},
	{"DotRangeBlock4", 4, DotRangeBlock4},
	{"DotRangeBlock8", 8, DotRangeBlock8},
}

func randomBatch(r *rand.Rand, nv, cols int) [][]float64 {
	X := make([][]float64, nv)
	for v := range X {
		X[v] = make([]float64, cols)
		for i := range X[v] {
			X[v][i] = r.NormFloat64()
		}
	}
	return X
}

// Every block kernel must agree with nv independent single-accumulator
// reference dot products within reassociation tolerance, on every dispatch
// branch and remainder count.
func TestBlockKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	val, col, _ := randomData(r, 2048, 512)
	X := randomBatch(r, MaxBlock, 512)
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000}
	sums := make([]float64, MaxBlock)
	for _, bk := range blockKernels {
		for _, l := range lengths {
			for _, lo := range []int{0, 13} {
				for _, unroll := range []int{4, 64, 1 << 30} {
					hi := lo + l
					bk.f(val, col, X, sums, lo, hi, unroll)
					for v := 0; v < bk.nv; v++ {
						ref := DotRangeSimple(val, col, X[v], lo, hi)
						if math.Abs(sums[v]-ref) > 1e-9*(1+math.Abs(ref)) {
							t.Fatalf("%s len %d lo %d unroll %d vec %d: got %v want %v",
								bk.name, l, lo, unroll, v, sums[v], ref)
						}
					}
				}
			}
		}
	}
}

// Property: for arbitrary ranges the block kernels stay within numerical
// tolerance of the per-vector reference.
func TestBlockKernelsProperty(t *testing.T) {
	for _, bk := range blockKernels {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			f := func(seed int64, loRaw, hiRaw uint16) bool {
				r := rand.New(rand.NewSource(seed))
				val, col, _ := randomData(r, 1024, 128)
				X := randomBatch(r, bk.nv, 128)
				lo := int(loRaw) % 1024
				hi := lo + int(hiRaw)%(1024-lo+1)
				sums := make([]float64, bk.nv)
				bk.f(val, col, X, sums, lo, hi, DefaultUnrollThreshold)
				for v := 0; v < bk.nv; v++ {
					ref := DotRangeSimple(val, col, X[v], lo, hi)
					if math.Abs(sums[v]-ref) > 1e-9*(1+math.Abs(ref)) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The dispatch threshold only selects among numerically equivalent paths.
func TestBlockKernelThresholdDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	val, col, _ := randomData(r, 256, 64)
	X := randomBatch(r, MaxBlock, 64)
	for _, bk := range blockKernels {
		a := make([]float64, bk.nv)
		b := make([]float64, bk.nv)
		bk.f(val, col, X, a, 0, 100, 1<<30) // forces the mid path
		bk.f(val, col, X, b, 0, 100, 4)     // forces the long path
		for v := 0; v < bk.nv; v++ {
			if math.Abs(a[v]-b[v]) > 1e-9*(1+math.Abs(a[v])) {
				t.Fatalf("%s vec %d: mid %v vs long %v", bk.name, v, a[v], b[v])
			}
		}
	}
}

// BenchmarkDotRangeBlock8 prices the fused 8-vector pass against eight
// separate DotRange passes over the same stream.
func BenchmarkDotRangeBlock8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	val, col, _ := randomData(r, 1<<16, 1<<14)
	X := randomBatch(r, 8, 1<<14)
	sums := make([]float64, 8)
	b.Run("fused", func(b *testing.B) {
		b.SetBytes(int64(12 * (1 << 16)))
		for i := 0; i < b.N; i++ {
			DotRangeBlock8(val, col, X, sums, 0, 1<<16, DefaultUnrollThreshold)
		}
	})
	b.Run("repeated", func(b *testing.B) {
		b.SetBytes(int64(12 * (1 << 16)))
		for i := 0; i < b.N; i++ {
			for v := 0; v < 8; v++ {
				sums[v] = DotRange(val, col, X[v], 0, 1<<16, DefaultUnrollThreshold)
			}
		}
	})
}
