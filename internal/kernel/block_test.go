package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBatch(r *rand.Rand, nv, cols int) [][]float64 {
	X := make([][]float64, nv)
	for v := range X {
		X[v] = make([]float64, cols)
		for i := range X[v] {
			X[v][i] = r.NormFloat64()
		}
	}
	return X
}

// The block kernel's contract is bitwise: every width, dispatch branch
// and remainder count must reproduce the single-vector DotRange exactly,
// because the serving batcher promises responses independent of how many
// neighbours a request was coalesced with.
func TestBlockKernelBitIdenticalToDotRange(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	val, col, _ := randomData(r, 2048, 512)
	X := randomBatch(r, MaxBlock, 512)
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000}
	sums := make([]float64, MaxBlock)
	for w := 1; w <= MaxBlock; w++ {
		for _, l := range lengths {
			for _, lo := range []int{0, 13} {
				for _, unroll := range []int{4, 64, 1 << 30} {
					hi := lo + l
					DotRangeBlock(val, col, X, sums[:w], lo, hi, unroll)
					for v := 0; v < w; v++ {
						ref := DotRange(val, col, X[v], lo, hi, unroll)
						if sums[v] != ref {
							t.Fatalf("w %d len %d lo %d unroll %d vec %d: got %v want %v (bitwise)",
								w, l, lo, unroll, v, sums[v], ref)
						}
					}
				}
			}
		}
	}
}

// The block kernel must also stay within reassociation tolerance of the
// single-accumulator reference (the same bound DotRange itself satisfies).
func TestBlockKernelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	val, col, _ := randomData(r, 2048, 512)
	X := randomBatch(r, MaxBlock, 512)
	sums := make([]float64, MaxBlock)
	for _, l := range []int{0, 3, 9, 65, 1000} {
		DotRangeBlock(val, col, X, sums, 7, 7+l, DefaultUnrollThreshold)
		for v := 0; v < MaxBlock; v++ {
			ref := DotRangeSimple(val, col, X[v], 7, 7+l)
			if math.Abs(sums[v]-ref) > 1e-9*(1+math.Abs(ref)) {
				t.Fatalf("len %d vec %d: got %v want %v", l, v, sums[v], ref)
			}
		}
	}
}

// Property: for arbitrary ranges and widths the block kernel is bitwise
// equal to per-vector DotRange.
func TestBlockKernelProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint16, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		val, col, _ := randomData(r, 1024, 128)
		w := 1 + int(wRaw)%MaxBlock
		X := randomBatch(r, w, 128)
		lo := int(loRaw) % 1024
		hi := lo + int(hiRaw)%(1024-lo+1)
		sums := make([]float64, w)
		DotRangeBlock(val, col, X, sums, lo, hi, DefaultUnrollThreshold)
		for v := 0; v < w; v++ {
			if sums[v] != DotRange(val, col, X[v], lo, hi, DefaultUnrollThreshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The dispatch threshold only selects among numerically equivalent paths.
func TestBlockKernelThresholdDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	val, col, _ := randomData(r, 256, 64)
	X := randomBatch(r, MaxBlock, 64)
	a := make([]float64, MaxBlock)
	b := make([]float64, MaxBlock)
	DotRangeBlock(val, col, X, a, 0, 100, 1<<30) // forces the mid path
	DotRangeBlock(val, col, X, b, 0, 100, 4)     // forces the long path
	for v := 0; v < MaxBlock; v++ {
		if math.Abs(a[v]-b[v]) > 1e-9*(1+math.Abs(a[v])) {
			t.Fatalf("vec %d: mid %v vs long %v", v, a[v], b[v])
		}
	}
}

// BenchmarkDotRangeBlock prices the fused 8-vector pass against eight
// separate DotRange passes over the same stream.
func BenchmarkDotRangeBlock(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	val, col, _ := randomData(r, 1<<16, 1<<14)
	X := randomBatch(r, 8, 1<<14)
	sums := make([]float64, 8)
	b.Run("fused", func(b *testing.B) {
		b.SetBytes(int64(12 * (1 << 16)))
		for i := 0; i < b.N; i++ {
			DotRangeBlock(val, col, X, sums, 0, 1<<16, DefaultUnrollThreshold)
		}
	})
	b.Run("repeated", func(b *testing.B) {
		b.SetBytes(int64(12 * (1 << 16)))
		for i := 0; i < b.N; i++ {
			for v := 0; v < 8; v++ {
				sums[v] = DotRange(val, col, X[v], 0, 1<<16, DefaultUnrollThreshold)
			}
		}
	})
}
