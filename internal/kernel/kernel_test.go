package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomData(r *rand.Rand, n, cols int) (val []float64, col []int, x []float64) {
	val = make([]float64, n)
	col = make([]int, n)
	x = make([]float64, cols)
	for i := range val {
		val[i] = r.NormFloat64()
		col[i] = r.Intn(cols)
	}
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return
}

func TestDotRangeEmpty(t *testing.T) {
	if got := DotRange(nil, nil, nil, 3, 3, 64); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
	if got := DotRange(nil, nil, nil, 5, 3, 64); got != 0 {
		t.Fatalf("inverted range = %v", got)
	}
}

// Each path (scalar, 4-wide, 8-wide, remainders) must agree with the
// single-accumulator reference within reassociation tolerance.
func TestAllPathsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	val, col, x := randomData(r, 2048, 512)
	// Lengths covering every dispatch branch and remainder count.
	lengths := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000}
	for _, l := range lengths {
		for _, lo := range []int{0, 13} {
			hi := lo + l
			ref := DotRangeSimple(val, col, x, lo, hi)
			got := DotRange(val, col, x, lo, hi, 64)
			if math.Abs(got-ref) > 1e-9*(1+math.Abs(ref)) {
				t.Fatalf("len %d lo %d: got %v want %v", l, lo, got, ref)
			}
		}
	}
}

func TestUnrollThresholdDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	val, col, x := randomData(r, 256, 64)
	// Same range priced through both vector paths must agree.
	a := DotRange(val, col, x, 0, 100, 1<<30) // forces 4-wide
	b := DotRange(val, col, x, 0, 100, 4)     // forces 8-wide
	if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
		t.Fatalf("4-wide %v vs 8-wide %v", a, b)
	}
}

// Property: DotRange is within numerical tolerance of the reference for
// arbitrary ranges.
func TestDotRangeProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		val, col, x := randomData(r, 1024, 128)
		lo := int(loRaw) % 1024
		hi := lo + int(hiRaw)%(1024-lo+1)
		ref := DotRangeSimple(val, col, x, lo, hi)
		got := DotRange(val, col, x, lo, hi, DefaultUnrollThreshold)
		return math.Abs(got-ref) <= 1e-9*(1+math.Abs(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDotRangeShort(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	val, col, x := randomData(r, 1<<16, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotRange(val, col, x, 0, 8, DefaultUnrollThreshold)
	}
}

func BenchmarkDotRangeLong(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	val, col, x := randomData(r, 1<<16, 1<<14)
	b.SetBytes(int64(12 * (1 << 16)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotRange(val, col, x, 0, 1<<16, DefaultUnrollThreshold)
	}
}
