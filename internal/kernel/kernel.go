// Package kernel provides the inner dot-product kernels of Algorithm 6.
// The paper uses AVX2 intrinsics (_mm256_loadu_pd / _mm256_set_pd /
// _mm256_fmadd_pd) with an extra level of loop unrolling for long rows; Go
// has no intrinsics, so the kernels keep the exact algorithmic structure —
// a scalar path for rows shorter than 4, a 4-wide accumulator path, an
// 8-wide doubly-unrolled path for rows past the Len threshold, and a
// scalar remainder loop — using independent accumulators that modern
// compilers and the cost model treat as SIMD lanes.
package kernel

// ScalarThreshold is Algorithm 6's `length < 4` cutoff below which the
// plain scalar loop runs.
const ScalarThreshold = 4

// DefaultUnrollThreshold is the Len threshold above which the 8-wide
// doubly-unrolled path is used. The paper derives Len per core type; the
// executors pass their own values.
const DefaultUnrollThreshold = 64

// DotRange computes sum(val[k]*x[col[k]]) for k in [lo, hi), dispatching
// between the scalar, 4-wide, and 8-wide paths exactly as Algorithm 6.
func DotRange(val []float64, col []int, x []float64, lo, hi, unrollLen int) float64 {
	length := hi - lo
	if length <= 0 {
		return 0
	}
	if length < ScalarThreshold {
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += val[k] * x[col[k]]
		}
		return sum
	}
	if length < unrollLen {
		return dot4(val, col, x, lo, hi)
	}
	return dot8(val, col, x, lo, hi)
}

// dot4 is the 4-accumulator path: one emulated 256-bit FMA per step.
func dot4(val []float64, col []int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3 float64
	k := lo
	for ; k+4 <= hi; k += 4 {
		a0 += val[k] * x[col[k]]
		a1 += val[k+1] * x[col[k+1]]
		a2 += val[k+2] * x[col[k+2]]
		a3 += val[k+3] * x[col[k+3]]
	}
	// _mm256_hadd_pd equivalent.
	sum := (a0 + a2) + (a1 + a3)
	for ; k < hi; k++ {
		sum += val[k] * x[col[k]]
	}
	return sum
}

// dot8 is the doubly-unrolled path (Algorithm 6's "repeat the previous
// four lines" for rows past Len).
func dot8(val []float64, col []int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := lo
	for ; k+8 <= hi; k += 8 {
		a0 += val[k] * x[col[k]]
		a1 += val[k+1] * x[col[k+1]]
		a2 += val[k+2] * x[col[k+2]]
		a3 += val[k+3] * x[col[k+3]]
		b0 += val[k+4] * x[col[k+4]]
		b1 += val[k+5] * x[col[k+5]]
		b2 += val[k+6] * x[col[k+6]]
		b3 += val[k+7] * x[col[k+7]]
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < hi; k++ {
		sum += val[k] * x[col[k]]
	}
	return sum
}

// DotRangeSimple is the reference single-accumulator loop, used by tests
// to bound the floating-point reassociation error of the unrolled paths.
func DotRangeSimple(val []float64, col []int, x []float64, lo, hi int) float64 {
	sum := 0.0
	for k := lo; k < hi; k++ {
		sum += val[k] * x[col[k]]
	}
	return sum
}
