package kernel

// Contiguous fast paths for the diagonal-run kernels. On banded and
// stencil matrices almost every row fragment lies inside a single run,
// so the descriptor degenerates to "a contiguous dot product at column
// offset ColMinusK": no run-boundary checks inside the loop, no column
// loads at all, and unit-stride access on both operands. The entry
// points in diag.go detect that case after skipping leading runs and
// route here; multi-run fragments keep the general decoder.
//
// The float64 bodies are deliberately non-generic: the run-walk kernels
// read values through the generic valLoad (whose palette-nil branch the
// compiler cannot hoist), and on short stencil rows that per-element
// branch plus the per-group run check is exactly the overhead that made
// the descriptor stream slower than u32 despite moving a third of the
// bytes. Chain assignment, reduction trees, and remainders mirror
// dot4/dot8/dotBlock4/dotBlock8 statement for statement, so every
// result stays bit-identical to DotRange on the decoded columns.

// dotContigF64 computes sum(val[k]*x[cmk+k]) for k in [lo, hi) with
// DotRange's scalar/4-wide/8-wide dispatch.
func dotContigF64(val, x []float64, lo, hi, cmk, unrollLen int) float64 {
	length := hi - lo
	if length < ScalarThreshold {
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += val[k] * x[cmk+k]
		}
		return sum
	}
	if length < unrollLen {
		return dotContig4F64(val, x, lo, hi, cmk)
	}
	return dotContig8F64(val, x, lo, hi, cmk)
}

// dotContig4F64 mirrors dot4: four accumulators, (a0+a2)+(a1+a3)
// reduction, sequential remainder. Both operands are re-sliced to the
// fragment so the loop bodies run bounds-check free.
func dotContig4F64(val, x []float64, lo, hi, cmk int) float64 {
	v := val[lo:hi]
	xs := x[cmk+lo : cmk+hi]
	xs = xs[:len(v)]
	var a0, a1, a2, a3 float64
	k := 0
	for ; k+4 <= len(v); k += 4 {
		a0 += v[k] * xs[k]
		a1 += v[k+1] * xs[k+1]
		a2 += v[k+2] * xs[k+2]
		a3 += v[k+3] * xs[k+3]
	}
	sum := (a0 + a2) + (a1 + a3)
	for ; k < len(v); k++ {
		sum += v[k] * xs[k]
	}
	return sum
}

// dotContig8F64 mirrors dot8: eight accumulators, the
// ((a0+a2)+(a1+a3))+((b0+b2)+(b1+b3)) reduction, sequential remainder,
// over the same bounds-check-free re-sliced operands as dotContig4F64.
func dotContig8F64(val, x []float64, lo, hi, cmk int) float64 {
	v := val[lo:hi]
	xs := x[cmk+lo : cmk+hi]
	xs = xs[:len(v)]
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := 0
	for ; k+8 <= len(v); k += 8 {
		a0 += v[k] * xs[k]
		a1 += v[k+1] * xs[k+1]
		a2 += v[k+2] * xs[k+2]
		a3 += v[k+3] * xs[k+3]
		b0 += v[k+4] * xs[k+4]
		b1 += v[k+5] * xs[k+5]
		b2 += v[k+6] * xs[k+6]
		b3 += v[k+7] * xs[k+7]
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < len(v); k++ {
		sum += v[k] * xs[k]
	}
	return sum
}

// dotDiaContigG is dotContigF64 with the value load abstracted through
// valLoad, serving single-run fragments of the palette and float32
// value streams.
func dotDiaContigG[V ValSource](vals []V, pal []float64, x []float64, lo, hi, cmk, unrollLen int) float64 {
	length := hi - lo
	if length < ScalarThreshold {
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		return sum
	}
	if length < unrollLen {
		return dotDiaContig4G(vals, pal, x, lo, hi, cmk)
	}
	return dotDiaContig8G(vals, pal, x, lo, hi, cmk)
}

// dotDiaContig4G mirrors dot4 with valLoad operands.
func dotDiaContig4G[V ValSource](vals []V, pal []float64, x []float64, lo, hi, cmk int) float64 {
	var a0, a1, a2, a3 float64
	k := lo
	for ; k+4 <= hi; k += 4 {
		c := cmk + k
		a0 += valLoad(vals, pal, k) * x[c]
		a1 += valLoad(vals, pal, k+1) * x[c+1]
		a2 += valLoad(vals, pal, k+2) * x[c+2]
		a3 += valLoad(vals, pal, k+3) * x[c+3]
	}
	sum := (a0 + a2) + (a1 + a3)
	for ; k < hi; k++ {
		sum += valLoad(vals, pal, k) * x[cmk+k]
	}
	return sum
}

// dotDiaContig8G mirrors dot8 with valLoad operands.
func dotDiaContig8G[V ValSource](vals []V, pal []float64, x []float64, lo, hi, cmk int) float64 {
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := lo
	for ; k+8 <= hi; k += 8 {
		c := cmk + k
		a0 += valLoad(vals, pal, k) * x[c]
		a1 += valLoad(vals, pal, k+1) * x[c+1]
		a2 += valLoad(vals, pal, k+2) * x[c+2]
		a3 += valLoad(vals, pal, k+3) * x[c+3]
		b0 += valLoad(vals, pal, k+4) * x[c+4]
		b1 += valLoad(vals, pal, k+5) * x[c+5]
		b2 += valLoad(vals, pal, k+6) * x[c+6]
		b3 += valLoad(vals, pal, k+7) * x[c+7]
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < hi; k++ {
		sum += valLoad(vals, pal, k) * x[cmk+k]
	}
	return sum
}

// dotBlockContigF64 is DotRangeBlock over a single contiguous run:
// sums[j] = dotContigF64(val, X[j], lo, hi, cmk, unrollLen), with the
// same tile structure and chain carry as dotBlock4/dotBlock8.
func dotBlockContigF64(val []float64, X [][]float64, sums []float64, lo, hi, cmk, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length < ScalarThreshold {
		for j := 0; j < w; j++ {
			x := X[j]
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += val[k] * x[cmk+k]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlockContig4F64(val, X, sums, lo, hi, cmk, w)
		return
	}
	dotBlockContig8F64(val, X, sums, lo, hi, cmk, w)
}

// dotBlockContig4F64 mirrors dotBlock4 with contiguous columns.
func dotBlockContig4F64(val []float64, X [][]float64, sums []float64, lo, hi, cmk, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				c := cmk + k
				a0 += val[k] * x[c]
				a1 += val[k+1] * x[c+1]
				a2 += val[k+2] * x[c+2]
				a3 += val[k+3] * x[c+3]
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		for k := k4; k < hi; k++ {
			sum += val[k] * x[cmk+k]
		}
		sums[j] = sum
	}
}

// dotBlockContig8F64 mirrors dotBlock8 with contiguous columns.
func dotBlockContig8F64(val []float64, X [][]float64, sums []float64, lo, hi, cmk, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				c := cmk + k
				a0 += val[k] * x[c]
				a1 += val[k+1] * x[c+1]
				a2 += val[k+2] * x[c+2]
				a3 += val[k+3] * x[c+3]
				b0 += val[k+4] * x[c+4]
				b1 += val[k+5] * x[c+5]
				b2 += val[k+6] * x[c+6]
				b3 += val[k+7] * x[c+7]
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		for k := k8; k < hi; k++ {
			sum += val[k] * x[cmk+k]
		}
		sums[j] = sum
	}
}

// dotBlockDiaContigG is dotBlockContigF64 with valLoad operands, for
// single-run fragments of the palette and float32 streams under the
// batch kernel. The tile/chain structure is identical, so each sums[j]
// stays bit-identical to the single-vector contiguous kernel.
func dotBlockDiaContigG[V ValSource](vals []V, pal []float64, X [][]float64, sums []float64, lo, hi, cmk, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length < ScalarThreshold {
		for j := 0; j < w; j++ {
			x := X[j]
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += valLoad(vals, pal, k) * x[cmk+k]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlockDiaContig4G(vals, pal, X, sums, lo, hi, cmk, w)
		return
	}
	dotBlockDiaContig8G(vals, pal, X, sums, lo, hi, cmk, w)
}

// dotBlockDiaContig4G mirrors dotBlock4 with valLoad operands.
func dotBlockDiaContig4G[V ValSource](vals []V, pal []float64, X [][]float64, sums []float64, lo, hi, cmk, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				c := cmk + k
				a0 += valLoad(vals, pal, k) * x[c]
				a1 += valLoad(vals, pal, k+1) * x[c+1]
				a2 += valLoad(vals, pal, k+2) * x[c+2]
				a3 += valLoad(vals, pal, k+3) * x[c+3]
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		for k := k4; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		sums[j] = sum
	}
}

// dotBlockDiaContig8G mirrors dotBlock8 with valLoad operands.
func dotBlockDiaContig8G[V ValSource](vals []V, pal []float64, X [][]float64, sums []float64, lo, hi, cmk, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				c := cmk + k
				a0 += valLoad(vals, pal, k) * x[c]
				a1 += valLoad(vals, pal, k+1) * x[c+1]
				a2 += valLoad(vals, pal, k+2) * x[c+2]
				a3 += valLoad(vals, pal, k+3) * x[c+3]
				b0 += valLoad(vals, pal, k+4) * x[c+4]
				b1 += valLoad(vals, pal, k+5) * x[c+5]
				b2 += valLoad(vals, pal, k+6) * x[c+6]
				b3 += valLoad(vals, pal, k+7) * x[c+7]
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		for k := k8; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[cmk+k]
		}
		sums[j] = sum
	}
}
