package kernel

// Register-blocked batch kernel: the val/colIdx index stream is walked in
// L1-resident tiles, each tile feeding every x vector of the block before
// the next tile is touched. Batch SpMV is bound by the same streams as
// the single-vector kernel (Algorithm 6), so re-reading each tile from L1
// for the other vectors of the block divides the stream's DRAM traffic by
// the block width — the lever block Krylov solvers and multi-query
// workloads rely on — while the inner loops keep their partial sums in
// the same register accumulator chains as DotRange.
//
// That makes the kernel *bit-exact*: for every vector j the chains are
// assigned, carried across tiles, reduced and finished by the sequential
// remainder exactly as DotRange's scalar/4-wide/8-wide dispatch, so
//
//	DotRangeBlock(val, col, X, sums, lo, hi, un)
//
// stores exactly DotRange(val, col, X[j], lo, hi, un) into sums[j],
// bit-for-bit. The serving layer's dynamic batcher depends on this: a
// request must produce the same float64 bits whether it was computed
// alone or coalesced with up to MaxBlock-1 neighbours.

// MaxBlock is the widest vector block the batch kernel processes in one
// call; ComputeBatch tiles larger batches into MaxBlock-wide pieces.
const MaxBlock = 8

// blockTile is the index-stream tile the block kernel revisits once per
// vector: 1024 nonzeros = 16KB of values + indices, comfortably inside a
// 32KB L1D alongside the gathered x lines. It is a multiple of 8 so tile
// boundaries never disturb the accumulator-chain assignment.
const blockTile = 1024

// DotRangeBlock computes sums[j] = DotRange(val, col, X[j], lo, hi,
// unrollLen) for j in [0, len(sums)), reading the index stream from cache
// for all but the first vector of the block. len(X) must be at least
// len(sums), and len(sums) must be between 1 and MaxBlock. Every result
// is bit-identical to the corresponding single-vector DotRange call.
func DotRangeBlock(val []float64, col []int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length <= 0 {
		for j := 0; j < w; j++ {
			sums[j] = 0
		}
		return
	}
	if length < ScalarThreshold {
		// Scalar path: a single sequential chain per vector, exactly
		// DotRange's short-row loop.
		for j := 0; j < w; j++ {
			x := X[j]
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += val[k] * x[col[k]]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlock4(val, col, X, sums, lo, hi, w)
		return
	}
	dotBlock8(val, col, X, sums, lo, hi, w)
}

// dotBlock4 mirrors dot4: four accumulator chains per vector (chain i
// takes the nonzeros at positions lo+i, lo+i+4, ...), the (a0+a2)+(a1+a3)
// reduction, then the sequential remainder. Chain values are carried
// across tiles in acc, which preserves each chain's strictly sequential
// accumulation order.
func dotBlock4(val []float64, col []int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				a0 += val[k] * x[col[k]]
				a1 += val[k+1] * x[col[k+1]]
				a2 += val[k+2] * x[col[k+2]]
				a3 += val[k+3] * x[col[k+3]]
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		for k := k4; k < hi; k++ {
			sum += val[k] * x[col[k]]
		}
		sums[j] = sum
	}
}

// dotBlock8 mirrors dot8: eight accumulator chains per vector, the
// ((a0+a2)+(a1+a3))+((b0+b2)+(b1+b3)) reduction, then the sequential
// remainder, with chain values carried across tiles as in dotBlock4.
func dotBlock8(val []float64, col []int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				a0 += val[k] * x[col[k]]
				a1 += val[k+1] * x[col[k+1]]
				a2 += val[k+2] * x[col[k+2]]
				a3 += val[k+3] * x[col[k+3]]
				b0 += val[k+4] * x[col[k+4]]
				b1 += val[k+5] * x[col[k+5]]
				b2 += val[k+6] * x[col[k+6]]
				b3 += val[k+7] * x[col[k+7]]
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		for k := k8; k < hi; k++ {
			sum += val[k] * x[col[k]]
		}
		sums[j] = sum
	}
}
