package kernel

// Register-blocked batch kernels: one pass over the val/colIdx index
// stream feeding several x vectors at once. Batch SpMV is bound by the
// same streams as the single-vector kernel (Algorithm 6), so reusing each
// loaded (value, column) pair across a block of vectors divides the index
// traffic by the block width — the lever block Krylov solvers and
// multi-query workloads rely on. Each kernel keeps its partial sums in a
// fixed set of scalar accumulators (register-resident on amd64/arm64) and
// dispatches on row length exactly like DotRange: a plain loop below
// ScalarThreshold, a 4-FMA-per-step mid path, and an 8-FMA-per-step path
// once the fragment passes the per-core unroll threshold, with a strided
// remainder loop picking up the tail nonzeros for every vector.

// MaxBlock is the widest vector block the batch kernels process in one
// call; ComputeBatch tiles larger batches into MaxBlock/4/2/1 pieces.
const MaxBlock = 8

// DotRangeBlock2 computes sums[j] = sum(val[k]*X[j][col[k]]) for k in
// [lo, hi) and j in {0, 1}, walking the index stream once.
func DotRangeBlock2(val []float64, col []int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	x0, x1 := X[0], X[1]
	length := hi - lo
	if length <= 0 {
		sums[0], sums[1] = 0, 0
		return
	}
	if length < ScalarThreshold {
		var s0, s1 float64
		for k := lo; k < hi; k++ {
			a, c := val[k], col[k]
			s0 += a * x0[c]
			s1 += a * x1[c]
		}
		sums[0], sums[1] = s0, s1
		return
	}
	k := lo
	var s0, s1 float64
	if length < unrollLen {
		// Mid path: two k-steps per iteration, 4 independent chains.
		var a0, a1, b0, b1 float64
		for ; k+2 <= hi; k += 2 {
			v0, c0 := val[k], col[k]
			v1, c1 := val[k+1], col[k+1]
			a0 += v0 * x0[c0]
			a1 += v1 * x0[c1]
			b0 += v0 * x1[c0]
			b1 += v1 * x1[c1]
		}
		s0, s1 = a0+a1, b0+b1
	} else {
		// Long path: four k-steps per iteration, 8 independent chains.
		var a0, a1, a2, a3, b0, b1, b2, b3 float64
		for ; k+4 <= hi; k += 4 {
			v0, c0 := val[k], col[k]
			v1, c1 := val[k+1], col[k+1]
			v2, c2 := val[k+2], col[k+2]
			v3, c3 := val[k+3], col[k+3]
			a0 += v0 * x0[c0]
			a1 += v1 * x0[c1]
			a2 += v2 * x0[c2]
			a3 += v3 * x0[c3]
			b0 += v0 * x1[c0]
			b1 += v1 * x1[c1]
			b2 += v2 * x1[c2]
			b3 += v3 * x1[c3]
		}
		s0, s1 = (a0+a2)+(a1+a3), (b0+b2)+(b1+b3)
	}
	// Strided remainder: one k at a time, still serving both vectors.
	for ; k < hi; k++ {
		a, c := val[k], col[k]
		s0 += a * x0[c]
		s1 += a * x1[c]
	}
	sums[0], sums[1] = s0, s1
}

// DotRangeBlock4 computes sums[j] = sum(val[k]*X[j][col[k]]) for k in
// [lo, hi) and j in 0..3, walking the index stream once. The vector block
// itself supplies four independent FMA chains per k-step; fragments past
// the unroll threshold additionally take two k-steps per iteration.
func DotRangeBlock4(val []float64, col []int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	x0, x1, x2, x3 := X[0], X[1], X[2], X[3]
	length := hi - lo
	if length <= 0 {
		sums[0], sums[1], sums[2], sums[3] = 0, 0, 0, 0
		return
	}
	var s0, s1, s2, s3 float64
	k := lo
	if length >= ScalarThreshold && length >= unrollLen {
		// Long path: two k-steps per iteration, 8 independent chains.
		var a0, a1, a2, a3, b0, b1, b2, b3 float64
		for ; k+2 <= hi; k += 2 {
			v0, c0 := val[k], col[k]
			v1, c1 := val[k+1], col[k+1]
			a0 += v0 * x0[c0]
			a1 += v0 * x1[c0]
			a2 += v0 * x2[c0]
			a3 += v0 * x3[c0]
			b0 += v1 * x0[c1]
			b1 += v1 * x1[c1]
			b2 += v1 * x2[c1]
			b3 += v1 * x3[c1]
		}
		s0, s1, s2, s3 = a0+b0, a1+b1, a2+b2, a3+b3
	}
	for ; k < hi; k++ {
		a, c := val[k], col[k]
		s0 += a * x0[c]
		s1 += a * x1[c]
		s2 += a * x2[c]
		s3 += a * x3[c]
	}
	sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
}

// DotRangeBlock8 computes sums[j] = sum(val[k]*X[j][col[k]]) for k in
// [lo, hi) and j in 0..7, walking the index stream once. Eight vectors
// already saturate the FMA ports of one k-step (the 8-wide shape DotRange
// reaches by unrolling k); fragments past the unroll threshold share each
// pair of loaded (value, column) operands across two k-steps to halve the
// loop overhead.
func DotRangeBlock8(val []float64, col []int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	x0, x1, x2, x3 := X[0], X[1], X[2], X[3]
	x4, x5, x6, x7 := X[4], X[5], X[6], X[7]
	length := hi - lo
	if length <= 0 {
		for j := 0; j < 8; j++ {
			sums[j] = 0
		}
		return
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	k := lo
	if length >= ScalarThreshold && length >= unrollLen {
		for ; k+2 <= hi; k += 2 {
			v0, c0 := val[k], col[k]
			v1, c1 := val[k+1], col[k+1]
			s0 += v0*x0[c0] + v1*x0[c1]
			s1 += v0*x1[c0] + v1*x1[c1]
			s2 += v0*x2[c0] + v1*x2[c1]
			s3 += v0*x3[c0] + v1*x3[c1]
			s4 += v0*x4[c0] + v1*x4[c1]
			s5 += v0*x5[c0] + v1*x5[c1]
			s6 += v0*x6[c0] + v1*x6[c1]
			s7 += v0*x7[c0] + v1*x7[c1]
		}
	}
	for ; k < hi; k++ {
		a, c := val[k], col[k]
		s0 += a * x0[c]
		s1 += a * x1[c]
		s2 += a * x2[c]
		s3 += a * x3[c]
		s4 += a * x4[c]
		s5 += a * x5[c]
		s6 += a * x6[c]
		s7 += a * x7[c]
	}
	sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
	sums[4], sums[5], sums[6], sums[7] = s4, s5, s6, s7
}
