package kernel

// Compressed-index kernels: the same Algorithm 6 dot products walking a
// uint32 or uint16-delta column stream instead of []int. SpMV is stream
// bound, and the index stream is half the traffic of the val stream at
// 8 bytes per nonzero; narrowing it to 4 (u32 absolute) or 2 (u16 delta
// from a per-row base column) bytes cuts per-nnz stream bytes from 16 to
// 12 or 10 — see DESIGN.md "Memory-traffic model".
//
// Every variant is *bit-exact* with its []int counterpart: the generic
// bodies below reproduce DotRange/DotRangeBlock's dispatch thresholds,
// accumulator-chain assignment, reduction trees, and sequential
// remainders statement for statement, and the gathered operands
// x[base+int(col[k])] are the same float64s the []int kernels read. Same
// chains over same values gives identical IEEE-754 results, which the
// serving batcher's coalescing contract and the fuzz bit-equality stage
// both depend on.

// ColIndex is the set of column-index element types the generic kernel
// bodies walk: the compressed uint16/uint32 streams plus the []int
// reference (which the segmented-sum kernels reuse the shared bodies
// for, with base 0). Each type is a distinct gcshape, so no variant
// pays a boxing or interface cost.
type ColIndex interface {
	~uint16 | ~uint32 | ~int
}

// DotRange32 computes sum(val[k]*x[col[k]]) for k in [lo, hi) over a
// uint32 absolute column stream, bit-identical to DotRange on the same
// indices.
func DotRange32(val []float64, col []uint32, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeC(val, col, 0, x, lo, hi, unrollLen)
}

// DotRange16Delta computes sum(val[k]*x[base+col[k]]) for k in [lo, hi)
// over a uint16 delta column stream: each stored index is the offset of
// the true column from base (the minimum column of the rows encoded with
// this base). Bit-identical to DotRange on the decoded indices.
func DotRange16Delta(val []float64, col []uint16, base int, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeC(val, col, base, x, lo, hi, unrollLen)
}

// dotRangeC is DotRange with the column load abstracted to
// base+int(col[k]). The dispatch and both unrolled bodies are copied
// verbatim from kernel.go so the chain structure cannot drift.
func dotRangeC[C ColIndex](val []float64, col []C, base int, x []float64, lo, hi, unrollLen int) float64 {
	length := hi - lo
	if length <= 0 {
		return 0
	}
	if length < ScalarThreshold {
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += val[k] * x[base+int(col[k])]
		}
		return sum
	}
	if length < unrollLen {
		return dot4C(val, col, base, x, lo, hi)
	}
	return dot8C(val, col, base, x, lo, hi)
}

// dot4C mirrors dot4: four accumulators, (a0+a2)+(a1+a3) reduction,
// sequential remainder.
func dot4C[C ColIndex](val []float64, col []C, base int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3 float64
	k := lo
	for ; k+4 <= hi; k += 4 {
		a0 += val[k] * x[base+int(col[k])]
		a1 += val[k+1] * x[base+int(col[k+1])]
		a2 += val[k+2] * x[base+int(col[k+2])]
		a3 += val[k+3] * x[base+int(col[k+3])]
	}
	sum := (a0 + a2) + (a1 + a3)
	for ; k < hi; k++ {
		sum += val[k] * x[base+int(col[k])]
	}
	return sum
}

// dot8C mirrors dot8: eight accumulators, the
// ((a0+a2)+(a1+a3))+((b0+b2)+(b1+b3)) reduction, sequential remainder.
func dot8C[C ColIndex](val []float64, col []C, base int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := lo
	for ; k+8 <= hi; k += 8 {
		a0 += val[k] * x[base+int(col[k])]
		a1 += val[k+1] * x[base+int(col[k+1])]
		a2 += val[k+2] * x[base+int(col[k+2])]
		a3 += val[k+3] * x[base+int(col[k+3])]
		b0 += val[k+4] * x[base+int(col[k+4])]
		b1 += val[k+5] * x[base+int(col[k+5])]
		b2 += val[k+6] * x[base+int(col[k+6])]
		b3 += val[k+7] * x[base+int(col[k+7])]
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < hi; k++ {
		sum += val[k] * x[base+int(col[k])]
	}
	return sum
}

// DotRangeBlock32 is DotRangeBlock over a uint32 absolute column stream:
// sums[j] = DotRange32(val, col, X[j], lo, hi, unrollLen), bit-identical
// per vector.
func DotRangeBlock32(val []float64, col []uint32, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockC(val, col, 0, X, sums, lo, hi, unrollLen)
}

// DotRangeBlock16Delta is DotRangeBlock over a uint16 delta column
// stream with a shared base: sums[j] = DotRange16Delta(val, col, base,
// X[j], lo, hi, unrollLen), bit-identical per vector.
func DotRangeBlock16Delta(val []float64, col []uint16, base int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockC(val, col, base, X, sums, lo, hi, unrollLen)
}

// dotRangeBlockC is DotRangeBlock with the column load abstracted; same
// tile structure, chain carry, and remainders as block.go.
func dotRangeBlockC[C ColIndex](val []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length <= 0 {
		for j := 0; j < w; j++ {
			sums[j] = 0
		}
		return
	}
	if length < ScalarThreshold {
		for j := 0; j < w; j++ {
			x := X[j]
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += val[k] * x[base+int(col[k])]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlock4C(val, col, base, X, sums, lo, hi, w)
		return
	}
	dotBlock8C(val, col, base, X, sums, lo, hi, w)
}

// dotBlock4C mirrors dotBlock4 with compressed loads.
func dotBlock4C[C ColIndex](val []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				a0 += val[k] * x[base+int(col[k])]
				a1 += val[k+1] * x[base+int(col[k+1])]
				a2 += val[k+2] * x[base+int(col[k+2])]
				a3 += val[k+3] * x[base+int(col[k+3])]
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		for k := k4; k < hi; k++ {
			sum += val[k] * x[base+int(col[k])]
		}
		sums[j] = sum
	}
}

// dotBlock8C mirrors dotBlock8 with compressed loads.
func dotBlock8C[C ColIndex](val []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				a0 += val[k] * x[base+int(col[k])]
				a1 += val[k+1] * x[base+int(col[k+1])]
				a2 += val[k+2] * x[base+int(col[k+2])]
				a3 += val[k+3] * x[base+int(col[k+3])]
				b0 += val[k+4] * x[base+int(col[k+4])]
				b1 += val[k+5] * x[base+int(col[k+5])]
				b2 += val[k+6] * x[base+int(col[k+6])]
				b3 += val[k+7] * x[base+int(col[k+7])]
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		for k := k8; k < hi; k++ {
			sum += val[k] * x[base+int(col[k])]
		}
		sums[j] = sum
	}
}
