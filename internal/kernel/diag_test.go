package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// diagData builds a run-structured index stream: n nonzero positions
// covered by runs of consecutive columns with random lengths, plus the
// decoded []int columns the reference kernel walks. Runs are contiguous
// in k, exactly as core's builder lays out one row's runs.
func diagData(r *rand.Rand, n, cols, maxRun int) (val []float64, col []int, runs []DiaRun, x []float64) {
	val = make([]float64, n)
	col = make([]int, n)
	for k := range val {
		val[k] = r.NormFloat64()
	}
	x = make([]float64, cols)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	k := 0
	for k < n {
		l := 1 + r.Intn(maxRun)
		if k+l > n {
			l = n - k
		}
		c0 := r.Intn(cols - l)
		for j := 0; j < l; j++ {
			col[k+j] = c0 + j
		}
		runs = append(runs, DiaRun{EndK: int32(k + l), ColMinusK: int32(c0 - k)})
		k += l
	}
	return
}

// Every diag variant must be bit-identical to the []int kernel on the
// decoded columns, across the dispatch branches, remainder counts,
// nonzero lo offsets (including lo mid-run with ri pointing at the
// first run), and run lengths shorter and longer than the unroll
// groups.
func TestDiagBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, maxRun := range []int{1, 3, 20, 500} {
		val, col, runs, x := diagData(r, 2048, 8192, maxRun)
		idx, pal := palettize(val, 7)
		val32 := make([]float32, len(val))
		val32as64 := make([]float64, len(val))
		for k, v := range val {
			val32[k] = float32(v)
			val32as64[k] = float64(val32[k])
		}
		lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000, 2000}
		for _, l := range lengths {
			for _, lo := range []int{0, 13} {
				hi := lo + l
				if hi > len(val) {
					continue
				}
				for _, un := range []int{4, 32, 64, 1 << 30} {
					want := DotRange(val, col, x, lo, hi, un)
					if got := DotRangeDiag(val, runs, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("DotRangeDiag maxRun %d len %d lo %d un %d: got %x want %x", maxRun, l, lo, un, got, want)
					}
					wantP := DotRange(pal2val(idx, pal), col, x, lo, hi, un)
					if got := DotRangeDiagPalette(idx, pal, runs, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(wantP) {
						t.Fatalf("DotRangeDiagPalette maxRun %d len %d lo %d un %d: got %x want %x", maxRun, l, lo, un, got, wantP)
					}
					want32 := DotRange(val32as64, col, x, lo, hi, un)
					if got := DotRangeDiagF32(val32, runs, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want32) {
						t.Fatalf("DotRangeDiagF32 maxRun %d len %d lo %d un %d: got %x want %x", maxRun, l, lo, un, got, want32)
					}
				}
			}
		}
	}
}

func TestDiagBlockBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, maxRun := range []int{2, 30, 1500} {
		val, col, runs, x := diagData(r, 4096, 16384, maxRun)
		idx, pal := palettize(val, 5)
		palVal := pal2val(idx, pal)
		X := make([][]float64, MaxBlock)
		X[0] = x
		for j := 1; j < MaxBlock; j++ {
			X[j] = make([]float64, len(x))
			for i := range X[j] {
				X[j][i] = r.NormFloat64()
			}
		}
		for _, l := range []int{0, 1, 3, 4, 7, 8, 9, 63, 64, 65, 1023, 1024, 1025, 3000} {
			for _, lo := range []int{0, 5} {
				hi := lo + l
				if hi > len(val) {
					continue
				}
				for w := 1; w <= MaxBlock; w++ {
					for _, un := range []int{4, 64, 1 << 30} {
						want := make([]float64, w)
						got := make([]float64, w)
						DotRangeBlock(val, col, X, want, lo, hi, un)
						DotRangeBlockDiag(val, runs, 0, X, got, lo, hi, un)
						for j := 0; j < w; j++ {
							if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
								t.Fatalf("BlockDiag maxRun %d len %d lo %d w %d un %d vec %d: got %x want %x", maxRun, l, lo, w, un, j, got[j], want[j])
							}
						}
						DotRangeBlock(palVal, col, X, want, lo, hi, un)
						DotRangeBlockDiagPalette(idx, pal, runs, 0, X, got, lo, hi, un)
						for j := 0; j < w; j++ {
							if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
								t.Fatalf("BlockDiagPalette maxRun %d len %d lo %d w %d un %d vec %d: got %x want %x", maxRun, l, lo, w, un, j, got[j], want[j])
							}
						}
					}
				}
			}
		}
	}
}

// palettize quantizes values onto a k-entry palette so palette streams
// can be tested against the []float64 reference resolved the same way.
func palettize(val []float64, k int) ([]uint8, []float64) {
	pal := make([]float64, k)
	for i := range pal {
		pal[i] = float64(i) - float64(k)/2
	}
	idx := make([]uint8, len(val))
	for i, v := range val {
		idx[i] = uint8(int(math.Abs(v)*1e4) % k)
	}
	return idx, pal
}

// pal2val resolves a palette stream into the []float64 the reference
// kernel reads.
func pal2val(idx []uint8, pal []float64) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = pal[i]
	}
	return out
}
