package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// Every palette variant must be bit-identical to the []int kernel over
// the palette-resolved values; every f32 variant must match the []int
// kernel over the rounded float64(float32(v)) operands.
func TestValueStreamsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	val, col, col32, col16, base, x := compressedData(r, 2048, 512)
	idx, pal := palettize(val, 11)
	palVal := pal2val(idx, pal)
	val32 := make([]float32, len(val))
	val32as64 := make([]float64, len(val))
	for k, v := range val {
		val32[k] = float32(v)
		val32as64[k] = float64(val32[k])
	}
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000, 2000}
	for _, l := range lengths {
		for _, lo := range []int{0, 13} {
			hi := lo + l
			if hi > len(val) {
				continue
			}
			for _, un := range []int{4, 32, 64, 1 << 30} {
				wantP := DotRange(palVal, col, x, lo, hi, un)
				if got := DotRangePalette(idx, pal, col, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(wantP) {
					t.Fatalf("Palette[int] len %d lo %d un %d: got %x want %x", l, lo, un, got, wantP)
				}
				if got := DotRangePalette(idx, pal, col32, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(wantP) {
					t.Fatalf("Palette[u32] len %d lo %d un %d: got %x want %x", l, lo, un, got, wantP)
				}
				if got := DotRangePalette(idx, pal, col16, base, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(wantP) {
					t.Fatalf("Palette[u16] len %d lo %d un %d: got %x want %x", l, lo, un, got, wantP)
				}
				want32 := DotRange(val32as64, col, x, lo, hi, un)
				if got := DotRangeF32(val32, col32, 0, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want32) {
					t.Fatalf("F32[u32] len %d lo %d un %d: got %x want %x", l, lo, un, got, want32)
				}
				if got := DotRangeF32(val32, col16, base, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want32) {
					t.Fatalf("F32[u16] len %d lo %d un %d: got %x want %x", l, lo, un, got, want32)
				}
			}
		}
	}
}

func TestValueStreamsBlockBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	val, col, col32, col16, base, x := compressedData(r, 4096, 300)
	idx, pal := palettize(val, 3)
	palVal := pal2val(idx, pal)
	val32 := make([]float32, len(val))
	val32as64 := make([]float64, len(val))
	for k, v := range val {
		val32[k] = float32(v)
		val32as64[k] = float64(val32[k])
	}
	X := make([][]float64, MaxBlock)
	X[0] = x
	for j := 1; j < MaxBlock; j++ {
		X[j] = make([]float64, len(x))
		for i := range X[j] {
			X[j][i] = r.NormFloat64()
		}
	}
	for _, l := range []int{0, 1, 3, 4, 7, 8, 9, 63, 64, 65, 1023, 1024, 1025, 3000} {
		for _, lo := range []int{0, 5} {
			hi := lo + l
			if hi > len(val) {
				continue
			}
			for w := 1; w <= MaxBlock; w++ {
				for _, un := range []int{4, 64, 1 << 30} {
					want := make([]float64, w)
					got := make([]float64, w)
					DotRangeBlock(palVal, col, X, want, lo, hi, un)
					DotRangeBlockPalette(idx, pal, col32, 0, X, got, lo, hi, un)
					for j := 0; j < w; j++ {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("BlockPalette[u32] len %d lo %d w %d un %d vec %d: got %x want %x", l, lo, w, un, j, got[j], want[j])
						}
					}
					DotRangeBlockPalette(idx, pal, col16, base, X, got, lo, hi, un)
					for j := 0; j < w; j++ {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("BlockPalette[u16] len %d lo %d w %d un %d vec %d: got %x want %x", l, lo, w, un, j, got[j], want[j])
						}
					}
					DotRangeBlock(val32as64, col, X, want, lo, hi, un)
					DotRangeBlockF32(val32, col32, 0, X, got, lo, hi, un)
					for j := 0; j < w; j++ {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("BlockF32[u32] len %d lo %d w %d un %d vec %d: got %x want %x", l, lo, w, un, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}
