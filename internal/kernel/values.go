package kernel

// Compressed-value kernels: the Algorithm 6 dot products with the value
// operand loaded from a palette or float32 stream instead of []float64.
// The value stream is 8 of the 12-16 bytes moved per nonzero; a matrix
// with at most 256 distinct values (0/1 adjacency, edge-weight graphs)
// streams 1-byte palette indices and reads the float64 through a table
// that fits in L1, and a caller that explicitly accepts reduced
// precision streams 4-byte float32s.
//
// The palette load pal[idx[k]] *is* the float64 the matrix stores, so
// every palette variant is bit-exact with its []float64 counterpart:
// the generic bodies below reproduce DotRange/DotRangeBlock's dispatch,
// chain assignment, reduction trees, and remainders statement for
// statement, exactly like compressed.go does for the index streams. The
// float32 variants share the bodies but are lossy by construction (each
// operand is float64(float32(v))) and are never selected without an
// explicit opt-in upstream.

// ValSource is the set of value-stream element types the generic
// bodies read: the []float64 reference, the lossy float32 stream, and
// the uint8 palette indices (resolved through a non-nil pal table).
type ValSource interface {
	~float64 | ~float32 | ~uint8
}

// valLoad resolves one value operand: the element itself for direct
// streams (pal nil), the palette entry for index streams. The branch is
// loop-invariant and predicted; each V is a distinct gcshape so no
// variant pays a boxing cost.
func valLoad[V ValSource](vals []V, pal []float64, k int) float64 {
	if pal == nil {
		return float64(vals[k])
	}
	return pal[uint8(vals[k])]
}

// DotRangePalette computes sum(pal[idx[k]]*x[base+int(col[k])]) for k
// in [lo, hi), bit-identical to DotRange on the same columns and the
// palette-resolved values.
func DotRangePalette[C ColIndex](idx []uint8, pal []float64, col []C, base int, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeVC(idx, pal, col, base, x, lo, hi, unrollLen)
}

// DotRangeF32 computes sum(float64(val[k])*x[base+int(col[k])]) for k
// in [lo, hi) over a float32 value stream (lossy).
func DotRangeF32[C ColIndex](val []float32, col []C, base int, x []float64, lo, hi, unrollLen int) float64 {
	return dotRangeVC(val, nil, col, base, x, lo, hi, unrollLen)
}

// dotRangeVC is dotRangeC with the value load abstracted through
// valLoad; dispatch and chain structure copied from kernel.go.
func dotRangeVC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, x []float64, lo, hi, unrollLen int) float64 {
	length := hi - lo
	if length <= 0 {
		return 0
	}
	if length < ScalarThreshold {
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[base+int(col[k])]
		}
		return sum
	}
	if length < unrollLen {
		return dot4VC(vals, pal, col, base, x, lo, hi)
	}
	return dot8VC(vals, pal, col, base, x, lo, hi)
}

// dot4VC mirrors dot4: four accumulators, (a0+a2)+(a1+a3) reduction,
// sequential remainder.
func dot4VC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3 float64
	k := lo
	for ; k+4 <= hi; k += 4 {
		a0 += valLoad(vals, pal, k) * x[base+int(col[k])]
		a1 += valLoad(vals, pal, k+1) * x[base+int(col[k+1])]
		a2 += valLoad(vals, pal, k+2) * x[base+int(col[k+2])]
		a3 += valLoad(vals, pal, k+3) * x[base+int(col[k+3])]
	}
	sum := (a0 + a2) + (a1 + a3)
	for ; k < hi; k++ {
		sum += valLoad(vals, pal, k) * x[base+int(col[k])]
	}
	return sum
}

// dot8VC mirrors dot8: eight accumulators, the
// ((a0+a2)+(a1+a3))+((b0+b2)+(b1+b3)) reduction, sequential remainder.
func dot8VC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, x []float64, lo, hi int) float64 {
	var a0, a1, a2, a3, b0, b1, b2, b3 float64
	k := lo
	for ; k+8 <= hi; k += 8 {
		a0 += valLoad(vals, pal, k) * x[base+int(col[k])]
		a1 += valLoad(vals, pal, k+1) * x[base+int(col[k+1])]
		a2 += valLoad(vals, pal, k+2) * x[base+int(col[k+2])]
		a3 += valLoad(vals, pal, k+3) * x[base+int(col[k+3])]
		b0 += valLoad(vals, pal, k+4) * x[base+int(col[k+4])]
		b1 += valLoad(vals, pal, k+5) * x[base+int(col[k+5])]
		b2 += valLoad(vals, pal, k+6) * x[base+int(col[k+6])]
		b3 += valLoad(vals, pal, k+7) * x[base+int(col[k+7])]
	}
	sum := ((a0 + a2) + (a1 + a3)) + ((b0 + b2) + (b1 + b3))
	for ; k < hi; k++ {
		sum += valLoad(vals, pal, k) * x[base+int(col[k])]
	}
	return sum
}

// DotRangeBlockPalette is DotRangeBlock over the palette value stream:
// sums[j] = DotRangePalette(idx, pal, col, base, X[j], lo, hi,
// unrollLen), bit-identical per vector.
func DotRangeBlockPalette[C ColIndex](idx []uint8, pal []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockVC(idx, pal, col, base, X, sums, lo, hi, unrollLen)
}

// DotRangeBlockF32 is DotRangeBlock over the float32 value stream
// (lossy).
func DotRangeBlockF32[C ColIndex](val []float32, col []C, base int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	dotRangeBlockVC(val, nil, col, base, X, sums, lo, hi, unrollLen)
}

// dotRangeBlockVC is dotRangeBlockC with the value load abstracted;
// same tile structure, chain carry, and remainders as block.go.
func dotRangeBlockVC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, unrollLen int) {
	w := len(sums)
	length := hi - lo
	if length <= 0 {
		for j := 0; j < w; j++ {
			sums[j] = 0
		}
		return
	}
	if length < ScalarThreshold {
		for j := 0; j < w; j++ {
			x := X[j]
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += valLoad(vals, pal, k) * x[base+int(col[k])]
			}
			sums[j] = sum
		}
		return
	}
	if length < unrollLen {
		dotBlock4VC(vals, pal, col, base, X, sums, lo, hi, w)
		return
	}
	dotBlock8VC(vals, pal, col, base, X, sums, lo, hi, w)
}

// dotBlock4VC mirrors dotBlock4 with abstracted value loads.
func dotBlock4VC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][4]float64
	k4 := lo + (hi-lo)&^3
	for kt := lo; kt < k4; kt += blockTile {
		kend := kt + blockTile
		if kend > k4 {
			kend = k4
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a0, a1, a2, a3 := acc[j][0], acc[j][1], acc[j][2], acc[j][3]
			for k := kt; k < kend; k += 4 {
				a0 += valLoad(vals, pal, k) * x[base+int(col[k])]
				a1 += valLoad(vals, pal, k+1) * x[base+int(col[k+1])]
				a2 += valLoad(vals, pal, k+2) * x[base+int(col[k+2])]
				a3 += valLoad(vals, pal, k+3) * x[base+int(col[k+3])]
			}
			acc[j][0], acc[j][1], acc[j][2], acc[j][3] = a0, a1, a2, a3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := (a[0] + a[2]) + (a[1] + a[3])
		for k := k4; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[base+int(col[k])]
		}
		sums[j] = sum
	}
}

// dotBlock8VC mirrors dotBlock8 with abstracted value loads.
func dotBlock8VC[V ValSource, C ColIndex](vals []V, pal []float64, col []C, base int, X [][]float64, sums []float64, lo, hi, w int) {
	var acc [MaxBlock][8]float64
	k8 := lo + (hi-lo)&^7
	for kt := lo; kt < k8; kt += blockTile {
		kend := kt + blockTile
		if kend > k8 {
			kend = k8
		}
		for j := 0; j < w; j++ {
			x := X[j]
			a := &acc[j]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := a[4], a[5], a[6], a[7]
			for k := kt; k < kend; k += 8 {
				a0 += valLoad(vals, pal, k) * x[base+int(col[k])]
				a1 += valLoad(vals, pal, k+1) * x[base+int(col[k+1])]
				a2 += valLoad(vals, pal, k+2) * x[base+int(col[k+2])]
				a3 += valLoad(vals, pal, k+3) * x[base+int(col[k+3])]
				b0 += valLoad(vals, pal, k+4) * x[base+int(col[k+4])]
				b1 += valLoad(vals, pal, k+5) * x[base+int(col[k+5])]
				b2 += valLoad(vals, pal, k+6) * x[base+int(col[k+6])]
				b3 += valLoad(vals, pal, k+7) * x[base+int(col[k+7])]
			}
			a[0], a[1], a[2], a[3] = a0, a1, a2, a3
			a[4], a[5], a[6], a[7] = b0, b1, b2, b3
		}
	}
	for j := 0; j < w; j++ {
		a := &acc[j]
		x := X[j]
		sum := ((a[0] + a[2]) + (a[1] + a[3])) + ((a[4] + a[6]) + (a[5] + a[7]))
		for k := k8; k < hi; k++ {
			sum += valLoad(vals, pal, k) * x[base+int(col[k])]
		}
		sums[j] = sum
	}
}
