package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// randomSegments cuts [0, n) into segments with a skewed length
// distribution (many empty and tiny rows, a few long ones) and
// increasing destination rows, mirroring the power-law profiles
// segmented execution exists for. Some segments are separated by gaps,
// as in the real descriptor stream: HACSR never physically permutes the
// value array, so consecutive reordered rows need not be contiguous.
func randomSegments(r *rand.Rand, n, rows int) []Segment {
	var segs []Segment
	pos := 0
	dst := 0
	for pos < n && dst < rows {
		var l int
		switch r.Intn(4) {
		case 0:
			l = 0
		case 1:
			l = r.Intn(4)
		case 2:
			l = r.Intn(40)
		default:
			l = r.Intn(300)
		}
		if pos+l > n {
			l = n - pos
		}
		segs = append(segs, Segment{K0: int32(pos), K1: int32(pos + l), Dst: int32(dst)})
		pos += l
		if r.Intn(3) == 0 { // non-contiguous: skip a few values
			pos += r.Intn(5)
			if pos > n {
				pos = n
			}
		}
		dst++
	}
	return segs
}

// Every segmented variant must store, per non-empty segment, exactly the
// bits the corresponding per-row DotRange call produces, across the
// scalar/4-wide/8-wide dispatch branches.
func TestSegSumBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	val, col, col32, col16, base, x := compressedData(r, 4096, 700)
	segs := randomSegments(r, len(val), 1<<20)
	rows := len(segs)
	bases := make([]int, rows)
	for i := range bases {
		bases[i] = base
	}
	for _, un := range []int{4, 32, 64, 1 << 30} {
		want := make([]float64, rows)
		nonEmpty := 0
		for i, s := range segs {
			if s.K1 > s.K0 {
				want[i] = DotRange(val, col, x, int(s.K0), int(s.K1), un)
				nonEmpty++
			} else {
				want[i] = math.NaN() // must stay untouched
			}
		}
		check := func(name string, y []float64, done int) {
			t.Helper()
			if done != nonEmpty {
				t.Fatalf("%s un %d: done %d, want %d", name, un, done, nonEmpty)
			}
			for i, s := range segs {
				if s.K1 <= s.K0 {
					if !math.IsNaN(y[i]) {
						t.Fatalf("%s un %d: empty segment %d written (%v)", name, un, i, y[i])
					}
					continue
				}
				if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s un %d seg %d: got %x want %x", name, un, i,
						math.Float64bits(y[i]), math.Float64bits(want[i]))
				}
			}
		}
		y := make([]float64, rows)
		for i := range y {
			y[i] = math.NaN()
		}
		check("SegSum", y[:cap(y)], SegSum(val, col, x, y, segs, un))
		for i := range y {
			y[i] = math.NaN()
		}
		check("SegSum32", y, SegSum32(val, col32, x, y, segs, un))
		for i := range y {
			y[i] = math.NaN()
		}
		check("SegSum16Delta", y, SegSum16Delta(val, col16, bases, x, y, segs, un))
	}
}

func TestSegSumBlockBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	val, col, col32, col16, base, x := compressedData(r, 4096, 450)
	segs := randomSegments(r, len(val), 1<<20)
	rows := len(segs)
	bases := make([]int, rows)
	for i := range bases {
		bases[i] = base
	}
	X := make([][]float64, MaxBlock)
	X[0] = x
	for j := 1; j < MaxBlock; j++ {
		X[j] = make([]float64, len(x))
		for i := range X[j] {
			X[j][i] = r.NormFloat64()
		}
	}
	for _, w := range []int{1, 2, MaxBlock} {
		for _, un := range []int{4, 64, 1 << 30} {
			want := make([][]float64, w)
			nonEmpty := 0
			for j := 0; j < w; j++ {
				want[j] = make([]float64, rows)
			}
			for i, s := range segs {
				if s.K1 <= s.K0 {
					continue
				}
				nonEmpty++
				for j := 0; j < w; j++ {
					want[j][i] = DotRange(val, col, X[j], int(s.K0), int(s.K1), un)
				}
			}
			Y := make([][]float64, w)
			for j := range Y {
				Y[j] = make([]float64, rows)
			}
			sums := make([]float64, w)
			check := func(name string, done int) {
				t.Helper()
				if done != nonEmpty {
					t.Fatalf("%s w %d un %d: done %d, want %d", name, w, un, done, nonEmpty)
				}
				for j := 0; j < w; j++ {
					for i := range Y[j] {
						if math.Float64bits(Y[j][i]) != math.Float64bits(want[j][i]) {
							t.Fatalf("%s w %d un %d vec %d seg %d: got %x want %x", name, w, un, j, i,
								math.Float64bits(Y[j][i]), math.Float64bits(want[j][i]))
						}
					}
					for i := range Y[j] {
						Y[j][i] = 0
					}
				}
			}
			check("SegSumBlock", SegSumBlock(val, col, X, Y, sums, segs, un))
			check("SegSumBlock32", SegSumBlock32(val, col32, X, Y, sums, segs, un))
			check("SegSumBlock16Delta", SegSumBlock16Delta(val, col16, bases, X, Y, sums, segs, un))
		}
	}
}
