package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// compressedData derives u32 and u16-delta streams from a random []int
// stream so every kernel variant can be run over identical indices. The
// delta stream is encoded against the minimum column present, mirroring
// what core's stream builder does per row.
func compressedData(r *rand.Rand, n, cols int) (val []float64, col []int, col32 []uint32, col16 []uint16, base int, x []float64) {
	val, col, x = randomData(r, n, cols)
	col32 = make([]uint32, n)
	col16 = make([]uint16, n)
	base = cols
	for _, c := range col {
		if c < base {
			base = c
		}
	}
	for k, c := range col {
		col32[k] = uint32(c)
		col16[k] = uint16(c - base)
	}
	return
}

// Every compressed variant must be bit-identical to the []int kernel on
// the same indices, across the scalar/4-wide/8-wide dispatch branches,
// all remainder counts, and nonzero lo offsets.
func TestCompressedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	val, col, col32, col16, base, x := compressedData(r, 2048, 512)
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 1000, 2000}
	unrolls := []int{4, 32, 64, 1 << 30}
	for _, l := range lengths {
		for _, lo := range []int{0, 13} {
			hi := lo + l
			if hi > len(val) {
				continue
			}
			for _, un := range unrolls {
				want := DotRange(val, col, x, lo, hi, un)
				if got := DotRange32(val, col32, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("DotRange32 len %d lo %d un %d: got %x want %x", l, lo, un, got, want)
				}
				if got := DotRange16Delta(val, col16, base, x, lo, hi, un); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("DotRange16Delta len %d lo %d un %d: got %x want %x", l, lo, un, got, want)
				}
			}
		}
	}
}

func TestCompressedBlockBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	val, col, col32, col16, base, x := compressedData(r, 4096, 300)
	X := make([][]float64, MaxBlock)
	X[0] = x
	for j := 1; j < MaxBlock; j++ {
		X[j] = make([]float64, len(x))
		for i := range X[j] {
			X[j][i] = r.NormFloat64()
		}
	}
	lengths := []int{0, 1, 3, 4, 7, 8, 9, 63, 64, 65, 1023, 1024, 1025, 3000}
	for _, l := range lengths {
		for _, lo := range []int{0, 5} {
			hi := lo + l
			if hi > len(val) {
				continue
			}
			for w := 1; w <= MaxBlock; w++ {
				for _, un := range []int{4, 64, 1 << 30} {
					want := make([]float64, w)
					DotRangeBlock(val, col, X, want, lo, hi, un)
					got := make([]float64, w)
					DotRangeBlock32(val, col32, X, got, lo, hi, un)
					for j := 0; j < w; j++ {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("Block32 len %d lo %d w %d un %d vec %d: got %x want %x", l, lo, w, un, j, got[j], want[j])
						}
					}
					DotRangeBlock16Delta(val, col16, base, X, got, lo, hi, un)
					for j := 0; j < w; j++ {
						if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
							t.Fatalf("Block16Delta len %d lo %d w %d un %d vec %d: got %x want %x", l, lo, w, un, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}

// A delta stream with the maximum encodable span (65535) must decode to
// the right columns — the eligibility boundary core's builder enforces.
func TestDelta16MaxSpan(t *testing.T) {
	const span = math.MaxUint16
	base := 3
	cols := base + span + 1
	val := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	col := []int{base, base + span, base + 1, base + span - 1, base + 7, base + 100, base + span, base, base + span/2}
	x := make([]float64, cols)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	col16 := make([]uint16, len(col))
	for k, c := range col {
		col16[k] = uint16(c - base)
	}
	for _, un := range []int{4, 64} {
		want := DotRange(val, col, x, 0, len(col), un)
		got := DotRange16Delta(val, col16, base, x, 0, len(col), un)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("max-span delta un %d: got %x want %x", un, got, want)
		}
	}
}
