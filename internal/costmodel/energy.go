package costmodel

import "haspmv/internal/amp"

// Energy is the modeled package energy of one SpMV (an extension beyond
// the paper's evaluation: energy efficiency is the original motivation
// for single-ISA AMPs — Kumar et al., MICRO'03 — so the model exposes
// it). Core energy integrates each core's active power over its own busy
// time; uncore power runs for the whole makespan.
type Energy struct {
	Joules       float64
	CoreJoules   float64
	UncoreJoules float64
	AvgWatts     float64
	// GFlopsPerWatt is the efficiency figure of merit.
	GFlopsPerWatt float64
}

// EstimateEnergy derives the energy of an estimate on machine m. The
// result's PerCore busy times are trusted as-is; idle cores cost nothing
// beyond uncore.
func EstimateEnergy(m *amp.Machine, r Result) Energy {
	var e Energy
	for _, cc := range r.PerCore {
		g, _ := m.GroupOf(cc.Core)
		busy := cc.Seconds
		if busy > r.Seconds {
			busy = r.Seconds
		}
		e.CoreJoules += g.ActiveWatts * busy
	}
	e.UncoreJoules = m.UncoreWatts * r.Seconds
	e.Joules = e.CoreJoules + e.UncoreJoules
	if r.Seconds > 0 {
		e.AvgWatts = e.Joules / r.Seconds
	}
	if e.Joules > 0 && r.Seconds > 0 {
		e.GFlopsPerWatt = r.GFlops / e.AvgWatts
	}
	return e
}
