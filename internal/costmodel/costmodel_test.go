package costmodel

import (
	"testing"
	"testing/quick"

	"haspmv/internal/amp"
	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

func fullMatrixOn(core int, a *sparse.CSR) []Assignment {
	return []Assignment{{Core: core, Spans: []Span{{Lo: 0, Hi: a.NNZ()}}}}
}

// evenSplit statically splits nnz across the cores (homogeneous
// nnz-balanced partition, the heterogeneity-blind baseline behaviour).
func evenSplit(cores []int, a *sparse.CSR) []Assignment {
	n := a.NNZ()
	asgs := make([]Assignment, len(cores))
	for i, c := range cores {
		lo := n * i / len(cores)
		hi := n * (i + 1) / len(cores)
		asgs[i] = Assignment{Core: c, Spans: []Span{{Lo: lo, Hi: hi}}}
	}
	return asgs
}

func mediumMatrix(rows int) *sparse.CSR {
	return gen.Spec{
		Name: "medium", Rows: rows, Cols: rows, TargetNNZ: rows * 20,
		Dist:  gen.NormalLen{Mean: 20, Std: 4, Min: 1, Max: 60},
		Place: gen.Clustered, Seed: 7,
	}.Generate()
}

func TestEstimateBasics(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(2000)
	res := EstimateSpMV(m, p, a, fullMatrixOn(0, a))
	if res.Seconds <= 0 || res.GFlops <= 0 {
		t.Fatalf("degenerate estimate: %+v", res)
	}
	if len(res.PerCore) != 1 {
		t.Fatalf("per-core entries: %d", len(res.PerCore))
	}
	cc := res.PerCore[0]
	if cc.NNZ != a.NNZ() || cc.Rows != a.Rows {
		t.Fatalf("accounting: nnz %d rows %d, want %d/%d", cc.NNZ, cc.Rows, a.NNZ(), a.Rows)
	}
	if cc.Seconds < cc.ComputeSeconds || cc.Seconds < cc.MemSeconds {
		t.Fatal("core time below its own components")
	}
	totalBytes := 0.0
	for _, b := range cc.LevelBytes {
		if b < 0 {
			t.Fatal("negative level bytes")
		}
		totalBytes += b
	}
	if totalBytes == 0 {
		t.Fatal("no memory traffic accounted")
	}
}

func TestEmptyRowsAndPartialSpans(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a, err := sparse.NewCSR(4, 4, []int{0, 0, 3, 3, 6}, []int{0, 1, 2, 1, 2, 3}, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Split mid-row: [0,2) and [2,6).
	asgs := []Assignment{
		{Core: 0, Spans: []Span{{0, 2}}},
		{Core: 8, Spans: []Span{{2, 6}}},
	}
	res := EstimateSpMV(m, p, a, asgs)
	// Row 1 is split: core 0 sees 1 partial row, core 8 sees the rest of
	// row 1 plus row 3 = 2 kernel invocations.
	if res.PerCore[0].Rows != 1 || res.PerCore[1].Rows != 2 {
		t.Fatalf("partial row accounting: %d/%d", res.PerCore[0].Rows, res.PerCore[1].Rows)
	}
	if res.PerCore[0].NNZ+res.PerCore[1].NNZ != 6 {
		t.Fatal("nnz conservation")
	}
}

func TestSpanOutOfRangePanics(t *testing.T) {
	m := amp.IntelI912900KF()
	a := mediumMatrix(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad span")
		}
	}()
	EstimateSpMV(m, DefaultParams(), a, []Assignment{{Core: 0, Spans: []Span{{0, a.NNZ() + 1}}}})
}

// Figure 5 shape, 12900KF: a single P-core beats a single E-core by ~2x on
// short/medium-row matrices, with the gap narrowing on very long rows.
func TestFig5ShapeIntel12900(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	short := gen.Spec{Name: "s", Rows: 20000, Cols: 20000, TargetNNZ: 20000 * 6,
		Dist: gen.NormalLen{Mean: 6, Std: 2, Min: 1, Max: 16}, Place: gen.Clustered, Seed: 1}.Generate()
	// 2000 rows x 4000 nnz: ~96MB of streaming arrays, far beyond the
	// 30MB LLC, so the single core is DRAM-bound (where P/E converge).
	long := gen.Spec{Name: "l", Rows: 2000, Cols: 300000, TargetNNZ: 2000 * 4000,
		Dist: gen.ConstLen{L: 4000}, Place: gen.Banded, Seed: 2}.Generate()

	ratio := func(a *sparse.CSR) float64 {
		tp := EstimateSpMV(m, p, a, fullMatrixOn(0, a)).Seconds
		te := EstimateSpMV(m, p, a, fullMatrixOn(8, a)).Seconds
		return te / tp
	}
	rShort := ratio(short)
	rLong := ratio(long)
	if rShort < 1.5 || rShort > 3.5 {
		t.Fatalf("short-row P/E speedup %.2f, want ~2-2.5", rShort)
	}
	if rLong >= rShort {
		t.Fatalf("long-row speedup %.2f did not narrow from %.2f", rLong, rShort)
	}
	if rLong > 1.8 {
		t.Fatalf("long-row speedup %.2f, want close to 1", rLong)
	}
}

// Figure 5 shape, 13900KF: P stays ~2x ahead even on long rows.
func TestFig5ShapeIntel13900(t *testing.T) {
	m := amp.IntelI913900KF()
	p := DefaultParams()
	long := gen.Spec{Name: "l", Rows: 2000, Cols: 300000, TargetNNZ: 2000 * 4000,
		Dist: gen.ConstLen{L: 4000}, Place: gen.Banded, Seed: 2}.Generate()
	tp := EstimateSpMV(m, p, long, fullMatrixOn(0, long)).Seconds
	te := EstimateSpMV(m, p, long, fullMatrixOn(8, long)).Seconds
	if r := te / tp; r < 1.6 {
		t.Fatalf("13900KF long-row P/E speedup %.2f, want ~2", r)
	}
}

// Figure 5 shape, AMD: CCD0 and CCD1 cores are identical below the L3
// difference, so single-core speedup is ~1 for cache-small matrices.
func TestFig5ShapeAMD(t *testing.T) {
	m := amp.AMDRyzen97950X3D()
	p := DefaultParams()
	a := mediumMatrix(5000)
	t0 := EstimateSpMV(m, p, a, fullMatrixOn(0, a)).Seconds
	t1 := EstimateSpMV(m, p, a, fullMatrixOn(8, a)).Seconds
	r := t1 / t0
	if r < 0.95 || r > 1.05 {
		t.Fatalf("AMD single-core ratio %.3f, want ~1", r)
	}
}

// The V-Cache must show up: an x working set that fits 96MB but not 32MB
// runs faster on a CCD0 core of the 7950X3D than on CCD1, and the
// homogeneous 7950X shows no such gap.
func TestVCacheEffect(t *testing.T) {
	rows := 600000 // x = 4.8MB... scaled below by per-core L3 share math
	a := gen.Spec{Name: "v", Rows: rows, Cols: rows, TargetNNZ: rows * 8,
		Dist: gen.NormalLen{Mean: 8, Std: 2, Min: 1, Max: 20}, Place: gen.Random, Seed: 3}.Generate()
	p := DefaultParams()
	x3d := amp.AMDRyzen97950X3D()
	t0 := EstimateSpMV(x3d, p, a, fullMatrixOn(0, a)).Seconds
	t1 := EstimateSpMV(x3d, p, a, fullMatrixOn(8, a)).Seconds
	if t0 >= t1 {
		t.Fatalf("V-Cache core not faster: CCD0 %.4g vs CCD1 %.4g", t0, t1)
	}
	x := amp.AMDRyzen97950X()
	u0 := EstimateSpMV(x, p, a, fullMatrixOn(0, a)).Seconds
	u1 := EstimateSpMV(x, p, a, fullMatrixOn(8, a)).Seconds
	if u0 != u1 {
		t.Fatalf("7950X cores differ: %.4g vs %.4g", u0, u1)
	}
}

// Heterogeneity-blind even splits leave E-cores as stragglers: the E-core
// maximum must exceed the P-core maximum on Intel.
func TestEvenSplitStragglers(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(20000)
	res := EstimateSpMV(m, p, a, evenSplit(m.Cores(amp.PAndE), a))
	var maxP, maxE float64
	for _, cc := range res.PerCore {
		g, _ := m.GroupOf(cc.Core)
		if g.Kind == amp.Performance {
			if cc.Seconds > maxP {
				maxP = cc.Seconds
			}
		} else if cc.Seconds > maxE {
			maxE = cc.Seconds
		}
	}
	if maxE <= maxP {
		t.Fatalf("even split: E max %.4g not above P max %.4g", maxE, maxP)
	}
}

// A P-proportioned split (more work to P-cores) must beat the even split
// on Intel — the core premise of HASpMV.
func TestProportionalSplitBeatsEven(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(20000)
	cores := m.Cores(amp.PAndE)
	even := EstimateSpMV(m, p, a, evenSplit(cores, a)).Seconds

	// 72% of nnz to the 8 P-cores, 28% to the 8 E-cores.
	n := a.NNZ()
	cut := n * 72 / 100
	asgs := make([]Assignment, 0, 16)
	for i := 0; i < 8; i++ {
		asgs = append(asgs, Assignment{Core: i, Spans: []Span{{cut * i / 8, cut * (i + 1) / 8}}})
	}
	for i := 0; i < 8; i++ {
		asgs = append(asgs, Assignment{Core: 8 + i, Spans: []Span{{cut + (n-cut)*i/8, cut + (n-cut)*(i+1)/8}}})
	}
	prop := EstimateSpMV(m, p, a, asgs).Seconds
	if prop >= even {
		t.Fatalf("proportional %.4g not faster than even %.4g", prop, even)
	}
}

// Property: adding more of the matrix to a core never reduces its time,
// and the estimate is deterministic.
func TestMonotonicityProperty(t *testing.T) {
	m := amp.IntelI913900KF()
	p := DefaultParams()
	a := mediumMatrix(3000)
	f := func(cutRaw uint16) bool {
		cut := 1 + int(cutRaw)%(a.NNZ()-1)
		small := EstimateSpMV(m, p, a, []Assignment{{Core: 0, Spans: []Span{{0, cut}}}})
		full := EstimateSpMV(m, p, a, fullMatrixOn(0, a))
		again := EstimateSpMV(m, p, a, []Assignment{{Core: 0, Spans: []Span{{0, cut}}}})
		return small.Seconds <= full.Seconds && small.Seconds == again.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWaterfall(t *testing.T) {
	caps := [3]float64{100, 1000, 10000}
	w := waterfall(50, caps)
	if w != [4]float64{50, 0, 0, 0} {
		t.Fatalf("tiny footprint: %v", w)
	}
	w = waterfall(500, caps)
	if w != [4]float64{100, 400, 0, 0} {
		t.Fatalf("L2 footprint: %v", w)
	}
	w = waterfall(20000, caps)
	if w != [4]float64{100, 900, 9000, 10000} {
		t.Fatalf("DRAM footprint: %v", w)
	}
	sum := 0.0
	for _, b := range w {
		sum += b
	}
	if sum != 20000 {
		t.Fatalf("waterfall lost bytes: %v", sum)
	}
	// Non-monotone capacities (smaller L3 slice than L2 after sharing)
	// must not produce negative slices.
	w = waterfall(5000, [3]float64{100, 2000, 500})
	for _, b := range w {
		if b < 0 {
			t.Fatalf("negative slice: %v", w)
		}
	}
}

func TestXShareClamps(t *testing.T) {
	caps := [3]float64{1, 1, 1 << 20}
	if s := xShare(1, 1e12, caps); s != 0.15 {
		t.Fatalf("low clamp: %v", s)
	}
	if s := xShare(1e12, 1, caps); s != 0.85 {
		t.Fatalf("high clamp: %v", s)
	}
	if s := xShare(0, 0, caps); s != 0.5 {
		t.Fatalf("zero case: %v", s)
	}
}

func TestContentionBoundsReported(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	// Huge streaming matrix on all cores: the chip DRAM ceiling must bind.
	a := gen.Spec{Name: "big", Rows: 400000, Cols: 400000, TargetNNZ: 6000000,
		Dist: gen.NormalLen{Mean: 15, Std: 3, Min: 1, Max: 40}, Place: gen.Banded, Seed: 4}.Generate()
	res := EstimateSpMV(m, p, a, evenSplit(m.Cores(amp.PAndE), a))
	if res.BoundBy == "core" {
		t.Fatalf("DRAM-saturating run bound by %q", res.BoundBy)
	}
	// Tiny matrix on one core: core-bound.
	small := mediumMatrix(200)
	res = EstimateSpMV(m, p, small, fullMatrixOn(0, small))
	if res.BoundBy != "core" {
		t.Fatalf("tiny run bound by %q", res.BoundBy)
	}
}

func TestZeroAssignments(t *testing.T) {
	m := amp.IntelI912900KF()
	a := mediumMatrix(100)
	res := EstimateSpMV(m, DefaultParams(), a, nil)
	if res.Seconds != 0 || res.GFlops != 0 {
		t.Fatalf("empty assignment: %+v", res)
	}
}

// The extension machines must price sanely too, including Apple's 128-byte
// cache lines (which halve the distinct-line count of a gather).
func TestExtensionMachines(t *testing.T) {
	a := mediumMatrix(4000)
	p := DefaultParams()
	for _, m := range []*amp.Machine{amp.AppleM2Like(), amp.ARMBigLittleLike()} {
		res := EstimateSpMV(m, p, a, evenSplit(m.Cores(amp.PAndE), a))
		if res.Seconds <= 0 || res.GFlops <= 0 {
			t.Fatalf("%s: %+v", m.Name, res)
		}
		single := EstimateSpMV(m, p, a, fullMatrixOn(0, a))
		if single.Seconds <= res.Seconds {
			t.Fatalf("%s: single core %v not slower than all cores %v", m.Name, single.Seconds, res.Seconds)
		}
	}
	// big.LITTLE: the LITTLE core is much slower than big.
	bl := amp.ARMBigLittleLike()
	tb := EstimateSpMV(bl, p, a, fullMatrixOn(0, a)).Seconds
	tl := EstimateSpMV(bl, p, a, fullMatrixOn(4, a)).Seconds
	if tl < 1.8*tb {
		t.Fatalf("LITTLE/big ratio %.2f, want > 1.8", tl/tb)
	}
}
