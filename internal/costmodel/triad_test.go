package costmodel

import (
	"testing"

	"haspmv/internal/amp"
)

func triadSweep(m *amp.Machine, cfg amp.Config, elems int) TriadResult {
	return EstimateTriad(m, DefaultParams(), m.Cores(cfg), elems)
}

func TestTriadDegenerate(t *testing.T) {
	m := amp.IntelI912900KF()
	if r := EstimateTriad(m, DefaultParams(), nil, 100); r.GBps != 0 {
		t.Fatal("no cores should give zero")
	}
	if r := EstimateTriad(m, DefaultParams(), []int{0}, 0); r.GBps != 0 {
		t.Fatal("no elements should give zero")
	}
}

// Figure 3, Intel shape: P-only bandwidth above E-only everywhere, and
// above P+E on the DRAM plateau.
func TestFig3ShapeIntel(t *testing.T) {
	for _, m := range []*amp.Machine{amp.IntelI912900KF(), amp.IntelI913900KF()} {
		cacheElems := 40_000    // ~1MB of vectors: cache resident
		dramElems := 40_000_000 // ~1GB: deep DRAM plateau
		for _, elems := range []int{cacheElems, dramElems} {
			p := triadSweep(m, amp.POnly, elems)
			e := triadSweep(m, amp.EOnly, elems)
			if p.GBps <= e.GBps {
				t.Errorf("%s @%d: P-only %.1f <= E-only %.1f", m.Name, elems, p.GBps, e.GBps)
			}
		}
		p := triadSweep(m, amp.POnly, dramElems)
		pe := triadSweep(m, amp.PAndE, dramElems)
		if p.GBps <= pe.GBps {
			t.Errorf("%s plateau: P-only %.1f <= P+E %.1f", m.Name, p.GBps, pe.GBps)
		}
		if pe.BoundBy != "chip" && pe.BoundBy != "group" {
			t.Errorf("%s plateau P+E bound by %q", m.Name, pe.BoundBy)
		}
	}
}

// Cache-resident sweeps must far exceed the DRAM plateau (the cliff in
// Figure 3).
func TestFig3CacheCliff(t *testing.T) {
	m := amp.IntelI912900KF()
	resident := triadSweep(m, amp.POnly, 10_000) // 240KB in L1/L2
	plateau := triadSweep(m, amp.POnly, 40_000_000)
	if resident.GBps < 3*plateau.GBps {
		t.Fatalf("no cache cliff: resident %.1f vs plateau %.1f", resident.GBps, plateau.GBps)
	}
}

// Figure 3, AMD shape: CCD0's bandwidth stays high at working sets where
// CCD1 has already fallen to DRAM (the V-Cache region, ~16-80MB of
// vectors per the figure), and the three configurations converge on the
// deep plateau.
func TestFig3ShapeAMD(t *testing.T) {
	m := amp.AMDRyzen97950X3D()
	// 2.5M elements = 60MB triad footprint: inside 96MB CCD0 L3, far
	// outside CCD1's 32MB.
	mid := 2_500_000
	c0 := triadSweep(m, amp.POnly, mid)
	c1 := triadSweep(m, amp.EOnly, mid)
	if c0.GBps <= 1.2*c1.GBps {
		t.Fatalf("V-Cache region: CCD0 %.1f not clearly above CCD1 %.1f", c0.GBps, c1.GBps)
	}
	deep := 60_000_000
	d0 := triadSweep(m, amp.POnly, deep)
	d1 := triadSweep(m, amp.EOnly, deep)
	db := triadSweep(m, amp.PAndE, deep)
	if ratio := d0.GBps / d1.GBps; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("deep plateau CCD0/CCD1 = %.2f, want ~1", ratio)
	}
	if ratio := db.GBps / d0.GBps; ratio < 0.85 || ratio > 1.35 {
		t.Fatalf("deep plateau combined/single = %.2f, want ~1", ratio)
	}
	// On the homogeneous 7950X the mid-size gap must vanish.
	x := amp.AMDRyzen97950X()
	h0 := triadSweep(x, amp.POnly, mid)
	h1 := triadSweep(x, amp.EOnly, mid)
	if h0.GBps != h1.GBps {
		t.Fatalf("7950X CCDs differ: %.1f vs %.1f", h0.GBps, h1.GBps)
	}
}

// Small sizes: combined cores have more aggregate cache bandwidth than a
// single group (the left side of Figure 3's AMD subplot, where the
// combined line is on top).
func TestFig3AMDSmallSizesCombinedWins(t *testing.T) {
	m := amp.AMDRyzen97950X3D()
	small := 200_000 // 4.8MB, split across L2/L3 slices
	both := triadSweep(m, amp.PAndE, small)
	one := triadSweep(m, amp.POnly, small)
	if both.GBps <= one.GBps {
		t.Fatalf("small size: combined %.1f not above single CCD %.1f", both.GBps, one.GBps)
	}
}

// Bandwidth must be monotone non-increasing once past all cache capacities
// (no resurgence artifacts).
func TestTriadPlateauMonotone(t *testing.T) {
	m := amp.IntelI913900KF()
	prev := -1.0
	for _, elems := range []int{8_000_000, 16_000_000, 32_000_000, 64_000_000} {
		r := triadSweep(m, amp.PAndE, elems)
		if prev > 0 && r.GBps > prev*1.02 {
			t.Fatalf("plateau not monotone: %.1f after %.1f at %d", r.GBps, prev, elems)
		}
		prev = r.GBps
	}
}

// The plateau must approach but not exceed the configured chip bandwidth.
func TestTriadPlateauBelowChipBW(t *testing.T) {
	for _, m := range amp.All() {
		r := triadSweep(m, amp.PAndE, 80_000_000)
		if r.GBps > m.DRAMBWGBps+1e-9 {
			t.Errorf("%s: plateau %.1f exceeds chip %.1f", m.Name, r.GBps, m.DRAMBWGBps)
		}
		if r.GBps < 0.5*m.DRAMBWGBps {
			t.Errorf("%s: plateau %.1f implausibly below chip %.1f", m.Name, r.GBps, m.DRAMBWGBps)
		}
	}
}
