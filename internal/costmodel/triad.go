package costmodel

import "haspmv/internal/amp"

// TriadResult reports one stream-triad estimate.
type TriadResult struct {
	// GBps is the achieved bandwidth 24*N bytes / time, McCalpin's triad
	// accounting (a[i] = b[i] + s*c[i]: two loads and one store).
	GBps    float64
	Seconds float64
	BoundBy string
}

// EstimateTriad prices the stream triad kernel over N float64 elements
// split equally (OpenMP static scheduling, as the stream package does)
// across the given cores of machine m. This reproduces the paper's
// Figure 3 micro-benchmark: the three core compositions of each AMP swept
// over vector sizes from cache-resident to DRAM-bound.
func EstimateTriad(m *amp.Machine, p Params, cores []int, elems int) TriadResult {
	if len(cores) == 0 || elems <= 0 {
		return TriadResult{}
	}
	activeP, activeE := 0, 0
	for _, c := range cores {
		g, _ := m.GroupOf(c)
		if g.Kind == amp.Performance {
			activeP++
		} else {
			activeE++
		}
	}

	totalBytes := 24 * float64(elems)
	perCoreBytes := totalBytes / float64(len(cores))

	t := 0.0
	dram := make([]float64, len(cores))
	asgs := make([]Assignment, len(cores))
	for i, c := range cores {
		g, _ := m.GroupOf(c)
		asgs[i] = Assignment{Core: c}
		caps := effectiveCaches(m, g, activeP, activeE)
		lvl := waterfall(perCoreBytes, caps)
		bpc := levelBPC(g, p)
		sec := 0.0
		for l := 0; l < 3; l++ {
			sec += lvl[l] / (bpc[l] * g.FreqGHz * 1e9)
		}
		sec += lvl[3] / (g.MemBWGBps * 1e9)
		// The triad FMA itself is never the bottleneck on these cores;
		// charge one cycle per SIMD-width elements as a floor.
		compute := perCoreBytes / 24 / float64(g.SIMDLanes) / (g.FreqGHz * 1e9)
		if compute > sec {
			sec = compute
		}
		if sec > t {
			t = sec
		}
		dram[i] = lvl[3]
	}

	costs := make([]CoreCost, len(cores))
	for i := range costs {
		costs[i].Seconds = t // only the max matters to applyContention
	}
	sec, bound := applyContention(m, p, asgs, costs, dram, activeP, activeE)
	return TriadResult{GBps: totalBytes / sec / 1e9, Seconds: sec, BoundBy: bound}
}
