package costmodel

import (
	"testing"

	"haspmv/internal/amp"
)

func TestEnergyBasics(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(5000)
	r := EstimateSpMV(m, p, a, fullMatrixOn(0, a))
	e := EstimateEnergy(m, r)
	if e.Joules <= 0 || e.AvgWatts <= 0 || e.GFlopsPerWatt <= 0 {
		t.Fatalf("degenerate energy: %+v", e)
	}
	if e.Joules != e.CoreJoules+e.UncoreJoules {
		t.Fatal("energy components do not sum")
	}
	// One P-core at 13W plus 18W uncore, for the whole run.
	wantWatts := 13.0 + 18.0
	if e.AvgWatts < wantWatts-0.01 || e.AvgWatts > wantWatts+0.01 {
		t.Fatalf("avg watts %.2f, want ~%.0f", e.AvgWatts, wantWatts)
	}
}

// An E-core run must draw less average power than a P-core run of the
// same work on Intel — the premise of efficiency cores.
func TestECoreDrawsLessPower(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(5000)
	rp := EstimateSpMV(m, p, a, fullMatrixOn(0, a))
	re := EstimateSpMV(m, p, a, fullMatrixOn(8, a))
	ep := EstimateEnergy(m, rp)
	ee := EstimateEnergy(m, re)
	if ee.AvgWatts >= ep.AvgWatts {
		t.Fatalf("E-core %.1fW not below P-core %.1fW", ee.AvgWatts, ep.AvgWatts)
	}
	// And on this memory-light matrix the E-core is also more
	// energy-efficient despite being slower (Kumar et al.'s point).
	if ee.Joules >= ep.Joules*2.5 {
		t.Fatalf("E-core energy %.3gJ implausibly above P-core %.3gJ", ee.Joules, ep.Joules)
	}
}

// A faster schedule on the same cores must cost less energy: uncore power
// integrates over the makespan, so load balancing saves joules too.
func TestBalancedScheduleSavesEnergy(t *testing.T) {
	m := amp.IntelI912900KF()
	p := DefaultParams()
	a := mediumMatrix(20000)
	cores := m.Cores(amp.PAndE)
	even := EstimateSpMV(m, p, a, evenSplit(cores, a))
	n := a.NNZ()
	cut := n * 72 / 100
	asgs := make([]Assignment, 0, 16)
	for i := 0; i < 8; i++ {
		asgs = append(asgs, Assignment{Core: i, Spans: []Span{{Lo: cut * i / 8, Hi: cut * (i + 1) / 8}}})
	}
	for i := 0; i < 8; i++ {
		asgs = append(asgs, Assignment{Core: 8 + i, Spans: []Span{{Lo: cut + (n-cut)*i/8, Hi: cut + (n-cut)*(i+1)/8}}})
	}
	prop := EstimateSpMV(m, p, a, asgs)
	eEven := EstimateEnergy(m, even)
	eProp := EstimateEnergy(m, prop)
	if eProp.Joules >= eEven.Joules {
		t.Fatalf("balanced schedule energy %.3g not below even split %.3g", eProp.Joules, eEven.Joules)
	}
}

func TestEnergyZeroResult(t *testing.T) {
	m := amp.IntelI912900KF()
	e := EstimateEnergy(m, Result{})
	if e.Joules != 0 || e.AvgWatts != 0 || e.GFlopsPerWatt != 0 {
		t.Fatalf("empty result energy: %+v", e)
	}
}
