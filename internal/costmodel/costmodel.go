// Package costmodel estimates SpMV and stream-triad execution time on an
// amp.Machine. It is the performance substrate that substitutes for the
// paper's physical AMPs (DESIGN.md): per-core time combines a compute term
// (frequency, SIMD lanes, per-row kernel overhead — Algorithm 6's scalar
// vs vectorized paths), a memory term (streaming arrays through a cache
// "waterfall", x-vector gathers replayed through an LRU cache simulator),
// and chip-level DRAM bandwidth contention. Parallel time is the maximum
// over cores, subject to per-group fabric and chip DRAM ceilings — exactly
// the structure that makes heterogeneity-aware partitioning matter.
package costmodel

import (
	"fmt"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/cachesim"
	"haspmv/internal/sparse"
)

// Params are the calibration constants of the model. The defaults were
// chosen so the micro-benchmark shapes of the paper's Section III emerge
// (see EXPERIMENTS.md); they are exposed so the ablation benches can vary
// them.
type Params struct {
	// ValBytes/IdxBytes/PtrBytes are the storage sizes of csrVal,
	// csrColIdx and csrRowPtr entries (8/4/4 in the paper's C code; the
	// Go implementation uses wider ints, but the model follows the paper).
	ValBytes, IdxBytes, PtrBytes int

	// ScalarRowThreshold is Algorithm 6's cutoff: rows shorter than this
	// run the scalar loop.
	ScalarRowThreshold int
	// OverheadCyclesSIMD / OverheadCyclesScalar are per-row kernel-call
	// costs in scalar instructions (loop setup, horizontal add, y store,
	// branch); they retire at the group's IPCScalar rate, which is where
	// the P-cores' wide out-of-order front end pays off on short rows
	// (Figure 5's short-row gap).
	OverheadCyclesSIMD   float64
	OverheadCyclesScalar float64

	// MixedGroupDRAMPenalty reduces effective chip DRAM bandwidth when
	// both groups issue significant DRAM traffic concurrently, modeling
	// memory-controller interference between request streams of unequal
	// aggressiveness (the Figure 3 effect where P+E sits below P-only on
	// the DRAM plateau).
	MixedGroupDRAMPenalty float64

	// CacheWays gives the associativity used for the simulated x-vector
	// hierarchy (L1, L2, L3).
	CacheWays [3]int

	// XGatherPasses >= 1 replays the gather trace; the last pass is the
	// one measured, so passes=2 models the steady state of an iterative
	// solver (the paper times repeated SpMV).
	XGatherPasses int
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		ValBytes: 8, IdxBytes: 4, PtrBytes: 4,
		ScalarRowThreshold:    4,
		OverheadCyclesSIMD:    14,
		OverheadCyclesScalar:  8,
		MixedGroupDRAMPenalty: 0.12,
		CacheWays:             [3]int{8, 8, 16},
		XGatherPasses:         2,
	}
}

// Span is a half-open nonzero range [Lo, Hi) of a CSR matrix.
type Span struct{ Lo, Hi int }

// Assignment gives one core its share of the matrix as nnz spans.
// Spans may start or end mid-row (HASpMV cuts inside rows; the conflicts
// are resolved by the extraY epilogue), which the model charges as an
// extra kernel invocation per partial row.
type Assignment struct {
	Core  int
	Spans []Span
	// IdxBytes, when positive, overrides Params.IdxBytes for this
	// assignment's streaming term: algorithms with compressed per-region
	// column-index streams (HASpMV's u32/u16 execution streams) price
	// each region at the width it actually moves.
	IdxBytes int
	// ValBytes, when positive, overrides Params.ValBytes: compressed
	// value streams (HASpMV's 1-byte palette and opt-in 4-byte f32)
	// price each multiply at the width the kernels actually stream.
	ValBytes int
	// DiagBytes, when positive, replaces the per-nonzero index term
	// entirely with this total: a DIA-style region streams 8-byte run
	// descriptors plus u32 fallback indices for its non-diagonal rows,
	// which has no meaningful per-nonzero width.
	DiagBytes int
}

// NNZ returns the total nonzeros assigned.
func (a Assignment) NNZ() int {
	n := 0
	for _, s := range a.Spans {
		n += s.Hi - s.Lo
	}
	return n
}

// CoreCost is the per-core breakdown of an estimate.
type CoreCost struct {
	Core           int
	Seconds        float64
	ComputeSeconds float64
	MemSeconds     float64
	// LevelBytes[0..3] are bytes served by L1/L2/L3/DRAM for this core
	// (streaming plus gather traffic).
	LevelBytes [4]float64
	NNZ        int
	Rows       int
}

// Result is a full estimate.
type Result struct {
	// Seconds is the parallel makespan: max per-core time, raised to the
	// group-fabric and chip-DRAM floors when bandwidth binds.
	Seconds float64
	// PerCore holds one entry per assignment, in input order.
	PerCore []CoreCost
	// GFlops counts 2*nnz useful flops over Seconds.
	GFlops float64
	// DRAMBoundBy names which ceiling set the time: "core", "group" or
	// "chip"; useful in tests and the bandwidth experiments.
	BoundBy string
}

// EstimateSpMV prices one SpMV y = A*x executed with the given per-core
// assignment on machine m. Assignments must reference valid cores; spans
// must lie inside the matrix.
func EstimateSpMV(m *amp.Machine, p Params, a *sparse.CSR, asgs []Assignment) Result {
	nnzTotal := 0
	for _, asg := range asgs {
		nnzTotal += asg.NNZ()
	}
	activeP, activeE := 0, 0
	for _, asg := range asgs {
		g, _ := m.GroupOf(asg.Core)
		if g.Kind == amp.Performance {
			activeP++
		} else {
			activeE++
		}
	}

	res := Result{PerCore: make([]CoreCost, len(asgs))}
	xBytes := float64(a.Cols) * 8
	dramDemand := make([]float64, len(asgs)) // DRAM bytes per core

	// The x-gather hierarchies are reused across cores (Reset between) to
	// bound allocation; capacity is clamped to the x footprint since a
	// gather can never occupy more lines than x has.
	var hier *cachesim.Hierarchy
	var hierSizes [3]int

	for i, asg := range asgs {
		g, _ := m.GroupOf(asg.Core)
		cc := CoreCost{Core: asg.Core, NNZ: asg.NNZ()}

		// ---- compute term: walk rows, pricing Algorithm 6's paths.
		cycles := 0.0
		rows := 0
		for _, sp := range asg.Spans {
			cycles += spanComputeCycles(a, sp, g, p, &rows)
		}
		cc.Rows = rows
		cc.ComputeSeconds = cycles / (g.FreqGHz * 1e9)

		// ---- memory term.
		idxBytes := p.IdxBytes
		if asg.IdxBytes > 0 {
			idxBytes = asg.IdxBytes
		}
		idxTraffic := cc.NNZ * idxBytes
		if asg.DiagBytes > 0 {
			idxTraffic = asg.DiagBytes
		}
		valBytes := p.ValBytes
		if asg.ValBytes > 0 {
			valBytes = asg.ValBytes
		}
		streamBytes := float64(cc.NNZ*valBytes + idxTraffic + rows*(p.PtrBytes+8))
		caps := effectiveCaches(m, g, activeP, activeE)
		share := xShare(xBytes, streamBytes, caps)

		// Streaming waterfall over the stream share of each level.
		lvlBytes := waterfall(streamBytes, [3]float64{
			caps[0] * (1 - share),
			caps[1] * (1 - share),
			caps[2] * (1 - share),
		})

		// x-vector gathers through the LRU simulator over the x share.
		var xSizes [3]int
		for l := 0; l < 3; l++ {
			c := int(caps[l] * share)
			if max := int(xBytes) + 4096; c > max {
				c = max
			}
			xSizes[l] = c
		}
		if hier == nil || hierSizes != xSizes {
			hier = cachesim.NewHierarchy(m.CacheLineBytes, p.CacheWays[:], xSizes[:])
			hierSizes = xSizes
		} else {
			hier.Reset()
		}
		gatherLvl := replayGather(hier, a, asg.Spans, p.XGatherPasses)
		line := float64(m.CacheLineBytes)
		// An access served by level k moves one line from k; L1 hits move
		// the requested word only.
		lvlBytes[0] += float64(gatherLvl[0]) * 8
		lvlBytes[1] += float64(gatherLvl[1]) * line
		lvlBytes[2] += float64(gatherLvl[2]) * line
		lvlBytes[3] += float64(gatherLvl[3]) * line

		bpc := levelBPC(g, p)
		mem := 0.0
		for l := 0; l < 3; l++ {
			mem += lvlBytes[l] / (bpc[l] * g.FreqGHz * 1e9)
		}
		mem += lvlBytes[3] / (g.MemBWGBps * 1e9)
		cc.MemSeconds = mem
		cc.LevelBytes = lvlBytes
		dramDemand[i] = lvlBytes[3]

		// Compute and memory overlap on out-of-order cores; the longer
		// stream dominates.
		cc.Seconds = cc.ComputeSeconds
		if mem > cc.Seconds {
			cc.Seconds = mem
		}
		res.PerCore[i] = cc
	}

	res.Seconds, res.BoundBy = applyContention(m, p, asgs, res.PerCore, dramDemand, activeP, activeE)
	if res.Seconds > 0 {
		res.GFlops = 2 * float64(nnzTotal) / res.Seconds / 1e9
	}
	return res
}

// spanComputeCycles prices the kernel work of one span, counting each
// (partial) row as one kernel invocation.
func spanComputeCycles(a *sparse.CSR, sp Span, g *amp.CoreGroup, p Params, rows *int) float64 {
	if sp.Hi <= sp.Lo {
		return 0
	}
	if sp.Lo < 0 || sp.Hi > a.NNZ() {
		panic(fmt.Sprintf("costmodel: span [%d,%d) outside nnz %d", sp.Lo, sp.Hi, a.NNZ()))
	}
	// First row whose end exceeds Lo.
	r := sort.Search(a.Rows, func(i int) bool { return a.RowPtr[i+1] > sp.Lo }) // a.RowPtr[r] <= Lo < RowPtr[r+1]
	cycles := 0.0
	pos := sp.Lo
	for pos < sp.Hi {
		end := a.RowPtr[r+1]
		if end > sp.Hi {
			end = sp.Hi
		}
		l := end - pos
		if l > 0 {
			if l < p.ScalarRowThreshold {
				cycles += (float64(l) + p.OverheadCyclesScalar) / g.IPCScalar
			} else {
				cycles += float64(l)/float64(g.SIMDLanes) + p.OverheadCyclesSIMD/g.IPCScalar
			}
			*rows++
		}
		pos = end
		r++
	}
	return cycles
}

// effectiveCaches returns the per-core capacities [L1, L2, L3] available
// to one core of group g given how many cores of each group are active.
func effectiveCaches(m *amp.Machine, g *amp.CoreGroup, activeP, activeE int) [3]float64 {
	var caps [3]float64
	caps[0] = float64(g.L1DBytes)

	// L2 clusters: distribute this group's active cores over its
	// clusters and divide the cluster capacity.
	activeInGroup := activeP
	if g.Kind == amp.Efficiency {
		activeInGroup = activeE
	}
	if activeInGroup < 1 {
		activeInGroup = 1
	}
	clusters := g.Cores / g.L2SharedBy
	if clusters < 1 {
		clusters = 1
	}
	perCluster := (activeInGroup + clusters - 1) / clusters
	if perCluster > g.L2SharedBy {
		perCluster = g.L2SharedBy
	}
	if perCluster < 1 {
		perCluster = 1
	}
	caps[1] = float64(g.L2Bytes) / float64(perCluster)

	// L3: chip-wide pool on Intel (shared by every active core), per-CCD
	// on AMD (shared by the group's active cores). The x vector is shared
	// read-only data, so the division below is conservative for x but
	// right for the private streaming slices; xShare rebalances.
	sharers := activeInGroup
	if g.L3SharedWithOtherGroup {
		sharers = activeP + activeE
	}
	if sharers < 1 {
		sharers = 1
	}
	caps[2] = float64(g.L3Bytes) / float64(sharers)
	return caps
}

// xShare splits cache capacity between the shared x vector and the private
// streaming arrays, proportionally to their footprints at the L3 scale.
func xShare(xBytes, streamBytes float64, caps [3]float64) float64 {
	s := streamBytes
	if s > caps[2]*4 {
		s = caps[2] * 4 // streaming beyond any cache does not add pressure
	}
	if xBytes+s == 0 {
		return 0.5
	}
	share := xBytes / (xBytes + s)
	if share < 0.15 {
		share = 0.15
	}
	if share > 0.85 {
		share = 0.85
	}
	return share
}

// waterfall distributes a streaming footprint across cache levels: the
// portion fitting in L1 is served there on re-traversal, the next slice
// from L2, and so on; the remainder comes from DRAM. Returns bytes served
// per level [L1, L2, L3, DRAM].
func waterfall(footprint float64, caps [3]float64) [4]float64 {
	var out [4]float64
	prev := 0.0
	cum := 0.0
	for l := 0; l < 3; l++ {
		if caps[l] > cum {
			cum = caps[l]
		}
		served := footprint
		if served > cum {
			served = cum
		}
		out[l] = served - prev
		if out[l] < 0 {
			out[l] = 0
		}
		prev = served
	}
	out[3] = footprint - prev
	if out[3] < 0 {
		out[3] = 0
	}
	return out
}

// replayGather runs the x-access trace of the spans through the hierarchy,
// returning counts of accesses served per level [L1, L2, L3, DRAM] for the
// final pass.
func replayGather(h *cachesim.Hierarchy, a *sparse.CSR, spans []Span, passes int) [4]int64 {
	if passes < 1 {
		passes = 1
	}
	var counts [4]int64
	mem := h.MemoryLevel()
	for pass := 0; pass < passes; pass++ {
		last := pass == passes-1
		for _, sp := range spans {
			for k := sp.Lo; k < sp.Hi; k++ {
				lvl := h.Access(uint64(a.ColIdx[k]) * 8)
				if last {
					// Map a short hierarchy (skipped levels) onto the
					// 4-slot histogram: misses land in DRAM.
					if lvl >= mem {
						counts[3]++
					} else {
						counts[lvl]++
					}
				}
			}
		}
	}
	return counts
}

func levelBPC(g *amp.CoreGroup, _ Params) [3]float64 {
	return [3]float64{g.L1BPC, g.L2BPC, g.L3BPC}
}

// applyContention raises the makespan to the bandwidth floors: each
// group's DRAM traffic cannot drain faster than its fabric allows, and the
// chip total cannot exceed DRAM bandwidth (derated when both groups
// compete). Returns the final time and which constraint bound it.
func applyContention(m *amp.Machine, p Params, asgs []Assignment, costs []CoreCost, dramDemand []float64, activeP, activeE int) (float64, string) {
	t := 0.0
	for _, c := range costs {
		if c.Seconds > t {
			t = c.Seconds
		}
	}
	bound := "core"

	var groupDemand [2]float64
	total := 0.0
	for i, asg := range asgs {
		g, _ := m.GroupOf(asg.Core)
		if g.Kind == amp.Performance {
			groupDemand[0] += dramDemand[i]
		} else {
			groupDemand[1] += dramDemand[i]
		}
		total += dramDemand[i]
	}
	for gi := 0; gi < 2; gi++ {
		floor := groupDemand[gi] / (m.Groups[gi].GroupMemBWGBps * 1e9)
		if floor > t {
			t = floor
			bound = "group"
		}
	}
	chipBW := m.DRAMBWGBps
	if activeP > 0 && activeE > 0 && total > 0 {
		// Penalty scales with how balanced the two request streams are:
		// maximal when both groups drive half the traffic each.
		minShare := groupDemand[0] / total
		if 1-minShare < minShare {
			minShare = 1 - minShare
		}
		chipBW *= 1 - p.MixedGroupDRAMPenalty*2*minShare
	}
	if floor := total / (chipBW * 1e9); floor > t {
		t = floor
		bound = "chip"
	}
	return t, bound
}
