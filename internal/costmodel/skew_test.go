package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

func TestComputeRowSkewBasics(t *testing.T) {
	// 4 rows: lengths 0, 1, 3, 8 → nnz 12.
	rowPtr := []int{0, 0, 1, 4, 12}
	s := ComputeRowSkew(rowPtr)
	if s.Rows != 4 || s.MaxRowNNZ != 8 {
		t.Fatalf("rows %d max %d, want 4/8", s.Rows, s.MaxRowNNZ)
	}
	if s.MeanRowNNZ != 3 {
		t.Fatalf("mean %v, want 3", s.MeanRowNNZ)
	}
	if s.MaxShare != 8.0/12 {
		t.Fatalf("max share %v, want %v", s.MaxShare, 8.0/12)
	}
	// Sorted lengths 0,1,3,8: G = 2*(0+2+9+32)/(4*12) - 5/4 = 0.541666…
	if want := 2*43.0/48 - 1.25; math.Abs(s.Gini-want) > 1e-12 {
		t.Fatalf("gini %v, want %v", s.Gini, want)
	}

	if s := ComputeRowSkew([]int{0}); s != (RowSkew{}) {
		t.Fatalf("empty matrix skew %+v, want zero", s)
	}
	if s := ComputeRowSkew([]int{0, 0, 0}); s.Gini != 0 || s.MaxShare != 0 {
		t.Fatalf("all-empty skew %+v", s)
	}
	// Perfectly even rows: Gini exactly 0.
	if s := ComputeRowSkew([]int{0, 5, 10, 15, 20}); s.Gini != 0 {
		t.Fatalf("even rows gini %v, want 0", s.Gini)
	}
}

// The counting-sort Gini must agree with sparse.ComputeRowStats'
// sort-based one on arbitrary matrices (different summation orders, so
// tolerance rather than bit equality).
func TestRowSkewGiniMatchesRowStats(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		rows := 1 + r.Intn(500)
		a := gen.Spec{
			Name: "g", Rows: rows, Cols: 1 + r.Intn(500),
			TargetNNZ: 1 + r.Intn(rows*10),
			Dist:      gen.PowerLen{Min: 1, Max: 200, Gamma: 1.5},
			Place:     gen.Placement(r.Intn(4)),
			Seed:      int64(trial),
		}.Generate()
		want := sparse.ComputeRowStats(a)
		got := ComputeRowSkew(a.RowPtr)
		if math.Abs(got.Gini-want.Gini) > 1e-9 {
			t.Fatalf("trial %d: gini %v, want %v", trial, got.Gini, want.Gini)
		}
		if got.MaxRowNNZ != want.MaxRowLen {
			t.Fatalf("trial %d: max %d, want %d", trial, got.MaxRowNNZ, want.MaxRowLen)
		}
	}
}

func TestPreferSegSum(t *testing.T) {
	// Hub shape: one row holds 30% of nnz — any multi-core run wants the
	// parallel patch.
	hub := RowSkew{Rows: 100, MaxRowNNZ: 300, MeanRowNNZ: 10, MaxShare: 0.3, Gini: 0.4}
	if !hub.PreferSegSum(8) {
		t.Error("hub shape rejected at 8 cores")
	}
	if hub.PreferSegSum(1) {
		t.Error("single core accepted (no cut rows exist)")
	}
	// Power-law shape: short typical rows, high inequality.
	pl := RowSkew{Rows: 1 << 20, MaxRowNNZ: 5000, MeanRowNNZ: 4, MaxShare: 0.001, Gini: 0.75}
	if !pl.PreferSegSum(8) {
		t.Error("power-law shape rejected")
	}
	// Regular FEM shape: even rows, moderate length.
	fem := RowSkew{Rows: 1 << 20, MaxRowNNZ: 60, MeanRowNNZ: 55, MaxShare: 1e-6, Gini: 0.02}
	if fem.PreferSegSum(8) {
		t.Error("regular shape accepted")
	}
	if (RowSkew{}).PreferSegSum(8) {
		t.Error("zero skew accepted")
	}
}

func TestRowsSpanningCores(t *testing.T) {
	// One row holding everything: every interior cut lands inside it,
	// but it is a single spanning row.
	if got := RowsSpanningCores([]int{0, 100}, 8); got != 1 {
		t.Fatalf("single row: %d, want 1", got)
	}
	// Even rows aligned with the cuts: no row spans.
	if got := RowsSpanningCores([]int{0, 25, 50, 75, 100}, 4); got != 0 {
		t.Fatalf("aligned rows: %d, want 0", got)
	}
	// Rows of 3 over 10 nnz cut at 5: the middle row spans.
	if got := RowsSpanningCores([]int{0, 3, 6, 9, 10}, 2); got != 1 {
		t.Fatalf("offset rows: %d, want 1", got)
	}
	if got := RowsSpanningCores([]int{0, 10}, 1); got != 0 {
		t.Fatalf("one core: %d, want 0", got)
	}
	if got := RowsSpanningCores([]int{0, 0, 0}, 4); got != 0 {
		t.Fatalf("empty matrix: %d, want 0", got)
	}
}
