package costmodel

// Row-length skew: the cost-model term behind the segmented-sum
// execution dispatch. HASpMV's extraY epilogue is a serial tail whose
// length grows with the number of rows cut across cores, and the
// fragment walk pays a fixed per-row overhead that dominates when the
// typical row holds only a few nonzeros — both are properties of the
// row-length *distribution*, not of the nnz total the partitioner
// balances. RowSkew captures that distribution in the two classic
// shapes: the hub-row extreme (max-row-nnz against the mean and the
// total) and the overall inequality (Gini coefficient), computed
// exactly in O(rows + maxRowLen) with a counting sort so Prepare can
// afford it on every call.

// RowSkew summarizes the row-length distribution of a matrix for the
// execution-mode dispatch (and cmd/mminfo's skew report).
type RowSkew struct {
	// Rows is the row count; MaxRowNNZ the longest row's nonzeros.
	Rows      int
	MaxRowNNZ int
	// MeanRowNNZ is nnz/rows.
	MeanRowNNZ float64
	// MaxShare is MaxRowNNZ over the total nonzeros: the fraction of the
	// matrix one hub row holds.
	MaxShare float64
	// Gini is the Gini coefficient of the row lengths: 0 for perfectly
	// even rows, approaching 1 for power-law matrices.
	Gini float64
}

// ComputeRowSkew derives the skew statistics from a CSR row pointer
// (len rows+1, monotone). Gini is exact, via a counting sort over the
// lengths: with sorted lengths x_(1..n),
// G = 2*sum(i*x_(i))/(n*sum x) - (n+1)/n.
func ComputeRowSkew(rowPtr []int) RowSkew {
	rows := len(rowPtr) - 1
	if rows <= 0 {
		return RowSkew{}
	}
	s := RowSkew{Rows: rows}
	nnz := rowPtr[rows] - rowPtr[0]
	for i := 0; i < rows; i++ {
		if l := rowPtr[i+1] - rowPtr[i]; l > s.MaxRowNNZ {
			s.MaxRowNNZ = l
		}
	}
	s.MeanRowNNZ = float64(nnz) / float64(rows)
	if nnz <= 0 {
		return s
	}
	s.MaxShare = float64(s.MaxRowNNZ) / float64(nnz)
	counts := make([]int, s.MaxRowNNZ+1)
	for i := 0; i < rows; i++ {
		counts[rowPtr[i+1]-rowPtr[i]]++
	}
	rank := counts[0] // zero-length rows occupy the lowest ranks, weight 0
	weighted := 0.0
	for l := 1; l <= s.MaxRowNNZ; l++ {
		c := counts[l]
		if c == 0 {
			continue
		}
		// Ranks rank+1 .. rank+c all carry length l.
		weighted += float64(l) * (float64(c)*float64(rank) + float64(c)*float64(c+1)/2)
		rank += c
	}
	n := float64(rows)
	s.Gini = 2*weighted/(n*float64(nnz)) - (n+1)/n
	return s
}

// PreferSegSum is the dispatch predicate: does the skew predict that
// the serial extraY epilogue and the fragment walk's per-row overhead
// dominate a multiply across this many cores? True on the two shapes
// segmented-sum execution exists for:
//
//   - a hub row holding at least half of one core's equal share, which
//     forces a multi-core cut whose merge serializes the tail no matter
//     how well nnz is balanced, and
//   - a short-row-dominated power-law profile (high Gini, small mean),
//     where the per-row kernel dispatch is the critical path the
//     descriptor walk removes.
func (s RowSkew) PreferSegSum(cores int) bool {
	if cores < 2 || s.Rows == 0 || s.MeanRowNNZ <= 0 {
		return false
	}
	if s.MaxShare*float64(cores) >= 0.5 {
		return true
	}
	return s.Gini >= 0.6 && s.MeanRowNNZ <= 32
}

// RowsSpanningCores counts the rows an equal-nnz partition across
// `cores` cores cuts mid-row — each one an extraY merge the serial
// epilogue pays for. It is the cheap nnz-cut approximation of the cost
// partition (boundaries at i*nnz/cores), which is what cmd/mminfo
// reports as segmented-sum eligibility context.
func RowsSpanningCores(rowPtr []int, cores int) int {
	rows := len(rowPtr) - 1
	if rows <= 0 || cores < 2 {
		return 0
	}
	nnz := rowPtr[rows] - rowPtr[0]
	if nnz <= 0 {
		return 0
	}
	count, prevRow := 0, -1
	r := 0
	for i := 1; i < cores; i++ {
		c := rowPtr[0] + nnz*i/cores
		for r < rows && rowPtr[r+1] <= c {
			r++
		}
		if r < rows && rowPtr[r] < c && c < rowPtr[r+1] && r != prevRow {
			count++
			prevRow = r
		}
	}
	return count
}
