// Package stats provides the small statistical toolkit the experiment
// harness needs: means, geometric means, percentiles, linear regression
// (Figure 5 draws a regression line through the speedup scatter), and
// speedup summaries (Figure 8 reports average and maximum speedups).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; non-positive
// entries are skipped (they would make the product meaningless).
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min and Max return the extremes, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation, or 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// LinReg is a fitted line y = Slope*x + Intercept.
type LinReg struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	N  int
}

// LinearRegression fits ordinary least squares through (x, y) pairs.
// Fewer than two points, or zero x-variance, yield a flat line through
// the mean.
func LinearRegression(xs, ys []float64) LinReg {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n == 0 {
		return LinReg{}
	}
	mx := Mean(xs[:n])
	my := Mean(ys[:n])
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 || n < 2 {
		return LinReg{Slope: 0, Intercept: my, R2: 0, N: n}
	}
	slope := sxy / sxx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinReg{Slope: slope, Intercept: my - slope*mx, R2: r2, N: n}
}

// At evaluates the fitted line.
func (l LinReg) At(x float64) float64 { return l.Slope*x + l.Intercept }

// SpeedupSummary condenses a per-matrix speedup distribution the way the
// paper's abstract reports it: "average speedup of 2.61x (up to 5.23x)".
type SpeedupSummary struct {
	N       int
	Mean    float64
	GeoMean float64
	Max     float64
	Min     float64
	Median  float64
	// WinRate is the fraction of cases with speedup > 1.
	WinRate float64
}

// Summarize builds a SpeedupSummary from per-case speedups.
func Summarize(speedups []float64) SpeedupSummary {
	s := SpeedupSummary{
		N:       len(speedups),
		Mean:    Mean(speedups),
		GeoMean: GeoMean(speedups),
		Max:     Max(speedups),
		Min:     Min(speedups),
		Median:  Percentile(speedups, 50),
	}
	wins := 0
	for _, v := range speedups {
		if v > 1 {
			wins++
		}
	}
	if s.N > 0 {
		s.WinRate = float64(wins) / float64(s.N)
	}
	return s
}

// Log10 returns log10(x) guarding zero/negative inputs (scatter axes in
// the figures are log-scaled).
func Log10(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log10(x)
}

// BinByX averages ys within log-spaced x bins — Figure 5 "averages
// matrices with the same average row lengths to make the figure clearer".
// Returns bin centers and means for non-empty bins.
func BinByX(xs, ys []float64, bins int) (cx, cy []float64) {
	if len(xs) == 0 || bins < 1 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	if hi <= lo {
		return []float64{lo}, []float64{Mean(ys)}
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for i, x := range xs {
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		cx = append(cx, lo+(float64(b)+0.5)*(hi-lo)/float64(bins))
		cy = append(cy, sums[b]/float64(counts[b]))
	}
	return cx, cy
}
