package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty means")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean")
	}
	// Non-positive entries skipped.
	if !almost(GeoMean([]float64{-1, 0, 4, 1}), 2) {
		t.Fatal("geomean with junk")
	}
	if GeoMean([]float64{0, -2}) != 0 {
		t.Fatal("all-junk geomean")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {105, 50}, {12.5, 15},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !almost(got, tc.want) {
			t.Errorf("P%.1f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("singleton percentile")
	}
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	l := LinearRegression(xs, ys)
	if !almost(l.Slope, 2) || !almost(l.Intercept, 1) || !almost(l.R2, 1) {
		t.Fatalf("fit: %+v", l)
	}
	if !almost(l.At(10), 21) {
		t.Fatal("At")
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if l := LinearRegression(nil, nil); l.N != 0 {
		t.Fatal("empty fit")
	}
	l := LinearRegression([]float64{5, 5, 5}, []float64{1, 2, 3})
	if l.Slope != 0 || !almost(l.Intercept, 2) {
		t.Fatalf("zero-variance fit: %+v", l)
	}
	l = LinearRegression([]float64{1}, []float64{9})
	if l.Slope != 0 || !almost(l.Intercept, 9) {
		t.Fatalf("single-point fit: %+v", l)
	}
	// Mismatched lengths use the common prefix.
	l = LinearRegression([]float64{0, 1, 2}, []float64{0, 2})
	if l.N != 2 {
		t.Fatalf("prefix fit N = %d", l.N)
	}
}

// Property: regression residuals are orthogonal to x (normal equations).
func TestRegressionNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			ys[i] = 3*xs[i] - 2 + r.NormFloat64()
		}
		l := LinearRegression(xs, ys)
		dot := 0.0
		sum := 0.0
		for i := range xs {
			res := ys[i] - l.At(xs[i])
			dot += res * xs[i]
			sum += res
		}
		return math.Abs(dot) < 1e-6*float64(n)*100 && math.Abs(sum) < 1e-6*float64(n)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 1.5, 2.0, 4.0})
	if s.N != 4 || !almost(s.Mean, 2.0) || !almost(s.Max, 4) || !almost(s.Min, 0.5) {
		t.Fatalf("summary: %+v", s)
	}
	if !almost(s.WinRate, 0.75) {
		t.Fatalf("winrate: %v", s.WinRate)
	}
	if !almost(s.Median, 1.75) {
		t.Fatalf("median: %v", s.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.WinRate != 0 {
		t.Fatal("empty summary")
	}
}

func TestLog10(t *testing.T) {
	if !almost(Log10(1000), 3) || Log10(0) != 0 || Log10(-3) != 0 {
		t.Fatal("log10 guard")
	}
}

func TestBinByX(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	cx, cy := BinByX(xs, ys, 2)
	if len(cx) != 2 || len(cy) != 2 {
		t.Fatalf("bins: %v %v", cx, cy)
	}
	// First bin holds 0..4 (x < 4.5), second 5..9.
	if !almost(cy[0], 2) || !almost(cy[1], 7) {
		t.Fatalf("bin means: %v", cy)
	}
	if cx, cy = BinByX(nil, nil, 3); cx != nil || cy != nil {
		t.Fatal("empty bins")
	}
	cx, cy = BinByX([]float64{2, 2}, []float64{1, 3}, 4)
	if len(cx) != 1 || !almost(cy[0], 2) {
		t.Fatalf("degenerate-range bins: %v %v", cx, cy)
	}
}
