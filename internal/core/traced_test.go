package core

import (
	"math/rand"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

func tracedFixture(t *testing.T, name string) (*Prepared, []float64, []float64) {
	t.Helper()
	a := algtest.Matrix(name)
	prep, err := New(Options{}).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatal(err)
	}
	p := prep.(*Prepared)
	r := rand.New(rand.NewSource(42))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return p, make([]float64, a.Rows), x
}

// ComputeTraced must produce bitwise the vector Compute produces and a
// breakdown whose stages and metadata are internally consistent.
func TestComputeTracedMatchesComputeAndFillsBreakdown(t *testing.T) {
	p, y, x := tracedFixture(t, "powerlaw")
	want := make([]float64, len(y))
	p.Compute(want, x)

	var bd tracing.ComputeBreakdown
	p.ComputeTraced(y, x, &bd)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v (bitwise)", i, y[i], want[i])
		}
	}
	if bd.KernelNs <= 0 {
		t.Fatalf("KernelNs = %d, want > 0", bd.KernelNs)
	}
	if bd.MergeNs < 0 {
		t.Fatalf("MergeNs = %d, want >= 0", bd.MergeNs)
	}
	if bd.Cores != len(p.Regions()) {
		t.Fatalf("Cores = %d, want %d regions", bd.Cores, len(p.Regions()))
	}
	if bd.MaxCoreNs <= 0 || bd.MaxCoreNs > bd.KernelNs+bd.MergeNs+int64(1e9) {
		t.Fatalf("MaxCoreNs = %d out of range (kernel %d)", bd.MaxCoreNs, bd.KernelNs)
	}
	var nnz int64
	for _, n := range bd.NNZByFormat {
		nnz += n
	}
	if nnz != int64(p.mat.NNZ()) {
		t.Fatalf("NNZByFormat sums to %d, want nnz %d", nnz, p.mat.NNZ())
	}
	if bd.Bytes != p.TrafficBytes() {
		t.Fatalf("Bytes = %d, want TrafficBytes %d", bd.Bytes, p.TrafficBytes())
	}
	if bd.Bytes <= int64(p.mat.NNZ())*8 {
		t.Fatalf("Bytes = %d, want more than the value stream alone (%d)", bd.Bytes, p.mat.NNZ()*8)
	}
}

func TestComputeBatchTracedMatchesBatch(t *testing.T) {
	p, _, x := tracedFixture(t, "hub-row")
	const nv = 5
	X := make([][]float64, nv)
	Y := make([][]float64, nv)
	want := make([][]float64, nv)
	for v := range X {
		X[v] = make([]float64, len(x))
		copy(X[v], x)
		X[v][v] += float64(v)
		Y[v] = make([]float64, p.mat.Rows)
		want[v] = make([]float64, p.mat.Rows)
	}
	p.ComputeBatch(want, X)

	var bd tracing.ComputeBreakdown
	p.ComputeBatchTraced(Y, X, &bd)
	for v := range Y {
		for i := range Y[v] {
			if Y[v][i] != want[v][i] {
				t.Fatalf("Y[%d][%d] = %v, want %v (bitwise)", v, i, Y[v][i], want[v][i])
			}
		}
	}
	if bd.KernelNs <= 0 || bd.Cores != len(p.Regions()) {
		t.Fatalf("breakdown %+v not filled", bd)
	}
	if bd.Bytes != p.batchTrafficBytes(nv) {
		t.Fatalf("Bytes = %d, want %d", bd.Bytes, p.batchTrafficBytes(nv))
	}
	if bd.Bytes <= p.TrafficBytes() {
		t.Fatalf("batch Bytes = %d, want more than single-vector %d", bd.Bytes, p.TrafficBytes())
	}
}

// The tentpole's hard requirement: the traced hot paths allocate exactly
// as much as the untraced ones — nothing — with telemetry disabled, both
// directly and through the exec dispatch helpers.
func TestComputeTracedZeroAllocs(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	p, y, x := tracedFixture(t, "powerlaw")
	var bd tracing.ComputeBreakdown
	p.ComputeTraced(y, x, &bd) // warm scratch
	if n := testing.AllocsPerRun(100, func() {
		bd.Reset()
		p.ComputeTraced(y, x, &bd)
	}); n != 0 {
		t.Fatalf("ComputeTraced allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		bd.Reset()
		exec.ComputeTraced(p, y, x, &bd)
	}); n != 0 {
		t.Fatalf("exec.ComputeTraced allocates %.1f/op, want 0", n)
	}
}

func TestComputeBatchTracedZeroAllocs(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	p, _, x := tracedFixture(t, "powerlaw")
	const maxNV = 9
	X := make([][]float64, maxNV)
	Y := make([][]float64, maxNV)
	for v := range X {
		X[v] = x
		Y[v] = make([]float64, p.mat.Rows)
	}
	var bd tracing.ComputeBreakdown
	p.ComputeBatchTraced(Y, X, &bd) // warm scratch at the largest width
	for _, nv := range []int{maxNV, 4, 1} {
		if n := testing.AllocsPerRun(100, func() {
			bd.Reset()
			exec.ComputeBatchTraced(p, Y[:nv], X[:nv], &bd)
		}); n != 0 {
			t.Fatalf("nv=%d: exec.ComputeBatchTraced allocates %.1f/op, want 0", nv, n)
		}
	}
}

// The roofline gauges move when telemetry is on: a multiply stamps the
// effective bandwidth, Prepare the triad peak.
func TestEffectiveBandwidthGauges(t *testing.T) {
	prev := telemetry.Activate(telemetry.NewCollector())
	defer telemetry.Activate(prev)
	p, y, x := tracedFixture(t, "powerlaw")
	if p.TriadPeakMBps() <= 0 {
		t.Fatalf("TriadPeakMBps = %d, want > 0", p.TriadPeakMBps())
	}
	p.Compute(y, x)
	st := telemetry.Snapshot()
	if st.Gauges["core_triad_peak_mbps"] != p.TriadPeakMBps() {
		t.Fatalf("triad peak gauge %d, want %d", st.Gauges["core_triad_peak_mbps"], p.TriadPeakMBps())
	}
	eff := st.Gauges["core_effective_bandwidth_mbps"]
	if eff <= 0 {
		t.Fatalf("effective bandwidth gauge %d, want > 0", eff)
	}
	if st.Gauges["core_roofline_pct"] != eff*100/p.TriadPeakMBps() {
		t.Fatalf("roofline pct gauge %d inconsistent with eff %d / peak %d",
			st.Gauges["core_roofline_pct"], eff, p.TriadPeakMBps())
	}
}

// exec's graceful degradation: a Prepared without the traced interfaces
// still yields a whole-call kernel attribution.
func TestExecTracedFallback(t *testing.T) {
	p, y, x := tracedFixture(t, "tall-rect")
	plain := struct{ exec.Prepared }{p} // hides the traced methods
	var bd tracing.ComputeBreakdown
	exec.ComputeTraced(plain, y, x, &bd)
	if bd.KernelNs <= 0 || bd.Cores != 0 {
		t.Fatalf("fallback breakdown %+v, want whole-call kernel time only", bd)
	}
	want := make([]float64, len(y))
	p.Compute(want, x)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("fallback y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	bd.Reset()
	Y, X := [][]float64{y}, [][]float64{x}
	exec.ComputeBatchTraced(plain, Y, X, &bd)
	if bd.KernelNs <= 0 {
		t.Fatalf("batch fallback breakdown %+v", bd)
	}
}
