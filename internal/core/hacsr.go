// Package core implements the paper's contribution: the HACSR sparse
// format and the HASpMV algorithm — heterogeneity-aware SpMV for
// asymmetric multicore processors.
//
// The pipeline follows Section IV:
//
//  1. HACSR conversion (Algorithm 2): reorder row *pointers* so rows
//     shorter than a threshold `base` sit in the front of the matrix and
//     long rows at the back. Column indices and values never move, so
//     conversion is O(rows).
//  2. Cache-line cost (Algorithm 3): the load unit per row is the number
//     of distinct x-vector cache lines it touches, not its nonzero count.
//  3. Two-level partition (Algorithm 4): level 1 splits the total cost
//     between the P-group (short rows, where its per-core advantage is
//     largest) and the E-group by a proportion calibrated per machine;
//     level 2 splits each part equally among the group's cores, cutting
//     inside rows when necessary.
//  4. Execution (Algorithm 5): per-core kernels over the assigned
//     fragments; a row fragment that does not start its row accumulates
//     into an extraY slot and is added back in a serial epilogue,
//     avoiding write conflicts.
package core

import (
	"fmt"

	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// HACSR is the heterogeneity-aware CSR variant of Section IV-B. It is a
// view over an existing CSR matrix: only row-level indirection is stored.
type HACSR struct {
	// Rows and Cols mirror the source matrix.
	Rows, Cols int
	// Base is the short/long row threshold used for the reorder.
	Base int
	// Perm maps reordered position -> original row index.
	Perm []int
	// RowPtr is the row pointer of the reordered matrix (hacsrRowPtr):
	// reordered row i covers reordered-nnz positions
	// [RowPtr[i], RowPtr[i+1]).
	RowPtr []int
	// RowBeginNNZ[i] is the offset of reordered row i's first nonzero in
	// the *original* value/column arrays (row_begin_nnz in Algorithm 2).
	RowBeginNNZ []int
	// NumShort is the count of rows with length < Base (they occupy
	// reordered positions [0, NumShort)).
	NumShort int
}

// Convert builds the HACSR view of a with the given threshold, following
// Algorithm 2: rows shorter than base fill forward from the front, rows of
// length >= base fill backward from the tail (and therefore appear in
// reverse encounter order, exactly as the front_row/tail_row pointers of
// the paper leave them).
func Convert(a *sparse.CSR, base int) *HACSR {
	h, _ := convert(a, base)
	return h
}

// convert is Convert plus fused empty-row collection: Prepare needs the
// zero-length rows anyway (they occupy no width in nnz space and must be
// zeroed explicitly), and the reorder sweep already reads every row
// length, so they are collected in the same pass instead of re-scanning
// the row pointer afterwards.
//
// Above the grain the sweep runs as a two-pass parallel counting sort.
// The sort key is the short/long class and the order within each class is
// the serial encounter order, which two passes preserve exactly: pass one
// counts each chunk's short and long rows, a serial scan turns the counts
// into per-chunk write offsets (shorts ascending from the front, longs
// descending from the tail — the front_row/tail_row pointers of Algorithm
// 2, pre-advanced per chunk), and pass two places rows at those offsets.
// Chunks cover ascending row ranges, so a row's position depends only on
// the class counts before it — the same stability argument as any
// counting sort — and the output is bit-identical to the serial loop.
func convert(a *sparse.CSR, base int) (*HACSR, []int) {
	m := a.Rows
	// One backing allocation: conversion cost is HACSR's selling point
	// (Figure 10), so the constant factors matter.
	buf := make([]int, 3*m+1)
	h := &HACSR{
		Rows: m, Cols: a.Cols, Base: base,
		Perm:        buf[:m:m],
		RowBeginNNZ: buf[m : 2*m : 2*m],
		RowPtr:      buf[2*m:],
	}
	c := exec.RangeChunks(m, prepWidth(), prepGrain)
	if c <= 1 {
		// Serial fast path: one fused placement + empty-collection pass.
		var empty []int
		frontRow, tailRow := 0, m-1
		for i := 0; i < m; i++ {
			l := a.RowPtr[i+1] - a.RowPtr[i]
			if l == 0 {
				empty = append(empty, i)
			}
			if l < base {
				h.Perm[frontRow] = i
				h.RowBeginNNZ[frontRow] = a.RowPtr[i]
				h.RowPtr[frontRow+1] = l // length, prefixed below
				frontRow++
			} else {
				h.Perm[tailRow] = i
				h.RowBeginNNZ[tailRow] = a.RowPtr[i]
				h.RowPtr[tailRow+1] = l
				tailRow--
			}
		}
		h.NumShort = frontRow
		for i := 0; i < m; i++ {
			h.RowPtr[i+1] += h.RowPtr[i]
		}
		return h, empty
	}
	// Pass 1: count each chunk's short and empty rows.
	shortIn := make([]int, c)
	emptyIn := make([]int, c)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		s, e := 0, 0
		for i := lo; i < hi; i++ {
			l := a.RowPtr[i+1] - a.RowPtr[i]
			if l == 0 {
				e++
			}
			if l < base {
				s++
			}
		}
		shortIn[ch], emptyIn[ch] = s, e
	})
	// Serial offset scan: each chunk's first short, long and empty slot.
	shortOff := make([]int, c)
	longOff := make([]int, c)
	emptyOff := make([]int, c)
	sAcc, lAcc, eAcc := 0, 0, 0
	for ch := 0; ch < c; ch++ {
		rows := (ch+1)*m/c - ch*m/c
		shortOff[ch] = sAcc
		sAcc += shortIn[ch]
		longOff[ch] = m - 1 - lAcc
		lAcc += rows - shortIn[ch]
		emptyOff[ch] = eAcc
		eAcc += emptyIn[ch]
	}
	h.NumShort = sAcc
	var empty []int
	if eAcc > 0 {
		empty = make([]int, eAcc)
	}
	// Pass 2: place rows (and empties) at the chunk offsets.
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		front, tail, ew := shortOff[ch], longOff[ch], emptyOff[ch]
		for i := lo; i < hi; i++ {
			l := a.RowPtr[i+1] - a.RowPtr[i]
			if l == 0 {
				empty[ew] = i
				ew++
			}
			if l < base {
				h.Perm[front] = i
				h.RowBeginNNZ[front] = a.RowPtr[i]
				h.RowPtr[front+1] = l
				front++
			} else {
				h.Perm[tail] = i
				h.RowBeginNNZ[tail] = a.RowPtr[i]
				h.RowPtr[tail+1] = l
				tail--
			}
		}
	})
	prefixSum(h.RowPtr[1:])
	return h, empty
}

// Identity builds a HACSR that preserves the natural row order (the
// reorder ablation and the partition-only modes use it).
func Identity(a *sparse.CSR) *HACSR {
	m := a.Rows
	h := &HACSR{
		Rows: m, Cols: a.Cols, Base: 0,
		Perm:        make([]int, m),
		RowPtr:      append([]int(nil), a.RowPtr...),
		RowBeginNNZ: make([]int, m),
		NumShort:    m,
	}
	for i := 0; i < m; i++ {
		h.Perm[i] = i
		h.RowBeginNNZ[i] = a.RowPtr[i]
	}
	return h
}

// RowLen returns the length of reordered row i.
func (h *HACSR) RowLen(i int) int { return h.RowPtr[i+1] - h.RowPtr[i] }

// NNZ returns the total nonzeros (equal to the source matrix's).
func (h *HACSR) NNZ() int { return h.RowPtr[h.Rows] }

// Validate checks the HACSR invariants against its source matrix: Perm is
// a permutation, lengths are consistent, RowBeginNNZ points at the
// original rows, and the short/long split respects Base.
func (h *HACSR) Validate(a *sparse.CSR) error {
	if h.Rows != a.Rows || h.Cols != a.Cols {
		return fmt.Errorf("hacsr: shape %dx%d vs source %dx%d", h.Rows, h.Cols, a.Rows, a.Cols)
	}
	seen := make([]bool, h.Rows)
	for i := 0; i < h.Rows; i++ {
		o := h.Perm[i]
		if o < 0 || o >= h.Rows {
			return fmt.Errorf("hacsr: Perm[%d] = %d out of range", i, o)
		}
		if seen[o] {
			return fmt.Errorf("hacsr: Perm repeats original row %d", o)
		}
		seen[o] = true
		if h.RowBeginNNZ[i] != a.RowPtr[o] {
			return fmt.Errorf("hacsr: RowBeginNNZ[%d] = %d, want %d", i, h.RowBeginNNZ[i], a.RowPtr[o])
		}
		wantLen := a.RowPtr[o+1] - a.RowPtr[o]
		if h.RowLen(i) != wantLen {
			return fmt.Errorf("hacsr: row %d length %d, want %d", i, h.RowLen(i), wantLen)
		}
		if h.Base > 0 {
			if i < h.NumShort && wantLen >= h.Base {
				return fmt.Errorf("hacsr: long row %d (len %d) in short section", i, wantLen)
			}
			if i >= h.NumShort && wantLen < h.Base {
				return fmt.Errorf("hacsr: short row %d (len %d) in long section", i, wantLen)
			}
		}
	}
	if h.NNZ() != a.NNZ() {
		return fmt.Errorf("hacsr: nnz %d, want %d", h.NNZ(), a.NNZ())
	}
	return nil
}

// CostMetric selects the per-row workload measure used by the partitioner.
type CostMetric int

const (
	// CacheLineCost counts the distinct x-vector cache lines a row
	// touches (Algorithm 3) — the paper's metric.
	CacheLineCost CostMetric = iota
	// NNZCost counts nonzeros (the conventional balance unit; Figure 9's
	// "by nnz" comparison).
	NNZCost
	// RowCost counts rows (OpenMP static scheduling; Figure 9's "by
	// row").
	RowCost
)

func (c CostMetric) String() string {
	switch c {
	case CacheLineCost:
		return "cacheline"
	case NNZCost:
		return "nnz"
	case RowCost:
		return "row"
	default:
		return fmt.Sprintf("CostMetric(%d)", int(c))
	}
}

// doublesPerLine is the number of float64 x-entries per 64-byte cache
// line; Algorithm 3 divides column indices by 8.
const doublesPerLine = 8

// RowCacheLineCost implements Algorithm 3's inner loop for one original
// row: the count of distinct x cache lines, assuming ascending column
// indices (the `ben` high-water mark of the pseudocode).
func RowCacheLineCost(a *sparse.CSR, origRow int) int {
	cost := 0
	ben := -1
	for k := a.RowPtr[origRow]; k < a.RowPtr[origRow+1]; k++ {
		if line := a.ColIdx[k] / doublesPerLine; line > ben {
			cost++
			ben = line
		}
	}
	return cost
}

// costSum builds the prefix-sum cost array over the *reordered* rows
// (cost_sum in Algorithm 3): costSum[i] is the total cost of reordered
// rows [0, i). The cache-line costs are computed in original row order —
// one streaming pass over the column indices, chunked across the workers
// since each row's cost is independent — then gathered through the
// permutation and prefix-summed with the chunked parallel scan.
func costSum(a *sparse.CSR, h *HACSR, metric CostMetric) []int {
	cs := make([]int, h.Rows+1)
	switch metric {
	case CacheLineCost:
		costs := make([]int, a.Rows)
		exec.ParallelRanges(a.Rows, prepWidth(), prepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				costs[i] = RowCacheLineCost(a, i)
			}
		})
		exec.ParallelRanges(h.Rows, prepWidth(), prepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cs[i+1] = costs[h.Perm[i]]
			}
		})
		prefixSum(cs[1:])
	case NNZCost:
		exec.ParallelRanges(h.Rows, prepWidth(), prepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cs[i+1] = h.RowLen(i)
			}
		})
		prefixSum(cs[1:])
	case RowCost:
		// Unit costs: the prefix sum is the index itself.
		exec.ParallelRanges(h.Rows+1, prepWidth(), prepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cs[i] = i
			}
		})
	default:
		panic(fmt.Sprintf("core: unknown metric %v", metric))
	}
	return cs
}
