package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haspmv/internal/gen"
	"haspmv/internal/sparse"
)

// fig6Matrix is an 8x8 matrix in the spirit of the paper's Figure 6
// example: mixed short and long rows so the reorder is visible.
func fig6Matrix() *sparse.CSR {
	return sparse.FromDense([][]float64{
		{1, 2, 0, 0, 0, 0, 0, 0}, // len 2 (short)
		{1, 2, 3, 4, 5, 0, 0, 0}, // len 5 (long)
		{0, 0, 1, 0, 0, 0, 0, 0}, // len 1 (short)
		{1, 2, 3, 4, 5, 6, 7, 8}, // len 8 (long)
		{0, 1, 0, 2, 0, 0, 0, 0}, // len 2 (short)
		{0, 0, 0, 1, 2, 3, 4, 0}, // len 4 (long)
		{0, 0, 0, 0, 0, 0, 1, 0}, // len 1 (short)
		{1, 0, 1, 0, 1, 0, 0, 0}, // len 3 (short)
	}, 0)
}

// TestFigure6Example pins the reorder semantics of Algorithm 2 on the
// worked example: with base 4, short rows {0,2,4,7} fill the front in
// encounter order and long rows {1,3,5} fill the back in reverse
// encounter order (the tail_row pointer walks backwards).
func TestFigure6Example(t *testing.T) {
	a := fig6Matrix()
	h := Convert(a, 4)
	if err := h.Validate(a); err != nil {
		t.Fatal(err)
	}
	wantPerm := []int{0, 2, 4, 6, 7, 5, 3, 1}
	for i, want := range wantPerm {
		if h.Perm[i] != want {
			t.Fatalf("Perm = %v, want %v", h.Perm, wantPerm)
		}
	}
	if h.NumShort != 5 {
		t.Fatalf("NumShort = %d, want 5", h.NumShort)
	}
	// Reordered row pointer: lengths 2,1,2,1,3 then 4,8,5.
	wantPtr := []int{0, 2, 3, 5, 6, 9, 13, 21, 26}
	for i, want := range wantPtr {
		if h.RowPtr[i] != want {
			t.Fatalf("RowPtr = %v, want %v", h.RowPtr, wantPtr)
		}
	}
	// RowBeginNNZ points into the untouched original arrays.
	if h.RowBeginNNZ[5] != a.RowPtr[5] || h.RowBeginNNZ[7] != a.RowPtr[1] {
		t.Fatalf("RowBeginNNZ = %v", h.RowBeginNNZ)
	}
}

func TestIdentityView(t *testing.T) {
	a := fig6Matrix()
	h := Identity(a)
	if err := h.Validate(a); err != nil {
		t.Fatal(err)
	}
	for i := range h.Perm {
		if h.Perm[i] != i {
			t.Fatal("identity perm not identity")
		}
	}
	if h.NumShort != a.Rows {
		t.Fatalf("identity NumShort = %d", h.NumShort)
	}
}

// Property: Convert preserves the row multiset and the short/long
// sectioning for random matrices and bases.
func TestConvertProperty(t *testing.T) {
	f := func(seed int64, baseRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(300)
		a := gen.Spec{
			Name: "c", Rows: rows, Cols: 1 + r.Intn(300),
			Dist:  gen.UniformLen{Min: 0, Max: 20},
			Place: gen.Random, Seed: seed,
		}.Generate()
		base := 1 + int(baseRaw)%24
		h := Convert(a, base)
		return h.Validate(a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertEmptyAndDegenerate(t *testing.T) {
	empty := &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	h := Convert(empty, 8)
	if err := h.Validate(empty); err != nil {
		t.Fatal(err)
	}
	if h.NNZ() != 0 {
		t.Fatal("empty nnz")
	}
	// All rows shorter than base: pure front fill, order preserved.
	a := fig6Matrix()
	h = Convert(a, 1000)
	for i := range h.Perm {
		if h.Perm[i] != i {
			t.Fatalf("all-short perm changed: %v", h.Perm)
		}
	}
	// All rows long: pure back fill, order reversed.
	h = Convert(a, 0)
	for i := range h.Perm {
		if h.Perm[i] != a.Rows-1-i {
			t.Fatalf("all-long perm: %v", h.Perm)
		}
	}
}

// TestFigure7CacheLineCost pins Algorithm 3 on a hand-computed example:
// with 8 doubles per 64-byte line, columns 0..7 share line 0, 8..15 line
// 1, and so on.
func TestFigure7CacheLineCost(t *testing.T) {
	coo := &sparse.COO{Rows: 4, Cols: 32}
	// Row 0: cols 0,1,7 -> 1 line.
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(0, 7, 1)
	// Row 1: cols 0, 8, 16, 24 -> 4 lines.
	for j := 0; j < 32; j += 8 {
		coo.Add(1, j, 1)
	}
	// Row 2: cols 6,7,8,9 -> 2 lines (straddles a boundary).
	for j := 6; j <= 9; j++ {
		coo.Add(2, j, 1)
	}
	// Row 3: empty -> 0 lines.
	a := coo.ToCSR()
	want := []int{1, 4, 2, 0}
	for i, w := range want {
		if got := RowCacheLineCost(a, i); got != w {
			t.Fatalf("row %d cost %d, want %d", i, got, w)
		}
	}
}

func TestCostSumMetrics(t *testing.T) {
	a := fig6Matrix()
	h := Identity(a)
	nnzCS := costSum(a, h, NNZCost)
	if nnzCS[a.Rows] != a.NNZ() {
		t.Fatalf("nnz cost total %d, want %d", nnzCS[a.Rows], a.NNZ())
	}
	rowCS := costSum(a, h, RowCost)
	if rowCS[a.Rows] != a.Rows {
		t.Fatalf("row cost total %d", rowCS[a.Rows])
	}
	clCS := costSum(a, h, CacheLineCost)
	// 8 columns fit one line: every non-empty row costs exactly 1.
	if clCS[a.Rows] != 8 {
		t.Fatalf("cacheline cost total %d, want 8", clCS[a.Rows])
	}
	// Prefix sums must be monotone.
	for i := 1; i <= a.Rows; i++ {
		if clCS[i] < clCS[i-1] || nnzCS[i] < nnzCS[i-1] {
			t.Fatal("cost prefix not monotone")
		}
	}
	// Reordered view must preserve the total.
	hr := Convert(a, 4)
	if cs := costSum(a, hr, NNZCost); cs[a.Rows] != a.NNZ() {
		t.Fatal("reorder changed total cost")
	}
}

func TestCostMetricStrings(t *testing.T) {
	if CacheLineCost.String() != "cacheline" || NNZCost.String() != "nnz" || RowCost.String() != "row" {
		t.Fatal("metric strings")
	}
	if CostMetric(9).String() == "" {
		t.Fatal("unknown metric string")
	}
}

func TestConversionIsCheap(t *testing.T) {
	// HACSR's selling point: conversion touches only row-level arrays.
	// Verify Convert leaves the original matrix untouched.
	a := fig6Matrix()
	before := a.Clone()
	Convert(a, 4)
	if !a.Equal(before) {
		t.Fatal("Convert mutated the source matrix")
	}
}
