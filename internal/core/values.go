package core

import (
	"fmt"
	"math"

	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// Compressed value streams. The float64 values are 8 of the 12-16 bytes
// moved per nonzero, so Prepare can derive a narrower physical value
// stream for the whole instance: a palette stream (1-byte indices into
// a table of at most PaletteMax distinct float64s — 0/1 adjacency and
// edge-weight graphs) that is exact because pal[palIdx[k]] is the very
// float64 the matrix stores, and a float32 stream that halves the value
// traffic but rounds each operand — built only when the caller
// explicitly opts into reduced precision (Options.AllowF32Values).
// Unlike the per-region index formats the value format is one choice
// per instance (the value stream is shared by every region), stamped
// onto each Region as Region.Val so the fragment dispatch and the
// telemetry split stay region-granular.

// PaletteMax is the largest number of distinct values the palette
// stream can encode (the index stream is one byte per nonzero).
const PaletteMax = 256

// ValueFormat is the physical value encoding the execution streams
// read. The zero value is the matrix's own []float64.
type ValueFormat uint8

const (
	// ValF64 reads the matrix's own Val []float64 (8 bytes per value).
	ValF64 ValueFormat = iota
	// ValPalette reads 1-byte indices into a table of at most PaletteMax
	// distinct float64s; exact (the table entry is the stored float64).
	ValPalette
	// ValF32 reads a float32 copy of the values (4 bytes per value);
	// lossy, never selected without Options.AllowF32Values.
	ValF32
)

func (f ValueFormat) String() string {
	switch f {
	case ValF64:
		return "f64"
	case ValPalette:
		return "palette"
	case ValF32:
		return "f32"
	default:
		return fmt.Sprintf("ValueFormat(%d)", int(f))
	}
}

// BytesPerValue returns the stream width of the format (the palette
// table itself is at most PaletteMax*8 bytes and lives in L1).
func (f ValueFormat) BytesPerValue() int {
	switch f {
	case ValPalette:
		return 1
	case ValF32:
		return 4
	default:
		return 8
	}
}

// ValueMode selects which value stream Prepare builds. The zero value
// compresses when exactness allows it: the palette is bit-exact, so it
// engages automatically; the f32 stream additionally needs the explicit
// AllowF32Values opt-in.
type ValueMode int

const (
	// ValueAuto builds the palette stream when the matrix has at most
	// PaletteMax distinct values; otherwise the f32 stream when
	// AllowF32Values is set; otherwise the []float64 reference.
	ValueAuto ValueMode = iota
	// ValueReference skips value compression entirely (the oracle the
	// fuzz bit-equality stage compares against).
	ValueReference
	// ValueForceF32 prefers the f32 stream over the palette. It is only
	// honored together with AllowF32Values (reduced precision is never
	// implicit); without the opt-in it behaves like ValueAuto.
	ValueForceF32
)

func (m ValueMode) String() string {
	switch m {
	case ValueAuto:
		return "auto"
	case ValueReference:
		return "f64"
	case ValueForceF32:
		return "f32"
	default:
		return fmt.Sprintf("ValueMode(%d)", int(m))
	}
}

// valueStreams holds the compressed value stream of one instance, all
// indexed by original nnz position (parallel to CSR.Val) like the index
// streams.
type valueStreams struct {
	format ValueFormat
	// palIdx/pal are the palette stream (format ValPalette): Val[k] ==
	// pal[palIdx[k]] bit for bit.
	palIdx []uint8
	pal    []float64
	// val32 is the rounded stream (format ValF32).
	val32 []float32
	// distinct counts the distinct value bit patterns discovered;
	// PaletteMax+1 means the count aborted (more than PaletteMax).
	distinct int
}

// effValBytes is the value-stream width one multiply moves per nonzero,
// for the auto level-1 proportion.
func (vs *valueStreams) effValBytes() float64 {
	return float64(vs.format.BytesPerValue())
}

// buildValues derives the compressed value stream for a under mode.
// Values are keyed by their IEEE-754 bit patterns, not by float64
// comparison: 0.0 and -0.0 are distinct stream entries and NaNs (which
// compare unequal even to themselves) dedup by payload, so the palette
// reproduces every stored bit pattern exactly.
func buildValues(a *sparse.CSR, mode ValueMode, allowF32 bool) valueStreams {
	var vs valueStreams
	nnz := a.NNZ()
	if mode == ValueReference || nnz == 0 {
		return vs
	}
	f32 := func() valueStreams {
		vs.format = ValF32
		vs.val32 = make([]float32, nnz)
		exec.ParallelRanges(nnz, prepWidth(), prepGrain, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				vs.val32[k] = float32(a.Val[k])
			}
		})
		return vs
	}
	if mode == ValueForceF32 && allowF32 {
		return f32()
	}
	// Palette discovery is serial with an early exit: matrices with rich
	// value sets blow past PaletteMax within the first few hundred
	// nonzeros, so the scan is far cheaper than one full sweep there.
	palMap := make(map[uint64]uint8, PaletteMax)
	pal := make([]float64, 0, PaletteMax)
	for _, v := range a.Val {
		bits := math.Float64bits(v)
		if _, ok := palMap[bits]; ok {
			continue
		}
		if len(pal) == PaletteMax {
			vs.distinct = PaletteMax + 1
			if allowF32 {
				return f32()
			}
			return vs
		}
		palMap[bits] = uint8(len(pal))
		pal = append(pal, v)
	}
	vs.distinct = len(pal)
	// Eligible: fill the index stream in parallel (concurrent read-only
	// map lookups are safe; the table is complete).
	vs.format = ValPalette
	vs.pal = pal
	vs.palIdx = make([]uint8, nnz)
	exec.ParallelRanges(nnz, prepWidth(), prepGrain, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			vs.palIdx[k] = palMap[math.Float64bits(a.Val[k])]
		}
	})
	return vs
}

// ValueStats summarizes the value stream of the instance.
type ValueStats struct {
	// Format is the value encoding every region executes with.
	Format ValueFormat
	// Distinct is the number of distinct value bit patterns discovered
	// by Prepare; PaletteMax+1 means "more than PaletteMax" (the count
	// aborts early). Zero when value analysis was skipped
	// (ValueReference or an empty matrix).
	Distinct int
	// PaletteLen is the palette table size (0 unless Format is
	// ValPalette).
	PaletteLen int
	// StreamValueBytes is the total value bytes one multiply streams
	// (including the palette table once).
	StreamValueBytes int
}

// ValueStats reports the value-stream choice and its byte traffic.
func (p *Prepared) ValueStats() ValueStats {
	vs := &p.values
	s := ValueStats{
		Format:     vs.format,
		Distinct:   vs.distinct,
		PaletteLen: len(vs.pal),
	}
	s.StreamValueBytes = p.mat.NNZ()*vs.format.BytesPerValue() + 8*len(vs.pal)
	return s
}
