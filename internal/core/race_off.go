//go:build !race

package core

// raceEnabled reports that the race detector is instrumenting this
// build; see race_on.go.
const raceEnabled = false
