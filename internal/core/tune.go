package core

import (
	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// TuneProportion searches the level-1 split share that minimizes the
// modeled SpMV time of this matrix on this machine — the programmatic
// version of the paper's micro-benchmark-driven calibration (Section III
// derives P_proportion from bandwidth and SpMV probes per processor).
//
// The modeled time is unimodal in the proportion for fixed everything
// else (shifting work to a group monotonically loads it), so a
// golden-section search over [0.05, 0.95] converges quickly; tol is the
// result resolution (e.g. 0.01).
//
// The matrix is analyzed once: every probe is a boundary-only
// Repartition of the same prepared instance (the reorder and cost prefix
// sums do not depend on the proportion), so tuning costs one Prepare
// plus O(probes · cores · log nnz) instead of a full pipeline per probe.
func TuneProportion(m *amp.Machine, p costmodel.Params, a *sparse.CSR, opts Options, tol float64) (best float64, bestSeconds float64, err error) {
	if tol <= 0 {
		tol = 0.01
	}
	prep, err := New(opts).Prepare(m, a)
	if err != nil {
		return 0, 0, err
	}
	hp := prep.(*Prepared)
	eval := func(prop float64) (float64, error) {
		if err := hp.Repartition(Plan{PProportion: prop}); err != nil {
			return 0, err
		}
		return exec.Simulate(m, p, a, hp).Seconds, nil
	}

	const invPhi = 0.6180339887498949
	lo, hi := 0.05, 0.95
	x1 := hi - (hi-lo)*invPhi
	x2 := lo + (hi-lo)*invPhi
	f1, err := eval(x1)
	if err != nil {
		return 0, 0, err
	}
	f2, err := eval(x2)
	if err != nil {
		return 0, 0, err
	}
	for hi-lo > tol {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - (hi-lo)*invPhi
			if f1, err = eval(x1); err != nil {
				return 0, 0, err
			}
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + (hi-lo)*invPhi
			if f2, err = eval(x2); err != nil {
				return 0, 0, err
			}
		}
	}
	if f1 <= f2 {
		return x1, f1, nil
	}
	return x2, f2, nil
}
