package core

import (
	"fmt"
	"time"

	"haspmv/internal/exec"
	"haspmv/internal/telemetry"
)

var (
	cBatchComputes = telemetry.NewCounter("core_batch_computes")
	cBatchVectors  = telemetry.NewCounter("core_batch_vectors")
)

// ComputeBatch performs Y[v] = A * X[v] for a block of vectors with one
// sweep over the matrix structure: each row fragment's column indices are
// walked once and reused for every vector, amortizing the index stream the
// way block Krylov solvers and multi-source graph traversals expect. The
// partition, reorder and extraY conflict handling are identical to
// Compute (Algorithm 5), generalized to a vector block.
func (p *Prepared) ComputeBatch(Y, X [][]float64) {
	nv := len(X)
	if len(Y) != nv {
		panic(fmt.Sprintf("core: batch size mismatch %d vs %d", len(Y), nv))
	}
	if nv == 0 {
		return
	}
	tel := telemetry.Active()
	var tBatch time.Time
	if tel != nil {
		tBatch = time.Now()
	}
	for _, x := range X {
		if len(x) != p.mat.Cols {
			panic(fmt.Sprintf("core: batch x length %d, want %d", len(x), p.mat.Cols))
		}
	}
	for _, y := range Y {
		if len(y) != p.mat.Rows {
			panic(fmt.Sprintf("core: batch y length %d, want %d", len(y), p.mat.Rows))
		}
	}
	for _, r := range p.emptyRows {
		for v := 0; v < nv; v++ {
			Y[v][r] = 0
		}
	}
	n := len(p.regions)
	extraRow := make([]int, n)
	extraVal := make([][]float64, n)
	exec.Parallel(n, func(id int) {
		extraRow[id] = -1
		reg := p.regions[id]
		if reg.Lo >= reg.Hi {
			return
		}
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		nnzDone, frags := 0, 0
		h, mat := p.h, p.mat
		sums := make([]float64, nv)
		r := rowOfPosition(h, reg.Lo)
		pos := reg.Lo
		for pos < reg.Hi {
			rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
			fragEnd := rowEnd
			if fragEnd > reg.Hi {
				fragEnd = reg.Hi
			}
			if fragEnd > pos {
				o := h.RowBeginNNZ[r]
				lo := o + (pos - rowStart)
				hi := o + (fragEnd - rowStart)
				for v := range sums {
					sums[v] = 0
				}
				// One index-stream pass serving all vectors.
				for k := lo; k < hi; k++ {
					c := mat.ColIdx[k]
					a := mat.Val[k]
					for v := 0; v < nv; v++ {
						sums[v] += a * X[v][c]
					}
				}
				orig := h.Perm[r]
				if pos == rowStart {
					for v := 0; v < nv; v++ {
						Y[v][orig] = sums[v]
					}
				} else {
					extraRow[id] = orig
					extraVal[id] = append([]float64(nil), sums...)
				}
				nnzDone += hi - lo
				frags++
				pos = fragEnd
			}
			r++
		}
		if tel != nil {
			extra := 0
			if extraRow[id] >= 0 {
				extra = 1
			}
			tel.RecordSpan(telemetry.Span{
				Name: "batch-core", Core: reg.Core,
				Start: t0.Sub(tel.Start()), Dur: time.Since(t0),
				NNZ: nnzDone, Fragments: frags, ExtraY: extra,
			})
		}
	})
	for id := 0; id < n; id++ {
		if extraRow[id] >= 0 {
			for v := 0; v < nv; v++ {
				Y[v][extraRow[id]] += extraVal[id][v]
			}
		}
	}
	cBatchComputes.Add(1)
	cBatchVectors.Add(int64(nv))
	if tel != nil {
		tel.RecordPhase(telemetry.PhaseBatch, time.Since(tBatch))
	}
}
