package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

var (
	cBatchComputes = telemetry.NewCounter("core_batch_computes")
	cBatchVectors  = telemetry.NewCounter("core_batch_vectors")
)

// batchScratch is ComputeBatch's reusable workspace, pooled on
// Prepared.batch under the same atomic-swap discipline as computeScratch.
// The extraY conflict values for all vectors of all cores live in one
// flat slice sized to nvCap, so a steady stream of batch calls with a
// stable (or shrinking) vector count allocates nothing.
type batchScratch struct {
	p        *Prepared
	Y, X     [][]float64
	tel      *telemetry.Collector
	regs     []Region
	nv       int
	nvCap    int
	extraRow []int
	extraVal []float64 // len(regions)*nvCap, core id strided by nvCap
	// pending holds the segmented-sum patch rendezvous counters (see
	// computeScratch.pending).
	pending []atomic.Int32
	// sums is the per-core kernel output block (len(regions)*MaxBlock,
	// strided by MaxBlock). It lives in the pooled scratch rather than on
	// run's stack so that passing it to the generic compressed block
	// kernels cannot cost a per-call heap allocation.
	sums []float64
	// durNs is each slot's kernel time for the current call (see
	// computeScratch.durNs).
	durNs []int64
	body  func(id int)
}

func (p *Prepared) newBatchScratch(nv int) *batchScratch {
	// Round the capacity up to a whole number of register blocks so
	// growing a batch by one vector does not immediately reallocate.
	cap := (nv + kernel.MaxBlock - 1) / kernel.MaxBlock * kernel.MaxBlock
	n := len(*p.regions.Load())
	s := &batchScratch{
		p:        p,
		nvCap:    cap,
		extraRow: make([]int, n),
		extraVal: make([]float64, n*cap),
		pending:  make([]atomic.Int32, n),
		sums:     make([]float64, n*kernel.MaxBlock),
		durNs:    make([]int64, n),
	}
	s.body = s.run
	return s
}

// run is one core's share of a batch call: the same fragment walk as
// computeScratch.run, with each fragment's index stream walked once by
// the widest register-blocked kernel that still has vectors to feed.
func (s *batchScratch) run(id int) {
	p := s.p
	s.extraRow[id] = -1
	s.durNs[id] = 0
	reg := s.regs[id]
	if reg.Lo >= reg.Hi {
		return
	}
	if reg.SegSum {
		s.runSegSum(id, reg)
		return
	}
	tel := s.tel
	t0 := time.Now()
	h, Y, X, nv := p.h, s.Y, s.X, s.nv
	un := p.unroll[id]
	extra := s.extraVal[id*s.nvCap : id*s.nvCap+nv]
	sums := s.sums[id*kernel.MaxBlock : (id+1)*kernel.MaxBlock]
	nnzDone, frags := 0, 0
	r := reg.StartRow
	pos := reg.Lo
	for pos < reg.Hi {
		rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
		fragEnd := rowEnd
		if fragEnd > reg.Hi {
			fragEnd = reg.Hi
		}
		if fragEnd > pos {
			o := h.RowBeginNNZ[r]
			lo := o + (pos - rowStart)
			hi := o + (fragEnd - rowStart)
			orig := h.Perm[r]
			first := pos == rowStart
			// Tile the vector block into MaxBlock-wide pieces, each
			// served by one bit-exact fused pass over the fragment's
			// value and column streams (sums[j] carries exactly the bits
			// a single-vector Compute would produce).
			for v0 := 0; v0 < nv; {
				w := nv - v0
				if w > kernel.MaxBlock {
					w = kernel.MaxBlock
				}
				// Per-region format dispatch, same arms for every fragment
				// and block of the region (bit-exact across formats).
				if w == 1 {
					sums[0] = p.dotFragment(reg.Format, reg.Val, r, lo, hi, un, X[v0])
				} else {
					p.dotFragmentBlock(reg.Format, reg.Val, r, lo, hi, un, X[v0:], sums[:w])
				}
				if first {
					for j := 0; j < w; j++ {
						Y[v0+j][orig] = sums[j]
					}
				} else {
					copy(extra[v0:v0+w], sums[:w])
				}
				v0 += w
			}
			if !first {
				// Continuation fragment: only the first row of a region
				// can start mid-row, so one conflict slot per core.
				s.extraRow[id] = orig
			}
			nnzDone += hi - lo
			frags++
			pos = fragEnd
		}
		r++
	}
	dur := time.Since(t0)
	p.accum[id].ns.Add(int64(dur))
	p.accum[id].nnz.Add(int64(nnzDone))
	s.durNs[id] = int64(dur)
	cNNZFormat[reg.Format].Add(int64(nnzDone))
	cNNZValue[reg.Val].Add(int64(nnzDone))
	if tel != nil {
		ex := 0
		if s.extraRow[id] >= 0 {
			ex = 1
		}
		tel.RecordSpan(telemetry.Span{
			Name: "batch-core", Core: reg.Core,
			Start: t0.Sub(tel.Start()), Dur: dur,
			NNZ: nnzDone, Fragments: frags, ExtraY: ex,
		})
	}
}

// ComputeBatch performs Y[v] = A * X[v] for a block of vectors with one
// sweep over the matrix structure: each row fragment's value and column
// streams are walked once per block of kernel.MaxBlock vectors by the
// register-blocked kernel (DotRangeBlock), amortizing the index stream
// the way block Krylov solvers and multi-source graph traversals expect.
// The partition, reorder and extraY conflict handling are identical to
// Compute (Algorithm 5), generalized to a vector block, and the
// steady-state path performs zero heap allocations for any nv (the
// workspace is pooled on Prepared.batch).
//
// ComputeBatch is bit-exact with respect to Compute: Y[v] carries exactly
// the float64 bits that Compute(Y[v], X[v]) would have produced, for any
// nv. The fused kernel keeps per-vector accumulator chains identical to
// the single-vector dispatch, and the empty-row zeroing, direct stores
// and serial extraY epilogue run in the same order. The serving layer's
// dynamic batcher relies on this to coalesce concurrent requests without
// changing any response.
func (p *Prepared) ComputeBatch(Y, X [][]float64) { p.computeBatchWith(Y, X, nil) }

// ComputeBatchTraced is ComputeBatch plus the same stage breakdown
// ComputeTraced produces, with the batch's traffic priced at one
// structure sweep per register block of vectors. bd is caller-owned and
// reused; the traced path allocates nothing beyond ComputeBatch.
func (p *Prepared) ComputeBatchTraced(Y, X [][]float64, bd *tracing.ComputeBreakdown) {
	p.computeBatchWith(Y, X, bd)
}

func (p *Prepared) computeBatchWith(Y, X [][]float64, bd *tracing.ComputeBreakdown) {
	nv := len(X)
	if len(Y) != nv {
		panic(fmt.Sprintf("core: batch size mismatch %d vs %d", len(Y), nv))
	}
	if nv == 0 {
		return
	}
	tel := telemetry.Active()
	var tBatch time.Time
	if tel != nil || bd != nil {
		tBatch = time.Now()
	}
	for _, x := range X {
		if len(x) != p.mat.Cols {
			panic(fmt.Sprintf("core: batch x length %d, want %d", len(x), p.mat.Cols))
		}
	}
	for _, y := range Y {
		if len(y) != p.mat.Rows {
			panic(fmt.Sprintf("core: batch y length %d, want %d", len(y), p.mat.Rows))
		}
	}
	s := p.batch.Swap(nil)
	if s == nil || s.nvCap < nv {
		s = p.newBatchScratch(nv)
	}
	s.Y, s.X, s.tel, s.nv, s.regs = Y, X, tel, nv, *p.regions.Load()
	for _, r := range p.emptyRows {
		for v := 0; v < nv; v++ {
			Y[v][r] = 0
		}
	}
	n := len(s.regs)
	exec.Parallel(n, s.body)
	var tKernel time.Time
	if bd != nil {
		tKernel = time.Now()
	}
	// Serial epilogue (Algorithm 5 lines 15-17) across the vector block.
	for id := 0; id < n; id++ {
		if s.extraRow[id] >= 0 {
			extra := s.extraVal[id*s.nvCap:]
			for v := 0; v < nv; v++ {
				Y[v][s.extraRow[id]] += extra[v]
			}
		}
	}
	if bd != nil {
		bd.KernelNs = int64(tKernel.Sub(tBatch))
		bd.MergeNs = int64(time.Since(tKernel))
		p.fillBreakdown(bd, s.regs, s.durNs, p.batchTrafficBytes(nv))
	}
	s.Y, s.X, s.tel, s.regs = nil, nil, nil, nil
	p.batch.Store(s)
	cBatchComputes.Add(1)
	cBatchVectors.Add(int64(nv))
	if tel != nil {
		d := time.Since(tBatch)
		tel.RecordPhase(telemetry.PhaseBatch, d)
		p.recordBandwidth(p.batchTrafficBytes(nv), d)
	}
}
