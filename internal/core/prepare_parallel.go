package core

import (
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// The Prepare pipeline is a handful of O(rows) and O(nnz) streaming
// sweeps — exactly the memory-bound regime where the only lever is
// walking the streams with every core at once. Each sweep below follows
// the same two-pass discipline: a parallel counting/accumulation pass
// over fixed chunks, a serial O(chunks) offset scan, and a parallel
// placement pass writing at precomputed offsets. Chunk boundaries are a
// pure function of the input size (exec.ParallelRanges), so both passes
// see identical chunks and the output is bit-identical to the serial
// algorithm. On a single-CPU host every sweep collapses to one chunk and
// runs inline, serial-fast.

// prepGrain is the minimum rows (or elements) per chunk in the parallel
// Prepare sweeps. It is a variable so tests can force multi-chunk
// execution on small matrices and pin the parallel output against the
// serial one.
var prepGrain = 1 << 13

// prepWidth is the chunk-count budget for Prepare sweeps.
func prepWidth() int { return exec.Workers() }

// prefixSum converts xs to its inclusive prefix sum in place. Above the
// grain it runs the classic chunked scan: per-chunk local prefix sums in
// parallel, a serial scan of the chunk totals, then a parallel offset
// add-back over every chunk but the first.
func prefixSum(xs []int) {
	n := len(xs)
	c := exec.RangeChunks(n, prepWidth(), prepGrain)
	if c <= 1 {
		acc := 0
		for i := range xs {
			acc += xs[i]
			xs[i] = acc
		}
		return
	}
	tails := make([]int, c)
	exec.ParallelRanges(n, prepWidth(), prepGrain, func(ch, lo, hi int) {
		acc := 0
		for i := lo; i < hi; i++ {
			acc += xs[i]
			xs[i] = acc
		}
		tails[ch] = acc
	})
	offs := make([]int, c)
	off := 0
	for ch := 0; ch < c; ch++ {
		offs[ch] = off
		off += tails[ch]
	}
	exec.ParallelRanges(n, prepWidth(), prepGrain, func(ch, lo, hi int) {
		if d := offs[ch]; d != 0 {
			for i := lo; i < hi; i++ {
				xs[i] += d
			}
		}
	})
}

// collectEmptyRows returns the indices of rows with no nonzeros in
// ascending order, in one sweep over the row pointer (the natural-order
// path; Convert folds the same collection into its reorder sweep). The
// serial path fills as it scans instead of counting and re-scanning; the
// parallel path counts per chunk, sizes the result exactly, and fills at
// per-chunk offsets.
func collectEmptyRows(a *sparse.CSR) []int {
	m := a.Rows
	c := exec.RangeChunks(m, prepWidth(), prepGrain)
	if c <= 1 {
		var empty []int
		for i := 0; i < m; i++ {
			if a.RowPtr[i+1] == a.RowPtr[i] {
				empty = append(empty, i)
			}
		}
		return empty
	}
	counts := make([]int, c)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if a.RowPtr[i+1] == a.RowPtr[i] {
				n++
			}
		}
		counts[ch] = n
	})
	total := 0
	offs := make([]int, c)
	for ch, n := range counts {
		offs[ch] = total
		total += n
	}
	if total == 0 {
		return nil
	}
	empty := make([]int, total)
	exec.ParallelRanges(m, prepWidth(), prepGrain, func(ch, lo, hi int) {
		w := offs[ch]
		for i := lo; i < hi; i++ {
			if a.RowPtr[i+1] == a.RowPtr[i] {
				empty[w] = i
				w++
			}
		}
	})
	return empty
}
