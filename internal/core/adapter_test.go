package core

import (
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

// miscalibrated returns a copy of m whose Performance group the planner
// believes is slower/faster by factor — the local mirror of
// bench.Miscalibrate (bench imports core, so core cannot import bench).
func miscalibrated(m *amp.Machine, factor float64) *amp.Machine {
	mis := *m
	g := &mis.Groups[0]
	g.FreqGHz /= factor
	g.MemBWGBps /= factor
	g.GroupMemBWGBps /= factor
	g.L1BPC /= factor
	g.L2BPC /= factor
	g.L3BPC /= factor
	return &mis
}

// TestAdapterRecoversFromMiscalibration is the ISSUE's acceptance bound:
// starting from a static plan whose calibration is wrong by >= 2x against
// one group, the adapter fed the true machine's simulated per-core spans
// must recover >= 90% of the oracle (exhaustively tuned) throughput
// within 10 multiplies, and must never end below the static plan.
func TestAdapterRecoversFromMiscalibration(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("rma10", 64)
	for _, perturb := range []float64{0.5, 2, 4} {
		misProp := ProportionFor(miscalibrated(m, perturb), a)
		prep, err := New(Options{PProportion: misProp}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		hp := prep.(*Prepared)
		staticSec := exec.Simulate(m, p, a, hp).Seconds
		_, oracleSec, err := TuneProportion(m, p, a, Options{}, 0.005)
		if err != nil {
			t.Fatal(err)
		}

		ad := NewAdapter(hp, AdapterOptions{Every: 1})
		var ns []int64
		for step := 0; step < 10; step++ {
			ns = exec.SimulateSpans(m, p, a, hp, ns)
			ad.ObserveSpans(ns)
		}
		finalSec := exec.Simulate(m, p, a, hp).Seconds
		st := ad.Stats()
		t.Logf("perturb %.2gx: static %.3gs -> final %.3gs (oracle %.3gs), %d rebalances %d rollbacks",
			perturb, staticSec, finalSec, oracleSec, st.Rebalances, st.Rollbacks)
		if finalSec > oracleSec/0.9 {
			t.Errorf("perturb %.2gx: recovered only %.1f%% of oracle throughput, want >= 90%%",
				perturb, 100*oracleSec/finalSec)
		}
		if finalSec > staticSec {
			t.Errorf("perturb %.2gx: adapter ended below the static plan (%.3gs > %.3gs)",
				perturb, finalSec, staticSec)
		}
		if st.Rebalances == 0 {
			t.Errorf("perturb %.2gx: adapter never rebalanced a miscalibrated plan", perturb)
		}
	}
}

// TestAdapterHysteresisHoldsStill: when the measured spans are already
// balanced, the partition must be left alone — no rebalances, Converged.
func TestAdapterHysteresisHoldsStill(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	ad := NewAdapter(hp, AdapterOptions{Every: 1})
	n := len(hp.Regions())
	ns := make([]int64, n)
	for i := range ns {
		ns[i] = 1_000_000 // perfectly balanced signal
	}
	before := hp.Repartitions()
	for step := 0; step < 8; step++ {
		ad.ObserveSpans(ns)
	}
	st := ad.Stats()
	if st.Epochs != 8 || st.Multiplies != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Rebalances != 0 {
		t.Fatalf("balanced signal triggered %d rebalances", st.Rebalances)
	}
	if !st.Converged {
		t.Fatalf("balanced signal did not report convergence: %+v", st)
	}
	if got := hp.Repartitions(); got != before {
		t.Fatalf("partition moved under a balanced signal: %d -> %d", before, got)
	}
}

// TestAdapterZeroSignalSkipsEpoch: all-zero spans (nothing measured) must
// not count as an epoch or move anything.
func TestAdapterZeroSignalSkipsEpoch(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	ad := NewAdapter(hp, AdapterOptions{Every: 1})
	ns := make([]int64, len(hp.Regions()))
	for step := 0; step < 5; step++ {
		ad.ObserveSpans(ns)
	}
	st := ad.Stats()
	if st.Multiplies != 5 {
		t.Fatalf("Multiplies = %d, want 5", st.Multiplies)
	}
	if st.Epochs != 0 || st.Rebalances != 0 {
		t.Fatalf("zero signal produced epochs/rebalances: %+v", st)
	}
}

// TestAdapterRollsBackRegression: a plan whose measured throughput drops
// past RollbackMargin must be reverted to the best-seen plan.
func TestAdapterRollsBackRegression(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	startProp := hp.Plan().PProportion
	ad := NewAdapter(hp, AdapterOptions{Every: 1})
	n := len(hp.Regions())

	// Epoch 1: an imbalanced signal — baseline score recorded, rebalance
	// applied (the plan leaves the best-seen point).
	ns := make([]int64, n)
	for i := range ns {
		ns[i] = int64(500_000 * (1 + i%3))
	}
	ad.ObserveSpans(ns)
	if st := ad.Stats(); st.Rebalances != 1 {
		t.Fatalf("imbalanced epoch did not rebalance: %+v", st)
	}

	// Epoch 2: the new plan measures far slower (max span 10x) — the
	// adapter must roll back to the plan it started from.
	for i := range ns {
		ns[i] = int64(5_000_000 * (1 + i%3))
	}
	ad.ObserveSpans(ns)
	st := ad.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("regression not rolled back: %+v", st)
	}
	if got := hp.Plan().PProportion; got != startProp {
		t.Fatalf("rollback installed proportion %v, want the initial %v", got, startProp)
	}
	if st.Proportion != startProp {
		t.Fatalf("stats proportion %v after rollback, want %v", st.Proportion, startProp)
	}
}

// TestAdapterFreezesWhenStale: epochs that keep failing to improve must
// eventually freeze the loop instead of thrashing forever.
func TestAdapterFreezesWhenStale(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	ad := NewAdapter(hp, AdapterOptions{Every: 1, StaleLimit: 3})
	n := len(hp.Regions())

	// A good first epoch sets the baseline, then every later plan measures
	// much worse, so the loop rolls back repeatedly until it freezes.
	ns := make([]int64, n)
	for step := 0; step < 10; step++ {
		scale := int64(500_000)
		if step > 0 {
			scale = 5_000_000
		}
		for i := range ns {
			ns[i] = scale * int64(1+i%3)
		}
		ad.ObserveSpans(ns)
		if ad.Stats().Frozen {
			break
		}
	}
	st := ad.Stats()
	if !st.Frozen {
		t.Fatalf("loop never froze under persistent regressions: %+v", st)
	}
	frozenRebalances := st.Rebalances
	// While frozen, further imbalanced-but-similar signals must not move
	// the partition.
	for i := range ns {
		ns[i] = 5_000_000 * int64(1+i%3)
	}
	ad.ObserveSpans(ns)
	if got := ad.Stats().Rebalances; got != frozenRebalances {
		t.Fatalf("frozen loop rebalanced: %d -> %d", frozenRebalances, got)
	}
}

// TestAdapterAfterMultiplyUsesAccumulators: the always-on span
// accumulators must feed real epochs through AfterMultiply, with no
// telemetry enabled.
func TestAdapterAfterMultiplyUsesAccumulators(t *testing.T) {
	m := amp.IntelI912900KF()
	a := gen.Representative("rma10", 64)
	prep, err := New(Options{}).Prepare(m, a)
	if err != nil {
		t.Fatal(err)
	}
	hp := prep.(*Prepared)
	ad := NewAdapter(hp, AdapterOptions{Every: 2})
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, a.Rows)
	for step := 0; step < 6; step++ {
		hp.Compute(y, x)
		ad.AfterMultiply()
	}
	st := ad.Stats()
	if st.Multiplies != 6 {
		t.Fatalf("Multiplies = %d, want 6", st.Multiplies)
	}
	if st.Epochs != 3 {
		t.Fatalf("Epochs = %d, want 3 (Every=2): %+v", st.Epochs, st)
	}
	if st.Imbalance <= 0 {
		t.Fatalf("real computes produced no measured imbalance: %+v", st)
	}
}
