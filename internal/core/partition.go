package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
)

// Region is one core's share of the matrix: a half-open range in
// reordered-nnz space (positions under HACSR.RowPtr). Regions tile
// [0, nnz) in core order.
type Region struct {
	Core   int
	Lo, Hi int
	// StartRow is the reordered row containing Lo, cached at partition
	// time so Compute, ComputeBatch and Assignments start their fragment
	// walks without a per-call binary search. For an empty region
	// (Lo == Hi == nnz) it is the row count.
	StartRow int
	// Format is the column-index stream this region executes with,
	// stamped by assignFormats after every partition or repartition. The
	// zero value dispatches to the []int reference kernels.
	Format IndexFormat
	// Val is the value stream this region executes with, stamped by
	// assignFormats alongside Format (one stream per instance, so every
	// region carries the same value; keeping it on the region lets the
	// hot path dispatch without touching the Prepared). The zero value
	// reads the matrix's own []float64.
	Val ValueFormat
	// SegSum selects segmented-sum execution for this region, stamped by
	// assignModes after every partition or repartition. The zero value
	// keeps the classic fragment walk with the serial extraY epilogue.
	SegSum bool
	// EndRow is the reordered row containing Hi-1 (StartRow for an empty
	// region), cached by assignModes alongside the group bookkeeping.
	EndRow int
	// Cut-row group bookkeeping (assignModes): ContFirst is the head
	// region's slot when this region's leading fragment continues a cut
	// row (-1 otherwise); HeadLast/HeadSpan describe the group this
	// region heads — the last member's slot and the number of non-empty
	// members (-1/0 when its last row is not cut). PatchCont/PatchHead
	// arm the parallel patch rendezvous; when false the extraY epilogue
	// resolves the group serially as before.
	ContFirst int
	HeadLast  int
	HeadSpan  int
	PatchCont bool
	PatchHead bool
}

// DefaultProportion derives the level-1 split (P_proportion in Algorithm
// 4) from the machine description alone: each group's capability is the
// geometric mean of its compute rate and per-core DRAM bandwidth, times
// its core count. On the Intel parts this lands near the paper's ~0.7
// P-share; on the AMD parts (identical cores) it is 0.5. Prepare uses the
// matrix-aware ProportionFor instead; the autotune example refines the
// value further with micro-benchmarks, as Section III prescribes.
func DefaultProportion(m *amp.Machine) float64 {
	capability := func(g *amp.CoreGroup) float64 {
		compute := g.FreqGHz * float64(g.SIMDLanes)
		return math.Sqrt(compute*g.MemBWGBps) * float64(g.Cores)
	}
	p := capability(m.PGroup())
	e := capability(m.EGroup())
	return p / (p + e)
}

// ProportionFor refines the level-1 split with the matrix footprint. A
// group whose last-level cache covers the working set keeps L3-class
// bandwidth; a group whose cache does not falls toward DRAM bandwidth —
// this is how the 7950X3D's V-Cache CCD earns a larger share on matrices
// between 32MB and 96MB, the paper's bandwidth-test-driven calibration.
// SpMV is memory bound, so memory capability dominates the weighting.
func ProportionFor(m *amp.Machine, a *sparse.CSR) float64 {
	return proportionForBytes(m, a, 4, 8)
}

// proportionForBytes is ProportionFor with the index- and value-stream
// widths as parameters: Prepare passes the effective bytes per nonzero
// of the streams it actually built (4 for u32, 2 for u16, a per-row-best
// blend for mixed/diagonal partitions, 8 for the []int reference; 8 for
// f64 values, 1 for a palette, 4 for f32), so the level-1 split prices
// the working set the kernels will really move.
func proportionForBytes(m *amp.Machine, a *sparse.CSR, idxBytes, valBytes float64) float64 {
	footprint := float64(a.NNZ())*(valBytes+idxBytes) + float64(a.Cols*8+a.Rows*12)
	capability := func(g *amp.CoreGroup) float64 {
		compute := g.FreqGHz * float64(g.SIMDLanes)
		r3 := 1.0
		if footprint > float64(g.L3Bytes) && footprint > 0 {
			r3 = float64(g.L3Bytes) / footprint
		}
		mem := g.L3BPC*g.FreqGHz*r3 + g.MemBWGBps*(1-r3)
		return math.Pow(mem, 0.8) * math.Pow(compute, 0.2) * float64(g.Cores)
	}
	p := capability(m.PGroup())
	e := capability(m.EGroup())
	return p / (p + e)
}

// AutoBase picks the short/long threshold for the HACSR reorder: four
// times the average row length, floored at 64. Regular matrices keep their
// natural order (every row is "short"); power-law matrices send their hub
// rows to the back where the E-group's relative disadvantage is smallest.
func AutoBase(a *sparse.CSR) int {
	if a.Rows == 0 {
		return 64
	}
	base := 4 * ((a.NNZ() + a.Rows - 1) / a.Rows)
	if base < 64 {
		base = 64
	}
	return base
}

// partition implements Algorithm 4: cost boundaries at
// P_proportion*COST (level 1) and equal gaps within each group (level 2),
// each boundary located by binary search over the prefix costs and an
// in-row walk for the exact nonzero offset. When tel is non-nil the two
// levels are timed separately (the Fig. 7-style preprocessing breakdown).
func partition(a *sparse.CSR, col32 []uint32, h *HACSR, cs []int, m *amp.Machine, cores []int, pprop float64, metric CostMetric, oneLevel bool, tel *telemetry.Collector) []Region {
	n := len(cores)
	if n == 0 {
		return nil
	}
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	total := cs[len(cs)-1]

	// Cost-space boundaries per core (n+1 cut values).
	bounds := make([]float64, n+1)
	pCount := 0
	for _, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			pCount++
		}
	}
	if oneLevel || pCount == 0 || pCount == n {
		for i := 0; i <= n; i++ {
			bounds[i] = float64(total) * float64(i) / float64(n)
		}
	} else {
		costp := float64(total) * pprop
		gapp := costp / float64(pCount)
		gape := (float64(total) - costp) / float64(n-pCount)
		bounds[0] = 0
		for i := 1; i <= n; i++ {
			if i <= pCount {
				bounds[i] = gapp * float64(i)
			} else {
				bounds[i] = costp + gape*float64(i-pCount)
			}
		}
	}
	bounds[n] = float64(total)
	if tel != nil {
		tel.RecordPhase(telemetry.PhasePartitionL1, time.Since(t0))
		t0 = time.Now()
	}

	cuts := make([]int, n+1)
	cuts[n] = h.NNZ()
	for i := 1; i < n; i++ {
		cuts[i] = costToPosition(a, col32, h, cs, bounds[i], metric)
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	regions := make([]Region, n)
	for i, c := range cores {
		regions[i] = Region{Core: c, Lo: cuts[i], Hi: cuts[i+1], StartRow: rowOfPosition(h, cuts[i])}
	}
	if tel != nil {
		tel.RecordPhase(telemetry.PhasePartitionL2, time.Since(t0))
	}
	return regions
}

// costToPosition converts a cost-space boundary into a reordered-nnz
// position, cutting inside a row when the boundary falls there. The
// in-row cache-line walk reads the u32 stream when one exists (a
// restored instance may not carry the []int reference indices at all),
// the matrix's own ColIdx otherwise — both hold the same columns, so
// the cut lands on the same position either way.
func costToPosition(a *sparse.CSR, col32 []uint32, h *HACSR, cs []int, bound float64, metric CostMetric) int {
	b := int(bound)
	// Largest reordered row r with cs[r] <= b.
	r := sort.SearchInts(cs, b+1) - 1
	if r < 0 {
		r = 0
	}
	if r >= h.Rows {
		return h.NNZ()
	}
	rem := b - cs[r]
	if rem <= 0 {
		return h.RowPtr[r]
	}
	switch metric {
	case RowCost:
		// Unit cost per row: boundaries always land on row edges.
		return h.RowPtr[r]
	case NNZCost:
		off := rem
		if l := h.RowLen(r); off > l {
			off = l
		}
		return h.RowPtr[r] + off
	case CacheLineCost:
		// Walk the original row until rem cache lines are covered; the
		// entry opening line rem+1 starts the next core's share.
		o := h.RowBeginNNZ[r]
		end := o + h.RowLen(r)
		cnt, ben := 0, -1
		if col32 != nil {
			for k := o; k < end; k++ {
				if line := int(col32[k]) / doublesPerLine; line > ben {
					cnt++
					ben = line
				}
				if cnt > rem {
					return h.RowPtr[r] + (k - o)
				}
			}
			return h.RowPtr[r+1]
		}
		for k := o; k < end; k++ {
			if line := a.ColIdx[k] / doublesPerLine; line > ben {
				cnt++
				ben = line
			}
			if cnt > rem {
				return h.RowPtr[r] + (k - o)
			}
		}
		return h.RowPtr[r+1]
	default:
		panic(fmt.Sprintf("core: unknown metric %v", metric))
	}
}

// checkRegions verifies that regions tile [0, nnz) in order and that each
// cached StartRow really contains Lo; used by tests and the harness
// self-check.
func checkRegions(h *HACSR, regions []Region) error {
	pos := 0
	for i, r := range regions {
		if r.Lo != pos {
			return fmt.Errorf("core: region %d starts at %d, want %d", i, r.Lo, pos)
		}
		if r.Hi < r.Lo {
			return fmt.Errorf("core: region %d inverted [%d,%d)", i, r.Lo, r.Hi)
		}
		if r.Lo < r.Hi {
			if r.StartRow < 0 || r.StartRow >= h.Rows ||
				h.RowPtr[r.StartRow] > r.Lo || h.RowPtr[r.StartRow+1] <= r.Lo {
				return fmt.Errorf("core: region %d caches start row %d for position %d", i, r.StartRow, r.Lo)
			}
		}
		pos = r.Hi
	}
	if pos != h.NNZ() {
		return fmt.Errorf("core: regions end at %d, want %d", pos, h.NNZ())
	}
	return nil
}
