package core

import (
	"math"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// fuzzMatrix decodes a byte string into a small CSR matrix: the first
// two bytes pick the shape (1..32 rows and columns), then each (row,
// col, value) triple adds one entry. Duplicates are summed by ToCSR, a
// value byte of 0 stays an explicit stored zero, and leftover bytes are
// ignored — every input decodes to *some* valid matrix, so the fuzzer
// explores structure (empty rows, hub rows, diagonals) rather than
// fighting a parser. The second return drives algorithm options.
//
// A column byte of 200 or more selects the wide shape instead: 66556
// columns with entries at 261-column strides, so row spans straddle the
// u16-delta eligibility boundary (span 65535) — column bytes spanning up
// to 251 give row spans <= 65511 (u16-eligible), 252 or more give
// >= 65772 (past a 2^16 span, u32 fallback).
func fuzzMatrix(data []byte) (*sparse.CSR, byte) {
	if len(data) < 2 {
		return nil, 0
	}
	rows := 1 + int(data[0])%32
	cols, colStride := 1+int(data[1])%32, 1
	if data[1] >= 200 {
		cols, colStride = 255*261+1, 261
	}
	var optByte byte
	if len(data) > 2 {
		optByte = data[2]
	}
	c := &sparse.COO{Rows: rows, Cols: cols}
	for k := 3; k+2 < len(data); k += 3 {
		i := int(data[k]) % rows
		j := int(data[k+1]) * colStride % cols
		v := float64(int8(data[k+2])) / 4
		c.Add(i, j, v)
	}
	return c.ToCSR(), optByte
}

// fuzzOptions maps the option byte onto the ablation space: reorder
// on/off, one- vs two-level partition, a handful of explicit base
// thresholds around the short/long boundary, the index-stream mode
// (bits 5-6: auto, u32, reference, forced-diagonal), and (bit 7) forced
// segmented-sum execution — the oracle instance always pins ExecSerial,
// so that bit turns every bit-equality stage into
// segsum-vs-serial-epilogue.
func fuzzOptions(b byte) Options {
	var mode IndexMode
	switch (b >> 5) & 3 {
	case 1:
		mode = IndexU32
	case 2:
		mode = IndexReference
	case 3:
		mode = IndexForceDia
	}
	var ex ExecMode
	if b&128 != 0 {
		ex = ExecSegSum
	}
	return Options{
		DisableReorder: b&1 != 0,
		OneLevel:       b&2 != 0,
		Base:           int(b>>2) % 8 * 4, // 0 (auto), 4, 8, ..., 28
		Index:          mode,
		Exec:           ex,
	}
}

// fuzzValueOptions maps a second input byte (data[3], which doubles as
// the first entry's row byte) onto the value-stream ablation space:
// auto / pinned-reference / forced-f32 value modes and the AllowF32Values
// opt-in. Forced f32 without the opt-in deliberately behaves like auto —
// that non-engagement is part of the contract under test.
func fuzzValueOptions(o *Options, b byte) {
	switch b & 3 {
	case 1:
		o.Value = ValueReference
	case 2:
		o.Value = ValueForceF32
	}
	o.AllowF32Values = b&4 != 0
}

// fuzzReorderOptions maps bits 3-5 of the same byte onto the reorder
// strategy space: default length sort, the autotuner, and the three
// forced orders. The forced graph modes (RCM, cluster) bypass the
// autotuner's time-budget gate, so the bipartite traversals run even on
// fuzz-sized matrices.
func fuzzReorderOptions(o *Options, b byte) {
	switch (b >> 3) & 7 {
	case 1:
		o.Reorder = ReorderAuto
	case 2:
		o.Reorder = ReorderIdentity
	case 3:
		o.Reorder = ReorderRCM
	case 4:
		o.Reorder = ReorderCluster
	}
}

// referencePrepared builds the []int oracle instance for a prepared
// compressed instance: same options, reference index mode, reference
// (uncompressed f64) value mode, serial epilogue execution, and the
// resolved proportion pinned so both cut identical regions (the auto
// proportion is stream-aware, so leaving it auto could move boundaries).
// Pinning ExecSerial means a primary instance running segmented-sum is
// checked bit-for-bit against the extraY serial-epilogue path it
// replaces; pinning ValueReference means a palette instance is checked
// against the matrix's own value array.
func referencePrepared(t *testing.T, hp *Prepared, a *sparse.CSR, opts Options) *Prepared {
	t.Helper()
	refOpts := opts
	refOpts.Index = IndexReference
	refOpts.Exec = ExecSerial
	refOpts.Value = ValueReference
	refOpts.AllowF32Values = false
	refOpts.PProportion = hp.Plan().PProportion
	ref, err := New(refOpts).Prepare(amp.IntelI912900KF(), a)
	if err != nil {
		t.Fatalf("reference Prepare failed (opts %+v): %v", refOpts, err)
	}
	return ref.(*Prepared)
}

// segsumMegaRowSeed builds the mega-row fuzz seed: option bit 7 forces
// segmented-sum, row 2 of 6 holds 20 of 23 entries so the equal-nnz cut
// splits it across most of the 16 regions.
func segsumMegaRowSeed() []byte {
	data := []byte{5, 31, 128}
	for j := 0; j < 20; j++ {
		data = append(data, 2, byte(j), byte(40+j))
	}
	return append(data, 0, 1, 9, 1, 3, 8, 3, 5, 7)
}

// diaDefectSeed builds the banded-with-defect fuzz seed: option bits 5-6
// force the diagonal format, rows 0-7 are 8-long contiguous runs
// (descriptor eligible) and row 5 is an off-band defect row of isolated
// entries, so diagonal regions mix descriptor rows with the per-row u32
// fallback. The first entry's row byte is 0, leaving the value stream on
// auto (the small distinct-value set palettes).
func diaDefectSeed() []byte {
	data := []byte{7, 30, 96}
	for i := 0; i < 8; i++ {
		if i == 5 {
			continue
		}
		// 8-wide bands: a single run long enough to clear diaMinRunLen.
		for j := 0; j < 8; j++ {
			data = append(data, byte(i), byte(3*i+j), byte(4+i+j))
		}
	}
	return append(data, 5, 0, 8, 5, 9, 9, 5, 20, 10, 5, 28, 11, 5, 14, 12)
}

// adjacencySeed builds the 0/1 adjacency fuzz seed: every value byte is
// 4 (stored value exactly 1.0), so the palette stream engages with a
// single entry, and row 3 holds 16 of the nonzeros so the equal-nnz cut
// straddles a region boundary through palette-format regions.
func adjacencySeed() []byte {
	data := []byte{31, 31, 0}
	for j := 0; j < 16; j++ {
		data = append(data, 3, byte(2*j), 4)
	}
	for i := 0; i < 32; i++ {
		if i == 3 {
			continue
		}
		data = append(data, byte(i), byte(i), 4, byte(i), byte((i*7+3)%32), 4)
	}
	return data
}

// reorderSeed builds a shuffled-band fuzz seed: a 16-row band written in
// scrambled row order, with data[3] (the first entry's row byte) carrying
// the given reorder-mode bits so the seed lands directly on one reorder
// strategy — 24 forces RCM, 32 forces cluster, 8 runs the autotuner.
func reorderSeed(modeBits byte) []byte {
	data := []byte{15, 31, 0, modeBits, byte(2 * (modeBits % 16)), 7}
	for i := 0; i < 16; i++ {
		r := (i*7 + 3) % 16
		for j := 0; j < 3; j++ {
			data = append(data, byte(r), byte(2*r+j), byte(5+r+j))
		}
	}
	return data
}

// f32Seed activates the rounded value stream: the first entry's row byte
// is 6 (ValueForceF32 + AllowF32Values), so the bit-equality stages are
// skipped and the naive comparison runs at f32 tolerance.
func f32Seed() []byte {
	return []byte{7, 15, 0,
		6, 0, 13, 6, 1, 14, 0, 2, 15, 1, 4, 9, 2, 6, 7, 3, 8, 5, 4, 10, 3, 5, 12, 90, 7, 14, 33}
}

// FuzzPrepareCompute feeds random small matrices through the full
// HASpMV pipeline — HACSR reorder, cost partition, conflict-resolving
// executor — checks the result against the naive reference multiply plus
// the nonzero-coverage invariant, then repartitions with an input-derived
// plan and re-checks both. Seed corpus under
// testdata/fuzz/FuzzPrepareCompute covers the structural extremes:
// all-empty rows, a single dense row, all-short rows, all-long rows, a
// weighted repartition after reorder on a mostly-empty matrix, two
// forced-segsum shapes (option bit 7): an all-one-row matrix and a
// mega-row holding most of the nonzeros, both of which cut one row
// across several regions so the parallel fragment patch is exercised,
// and the pluggable-format shapes: a forced-diagonal banded matrix with
// an off-band defect row, a 0/1 adjacency matrix whose single-entry
// palette straddles a region boundary, and an explicit f32 opt-in.
func FuzzPrepareCompute(f *testing.F) {
	f.Add([]byte{7, 7, 0})                                                                                                                 // 8x8, all rows empty
	f.Add([]byte{0, 15, 1, 0, 0, 8, 0, 5, 16, 0, 11, 200})                                                                                 // single row, reorder off
	f.Add([]byte{31, 31, 2, 1, 1, 4, 9, 9, 8, 30, 2, 252})                                                                                 // sparse diagonal-ish, one-level
	f.Add([]byte{3, 3, 12, 0, 0, 1, 0, 1, 2, 0, 2, 3, 1, 0, 4, 1, 1, 5, 1, 2, 6, 2, 0, 7, 2, 1, 8, 2, 2, 9, 3, 0, 10, 3, 1, 11, 3, 2, 12}) // dense 4x3
	f.Add([]byte{15, 7, 0, 201, 0, 0, 8, 0, 5, 200, 1, 40, 5, 3, 12})                                                                      // empty rows + weighted repartition
	f.Add([]byte{7, 200, 0, 0, 10, 40, 0, 20, 41, 1, 0, 42, 1, 252, 43, 2, 0, 44, 2, 251, 45})                                             // wide: u16-delta region boundary (eligible rows around a >2^16-span row)
	f.Add([]byte{0, 255, 0, 0, 0, 10, 0, 252, 20, 0, 100, 30})                                                                             // wide: single row spanning past 2^16 columns
	f.Add([]byte{0, 15, 128, 0, 0, 8, 0, 5, 16, 0, 11, 200, 0, 3, 7, 0, 7, 9, 0, 13, 11, 0, 1, 5, 0, 9, 3})                                // forced segsum: the whole matrix is one row, cut across many regions
	f.Add(segsumMegaRowSeed())                                                                                                             // forced segsum: one mega-row spanning 3+ regions among short rows
	f.Add(diaDefectSeed())                                                                                                                 // forced dia: banded rows + one off-band defect row on the u32 fallback
	f.Add(adjacencySeed())                                                                                                                 // 0/1 adjacency: single-entry palette across a region boundary
	f.Add(f32Seed())                                                                                                                       // explicit f32 opt-in: rounded stream, loosened comparison
	f.Add(reorderSeed(24))                                                                                                                 // forced RCM over a shuffled band
	f.Add(reorderSeed(32))                                                                                                                 // forced cluster order over a shuffled band
	f.Add(reorderSeed(8))                                                                                                                  // reorder autotuner (gated at fuzz sizes: length/identity race)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // keep Prepare cost bounded
		}
		a, optByte := fuzzMatrix(data)
		if a == nil {
			return
		}
		opts := fuzzOptions(optByte)
		if len(data) > 3 {
			fuzzValueOptions(&opts, data[3])
			fuzzReorderOptions(&opts, data[3])
		}
		prep, err := New(opts).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("Prepare failed on a valid %dx%d matrix (%d nnz, opts %+v): %v",
				a.Rows, a.Cols, a.NNZ(), opts, err)
		}
		if err := exec.CheckAssignments(a, prep.Assignments()); err != nil {
			t.Fatalf("assignment coverage broken (opts %+v): %v", opts, err)
		}
		hp := prep.(*Prepared)
		// Only the explicit f32 opt-in rounds values: there the result
		// cannot be bit-identical to the f64 oracle, so the bit-equality
		// stages are skipped and the naive comparison loosens to f32
		// precision. Every other value mode must stay exact.
		f32Active := hp.ValueStats().Format == ValF32
		tol := 1e-9
		if f32Active {
			if !opts.AllowF32Values {
				t.Fatalf("f32 value stream engaged without AllowF32Values (opts %+v)", opts)
			}
			tol = 1e-5
		}

		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 + float64(i%5)/4
		}
		y := make([]float64, a.Rows)
		prep.Compute(y, x)
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		for i := range y {
			diff := math.Abs(y[i] - want[i])
			if diff > tol*(1+math.Abs(want[i])) {
				t.Fatalf("y[%d] = %v, naive reference %v (matrix %dx%d nnz %d, opts %+v)",
					i, y[i], want[i], a.Rows, a.Cols, a.NNZ(), opts)
			}
		}

		// Bit-equality against the []int/f64 reference streams: index and
		// palette compression are only legal because on the same partition
		// they reproduce the reference kernels' float64 bits exactly.
		var refPrep *Prepared
		ref := make([]float64, a.Rows)
		if !f32Active {
			refPrep = referencePrepared(t, hp, a, opts)
			refPrep.Compute(ref, x)
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("compressed y[%d] = %x, []int reference %x (matrix %dx%d nnz %d, opts %+v)",
						i, math.Float64bits(y[i]), math.Float64bits(ref[i]), a.Rows, a.Cols, a.NNZ(), opts)
				}
			}
		}

		// Repartition with an input-derived plan and re-check everything:
		// boundary moves must preserve coverage and the computed product for
		// any valid proportion/weight combination, including on matrices
		// with empty rows after a reorder.
		var pb byte
		if len(data) > 4 {
			pb = data[4]
		}
		plan := Plan{PProportion: 0.05 + 0.9*float64(pb)/255}
		if pb&1 != 0 {
			plan.Weights = make([]float64, len(hp.Regions()))
			for i := range plan.Weights {
				plan.Weights[i] = 0.1 + float64((int(pb)+7*i)%16)/4
			}
		}
		if err := hp.Repartition(plan); err != nil {
			t.Fatalf("Repartition(%+v) failed on a valid plan (matrix %dx%d nnz %d, opts %+v): %v",
				plan, a.Rows, a.Cols, a.NNZ(), opts, err)
		}
		if err := exec.CheckAssignments(a, hp.Assignments()); err != nil {
			t.Fatalf("assignment coverage broken after repartition (plan %+v, opts %+v): %v",
				plan, opts, err)
		}
		hp.Compute(y, x)
		for i := range y {
			diff := math.Abs(y[i] - want[i])
			if diff > tol*(1+math.Abs(want[i])) {
				t.Fatalf("after repartition: y[%d] = %v, reference %v (plan %+v, opts %+v)",
					i, y[i], want[i], plan, opts)
			}
		}

		// The same boundary move on the reference instance must keep the two
		// bit-identical: Repartition re-picks per-region formats without
		// rebuilding streams, and a region that drifts across a u16-delta
		// or diagonal eligibility edge must fall back to a wider format,
		// not drift bits.
		if !f32Active {
			if err := refPrep.Repartition(plan); err != nil {
				t.Fatalf("reference Repartition(%+v) failed: %v", plan, err)
			}
			refPrep.Compute(ref, x)
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("after repartition: compressed y[%d] = %x, []int reference %x (plan %+v, opts %+v)",
						i, math.Float64bits(y[i]), math.Float64bits(ref[i]), plan, opts)
				}
			}
		}

		// Reorder bit-identity against the pinned natural-order oracle:
		// under a row-edge partition (RowCost never cuts inside a row) with
		// the serial epilogue, every y[i] is one dot product over row i's
		// entries in column order — so ANY row permutation, graph orders
		// included, must reproduce the identity ordering bit for bit, before
		// and after a repartition. This is the contract that makes the
		// reorder layer pluggable at all.
		roOpts := Options{
			Metric: RowCost, Index: IndexReference, Exec: ExecSerial,
			Value: ValueReference, Base: opts.Base, Reorder: opts.Reorder,
		}
		rp, err := New(roOpts).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("row-cost Prepare failed (reorder %v): %v", roOpts.Reorder, err)
		}
		idOpts := roOpts
		idOpts.Reorder = ReorderIdentity
		idOpts.PProportion = rp.(*Prepared).Plan().PProportion
		ip, err := New(idOpts).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("identity-oracle Prepare failed: %v", err)
		}
		ry := make([]float64, a.Rows)
		iy := make([]float64, a.Rows)
		rp.Compute(ry, x)
		ip.Compute(iy, x)
		for i := range ry {
			if math.Float64bits(ry[i]) != math.Float64bits(iy[i]) {
				t.Fatalf("reorder %v y[%d] = %x, identity oracle %x (matrix %dx%d nnz %d)",
					roOpts.Reorder, i, math.Float64bits(ry[i]), math.Float64bits(iy[i]), a.Rows, a.Cols, a.NNZ())
			}
		}
		oplan := Plan{PProportion: plan.PProportion}
		if err := rp.(*Prepared).Repartition(oplan); err != nil {
			t.Fatalf("row-cost Repartition(%+v): %v", oplan, err)
		}
		if err := ip.(*Prepared).Repartition(oplan); err != nil {
			t.Fatalf("identity-oracle Repartition(%+v): %v", oplan, err)
		}
		rp.Compute(ry, x)
		ip.Compute(iy, x)
		for i := range ry {
			if math.Float64bits(ry[i]) != math.Float64bits(iy[i]) {
				t.Fatalf("after repartition: reorder %v y[%d] = %x, identity oracle %x (plan %+v)",
					roOpts.Reorder, i, math.Float64bits(ry[i]), math.Float64bits(iy[i]), oplan)
			}
		}
	})
}

// FuzzComputeBatch checks the serving-layer contract at its root: for
// any matrix and any batch width, the fused ComputeBatch must produce
// exactly — bit for bit — what nv independent Computes produce. Seed
// corpus under testdata/fuzz/FuzzComputeBatch mirrors the structural
// extremes with varying widths, including the forced-segsum one-row and
// mega-row shapes so the block-kernel fragment patch is covered too.
func FuzzComputeBatch(f *testing.F) {
	f.Add([]byte{7, 7, 0}, byte(8))                                                                                                                                                                            // empty rows, full block
	f.Add([]byte{0, 15, 0, 0, 0, 8, 0, 5, 16, 0, 11, 200}, byte(3))                                                                                                                                            // single row
	f.Add([]byte{31, 31, 0, 1, 1, 4, 9, 9, 8, 30, 2, 252}, byte(9))                                                                                                                                            // short rows, two blocks
	f.Add([]byte{2, 30, 0, 0, 0, 1, 0, 3, 2, 0, 6, 3, 0, 9, 4, 0, 12, 5, 0, 15, 6, 0, 18, 7, 0, 21, 8, 1, 1, 9, 1, 4, 10, 1, 7, 11, 1, 10, 12, 1, 13, 13, 1, 16, 14, 1, 19, 15, 1, 22, 16, 2, 2, 17}, byte(5)) // long rows
	f.Add([]byte{7, 200, 0, 0, 10, 40, 0, 20, 41, 1, 0, 42, 1, 252, 43, 2, 0, 44, 2, 251, 45}, byte(5))                                                                                                        // wide: u16-delta region boundary, block path
	f.Add([]byte{0, 15, 128, 0, 0, 8, 0, 5, 16, 0, 11, 200, 0, 3, 7, 0, 7, 9, 0, 13, 11, 0, 1, 5, 0, 9, 3}, byte(5))                                                                                           // forced segsum: all-one-row matrix, batched fragment patch
	f.Add(segsumMegaRowSeed(), byte(9))                                                                                                                                                                        // forced segsum: mega-row spanning 3+ regions, batched
	f.Add(diaDefectSeed(), byte(6))                                                                                                                                                                            // forced dia with defect row, block kernels
	f.Add(adjacencySeed(), byte(8))                                                                                                                                                                            // 0/1 adjacency palette across a region boundary, full block
	f.Add(f32Seed(), byte(4))                                                                                                                                                                                  // explicit f32 opt-in, block kernels
	f.Add(reorderSeed(24), byte(7))                                                                                                                                                                            // forced RCM over a shuffled band, block kernels
	f.Add(reorderSeed(32), byte(8))                                                                                                                                                                            // forced cluster order, full block
	f.Fuzz(func(t *testing.T, data []byte, nvByte byte) {
		if len(data) > 1<<12 {
			return
		}
		a, optByte := fuzzMatrix(data)
		if a == nil {
			return
		}
		nv := 1 + int(nvByte)%10
		opts := fuzzOptions(optByte)
		if len(data) > 3 {
			fuzzValueOptions(&opts, data[3])
			fuzzReorderOptions(&opts, data[3])
		}
		prep, err := New(opts).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		bp, ok := prep.(exec.BatchPrepared)
		if !ok {
			t.Fatal("core.Prepared lost its ComputeBatch implementation")
		}
		X := make([][]float64, nv)
		Y := make([][]float64, nv)
		want := make([][]float64, nv)
		for v := 0; v < nv; v++ {
			X[v] = make([]float64, a.Cols)
			for i := range X[v] {
				X[v][i] = float64((i+2*v)%7) - 3 + float64(v)/8
			}
			Y[v] = make([]float64, a.Rows)
			want[v] = make([]float64, a.Rows)
			prep.Compute(want[v], X[v])
		}
		bp.ComputeBatch(Y, X)
		for v := 0; v < nv; v++ {
			for i := range Y[v] {
				if Y[v][i] != want[v][i] {
					t.Fatalf("batch nv=%d: Y[%d][%d] = %x, solo Compute gives %x (matrix %dx%d nnz %d)",
						nv, v, i, Y[v][i], want[v][i], a.Rows, a.Cols, a.NNZ())
				}
			}
		}

		// The compressed block kernels must also match the []int/f64
		// reference block kernels bit for bit on the same partition. The
		// explicit f32 opt-in rounds values, so only the batch-vs-solo
		// equality above (same instance, same streams) applies there.
		if prep.(*Prepared).ValueStats().Format == ValF32 {
			return
		}
		refPrep := referencePrepared(t, prep.(*Prepared), a, opts)
		refY := make([][]float64, nv)
		for v := range refY {
			refY[v] = make([]float64, a.Rows)
		}
		refPrep.ComputeBatch(refY, X)
		for v := 0; v < nv; v++ {
			for i := range Y[v] {
				if math.Float64bits(Y[v][i]) != math.Float64bits(refY[v][i]) {
					t.Fatalf("batch nv=%d: compressed Y[%d][%d] = %x, []int reference %x (matrix %dx%d nnz %d, opts %+v)",
						nv, v, i, math.Float64bits(Y[v][i]), math.Float64bits(refY[v][i]), a.Rows, a.Cols, a.NNZ(), opts)
				}
			}
		}
	})
}
