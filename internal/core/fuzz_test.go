package core

import (
	"math"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/exec"
	"haspmv/internal/sparse"
)

// fuzzMatrix decodes a byte string into a small CSR matrix: the first
// two bytes pick the shape (1..32 rows and columns), then each (row,
// col, value) triple adds one entry. Duplicates are summed by ToCSR, a
// value byte of 0 stays an explicit stored zero, and leftover bytes are
// ignored — every input decodes to *some* valid matrix, so the fuzzer
// explores structure (empty rows, hub rows, diagonals) rather than
// fighting a parser. The second return drives algorithm options.
func fuzzMatrix(data []byte) (*sparse.CSR, byte) {
	if len(data) < 2 {
		return nil, 0
	}
	rows := 1 + int(data[0])%32
	cols := 1 + int(data[1])%32
	var optByte byte
	if len(data) > 2 {
		optByte = data[2]
	}
	c := &sparse.COO{Rows: rows, Cols: cols}
	for k := 3; k+2 < len(data); k += 3 {
		i := int(data[k]) % rows
		j := int(data[k+1]) % cols
		v := float64(int8(data[k+2])) / 4
		c.Add(i, j, v)
	}
	return c.ToCSR(), optByte
}

// fuzzOptions maps the option byte onto the ablation space: reorder
// on/off, one- vs two-level partition, and a handful of explicit base
// thresholds around the short/long boundary.
func fuzzOptions(b byte) Options {
	return Options{
		DisableReorder: b&1 != 0,
		OneLevel:       b&2 != 0,
		Base:           int(b>>2) % 8 * 4, // 0 (auto), 4, 8, ..., 28
	}
}

// FuzzPrepareCompute feeds random small matrices through the full
// HASpMV pipeline — HACSR reorder, cost partition, conflict-resolving
// executor — checks the result against the naive reference multiply plus
// the nonzero-coverage invariant, then repartitions with an input-derived
// plan and re-checks both. Seed corpus under
// testdata/fuzz/FuzzPrepareCompute covers the structural extremes:
// all-empty rows, a single dense row, all-short rows, all-long rows, and
// a weighted repartition after reorder on a mostly-empty matrix.
func FuzzPrepareCompute(f *testing.F) {
	f.Add([]byte{7, 7, 0})                                                                                                                 // 8x8, all rows empty
	f.Add([]byte{0, 15, 1, 0, 0, 8, 0, 5, 16, 0, 11, 200})                                                                                 // single row, reorder off
	f.Add([]byte{31, 31, 2, 1, 1, 4, 9, 9, 8, 30, 2, 252})                                                                                 // sparse diagonal-ish, one-level
	f.Add([]byte{3, 3, 12, 0, 0, 1, 0, 1, 2, 0, 2, 3, 1, 0, 4, 1, 1, 5, 1, 2, 6, 2, 0, 7, 2, 1, 8, 2, 2, 9, 3, 0, 10, 3, 1, 11, 3, 2, 12}) // dense 4x3
	f.Add([]byte{15, 7, 0, 201, 0, 0, 8, 0, 5, 200, 1, 40, 5, 3, 12})                                                                      // empty rows + weighted repartition
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // keep Prepare cost bounded
		}
		a, optByte := fuzzMatrix(data)
		if a == nil {
			return
		}
		opts := fuzzOptions(optByte)
		prep, err := New(opts).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("Prepare failed on a valid %dx%d matrix (%d nnz, opts %+v): %v",
				a.Rows, a.Cols, a.NNZ(), opts, err)
		}
		if err := exec.CheckAssignments(a, prep.Assignments()); err != nil {
			t.Fatalf("assignment coverage broken (opts %+v): %v", opts, err)
		}

		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1 + float64(i%5)/4
		}
		y := make([]float64, a.Rows)
		prep.Compute(y, x)
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		for i := range y {
			diff := math.Abs(y[i] - want[i])
			if diff > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("y[%d] = %v, naive reference %v (matrix %dx%d nnz %d, opts %+v)",
					i, y[i], want[i], a.Rows, a.Cols, a.NNZ(), opts)
			}
		}

		// Repartition with an input-derived plan and re-check everything:
		// boundary moves must preserve coverage and the computed product for
		// any valid proportion/weight combination, including on matrices
		// with empty rows after a reorder.
		hp := prep.(*Prepared)
		var pb byte
		if len(data) > 3 {
			pb = data[3]
		}
		plan := Plan{PProportion: 0.05 + 0.9*float64(pb)/255}
		if pb&1 != 0 {
			plan.Weights = make([]float64, len(hp.Regions()))
			for i := range plan.Weights {
				plan.Weights[i] = 0.1 + float64((int(pb)+7*i)%16)/4
			}
		}
		if err := hp.Repartition(plan); err != nil {
			t.Fatalf("Repartition(%+v) failed on a valid plan (matrix %dx%d nnz %d, opts %+v): %v",
				plan, a.Rows, a.Cols, a.NNZ(), opts, err)
		}
		if err := exec.CheckAssignments(a, hp.Assignments()); err != nil {
			t.Fatalf("assignment coverage broken after repartition (plan %+v, opts %+v): %v",
				plan, opts, err)
		}
		hp.Compute(y, x)
		for i := range y {
			diff := math.Abs(y[i] - want[i])
			if diff > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("after repartition: y[%d] = %v, reference %v (plan %+v, opts %+v)",
					i, y[i], want[i], plan, opts)
			}
		}
	})
}

// FuzzComputeBatch checks the serving-layer contract at its root: for
// any matrix and any batch width, the fused ComputeBatch must produce
// exactly — bit for bit — what nv independent Computes produce. Seed
// corpus under testdata/fuzz/FuzzComputeBatch mirrors the structural
// extremes with varying widths.
func FuzzComputeBatch(f *testing.F) {
	f.Add([]byte{7, 7, 0}, byte(8))                                                                                                                                                                            // empty rows, full block
	f.Add([]byte{0, 15, 0, 0, 0, 8, 0, 5, 16, 0, 11, 200}, byte(3))                                                                                                                                            // single row
	f.Add([]byte{31, 31, 0, 1, 1, 4, 9, 9, 8, 30, 2, 252}, byte(9))                                                                                                                                            // short rows, two blocks
	f.Add([]byte{2, 30, 0, 0, 0, 1, 0, 3, 2, 0, 6, 3, 0, 9, 4, 0, 12, 5, 0, 15, 6, 0, 18, 7, 0, 21, 8, 1, 1, 9, 1, 4, 10, 1, 7, 11, 1, 10, 12, 1, 13, 13, 1, 16, 14, 1, 19, 15, 1, 22, 16, 2, 2, 17}, byte(5)) // long rows
	f.Fuzz(func(t *testing.T, data []byte, nvByte byte) {
		if len(data) > 1<<12 {
			return
		}
		a, optByte := fuzzMatrix(data)
		if a == nil {
			return
		}
		nv := 1 + int(nvByte)%10
		prep, err := New(fuzzOptions(optByte)).Prepare(amp.IntelI912900KF(), a)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		bp, ok := prep.(exec.BatchPrepared)
		if !ok {
			t.Fatal("core.Prepared lost its ComputeBatch implementation")
		}
		X := make([][]float64, nv)
		Y := make([][]float64, nv)
		want := make([][]float64, nv)
		for v := 0; v < nv; v++ {
			X[v] = make([]float64, a.Cols)
			for i := range X[v] {
				X[v][i] = float64((i+2*v)%7) - 3 + float64(v)/8
			}
			Y[v] = make([]float64, a.Rows)
			want[v] = make([]float64, a.Rows)
			prep.Compute(want[v], X[v])
		}
		bp.ComputeBatch(Y, X)
		for v := 0; v < nv; v++ {
			for i := range Y[v] {
				if Y[v][i] != want[v][i] {
					t.Fatalf("batch nv=%d: Y[%d][%d] = %x, solo Compute gives %x (matrix %dx%d nnz %d)",
						nv, v, i, Y[v][i], want[v][i], a.Rows, a.Cols, a.NNZ())
				}
			}
		}
	})
}
