package core

import (
	"fmt"
	"sort"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
)

// Options configure HASpMV. The zero value selects the paper's defaults:
// both core groups, auto-calibrated P proportion and base threshold,
// cache-line cost partitioning, reordering enabled.
type Options struct {
	// Config selects the participating cores (default both groups).
	Config amp.Config
	// PProportion is the level-1 cost share of the P-group; 0 derives it
	// from the machine (DefaultProportion).
	PProportion float64
	// Base is the HACSR short/long threshold; 0 derives it from the
	// matrix (AutoBase).
	Base int
	// Metric is the partitioning cost measure (default CacheLineCost).
	Metric CostMetric
	// DisableReorder skips the HACSR reorder (ablation; also Figure 9's
	// partition-only comparisons run with natural order).
	DisableReorder bool
	// OneLevel disables the heterogeneity-aware level-1 split, balancing
	// cost equally across all cores (ablation).
	OneLevel bool
}

// New builds the HASpMV algorithm. Config defaults to both groups (PAndE).
func New(opts Options) exec.Algorithm { return &alg{opts: opts} }

type alg struct{ opts Options }

func (a *alg) Name() string { return fmt.Sprintf("HASpMV(%v,%v)", a.opts.Config, a.opts.Metric) }

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	opts := a.opts
	if opts.PProportion <= 0 || opts.PProportion >= 1 {
		opts.PProportion = ProportionFor(m, mat)
	}
	if opts.Base <= 0 {
		opts.Base = AutoBase(mat)
	}

	var h *HACSR
	if opts.DisableReorder {
		h = Identity(mat)
	} else {
		h = Convert(mat, opts.Base)
	}
	cs := costSum(mat, h, opts.Metric)
	cores := m.Cores(opts.Config)
	regions := partition(mat, h, cs, m, cores, opts.PProportion, opts.Metric, opts.OneLevel)
	if err := checkRegions(h, regions); err != nil {
		return nil, err
	}

	// Rows with no nonzeros occupy zero width in nnz space and are not
	// visited by the region walk; Compute zeroes them explicitly.
	nEmpty := 0
	for i := 0; i < mat.Rows; i++ {
		if mat.RowPtr[i+1] == mat.RowPtr[i] {
			nEmpty++
		}
	}
	var empty []int
	if nEmpty > 0 {
		empty = make([]int, 0, nEmpty)
		for i := 0; i < mat.Rows; i++ {
			if mat.RowPtr[i+1] == mat.RowPtr[i] {
				empty = append(empty, i)
			}
		}
	}

	// Per-core unroll threshold (Algorithm 6 determines Len by core
	// type): P-class cores switch to the doubly-unrolled path earlier.
	unroll := make([]int, len(cores))
	for i, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			unroll[i] = 32
		} else {
			unroll[i] = 64
		}
	}

	return &Prepared{
		mat: mat, h: h, machine: m,
		opts: opts, regions: regions, emptyRows: empty, unroll: unroll,
	}, nil
}

// Prepared is an analyzed HASpMV instance. It is exported (unlike the
// baselines') so tests and the harness can inspect the format and the
// partition.
type Prepared struct {
	mat       *sparse.CSR
	h         *HACSR
	machine   *amp.Machine
	opts      Options
	regions   []Region
	emptyRows []int
	unroll    []int
}

// Format exposes the HACSR view.
func (p *Prepared) Format() *HACSR { return p.h }

// Regions exposes the per-core partition in reordered-nnz space.
func (p *Prepared) Regions() []Region { return p.regions }

// Compute implements Algorithm 5: per-core fragment kernels with the
// extraY epilogue resolving rows that are cut across cores.
func (p *Prepared) Compute(y, x []float64) {
	for _, r := range p.emptyRows {
		y[r] = 0
	}
	n := len(p.regions)
	extraRow := make([]int, n)
	extraVal := make([]float64, n)
	exec.Parallel(n, func(id int) {
		extraRow[id] = -1
		reg := p.regions[id]
		if reg.Lo >= reg.Hi {
			return
		}
		h, mat := p.h, p.mat
		un := p.unroll[id]
		r := rowOfPosition(h, reg.Lo)
		pos := reg.Lo
		for pos < reg.Hi {
			rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
			fragEnd := rowEnd
			if fragEnd > reg.Hi {
				fragEnd = reg.Hi
			}
			if fragEnd > pos {
				o := h.RowBeginNNZ[r]
				sum := kernel.DotRange(mat.Val, mat.ColIdx, x,
					o+(pos-rowStart), o+(fragEnd-rowStart), un)
				if pos == rowStart {
					// This core owns the row's first fragment: direct
					// store (Algorithm 5's y[pl[id]] = kernel(...)).
					y[h.Perm[r]] = sum
				} else {
					// Continuation fragment: only the first row of a
					// region can start mid-row.
					extraRow[id] = h.Perm[r]
					extraVal[id] = sum
				}
				pos = fragEnd
			}
			r++
		}
	})
	// Serial epilogue (Algorithm 5 lines 15-17): add the tail conflicts.
	for id := 0; id < n; id++ {
		if extraRow[id] >= 0 {
			y[extraRow[id]] += extraVal[id]
		}
	}
}

// rowOfPosition returns the reordered row containing reordered-nnz
// position pos (the first row whose end exceeds it).
func rowOfPosition(h *HACSR, pos int) int {
	return sort.Search(h.Rows, func(i int) bool { return h.RowPtr[i+1] > pos })
}

// Assignments maps each region to spans in the original matrix's nnz
// space for the performance model, merging fragments of consecutive
// original rows into single spans.
func (p *Prepared) Assignments() []costmodel.Assignment {
	h := p.h
	asgs := make([]costmodel.Assignment, len(p.regions))
	for i, reg := range p.regions {
		asg := costmodel.Assignment{Core: reg.Core}
		if reg.Lo < reg.Hi {
			r := rowOfPosition(h, reg.Lo)
			pos := reg.Lo
			var cur costmodel.Span
			open := false
			for pos < reg.Hi {
				rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
				fragEnd := rowEnd
				if fragEnd > reg.Hi {
					fragEnd = reg.Hi
				}
				if fragEnd > pos {
					o := h.RowBeginNNZ[r]
					lo := o + (pos - rowStart)
					hi := o + (fragEnd - rowStart)
					if open && cur.Hi == lo {
						cur.Hi = hi
					} else {
						if open {
							asg.Spans = append(asg.Spans, cur)
						}
						cur = costmodel.Span{Lo: lo, Hi: hi}
						open = true
					}
					pos = fragEnd
				}
				r++
			}
			if open {
				asg.Spans = append(asg.Spans, cur)
			}
		}
		asgs[i] = asg
	}
	return asgs
}
