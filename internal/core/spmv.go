package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/kernel"
	"haspmv/internal/sparse"
	"haspmv/internal/telemetry"
	"haspmv/internal/telemetry/tracing"
)

// HASpMV pipeline telemetry (no-ops while telemetry is disabled).
var (
	cPrepares   = telemetry.NewCounter("core_prepares")
	cComputes   = telemetry.NewCounter("core_computes")
	gRegions    = telemetry.NewGauge("core_regions")
	computeHist = telemetry.NewHistogram("core_compute")
	prepareHist = telemetry.NewHistogram("core_prepare")
	// Roofline instrumentation: the last multiply's achieved bandwidth
	// (modeled traffic over measured wall time), the calibrated
	// stream-triad DRAM peak it is chasing, and their ratio in percent.
	gEffBandwidth = telemetry.NewGauge("core_effective_bandwidth_mbps")
	gTriadPeak    = telemetry.NewGauge("core_triad_peak_mbps")
	gRoofline     = telemetry.NewGauge("core_roofline_pct")
)

// triadElems sizes the roofline calibration run: 64M float64 elements
// (three 512 MB streams) is far past every modeled cache, so EstimateTriad
// reports the DRAM-bound plateau of the paper's Figure 3 sweep.
const triadElems = 64_000_000

// Options configure HASpMV. The zero value selects the paper's defaults:
// both core groups, auto-calibrated P proportion and base threshold,
// cache-line cost partitioning, reordering enabled.
type Options struct {
	// Config selects the participating cores (default both groups).
	Config amp.Config
	// PProportion is the level-1 cost share of the P-group; 0 derives it
	// from the machine (DefaultProportion).
	PProportion float64
	// Base is the HACSR short/long threshold; 0 derives it from the
	// matrix (AutoBase).
	Base int
	// Metric is the partitioning cost measure (default CacheLineCost).
	Metric CostMetric
	// DisableReorder skips the HACSR reorder (ablation; also Figure 9's
	// partition-only comparisons run with natural order).
	DisableReorder bool
	// OneLevel disables the heterogeneity-aware level-1 split, balancing
	// cost equally across all cores (ablation).
	OneLevel bool
	// Index selects the column-index stream policy (default IndexAuto:
	// compressed u32/u16/diagonal streams with per-region dispatch).
	Index IndexMode
	// Value selects the value stream policy (default ValueAuto: a 1-byte
	// palette stream when the matrix has at most PaletteMax distinct
	// values — bit-exact — and the []float64 reference otherwise).
	Value ValueMode
	// AllowF32Values permits the lossy float32 value stream. Off by
	// default: no mode reduces precision without this explicit opt-in.
	AllowF32Values bool
	// Exec selects how rows cut across cores are resolved (default
	// ExecAuto: segmented-sum execution with a parallel patch when the
	// row-length skew predicts the serial extraY epilogue or the
	// per-row fragment-walk overhead dominates, the classic serial
	// epilogue otherwise).
	Exec ExecMode
	// Reorder selects the HACSR row-reorder strategy (default
	// ReorderLength: the paper's length sort; ReorderAuto scores
	// identity/length/RCM/cluster orders with the cost model's byte
	// accounting and picks per matrix). DisableReorder takes precedence
	// and forces the natural order.
	Reorder ReorderMode
}

// New builds the HASpMV algorithm. Config defaults to both groups (PAndE).
func New(opts Options) exec.Algorithm { return &alg{opts: opts} }

type alg struct{ opts Options }

func (a *alg) Name() string { return fmt.Sprintf("HASpMV(%v,%v)", a.opts.Config, a.opts.Metric) }

func (a *alg) Prepare(m *amp.Machine, mat *sparse.CSR) (exec.Prepared, error) {
	tel := telemetry.Active()
	var tPrep, t0 time.Time
	if tel != nil {
		tPrep = time.Now()
	}
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	opts := a.opts
	if opts.Base <= 0 {
		opts.Base = AutoBase(mat)
	}

	if tel != nil {
		t0 = time.Now()
	}
	cores := m.Cores(opts.Config)
	// Rows with no nonzeros occupy zero width in nnz space and are not
	// visited by the region walk; Compute zeroes them explicitly. The
	// reorder sweep already classifies every row, so convert collects the
	// empty ones in the same pass instead of re-scanning the row pointer.
	var h *HACSR
	var empty []int
	var rdec ReorderDecision
	if opts.DisableReorder {
		h = Identity(mat)
		empty = collectEmptyRows(mat)
		rdec = ReorderDecision{Mode: opts.Reorder, Strategy: StrategyIdentity}
	} else {
		h, empty, rdec = reorderFor(mat, opts.Base, opts.Reorder, len(cores), machineLLCBytes(m))
	}
	if tel != nil {
		tel.RecordPhase(telemetry.PhaseReorder, time.Since(t0))
		t0 = time.Now()
	}
	streams := buildStreams(mat, h, opts.Index)
	values := buildValues(mat, opts.Value, opts.AllowF32Values)
	if tel != nil {
		tel.RecordPhase(telemetry.PhaseStreams, time.Since(t0))
		t0 = time.Now()
	}
	// The auto level-1 proportion prices the working set the kernels will
	// actually stream, so it sees the compressed index and value widths.
	if opts.PProportion <= 0 || opts.PProportion >= 1 {
		opts.PProportion = proportionForBytes(m, mat, streams.effIdxBytes(mat.NNZ()), values.effValBytes())
	}
	cs := costSum(mat, h, opts.Metric)
	if tel != nil {
		tel.RecordPhase(telemetry.PhaseCacheLineCost, time.Since(t0))
	}
	regions := partition(mat, streams.col32, h, cs, m, cores, opts.PProportion, opts.Metric, opts.OneLevel, tel)
	if err := checkRegions(h, regions); err != nil {
		return nil, err
	}

	// Per-core unroll threshold (Algorithm 6 determines Len by core
	// type): P-class cores switch to the doubly-unrolled path earlier.
	unroll := make([]int, len(cores))
	for i, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			unroll[i] = 32
		} else {
			unroll[i] = 64
		}
	}

	p := &Prepared{
		mat: mat, h: h, machine: m,
		opts: opts, emptyRows: empty, unroll: unroll,
		cs: cs, cores: cores, streams: streams, values: values,
		reorder: rdec,
		accum:   make([]coreAccum, len(regions)),
	}
	for _, c := range cores {
		if g, _ := m.GroupOf(c); g.Kind == amp.Performance {
			p.pCount++
		}
	}
	p.skew = costmodel.ComputeRowSkew(mat.RowPtr)
	p.buildSegments()
	p.assignFormats(regions)
	p.assignModes(regions)
	p.regions.Store(&regions)
	p.scratch.Store(p.newScratch())
	p.triadMBps = int64(costmodel.EstimateTriad(m, costmodel.DefaultParams(), cores, triadElems).GBps * 1000)
	gTriadPeak.Set(p.triadMBps)
	cPrepares.Add(1)
	gRegions.Set(int64(len(regions)))
	if tel != nil {
		d := time.Since(tPrep)
		tel.RecordPhase(telemetry.PhasePrepare, d)
		prepareHist.Observe(d)
		tel.RecordPartition(partitionRecord(m, mat, h, cs, opts, regions))
	}
	return p, nil
}

// partitionRecord snapshots a partition decision for the trace: the
// inputs (machine, matrix shape, base, metric, proportion) and the
// resulting regions with row-granular cost shares.
func partitionRecord(m *amp.Machine, a *sparse.CSR, h *HACSR, cs []int, opts Options, regions []Region) telemetry.PartitionRecord {
	costAt := func(pos int) int {
		if pos >= h.NNZ() {
			return cs[h.Rows]
		}
		return cs[rowOfPosition(h, pos)]
	}
	rec := telemetry.PartitionRecord{
		Algorithm:  "HASpMV",
		Machine:    m.Name,
		Rows:       a.Rows,
		Cols:       a.Cols,
		NNZ:        a.NNZ(),
		Base:       opts.Base,
		Metric:     opts.Metric.String(),
		Proportion: opts.PProportion,
		TotalCost:  cs[h.Rows],
		Regions:    make([]telemetry.RegionRecord, len(regions)),
	}
	for i, r := range regions {
		rec.Regions[i] = telemetry.RegionRecord{
			Core: r.Core, Lo: r.Lo, Hi: r.Hi,
			Cost: costAt(r.Hi) - costAt(r.Lo),
		}
	}
	return rec
}

// Prepared is an analyzed HASpMV instance. It is exported (unlike the
// baselines') so tests and the harness can inspect the format and the
// partition.
type Prepared struct {
	mat       *sparse.CSR
	h         *HACSR
	machine   *amp.Machine
	opts      Options
	emptyRows []int
	unroll    []int
	// cs is the per-reordered-row cost prefix sum the partition was cut
	// from; Repartition reuses it to move boundaries in O(cores·log nnz).
	cs []int
	// streams holds the compressed column-index streams built once at
	// Prepare; Repartition only re-picks per-region formats over them.
	streams indexStreams
	// values holds the compressed value stream (palette or f32), also
	// built once at Prepare and shared by every region.
	values valueStreams
	// segs is the per-reordered-row segment descriptor stream for
	// segmented-sum execution (nil when the mode is off for this
	// instance); like streams it is built once at Prepare and survives
	// every Repartition, which only re-picks per-region modes.
	segs []kernel.Segment
	// skew is the row-length skew profile driving the execution-mode
	// dispatch.
	skew costmodel.RowSkew
	// reorder records which row-order strategy Prepare chose and the
	// candidate scores behind the choice.
	reorder ReorderDecision
	// cores are the participating core ids (P slots first), and pCount
	// how many of them belong to the Performance group.
	cores  []int
	pCount int
	// regions is the live partition. Compute and ComputeBatch snapshot the
	// pointer once per call so Repartition can swap in a new tiling under
	// concurrent multiplies without ever exposing a half-moved partition.
	regions atomic.Pointer[[]Region]
	// accum is the always-on per-region execution signal (one nanosecond
	// and nonzero accumulator per core slot, cache-line padded). It costs
	// two time.Now calls per core per multiply and no allocation, so the
	// Adapter works with telemetry gated off.
	accum []coreAccum
	// plan is the last installed Repartition target (nil until the first
	// Repartition; Plan() falls back to the Prepare-time proportion).
	plan atomic.Pointer[Plan]
	// repMu serializes Repartition calls and protects its reusable
	// boundary scratch.
	repMu      sync.Mutex
	repBounds  []float64
	repCuts    []int
	rebalances atomic.Int64
	// scratch is the reusable per-call workspace. Compute claims it with
	// an atomic swap and puts it back, so serial repeated multiplication
	// is allocation-free; concurrent calls on the same Prepared fall back
	// to a fresh workspace.
	scratch atomic.Pointer[computeScratch]
	// batch is ComputeBatch's workspace under the same swap discipline.
	batch atomic.Pointer[batchScratch]
	// structBytes is the modeled memory traffic of one sweep over the
	// matrix structure (values, column indices at the cost model's widths,
	// row pointers), refreshed by assignFormats whenever region formats
	// change. Together with the vector traffic it prices each multiply's
	// effective bandwidth against triadMBps, the calibrated stream-triad
	// DRAM peak for this core selection.
	structBytes atomic.Int64
	triadMBps   int64
}

// vectorBytes is the modeled x-load plus y-store traffic of one
// single-vector multiply.
func (p *Prepared) vectorBytes() int64 { return int64(p.mat.Rows+p.mat.Cols) * 8 }

// TrafficBytes returns the modeled memory traffic of one Compute call at
// the cost model's stream widths: values, per-region column indexes, row
// pointers, and the dense vectors.
func (p *Prepared) TrafficBytes() int64 { return p.structBytes.Load() + p.vectorBytes() }

// batchTrafficBytes prices a fused nv-vector multiply: the structure is
// streamed once per register block of vectors, the dense vectors once
// each.
func (p *Prepared) batchTrafficBytes(nv int) int64 {
	sweeps := int64((nv + kernel.MaxBlock - 1) / kernel.MaxBlock)
	return p.structBytes.Load()*sweeps + int64(nv)*p.vectorBytes()
}

// TriadPeakMBps returns the calibrated stream-triad peak (MB/s) for this
// instance's core selection — the roofline the effective-bandwidth gauge
// is compared against.
func (p *Prepared) TriadPeakMBps() int64 { return p.triadMBps }

// recordBandwidth refreshes the effective-bandwidth and roofline gauges
// after a multiply that streamed `bytes` in `d`. Callers gate on
// telemetry being active; both Set calls are plain atomic stores.
func (p *Prepared) recordBandwidth(bytes int64, d time.Duration) {
	ns := int64(d)
	if ns <= 0 {
		return
	}
	mbps := bytes * 1000 / ns // bytes/ns = GB/s, ×1000 → MB/s
	gEffBandwidth.Set(mbps)
	if p.triadMBps > 0 {
		gRoofline.Set(mbps * 100 / p.triadMBps)
	}
}

// coreAccum is one core slot's always-on span accumulator, padded so
// neighbouring cores do not false-share a cache line in the hot path.
type coreAccum struct {
	ns  atomic.Int64
	nnz atomic.Int64
	_   [48]byte
}

// drainSpanNs moves the accumulated per-slot nanoseconds into ns
// (len >= region count) and resets the accumulators.
func (p *Prepared) drainSpanNs(ns []int64) {
	for i := range p.accum {
		ns[i] = p.accum[i].ns.Swap(0)
		p.accum[i].nnz.Store(0)
	}
}

// computeScratch is Compute's per-call workspace: the extraY conflict
// slots, the parallel body closure (built once so the hot path does not
// re-allocate it), and the per-call vectors and telemetry collector the
// body reads.
type computeScratch struct {
	p        *Prepared
	y, x     []float64
	tel      *telemetry.Collector
	regs     []Region
	extraRow []int
	extraVal []float64
	// pending holds one rendezvous counter per region slot for the
	// segmented-sum parallel patch (indexed by the group head's slot);
	// counters are zero between calls (the patching member resets its
	// group's counter), so the pooled scratch needs no per-call sweep.
	pending []atomic.Int32
	// durNs is each slot's kernel time for the current call — one plain
	// store per core, read by the traced path to surface the critical-path
	// core without touching the always-on cumulative accumulators.
	durNs []int64
	body  func(id int)
}

func (p *Prepared) newScratch() *computeScratch {
	n := len(*p.regions.Load())
	s := &computeScratch{
		p:        p,
		extraRow: make([]int, n),
		extraVal: make([]float64, n),
		pending:  make([]atomic.Int32, n),
		durNs:    make([]int64, n),
	}
	s.body = s.run
	return s
}

// run is one core's share of a Compute call (the body Algorithm 5 gives
// each thread), plus optional span recording: nonzeros processed, row
// fragments walked, and whether this core produced an extraY entry.
func (s *computeScratch) run(id int) {
	p := s.p
	s.extraRow[id] = -1
	s.durNs[id] = 0
	reg := s.regs[id]
	if reg.Lo >= reg.Hi {
		return
	}
	if reg.SegSum {
		s.runSegSum(id, reg)
		return
	}
	tel := s.tel
	t0 := time.Now()
	h, y, x := p.h, s.y, s.x
	un := p.unroll[id]
	nnzDone, frags := 0, 0
	r := reg.StartRow
	pos := reg.Lo
	for pos < reg.Hi {
		rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
		fragEnd := rowEnd
		if fragEnd > reg.Hi {
			fragEnd = reg.Hi
		}
		if fragEnd > pos {
			o := h.RowBeginNNZ[r]
			klo, khi := o+(pos-rowStart), o+(fragEnd-rowStart)
			// Per-region format dispatch: the branches take the same arm
			// for every fragment of the region, so they predict perfectly.
			sum := p.dotFragment(reg.Format, reg.Val, r, klo, khi, un, x)
			if pos == rowStart {
				// This core owns the row's first fragment: direct
				// store (Algorithm 5's y[pl[id]] = kernel(...)).
				y[h.Perm[r]] = sum
			} else {
				// Continuation fragment: only the first row of a
				// region can start mid-row.
				s.extraRow[id] = h.Perm[r]
				s.extraVal[id] = sum
			}
			nnzDone += fragEnd - pos
			frags++
			pos = fragEnd
		}
		r++
	}
	dur := time.Since(t0)
	// Always-on signal for the adapter: per-slot busy nanoseconds and
	// nonzeros, independent of the gated telemetry collector.
	p.accum[id].ns.Add(int64(dur))
	p.accum[id].nnz.Add(int64(nnzDone))
	s.durNs[id] = int64(dur)
	cNNZFormat[reg.Format].Add(int64(nnzDone))
	cNNZValue[reg.Val].Add(int64(nnzDone))
	if tel != nil {
		extra := 0
		if s.extraRow[id] >= 0 {
			extra = 1
		}
		tel.RecordSpan(telemetry.Span{
			Name: "core", Core: reg.Core,
			Start: t0.Sub(tel.Start()), Dur: dur,
			NNZ: nnzDone, Fragments: frags, ExtraY: extra,
		})
	}
}

// Format exposes the HACSR view.
func (p *Prepared) Format() *HACSR { return p.h }

// Regions exposes the per-core partition in reordered-nnz space (the
// live tiling; Repartition swaps in a new slice, so callers holding the
// returned value keep a consistent snapshot).
func (p *Prepared) Regions() []Region { return *p.regions.Load() }

// Repartitions counts successful Repartition calls on this instance.
func (p *Prepared) Repartitions() int64 { return p.rebalances.Load() }

// Compute implements Algorithm 5: per-core fragment kernels with the
// extraY epilogue resolving rows that are cut across cores. The
// steady-state path performs zero heap allocations (the workspace is
// reused via Prepared.scratch and exec.Parallel dispatches to a
// persistent worker pool); with telemetry enabled it additionally records
// one span per core and the whole-call compute phase.
func (p *Prepared) Compute(y, x []float64) { p.computeWith(y, x, nil) }

// ComputeTraced is Compute plus a stage breakdown: it splits the call
// into the parallel kernel phase and the serial extraY merge, records the
// critical-path core and the per-format nonzero split, and prices the
// multiply's modeled traffic — everything the serving layer's per-request
// traces attribute. bd is caller-owned and reused (see
// tracing.ComputeBreakdown), so the traced path allocates exactly as much
// as Compute: nothing.
func (p *Prepared) ComputeTraced(y, x []float64, bd *tracing.ComputeBreakdown) {
	p.computeWith(y, x, bd)
}

func (p *Prepared) computeWith(y, x []float64, bd *tracing.ComputeBreakdown) {
	tel := telemetry.Active()
	var t0 time.Time
	if tel != nil || bd != nil {
		t0 = time.Now()
	}
	s := p.scratch.Swap(nil)
	if s == nil {
		s = p.newScratch()
	}
	// One regions snapshot per call: every worker of this multiply walks
	// the same tiling even if Repartition swaps the partition mid-flight.
	s.y, s.x, s.tel, s.regs = y, x, tel, *p.regions.Load()
	for _, r := range p.emptyRows {
		y[r] = 0
	}
	n := len(s.regs)
	exec.Parallel(n, s.body)
	var tKernel time.Time
	if bd != nil {
		tKernel = time.Now()
	}
	// Serial epilogue (Algorithm 5 lines 15-17): add the tail conflicts.
	for id := 0; id < n; id++ {
		if s.extraRow[id] >= 0 {
			y[s.extraRow[id]] += s.extraVal[id]
		}
	}
	if bd != nil {
		bd.KernelNs = int64(tKernel.Sub(t0))
		bd.MergeNs = int64(time.Since(tKernel))
		p.fillBreakdown(bd, s.regs, s.durNs, p.TrafficBytes())
	}
	s.y, s.x, s.tel, s.regs = nil, nil, nil, nil
	p.scratch.Store(s)
	cComputes.Add(1)
	if tel != nil {
		d := time.Since(t0)
		tel.RecordPhase(telemetry.PhaseCompute, d)
		computeHist.Observe(d)
		p.recordBandwidth(p.TrafficBytes(), d)
	}
}

// fillBreakdown completes the executor-side fields of a traced multiply:
// fan-out width, critical-path core, per-format nonzero split, and the
// modeled traffic of the call. KernelNs/MergeNs are set by the caller.
func (p *Prepared) fillBreakdown(bd *tracing.ComputeBreakdown, regs []Region, durNs []int64, bytes int64) {
	bd.Cores = len(regs)
	bd.MaxCoreNs = 0
	bd.NNZByFormat = [4]int64{}
	for i := range regs {
		if durNs[i] > bd.MaxCoreNs {
			bd.MaxCoreNs = durNs[i]
		}
		bd.NNZByFormat[regs[i].Format] += int64(regs[i].Hi - regs[i].Lo)
	}
	bd.Bytes = bytes
}

// rowOfPosition returns the reordered row containing reordered-nnz
// position pos (the first row whose end exceeds it).
func rowOfPosition(h *HACSR, pos int) int {
	return sort.Search(h.Rows, func(i int) bool { return h.RowPtr[i+1] > pos })
}

// costAt returns the row-granular cost prefix at reordered-nnz position
// pos, so a region's assigned cost is costAt(Hi) - costAt(Lo).
func (p *Prepared) costAt(pos int) int {
	if pos >= p.h.NNZ() {
		return p.cs[p.h.Rows]
	}
	return p.cs[rowOfPosition(p.h, pos)]
}

// Assignments maps each region to spans in the original matrix's nnz
// space for the performance model, merging fragments of consecutive
// original rows into single spans.
func (p *Prepared) Assignments() []costmodel.Assignment {
	h := p.h
	regions := *p.regions.Load()
	asgs := make([]costmodel.Assignment, len(regions))
	for i, reg := range regions {
		asg := costmodel.Assignment{Core: reg.Core}
		// Tell the model which index width this region streams; the []int
		// reference keeps the zero value (the model then prices the
		// paper's 4-byte baseline, as before this representation existed).
		// Diagonal regions have no per-nonzero width — their index-side
		// traffic is the total descriptor plus fallback bytes, reported
		// through DiagBytes instead.
		switch reg.Format {
		case Index32:
			asg.IdxBytes = 4
		case Index16:
			asg.IdxBytes = 2
		case IndexDia:
			runsIn, inel := p.regionDiaParts(reg)
			asg.DiagBytes = int(8*runsIn + 4*inel)
		}
		// And which value width (palette/f32); ValF64 keeps the zero value
		// so the model's default ValBytes applies.
		if reg.Val != ValF64 {
			asg.ValBytes = reg.Val.BytesPerValue()
		}
		if reg.Lo < reg.Hi {
			r := reg.StartRow
			pos := reg.Lo
			var cur costmodel.Span
			open := false
			for pos < reg.Hi {
				rowStart, rowEnd := h.RowPtr[r], h.RowPtr[r+1]
				fragEnd := rowEnd
				if fragEnd > reg.Hi {
					fragEnd = reg.Hi
				}
				if fragEnd > pos {
					o := h.RowBeginNNZ[r]
					lo := o + (pos - rowStart)
					hi := o + (fragEnd - rowStart)
					if open && cur.Hi == lo {
						cur.Hi = hi
					} else {
						if open {
							asg.Spans = append(asg.Spans, cur)
						}
						cur = costmodel.Span{Lo: lo, Hi: hi}
						open = true
					}
					pos = fragEnd
				}
				r++
			}
			if open {
				asg.Spans = append(asg.Spans, cur)
			}
		}
		asgs[i] = asg
	}
	return asgs
}
