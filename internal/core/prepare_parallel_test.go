package core

import (
	"math/rand"
	"reflect"
	"testing"

	"haspmv/internal/algtest"
	"haspmv/internal/sparse"
)

// withGrain forces the parallel Prepare sweeps into multi-chunk execution
// (grain 1) or the serial fast path (a huge grain) for the duration of f.
// Tests using it mutate the package-level knob and must not run parallel.
func withGrain(g int, f func()) {
	old := prepGrain
	prepGrain = g
	defer func() { prepGrain = old }()
	f()
}

func TestPrefixSumMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 4097} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(9) - 1
		}
		want := append([]int(nil), xs...)
		acc := 0
		for i := range want {
			acc += want[i]
			want[i] = acc
		}
		got := append([]int(nil), xs...)
		withGrain(1, func() { prefixSum(got) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel prefix sum %v, want %v", n, got, want)
		}
		got2 := append([]int(nil), xs...)
		withGrain(1<<30, func() { prefixSum(got2) })
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("n=%d: serial prefix sum %v, want %v", n, got2, want)
		}
	}
}

func TestCollectEmptyRowsMatchesSerial(t *testing.T) {
	for _, name := range []string{"fig1-8x8", "alternating-empty", "powerlaw", "hub-row"} {
		a := algtest.Matrix(name)
		var serial, parallel []int
		withGrain(1<<30, func() { serial = collectEmptyRows(a) })
		withGrain(1, func() { parallel = collectEmptyRows(a) })
		if len(serial) == 0 && len(parallel) == 0 {
			continue
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: serial %v vs parallel %v", name, serial, parallel)
		}
		for _, i := range serial {
			if a.RowPtr[i+1] != a.RowPtr[i] {
				t.Fatalf("%s: row %d reported empty but has nonzeros", name, i)
			}
		}
	}
}

// The two-pass counting sort must reproduce the serial reorder
// bit-identically — same Perm, same RowPtr, same fused empty list — on
// every base, including ones that put all rows in one class.
func TestConvertParallelMatchesSerial(t *testing.T) {
	mats := []*sparse.CSR{
		algtest.Matrix("fig1-8x8"),
		algtest.Matrix("alternating-empty"),
		algtest.Matrix("powerlaw"),
		algtest.Matrix("hub-row"),
		algtest.Matrix("tall-rect"),
	}
	for _, a := range mats {
		for _, base := range []int{1, 2, 4, 64, 1 << 30} {
			var hs, hp *HACSR
			var es, ep []int
			withGrain(1<<30, func() { hs, es = convert(a, base) })
			withGrain(1, func() { hp, ep = convert(a, base) })
			if !reflect.DeepEqual(hs, hp) {
				t.Fatalf("%dx%d base %d: parallel HACSR differs\nserial   %+v\nparallel %+v",
					a.Rows, a.Cols, base, hs, hp)
			}
			if !reflect.DeepEqual(es, ep) {
				t.Fatalf("%dx%d base %d: empty rows %v vs %v", a.Rows, a.Cols, base, es, ep)
			}
			if err := hp.Validate(a); err != nil {
				t.Fatalf("%dx%d base %d: %v", a.Rows, a.Cols, base, err)
			}
		}
	}
}

func TestCostSumParallelMatchesSerial(t *testing.T) {
	for _, name := range []string{"fig1-8x8", "powerlaw", "hub-row"} {
		a := algtest.Matrix(name)
		h := Convert(a, AutoBase(a))
		for _, metric := range []CostMetric{CacheLineCost, NNZCost, RowCost} {
			var serial, parallel []int
			withGrain(1<<30, func() { serial = costSum(a, h, metric) })
			withGrain(1, func() { parallel = costSum(a, h, metric) })
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s/%v: cost sums differ\nserial   %v\nparallel %v",
					name, metric, serial, parallel)
			}
		}
	}
}
