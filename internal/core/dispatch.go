package core

import "haspmv/internal/kernel"

// Fragment dispatch for the pluggable execution formats: every hot-path
// fragment walk (Compute, ComputeBatch, and the segmented-sum lead/tail
// fragments) funnels through these two functions, which select the
// kernel for the region's (index format × value format) pair. The
// branches are loop-invariant per region, so they predict perfectly
// across a region's fragments; both functions are plain methods with
// scalar arguments (no closures, no per-call state), so the zero-alloc
// guarantee of the callers is preserved.
//
// Diagonal regions resolve one level deeper: the descriptor stream only
// covers dia-eligible rows, and a fragment of an ineligible row inside
// a dia region falls back to the u32 stream — per row, mirroring how
// SegSum regions drop individual fragments back to the dot-product
// path.

// dotFragment computes one row fragment [klo, khi) of reordered row r
// against x, through the kernel matching (f, vf).
func (p *Prepared) dotFragment(f IndexFormat, vf ValueFormat, r, klo, khi, un int, x []float64) float64 {
	st := &p.streams
	vs := &p.values
	if f == IndexDia {
		if st.rowRun[r+1] > st.rowRun[r] {
			ri := int(st.rowRun[r])
			switch vf {
			case ValPalette:
				return kernel.DotRangeDiagPalette(vs.palIdx, vs.pal, st.runs, ri, x, klo, khi, un)
			case ValF32:
				return kernel.DotRangeDiagF32(vs.val32, st.runs, ri, x, klo, khi, un)
			default:
				return kernel.DotRangeDiag(p.mat.Val, st.runs, ri, x, klo, khi, un)
			}
		}
		f = Index32
	}
	switch vf {
	case ValPalette:
		switch f {
		case Index32:
			return kernel.DotRangePalette(vs.palIdx, vs.pal, st.col32, 0, x, klo, khi, un)
		case Index16:
			return kernel.DotRangePalette(vs.palIdx, vs.pal, st.col16, st.rowBase[r], x, klo, khi, un)
		default:
			return kernel.DotRangePalette(vs.palIdx, vs.pal, p.mat.ColIdx, 0, x, klo, khi, un)
		}
	case ValF32:
		switch f {
		case Index32:
			return kernel.DotRangeF32(vs.val32, st.col32, 0, x, klo, khi, un)
		case Index16:
			return kernel.DotRangeF32(vs.val32, st.col16, st.rowBase[r], x, klo, khi, un)
		default:
			return kernel.DotRangeF32(vs.val32, p.mat.ColIdx, 0, x, klo, khi, un)
		}
	default:
		switch f {
		case Index32:
			return kernel.DotRange32(p.mat.Val, st.col32, x, klo, khi, un)
		case Index16:
			return kernel.DotRange16Delta(p.mat.Val, st.col16, st.rowBase[r], x, klo, khi, un)
		default:
			return kernel.DotRange(p.mat.Val, p.mat.ColIdx, x, klo, khi, un)
		}
	}
}

// dotFragmentBlock is dotFragment over a batch block: sums[j] receives
// the fragment's dot product against X[j], bit-identical per vector to
// w independent dotFragment calls' kernels.
func (p *Prepared) dotFragmentBlock(f IndexFormat, vf ValueFormat, r, klo, khi, un int, X [][]float64, sums []float64) {
	st := &p.streams
	vs := &p.values
	if f == IndexDia {
		if st.rowRun[r+1] > st.rowRun[r] {
			ri := int(st.rowRun[r])
			switch vf {
			case ValPalette:
				kernel.DotRangeBlockDiagPalette(vs.palIdx, vs.pal, st.runs, ri, X, sums, klo, khi, un)
			case ValF32:
				kernel.DotRangeBlockDiagF32(vs.val32, st.runs, ri, X, sums, klo, khi, un)
			default:
				kernel.DotRangeBlockDiag(p.mat.Val, st.runs, ri, X, sums, klo, khi, un)
			}
			return
		}
		f = Index32
	}
	switch vf {
	case ValPalette:
		switch f {
		case Index32:
			kernel.DotRangeBlockPalette(vs.palIdx, vs.pal, st.col32, 0, X, sums, klo, khi, un)
		case Index16:
			kernel.DotRangeBlockPalette(vs.palIdx, vs.pal, st.col16, st.rowBase[r], X, sums, klo, khi, un)
		default:
			kernel.DotRangeBlockPalette(vs.palIdx, vs.pal, p.mat.ColIdx, 0, X, sums, klo, khi, un)
		}
	case ValF32:
		switch f {
		case Index32:
			kernel.DotRangeBlockF32(vs.val32, st.col32, 0, X, sums, klo, khi, un)
		case Index16:
			kernel.DotRangeBlockF32(vs.val32, st.col16, st.rowBase[r], X, sums, klo, khi, un)
		default:
			kernel.DotRangeBlockF32(vs.val32, p.mat.ColIdx, 0, X, sums, klo, khi, un)
		}
	default:
		switch f {
		case Index32:
			kernel.DotRangeBlock32(p.mat.Val, st.col32, X, sums, klo, khi, un)
		case Index16:
			kernel.DotRangeBlock16Delta(p.mat.Val, st.col16, st.rowBase[r], X, sums, klo, khi, un)
		default:
			kernel.DotRangeBlock(p.mat.Val, p.mat.ColIdx, X, sums, klo, khi, un)
		}
	}
}
