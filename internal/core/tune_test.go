package core

import (
	"math"
	"testing"

	"haspmv/internal/amp"
	"haspmv/internal/costmodel"
	"haspmv/internal/exec"
	"haspmv/internal/gen"
)

func TestTuneProportionBeatsSweepNeighbours(t *testing.T) {
	m := amp.IntelI912900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("shipsec1", 32)
	best, bestSec, err := TuneProportion(m, p, a, Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0.05 || best >= 0.95 {
		t.Fatalf("tuned proportion %v at search boundary", best)
	}
	if bestSec <= 0 {
		t.Fatal("no time returned")
	}
	// The tuned value must be at least as good as a coarse sweep.
	for prop := 0.1; prop < 0.95; prop += 0.1 {
		prep, err := New(Options{PProportion: prop}).Prepare(m, a)
		if err != nil {
			t.Fatal(err)
		}
		sec := exec.Simulate(m, p, a, prep).Seconds
		if sec < bestSec*0.98 {
			t.Fatalf("sweep found %.2f at %.4g, tuner stuck at %.2f/%.4g", prop, sec, best, bestSec)
		}
	}
	// On Intel the optimum must favor the P-group.
	if best < 0.55 {
		t.Fatalf("Intel tuned proportion %v, want > 0.55", best)
	}
}

func TestTuneProportionAMDNearHalf(t *testing.T) {
	m := amp.AMDRyzen97950X()
	p := costmodel.DefaultParams()
	a := gen.Representative("Dubcova2", 32)
	best, _, err := TuneProportion(m, p, a, Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-0.5) > 0.06 {
		t.Fatalf("homogeneous AMD tuned proportion %v, want ~0.5", best)
	}
}

func TestTuneProportionDefaultTolAndErrors(t *testing.T) {
	m := amp.IntelI913900KF()
	p := costmodel.DefaultParams()
	a := gen.Representative("dawson5", 64)
	if _, _, err := TuneProportion(m, p, a, Options{}, -1); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.ColIdx[0] = -1
	if _, _, err := TuneProportion(m, p, bad, Options{}, 0.05); err == nil {
		t.Fatal("invalid matrix accepted")
	}
}
